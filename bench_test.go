// Package pass_test hosts the top-level benchmark harness: one testing.B
// benchmark per experiment (E1–E18), each regenerating the corresponding
// result table at a bench-friendly scale and reporting the experiment's
// headline findings as custom benchmark metrics.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Regenerate the full-scale tables instead with:
//
//	go run ./cmd/passbench
package pass_test

import (
	"testing"

	"pass/internal/harness"
)

// benchScale keeps each iteration in benchmark territory; cmd/passbench
// runs the full scale for the recorded tables.
const benchScale = 0.1

// runExperiment executes one experiment b.N times and surfaces selected
// findings as benchmark metrics.
func runExperiment(b *testing.B, id string, metricNames ...string) {
	b.Helper()
	exp, ok := harness.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	r := harness.NewRunner(benchScale)
	var last *harness.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exp.Run(r)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	for _, name := range metricNames {
		b.ReportMetric(last.Finding(name), name)
	}
}

// BenchmarkE1Granularity regenerates the indexing-granularity table (§II):
// per-tuple vs tuple-set indexing cost.
func BenchmarkE1Granularity(b *testing.B) {
	runExperiment(b, "E1", "entry_ratio_1_vs_1000")
}

// BenchmarkE2Naming regenerates the filenames-vs-provenance table (§II-A):
// recall collapse for attributes a filename cannot express.
func BenchmarkE2Naming(b *testing.B) {
	runExperiment(b, "E2", "file_recall_sensor-id", "pass_recall_sensor-id")
}

// BenchmarkE3IndexStructures regenerates the flat-scan-vs-index table
// (§II-B).
func BenchmarkE3IndexStructures(b *testing.B) {
	runExperiment(b, "E3")
}

// BenchmarkE4TransitiveClosure regenerates the closure table (§III-B/D):
// naive BFS vs memoized closure across DAG shapes.
func BenchmarkE4TransitiveClosure(b *testing.B) {
	runExperiment(b, "E4", "warm_speedup_chain-16")
}

// BenchmarkE5UpdateScalability regenerates the publish-scalability table
// (§IV) across all seven architecture models.
func BenchmarkE5UpdateScalability(b *testing.B) {
	runExperiment(b, "E5", "wan_central_16", "wan_passnet_16", "wan_dht_16")
}

// BenchmarkE6Locality regenerates the locality table (§III-D, §IV-C):
// Boston consumer querying Boston data under each architecture.
func BenchmarkE6Locality(b *testing.B) {
	runExperiment(b, "E6", "qms_passnet", "qms_central", "qms_dht")
}

// BenchmarkE7SoftStateStaleness regenerates the staleness table (§IV-B):
// recall vs refresh period.
func BenchmarkE7SoftStateStaleness(b *testing.B) {
	runExperiment(b, "E7", "recall_p1", "recall_p16")
}

// BenchmarkE8HierarchyOrdering regenerates the significance-ordering table
// (§IV-B): primary vs secondary attribute fan-out.
func BenchmarkE8HierarchyOrdering(b *testing.B) {
	runExperiment(b, "E8", "fanout_primary", "fanout_secondary")
}

// BenchmarkE9DHTUpdates regenerates the DHT update-load table (§IV-C).
func BenchmarkE9DHTUpdates(b *testing.B) {
	runExperiment(b, "E9", "pubmsgs_n8_a2", "pubmsgs_n8_a6", "hops_n32_a2")
}

// BenchmarkE10Recovery regenerates the crash-recovery table (§IV
// Reliability): WAL replay time and consistency audits.
func BenchmarkE10Recovery(b *testing.B) {
	runExperiment(b, "E10")
}

// BenchmarkE11DistributedClosure regenerates the distributed-closure table
// (§V): ancestry queries across merged PASS sites.
func BenchmarkE11DistributedClosure(b *testing.B) {
	runExperiment(b, "E11", "msgs_passnet_span4", "msgs_dht_span4")
}

// BenchmarkE12PASSProperties regenerates the P1–P4 property table (§V).
func BenchmarkE12PASSProperties(b *testing.B) {
	runExperiment(b, "E12", "p3_collisions", "gc_us_per_record")
}

// BenchmarkE13ResourceCrossover regenerates the resource-consumption
// crossover table (§IV): central vs distributed WAN bytes as the
// query:update ratio sweeps.
func BenchmarkE13ResourceCrossover(b *testing.B) {
	runExperiment(b, "E13")
}

// BenchmarkE14Survivability regenerates the survivability table (§IV
// Reliability): recall and WAN bytes under packet loss across site
// counts for all seven architecture models.
func BenchmarkE14Survivability(b *testing.B) {
	runExperiment(b, "E14",
		"recall_passnet_n256_l20", "recall_dht_n256_l20", "wan_central_n256_l20")
}

// BenchmarkE15SplitBrain regenerates the split-brain table (§IV
// Consistency): divergent per-site views under partition, convergence
// after heal.
func BenchmarkE15SplitBrain(b *testing.B) {
	runExperiment(b, "E15",
		"views_converged_healed", "pending_healed")
}

// BenchmarkE16Churn regenerates the churn table (§IV Reliability): DHT
// key re-homing under stabilization and passnet rejoin-by-snapshot vs
// outbox replay.
func BenchmarkE16Churn(b *testing.B) {
	runExperiment(b, "E16",
		"recall_stab_dht_n64_c25", "recbytes_passnet_n64_c25", "recbytes_passnet-replay_n64_c25")
}

// BenchmarkE17Membership regenerates the membership table (§IV
// Reliability): randomized join/crash/partition schedules with DHT key
// handoff and passnet proactive rejoin.
func BenchmarkE17Membership(b *testing.B) {
	runExperiment(b, "E17",
		"recall_dht_n64_rhi", "handoff_dht_n64_rhi", "rounds_passnet_n64_rhi")
}

// BenchmarkE18Overload regenerates the overload table (§IV Performance):
// open-loop bursty load at 1x-100x nominal, admission-controlled shedding
// vs backlog collapse, with publish-latency tail percentiles.
func BenchmarkE18Overload(b *testing.B) {
	runExperiment(b, "E18",
		"recall_passnet_m100", "p999_central-adm_m100", "backlog_central_m100")
}
