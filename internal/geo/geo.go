// Package geo models the physical placement of sensor networks, storage
// sites, and data consumers. The paper's locality argument ("Boston traffic
// data belongs in Boston, not in Singapore or even Seattle", Section III-D)
// requires a notion of where data is produced, where it is stored, and how
// far queries must travel; this package provides that substrate.
//
// Coordinates live on a 2-D plane measured in kilometres. A flat plane (as
// opposed to a sphere) keeps distance arithmetic exact and reproducible
// while preserving everything the experiments care about: relative
// distances and zone membership.
package geo

import (
	"fmt"
	"math"

	"pass/internal/xrand"
)

// Point is a location on the simulation plane, in kilometres.
type Point struct {
	X, Y float64
}

// Distance returns the Euclidean distance between p and q in kilometres.
func (p Point) Distance(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// String renders the point as "(x,y)".
func (p Point) String() string {
	return fmt.Sprintf("(%.1f,%.1f)", p.X, p.Y)
}

// Zone is a named circular region, the unit of locality: a sensor network,
// its local storage site, and its primary consumers usually share a zone
// (e.g. "boston", "london"). Zones correspond to SRB's scalability zones
// and to the paper's "near the network or its primary users".
type Zone struct {
	Name   string
	Center Point
	Radius float64 // km
}

// Contains reports whether pt lies inside the zone.
func (z Zone) Contains(pt Point) bool {
	return z.Center.Distance(pt) <= z.Radius
}

// Map is a collection of named zones laid out on the plane.
type Map struct {
	zones []Zone
	index map[string]int
}

// NewMap returns an empty map.
func NewMap() *Map {
	return &Map{index: make(map[string]int)}
}

// AddZone registers a zone. Adding a duplicate name replaces the original.
func (m *Map) AddZone(z Zone) {
	if i, ok := m.index[z.Name]; ok {
		m.zones[i] = z
		return
	}
	m.index[z.Name] = len(m.zones)
	m.zones = append(m.zones, z)
}

// Zone returns the named zone.
func (m *Map) Zone(name string) (Zone, bool) {
	i, ok := m.index[name]
	if !ok {
		return Zone{}, false
	}
	return m.zones[i], true
}

// Zones returns all zones in insertion order.
func (m *Map) Zones() []Zone {
	out := make([]Zone, len(m.zones))
	copy(out, m.zones)
	return out
}

// Nearest returns the zone whose center is closest to pt. ok is false when
// the map is empty.
func (m *Map) Nearest(pt Point) (Zone, bool) {
	if len(m.zones) == 0 {
		return Zone{}, false
	}
	best := 0
	bestD := m.zones[0].Center.Distance(pt)
	for i := 1; i < len(m.zones); i++ {
		if d := m.zones[i].Center.Distance(pt); d < bestD {
			best, bestD = i, d
		}
	}
	return m.zones[best], true
}

// GridLayout places n zones on a square-ish grid with the given spacing in
// kilometres and radius per zone. Names are "zone-0" … "zone-(n-1)". It is
// the standard layout for scalability sweeps where only relative distance
// matters.
func GridLayout(n int, spacing, radius float64) *Map {
	m := NewMap()
	if n <= 0 {
		return m
	}
	cols := int(math.Ceil(math.Sqrt(float64(n))))
	for i := 0; i < n; i++ {
		row := i / cols
		col := i % cols
		m.AddZone(Zone{
			Name:   fmt.Sprintf("zone-%d", i),
			Center: Point{X: float64(col) * spacing, Y: float64(row) * spacing},
			Radius: radius,
		})
	}
	return m
}

// RandomLayout scatters n zones uniformly over an extent × extent plane
// (kilometres) using a deterministic seeded generator: the same seed
// always yields the same topology, which the fault-injection experiments
// rely on for reproducibility. Names are "zone-0" … "zone-(n-1)". Zone
// centers are kept at least 2×radius apart from the plane's edge so every
// zone fits; overlap between zones is allowed (real deployments overlap
// too) and harmless, since locality is decided by zone name, not
// geometry. This generator is the standard topology source for large
// archtest sweeps, the survivability experiment (E14), and the examples.
func RandomLayout(n int, extent, radius float64, seed uint64) *Map {
	m := NewMap()
	if n <= 0 {
		return m
	}
	if extent < 4*radius {
		extent = 4 * radius
	}
	rng := xrand.New(seed)
	span := extent - 4*radius
	for i := 0; i < n; i++ {
		m.AddZone(Zone{
			Name: fmt.Sprintf("zone-%d", i),
			Center: Point{
				X: 2*radius + rng.Float64()*span,
				Y: 2*radius + rng.Float64()*span,
			},
			Radius: radius,
		})
	}
	return m
}

// WorldCities returns a map with a handful of real-world-flavoured zones at
// plausible pairwise distances (in km, on the plane). Used by the examples
// and the locality experiments so output reads like the paper's narrative
// (Boston data belongs in Boston...).
func WorldCities() *Map {
	m := NewMap()
	m.AddZone(Zone{Name: "boston", Center: Point{0, 0}, Radius: 50})
	m.AddZone(Zone{Name: "new-york", Center: Point{300, -60}, Radius: 60})
	m.AddZone(Zone{Name: "seattle", Center: Point{-4000, 300}, Radius: 60})
	m.AddZone(Zone{Name: "london", Center: Point{5300, 800}, Radius: 60})
	m.AddZone(Zone{Name: "tokyo", Center: Point{10800, -400}, Radius: 60})
	m.AddZone(Zone{Name: "singapore", Center: Point{15300, -3000}, Radius: 60})
	return m
}
