package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistance(t *testing.T) {
	a := Point{0, 0}
	b := Point{3, 4}
	if d := a.Distance(b); d != 5 {
		t.Fatalf("distance = %v, want 5", d)
	}
	if d := a.Distance(a); d != 0 {
		t.Fatalf("self distance = %v, want 0", d)
	}
}

func TestDistanceProperties(t *testing.T) {
	// Symmetry and triangle inequality.
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		if anyBad(ax, ay, bx, by, cx, cy) {
			return true
		}
		a, b, c := Point{ax, ay}, Point{bx, by}, Point{cx, cy}
		if math.Abs(a.Distance(b)-b.Distance(a)) > 1e-9 {
			return false
		}
		// Allow tiny float slack in the triangle inequality.
		return a.Distance(c) <= a.Distance(b)+b.Distance(c)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func anyBad(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
			return true
		}
	}
	return false
}

func TestZoneContains(t *testing.T) {
	z := Zone{Name: "boston", Center: Point{0, 0}, Radius: 10}
	if !z.Contains(Point{5, 5}) {
		t.Fatal("point inside radius not contained")
	}
	if z.Contains(Point{20, 0}) {
		t.Fatal("point outside radius contained")
	}
	if !z.Contains(Point{10, 0}) {
		t.Fatal("boundary point should be contained")
	}
}

func TestMapAddAndLookup(t *testing.T) {
	m := NewMap()
	m.AddZone(Zone{Name: "a", Center: Point{0, 0}, Radius: 1})
	m.AddZone(Zone{Name: "b", Center: Point{10, 0}, Radius: 1})
	z, ok := m.Zone("a")
	if !ok || z.Name != "a" {
		t.Fatalf("Zone(a) = %v, %v", z, ok)
	}
	if _, ok := m.Zone("missing"); ok {
		t.Fatal("found a zone that was never added")
	}
	if got := len(m.Zones()); got != 2 {
		t.Fatalf("len(Zones) = %d, want 2", got)
	}
}

func TestMapReplaceDuplicate(t *testing.T) {
	m := NewMap()
	m.AddZone(Zone{Name: "a", Center: Point{0, 0}, Radius: 1})
	m.AddZone(Zone{Name: "a", Center: Point{5, 5}, Radius: 2})
	if got := len(m.Zones()); got != 1 {
		t.Fatalf("len(Zones) = %d, want 1 after replace", got)
	}
	z, _ := m.Zone("a")
	if z.Radius != 2 {
		t.Fatalf("replacement not applied: %+v", z)
	}
}

func TestNearest(t *testing.T) {
	m := NewMap()
	if _, ok := m.Nearest(Point{0, 0}); ok {
		t.Fatal("empty map returned a nearest zone")
	}
	m.AddZone(Zone{Name: "a", Center: Point{0, 0}, Radius: 1})
	m.AddZone(Zone{Name: "b", Center: Point{100, 0}, Radius: 1})
	z, ok := m.Nearest(Point{90, 0})
	if !ok || z.Name != "b" {
		t.Fatalf("Nearest = %v, want b", z.Name)
	}
	z, _ = m.Nearest(Point{1, 1})
	if z.Name != "a" {
		t.Fatalf("Nearest = %v, want a", z.Name)
	}
}

func TestGridLayout(t *testing.T) {
	m := GridLayout(5, 100, 10)
	zones := m.Zones()
	if len(zones) != 5 {
		t.Fatalf("grid has %d zones, want 5", len(zones))
	}
	// All pairwise distances must be >= spacing between distinct cells.
	for i := range zones {
		for j := i + 1; j < len(zones); j++ {
			if d := zones[i].Center.Distance(zones[j].Center); d < 100-1e-9 {
				t.Fatalf("zones %d,%d too close: %v", i, j, d)
			}
		}
	}
	if m2 := GridLayout(0, 100, 10); len(m2.Zones()) != 0 {
		t.Fatal("GridLayout(0) should be empty")
	}
}

func TestWorldCities(t *testing.T) {
	m := WorldCities()
	boston, ok := m.Zone("boston")
	if !ok {
		t.Fatal("no boston zone")
	}
	singapore, ok := m.Zone("singapore")
	if !ok {
		t.Fatal("no singapore zone")
	}
	ny, _ := m.Zone("new-york")
	// Section III-D shape: Boston is much closer to New York than Singapore.
	if boston.Center.Distance(ny.Center) >= boston.Center.Distance(singapore.Center) {
		t.Fatal("world layout violates the paper's locality narrative")
	}
}
