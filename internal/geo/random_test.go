package geo

import "testing"

func TestRandomLayoutDeterministic(t *testing.T) {
	a := RandomLayout(50, 10000, 50, 99)
	b := RandomLayout(50, 10000, 50, 99)
	za, zb := a.Zones(), b.Zones()
	if len(za) != 50 || len(zb) != 50 {
		t.Fatalf("zone counts: %d, %d", len(za), len(zb))
	}
	for i := range za {
		if za[i] != zb[i] {
			t.Fatalf("zone %d differs across identical seeds: %+v vs %+v", i, za[i], zb[i])
		}
	}
}

func TestRandomLayoutSeedsDiffer(t *testing.T) {
	a := RandomLayout(20, 10000, 50, 1)
	b := RandomLayout(20, 10000, 50, 2)
	identical := 0
	for i, z := range a.Zones() {
		if z.Center == b.Zones()[i].Center {
			identical++
		}
	}
	if identical == 20 {
		t.Fatal("different seeds produced an identical layout")
	}
}

func TestRandomLayoutWithinExtent(t *testing.T) {
	extent, radius := 5000.0, 60.0
	m := RandomLayout(200, extent, radius, 7)
	for _, z := range m.Zones() {
		if z.Center.X < 0 || z.Center.X > extent || z.Center.Y < 0 || z.Center.Y > extent {
			t.Fatalf("zone %s center %v outside extent %v", z.Name, z.Center, extent)
		}
		if z.Radius != radius {
			t.Fatalf("zone %s radius %v, want %v", z.Name, z.Radius, radius)
		}
	}
}

func TestRandomLayoutDegenerate(t *testing.T) {
	if n := len(RandomLayout(0, 1000, 50, 1).Zones()); n != 0 {
		t.Fatalf("0 zones requested, got %d", n)
	}
	// Tiny extent is bumped up so zones still fit.
	m := RandomLayout(3, 1, 50, 1)
	if len(m.Zones()) != 3 {
		t.Fatalf("got %d zones", len(m.Zones()))
	}
}
