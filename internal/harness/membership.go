package harness

import (
	"fmt"

	"pass/internal/arch"
	"pass/internal/arch/central"
	"pass/internal/arch/dht"
	"pass/internal/arch/passnet"
	"pass/internal/arch/schedule"
	"pass/internal/arch/softstate"
	"pass/internal/metrics"
	"pass/internal/netsim"
)

// E17Membership — the elastic-membership dimension of survivability.
// E16 scripts one crash wave and one heal; E17 is what "sites come and
// go" looks like when nobody scripts it: a seeded generator (package
// schedule) interleaves join, crash, heal, partition, and loss-burst
// events at a configurable rate, and every architecture runs the SAME
// schedule per cell. The table reports, per model, site count, and
// event rate:
//
//   - events / joins: how much membership motion the schedule injected
//     and how many cold sites were admitted (dht pays a charged key
//     handoff per admission, arch.Joiner; everyone else runs the
//     heal-on-join convention — passnet's admitted site then takes the
//     proactive snapshot path by itself);
//   - acked: the publish workload acknowledged despite the churn
//     (bounded re-offers, E14's client model);
//   - recall / conv-rounds: once the schedule quiesces — faults lifted,
//     stragglers joined, unacknowledged publishes re-offered — how many
//     maintenance rounds until lookups answer in full, and where recall
//     lands (the oracle's bar is ≥ 0.99, the same as the scripted laws);
//   - handoff-bytes: the wire cost of join admissions, the arrival-side
//     counterpart of E16's rec-bytes;
//   - leaves / leave-bytes: voluntary departures the schedule drew and
//     what the pre-exit key handoff cost (dht's arch.Leaver pushes its
//     keys to the successor before disconnecting; models without the
//     capability just go dark until quiescence);
//   - gossip-bytes / dup-supp / pull-rounds: the dissemination layer's
//     own meter (arch.GossipMeter, "-" for unmetered models). The
//     passnet vs passnet-eff rows are the efficiency comparison under
//     unscripted churn: same schedule, same recall bar, strictly fewer
//     gossip bytes.
//
// Same-seed determinism of the whole sweep is pinned by the regression
// test, exactly like E14/E16.
func (r *Runner) E17Membership() (*Result, error) {
	table := metrics.NewTable("E17: membership (randomized join/crash/partition schedules)",
		"model", "sites", "rate", "events", "joins", "acked", "recall", "conv-rounds", "handoff-bytes",
		"leaves", "leave-bytes", "gossip-bytes", "dup-supp", "pull-rounds")
	findings := map[string]float64{}

	type entrant struct {
		label string
		// metered marks models implementing arch.GossipMeter, whose rows
		// carry live gossip columns instead of "-".
		metered bool
		build   func(net *netsim.Network, sites []netsim.SiteID) arch.Model
	}
	roster := []entrant{
		{"central", false, func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return central.New(net, sites[0])
		}},
		{"softstate", false, func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return softstate.New(net, sites, sites[:2], 1)
		}},
		{"dht", false, func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return dht.New(net, sites)
		}},
		{"passnet", true, func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return passnet.New(net, sites, passnet.Options{})
		}},
		// Same schedule as the row above, efficient dissemination: dupemap
		// suppression, coalesced envelopes, armed anti-entropy pulls.
		{"passnet-eff", true, func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return passnet.New(net, sites, passnet.Options{EfficientGossip: true, PullEvery: 1})
		}},
	}

	type cell struct {
		nSites, ri, mi int
		rate           float64
	}
	var cells []cell
	for _, nSites := range []int{16, 64} {
		for ri, rate := range []float64{0.25, 0.75} {
			for mi := range roster {
				cells = append(cells, cell{nSites, ri, mi, rate})
			}
		}
	}
	type out struct {
		events, joins  int
		acked, offered int
		recall         float64
		convRounds     int
		handoffBytes   int64
		leaves         int
		leaveBytes     int64
		gossip         arch.GossipStats
		metered        bool
	}
	outs, err := runCells(r, cells, func(c cell) (out, error) {
		rateLabel := []string{"lo", "hi"}[c.ri]
		cfg := schedule.Config{
			Sites:        c.nSites,
			SitesPerZone: 4,
			Joiners:      c.nSites / 8,
			Rounds:       10,
			EventRate:    c.rate,
			PubsPerRound: r.scale.n(6),
			// Every acknowledged publish is re-offered twice more — the
			// at-least-once pipeline whose redundancy the efficient gossip
			// path (passnet-eff) is built to suppress.
			Reoffer: 2,
		}
		// One schedule per (sites, rate) point, shared by every model in
		// that column: the comparison is architectures under identical
		// membership motion. Each cell regenerates it from the seed so
		// parallel cells never share a Schedule value.
		seed := uint64(17000 + c.nSites*10 + c.ri)
		sched := schedule.Generate(seed, cfg)
		ent := roster[c.mi]
		o, err := schedule.Run(sched, ent.build)
		if err != nil {
			return out{}, fmt.Errorf("%s (n=%d rate=%s): %w\nschedule:\n%s",
				ent.label, c.nSites, rateLabel, err, sched)
		}
		return out{
			events: len(sched.Events), joins: o.Joins,
			acked: o.Acked, offered: o.Offered,
			recall: o.Recall, convRounds: o.ConvRounds, handoffBytes: o.HandoffBytes,
			leaves: o.Leaves, leaveBytes: o.LeaveBytes,
			gossip:  arch.GossipStats{Bytes: o.GossipBytes, DupSuppressed: o.DupSuppressed, PullRounds: o.PullRounds},
			metered: ent.metered,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		o := outs[i]
		rateLabel := []string{"lo", "hi"}[c.ri]
		label := roster[c.mi].label
		gb, ds, pr := any("-"), any("-"), any("-")
		if o.metered {
			gb, ds, pr = o.gossip.Bytes, o.gossip.DupSuppressed, o.gossip.PullRounds
		}
		table.AddRow(label, c.nSites, rateLabel, o.events, o.joins,
			fmt.Sprintf("%d/%d", o.acked, o.offered),
			fmt.Sprintf("%.3f", o.recall), o.convRounds, o.handoffBytes,
			o.leaves, o.leaveBytes, gb, ds, pr)
		tag := fmt.Sprintf("%s_n%d_r%s", label, c.nSites, rateLabel)
		findings["recall_"+tag] = o.recall
		findings["acked_"+tag] = float64(o.acked)
		findings["joins_"+tag] = float64(o.joins)
		findings["rounds_"+tag] = float64(o.convRounds)
		findings["handoff_"+tag] = float64(o.handoffBytes)
		findings["events_"+tag] = float64(o.events)
		findings["leaves_"+tag] = float64(o.leaves)
		findings["leavebytes_"+tag] = float64(o.leaveBytes)
		if o.metered {
			findings["gossip_"+tag] = float64(o.gossip.Bytes)
			findings["dupsupp_"+tag] = float64(o.gossip.DupSuppressed)
			findings["pulls_"+tag] = float64(o.gossip.PullRounds)
		}
	}
	return &Result{
		ID:       "E17",
		Title:    "Membership: randomized join/crash/partition schedules — recall, handoff cost, convergence",
		Table:    table,
		Findings: findings,
		Notes: []string{
			"every model in a cell replays the SAME generated schedule (seeded, replayable via schedule.String); the oracle is generic: recall >= 0.99 after quiescence, all joiners admitted, all bytes charged",
			"joins: dht admits cold nodes through arch.Joiner — spliced into the ring with a charged key handoff (handoff-bytes) — while the other models run the heal-on-join convention; passnet's admitted sites then trigger their own rejoin snapshots inside Tick (proactive rejoin, zero operator calls)",
			"conv-rounds counts post-quiescence maintenance rounds until every acknowledged publish resolves from every querier, one of them a freshly joined site",
			"leaves: voluntary departures drawn by the schedule; dht coordinates each one through arch.Leaver (keys pushed to the successor before disconnect, leave-bytes charged) while models without the capability let the leaver go dark until quiescence",
			"gossip-bytes/dup-supp/pull-rounds: arch.GossipMeter accounting, '-' for unmetered models; passnet vs passnet-eff under the SAME schedule is the efficiency comparison — equal recall, fewer bytes",
		},
	}, nil
}
