package harness

import (
	"errors"
	"fmt"
	"time"

	"pass/internal/arch"
	"pass/internal/arch/central"
	"pass/internal/arch/dht"
	"pass/internal/arch/distdb"
	"pass/internal/arch/feddb"
	"pass/internal/arch/hier"
	"pass/internal/arch/passnet"
	"pass/internal/arch/softstate"
	"pass/internal/metrics"
	"pass/internal/netsim"
	"pass/internal/provenance"
	"pass/internal/ratelimit"
	"pass/internal/workload"
)

// E18 constants. overloadRound is the simulated wall-clock length of one
// engine round AND the per-round serving budget: a model's ingest
// capacity is however many publishes fit one round's worth of its own
// simulated critical-path latency. That is what makes the collapse
// comparison architectural rather than tuned — passnet's local append
// costs microseconds (capacity ~thousands/round) while central's
// warehouse round trip costs milliseconds (capacity ~a handful/round),
// and both face the same open-loop arrival stream.
const (
	overloadRound    = 20 * time.Millisecond
	overloadQueueCap = 5 // MaxBacklog for admitting models, in rounds
	overloadDrain    = 4 // post-load grace rounds before measuring
)

// overloadPub builds one E18 publish: zone attr from the origin site (the
// hierarchy's partition key) plus a Zipf-drawn "hot" attribute bucket the
// closed-loop queries chase.
func overloadPub(net *netsim.Network, origin netsim.SiteID, seq, hotKey int) (arch.Pub, error) {
	s, err := net.Site(origin)
	if err != nil {
		return arch.Pub{}, err
	}
	var digest [32]byte
	digest[0], digest[1], digest[2] = byte(seq), byte(seq>>8), 0xE8
	digest[3] = byte(seq >> 16)
	rec, id, err := provenance.NewRaw(digest, 64).
		Attrs(
			provenance.Attr("n", provenance.Int64(int64(seq))),
			provenance.Attr(provenance.KeyDomain, provenance.String("overload")),
			provenance.Attr(provenance.KeyZone, provenance.String(s.Zone)),
			provenance.Attr("hot", provenance.String(fmt.Sprintf("h%d", hotKey))),
		).
		CreatedAt(int64(seq) + 1).
		Build()
	if err != nil {
		return arch.Pub{}, err
	}
	return arch.Pub{ID: id, Rec: rec, Origin: origin}, nil
}

// E18Overload — the paper's motivating deployments (congestion-zone
// traffic, ambulance fleets, volcano monitoring) see bursty, Zipf-skewed
// traffic from huge client populations; every earlier experiment drives a
// flat rate. E18 drives each architecture with the SAME seeded open-loop
// arrival schedule (workload.OpenLoop: bursty shape, Zipf-skewed clients
// and hot keys) at 1x, 10x, and 100x nominal load, and measures who
// degrades gracefully versus who collapses.
//
// The engine models serving capacity honestly in simulated time: each
// round offers the generator's arrivals, then drains the model's publish
// queue until one round's budget of simulated critical-path latency is
// spent. Work that does not fit waits — client-observed latency is queue
// wait plus service time — so an overloaded model shows unbounded p99/
// p999 growth and, at measurement time, a backlog of never-indexed
// publishes (the recall falloff). The *-adm rows run the same model under
// a ratelimit.Admission controller (arch.Admitter): per-client token
// buckets plus a bounded queue, so overload work is shed with a cheap
// refusal instead of queueing forever — bounded tail latency, explicit
// shed counters, same recall story but now the clients know.
//
// Columns: offered/served publishes, shed (rate-bucket + queue-bound for
// admitting rows, "-" otherwise), backlog still queued at measurement,
// recall over ALL offered publishes, p50/p99/p999 of client-observed
// publish latency (completed publishes only — the backlog column is the
// coordinated-omission remainder), q-p99 of hot-key query latency, and
// WAN bytes.
func (r *Runner) E18Overload() (*Result, error) {
	table := metrics.NewTable("E18: overload (open-loop bursty load at 1x/10x/100x nominal)",
		"model", "mult", "offered", "served", "shed", "backlog", "recall",
		"p50-ms", "p99-ms", "p999-ms", "q-p99-ms", "wan-bytes")
	findings := map[string]float64{}

	// Admission configs are capacity-matched, the way an operator would
	// provision them. The expensive-ingest models (central, dht) get tight
	// per-client buckets — fair share at nominal load is well under one
	// publish per client per round even for the Zipf head, so rate 4 is
	// silent at 1x and bites the hot producers at 10-100x. passnet's local
	// append has capacity to spare, so its controller disables the
	// per-client bucket and keeps only the bounded queue: admission then
	// costs nothing until the architecture itself runs out of headroom.
	tightAdm := ratelimit.Config{
		PerClientRate:  4,
		PerClientBurst: 12,
		Budget:         overloadRound,
		MaxBacklog:     overloadQueueCap * overloadRound,
	}
	looseAdm := ratelimit.Config{
		Budget:     overloadRound,
		MaxBacklog: overloadQueueCap * overloadRound,
	}
	type entrant struct {
		label string
		admit bool
		cfg   ratelimit.Config
		build func(net *netsim.Network, sites []netsim.SiteID) arch.Model
	}
	roster := []entrant{
		{"central", false, ratelimit.Config{}, func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return central.New(net, sites[0])
		}},
		{"central-adm", true, tightAdm, func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return central.New(net, sites[0])
		}},
		{"distdb", false, ratelimit.Config{}, func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return distdb.New(net, sites, 2)
		}},
		{"feddb", false, ratelimit.Config{}, func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return feddb.New(net, sites, 0)
		}},
		{"softstate", false, ratelimit.Config{}, func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return softstate.New(net, sites, sites[:2], 1)
		}},
		{"hier", false, ratelimit.Config{}, func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			h, err := hier.New(net, sites, []string{provenance.KeyZone, provenance.KeySensorClass})
			if err != nil {
				panic(err)
			}
			return h
		}},
		{"dht", false, ratelimit.Config{}, func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return dht.New(net, sites)
		}},
		{"dht-adm", true, tightAdm, func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return dht.New(net, sites)
		}},
		{"passnet", false, ratelimit.Config{}, func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return passnet.New(net, sites, passnet.Options{})
		}},
		{"passnet-adm", true, looseAdm, func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return passnet.New(net, sites, passnet.Options{})
		}},
	}
	mults := []float64{1, 10, 100}

	rounds := r.scale.n(24)
	if rounds < 8 {
		rounds = 8
	}

	type cell struct{ ei, gi int }
	var cells []cell
	for _, gi := range []int{0, 1, 2} {
		for ei := range roster {
			cells = append(cells, cell{ei, gi})
		}
	}
	type out struct {
		label                string
		admit                bool
		offered, served      int
		shedRate, shedQueue  int
		backlog              int
		recall               float64
		p50, p99, p999, qp99 float64
		wan                  int64
	}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	outs, err := runCells(r, cells, func(c cell) (out, error) {
		ent := roster[c.ei]
		mult := mults[c.gi]
		net, sites := newGrid(16)
		m := ent.build(net, sites)
		var adm *ratelimit.Admission
		if ent.admit {
			adm = ratelimit.NewAdmission(ent.cfg)
			m.(arch.Admitter).SetAdmission(adm)
		}
		// One arrival schedule per multiplier, shared by every model in
		// that column: the comparison is architectures under identical
		// open-loop load.
		gen := workload.NewOpenLoop(workload.OpenLoopConfig{
			Seed:            uint64(1800 + c.gi),
			Clients:         64,
			HotKeys:         12,
			NominalPerRound: 2,
			Multiplier:      mult,
			Shape:           workload.ShapeBursts,
			Period:          8,
			BurstLen:        2,
			BurstGain:       3,
			ZipfS:           1.1,
			QueriesPerRound: 4,
		})
		pubH := metrics.NewHistogram(1 << 15)
		qH := metrics.NewHistogram(1 << 12)
		type pend struct {
			p arch.Pub
			r int
		}
		var queue []pend
		var ground []provenance.ID
		o := out{label: ent.label, admit: ent.admit}
		seq := 0
		net.ResetStats()

		drain := func(round int) error {
			var spent time.Duration
			for len(queue) > 0 && spent < overloadRound {
				it := queue[0]
				queue = queue[1:]
				d, err := m.Publish(it.p)
				if err != nil {
					return fmt.Errorf("%s %gx publish: %w", ent.label, mult, err)
				}
				spent += d
				wait := time.Duration(round-it.r) * overloadRound
				pubH.Observe(ms(wait + d))
				o.served++
			}
			return nil
		}

		for round := 0; round < rounds+overloadDrain; round++ {
			if round < rounds {
				for _, a := range gen.Arrivals(round) {
					p, err := overloadPub(net, sites[a.Client%len(sites)], seq, a.Key)
					if err != nil {
						return out{}, err
					}
					seq++
					o.offered++
					ground = append(ground, p.ID)
					if adm == nil {
						queue = append(queue, pend{p, round})
						continue
					}
					d, err := m.Publish(p)
					switch {
					case err == nil:
						o.served++
						pubH.Observe(ms(d))
					case errors.Is(err, ratelimit.ErrRateLimited):
						o.shedRate++
					case errors.Is(err, ratelimit.ErrOverload):
						o.shedQueue++
					default:
						return out{}, fmt.Errorf("%s %gx publish: %w", ent.label, mult, err)
					}
				}
			}
			if adm == nil {
				if err := drain(round); err != nil {
					return out{}, err
				}
			}
			if round < rounds {
				for _, q := range gen.Queries(round) {
					from := sites[q.Client%len(sites)]
					_, d, err := m.QueryAttr(from, "hot", provenance.String(fmt.Sprintf("h%d", q.Key)))
					if err != nil {
						return out{}, fmt.Errorf("%s %gx query: %w", ent.label, mult, err)
					}
					qH.Observe(ms(d))
				}
			}
			if err := m.Tick(); err != nil {
				return out{}, err
			}
		}
		o.backlog = len(queue)
		if adm != nil {
			o.backlog = adm.Stats().QueueItems
		}

		// Recall over every OFFERED publish, from four spread queriers:
		// shed and still-queued work was never indexed, so overload shows
		// up here as well as in the latency tail.
		groundSet := make(map[provenance.ID]bool, len(ground))
		for _, id := range ground {
			groundSet[id] = true
		}
		queriers := []netsim.SiteID{
			sites[0], sites[len(sites)/3], sites[2*len(sites)/3], sites[len(sites)-1],
		}
		recall := 0.0
		for _, q := range queriers {
			got, _, err := m.QueryAttr(q, provenance.KeyDomain, provenance.String("overload"))
			if err != nil {
				return out{}, fmt.Errorf("%s %gx recall probe: %w", ent.label, mult, err)
			}
			hit := 0
			seen := make(map[provenance.ID]bool, len(got))
			for _, id := range got {
				if groundSet[id] && !seen[id] {
					seen[id] = true
					hit++
				}
			}
			recall += float64(hit) / float64(len(ground))
		}
		o.recall = recall / float64(len(queriers))
		o.p50 = pubH.Quantile(0.50)
		o.p99 = pubH.Quantile(0.99)
		o.p999 = pubH.Quantile(0.999)
		o.qp99 = qH.Quantile(0.99)
		o.wan = net.Stats().WANBytes
		return o, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		o := outs[i]
		multLabel := fmt.Sprintf("%gx", mults[c.gi])
		shed := any("-")
		if o.admit {
			shed = fmt.Sprintf("%d+%d", o.shedRate, o.shedQueue)
		}
		table.AddRow(o.label, multLabel, o.offered, o.served, shed, o.backlog,
			fmt.Sprintf("%.3f", o.recall),
			fmt.Sprintf("%.2f", o.p50), fmt.Sprintf("%.2f", o.p99), fmt.Sprintf("%.2f", o.p999),
			fmt.Sprintf("%.2f", o.qp99), o.wan)
		tag := fmt.Sprintf("%s_m%d", o.label, int(mults[c.gi]))
		findings["offered_"+tag] = float64(o.offered)
		findings["served_"+tag] = float64(o.served)
		findings["backlog_"+tag] = float64(o.backlog)
		findings["recall_"+tag] = o.recall
		findings["p50_"+tag] = o.p50
		findings["p99_"+tag] = o.p99
		findings["p999_"+tag] = o.p999
		findings["qp99_"+tag] = o.qp99
		findings["wan_"+tag] = float64(o.wan)
		if o.admit {
			findings["shedrate_"+tag] = float64(o.shedRate)
			findings["shedqueue_"+tag] = float64(o.shedQueue)
		}
	}
	return &Result{
		ID:       "E18",
		Title:    "Overload: open-loop load at 1x-100x nominal — graceful shedding vs collapse",
		Table:    table,
		Findings: findings,
		Notes: []string{
			"every model in a multiplier column faces the SAME seeded open-loop schedule (bursty shape, Zipf-skewed clients and hot keys); capacity is one round's budget of the model's own simulated publish latency, so the collapse point is architectural, not tuned",
			"plain rows queue unserved arrivals forever: client-observed latency (wait + service) grows with the backlog and the backlog column is work never indexed by measurement time — the recall falloff",
			"*-adm rows run arch.Admitter admission (ratelimit: per-client token buckets + a queue bounded at " + fmt.Sprint(overloadQueueCap) + " rounds of backlog): overload work is refused cheaply (shed = rate+queue), so tail latency stays bounded at the price of explicit refusals",
			"latency percentiles cover completed publishes only (coordinated omission: the backlog's unserved work would only make the plain rows look worse); q-p99 is the hot-key query tail, which stays flat for local-index models while ingest melts",
		},
	}, nil
}
