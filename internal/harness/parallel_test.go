package harness

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// The determinism contract of the parallel cell runner: with the same
// seed, serial and parallel execution produce byte-identical tables and
// identical findings. One representative experiment per fault family
// (E14 loss, E15 partition, E16 churn, E17 randomized membership, E18
// overload) pins
// it; these are the sweeps where a scheduling-order leak would corrupt
// published results silently.

func TestSerialParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-mode repeat runs in -short mode")
	}
	cases := []struct {
		id  string
		run func(r *Runner) (*Result, error)
	}{
		{"E14", (*Runner).E14Survivability},
		{"E15", (*Runner).E15SplitBrain},
		{"E16", (*Runner).E16Churn},
		{"E17", (*Runner).E17Membership},
		{"E18", (*Runner).E18Overload},
	}
	for _, tc := range cases {
		t.Run(tc.id, func(t *testing.T) {
			t.Parallel()
			serial, err := tc.run(NewRunner(0.1).SetParallel(false))
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}
			parallel, err := tc.run(NewRunner(0.1).SetParallel(true))
			if err != nil {
				t.Fatalf("parallel run: %v", err)
			}
			if s, p := serial.Table.String(), parallel.Table.String(); s != p {
				t.Errorf("tables diverge between serial and parallel runs:\n--- serial ---\n%s\n--- parallel ---\n%s", s, p)
			}
			if len(serial.Findings) != len(parallel.Findings) {
				t.Fatalf("finding counts differ: serial %d, parallel %d",
					len(serial.Findings), len(parallel.Findings))
			}
			for name, v := range serial.Findings {
				pv, ok := parallel.Findings[name]
				if !ok {
					t.Fatalf("finding %s missing from parallel run", name)
				}
				if pv != v {
					t.Fatalf("finding %s diverged: serial %v, parallel %v", name, v, pv)
				}
			}
		})
	}
}

func TestRunCellsOrderAndParallelism(t *testing.T) {
	cells := make([]int, 64)
	for i := range cells {
		cells[i] = i * 3
	}
	for _, parallel := range []bool{false, true} {
		r := NewRunner(0.1).SetParallel(parallel)
		outs, err := runCells(r, cells, func(c int) (string, error) {
			return fmt.Sprintf("cell-%d", c), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(outs) != len(cells) {
			t.Fatalf("parallel=%v: got %d outputs, want %d", parallel, len(outs), len(cells))
		}
		for i, c := range cells {
			if want := fmt.Sprintf("cell-%d", c); outs[i] != want {
				t.Fatalf("parallel=%v: outs[%d] = %q, want %q (input order must be preserved)",
					parallel, i, outs[i], want)
			}
		}
	}
}

func TestRunCellsReturnsLowestIndexedError(t *testing.T) {
	boom7 := errors.New("cell 7 broke")
	boom21 := errors.New("cell 21 broke")
	cells := make([]int, 40)
	for i := range cells {
		cells[i] = i
	}
	for _, parallel := range []bool{false, true} {
		r := NewRunner(0.1).SetParallel(parallel)
		_, err := runCells(r, cells, func(c int) (int, error) {
			switch c {
			case 7:
				return 0, boom7
			case 21:
				return 0, boom21
			}
			return c, nil
		})
		if !errors.Is(err, boom7) {
			t.Fatalf("parallel=%v: err = %v, want the lowest-indexed cell's error", parallel, err)
		}
	}
}

func TestRunCellsSerialStopsAtFirstError(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	cells := []int{0, 1, 2, 3}
	_, err := runCells(NewRunner(0.1).SetParallel(false), cells, func(c int) (int, error) {
		ran.Add(1)
		if c == 1 {
			return 0, boom
		}
		return c, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := ran.Load(); got != 2 {
		t.Fatalf("serial mode ran %d cells after a failure, want 2", got)
	}
}
