package harness

import (
	"strings"
	"testing"
)

// E17 shape checks: the membership story under randomized schedules.
// Assertions pin WHO pays WHICH recovery cost, not absolute numbers —
// the schedules themselves are pinned replayable by their seeds.

func TestE17MembershipShape(t *testing.T) {
	res, err := testRunner().E17Membership()
	if err != nil {
		t.Fatal(err)
	}
	handoffTotal := 0.0
	for _, n := range []string{"n16", "n64"} {
		for _, r := range []string{"rlo", "rhi"} {
			cell := "_" + n + "_" + r
			for _, model := range []string{"central", "softstate", "dht", "passnet", "passnet-eff"} {
				// The generic oracle: after quiescence plus convergence
				// rounds, every architecture answers in full again.
				if v := res.Finding("recall_" + model + cell); v < 0.99 {
					t.Fatalf("%s%s: recall %v after quiescence, want >= 0.99", model, cell, v)
				}
				if v := res.Finding("acked_" + model + cell); v <= 0 {
					t.Fatalf("%s%s: nothing acknowledged", model, cell)
				}
				// Every cold site must be admitted: joins equal the
				// schedule's joiner count (sites/8).
				wantJoins := 2.0
				if n == "n64" {
					wantJoins = 8
				}
				if v := res.Finding("joins_" + model + cell); v != wantJoins {
					t.Fatalf("%s%s: %v joiners admitted, want %v", model, cell, v, wantJoins)
				}
				// Only the ring pays key handoffs; heal-convention models
				// must charge none.
				if model != "dht" {
					if v := res.Finding("handoff_" + model + cell); v != 0 {
						t.Fatalf("%s%s: heal-convention join charged %v handoff bytes", model, cell, v)
					}
				}
			}
			handoffTotal += res.Finding("handoff_dht" + cell)
			if v := res.Finding("events_central" + cell); v <= 0 {
				t.Fatalf("cell %s: schedule generated no events", cell)
			}
			// Voluntary departures: only the ring coordinates a charged
			// pre-exit handoff; everyone else's leavers go dark for free.
			if res.Finding("leaves_dht"+cell) > 0 && res.Finding("leavebytes_dht"+cell) == 0 {
				t.Fatalf("cell %s: dht completed leaves but charged no handoff bytes", cell)
			}
			for _, model := range []string{"central", "softstate", "passnet", "passnet-eff"} {
				if v := res.Finding("leavebytes_" + model + cell); v != 0 {
					t.Fatalf("%s%s: dark-leave convention charged %v bytes", model, cell, v)
				}
			}
			// The gossip-efficiency comparison: the SAME schedule, recall
			// already pinned equal (>= 0.99 above), convergence no worse,
			// and the efficient dissemination layer >= 30% cheaper.
			base := res.Finding("gossip_passnet" + cell)
			eff := res.Finding("gossip_passnet-eff" + cell)
			if base <= 0 || eff <= 0 {
				t.Fatalf("cell %s: gossip meter read zero (base %v, eff %v)", cell, base, eff)
			}
			if eff > 0.7*base {
				t.Fatalf("cell %s: efficient gossip charged %v bytes vs baseline %v — less than the 30%% floor saved", cell, eff, base)
			}
			if res.Finding("rounds_passnet-eff"+cell) > res.Finding("rounds_passnet"+cell) {
				t.Fatalf("cell %s: efficient gossip needed more convergence rounds than baseline", cell)
			}
			if res.Finding("dupsupp_passnet-eff"+cell) == 0 {
				t.Fatalf("cell %s: re-offered workload but no duplicates suppressed", cell)
			}
		}
	}
	if handoffTotal == 0 {
		t.Fatal("dht charged no handoff bytes across the whole sweep — joins moved nothing")
	}
	for name, v := range res.Findings {
		if strings.HasPrefix(name, "recall_") && (v < 0 || v > 1) {
			t.Fatalf("%s = %v out of [0,1]", name, v)
		}
	}
}

// TestE17Deterministic: the whole membership sweep — generated
// schedules, join handoffs, proactive rejoins, convergence accounting —
// must be byte-for-byte reproducible run to run (the same law E14/E16
// pin for their sweeps).
func TestE17Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("repeat run in -short mode")
	}
	r1, err := NewRunner(0.1).E17Membership()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRunner(0.1).E17Membership()
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Findings) != len(r2.Findings) {
		t.Fatalf("finding counts differ: %d vs %d", len(r1.Findings), len(r2.Findings))
	}
	for name, v := range r1.Findings {
		if r2.Findings[name] != v {
			t.Fatalf("%s diverged across identical runs: %v vs %v", name, v, r2.Findings[name])
		}
	}
	if r1.Table.String() != r2.Table.String() {
		t.Fatal("result tables diverged across identical runs")
	}
}
