package harness

import (
	"fmt"
	"time"

	"pass/internal/arch"
	"pass/internal/metrics"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

// E14Survivability — the fault dimension the Section IV comparison only
// gestures at ("Reliability: When a failure occurs ... is the metadata
// service still available?"). Every architecture runs the same workload
// over the same seeded random topology while the network drops packets,
// at increasing scale; the table reports how much of the acknowledged
// metadata each model can still find, and what the fault handling costs
// on the WAN (retransmissions are real bytes).
//
// Publishers behave like real clients: a failed publish is re-offered up
// to three more times, then given up (the acked column). Queriers issue
// one attempt each — E14 is about exposing degradation, so queries are
// NOT retried the way the conformance suite's convergence checks are.
//
// The latency columns are where loss actually bites: every retransmission
// waits out an RTO backoff (arch.Retry), so mean publish and query
// latency climb steeply with the loss rate even while recall holds — the
// fault tolerance is paid for in time as well as bandwidth.
func (r *Runner) E14Survivability() (*Result, error) {
	table := metrics.NewTable("E14: survivability (recall, latency & WAN bytes vs loss × sites)",
		"model", "sites", "loss", "acked", "recall", "pub-ms", "query-ms", "wan-bytes", "dropped-msgs")
	findings := map[string]float64{}

	const sitesPerZone = 4
	pubsPer := r.scale.n(120)
	attempts := 4
	roster := modelRoster()
	type cell struct {
		nSites, li, mi int
		loss           float64
	}
	var cells []cell
	for _, nSites := range []int{16, 64, 256} {
		for li, loss := range []float64{0, 0.05, 0.20} {
			for mi := range roster {
				cells = append(cells, cell{nSites, li, mi, loss})
			}
		}
	}
	type out struct {
		name          string
		acked, pubs   int
		recall        float64
		pubMs, qMs    float64
		wan, droppedM int64
	}
	outs, err := runCells(r, cells, func(c cell) (out, error) {
		net, sites := netsim.RandomTopology(netsim.Config{
			LossRate: c.loss,
			Seed:     uint64(c.nSites*100 + c.li*10 + c.mi + 1),
		}, c.nSites/sitesPerZone, sitesPerZone, uint64(9000+c.nSites))
		m := roster[c.mi](net, sites)

		pubs, err := taggedPubs(net, sites, "surv", 0xE1, 0, pubsPer, nil)
		if err != nil {
			return out{}, err
		}
		acked := make(map[provenance.ID]bool, len(pubs))
		var pubLat time.Duration
		pubAttempts := 0
		for _, p := range pubs {
			for a := 0; a < attempts; a++ {
				d, err := m.Publish(p)
				pubLat += d
				pubAttempts++
				if err == nil {
					acked[p.ID] = true
					break
				} else if !arch.IsUnavailable(err) {
					return out{}, fmt.Errorf("%s: %w", m.Name(), err)
				}
			}
		}
		for tick := 0; tick < 6; tick++ {
			if err := m.Tick(); err != nil {
				return out{}, fmt.Errorf("%s tick: %w", m.Name(), err)
			}
		}

		queriers := []netsim.SiteID{
			sites[0], sites[len(sites)/3], sites[2*len(sites)/3], sites[len(sites)-1],
		}
		recall := 0.0
		var qLat time.Duration
		if len(acked) > 0 {
			for _, q := range queriers {
				got, d, err := m.QueryAttr(q, provenance.KeyDomain, provenance.String("surv"))
				qLat += d
				if err != nil {
					if arch.IsUnavailable(err) {
						continue // unreachable index scores 0 from this querier
					}
					return out{}, fmt.Errorf("%s query: %w", m.Name(), err)
				}
				hit := 0
				for _, id := range got {
					if acked[id] {
						hit++
					}
				}
				recall += float64(hit) / float64(len(acked))
			}
			recall /= float64(len(queriers))
		}

		st := net.Stats()
		return out{
			name:   m.Name(),
			acked:  len(acked),
			pubs:   len(pubs),
			recall: recall,
			pubMs:  float64(pubLat.Microseconds()) / float64(pubAttempts) / 1000,
			qMs:    float64(qLat.Microseconds()) / float64(len(queriers)) / 1000,
			wan:    st.WANBytes, droppedM: st.DroppedMsgs,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		o := outs[i]
		lossPct := int(c.loss * 100)
		table.AddRow(o.name, c.nSites, fmt.Sprintf("%d%%", lossPct),
			fmt.Sprintf("%d/%d", o.acked, o.pubs),
			fmt.Sprintf("%.3f", o.recall),
			fmt.Sprintf("%.2f", o.pubMs), fmt.Sprintf("%.2f", o.qMs),
			o.wan, o.droppedM)
		tag := fmt.Sprintf("%s_n%d_l%d", o.name, c.nSites, lossPct)
		findings["recall_"+tag] = o.recall
		findings["wan_"+tag] = float64(o.wan)
		findings["acked_"+tag] = float64(o.acked)
		findings["publat_"+tag] = o.pubMs
		findings["qlat_"+tag] = o.qMs
	}
	return &Result{
		ID:       "E14",
		Title:    "Survivability: recall and WAN cost under packet loss at scale",
		Table:    table,
		Findings: findings,
		Notes: []string{
			"shape check: at 0% loss every model acks and recalls everything; under loss, locally-committing models (feddb/softstate/passnet) keep acking while 2PC (distdb) starts refusing",
			"WAN bytes include retransmissions and dropped messages — fault tolerance is paid for in bandwidth",
			"pub-ms/query-ms include RTO backoff: each retransmission waits out an exponentially growing timeout, so WAN-synchronous models' latency climbs steeply with loss while locally-acking models stay flat",
		},
	}, nil
}

// taggedPubs builds one deterministic record per publish slot, tagged
// with the given domain attribute (tag keeps different experiments'
// digests distinct) plus the origin's zone (so hierarchical partitioning
// has a primary attribute to work with). Sequence numbers start at base;
// origins stride over the roster, skipping sites in skip (crashed
// producers). Shared by the fault experiments E14 and E16.
func taggedPubs(net *netsim.Network, sites []netsim.SiteID, domain string, tag byte, base, n int, skip map[netsim.SiteID]bool) ([]arch.Pub, error) {
	pubs := make([]arch.Pub, 0, n)
	for i := 0; i < n; i++ {
		seq := base + i
		idx := (seq * 7) % len(sites)
		for skip[sites[idx]] {
			idx = (idx + 1) % len(sites)
		}
		origin := sites[idx]
		s, err := net.Site(origin)
		if err != nil {
			return nil, err
		}
		var digest [32]byte
		digest[0], digest[1], digest[2] = byte(seq), byte(seq>>8), tag
		rec, id, err := provenance.NewRaw(digest, 64).
			Attrs(
				provenance.Attr("n", provenance.Int64(int64(seq))),
				provenance.Attr(provenance.KeyDomain, provenance.String(domain)),
				provenance.Attr(provenance.KeyZone, provenance.String(s.Zone)),
			).
			CreatedAt(int64(seq) + 1).
			Build()
		if err != nil {
			return nil, err
		}
		pubs = append(pubs, arch.Pub{ID: id, Rec: rec, Origin: origin})
	}
	return pubs, nil
}
