package cluster

import (
	"fmt"

	"pass/internal/arch"
	"pass/internal/arch/dht"
	"pass/internal/arch/passnet"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

// This file is the conformance bridge. A Schedule is a seeded, fully
// deterministic workload in the E14/E16 shape: publish pubs records
// from rotating origins (each publish retried up to 4 attempts),
// optionally kill one node mid-schedule, run maintenance ticks, then
// query from every live node and score recall over the acked set. The
// SAME schedule runs against the netsim-backed model (SimRecall) and
// against a live multi-process cluster (RealRecall); CompareRecall
// asserts the two agree within Tolerance.
//
// What agreement means: loss realisations necessarily differ (the
// simulator draws from its seeded stream, the sockets from theirs), so
// the bridge asserts recall BANDS, not equality — the claim under test
// is that the simulator's findings (E14's "gossip and DHT keep recall
// under loss", E16's "replication recovers a crashed node's keys")
// transfer to real processes.

// Tolerance is the stated recall agreement band between the netsim row
// and the real-socket row of the same schedule.
const Tolerance = 0.15

// Schedule is one seeded cross-check workload.
type Schedule struct {
	Seed     uint64
	Nodes    int
	Loss     float64 // packet-loss rate applied to inter-node traffic
	Pubs     int
	Ticks    int
	KillNode int // node index to SIGKILL (sim: Fail) after publishing; -1 = none
}

// attempts mirrors the E14 publisher convention: a failed publish is
// re-offered up to three more times.
const attempts = 4

const domain = "xcheck"

// schedulePubs builds the schedule's deterministic publish stream:
// record i originates at node (i*7) mod N — the taggedPubs rotation.
func schedulePubs(sc Schedule) ([]*provenance.Record, []int, error) {
	recs := make([]*provenance.Record, 0, sc.Pubs)
	origins := make([]int, 0, sc.Pubs)
	for i := 0; i < sc.Pubs; i++ {
		var digest [32]byte
		digest[0], digest[1] = byte(i), byte(i>>8)
		digest[2] = byte(sc.Seed)
		rec, _, err := provenance.NewRaw(digest, 64).
			Attrs(
				provenance.Attr("n", provenance.Int64(int64(i))),
				provenance.Attr(provenance.KeyDomain, provenance.String(domain)),
			).
			CreatedAt(int64(i) + 1).
			Build()
		if err != nil {
			return nil, nil, err
		}
		recs = append(recs, rec)
		origins = append(origins, (i*7)%sc.Nodes)
	}
	return recs, origins, nil
}

// SimRecall runs the schedule on netsim with the named model ("passnet"
// or "dht") — the E14/E16 row this schedule's real run is checked
// against.
func SimRecall(mode string, sc Schedule) (float64, error) {
	net, sites := netsim.RandomTopology(netsim.Config{
		LossRate: sc.Loss, Seed: sc.Seed,
	}, 1, sc.Nodes, sc.Seed+9000)
	var m arch.Model
	switch mode {
	case "passnet":
		m = passnet.New(net, sites, passnet.Options{})
	case "dht":
		m = dht.New(net, sites)
	default:
		return 0, fmt.Errorf("crosscheck: unknown mode %q", mode)
	}

	recs, origins, err := schedulePubs(sc)
	if err != nil {
		return 0, err
	}
	acked := make(map[provenance.ID]bool, len(recs))
	for i, rec := range recs {
		p := arch.Pub{ID: rec.ComputeID(), Rec: rec, Origin: sites[origins[i]]}
		for a := 0; a < attempts; a++ {
			if _, err := m.Publish(p); err == nil {
				acked[p.ID] = true
				break
			} else if !arch.IsUnavailable(err) {
				return 0, fmt.Errorf("sim publish: %w", err)
			}
		}
	}
	if sc.KillNode >= 0 {
		net.Fail(sites[sc.KillNode])
	}
	for t := 0; t < sc.Ticks; t++ {
		if err := m.Tick(); err != nil {
			return 0, fmt.Errorf("sim tick: %w", err)
		}
	}
	if len(acked) == 0 {
		return 0, fmt.Errorf("sim: nothing acked")
	}

	recall, queriers := 0.0, 0
	for i, s := range sites {
		if i == sc.KillNode {
			continue
		}
		queriers++
		got, _, err := m.QueryAttr(s, provenance.KeyDomain, provenance.String(domain))
		if err != nil {
			if arch.IsUnavailable(err) {
				continue
			}
			return 0, fmt.Errorf("sim query: %w", err)
		}
		hit := 0
		for _, id := range got {
			if acked[id] {
				hit++
			}
		}
		recall += float64(hit) / float64(len(acked))
	}
	return recall / float64(queriers), nil
}

// RealRecall runs the same schedule against a live cluster: real
// publishes through real sockets, a real SIGKILL for the kill verb,
// seeded drop rules for the loss dimension, and queries from every
// surviving process.
func RealRecall(c *Cluster, sc Schedule) (float64, error) {
	if sc.Loss > 0 {
		if err := c.SetLoss(sc.Loss, sc.Seed); err != nil {
			return 0, err
		}
	}
	recs, origins, err := schedulePubs(sc)
	if err != nil {
		return 0, err
	}
	acked := make(map[provenance.ID]bool, len(recs))
	for i, rec := range recs {
		var lastErr error
		for a := 0; a < attempts; a++ {
			id, err := c.Client().Put(c.Addr(origins[i]), rec)
			if err == nil {
				acked[id] = true
				break
			}
			lastErr = err
		}
		_ = lastErr // an unacked publish simply isn't scored, as in E14
	}
	if sc.KillNode >= 0 {
		if err := c.Kill(sc.KillNode); err != nil {
			return 0, err
		}
	}
	for t := 0; t < sc.Ticks; t++ {
		if err := c.TickAll(); err != nil {
			return 0, err
		}
	}
	if len(acked) == 0 {
		return 0, fmt.Errorf("real: nothing acked")
	}

	recall, queriers := 0.0, 0
	for i := 0; i < c.N(); i++ {
		if !c.Alive(i) {
			continue
		}
		queriers++
		got, err := c.Client().QueryAttr(c.Addr(i), provenance.KeyDomain, provenance.String(domain))
		if err != nil {
			continue // unreachable contact scores 0, as in E14
		}
		hit := 0
		for _, id := range got {
			if acked[id] {
				hit++
			}
		}
		recall += float64(hit) / float64(len(acked))
	}
	if queriers == 0 {
		return 0, fmt.Errorf("real: no live queriers")
	}
	return recall / float64(queriers), nil
}

// CompareRecall runs the schedule on both backends and checks the
// agreement band. Returns (sim, real, error).
func CompareRecall(c *Cluster, mode string, sc Schedule) (float64, float64, error) {
	sim, err := SimRecall(mode, sc)
	if err != nil {
		return 0, 0, err
	}
	real, err := RealRecall(c, sc)
	if err != nil {
		return sim, 0, err
	}
	if diff := sim - real; diff > Tolerance || diff < -Tolerance {
		return sim, real, fmt.Errorf(
			"recall diverged on seed %d: netsim %.3f vs cluster %.3f (tolerance %.2f)",
			sc.Seed, sim, real, Tolerance)
	}
	return sim, real, nil
}
