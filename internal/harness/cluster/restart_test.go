package cluster

import (
	"os"
	"strings"
	"testing"

	"pass/internal/metrics"
	"pass/internal/provenance"
)

// dataRoot honors CLUSTER_DATA_DIR so CI can upload the WAL and
// snapshot files of a failed soak (t.TempDir is reaped even on
// failure); locally it falls back to a per-test temp dir.
func dataRoot(t *testing.T) string {
	t.Helper()
	if d := os.Getenv("CLUSTER_DATA_DIR"); d != "" {
		dir, err := os.MkdirTemp(d, "soak-*")
		if err != nil {
			t.Fatalf("data root under %s: %v", d, err)
		}
		return dir
	}
	return t.TempDir()
}

// These tests exercise restart as a first-class lifecycle event on real
// processes: a SIGKILLed node comes back at the same identity (ID,
// port, data dir) and must rejoin the cluster — from disk when its WAL
// survived, over the wire when the data dir was wiped. The durable
// path must strictly beat the wiped path on both recovery meters.

// soakPublish pushes n soak-domain records through rotating non-victim
// origins and returns the acked ID set.
func soakPublish(t *testing.T, c *Cluster, victim, start, n int) map[provenance.ID]bool {
	t.Helper()
	acked := make(map[provenance.ID]bool, n)
	for k := 0; k < n; k++ {
		rec, err := soakRecord(7, start+k)
		if err != nil {
			t.Fatalf("build record: %v", err)
		}
		id, err := c.Client().Put(c.Addr((start+k)%victim), rec)
		if err != nil {
			t.Fatalf("publish %d: %v", start+k, err)
		}
		acked[id] = true
	}
	return acked
}

// recallAt scores node i's soak-domain query against acked.
func recallAt(t *testing.T, c *Cluster, i int, acked map[provenance.ID]bool) float64 {
	t.Helper()
	got, err := c.Client().QueryAttr(c.Addr(i), provenance.KeyDomain, provenance.String(soakDomain))
	if err != nil {
		return 0
	}
	hit := 0
	for _, id := range got {
		if acked[id] {
			hit++
		}
	}
	return float64(hit) / float64(len(acked))
}

// measureRecovery probes the restarted victim (stat first, then query —
// the same meter Soak uses) and returns (rounds, bytes).
func measureRecovery(t *testing.T, c *Cluster, victim int, acked map[provenance.ID]bool) (int, int64) {
	t.Helper()
	for r := 0; r <= 6; r++ {
		if r > 0 {
			if err := c.TickAll(); err != nil {
				t.Fatalf("tick during probe %d: %v", r, err)
			}
		}
		st, err := c.Client().Stat(c.Addr(victim))
		if err != nil {
			t.Fatalf("stat restarted node: %v", err)
		}
		if !st.CatchingUp && recallAt(t, c, victim, acked) >= 0.99 {
			return r, st.BytesIn + st.BytesOut
		}
	}
	t.Fatalf("node %d never recovered within probe limit", victim)
	return 0, 0
}

// TestKillAndRestartDurable: both modes, SIGKILL mid-schedule, restart
// from the same data dir. The restarted process must report a disk
// recovery and the whole cluster must answer at recall >= 0.99.
func TestKillAndRestartDurable(t *testing.T) {
	for _, mode := range []string{"passnet", "dht"} {
		t.Run(mode, func(t *testing.T) {
			c := startCluster(t, Config{
				N: 4, Mode: mode, Seed: 7, DataRoot: dataRoot(t), CompactEvery: 64,
			})
			victim := c.N() - 1
			acked := soakPublish(t, c, victim, 0, 10)
			for i := 0; i < 3; i++ {
				if err := c.TickAll(); err != nil {
					t.Fatalf("tick: %v", err)
				}
			}
			// Mid-schedule crash: more publishes land after the restart.
			if err := c.KillAndRestart(victim, false); err != nil {
				t.Fatalf("kill+restart: %v", err)
			}
			st, err := c.Client().Stat(c.Addr(victim))
			if err != nil {
				t.Fatalf("stat: %v", err)
			}
			if !st.Recovered {
				t.Fatalf("restarted node did not recover from disk: %+v", st)
			}
			if st.CatchingUp {
				t.Fatalf("durable restart should not be in catch-up mode: %+v", st)
			}
			for id := range soakPublish(t, c, victim, 10, 6) {
				acked[id] = true
			}
			for i := 0; i < 3; i++ {
				if err := c.TickAll(); err != nil {
					t.Fatalf("tick: %v", err)
				}
			}
			for i := 0; i < c.N(); i++ {
				if got := recallAt(t, c, i, acked); got < 0.99 {
					t.Fatalf("node %d recall %.3f after durable restart, want >= 0.99", i, got)
				}
			}
		})
	}
}

// TestDurableBeatsColdRejoin is the soak's headline inequality measured
// directly: on the same corpus, a durable restart must strictly beat a
// wiped-dir cold rejoin in BOTH rounds-to-recover and recovery bytes.
func TestDurableBeatsColdRejoin(t *testing.T) {
	for _, mode := range []string{"passnet", "dht"} {
		t.Run(mode, func(t *testing.T) {
			c := startCluster(t, Config{
				N: 4, Mode: mode, Seed: 11, DataRoot: dataRoot(t), CompactEvery: 64,
			})
			victim := c.N() - 1
			acked := soakPublish(t, c, victim, 0, 12)
			for i := 0; i < 3; i++ {
				if err := c.TickAll(); err != nil {
					t.Fatalf("tick: %v", err)
				}
			}

			if err := c.KillAndRestart(victim, false); err != nil {
				t.Fatalf("durable restart: %v", err)
			}
			durRounds, durBytes := measureRecovery(t, c, victim, acked)

			if err := c.KillAndRestart(victim, true); err != nil {
				t.Fatalf("wiped restart: %v", err)
			}
			coldRounds, coldBytes := measureRecovery(t, c, victim, acked)

			t.Logf("%s: durable %d rounds / %d bytes, cold %d rounds / %d bytes",
				mode, durRounds, durBytes, coldRounds, coldBytes)
			if durRounds >= coldRounds {
				t.Errorf("durable restart took %d rounds, cold rejoin %d: want strictly fewer", durRounds, coldRounds)
			}
			if durBytes >= coldBytes {
				t.Errorf("durable restart moved %d bytes, cold rejoin %d: want strictly fewer", durBytes, coldBytes)
			}
		})
	}
}

// TestSoakRestartSmoke is the CI-shaped soak: one kill/restart cycle
// per recovery mode plus a partition/heal epoch, gated by the windowed
// recall floor, with the WAL and recovery series landing in the
// harness registry.
func TestSoakRestartSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short")
	}
	for _, mode := range []string{"passnet", "dht"} {
		t.Run(mode, func(t *testing.T) {
			reg := metrics.NewRegistry()
			res, err := Soak(SoakConfig{
				Cluster: Config{
					N: 3, Mode: mode, Seed: 23,
					DataRoot: dataRoot(t), LogDir: logDir(t), CompactEvery: 64,
				},
				Cycles: 2, Pubs: 6, Ticks: 2,
				Partition: true, Join: true,
				Threshold: 0.99, MaxStreak: 3, ProbeLimit: 5,
			}, reg)
			if err != nil {
				t.Fatalf("soak: %v", err)
			}
			if !res.OK {
				t.Fatalf("soak gate failed: %+v", res)
			}
			if len(res.Cycles) != 2 || !res.Cycles[0].Wiped || res.Cycles[1].Wiped {
				t.Fatalf("want cycle 0 wiped + cycle 1 durable, got %+v", res.Cycles)
			}
			if res.Joined != 3 {
				t.Fatalf("expected node 3 to join mid-soak, got %d", res.Joined)
			}
			if res.WalAppends == 0 || res.WalReplays == 0 {
				t.Fatalf("WAL series missing from scrape: %+v", res)
			}
			var sb strings.Builder
			if err := reg.WritePrometheus(&sb); err != nil {
				t.Fatalf("write exposition: %v", err)
			}
			for _, series := range []string{
				"pass_recovery_rounds", "pass_recovery_bytes",
				"pass_wal_appends_total", "pass_wal_replays_total",
			} {
				if !strings.Contains(sb.String(), series) {
					t.Errorf("series %q missing from harness registry exposition", series)
				}
			}
		})
	}
}
