package cluster

import (
	"bufio"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"pass/internal/metrics"
	"pass/internal/obs"
	"pass/internal/provenance"
)

// This file is the long-haul chaos soak: an E17-shaped membership
// schedule driven against REAL processes. Each cycle publishes fresh
// records, runs gated maintenance rounds, then SIGKILLs a victim and
// restarts it — alternating between a durable restart (same data dir,
// WAL + snapshot replay) and a cold rejoin (data dir wiped first, so
// the node must pull state back over the wire). Every restart is
// measured in two currencies:
//
//   - rounds-to-recover: maintenance rounds until the restarted node
//     itself answers the domain query at the recall threshold. Probe 0
//     fires before any tick, so a durable restart that recovered from
//     disk scores 0 while a wiped node (which catches up on its first
//     tick) scores at least 1.
//   - recovery bytes: the restarted process's total wire traffic
//     (BytesIn+BytesOut) at the moment it recovered — disk replay is
//     free on this meter, snapshot pulls are not.
//
// The durable path must strictly beat the wiped path on both meters;
// that inequality is the soak's headline claim and the reason nodes
// carry WALs at all.
//
// Throughout, per-round recall feeds an obs.Windowed gate (the E17/E18
// convention): transient dips during convergence or the optional
// partition epoch are tolerated up to MaxStreak consecutive rounds, a
// longer stay below Threshold is a breach.

// soakDomain tags every soak record so queries score only soak traffic.
const soakDomain = "soak"

// SoakConfig parameterises one chaos soak.
type SoakConfig struct {
	Cluster Config // Cluster.DataRoot must be set for durable restarts
	// Cycles is the number of kill/restart cycles. Even cycles (0, 2,
	// ...) wipe the victim's data dir first; odd cycles restart it
	// durable — so any Cycles >= 2 exercises both recovery paths. Wipe
	// goes first deliberately: recovery from a pull ends in a
	// compaction, so the following cycle's gossip lands in the WAL and
	// the durable restart exercises genuine log replay on top of the
	// snapshot rather than a snapshot-only boot.
	Cycles int
	Pubs   int     // publishes per cycle (origins rotate over non-victims)
	Ticks  int     // gated maintenance rounds per cycle
	Loss   float64 // seeded background packet loss (0 = clean network)
	// Partition, when true, runs one partition/heal epoch halfway
	// through the soak: the cluster splits into two halves for a round,
	// then heals and re-converges under the same gate.
	Partition bool
	// Join, when true, boots one extra node after the first cycle — a
	// real `passd node` process joining mid-soak. It arrives empty, is
	// scored by the gate from its first round, and must converge via
	// the same catch-up pull a wiped restart uses.
	Join       bool
	Threshold  float64 // windowed recall floor (E17's 0.99 shape)
	MaxStreak  int     // consecutive sub-threshold rounds tolerated
	ProbeLimit int     // probe rounds before a restart is declared stuck
}

// CycleResult is one kill/restart cycle's recovery measurement.
type CycleResult struct {
	Victim int
	Wiped  bool
	Rounds int   // probe rounds until the victim answered at threshold
	Bytes  int64 // victim's wire traffic (in+out) at recovery
}

// SoakResult summarises the soak for gating and reporting.
type SoakResult struct {
	Cycles    []CycleResult
	Rounds    int     // gated rounds observed
	Breaches  int     // windowed-gate breaches (0 = pass)
	Worst     int     // longest sub-threshold streak
	MinRecall float64 // worst single-round recall
	OK        bool    // Breaches == 0 and every restart recovered

	// Joined is the index of the node added mid-soak (-1 if none).
	Joined int

	// WAL totals summed over all nodes' /metrics at soak end.
	WalAppends, WalBytes, WalReplays, WalTruncations int64
}

// Soak boots a durable cluster and drives the schedule above. Recovery
// and WAL series land in reg (pass_recovery_rounds, pass_recovery_bytes
// labeled by wipe mode, plus cluster-summed pass_wal_*_total), so a
// daemon or test scraping reg sees the soak's durability story.
func Soak(cfg SoakConfig, reg *metrics.Registry) (*SoakResult, error) {
	if cfg.Cluster.DataRoot == "" {
		return nil, fmt.Errorf("soak: Cluster.DataRoot required (durable restarts are the point)")
	}
	if cfg.Cluster.N < 3 {
		return nil, fmt.Errorf("soak: need at least 3 nodes, got %d", cfg.Cluster.N)
	}
	c, err := Start(cfg.Cluster)
	if err != nil {
		return nil, err
	}
	defer c.Shutdown()

	// The victim is the last node; publishes originate only at the
	// others. In passnet a wiped node's own-origin records are gone for
	// good (gossip has no record bodies to pull back — that is exactly
	// the data loss durability prevents), so keeping the victim out of
	// the origin rotation makes recall a clean measure of the recovery
	// path rather than of unrecoverable loss.
	victim := c.N() - 1
	if cfg.Loss > 0 {
		if err := c.SetLoss(cfg.Loss, cfg.Cluster.Seed); err != nil {
			return nil, err
		}
	}

	gate := obs.NewWindowed(cfg.Threshold, cfg.MaxStreak)
	acked := make(map[provenance.ID]bool)
	res := &SoakResult{OK: true, Joined: -1}
	pubSeq := 0

	// recallFrom scores one node's domain query against the acked set.
	recallFrom := func(i int) float64 {
		got, err := c.Client().QueryAttr(c.Addr(i), provenance.KeyDomain, provenance.String(soakDomain))
		if err != nil {
			return 0
		}
		hit := 0
		for _, id := range got {
			if acked[id] {
				hit++
			}
		}
		return float64(hit) / float64(len(acked))
	}
	// gateRound averages recall over all live nodes and feeds the gate.
	gateRound := func() {
		if len(acked) == 0 {
			return
		}
		sum, n := 0.0, 0
		for i := 0; i < c.N(); i++ {
			if !c.Alive(i) {
				continue
			}
			sum += recallFrom(i)
			n++
		}
		gate.Add(sum / float64(n))
	}

	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		// A real join after the first cycle: the new process arrives
		// empty mid-schedule and is gated like everyone else.
		if cfg.Join && cycle == 1 {
			j, err := c.AddNode()
			if err != nil {
				return nil, err
			}
			res.Joined = j
			if cfg.Loss > 0 {
				if err := c.SetLoss(cfg.Loss, cfg.Cluster.Seed); err != nil {
					return nil, err
				}
			}
		}

		// Publish this cycle's records from rotating non-victim origins.
		for k := 0; k < cfg.Pubs; k++ {
			rec, err := soakRecord(cfg.Cluster.Seed, pubSeq)
			if err != nil {
				return nil, err
			}
			origin := pubSeq % victim
			pubSeq++
			for a := 0; a < attempts; a++ {
				if id, err := c.Client().Put(c.Addr(origin), rec); err == nil {
					acked[id] = true
					break
				}
			}
		}

		// Optional partition epoch at the soak's midpoint.
		if cfg.Partition && cycle == cfg.Cycles/2 {
			var a, b []int
			for i := 0; i < c.N(); i++ {
				if i < c.N()/2 {
					a = append(a, i)
				} else {
					b = append(b, i)
				}
			}
			if err := c.Partition(a, b); err != nil {
				return nil, err
			}
			if err := c.TickAll(); err != nil {
				return nil, err
			}
			gateRound()
			if err := c.HealPartition(a, b); err != nil {
				return nil, err
			}
		}

		// Gated maintenance rounds: converge this cycle's publishes.
		for t := 0; t < cfg.Ticks; t++ {
			if err := c.TickAll(); err != nil {
				return nil, err
			}
			gateRound()
		}
		gate.EndIteration()

		// Kill and restart the victim; even cycles wipe its data dir.
		wipe := cycle%2 == 0
		if err := c.KillAndRestart(victim, wipe); err != nil {
			return nil, err
		}
		if cfg.Loss > 0 {
			// The fresh process booted with no drop rules; re-seed them.
			if err := c.SetLoss(cfg.Loss, cfg.Cluster.Seed); err != nil {
				return nil, err
			}
		}

		// Probe the restarted node until it has left its declared
		// catch-up mode AND answers the domain query at threshold. The
		// stat runs before the query so that a probe-0 recovery (the
		// durable path) charges no query traffic to the bytes meter.
		rounds, bytes := -1, int64(0)
		for r := 0; r <= cfg.ProbeLimit; r++ {
			if r > 0 {
				if err := c.TickAll(); err != nil {
					return nil, err
				}
			}
			st, err := c.Client().Stat(c.Addr(victim))
			if err != nil {
				return nil, fmt.Errorf("stat restarted node: %w", err)
			}
			if !st.CatchingUp && recallFrom(victim) >= cfg.Threshold {
				rounds, bytes = r, st.BytesIn+st.BytesOut
				break
			}
		}
		if rounds < 0 {
			res.OK = false
			rounds = cfg.ProbeLimit + 1
		}
		// Replay counters live in the restarted process and die with it
		// on the next kill, so harvest them per cycle rather than at
		// soak end (the end-of-soak scrape would only see the LAST
		// boot, which for a wiped restart replayed nothing).
		if vals, err := scrapeCounters(c.HTTPAddr(victim), "pass_wal_replays_total"); err == nil {
			res.WalReplays += vals["pass_wal_replays_total"]
		}

		cr := CycleResult{Victim: victim, Wiped: wipe, Rounds: rounds, Bytes: bytes}
		res.Cycles = append(res.Cycles, cr)
		mode := metrics.L("wipe", strconv.FormatBool(wipe))
		reg.Gauge("pass_recovery_rounds", mode).Set(int64(rounds))
		reg.Gauge("pass_recovery_bytes", mode).Set(bytes)
		reg.Counter("pass_recovery_cycles_total", mode).Inc()
	}

	// Sum the per-node WAL counters off each live node's /metrics — the
	// same surface a production scrape would read.
	for i := 0; i < c.N(); i++ {
		if !c.Alive(i) {
			continue
		}
		vals, err := scrapeCounters(c.HTTPAddr(i),
			"pass_wal_appends_total", "pass_wal_bytes_total",
			"pass_wal_truncations_total")
		if err != nil {
			return nil, fmt.Errorf("scrape node %d: %w", i, err)
		}
		res.WalAppends += vals["pass_wal_appends_total"]
		res.WalBytes += vals["pass_wal_bytes_total"]
		res.WalTruncations += vals["pass_wal_truncations_total"]
	}
	reg.Counter("pass_wal_appends_total").Set(res.WalAppends)
	reg.Counter("pass_wal_bytes_total").Set(res.WalBytes)
	reg.Counter("pass_wal_replays_total").Set(res.WalReplays)
	reg.Counter("pass_wal_truncations_total").Set(res.WalTruncations)

	res.Rounds = gate.Rounds()
	res.Breaches = gate.Breaches()
	res.Worst = gate.Worst()
	res.MinRecall = gate.MinRecall()
	if !gate.OK() {
		res.OK = false
	}
	return res, nil
}

// soakRecord builds the i-th deterministic soak record.
func soakRecord(seed uint64, i int) (*provenance.Record, error) {
	var digest [32]byte
	digest[0], digest[1] = byte(i), byte(i>>8)
	digest[2] = byte(seed) ^ 0xA5
	rec, _, err := provenance.NewRaw(digest, 64).
		Attrs(
			provenance.Attr("n", provenance.Int64(int64(i))),
			provenance.Attr(provenance.KeyDomain, provenance.String(soakDomain)),
		).
		CreatedAt(int64(i) + 1).
		Build()
	return rec, err
}

// scrapeCounters fetches a node's Prometheus exposition and extracts the
// named (unlabeled) series.
func scrapeCounters(httpAddr string, names ...string) (map[string]int64, error) {
	resp, err := http.Get("http://" + httpAddr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	out := make(map[string]int64, len(names))
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 || !want[fields[0]] {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		out[fields[0]] = int64(v)
	}
	return out, sc.Err()
}
