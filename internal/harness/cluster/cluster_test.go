package cluster

import (
	"os"
	"strings"
	"testing"

	"pass/internal/provenance"
)

// logDir honors CLUSTER_LOG_DIR (the CI integration job points it at
// an artifact directory and uploads it when the job fails).
func logDir(t *testing.T) string {
	if d := os.Getenv("CLUSTER_LOG_DIR"); d != "" {
		return d
	}
	return t.TempDir()
}

func startCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	if cfg.LogDir == "" {
		cfg.LogDir = logDir(t)
	}
	c, err := Start(cfg)
	if err != nil {
		t.Fatalf("start cluster: %v", err)
	}
	t.Cleanup(func() {
		if t.Failed() {
			var sb strings.Builder
			c.DumpLogs(&sb)
			t.Logf("node logs:\n%s", sb.String())
		}
		c.Shutdown()
	})
	return c
}

// TestCrosscheckCleanSchedules: with no faults injected, the simulator
// and the live cluster must agree EXACTLY — recall 1.0 on both backends
// for both socket-capable models, on two seeded schedules each.
func TestCrosscheckCleanSchedules(t *testing.T) {
	for _, mode := range []string{"passnet", "dht"} {
		for _, seed := range []uint64{21, 22} {
			t.Run(mode, func(t *testing.T) {
				c := startCluster(t, Config{N: 4, Mode: mode, Seed: seed})
				sc := Schedule{Seed: seed, Nodes: 4, Loss: 0, Pubs: 12, Ticks: 3, KillNode: -1}
				sim, real, err := CompareRecall(c, mode, sc)
				if err != nil {
					t.Fatal(err)
				}
				if sim != 1.0 || real != 1.0 {
					t.Fatalf("clean schedule seed %d: sim %.3f real %.3f, want 1.0/1.0", seed, sim, real)
				}
			})
			if testing.Short() {
				break // one seed per mode is enough for -short
			}
		}
	}
}

// TestCrosscheckLossySchedules is the E14 bridge: 20% packet loss on
// both backends (seeded independently — the claim is the finding, not
// the byte stream), recall within Tolerance on two seeds per model.
func TestCrosscheckLossySchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process lossy cross-check skipped in -short")
	}
	for _, mode := range []string{"passnet", "dht"} {
		for _, seed := range []uint64{31, 32} {
			t.Run(mode, func(t *testing.T) {
				c := startCluster(t, Config{N: 4, Mode: mode, Seed: seed})
				sc := Schedule{Seed: seed, Nodes: 4, Loss: 0.20, Pubs: 16, Ticks: 6, KillNode: -1}
				sim, real, err := CompareRecall(c, mode, sc)
				if err != nil {
					t.Fatal(err)
				}
				t.Logf("%s seed %d under 20%% loss: netsim %.3f, cluster %.3f", mode, seed, sim, real)
				if sim < 0.5 || real < 0.5 {
					t.Fatalf("recall collapsed: sim %.3f real %.3f", sim, real)
				}
			})
		}
	}
}

// TestChurnKillOneNode is the E16 bridge and the CI integration target:
// a 5-node dht cluster takes the full publish load, one node dies by
// real SIGKILL, liveness probes notice, and the survivors must recover
// recall from replicas — within Tolerance of the netsim row where the
// same node crashes via netsim.Fail.
func TestChurnKillOneNode(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process churn cross-check skipped in -short")
	}
	c := startCluster(t, Config{N: 5, Mode: "dht", Seed: 41})
	sc := Schedule{Seed: 41, Nodes: 5, Loss: 0, Pubs: 20, Ticks: 3, KillNode: 2}
	sim, real, err := CompareRecall(c, "dht", sc)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("churn: netsim %.3f, cluster %.3f (node 2 SIGKILLed)", sim, real)
	if real < 0.9 {
		t.Fatalf("survivors recovered only %.3f recall after SIGKILL, want >= 0.9", real)
	}
	if !c.Alive(0) || c.Alive(2) {
		t.Fatal("liveness bookkeeping wrong after kill")
	}
}

// TestPartitionIsRealAndHeals drives the partition primitive through
// live processes: cut a passnet cluster 2|2, show the minority side
// cannot see majority publishes, heal, gossip, and require convergence.
func TestPartitionIsRealAndHeals(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process partition test skipped in -short")
	}
	c := startCluster(t, Config{N: 4, Mode: "passnet", Seed: 51})
	if err := c.Partition([]int{0, 1}, []int{2, 3}); err != nil {
		t.Fatal(err)
	}
	acked := make(map[provenance.ID]bool)
	for i := 0; i < 8; i++ {
		var digest [32]byte
		digest[0] = byte(i)
		rec, _, err := provenance.NewRaw(digest, 64).
			Attrs(provenance.Attr(provenance.KeyDomain, provenance.String("part"))).
			CreatedAt(int64(i) + 1).Build()
		if err != nil {
			t.Fatal(err)
		}
		id, err := c.Client().Put(c.Addr(i%2), rec) // majority side only
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		acked[id] = true
	}
	if err := c.TickAll(); err != nil {
		t.Fatal(err)
	}
	count := func(nodeIdx int) int {
		got, err := c.Client().QueryAttr(c.Addr(nodeIdx), provenance.KeyDomain, provenance.String("part"))
		if err != nil {
			t.Fatalf("query node %d: %v", nodeIdx, err)
		}
		hit := 0
		for _, id := range got {
			if acked[id] {
				hit++
			}
		}
		return hit
	}
	if got := count(2); got != 0 {
		t.Fatalf("minority node saw %d records across a partition", got)
	}
	if got := count(0); got != len(acked) {
		t.Fatalf("majority node saw %d/%d of its own records", got, len(acked))
	}
	if err := c.HealPartition([]int{0, 1}, []int{2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := c.TickAll(); err != nil {
		t.Fatal(err)
	}
	if got := count(2); got != len(acked) {
		t.Fatalf("after heal, minority node saw %d/%d records", got, len(acked))
	}
}

// TestStopIsGraceful pins the SIGTERM path end to end: a stopped node
// exits 0 via its signal handler (Stop errors if SIGKILL was needed).
func TestStopIsGraceful(t *testing.T) {
	c := startCluster(t, Config{N: 2, Mode: "passnet", Seed: 61})
	if err := c.Stop(1); err != nil {
		t.Fatalf("SIGTERM path: %v", err)
	}
	if c.Alive(1) {
		t.Fatal("stopped node still marked alive")
	}
	// The survivor still answers.
	if err := c.Client().Ping(c.Addr(0)); err != nil {
		t.Fatalf("survivor unreachable: %v", err)
	}
}
