// Package cluster is the multi-process integration harness: it builds
// the passd binary once, boots N real `passd node` processes on
// ephemeral loopback ports, distributes the peer roster, and then
// drives publishes, queries, maintenance ticks, kill signals and
// partitions through real sockets — the dusk-blockchain
// harness/engine/network.go shape applied to PASS.
//
// The headline use is the netsim cross-check (crosscheck.go): the same
// seeded schedule runs once against the in-process simulator and once
// against live processes, and the recall findings must agree within a
// stated tolerance — a conformance bridge between the paper's
// simulated results (experiments E14/E16) and a real deployment.
//
// Fault injection maps one-to-one onto deployment reality:
//
//   - Kill(i) delivers a real SIGKILL — no goodbye, no flush; the
//     process is simply gone, like a crashed site in netsim.Fail.
//   - Partition installs rate-1.0 ingress drop rules (wire.TDrop) on
//     both sides of the cut — datagrams cross the wire and are
//     discarded, like netsim.Partition.
//   - SetLoss seeds sub-1.0 drop rules on every node pair — the E14
//     loss dimension over real sockets.
//
// Node stdout/stderr stream to per-node log files (CI uploads them on
// failure).
package cluster

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"time"

	"pass/internal/node"
)

// buildOnce builds passd a single time per test binary.
var (
	buildOnce sync.Once
	buildPath string
	buildErr  error
)

// BuildPassd compiles cmd/passd into a temp dir (once) and returns the
// binary path. Honors PASSD_BIN to reuse a prebuilt binary (CI builds
// it as its own step).
func BuildPassd() (string, error) {
	if p := os.Getenv("PASSD_BIN"); p != "" {
		return p, nil
	}
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "passd-build")
		if err != nil {
			buildErr = err
			return
		}
		bin := filepath.Join(dir, "passd")
		cmd := exec.Command("go", "build", "-o", bin, "pass/cmd/passd")
		// Run from the repo root: this file sits at
		// internal/harness/cluster, so the module root is three up from
		// the test working directory.
		root, err := filepath.Abs(filepath.Join("..", "..", ".."))
		if err == nil {
			if _, statErr := os.Stat(filepath.Join(root, "go.mod")); statErr == nil {
				cmd.Dir = root
			}
		}
		out, err := cmd.CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("build passd: %v\n%s", err, out)
			return
		}
		buildPath = bin
	})
	return buildPath, buildErr
}

// Config parameterises a cluster boot.
type Config struct {
	N      int    // node count
	Mode   string // "passnet" or "dht"
	Seed   uint64
	LogDir string // per-node log directory; "" uses a temp dir
	// DataRoot, when set, makes every node durable: node i gets
	// DataRoot/node-i as its -data directory, and KillAndRestart can
	// bring a SIGKILLed node back at the same identity (same ID, same
	// port, same data dir) to recover from its WAL and snapshot.
	DataRoot string
	// CompactEvery passes -compact-every to every node (0 = node default).
	CompactEvery int64
}

// proc is one managed node process.
type proc struct {
	id      int32
	cmd     *exec.Cmd
	udp     *net.UDPAddr
	http    string
	log     *os.File
	dead    bool
	listen  string // pinned after first boot: restarts rebind this port
	dataDir string // "" when the cluster is not durable
}

// Cluster is a set of live passd node processes plus the client
// endpoint that drives them.
type Cluster struct {
	cfg    Config
	bin    string
	logDir string
	procs  []*proc
	client *node.Client
	roster []node.Peer
}

var bootLine = regexp.MustCompile(`passd: node (\d+) listening on (\S+) http (\S+)`)

// Start builds passd (once), boots cfg.N node processes, waits for
// their boot lines, and distributes the roster. The returned cluster
// owns the processes; always call Shutdown.
func Start(cfg Config) (*Cluster, error) {
	bin, err := BuildPassd()
	if err != nil {
		return nil, err
	}
	logDir := cfg.LogDir
	if logDir == "" {
		if logDir, err = os.MkdirTemp("", "pass-cluster-logs"); err != nil {
			return nil, err
		}
	}
	c := &Cluster{cfg: cfg, bin: bin, logDir: logDir}
	fail := func(err error) (*Cluster, error) {
		c.Shutdown()
		return nil, err
	}
	for i := 0; i < cfg.N; i++ {
		p := &proc{id: int32(i), listen: "127.0.0.1:0", dead: true}
		if cfg.DataRoot != "" {
			p.dataDir = filepath.Join(cfg.DataRoot, fmt.Sprintf("node-%d", i))
		}
		c.procs = append(c.procs, p)
		if err := c.startProc(p); err != nil {
			return fail(err)
		}
		// Pin the bound port: a restart reclaims the same identity.
		p.listen = p.udp.String()
	}

	// Client ID sits past the node range so node-to-node drop rules
	// never catch control traffic.
	client, err := node.NewClient(int32(cfg.N) + 1000)
	if err != nil {
		return fail(err)
	}
	c.client = client
	for _, p := range c.procs {
		c.roster = append(c.roster, node.Peer{ID: p.id, Addr: p.udp.String()})
	}
	for _, p := range c.procs {
		if err := client.SetPeers(p.udp, c.roster); err != nil {
			return fail(fmt.Errorf("roster to node %d: %w", p.id, err))
		}
	}
	return c, nil
}

// startProc boots (or re-boots) one node process and waits for its boot
// line. Logs append to the node's log file across restarts, so one file
// tells the node's whole story. Caller sets p.listen and p.dataDir.
func (c *Cluster) startProc(p *proc) error {
	logFile, err := os.OpenFile(
		filepath.Join(c.logDir, fmt.Sprintf("node-%d.log", p.id)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	args := []string{"node",
		"-id", fmt.Sprint(p.id),
		"-mode", c.cfg.Mode,
		"-listen", p.listen,
		"-http", "127.0.0.1:0",
		"-seed", fmt.Sprint(c.cfg.Seed + uint64(uint32(p.id))),
	}
	if p.dataDir != "" {
		args = append(args, "-data", p.dataDir)
		if c.cfg.CompactEvery > 0 {
			args = append(args, "-compact-every", fmt.Sprint(c.cfg.CompactEvery))
		}
	}
	cmd := exec.Command(c.bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		logFile.Close()
		return err
	}
	cmd.Stderr = logFile
	if err := cmd.Start(); err != nil {
		logFile.Close()
		return fmt.Errorf("start node %d: %w", p.id, err)
	}
	if p.log != nil {
		p.log.Close()
	}
	p.cmd, p.log, p.dead = cmd, logFile, false

	// Tee stdout to the log file while scanning for the boot line.
	lineCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(logFile, line)
			if bootLine.MatchString(line) {
				select {
				case lineCh <- line:
				default:
				}
			}
		}
	}()
	select {
	case line := <-lineCh:
		m := bootLine.FindStringSubmatch(line)
		addr, err := net.ResolveUDPAddr("udp", m[2])
		if err != nil {
			return err
		}
		p.udp, p.http = addr, m[3]
		return nil
	case <-time.After(15 * time.Second):
		return fmt.Errorf("node %d never printed its boot line (log: %s)", p.id, logFile.Name())
	}
}

// Client returns the cluster's driving client.
func (c *Cluster) Client() *node.Client { return c.client }

// Addr returns node i's UDP address.
func (c *Cluster) Addr(i int) *net.UDPAddr { return c.procs[i].udp }

// HTTPAddr returns node i's metrics/health address.
func (c *Cluster) HTTPAddr(i int) string { return c.procs[i].http }

// N returns the configured node count (killed nodes included).
func (c *Cluster) N() int { return len(c.procs) }

// Alive reports whether node i has not been killed or stopped.
func (c *Cluster) Alive(i int) bool { return !c.procs[i].dead }

// LiveAddrs returns the UDP addresses of all not-killed nodes.
func (c *Cluster) LiveAddrs() []*net.UDPAddr {
	var out []*net.UDPAddr
	for _, p := range c.procs {
		if !p.dead {
			out = append(out, p.udp)
		}
	}
	return out
}

// TickAll runs one maintenance round on every live node in ID order —
// the cluster's analogue of the harness's per-round model Tick.
func (c *Cluster) TickAll() error {
	for _, p := range c.procs {
		if p.dead {
			continue
		}
		if err := c.client.Tick(p.udp); err != nil {
			return fmt.Errorf("tick node %d: %w", p.id, err)
		}
	}
	return nil
}

// SetLoss installs seeded ingress drop rules at the given rate on every
// node for every peer — the E14 loss dimension. Rate 0 clears.
func (c *Cluster) SetLoss(rate float64, seed uint64) error {
	for _, p := range c.procs {
		if p.dead {
			continue
		}
		var rules []node.DropRule
		for _, q := range c.procs {
			if q.id == p.id {
				continue
			}
			rules = append(rules, node.DropRule{
				From: q.id, Rate: rate,
				Seed: seed ^ (uint64(p.id)<<32 | uint64(uint32(q.id))),
			})
		}
		if err := c.client.SetDrops(p.udp, rules); err != nil {
			return fmt.Errorf("drops to node %d: %w", p.id, err)
		}
	}
	return nil
}

// Partition cuts the cluster into the two groups (node indices) with
// rate-1.0 drop rules on both sides of every cross-group pair.
func (c *Cluster) Partition(a, b []int) error {
	return c.setCut(a, b, 1.0)
}

// HealPartition removes the cut between the two groups.
func (c *Cluster) HealPartition(a, b []int) error {
	return c.setCut(a, b, 0)
}

func (c *Cluster) setCut(a, b []int, rate float64) error {
	install := func(on, from []int) error {
		for _, i := range on {
			if c.procs[i].dead {
				continue
			}
			var rules []node.DropRule
			for _, j := range from {
				rules = append(rules, node.DropRule{From: c.procs[j].id, Rate: rate, Seed: uint64(i*31 + j)})
			}
			if err := c.client.SetDrops(c.procs[i].udp, rules); err != nil {
				return err
			}
		}
		return nil
	}
	if err := install(a, b); err != nil {
		return err
	}
	return install(b, a)
}

// Kill delivers a real SIGKILL to node i: no shutdown path runs, the
// kernel reaps the sockets — netsim.Fail with an exit code.
func (c *Cluster) Kill(i int) error {
	p := c.procs[i]
	if p.dead || p.cmd == nil {
		return nil
	}
	p.dead = true
	if err := p.cmd.Process.Kill(); err != nil {
		return err
	}
	_ = p.cmd.Wait()
	return nil
}

// KillAndRestart SIGKILLs node i, optionally wipes its data directory,
// and boots a fresh process with the same identity: same ID, same UDP
// port, same data dir. With wipe=false a durable node replays snapshot
// + WAL before its boot line prints; with wipe=true (or no DataRoot)
// the node comes back empty and must catch up over the wire. Either
// way the roster is re-sent to the restarted process — a no-op for the
// durable path (it recovered the roster from its WAL) and the join
// trigger for the wiped path.
func (c *Cluster) KillAndRestart(i int, wipe bool) error {
	p := c.procs[i]
	if err := c.Kill(i); err != nil {
		return err
	}
	if wipe && p.dataDir != "" {
		if err := os.RemoveAll(p.dataDir); err != nil {
			return err
		}
	}
	if err := c.startProc(p); err != nil {
		return fmt.Errorf("restart node %d: %w", i, err)
	}
	if err := c.client.SetPeers(p.udp, c.roster); err != nil {
		return fmt.Errorf("roster to restarted node %d: %w", i, err)
	}
	return nil
}

// AddNode boots one extra node under the next free ID and pushes the
// extended roster to every live node — a real join mid-run, the
// process-level analogue of netsim's E17 churn arrivals. Returns the
// new node's index.
func (c *Cluster) AddNode() (int, error) {
	i := len(c.procs)
	p := &proc{id: int32(i), listen: "127.0.0.1:0", dead: true}
	if c.cfg.DataRoot != "" {
		p.dataDir = filepath.Join(c.cfg.DataRoot, fmt.Sprintf("node-%d", i))
	}
	c.procs = append(c.procs, p)
	if err := c.startProc(p); err != nil {
		return -1, fmt.Errorf("add node %d: %w", i, err)
	}
	p.listen = p.udp.String()
	c.roster = append(c.roster, node.Peer{ID: p.id, Addr: p.udp.String()})
	for _, q := range c.procs {
		if q.dead {
			continue
		}
		if err := c.client.SetPeers(q.udp, c.roster); err != nil {
			return -1, fmt.Errorf("roster to node %d: %w", q.id, err)
		}
	}
	return i, nil
}

// Stop delivers SIGTERM and waits for a graceful exit (bounded).
func (c *Cluster) Stop(i int) error {
	p := c.procs[i]
	if p.dead || p.cmd == nil {
		return nil
	}
	p.dead = true
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case <-done:
		return nil
	case <-time.After(5 * time.Second):
		_ = p.cmd.Process.Kill()
		<-done
		return fmt.Errorf("node %d ignored SIGTERM", i)
	}
}

// Shutdown stops every process (SIGTERM, then SIGKILL on a deadline)
// and closes the client and log files.
func (c *Cluster) Shutdown() {
	for i := range c.procs {
		_ = c.Stop(i)
	}
	if c.client != nil {
		c.client.Close()
	}
	for _, p := range c.procs {
		if p.log != nil {
			p.log.Close()
		}
	}
}

// DumpLogs copies every node log to w (test-failure diagnostics).
func (c *Cluster) DumpLogs(w io.Writer) {
	for _, p := range c.procs {
		if p.log == nil {
			continue
		}
		fmt.Fprintf(w, "---- node %d (%s) ----\n", p.id, p.log.Name())
		data, err := os.ReadFile(p.log.Name())
		if err != nil {
			fmt.Fprintf(w, "  <unreadable: %v>\n", err)
			continue
		}
		fmt.Fprintln(w, strings.TrimRight(string(data), "\n"))
	}
}
