package harness

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestInstrument pins the contract passbench -json relies on: wall-clock
// covers the whole call, the sampled peak sees goroutines fn spawns, and
// fn's error passes through.
func TestInstrument(t *testing.T) {
	baseline := runtime.NumGoroutine()
	const spawned = 8

	wallMs, peak, err := Instrument(func() error {
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for i := 0; i < spawned; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-stop
			}()
		}
		// Hold the spike across several sampler ticks so it cannot slip
		// between samples.
		time.Sleep(20 * time.Millisecond)
		close(stop)
		wg.Wait()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if wallMs < 20 {
		t.Errorf("wallMs = %d, want >= 20 (fn slept 20ms)", wallMs)
	}
	if peak < baseline+spawned-1 {
		t.Errorf("peak = %d, want >= baseline %d + %d spawned", peak, baseline, spawned)
	}

	sentinel := errors.New("boom")
	if _, _, err := Instrument(func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Errorf("error not passed through: %v", err)
	}
}
