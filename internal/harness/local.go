package harness

import (
	"fmt"
	"os"
	"time"

	"pass/internal/core"
	"pass/internal/index"
	"pass/internal/metrics"
	"pass/internal/naming"
	"pass/internal/provenance"
	"pass/internal/query"
	"pass/internal/tuple"
	"pass/internal/workload"
)

// Experiments over the local PASS: E1–E4, E10, E12.

func monotonicClock() func() int64 {
	var t int64
	return func() int64 { t++; return t }
}

// dirSize sums the sizes of a directory's regular files.
func dirSize(dir string) int64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, e := range entries {
		if info, err := e.Info(); err == nil && info.Mode().IsRegular() {
			total += info.Size()
		}
	}
	return total
}

func openScratchStore(pattern string) (*core.Store, func(), error) {
	dir, cleanup, err := tempDir(pattern)
	if err != nil {
		return nil, nil, err
	}
	s, err := core.Open(dir, core.Options{Clock: monotonicClock()})
	if err != nil {
		cleanup()
		return nil, nil, err
	}
	return s, func() { s.Close(); cleanup() }, nil
}

// E1Granularity — §II: "We could conceivably index every sensor reading,
// or tuple, individually. However, this appears infeasible, due to the
// sheer number of readings." The experiment ingests the same reading
// stream grouped at different tuple-set sizes and reports record counts,
// on-disk bytes, ingest time, and query latency.
func (r *Runner) E1Granularity() (*Result, error) {
	totalReadings := r.scale.n(20000)
	readings := make([]tuple.Reading, 0, totalReadings)
	rng := workload.NewRand(11)
	for i := 0; i < totalReadings; i++ {
		readings = append(readings, tuple.Reading{
			SensorID: fmt.Sprintf("cam-%02d", rng.Intn(16)),
			Time:     int64(i) * int64(time.Second),
			Value:    40 + 10*rng.Norm(),
		})
	}

	table := metrics.NewTable("E1: indexing granularity ("+fmt.Sprint(totalReadings)+" readings)",
		"set-size", "records", "kv-entries", "disk-bytes", "ingest-ms", "query-us")
	findings := map[string]float64{}

	for _, setSize := range []int{1, 10, 100, 1000} {
		s, done, err := openScratchStore("e1")
		if err != nil {
			return nil, err
		}
		start := time.Now()
		var recs int
		for base := 0; base < len(readings); base += setSize {
			end := base + setSize
			if end > len(readings) {
				end = len(readings)
			}
			ts := &tuple.Set{Readings: readings[base:end]}
			first, last := readings[base].Time, readings[end-1].Time
			_, err := s.IngestTupleSet(ts,
				provenance.Attr(provenance.KeyDomain, provenance.String("traffic")),
				provenance.Attr(provenance.KeyZone, provenance.String("london")),
				provenance.Attr(provenance.KeyStart, provenance.TimeVal(time.Unix(0, first))),
				provenance.Attr(provenance.KeyEnd, provenance.TimeVal(time.Unix(0, last))),
			)
			if err != nil {
				done()
				return nil, err
			}
			recs++
		}
		ingest := time.Since(start)
		if err := s.KV().Flush(); err != nil {
			done()
			return nil, err
		}
		kv := s.KV().Stats()
		diskBytes := dirSize(s.KV().Dir())
		qStart := time.Now()
		ids, err := s.Query(query.AttrEq{Key: provenance.KeyZone, Value: provenance.String("london")})
		if err != nil {
			done()
			return nil, err
		}
		qLat := time.Since(qStart)
		table.AddRow(setSize, recs, kv.TableEntries, diskBytes,
			float64(ingest.Milliseconds()), float64(qLat.Microseconds()))
		findings[fmt.Sprintf("entries_size%d", setSize)] = float64(kv.TableEntries)
		findings[fmt.Sprintf("records_size%d", setSize)] = float64(recs)
		findings[fmt.Sprintf("querylat_us_size%d", setSize)] = float64(qLat.Microseconds())
		_ = ids
		done()
	}
	findings["entry_ratio_1_vs_1000"] = findings["entries_size1"] / findings["entries_size1000"]
	return &Result{
		ID:       "E1",
		Title:    "Indexing granularity: per-tuple vs tuple-set",
		Table:    table,
		Findings: findings,
		Notes: []string{
			"shape check: per-tuple indexing (set-size 1) must cost orders of magnitude more index entries and ingest time than tuple sets",
		},
	}, nil
}

// E2Naming — §II-A's eight objections to conventional filenames. The same
// corpus is named both ways; six query classes are answered from (a)
// filenames alone and (b) the provenance index, and scored for
// precision/recall against ground truth.
func (r *Runner) E2Naming() (*Result, error) {
	s, done, err := openScratchStore("e2")
	if err != nil {
		return nil, err
	}
	defer done()

	sets := workload.Generate(workload.Config{
		Domain:  workload.DomainVolcano,
		Zones:   []string{"vesuvius", "etna", "rainier"},
		Windows: r.scale.n(60), SensorsPerZone: 3,
		WindowDur: time.Hour, Seed: 22,
	})
	sets = append(sets, workload.Generate(workload.Config{
		Domain:  workload.DomainTraffic,
		Zones:   []string{"london", "boston"},
		Windows: r.scale.n(60), SensorsPerZone: 3,
		WindowDur: time.Hour, Seed: 23,
	})...)
	// Tag half the sets with a software version (the paper's sensor
	// upgrade example: information a filename cannot carry).
	for i := range sets {
		if i%2 == 0 {
			sets[i].Attrs = append(sets[i].Attrs,
				provenance.Attr(provenance.KeySoftware, provenance.String("fw-2.1")))
		}
	}
	ids, err := workload.IngestAll(s, sets)
	if err != nil {
		return nil, err
	}

	// Conventional filenames for the same records.
	conv := naming.Default()
	names := make([]string, len(sets))
	records := make([]*provenance.Record, len(sets))
	for i, id := range ids {
		rec, err := s.GetRecord(id)
		if err != nil {
			return nil, err
		}
		records[i] = rec
		names[i] = conv.Encode(rec)
	}

	// Query classes: (description, attr key, attr value, PASS predicate).
	type class struct {
		name  string
		key   string
		value provenance.Value
	}
	classes := []class{
		{"domain=volcano", provenance.KeyDomain, provenance.String("volcano")},
		{"zone=vesuvius", provenance.KeyZone, provenance.String("vesuvius")},
		{"sensor-class=camera", provenance.KeySensorClass, provenance.String("camera")},
		{"sensor-id=<one sensor>", provenance.KeySensorID, provenance.String("vesuvius-vol-01")},
		{"software=fw-2.1", provenance.KeySoftware, provenance.String("fw-2.1")},
	}

	table := metrics.NewTable("E2: filenames vs provenance-as-name",
		"query", "expressible", "file-prec", "file-recall", "pass-prec", "pass-recall")
	findings := map[string]float64{}

	for _, c := range classes {
		// Ground truth by flat scan.
		var truth []provenance.ID
		for i, rec := range records {
			if rec.Has(c.key, c.value) {
				truth = append(truth, ids[i])
			}
		}
		// Filename answer.
		var fileGot []provenance.ID
		for i, name := range names {
			if conv.MatchName(name, c.key, c.value.AsString()) {
				fileGot = append(fileGot, ids[i])
			}
		}
		fileQ := query.Score(fileGot, truth)
		// PASS answer.
		passGot, err := s.Query(query.AttrEq{Key: c.key, Value: c.value})
		if err != nil {
			return nil, err
		}
		passQ := query.Score(passGot, truth)
		expressible := conv.CanExpress(c.key)
		table.AddRow(c.name, expressible, fileQ.Precision, fileQ.Recall, passQ.Precision, passQ.Recall)
		findings["file_recall_"+c.key] = fileQ.Recall
		findings["pass_recall_"+c.key] = passQ.Recall
	}
	return &Result{
		ID:       "E2",
		Title:    "Conventional filenames vs provenance-as-name",
		Table:    table,
		Findings: findings,
		Notes: []string{
			"inexpressible attributes (sensor-id, software) have file recall 0 while PASS stays at 1",
		},
	}, nil
}

// E3IndexStructures — §II-B: flat name-to-value scans vs the augmented
// index structures (inverted + time-interval + ancestry).
func (r *Runner) E3IndexStructures() (*Result, error) {
	s, done, err := openScratchStore("e3")
	if err != nil {
		return nil, err
	}
	defer done()

	sets := workload.Generate(workload.Config{
		Domain:  workload.DomainTraffic,
		Zones:   []string{"london", "boston", "tokyo", "seattle"},
		Windows: r.scale.n(250), SensorsPerZone: 4,
		WindowDur: time.Hour, Seed: 33,
	})
	if _, err := workload.IngestAll(s, sets); err != nil {
		return nil, err
	}
	// Add a lineage component for the recursive query.
	chain, err := workload.BuildChain(s, r.scale.n(48), 34)
	if err != nil {
		return nil, err
	}

	preds := []struct {
		name string
		p    query.Predicate
	}{
		{"zone=london AND domain=traffic", query.And{Preds: []query.Predicate{
			query.AttrEq{Key: provenance.KeyZone, Value: provenance.String("london")},
			query.AttrEq{Key: provenance.KeyDomain, Value: provenance.String("traffic")},
		}}},
		{"time overlap (1 window)", query.TimeOverlap{Start: 0, End: time.Hour.Nanoseconds()}},
		{"ancestors(chain leaf)", query.AncestorsOf{ID: chain[len(chain)-1], MaxDepth: index.NoLimit}},
	}

	table := metrics.NewTable("E3: flat scan vs index structures",
		"query", "flat-us", "indexed-us", "speedup", "results")
	findings := map[string]float64{}

	for _, pc := range preds {
		// Indexed.
		t0 := time.Now()
		indexed, err := s.Query(pc.p)
		if err != nil {
			return nil, err
		}
		indexedLat := time.Since(t0)

		// Flat: scan every record; ancestry flat baseline loads the whole
		// record set and walks parents by map.
		t0 = time.Now()
		var flat int
		if anc, ok := pc.p.(query.AncestorsOf); ok {
			all := make(map[provenance.ID]*provenance.Record)
			s.ScanRecords(func(id provenance.ID, rec *provenance.Record) bool {
				all[id] = rec
				return true
			})
			seen := map[provenance.ID]struct{}{}
			stack := []provenance.ID{anc.ID}
			for len(stack) > 0 {
				cur := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				rec, ok := all[cur]
				if !ok {
					continue
				}
				for _, p := range rec.Parents {
					if _, dup := seen[p]; !dup {
						seen[p] = struct{}{}
						stack = append(stack, p)
					}
				}
			}
			flat = len(seen)
		} else {
			s.ScanRecords(func(id provenance.ID, rec *provenance.Record) bool {
				if m, _ := query.Match(rec, pc.p); m {
					flat++
				}
				return true
			})
		}
		flatLat := time.Since(t0)
		if flat != len(indexed) {
			return nil, fmt.Errorf("E3 %q: flat %d != indexed %d", pc.name, flat, len(indexed))
		}
		speedup := float64(flatLat) / float64(maxDur(indexedLat, time.Microsecond))
		table.AddRow(pc.name, float64(flatLat.Microseconds()), float64(indexedLat.Microseconds()),
			speedup, len(indexed))
		findings["speedup_"+pc.name[:4]] = speedup
	}
	return &Result{
		ID:       "E3",
		Title:    "Flat name-value scan vs augmented index structures",
		Table:    table,
		Findings: findings,
		Notes:    []string{"shape check: indexed execution wins on every class and the gap grows with corpus size"},
	}, nil
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// E4TransitiveClosure — §III-B/D: closure latency vs DAG depth and shape,
// naive BFS vs memoized closure (cold and warm).
func (r *Runner) E4TransitiveClosure() (*Result, error) {
	table := metrics.NewTable("E4: transitive closure",
		"shape", "closure-size", "naive-us", "memo-cold-us", "memo-warm-us", "warm-speedup")
	findings := map[string]float64{}

	type shape struct {
		name  string
		build func(s *core.Store) (provenance.ID, error)
	}
	shapes := []shape{
		{"chain-16", func(s *core.Store) (provenance.ID, error) {
			ids, err := workload.BuildChain(s, 16, 41)
			if err != nil {
				return provenance.ZeroID, err
			}
			return ids[len(ids)-1], nil
		}},
		{fmt.Sprintf("chain-%d", r.scale.n(64)), func(s *core.Store) (provenance.ID, error) {
			ids, err := workload.BuildChain(s, r.scale.n(64), 42)
			if err != nil {
				return provenance.ZeroID, err
			}
			return ids[len(ids)-1], nil
		}},
		{"tree-d6-f2 (leafward)", func(s *core.Store) (provenance.ID, error) {
			levels, err := workload.BuildTree(s, 6, 2, 43)
			if err != nil {
				return provenance.ZeroID, err
			}
			leaves := levels[len(levels)-1]
			return leaves[len(leaves)-1], nil
		}},
		{"fanin-32", func(s *core.Store) (provenance.ID, error) {
			_, final, err := workload.BuildFanIn(s, 32, 44)
			return final, err
		}},
	}

	for _, sh := range shapes {
		s, done, err := openScratchStore("e4")
		if err != nil {
			return nil, err
		}
		target, err := sh.build(s)
		if err != nil {
			done()
			return nil, err
		}
		ix := s.Index()

		t0 := time.Now()
		naive, err := ix.NaiveAncestors(target, index.NoLimit)
		if err != nil {
			done()
			return nil, err
		}
		naiveLat := time.Since(t0)

		t0 = time.Now()
		cold, err := ix.Ancestors(target, index.NoLimit)
		if err != nil {
			done()
			return nil, err
		}
		coldLat := time.Since(t0)

		t0 = time.Now()
		warm, err := ix.Ancestors(target, index.NoLimit)
		if err != nil {
			done()
			return nil, err
		}
		warmLat := time.Since(t0)

		if len(naive) != len(cold) || len(cold) != len(warm) {
			done()
			return nil, fmt.Errorf("E4 %s: result size mismatch %d/%d/%d", sh.name, len(naive), len(cold), len(warm))
		}
		speedup := float64(naiveLat) / float64(maxDur(warmLat, time.Nanosecond))
		table.AddRow(sh.name, len(naive), float64(naiveLat.Microseconds()),
			float64(coldLat.Microseconds()), float64(warmLat.Microseconds()), speedup)
		findings["warm_speedup_"+sh.name] = speedup
		findings["size_"+sh.name] = float64(len(naive))
		done()
	}
	return &Result{
		ID:       "E4",
		Title:    "Transitive closure: naive walk vs memoized",
		Table:    table,
		Findings: findings,
		Notes:    []string{"ancestor sets are immutable in append-only provenance, so warm closure answers are cache hits"},
	}, nil
}

// E10Recovery — §IV Reliability: crash (no Close), reopen, audit; recovery
// time vs WAL size.
func (r *Runner) E10Recovery() (*Result, error) {
	table := metrics.NewTable("E10: crash recovery",
		"records", "wal-bytes", "recover-ms", "clean", "dangling", "broken-index")
	findings := map[string]float64{}

	// Each corpus size is an independent store in its own scratch
	// directory — but the cells run SERIALLY even in parallel mode:
	// recover-ms is a real wall-clock latency measurement, and a sibling
	// cell ingesting on the same disk and cores would contaminate it
	// with scheduler contention rather than measure recovery.
	cells := []int{r.scale.n(1000), r.scale.n(3000), r.scale.n(6000)}
	type out struct {
		records   int
		walBytes  int64
		recoverMs float64
		clean     bool
		dangling  int
		brokenIx  int
	}
	runCell := func(n int) (out, error) {
		dir, cleanup, err := tempDir("e10")
		if err != nil {
			return out{}, err
		}
		defer cleanup()
		s, err := core.Open(dir, core.Options{Clock: monotonicClock()})
		if err != nil {
			return out{}, err
		}
		defer s.Close() // release fds of the abandoned instance
		sets := workload.Generate(workload.Config{
			Domain:  workload.DomainWeather,
			Zones:   []string{"boston"},
			Windows: n, SensorsPerZone: 1, ReadingsPerSensor: 2,
			WindowDur: time.Minute, Seed: uint64(n),
		})
		if _, err := workload.IngestAll(s, sets); err != nil {
			return out{}, err
		}
		// Interleave derivations so the lineage graph is at risk too.
		if _, err := workload.BuildChain(s, 20, uint64(n)); err != nil {
			return out{}, err
		}
		walBytes := s.KV().Stats().WALSize
		// Crash: abandon s without Close.

		t0 := time.Now()
		s2, err := core.Open(dir, core.Options{Clock: monotonicClock()})
		if err != nil {
			return out{}, err
		}
		defer s2.Close()
		recoverLat := time.Since(t0)
		rep, err := s2.VerifyConsistency()
		if err != nil {
			return out{}, err
		}
		return out{
			records:   rep.Records,
			walBytes:  walBytes,
			recoverMs: float64(recoverLat.Milliseconds()),
			clean:     rep.Clean(),
			dangling:  rep.DanglingParents,
			brokenIx:  rep.BrokenIndex,
		}, nil
	}
	for _, n := range cells {
		o, err := runCell(n)
		if err != nil {
			return nil, err
		}
		table.AddRow(o.records, o.walBytes, o.recoverMs, o.clean, o.dangling, o.brokenIx)
		findings[fmt.Sprintf("clean_%d", n)] = b2f(o.clean)
		findings[fmt.Sprintf("recover_ms_%d", n)] = o.recoverMs
	}
	return &Result{
		ID:       "E10",
		Title:    "Crash recovery: provenance consistent with data",
		Table:    table,
		Findings: findings,
		Notes:    []string{"shape check: every recovery audit is clean; recovery time grows ~linearly with WAL size"},
	}, nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// E12PASSProperties — §V: P1–P4 as measurements.
func (r *Runner) E12PASSProperties() (*Result, error) {
	s, done, err := openScratchStore("e12")
	if err != nil {
		return nil, err
	}
	defer done()

	table := metrics.NewTable("E12: PASS properties", "property", "check", "value")
	findings := map[string]float64{}

	// P3: k ingests of distinct data with identical attributes yield k
	// distinct IDs.
	k := r.scale.n(2000)
	seen := make(map[provenance.ID]struct{}, k)
	rng := workload.NewRand(77)
	for i := 0; i < k; i++ {
		ts := &tuple.Set{}
		ts.Append(tuple.Reading{SensorID: "p3", Time: int64(i), Value: rng.Float64()})
		id, err := s.IngestTupleSet(ts, provenance.Attr("fixed", provenance.String("attrs")))
		if err != nil {
			return nil, err
		}
		seen[id] = struct{}{}
	}
	collisions := k - len(seen)
	table.AddRow("P3 distinct provenance", fmt.Sprintf("%d ingests", k), fmt.Sprintf("%d collisions", collisions))
	findings["p3_collisions"] = float64(collisions)

	// P4: GC every intermediate payload of a chain; closure still complete.
	chain, err := workload.BuildChain(s, 24, 78)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	removed := 0
	for _, id := range chain[:len(chain)-1] {
		if err := s.RemoveData(id); err != nil {
			return nil, err
		}
		removed++
	}
	gcLat := time.Since(t0)
	anc, err := s.Ancestors(chain[len(chain)-1], index.NoLimit)
	if err != nil {
		return nil, err
	}
	table.AddRow("P4 closure after GC", fmt.Sprintf("%d payloads removed", removed),
		fmt.Sprintf("%d/%d ancestors reachable", len(anc), len(chain)-1))
	findings["p4_ancestors_after_gc"] = float64(len(anc))
	findings["p4_expected"] = float64(len(chain) - 1)
	findings["gc_us_per_record"] = float64(gcLat.Microseconds()) / float64(removed)

	// P2: provenance queryable — attribute query returns the P3 corpus.
	got, err := s.Query(query.AttrEq{Key: "fixed", Value: provenance.String("attrs")})
	if err != nil {
		return nil, err
	}
	table.AddRow("P2 queryable", "attr query over P3 corpus", fmt.Sprintf("%d/%d found", len(got), k))
	findings["p2_found"] = float64(len(got))
	findings["p2_expected"] = float64(k)

	// P1: first-class — records decode to typed attributes, not strings.
	rec, err := s.GetRecord(chain[0])
	if err != nil {
		return nil, err
	}
	typed := len(rec.Attributes) > 0 && rec.Attributes[0].Value.Kind != 0
	table.AddRow("P1 first-class", "typed attributes on decode", typed)
	findings["p1_typed"] = b2f(typed)

	// Audit stays clean through all of the above.
	rep, err := s.VerifyConsistency()
	if err != nil {
		return nil, err
	}
	table.AddRow("audit", "VerifyConsistency", rep.Clean())
	findings["audit_clean"] = b2f(rep.Clean())

	return &Result{
		ID:       "E12",
		Title:    "PASS properties P1–P4",
		Table:    table,
		Findings: findings,
	}, nil
}
