package harness

import (
	"strings"
	"testing"
)

// E16 shape checks: the churn story each architecture must tell. As with
// the rest of the suite, assertions pin WHO recovers HOW — not absolute
// byte counts.

func TestE16ChurnShape(t *testing.T) {
	res, err := testRunner().E16Churn()
	if err != nil {
		t.Fatal(err)
	}
	// Whether a given cell's crash set happens to own any record homes
	// depends on hash placement, so "the crash tore something" and "keys
	// were re-homed" are asserted across the sweep; the per-scenario
	// mechanism is pinned by the KeyRehoming conformance law.
	dhtTorn, dhtRehomed := 0.0, 0.0
	for _, n := range []string{"n16", "n64"} {
		for _, c := range []string{"c12", "c25"} {
			cell := "_" + n + "_" + c

			// The DHT: stabilization alone — victims still down — re-homes
			// the dead nodes' keys onto their successors and restores
			// recall (the acceptance bar: >= 0.99 after stabilization).
			down := res.Finding("recall_down_dht" + cell)
			stab := res.Finding("recall_stab_dht" + cell)
			dhtTorn += 1 - down
			dhtRehomed += res.Finding("rehomed_dht" + cell)
			if stab < 0.99 {
				t.Fatalf("dht%s: recall %v after stabilization, want >= 0.99 (re-homing failed)", cell, stab)
			}
			if stab < down {
				t.Fatalf("dht%s: stabilization LOWERED recall (%v -> %v)", cell, down, stab)
			}

			// Locality-bound models: the victims' records live only at the
			// victims, so no amount of down-time maintenance restores them —
			// and healing does.
			if v := res.Finding("recall_stab_passnet" + cell); v >= 1 {
				t.Fatalf("passnet%s: recall %v with victims down — locality was faked", cell, v)
			}
			for _, model := range []string{"central", "softstate", "dht", "passnet", "passnet-replay"} {
				if v := res.Finding("recall_heal_" + model + cell); v != 1 {
					t.Fatalf("%s%s: recall %v after heal + recovery rounds, want 1", model, cell, v)
				}
			}

			// The rejoin snapshot: same scenario as passnet-replay, but the
			// rejoined site converges immediately instead of waiting out
			// gossip rounds. (The byte comparison lives in the FastRejoin
			// conformance law, whose scenario queues many deltas per origin;
			// here each origin queues one batched delta, so replay is
			// byte-lean and the snapshot buys immediacy.)
			if rj := res.Finding("rounds_passnet" + cell); rj != 0 {
				t.Fatalf("passnet%s: rejoin needed %v gossip rounds, want 0 (snapshot should converge immediately)", cell, rj)
			}
			if rp := res.Finding("rounds_passnet-replay" + cell); rp < 1 {
				t.Fatalf("passnet-replay%s: converged in %v rounds without gossip — the crash queued nothing", cell, rp)
			}
			if rj := res.Finding("recbytes_passnet" + cell); rj <= 0 {
				t.Fatalf("passnet%s: rejoin recovery charged %v bytes — the snapshot was free", cell, rj)
			}

			// The warehouse untouched by churn keeps answering in full.
			if v := res.Finding("recall_down_central" + cell); v != 1 {
				t.Fatalf("central%s: recall %v with only leaf sites down", cell, v)
			}
		}
	}
	if dhtTorn == 0 {
		t.Fatal("no dht cell lost any recall to the crashes — churn tore nothing anywhere")
	}
	if dhtRehomed == 0 {
		t.Fatal("no dht cell re-homed any replicas across the whole sweep")
	}
	for name, v := range res.Findings {
		if strings.HasPrefix(name, "recall_") && (v < 0 || v > 1) {
			t.Fatalf("%s = %v out of [0,1]", name, v)
		}
	}
}

// TestE16Deterministic: the whole churn experiment — crash pattern,
// stabilization, rejoin transfer, recovery accounting — must be
// byte-for-byte reproducible run to run.
func TestE16Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("repeat run in -short mode")
	}
	r1, err := NewRunner(0.1).E16Churn()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRunner(0.1).E16Churn()
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Findings) != len(r2.Findings) {
		t.Fatalf("finding counts differ: %d vs %d", len(r1.Findings), len(r2.Findings))
	}
	for name, v := range r1.Findings {
		if r2.Findings[name] != v {
			t.Fatalf("%s diverged across identical runs: %v vs %v", name, v, r2.Findings[name])
		}
	}
	if r1.Table.String() != r2.Table.String() {
		t.Fatal("result tables diverged across identical runs")
	}
}
