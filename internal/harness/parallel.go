package harness

import (
	"runtime"
	"sync"
)

// The parallel cell runner. Every sweep experiment is a grid of
// independent cells (model × sites × rate, ...): each cell builds its own
// private netsim.Network, its own model, and its own seeded RNG/clock, so
// cells share no mutable state and can run on all cores at once. runCells
// is the one place that knows how — experiments declare their grid as a
// slice of cell descriptors plus a cell function, and get the outputs
// back in input order, which keeps the assembled tables and findings
// byte-identical to a serial run (pinned by TestSerialParallelEquivalence).

// runCells executes run over every cell and returns the outputs in input
// order. With the runner's parallel mode on (the default), cells are
// distributed over a GOMAXPROCS-wide worker pool; determinism is the
// cell function's obligation: it must derive all randomness from the cell
// descriptor, never from shared state. In serial mode — or for degenerate
// single-cell grids — cells run in order on the calling goroutine.
//
// On failure the error of the lowest-indexed failing cell is returned, so
// a broken sweep reports the same cell no matter how the pool scheduled
// it. (Serial mode stops at the first failure; parallel mode finishes
// in-flight cells first — acceptable, since any error aborts the whole
// experiment anyway.)
func runCells[C, O any](r *Runner, cells []C, run func(C) (O, error)) ([]O, error) {
	outs := make([]O, len(cells))
	if !r.Parallel() || len(cells) < 2 {
		for i, c := range cells {
			o, err := run(c)
			if err != nil {
				return nil, err
			}
			outs[i] = o
		}
		return outs, nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(cells) {
		workers = len(cells)
	}
	errs := make([]error, len(cells))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				outs[i], errs[i] = run(cells[i])
			}
		}()
	}
	for i := range cells {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outs, nil
}
