package harness

import (
	"reflect"
	"testing"
)

// E18 shape checks: who collapses under open-loop overload, who sheds
// gracefully, and who absorbs. Assertions are relational (model A vs
// model B at the same multiplier, one multiplier vs the next) so they pin
// the story rather than absolute latencies.

func TestE18OverloadShape(t *testing.T) {
	res, err := testRunner().E18Overload()
	if err != nil {
		t.Fatal(err)
	}
	f := res.Finding

	// Every model in a multiplier column faces the same arrival schedule.
	for _, m := range []string{"m1", "m10", "m100"} {
		want := f("offered_central_" + m)
		if want <= 0 {
			t.Fatalf("%s: no offered load", m)
		}
		for _, model := range []string{"central-adm", "distdb", "feddb", "softstate", "hier", "dht", "dht-adm", "passnet", "passnet-adm"} {
			if v := f("offered_" + model + "_" + m); v != want {
				t.Fatalf("offered_%s_%s = %v, want %v (shared schedule)", model, m, v, want)
			}
		}
	}

	// At nominal load the cheap-ingest models and the healthy expensive
	// ones all index everything; at 100x the local-append architectures
	// still do. That is the paper's decentralization argument under load.
	for _, model := range []string{"central", "feddb", "softstate", "hier", "passnet", "passnet-adm"} {
		if v := f("recall_" + model + "_m1"); v != 1 {
			t.Errorf("recall_%s_m1 = %v, want 1.0", model, v)
		}
	}
	for _, model := range []string{"feddb", "softstate", "passnet", "passnet-adm"} {
		if v := f("recall_" + model + "_m100"); v != 1 {
			t.Errorf("recall_%s_m100 = %v, want 1.0 (local append absorbs)", model, v)
		}
	}

	// Collapse: at 100x the WAN-bottlenecked models leave most of the
	// offered load in the backlog, never indexed.
	for _, model := range []string{"central", "distdb", "hier", "dht"} {
		off := f("offered_" + model + "_m100")
		if bl := f("backlog_" + model + "_m100"); bl < off/2 {
			t.Errorf("backlog_%s_m100 = %v of %v offered, want a collapse (>= half)", model, bl, off)
		}
		if v := f("recall_" + model + "_m100"); v >= 0.1 {
			t.Errorf("recall_%s_m100 = %v, want < 0.1 under collapse", model, v)
		}
	}

	// Graceful shedding: central-adm refuses overload work instead of
	// queueing it forever, so its tail stays bounded by the admission
	// queue cap while plain central's tail grows with the backlog.
	if v := f("shedrate_central-adm_m100") + f("shedqueue_central-adm_m100"); v <= 0 {
		t.Error("central-adm sheds nothing at 100x")
	}
	if a, c := f("p99_central-adm_m100"), f("p99_central_m100"); a >= c {
		t.Errorf("p99 central-adm %v >= central %v at 100x: shedding did not bound the tail", a, c)
	}
	if a, c := f("p999_central-adm_m100"), f("p999_central_m100"); a >= c {
		t.Errorf("p999 central-adm %v >= central %v at 100x", a, c)
	}
	if v := f("backlog_central-adm_m100"); v != 0 {
		t.Errorf("backlog_central-adm_m100 = %v, want 0 (bounded queue drains)", v)
	}
	// The bound itself: admitted work waits at most the queue cap (plus
	// one service time), far under plain central's multi-round convoy.
	bound := float64((overloadQueueCap + 1) * overloadRound.Milliseconds())
	if v := f("p999_central-adm_m100"); v > bound {
		t.Errorf("p999_central-adm_m100 = %v ms, want <= queue-cap bound %v ms", v, bound)
	}

	// Shedding also beats collapsing on recall: refusing the hot tail
	// keeps the queue serving instead of convoying behind it.
	if a, c := f("recall_central-adm_m100"), f("recall_central_m100"); a <= c {
		t.Errorf("recall central-adm %v <= central %v at 100x", a, c)
	}

	// Capacity-matched admission is free: passnet-adm absorbs 100x with
	// zero shed and a tail far below the expensive models'.
	if v := f("shedrate_passnet-adm_m100") + f("shedqueue_passnet-adm_m100"); v != 0 {
		t.Errorf("passnet-adm shed %v at 100x despite ample capacity", v)
	}
	if a, c := f("p99_passnet-adm_m100"), f("p99_central-adm_m100"); a >= c {
		t.Errorf("p99 passnet-adm %v >= central-adm %v at 100x", a, c)
	}

	// Load actually grows across columns, and collapse deepens with it.
	if o1, o100 := f("offered_central_m1"), f("offered_central_m100"); o100 < 50*o1 {
		t.Errorf("offered grew only %vx from 1x to 100x column", o100/o1)
	}
	if r10, r100 := f("recall_central_m10"), f("recall_central_m100"); r100 > r10 {
		t.Errorf("central recall rose from %v at 10x to %v at 100x", r10, r100)
	}

	// Query latency is a local/index property, not an ingest property:
	// the hot-key query tail must not melt with ingest overload.
	for _, model := range []string{"central", "passnet", "feddb"} {
		q1, q100 := f("qp99_"+model+"_m1"), f("qp99_"+model+"_m100")
		if q100 > 3*q1+1 {
			t.Errorf("qp99_%s grew %v -> %v under ingest overload", model, q1, q100)
		}
	}
}

// TestE18Deterministic pins the whole experiment — schedules, admission,
// reservoir quantiles — as replayable: two runs, identical findings and
// rendered table.
func TestE18Deterministic(t *testing.T) {
	a, err := testRunner().E18Overload()
	if err != nil {
		t.Fatal(err)
	}
	b, err := testRunner().E18Overload()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Findings, b.Findings) {
		t.Fatal("E18 findings differ between identical runs")
	}
	if a.Table.String() != b.Table.String() {
		t.Fatal("E18 tables differ between identical runs")
	}
}
