package harness

import (
	"fmt"
	"time"

	"pass/internal/arch"
	"pass/internal/arch/central"
	"pass/internal/arch/dht"
	"pass/internal/arch/distdb"
	"pass/internal/arch/feddb"
	"pass/internal/arch/hier"
	"pass/internal/arch/passnet"
	"pass/internal/arch/softstate"
	"pass/internal/geo"
	"pass/internal/metrics"
	"pass/internal/netsim"
	"pass/internal/provenance"
	"pass/internal/workload"
)

// Experiments over the architecture models: E5–E9, E11, E13. The sweeps
// run one cell per (model, size, ...) grid point through runCells: each
// cell builds its own network, model, clock, and workload from the cell
// descriptor alone, so the cells parallelize without changing a byte of
// the output.

// kv is one named finding produced by a sweep cell; cells return slices
// of these so the findings map can be assembled in deterministic order
// after the parallel section.
type kv struct {
	k string
	v float64
}

// newGrid builds an n-site network on a grid, one locality zone per site.
func newGrid(n int) (*netsim.Network, []netsim.SiteID) {
	net := netsim.New(netsim.Config{})
	m := geo.GridLayout(n, 500, 50)
	var sites []netsim.SiteID
	for _, z := range m.Zones() {
		sites = append(sites, net.AddSite("site-"+z.Name, z.Center, z.Name))
	}
	return net, sites
}

// newWorld builds two sites per world city: index 2k is the producer and
// 2k+1 the consumer of city k.
func newWorld() (*netsim.Network, []netsim.SiteID) {
	net := netsim.New(netsim.Config{})
	var sites []netsim.SiteID
	for _, z := range geo.WorldCities().Zones() {
		sites = append(sites,
			net.AddSite(z.Name+"-producer", z.Center, z.Name),
			net.AddSite(z.Name+"-consumer", geo.Point{X: z.Center.X + 5, Y: z.Center.Y}, z.Name))
	}
	return net, sites
}

// genPubs turns generated tuple sets into publishable provenance records,
// placing each at the site chosen by place.
func genPubs(sets []workload.GenSet, clock func() int64, place func(i int, g workload.GenSet) netsim.SiteID) ([]arch.Pub, error) {
	pubs := make([]arch.Pub, 0, len(sets))
	for i, g := range sets {
		rec, id, err := provenance.NewRaw(g.Set.Digest(), int64(g.Set.EncodedSize())).
			Attrs(g.Attrs...).
			CreatedAt(clock()).
			Build()
		if err != nil {
			return nil, err
		}
		pubs = append(pubs, arch.Pub{ID: id, Rec: rec, Origin: place(i, g)})
	}
	return pubs, nil
}

// chainPubs builds a derivation chain whose records rotate across the
// given origin sites, root first.
func chainPubs(length int, origins []netsim.SiteID, clock func() int64) ([]arch.Pub, error) {
	var pubs []arch.Pub
	var prev provenance.ID
	for i := 0; i < length; i++ {
		var digest [32]byte
		digest[0] = byte(i)
		digest[1] = byte(i >> 8)
		digest[2] = 0xC4
		var b *provenance.Builder
		if i == 0 {
			b = provenance.NewRaw(digest, 64)
		} else {
			b = provenance.NewDerived(digest, 64, "step", fmt.Sprint(i), prev)
		}
		rec, id, err := b.CreatedAt(clock()).Build()
		if err != nil {
			return nil, err
		}
		pubs = append(pubs, arch.Pub{ID: id, Rec: rec, Origin: origins[i%len(origins)]})
		prev = id
	}
	return pubs, nil
}

// E5UpdateScalability — §IV: publish cost per model as sites grow.
func (r *Runner) E5UpdateScalability() (*Result, error) {
	table := metrics.NewTable("E5: publish scalability",
		"model", "sites", "publishes", "wan-bytes", "msgs", "mean-pub-ms")
	findings := map[string]float64{}

	perSite := r.scale.n(40)
	roster := modelRoster()
	type cell struct{ n, mi int }
	var cells []cell
	for _, n := range []int{4, 8, 16} {
		for mi := range roster {
			cells = append(cells, cell{n, mi})
		}
	}
	type out struct {
		name     string
		pubs     int
		wanBytes int64
		msgs     int64
		meanMs   float64
	}
	outs, err := runCells(r, cells, func(c cell) (out, error) {
		clock := monotonicClock()
		sets := workload.Generate(workload.Config{
			Domain:  workload.DomainTraffic,
			Zones:   zoneNames(c.n),
			Windows: perSite, SensorsPerZone: 2, ReadingsPerSensor: 2,
			WindowDur: time.Hour, Seed: uint64(500 + c.n),
		})
		net, sites := newGrid(c.n)
		m := roster[c.mi](net, sites)
		pubs, err := genPubs(sets, clock, func(i int, g workload.GenSet) netsim.SiteID {
			return sites[zoneIndex(g.Zone)%len(sites)]
		})
		if err != nil {
			return out{}, err
		}
		net.ResetStats()
		var totalLat time.Duration
		for _, p := range pubs {
			d, err := m.Publish(p)
			if err != nil {
				return out{}, fmt.Errorf("%s: %w", m.Name(), err)
			}
			totalLat += d
		}
		if err := m.Tick(); err != nil {
			return out{}, err
		}
		st := net.Stats()
		return out{
			name:     m.Name(),
			pubs:     len(pubs),
			wanBytes: st.WANBytes,
			msgs:     st.Messages,
			meanMs:   float64(totalLat.Microseconds()) / float64(len(pubs)) / 1000,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		o := outs[i]
		table.AddRow(o.name, c.n, o.pubs, o.wanBytes, o.msgs, o.meanMs)
		findings[fmt.Sprintf("wan_%s_%d", o.name, c.n)] = float64(o.wanBytes)
		findings[fmt.Sprintf("publat_%s_%d", o.name, c.n)] = o.meanMs
	}
	return &Result{
		ID:       "E5",
		Title:    "Publish scalability across architectures",
		Table:    table,
		Findings: findings,
		Notes: []string{
			"shape check: central/distdb/dht WAN bytes grow with total rate; feddb/softstate/passnet keep full metadata local",
		},
	}, nil
}

func zoneNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("zone-%d", i)
	}
	return out
}

func zoneIndex(zone string) int {
	n := 0
	for i := len(zone) - 1; i >= 0; i-- {
		c := zone[i]
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int(c-'0')
	}
	return n
}

// modelRoster returns one builder per Section IV architecture, in the
// standard comparison configuration (warehouse at sites[0], two distdb
// replicas, two soft-state index nodes, zone-primary hierarchy, batched
// passnet digests). Shared by E5 and E14.
func modelRoster() []func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
	return []func(net *netsim.Network, sites []netsim.SiteID) arch.Model{
		func(net *netsim.Network, sites []netsim.SiteID) arch.Model { return central.New(net, sites[0]) },
		func(net *netsim.Network, sites []netsim.SiteID) arch.Model { return distdb.New(net, sites, 2) },
		func(net *netsim.Network, sites []netsim.SiteID) arch.Model { return feddb.New(net, sites, 0) },
		func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			idx := sites[:1]
			if len(sites) > 2 {
				idx = sites[:2]
			}
			return softstate.New(net, sites, idx, 1)
		},
		func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			h, err := hier.New(net, sites, []string{provenance.KeyZone, provenance.KeySensorClass})
			if err != nil {
				panic(err)
			}
			return h
		},
		func(net *netsim.Network, sites []netsim.SiteID) arch.Model { return dht.New(net, sites) },
		func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return passnet.New(net, sites, passnet.Options{})
		},
	}
}

// E6Locality — §III-D and the Pier observation: a Boston consumer querying
// Boston data should not pay world-scale round trips.
func (r *Runner) E6Locality() (*Result, error) {
	table := metrics.NewTable("E6: locality (boston consumer, boston data)",
		"model", "mean-query-ms", "wan-bytes(query)", "wan-msgs(query)")
	findings := map[string]float64{}

	k := r.scale.n(60)
	queries := r.scale.n(30)
	builders := worldBuilders()
	cells := make([]int, len(builders))
	for i := range cells {
		cells[i] = i
	}
	type out struct {
		name    string
		meanMs  float64
		wan     int64
		wanMsgs int64
	}
	outs, err := runCells(r, cells, func(mi int) (out, error) {
		net, sites := newWorld()
		m := builders[mi](net, sites)
		producer, consumer := sites[0], sites[1] // boston pair (see newWorld)
		clock := monotonicClock()
		sets := workload.Generate(workload.Config{
			Domain:  workload.DomainTraffic,
			Zones:   []string{"boston"},
			Windows: k, SensorsPerZone: 2, ReadingsPerSensor: 2,
			WindowDur: time.Hour, Seed: 61,
		})
		pubs, err := genPubs(sets, clock, func(int, workload.GenSet) netsim.SiteID { return producer })
		if err != nil {
			return out{}, err
		}
		for _, p := range pubs {
			if _, err := m.Publish(p); err != nil {
				return out{}, fmt.Errorf("%s: %w", m.Name(), err)
			}
		}
		if err := m.Tick(); err != nil {
			return out{}, err
		}
		net.ResetStats()
		var totalLat time.Duration
		for i := 0; i < queries; i++ {
			got, d, err := m.QueryAttr(consumer, provenance.KeyZone, provenance.String("boston"))
			if err != nil {
				return out{}, fmt.Errorf("%s: %w", m.Name(), err)
			}
			if len(got) != len(pubs) {
				return out{}, fmt.Errorf("%s: query returned %d/%d", m.Name(), len(got), len(pubs))
			}
			totalLat += d
		}
		st := net.Stats()
		return out{
			name:    m.Name(),
			meanMs:  float64(totalLat.Microseconds()) / float64(queries) / 1000,
			wan:     st.WANBytes,
			wanMsgs: st.WANMsgs,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, o := range outs {
		table.AddRow(o.name, o.meanMs, o.wan, o.wanMsgs)
		findings["qms_"+o.name] = o.meanMs
		findings["qwan_"+o.name] = float64(o.wan)
	}
	return &Result{
		ID:       "E6",
		Title:    "Locality: Boston data belongs in Boston",
		Table:    table,
		Findings: findings,
		Notes: []string{
			"shape check: passnet/feddb/hier answer in-zone; central always crosses to the warehouse; dht scatters to random homes",
		},
	}, nil
}

// worldBuilders returns the roster for the world-city topology. The
// central warehouse is deliberately placed in tokyo (far from boston) and
// passnet runs with immediate digests so results are fresh.
func worldBuilders() []func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
	return []func(net *netsim.Network, sites []netsim.SiteID) arch.Model{
		func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return central.New(net, sites[8]) // tokyo-producer hosts the warehouse
		},
		func(net *netsim.Network, sites []netsim.SiteID) arch.Model { return distdb.New(net, sites, 2) },
		func(net *netsim.Network, sites []netsim.SiteID) arch.Model { return feddb.New(net, sites, 0) },
		func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return softstate.New(net, sites, sites[8:9], 1)
		},
		func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			h, err := hier.New(net, sites, []string{provenance.KeyZone, provenance.KeySensorClass})
			if err != nil {
				panic(err)
			}
			return h
		},
		func(net *netsim.Network, sites []netsim.SiteID) arch.Model { return dht.New(net, sites) },
		func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return passnet.New(net, sites, passnet.Options{ImmediateDigest: true})
		},
	}
}

// E7SoftStateStaleness — §IV-B: recall vs refresh period.
func (r *Runner) E7SoftStateStaleness() (*Result, error) {
	table := metrics.NewTable("E7: soft-state staleness",
		"model", "refresh-every", "publishes", "mean-recall", "min-recall")
	findings := map[string]float64{}

	k := r.scale.n(64)
	genSets := func() []workload.GenSet {
		return workload.Generate(workload.Config{
			Domain:  workload.DomainWeather,
			Zones:   []string{"zone-0"},
			Windows: k, SensorsPerZone: 1, ReadingsPerSensor: 2,
			WindowDur: time.Minute, Seed: 71,
		})
	}

	// Cell 0..4 sweep the softstate refresh period; the last cell is the
	// passnet-immediate contrast, which never goes stale.
	periods := []int{1, 2, 4, 8, 16}
	cells := make([]int, len(periods)+1)
	for i := range cells {
		cells[i] = i
	}
	type out struct {
		model     string
		period    string
		pubs      int
		mean, min float64
	}
	outs, err := runCells(r, cells, func(ci int) (out, error) {
		net, sites := newGrid(4)
		var m arch.Model
		label, periodLabel := "softstate", ""
		if ci < len(periods) {
			m = softstate.New(net, sites, sites[:1], periods[ci])
			periodLabel = fmt.Sprint(periods[ci])
		} else {
			m = passnet.New(net, sites, passnet.Options{ImmediateDigest: true})
			label, periodLabel = "passnet-immediate", "-"
		}
		pubs, err := genPubs(genSets(), monotonicClock(), func(int, workload.GenSet) netsim.SiteID { return sites[0] })
		if err != nil {
			return out{}, err
		}
		sumRecall, minRecall := 0.0, 1.0
		for i, p := range pubs {
			if _, err := m.Publish(p); err != nil {
				return out{}, err
			}
			if ci < len(periods) {
				if err := m.Tick(); err != nil {
					return out{}, err
				}
			}
			got, _, err := m.QueryAttr(sites[2], provenance.KeyDomain, provenance.String("weather"))
			if err != nil {
				return out{}, err
			}
			recall := float64(len(got)) / float64(i+1)
			sumRecall += recall
			if recall < minRecall {
				minRecall = recall
			}
		}
		return out{model: label, period: periodLabel, pubs: len(pubs),
			mean: sumRecall / float64(len(pubs)), min: minRecall}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, o := range outs {
		table.AddRow(o.model, o.period, o.pubs, o.mean, o.min)
		if i < len(periods) {
			findings[fmt.Sprintf("recall_p%d", periods[i])] = o.mean
		} else {
			findings["recall_passnet"] = o.mean
		}
	}
	return &Result{
		ID:       "E7",
		Title:    "Soft-state staleness vs refresh period",
		Table:    table,
		Findings: findings,
		Notes:    []string{"shape check: recall decays monotonically as the refresh period grows"},
	}, nil
}

// E8HierarchyOrdering — §IV-B: primary- vs secondary-attribute query cost
// under a significance ordering.
func (r *Runner) E8HierarchyOrdering() (*Result, error) {
	n := r.scale.n(16)
	if n < 4 {
		n = 4
	}
	net, sites := newGrid(n)
	m, err := hier.New(net, sites, []string{provenance.KeyZone, provenance.KeySensorClass})
	if err != nil {
		return nil, err
	}
	clock := monotonicClock()
	sets := workload.Generate(workload.Config{
		Domain:  workload.DomainTraffic,
		Zones:   zoneNames(n),
		Windows: r.scale.n(20), SensorsPerZone: 3, ReadingsPerSensor: 2,
		WindowDur: time.Hour, Seed: 81,
	})
	pubs, err := genPubs(sets, clock, func(i int, g workload.GenSet) netsim.SiteID {
		return sites[zoneIndex(g.Zone)%len(sites)]
	})
	if err != nil {
		return nil, err
	}
	for _, p := range pubs {
		if _, err := m.Publish(p); err != nil {
			return nil, err
		}
	}

	table := metrics.NewTable(fmt.Sprintf("E8: significance ordering (%d servers)", n),
		"query-attribute", "servers-contacted", "latency-ms", "wan-bytes", "results")
	findings := map[string]float64{}

	runQuery := func(label, metricKey, key string, val provenance.Value) error {
		net.ResetStats()
		got, d, err := m.QueryAttr(sites[0], key, val)
		if err != nil {
			return err
		}
		st := net.Stats()
		table.AddRow(label, m.LastFanout(), float64(d.Microseconds())/1000, st.Bytes, len(got))
		findings["fanout_"+metricKey] = float64(m.LastFanout())
		return nil
	}
	if err := runQuery("primary (zone)", "primary", provenance.KeyZone, provenance.String("zone-1")); err != nil {
		return nil, err
	}
	if err := runQuery("secondary (sensor-class)", "secondary", provenance.KeySensorClass, provenance.String("camera")); err != nil {
		return nil, err
	}
	return &Result{
		ID:       "E8",
		Title:    "Hierarchical significance-ordering penalty",
		Table:    table,
		Findings: findings,
		Notes:    []string{"shape check: secondary-attribute queries contact every server; primary contacts exactly one"},
	}, nil
}

// E9DHTUpdates — §IV-C: update load and recursive-query cost on a DHT.
func (r *Runner) E9DHTUpdates() (*Result, error) {
	table := metrics.NewTable("E9: DHT update load",
		"nodes", "updaters", "attrs/record", "msgs/publish", "avg-hops", "republish-bytes/tick", "ancestry-msgs(depth 8)")
	findings := map[string]float64{}

	type cell struct{ n, attrs int }
	var cells []cell
	for _, n := range []int{8, 32} {
		for _, attrs := range []int{2, 6} {
			cells = append(cells, cell{n, attrs})
		}
	}
	type out struct {
		updaters  int
		pubMsgs   float64
		avgHops   float64
		tickBytes int64
		ancMsgs   int64
	}
	outs, err := runCells(r, cells, func(c cell) (out, error) {
		net, sites := newGrid(c.n)
		m := dht.New(net, sites)
		clock := monotonicClock()
		updaters := r.scale.n(200)

		var pubs []arch.Pub
		for i := 0; i < updaters; i++ {
			b := provenance.NewRaw(seedDigest(i), 64)
			for a := 0; a < c.attrs; a++ {
				b = b.Attr(fmt.Sprintf("attr-%d", a), provenance.String(fmt.Sprintf("v%d", i%7)))
			}
			rec, id, err := b.CreatedAt(clock()).Build()
			if err != nil {
				return out{}, err
			}
			pubs = append(pubs, arch.Pub{ID: id, Rec: rec, Origin: sites[i%len(sites)]})
		}
		net.ResetStats()
		for _, p := range pubs {
			if _, err := m.Publish(p); err != nil {
				return out{}, err
			}
		}
		pubMsgs := float64(net.Stats().Messages) / float64(len(pubs))

		net.ResetStats()
		if err := m.Tick(); err != nil { // republish round
			return out{}, err
		}
		tickBytes := net.Stats().Bytes

		// Recursive query cost on a depth-8 chain.
		chain, err := chainPubs(8, sites, clock)
		if err != nil {
			return out{}, err
		}
		for _, p := range chain {
			if _, err := m.Publish(p); err != nil {
				return out{}, err
			}
		}
		net.ResetStats()
		if _, _, err := m.QueryAncestors(sites[0], chain[len(chain)-1].ID); err != nil {
			return out{}, err
		}
		return out{
			updaters:  updaters,
			pubMsgs:   pubMsgs,
			avgHops:   m.AvgHops(),
			tickBytes: tickBytes,
			ancMsgs:   net.Stats().Messages,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		o := outs[i]
		table.AddRow(c.n, o.updaters, c.attrs, o.pubMsgs, o.avgHops, o.tickBytes, o.ancMsgs)
		findings[fmt.Sprintf("pubmsgs_n%d_a%d", c.n, c.attrs)] = o.pubMsgs
		findings[fmt.Sprintf("hops_n%d_a%d", c.n, c.attrs)] = o.avgHops
	}
	return &Result{
		ID:       "E9",
		Title:    "DHT update load and recursive-query cost",
		Table:    table,
		Findings: findings,
		Notes: []string{
			"shape check: messages/publish grows with queriable attributes; hops grow with ring size; every republish tick repeats the full load (the 'tens of thousands of updaters' ceiling)",
		},
	}, nil
}

func seedDigest(i int) [32]byte {
	var d [32]byte
	d[0] = byte(i)
	d[1] = byte(i >> 8)
	d[2] = byte(i >> 16)
	d[3] = 0xE9
	return d
}

// E11DistributedClosure — §V: distributed transitive closure as lineage
// spans more sites.
func (r *Runner) E11DistributedClosure() (*Result, error) {
	table := metrics.NewTable("E11: distributed transitive closure (chain depth 32)",
		"model", "sites-spanned", "latency-ms", "messages")
	findings := map[string]float64{}

	depth := r.scale.n(32)
	if depth < 8 {
		depth = 8
	}
	builders := closureBuilders()
	type cell struct {
		span int
		mi   int
	}
	var cells []cell
	for _, span := range []int{1, 4, 8} {
		for mi := range builders {
			cells = append(cells, cell{span, mi})
		}
	}
	type out struct {
		name string
		ms   float64
		msgs int64
	}
	outs, err := runCells(r, cells, func(c cell) (out, error) {
		net, sites := newGrid(16)
		m := builders[c.mi](net, sites)
		clock := monotonicClock()
		origins := sites[:c.span]
		pubs, err := chainPubs(depth, origins, clock)
		if err != nil {
			return out{}, err
		}
		for _, p := range pubs {
			if _, err := m.Publish(p); err != nil {
				return out{}, fmt.Errorf("%s: %w", m.Name(), err)
			}
		}
		if err := m.Tick(); err != nil {
			return out{}, err
		}
		net.ResetStats()
		anc, d, err := m.QueryAncestors(sites[len(sites)-1], pubs[len(pubs)-1].ID)
		if err != nil {
			return out{}, fmt.Errorf("%s span %d: %w", m.Name(), c.span, err)
		}
		if len(anc) != depth-1 {
			return out{}, fmt.Errorf("%s span %d: closure %d, want %d", m.Name(), c.span, len(anc), depth-1)
		}
		return out{
			name: m.Name(),
			ms:   float64(d.Microseconds()) / 1000,
			msgs: net.Stats().Messages,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		o := outs[i]
		table.AddRow(o.name, c.span, o.ms, o.msgs)
		findings[fmt.Sprintf("msgs_%s_span%d", o.name, c.span)] = float64(o.msgs)
	}
	return &Result{
		ID:       "E11",
		Title:    "Distributed transitive closure across merged PASS sites",
		Table:    table,
		Findings: findings,
		Notes: []string{
			"shape check: passnet messages track sites-spanned (server-side traversal); dht/softstate pay per-record lookups regardless of span; central is one round trip but paid for it at ingest (E5)",
		},
	}, nil
}

func closureBuilders() []func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
	return []func(net *netsim.Network, sites []netsim.SiteID) arch.Model{
		func(net *netsim.Network, sites []netsim.SiteID) arch.Model { return central.New(net, sites[0]) },
		func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return softstate.New(net, sites, sites[:2], 1)
		},
		func(net *netsim.Network, sites []netsim.SiteID) arch.Model { return dht.New(net, sites) },
		func(net *netsim.Network, sites []netsim.SiteID) arch.Model { return feddb.New(net, sites, 0) },
		func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return passnet.New(net, sites, passnet.Options{ImmediateDigest: true})
		},
	}
}

// E13ResourceCrossover — §IV Resource Consumption: "If distributed,
// updates may use a lot of network bandwidth; if centralized, query
// traffic may instead." Sweep the query:update ratio and find where each
// side wins on WAN bytes.
func (r *Runner) E13ResourceCrossover() (*Result, error) {
	table := metrics.NewTable("E13: WAN bytes vs query:update ratio (16 sites, 80% zone-local queries)",
		"q:u ratio", "central-bytes", "passnet-imm-bytes", "passnet-batch-bytes", "winner")
	findings := map[string]float64{}

	totalOps := r.scale.n(1500)
	ratios := []float64{0.01, 0.1, 1, 10, 100}

	// variant 0 = central, 1 = passnet-immediate, 2 = passnet-batched.
	variants := []struct {
		build   func(net *netsim.Network, sites []netsim.SiteID) arch.Model
		batched bool
	}{
		{func(net *netsim.Network, sites []netsim.SiteID) arch.Model { return central.New(net, sites[0]) }, false},
		{func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return passnet.New(net, sites, passnet.Options{ImmediateDigest: true})
		}, false},
		{func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return passnet.New(net, sites, passnet.Options{})
		}, true},
	}
	type cell struct {
		ratio float64
		vi    int
	}
	var cells []cell
	for _, ratio := range ratios {
		for vi := range variants {
			cells = append(cells, cell{ratio, vi})
		}
	}
	outs, err := runCells(r, cells, func(c cell) (int64, error) {
		// ops split: queries = total * ratio/(1+ratio).
		queries := int(float64(totalOps) * c.ratio / (1 + c.ratio))
		updates := totalOps - queries
		if updates < 1 {
			updates = 1
		}
		net, sites := newGrid(16)
		m := variants[c.vi].build(net, sites)
		batched := variants[c.vi].batched
		clock := monotonicClock()
		rng := workload.NewRand(uint64(1000 * (1 + c.ratio)))
		sets := workload.Generate(workload.Config{
			Domain:  workload.DomainTraffic,
			Zones:   zoneNames(16),
			Windows: (updates+15)/16 + 1, SensorsPerZone: 2, ReadingsPerSensor: 2,
			WindowDur: time.Hour, Seed: 131,
		})
		pubs, err := genPubs(sets, clock, func(i int, g workload.GenSet) netsim.SiteID {
			return sites[zoneIndex(g.Zone)%len(sites)]
		})
		if err != nil {
			return 0, err
		}
		if len(pubs) > updates {
			pubs = pubs[:updates]
		}
		net.ResetStats()
		// WAN byte totals are order-independent, so run the update
		// phase then the query phase (batched mode ticks every 16
		// publishes, modelling periodic gossip under sustained load).
		for pi, p := range pubs {
			if _, err := m.Publish(p); err != nil {
				return 0, err
			}
			if batched && (pi+1)%16 == 0 {
				if err := m.Tick(); err != nil {
					return 0, err
				}
			}
		}
		if err := m.Tick(); err != nil {
			return 0, err
		}
		for q := 0; q < queries; q++ {
			// 80% of queries target the querier's own zone (locality).
			qSite := sites[rng.Intn(len(sites))]
			zone := fmt.Sprintf("zone-%d", int(qSite))
			if rng.Float64() >= 0.8 {
				zone = fmt.Sprintf("zone-%d", rng.Intn(16))
			}
			if _, _, err := m.QueryAttr(qSite, provenance.KeyZone, provenance.String(zone)); err != nil {
				return 0, err
			}
		}
		return net.Stats().WANBytes, nil
	})
	if err != nil {
		return nil, err
	}
	for ri, ratio := range ratios {
		centralBytes := outs[ri*len(variants)]
		pnImmBytes := outs[ri*len(variants)+1]
		pnBatchBytes := outs[ri*len(variants)+2]
		winner := "central"
		if pnBatchBytes < centralBytes || pnImmBytes < centralBytes {
			winner = "passnet"
		}
		table.AddRow(fmt.Sprintf("%.2f", ratio), centralBytes, pnImmBytes, pnBatchBytes, winner)
		findings[fmt.Sprintf("central_%.2f", ratio)] = float64(centralBytes)
		findings[fmt.Sprintf("passnet_%.2f", ratio)] = float64(minI64(pnImmBytes, pnBatchBytes))
	}
	return &Result{
		ID:       "E13",
		Title:    "Resource consumption: central vs distributed crossover",
		Table:    table,
		Findings: findings,
		Notes: []string{
			"the paper's tension verbatim: distributed pays on updates (digest fan-out), central pays on queries (every query crosses the WAN); the winner flips with the ratio",
		},
	}, nil
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
