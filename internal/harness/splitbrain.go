package harness

import (
	"fmt"

	"pass/internal/arch"
	"pass/internal/arch/central"
	"pass/internal/arch/passnet"
	"pass/internal/arch/siteview"
	"pass/internal/metrics"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

// e15Out is one E15 cell's contribution: ordered table rows plus named
// findings, assembled after the parallel section.
type e15Out struct {
	rows [][]any
	kvs  []kv
}

// E15SplitBrain — the consistency story Section IV only names in passing
// ("Consistency: Is the metadata service consistent with the actual
// data?") made observable. A wide-area federation WILL partition; the
// question is what queries look like while it is split and how fast the
// picture heals. The per-site view model (siteview) lets the experiment
// watch the split happen: each side keeps ingesting locally, each side's
// views list only its own side's digests, and the same QueryAttr asked
// from opposite sides returns two different — both locally correct —
// answers. After the partition heals, queued digest deltas drain and
// every site's view converges to one fingerprint.
//
// For contrast the table also runs the centralized warehouse (the
// paper's strawman): the warehouse side keeps working, while the other
// side can neither publish nor query — total outage rather than
// split-brain.
//
// The two entrants are independent simulations on private networks, so
// they run as two parallel cells.
func (r *Runner) E15SplitBrain() (*Result, error) {
	table := metrics.NewTable("E15: split-brain (partition → divergent views → heal → convergence)",
		"model", "phase", "querier", "sees-left", "sees-right", "views-converged", "fp-rate")
	findings := map[string]float64{}

	nPer := r.scale.n(40)
	cells := []int{0, 1}
	outs, err := runCells(r, cells, func(ci int) (e15Out, error) {
		if ci == 0 {
			return r.e15Passnet(nPer)
		}
		return r.e15CentralContrast(nPer)
	})
	if err != nil {
		return nil, err
	}
	for _, o := range outs {
		for _, row := range o.rows {
			table.AddRow(row...)
		}
		for _, f := range o.kvs {
			findings[f.k] = f.v
		}
	}

	return &Result{
		ID:       "E15",
		Title:    "Split-brain: divergent per-site views under partition, convergence after heal",
		Table:    table,
		Findings: findings,
		Notes: []string{
			"shape check: mid-partition each passnet side answers with exactly its own side's records (different answers to the SAME query) and views disagree; after heal + gossip every view fingerprint matches and both sides see everything",
			"contrast: central's warehouse-less side cannot publish or query at all during the split — unavailability instead of divergence",
			"fp-rate: Bloom misroutes per remote contact — candidate routing goes through the per-peer filters (View.MayHold), so a false positive is a charged empty round trip, never a wrong answer",
		},
	}, nil
}

// e15Passnet runs the split-brain narrative proper: partition, divergent
// publishing on both sides, heal, convergence.
func (r *Runner) e15Passnet(nPer int) (e15Out, error) {
	var o e15Out

	const sitesPerZone = 4
	zones := 6 // 24 sites
	net, sites := netsim.RandomTopology(netsim.Config{}, zones, sitesPerZone, 15151)
	m := passnet.New(net, sites, passnet.Options{})
	ve := siteview.Exposer(m)

	left, right := sites[:len(sites)/2], sites[len(sites)/2:]
	domain := provenance.String("split")

	publishSide := func(side []netsim.SiteID, base int, n int) (map[provenance.ID]bool, error) {
		out := make(map[provenance.ID]bool, n)
		for i := 0; i < n; i++ {
			origin := side[i%len(side)]
			s, err := net.Site(origin)
			if err != nil {
				return nil, err
			}
			var digest [32]byte
			digest[0], digest[1], digest[2] = byte(base+i), byte((base+i)>>8), 0xE5
			rec, id, err := provenance.NewRaw(digest, 64).
				Attrs(
					provenance.Attr("n", provenance.Int64(int64(base+i))),
					provenance.Attr(provenance.KeyDomain, domain),
					provenance.Attr(provenance.KeyZone, provenance.String(s.Zone)),
				).
				CreatedAt(int64(base+i) + 1).
				Build()
			if err != nil {
				return nil, err
			}
			if _, err := m.Publish(arch.Pub{ID: id, Rec: rec, Origin: origin}); err != nil {
				return nil, fmt.Errorf("publish %d: %w", base+i, err)
			}
			out[id] = true
		}
		return out, nil
	}

	recallSides := func(q netsim.SiteID, wantL, wantR map[provenance.ID]bool) (float64, float64, error) {
		got, _, err := m.QueryAttr(q, provenance.KeyDomain, domain)
		if err != nil {
			return 0, 0, err
		}
		hitL, hitR := 0, 0
		for _, id := range got {
			if wantL[id] {
				hitL++
			}
			if wantR[id] {
				hitR++
			}
		}
		return float64(hitL) / float64(len(wantL)), float64(hitR) / float64(len(wantR)), nil
	}

	viewsConverged := func() float64 {
		fp := ve.SiteView(sites[0]).Fingerprint()
		for _, s := range sites[1:] {
			if ve.SiteView(s).Fingerprint() != fp {
				return 0
			}
		}
		return 1
	}

	// fpRate is the Bloom misroute rate so far: query routing goes
	// through the per-peer filters (View.MayHold), so a false positive is
	// a real charged round trip — this column measures how often.
	fpRate := func() float64 {
		if m.RemoteContacts() == 0 {
			return 0
		}
		return float64(m.FalsePositives()) / float64(m.RemoteContacts())
	}

	// Phase 1: partition, both sides publish, digests gossip per side.
	net.Partition(left, right)
	wantL, err := publishSide(left, 0, nPer)
	if err != nil {
		return o, err
	}
	wantR, err := publishSide(right, 1000, nPer)
	if err != nil {
		return o, err
	}
	for i := 0; i < 3; i++ {
		if err := m.Tick(); err != nil {
			return o, err
		}
	}

	phase := "partitioned"
	for _, q := range []struct {
		name string
		site netsim.SiteID
	}{{"left", left[1]}, {"right", right[1]}} {
		rl, rr, err := recallSides(q.site, wantL, wantR)
		if err != nil {
			return o, err
		}
		conv := viewsConverged()
		o.rows = append(o.rows, []any{"passnet", phase, q.name,
			fmt.Sprintf("%.2f", rl), fmt.Sprintf("%.2f", rr), conv, fmt.Sprintf("%.4f", fpRate())})
		o.kvs = append(o.kvs,
			kv{fmt.Sprintf("%s_sees_left_%s", q.name, phase), rl},
			kv{fmt.Sprintf("%s_sees_right_%s", q.name, phase), rr})
	}
	o.kvs = append(o.kvs,
		kv{"views_converged_partitioned", viewsConverged()},
		kv{"pending_partitioned", float64(m.PendingDigests())})

	// Phase 2: heal; queued deltas drain on the next gossip rounds.
	net.HealPartition()
	for i := 0; i < 4; i++ {
		if err := m.Tick(); err != nil {
			return o, err
		}
	}
	phase = "healed"
	for _, q := range []struct {
		name string
		site netsim.SiteID
	}{{"left", left[0]}, {"right", right[0]}} {
		rl, rr, err := recallSides(q.site, wantL, wantR)
		if err != nil {
			return o, err
		}
		o.rows = append(o.rows, []any{"passnet", phase, q.name,
			fmt.Sprintf("%.2f", rl), fmt.Sprintf("%.2f", rr), viewsConverged(), fmt.Sprintf("%.4f", fpRate())})
		o.kvs = append(o.kvs,
			kv{fmt.Sprintf("%s_sees_left_%s", q.name, phase), rl},
			kv{fmt.Sprintf("%s_sees_right_%s", q.name, phase), rr})
	}
	o.kvs = append(o.kvs,
		kv{"views_converged_healed", viewsConverged()},
		kv{"pending_healed", float64(m.PendingDigests())},
		kv{"fp_rate", fpRate()},
		kv{"fp_contacts", float64(m.FalsePositives())},
		kv{"remote_contacts", float64(m.RemoteContacts())})
	return o, nil
}

// e15CentralContrast runs the centralized strawman through the same
// partition: publishes attempted from both sides, queries from both
// sides, no divergence possible — one side simply goes dark.
func (r *Runner) e15CentralContrast(nPer int) (e15Out, error) {
	var o e15Out
	net, sites := netsim.RandomTopology(netsim.Config{}, 6, 4, 15152)
	m := central.New(net, sites[0]) // warehouse on the left side
	left, right := sites[:len(sites)/2], sites[len(sites)/2:]
	net.Partition(left, right)

	acked := map[string]int{"left": 0, "right": 0}
	for i := 0; i < nPer; i++ {
		// Fixed left-then-right order: map iteration would scramble the
		// publish interleaving across runs (the determinism law).
		for si, side := range []string{"left", "right"} {
			origin := left[i%len(left)]
			if side == "right" {
				origin = right[i%len(right)]
			}
			var digest [32]byte
			digest[0], digest[1], digest[2], digest[3] = byte(i), byte(i>>8), 0xE5, byte(si+1)
			rec, id, err := provenance.NewRaw(digest, 64).
				Attrs(provenance.Attr(provenance.KeyDomain, provenance.String("split"))).
				CreatedAt(int64(i) + 1).
				Build()
			if err != nil {
				return o, err
			}
			if _, err := m.Publish(arch.Pub{ID: id, Rec: rec, Origin: origin}); err == nil {
				acked[side]++
			} else if !arch.IsUnavailable(err) {
				return o, err
			}
		}
	}
	for _, side := range []string{"left", "right"} {
		q := left[1]
		if side == "right" {
			q = right[1]
		}
		seen := 0.0
		if got, _, err := m.QueryAttr(q, provenance.KeyDomain, provenance.String("split")); err == nil {
			seen = float64(len(got)) / float64(acked["left"]+acked["right"])
		} else if !arch.IsUnavailable(err) {
			return o, err
		}
		o.rows = append(o.rows, []any{"central", "partitioned", side, fmt.Sprintf("%.2f", seen), "-", "-", "-"})
		o.kvs = append(o.kvs,
			kv{"central_" + side + "_acked", float64(acked[side])},
			kv{"central_" + side + "_sees", seen})
	}
	return o, nil
}
