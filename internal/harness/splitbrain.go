package harness

import (
	"fmt"

	"pass/internal/arch"
	"pass/internal/arch/central"
	"pass/internal/arch/passnet"
	"pass/internal/arch/siteview"
	"pass/internal/arch/softstate"
	"pass/internal/metrics"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

// e15Out is one E15 cell's contribution: ordered table rows plus named
// findings, assembled after the parallel section.
type e15Out struct {
	rows [][]any
	kvs  []kv
}

// E15SplitBrain — the consistency story Section IV only names in passing
// ("Consistency: Is the metadata service consistent with the actual
// data?") made observable. A wide-area federation WILL partition; the
// question is what queries look like while it is split and how fast the
// picture heals. The per-site view model (siteview) lets the experiment
// watch the split happen: each side keeps ingesting locally, each side's
// views list only its own side's digests, and the same QueryAttr asked
// from opposite sides returns two different — both locally correct —
// answers. After the partition heals, queued digest deltas drain and
// every site's view converges to one fingerprint.
//
// The experiment then keeps going where the naive gossip starts to hurt:
// a duplicate re-offer wave (an at-least-once ingest pipeline re-sending
// what it already sent) and a lossy burst. The passnet roster runs the
// IDENTICAL narrative twice — baseline gossip and the efficient path
// (dupemap suppression, per-peer delta coalescing, armed anti-entropy
// pulls) — so the gossip-bytes columns compare like for like; the
// gossip_reduction finding is the efficient path's savings at equal
// recall and convergence.
//
// Two contrast cells complete the table: softstate's index tier wrapped
// in per-node views (softstate.Viewful) shows split-brain happening one
// layer up — the two index nodes' federation pictures diverge and
// re-converge through charged index anti-entropy — and the centralized
// warehouse (the paper's strawman) shows the alternative to divergence:
// total outage for the warehouse-less side.
//
// The entrants are independent simulations on private networks, so they
// run as four parallel cells.
func (r *Runner) E15SplitBrain() (*Result, error) {
	table := metrics.NewTable("E15: split-brain (partition → divergent views → heal → convergence)",
		"model", "phase", "querier", "sees-left", "sees-right", "views-converged", "fp-rate", "gossip-bytes", "dup-supp", "pull-rounds")
	findings := map[string]float64{}

	nPer := r.scale.n(40)
	cells := []int{0, 1, 2, 3}
	outs, err := runCells(r, cells, func(ci int) (e15Out, error) {
		switch ci {
		case 0:
			return r.e15Passnet(nPer, "passnet", passnet.Options{}, "base")
		case 1:
			// PullEvery 1: an armed pair re-syncs on the next tick, so
			// suppression never costs the efficient leg a convergence
			// round (the DuplicateSuppression law's configuration).
			return r.e15Passnet(nPer, "passnet-eff", passnet.Options{EfficientGossip: true, PullEvery: 1}, "eff")
		case 2:
			return r.e15SoftstateViews(nPer)
		default:
			return r.e15CentralContrast(nPer)
		}
	})
	if err != nil {
		return nil, err
	}
	for _, o := range outs {
		for _, row := range o.rows {
			table.AddRow(row...)
		}
		for _, f := range o.kvs {
			findings[f.k] = f.v
		}
	}
	if base := findings["gossip_bytes_base"]; base > 0 {
		findings["gossip_reduction"] = 1 - findings["gossip_bytes_eff"]/base
	}

	return &Result{
		ID:       "E15",
		Title:    "Split-brain: divergent per-site views under partition, convergence after heal",
		Table:    table,
		Findings: findings,
		Notes: []string{
			"shape check: mid-partition each passnet side answers with exactly its own side's records (different answers to the SAME query) and views disagree; after heal + gossip every view fingerprint matches and both sides see everything",
			"passnet vs passnet-eff run the IDENTICAL narrative (partition → heal → duplicate re-offers → lossy burst); gossip_reduction is the efficient path's byte savings at equal recall and no worse convergence — dup-supp counts re-offers the dupemap swallowed, pull-rounds the armed anti-entropy exchanges",
			"softstate+views: split-brain one layer up — the two index nodes' federation views diverge under the partition and re-converge through charged index-tier anti-entropy; plain queries keep their sharded soft-state semantics (a querier whose attribute shard sits across the cut gets an outage, not a stale answer)",
			"contrast: central's warehouse-less side cannot publish or query at all during the split — unavailability instead of divergence",
			"fp-rate: Bloom misroutes per remote contact — candidate routing goes through the per-peer filters (View.MayHold), so a false positive is a charged empty round trip, never a wrong answer",
		},
	}, nil
}

// e15Passnet runs the split-brain narrative proper — partition, divergent
// publishing on both sides, heal, convergence — then the efficiency
// phases: duplicate re-offer waves and a lossy burst, converging again.
// tag is "base" or "eff"; the finding keys the regression suite pins stay
// unprefixed on the base run.
func (r *Runner) e15Passnet(nPer int, label string, opts passnet.Options, tag string) (e15Out, error) {
	var o e15Out
	pfx := ""
	if tag != "base" {
		pfx = tag + "_"
	}

	const sitesPerZone = 4
	zones := 6 // 24 sites
	net, sites := netsim.RandomTopology(netsim.Config{}, zones, sitesPerZone, 15151)
	m := passnet.New(net, sites, opts)
	ve := siteview.Exposer(m)

	left, right := sites[:len(sites)/2], sites[len(sites)/2:]
	domain := provenance.String("split")
	all := make(map[provenance.ID]bool)

	// publishBatch offers n records from the given origins, each `times`
	// times (an at-least-once pipeline re-offering), and returns the set.
	publishBatch := func(origins []netsim.SiteID, base, n, times int) (map[provenance.ID]bool, error) {
		out := make(map[provenance.ID]bool, n)
		for i := 0; i < n; i++ {
			origin := origins[i%len(origins)]
			s, err := net.Site(origin)
			if err != nil {
				return nil, err
			}
			var digest [32]byte
			digest[0], digest[1], digest[2] = byte(base+i), byte((base+i)>>8), 0xE5
			rec, id, err := provenance.NewRaw(digest, 64).
				Attrs(
					provenance.Attr("n", provenance.Int64(int64(base+i))),
					provenance.Attr(provenance.KeyDomain, domain),
					provenance.Attr(provenance.KeyZone, provenance.String(s.Zone)),
				).
				CreatedAt(int64(base+i) + 1).
				Build()
			if err != nil {
				return nil, err
			}
			for k := 0; k < times; k++ {
				if _, err := m.Publish(arch.Pub{ID: id, Rec: rec, Origin: origin}); err != nil {
					return nil, fmt.Errorf("publish %d: %w", base+i, err)
				}
			}
			out[id] = true
			all[id] = true
		}
		return out, nil
	}

	recallSides := func(q netsim.SiteID, wantL, wantR map[provenance.ID]bool) (float64, float64, error) {
		got, _, err := m.QueryAttr(q, provenance.KeyDomain, domain)
		if err != nil {
			return 0, 0, err
		}
		hitL, hitR := 0, 0
		for _, id := range got {
			if wantL[id] {
				hitL++
			}
			if wantR[id] {
				hitR++
			}
		}
		return float64(hitL) / float64(len(wantL)), float64(hitR) / float64(len(wantR)), nil
	}

	viewsConverged := func() float64 {
		fp := ve.SiteView(sites[0]).Fingerprint()
		for _, s := range sites[1:] {
			if ve.SiteView(s).Fingerprint() != fp {
				return 0
			}
		}
		return 1
	}

	// fpRate is the Bloom misroute rate so far: query routing goes
	// through the per-peer filters (View.MayHold), so a false positive is
	// a real charged round trip — this column measures how often.
	fpRate := func() float64 {
		if m.RemoteContacts() == 0 {
			return 0
		}
		return float64(m.FalsePositives()) / float64(m.RemoteContacts())
	}
	gossipCols := func() (int64, int64, int64) {
		gs := m.GossipStats()
		return gs.Bytes, gs.DupSuppressed, gs.PullRounds
	}

	// Phase 1: partition, both sides publish, digests gossip per side.
	net.Partition(left, right)
	wantL, err := publishBatch(left, 0, nPer, 1)
	if err != nil {
		return o, err
	}
	wantR, err := publishBatch(right, 1000, nPer, 1)
	if err != nil {
		return o, err
	}
	for i := 0; i < 3; i++ {
		if err := m.Tick(); err != nil {
			return o, err
		}
	}

	phase := "partitioned"
	for _, q := range []struct {
		name string
		site netsim.SiteID
	}{{"left", left[1]}, {"right", right[1]}} {
		rl, rr, err := recallSides(q.site, wantL, wantR)
		if err != nil {
			return o, err
		}
		conv := viewsConverged()
		gb, ds, pr := gossipCols()
		o.rows = append(o.rows, []any{label, phase, q.name,
			fmt.Sprintf("%.2f", rl), fmt.Sprintf("%.2f", rr), conv, fmt.Sprintf("%.4f", fpRate()), gb, ds, pr})
		o.kvs = append(o.kvs,
			kv{fmt.Sprintf("%s%s_sees_left_%s", pfx, q.name, phase), rl},
			kv{fmt.Sprintf("%s%s_sees_right_%s", pfx, q.name, phase), rr})
	}
	o.kvs = append(o.kvs,
		kv{pfx + "views_converged_partitioned", viewsConverged()},
		kv{pfx + "pending_partitioned", float64(m.PendingDigests())})

	// Phase 2: heal; queued deltas drain on the next gossip rounds.
	net.HealPartition()
	for i := 0; i < 4; i++ {
		if err := m.Tick(); err != nil {
			return o, err
		}
	}
	phase = "healed"
	for _, q := range []struct {
		name string
		site netsim.SiteID
	}{{"left", left[0]}, {"right", right[0]}} {
		rl, rr, err := recallSides(q.site, wantL, wantR)
		if err != nil {
			return o, err
		}
		gb, ds, pr := gossipCols()
		o.rows = append(o.rows, []any{label, phase, q.name,
			fmt.Sprintf("%.2f", rl), fmt.Sprintf("%.2f", rr), viewsConverged(), fmt.Sprintf("%.4f", fpRate()), gb, ds, pr})
		o.kvs = append(o.kvs,
			kv{fmt.Sprintf("%s%s_sees_left_%s", pfx, q.name, phase), rl},
			kv{fmt.Sprintf("%s%s_sees_right_%s", pfx, q.name, phase), rr})
	}
	o.kvs = append(o.kvs,
		kv{pfx + "views_converged_healed", viewsConverged()},
		kv{pfx + "pending_healed", float64(m.PendingDigests())},
		kv{pfx + "fp_rate", fpRate()},
		kv{pfx + "fp_contacts", float64(m.FalsePositives())},
		kv{pfx + "remote_contacts", float64(m.RemoteContacts())})

	// Phase 3: duplicate re-offer waves on the healed network — every
	// record offered three times, the naive path gossips the redundancy.
	for w := 0; w < 3; w++ {
		if _, err := publishBatch(sites, 2000+w*nPer, nPer, 3); err != nil {
			return o, err
		}
		if err := m.Tick(); err != nil {
			return o, err
		}
	}
	if err := m.Tick(); err != nil {
		return o, err
	}
	gb, ds, pr := gossipCols()
	o.rows = append(o.rows, []any{label, "dup-offers", "-", "-", "-", viewsConverged(), fmt.Sprintf("%.4f", fpRate()), gb, ds, pr})

	// Phase 4: the re-offers keep coming through a lossy burst, then
	// convergence — charged lost pushes are where naive re-gossip bleeds
	// bytes and the armed pull earns its keep.
	net.SetLossRate(0.2)
	for w := 0; w < 3; w++ {
		if _, err := publishBatch(sites, 6000+w*nPer, nPer/2, 2); err != nil {
			return o, err
		}
		if err := m.Tick(); err != nil {
			return o, err
		}
	}
	net.SetLossRate(0)
	convRounds := 0
	for ; viewsConverged() != 1; convRounds++ {
		if convRounds > 20 {
			return o, fmt.Errorf("%s: views did not converge within 20 rounds after the lossy burst", label)
		}
		if err := m.Tick(); err != nil {
			return o, err
		}
	}
	recallFinal, _, err := recallSides(sites[2], all, all)
	if err != nil {
		return o, err
	}
	gb, ds, pr = gossipCols()
	o.rows = append(o.rows, []any{label, "lossy+converged", "-",
		fmt.Sprintf("%.2f", recallFinal), fmt.Sprintf("%.2f", recallFinal), viewsConverged(), fmt.Sprintf("%.4f", fpRate()), gb, ds, pr})
	o.kvs = append(o.kvs,
		kv{"gossip_bytes_" + tag, float64(gb)},
		kv{"dup_suppressed_" + tag, float64(ds)},
		kv{"pull_rounds_" + tag, float64(pr)},
		kv{"conv_rounds_" + tag, float64(convRounds)},
		kv{"recall_final_" + tag, recallFinal})
	return o, nil
}

// e15SoftstateViews runs the partition against the view-bearing
// soft-state service: one index node per side, so the partition splits
// the index tier itself and the two nodes' federation views diverge.
func (r *Runner) e15SoftstateViews(nPer int) (e15Out, error) {
	var o e15Out
	net, sites := netsim.RandomTopology(netsim.Config{}, 6, 4, 15153) // 24 sites
	left, right := sites[:len(sites)/2], sites[len(sites)/2:]
	nodes := []netsim.SiteID{left[0], right[0]}
	m := softstate.NewViewful(net, sites, nodes, 1)
	domain := provenance.String("split")

	publishSide := func(side []netsim.SiteID, base, n int) error {
		for i := 0; i < n; i++ {
			origin := side[i%len(side)]
			var digest [32]byte
			digest[0], digest[1], digest[2], digest[3] = byte(base+i), byte((base+i)>>8), 0xE5, 0x55
			rec, id, err := provenance.NewRaw(digest, 64).
				Attrs(provenance.Attr(provenance.KeyDomain, domain)).
				CreatedAt(int64(base+i) + 1).
				Build()
			if err != nil {
				return err
			}
			if _, err := m.Publish(arch.Pub{ID: id, Rec: rec, Origin: origin}); err != nil {
				return fmt.Errorf("publish %d: %w", base+i, err)
			}
		}
		return nil
	}
	converged := func() float64 {
		if m.SiteView(nodes[0]).Fingerprint() == m.SiteView(nodes[1]).Fingerprint() {
			return 1
		}
		return 0
	}
	// seenFrom reports the fraction of the published records a querier
	// can see, or -1 when its attribute shard is unreachable (the honest
	// sharded-soft-state outage).
	seenFrom := func(q netsim.SiteID, total int) float64 {
		got, _, err := m.QueryAttr(q, provenance.KeyDomain, domain)
		if err != nil {
			return -1
		}
		return float64(len(got)) / float64(total)
	}

	net.Partition(left, right)
	if err := publishSide(left, 0, nPer); err != nil {
		return o, err
	}
	if err := publishSide(right, 1000, nPer); err != nil {
		return o, err
	}
	for i := 0; i < 3; i++ {
		if err := m.Tick(); err != nil {
			return o, err
		}
	}
	fmtSeen := func(v float64) string {
		if v < 0 {
			return "outage"
		}
		return fmt.Sprintf("%.2f", v)
	}
	gsMid := m.GossipStats().Bytes
	seenL, seenR := seenFrom(left[1], 2*nPer), seenFrom(right[1], 2*nPer)
	o.rows = append(o.rows,
		[]any{"softstate+views", "partitioned", "left", fmtSeen(seenL), "-", converged(), "-", gsMid, "-", "-"},
		[]any{"softstate+views", "partitioned", "right", fmtSeen(seenR), "-", converged(), "-", gsMid, "-", "-"})
	o.kvs = append(o.kvs, kv{"soft_views_converged_partitioned", converged()})

	net.HealPartition()
	for i := 0; i < 3; i++ {
		if err := m.Tick(); err != nil {
			return o, err
		}
	}
	gsHealed := m.GossipStats().Bytes
	seenHealed := seenFrom(left[1], 2*nPer)
	o.rows = append(o.rows,
		[]any{"softstate+views", "healed", "left", fmtSeen(seenHealed), "-", converged(), "-", gsHealed, "-", "-"})
	o.kvs = append(o.kvs,
		kv{"soft_views_converged_healed", converged()},
		kv{"soft_index_gossip_bytes", float64(gsHealed)},
		kv{"soft_recall_healed", seenHealed})
	return o, nil
}

// e15CentralContrast runs the centralized strawman through the same
// partition: publishes attempted from both sides, queries from both
// sides, no divergence possible — one side simply goes dark.
func (r *Runner) e15CentralContrast(nPer int) (e15Out, error) {
	var o e15Out
	net, sites := netsim.RandomTopology(netsim.Config{}, 6, 4, 15152)
	m := central.New(net, sites[0]) // warehouse on the left side
	left, right := sites[:len(sites)/2], sites[len(sites)/2:]
	net.Partition(left, right)

	acked := map[string]int{"left": 0, "right": 0}
	for i := 0; i < nPer; i++ {
		// Fixed left-then-right order: map iteration would scramble the
		// publish interleaving across runs (the determinism law).
		for si, side := range []string{"left", "right"} {
			origin := left[i%len(left)]
			if side == "right" {
				origin = right[i%len(right)]
			}
			var digest [32]byte
			digest[0], digest[1], digest[2], digest[3] = byte(i), byte(i>>8), 0xE5, byte(si+1)
			rec, id, err := provenance.NewRaw(digest, 64).
				Attrs(provenance.Attr(provenance.KeyDomain, provenance.String("split"))).
				CreatedAt(int64(i) + 1).
				Build()
			if err != nil {
				return o, err
			}
			if _, err := m.Publish(arch.Pub{ID: id, Rec: rec, Origin: origin}); err == nil {
				acked[side]++
			} else if !arch.IsUnavailable(err) {
				return o, err
			}
		}
	}
	for _, side := range []string{"left", "right"} {
		q := left[1]
		if side == "right" {
			q = right[1]
		}
		seen := 0.0
		if got, _, err := m.QueryAttr(q, provenance.KeyDomain, provenance.String("split")); err == nil {
			seen = float64(len(got)) / float64(acked["left"]+acked["right"])
		} else if !arch.IsUnavailable(err) {
			return o, err
		}
		o.rows = append(o.rows, []any{"central", "partitioned", side, fmt.Sprintf("%.2f", seen), "-", "-", "-", "-", "-", "-"})
		o.kvs = append(o.kvs,
			kv{"central_" + side + "_acked", float64(acked[side])},
			kv{"central_" + side + "_sees", seen})
	}
	return o, nil
}
