package harness

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Instrument runs fn and reports its wall-clock milliseconds together
// with the peak goroutine count observed while it ran. The peak is
// sampled (runtime.NumGoroutine every millisecond, plus one sample
// before and one after fn), so a very short-lived spike can slip
// between samples — it is an ops-surface observation for passbench
// -json, not an exact accounting. The sampler's own goroutine is
// excluded from the reported peak.
func Instrument(fn func() error) (wallMs int64, peakGoroutines int, err error) {
	var peak atomic.Int64
	maxPeak := func(n int64) {
		for {
			cur := peak.Load()
			if n <= cur || peak.CompareAndSwap(cur, n) {
				return
			}
		}
	}
	maxPeak(int64(runtime.NumGoroutine()))

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				// -1: don't count the sampler itself.
				maxPeak(int64(runtime.NumGoroutine() - 1))
			}
		}
	}()

	start := time.Now()
	err = fn()
	wallMs = time.Since(start).Milliseconds()

	maxPeak(int64(runtime.NumGoroutine() - 1))
	close(done)
	wg.Wait()
	return wallMs, int(peak.Load()), err
}
