// Package harness runs the reproduction's experiment suite, E1–E18. The
// paper (a position paper) contains no numbered tables or figures; each
// experiment instead makes one of its quantitative or comparative claims
// measurable — see the README experiment map for the claim-to-experiment
// mapping and ARCHITECTURE.md for how an experiment flows through the
// registry, the drivers, and the benchmark gates.
//
// Every experiment returns a Result holding a printable table plus named
// scalar findings that the test suite asserts on (the "shape" checks:
// who wins, what grows, where the crossover falls).
package harness

import (
	"fmt"
	"os"
	"sort"

	"pass/internal/metrics"
)

// Result is one experiment's output.
type Result struct {
	// ID is the experiment identifier ("E1" … "E18").
	ID string
	// Title summarizes the claim under test.
	Title string
	// Table is the printable result table.
	Table *metrics.Table
	// Findings holds named scalar observations for programmatic checks.
	Findings map[string]float64
	// Notes carries free-form commentary rows (assumptions, pointers).
	Notes []string
}

// String renders the result for terminal output.
func (r *Result) String() string {
	out := fmt.Sprintf("== %s: %s ==\n%s", r.ID, r.Title, r.Table.String())
	for _, n := range r.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

// Finding fetches a named finding (0 when absent).
func (r *Result) Finding(name string) float64 { return r.Findings[name] }

// Scale trades experiment size for runtime: 1.0 is the recorded full
// configuration; tests use smaller values.
type Scale float64

// n scales a count, with a floor of 1.
func (s Scale) n(base int) int {
	v := int(float64(base) * float64(s))
	if v < 1 {
		return 1
	}
	return v
}

// Runner executes experiments into temp directories it cleans up.
type Runner struct {
	scale  Scale
	serial bool
}

// NewRunner returns a runner at the given scale (0 = full scale 1.0).
// Sweep experiments run their cells in parallel by default; SetParallel
// switches the serial path on for debugging and for the
// serial-vs-parallel equivalence tests.
func NewRunner(scale Scale) *Runner {
	if scale <= 0 {
		scale = 1
	}
	return &Runner{scale: scale}
}

// SetParallel switches the parallel cell runner on or off and returns the
// runner for chaining. Both modes produce byte-identical tables and
// findings: every cell owns its network, model, clock, and RNG seeds.
func (r *Runner) SetParallel(on bool) *Runner {
	r.serial = !on
	return r
}

// Parallel reports whether sweep cells run on the worker pool.
func (r *Runner) Parallel() bool { return !r.serial }

// tempDir makes a scratch directory; the caller removes it.
func tempDir(pattern string) (string, func(), error) {
	dir, err := os.MkdirTemp("", "pass-"+pattern+"-*")
	if err != nil {
		return "", nil, err
	}
	return dir, func() { os.RemoveAll(dir) }, nil
}

// Experiment is a registry entry.
type Experiment struct {
	ID    string
	Title string
	Run   func(r *Runner) (*Result, error)
}

// All returns the registry in ID order.
func All() []Experiment {
	exps := []Experiment{
		{"E1", "Indexing granularity: tuples vs tuple sets (§II)", (*Runner).E1Granularity},
		{"E2", "Provenance-as-name vs conventional filenames (§II-A)", (*Runner).E2Naming},
		{"E3", "Flat name-value scan vs augmented index structures (§II-B)", (*Runner).E3IndexStructures},
		{"E4", "Transitive closure: naive walk vs memoized closure (§III-B/D)", (*Runner).E4TransitiveClosure},
		{"E5", "Publish scalability across architectures (§IV)", (*Runner).E5UpdateScalability},
		{"E6", "Locality: Boston data belongs in Boston (§III-D, §IV-C)", (*Runner).E6Locality},
		{"E7", "Soft-state staleness vs refresh period (§IV-B)", (*Runner).E7SoftStateStaleness},
		{"E8", "Hierarchical significance-ordering penalty (§IV-B)", (*Runner).E8HierarchyOrdering},
		{"E9", "DHT update load and recursive-query cost (§IV-C)", (*Runner).E9DHTUpdates},
		{"E10", "Crash recovery: provenance consistent with data (§IV Reliability)", (*Runner).E10Recovery},
		{"E11", "Distributed transitive closure across sites (§V)", (*Runner).E11DistributedClosure},
		{"E12", "The four PASS properties P1–P4 (§V)", (*Runner).E12PASSProperties},
		{"E13", "Resource consumption: central vs distributed crossover (§IV)", (*Runner).E13ResourceCrossover},
		{"E14", "Survivability: recall and WAN cost under loss at scale (§IV Reliability)", (*Runner).E14Survivability},
		{"E15", "Split-brain: divergent per-site views under partition, convergence after heal (§IV Consistency)", (*Runner).E15SplitBrain},
		{"E16", "Churn: crash, stabilize, rejoin — recall and recovery cost vs crash rate (§IV Reliability)", (*Runner).E16Churn},
		{"E17", "Membership: randomized join/crash/partition schedules — recall, handoff cost, convergence (§IV Reliability)", (*Runner).E17Membership},
		{"E18", "Overload: open-loop bursty load at 1x-100x nominal — graceful shedding vs collapse (§IV Performance)", (*Runner).E18Overload},
	}
	sort.Slice(exps, func(i, j int) bool {
		// E1 < E2 < ... < E13 numerically.
		return expNum(exps[i].ID) < expNum(exps[j].ID)
	})
	return exps
}

func expNum(id string) int {
	n := 0
	for _, c := range id[1:] {
		n = n*10 + int(c-'0')
	}
	return n
}

// Lookup finds one experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment, returning results in order. The first
// error aborts.
func (r *Runner) RunAll() ([]*Result, error) {
	var out []*Result
	for _, e := range All() {
		res, err := e.Run(r)
		if err != nil {
			return out, fmt.Errorf("%s: %w", e.ID, err)
		}
		out = append(out, res)
	}
	return out, nil
}
