package harness

import (
	"strconv"
	"strings"
	"testing"
)

// The harness tests run every experiment at reduced scale and assert the
// SHAPE claims from the paper — who wins, what grows, where crossovers
// fall — not absolute numbers.

func testRunner() *Runner { return NewRunner(0.15) }

func TestRegistryComplete(t *testing.T) {
	exps := All()
	if len(exps) != 18 {
		t.Fatalf("registry has %d experiments, want 18", len(exps))
	}
	for i, e := range exps {
		if e.ID != "E"+itoa(i+1) {
			t.Fatalf("experiment %d has ID %s", i, e.ID)
		}
		if e.Title == "" || e.Run == nil {
			t.Fatalf("%s incomplete", e.ID)
		}
	}
	if _, ok := Lookup("E7"); !ok {
		t.Fatal("Lookup(E7) failed")
	}
	if _, ok := Lookup("E99"); ok {
		t.Fatal("Lookup(E99) succeeded")
	}
}

func itoa(n int) string { return strconv.Itoa(n) }

func TestE1PerTupleIndexingCostsMore(t *testing.T) {
	res, err := testRunner().E1Granularity()
	if err != nil {
		t.Fatal(err)
	}
	// Per-tuple (size 1) must create vastly more records and entries than
	// size-1000 sets.
	if ratio := res.Finding("entry_ratio_1_vs_1000"); ratio < 20 {
		t.Fatalf("entry ratio 1 vs 1000 = %v, want >= 20 (per-tuple indexing should explode)", ratio)
	}
	if res.Finding("records_size1") <= res.Finding("records_size100") {
		t.Fatal("record counts not decreasing with set size")
	}
	if !strings.Contains(res.Table.String(), "set-size") {
		t.Fatal("table missing")
	}
}

func TestE2FilenameRecallCollapses(t *testing.T) {
	res, err := testRunner().E2Naming()
	if err != nil {
		t.Fatal(err)
	}
	// PASS achieves full recall everywhere.
	for _, key := range []string{"domain", "zone", "sensor-id", "software"} {
		if r := res.Finding("pass_recall_" + key); r != 1 {
			t.Fatalf("pass recall for %s = %v, want 1", key, r)
		}
	}
	// Filenames cannot answer inexpressible attributes at all.
	if r := res.Finding("file_recall_sensor-id"); r != 0 {
		t.Fatalf("file recall for sensor-id = %v, want 0", r)
	}
	if r := res.Finding("file_recall_software"); r != 0 {
		t.Fatalf("file recall for software = %v, want 0", r)
	}
	// Expressible attributes still work from filenames.
	if r := res.Finding("file_recall_domain"); r != 1 {
		t.Fatalf("file recall for domain = %v, want 1", r)
	}
}

func TestE3IndexBeatsFlatScan(t *testing.T) {
	// The test-scale corpus is small, so the wall-clock margin between
	// indexed and flat queries is thin; under full-suite CPU load the
	// ratio jitters around 1 and a single measurement can dip below any
	// fixed threshold purely from scheduling. Measure up to three times
	// and require the index not to lose decisively in the BEST run — the
	// order-of-magnitude separation is asserted by cmd/passbench at full
	// scale, not here.
	var worst string
	var worstV float64
	for attempt := 0; attempt < 3; attempt++ {
		res, err := testRunner().E3IndexStructures()
		if err != nil {
			t.Fatal(err)
		}
		worst, worstV = "", 0
		for name, v := range res.Findings {
			if strings.HasPrefix(name, "speedup_") && v < 0.5 && (worst == "" || v < worstV) {
				worst, worstV = name, v
			}
		}
		if worst == "" {
			return
		}
	}
	t.Fatalf("%s = %v across 3 runs, indexed decisively lost to flat scan", worst, worstV)
}

func TestE4MemoizationWins(t *testing.T) {
	res, err := testRunner().E4TransitiveClosure()
	if err != nil {
		t.Fatal(err)
	}
	// Warm closure must beat the naive walk on every shape.
	for name, v := range res.Findings {
		if strings.HasPrefix(name, "warm_speedup_") && v < 1 {
			t.Fatalf("%s = %v, want >= 1", name, v)
		}
	}
	if res.Finding("size_chain-16") != 15 {
		t.Fatalf("chain-16 closure size = %v, want 15", res.Finding("size_chain-16"))
	}
}

func TestE5CentralGrowsPassnetStaysLocal(t *testing.T) {
	res, err := testRunner().E5UpdateScalability()
	if err != nil {
		t.Fatal(err)
	}
	// Central WAN bytes grow with site count (total rate grows).
	if res.Finding("wan_central_16") <= res.Finding("wan_central_4") {
		t.Fatal("central WAN bytes did not grow with sites")
	}
	// feddb publishes are entirely local: zero WAN bytes.
	if res.Finding("wan_feddb_16") != 0 {
		t.Fatalf("feddb WAN bytes = %v, want 0", res.Finding("wan_feddb_16"))
	}
	// The DHT is the most expensive publisher: every record plus every
	// queriable attribute is routed multi-hop to a random home.
	if res.Finding("wan_dht_16") <= res.Finding("wan_central_16") {
		t.Fatalf("dht WAN %v not above central %v",
			res.Finding("wan_dht_16"), res.Finding("wan_central_16"))
	}
	// Publish latency: locality-preserving models (feddb, softstate,
	// passnet) acknowledge locally, far faster than WAN-synchronous
	// models (central, distdb, dht).
	for _, local := range []string{"feddb", "softstate", "passnet"} {
		for _, remote := range []string{"central", "distdb", "dht"} {
			l := res.Finding("publat_" + local + "_16")
			rm := res.Finding("publat_" + remote + "_16")
			if l >= rm {
				t.Fatalf("publish latency %s (%v ms) >= %s (%v ms)", local, l, remote, rm)
			}
		}
	}
	// The paper's own caveat holds too: distributing the index costs
	// update bandwidth — passnet's digest fan-out is not free, but it
	// must stay below shipping full metadata to every peer would
	// (bounded above by dht's cost).
	if res.Finding("wan_passnet_16") >= res.Finding("wan_dht_16") {
		t.Fatalf("passnet digest bytes %v >= dht full-metadata bytes %v",
			res.Finding("wan_passnet_16"), res.Finding("wan_dht_16"))
	}
}

func TestE6LocalityOrdering(t *testing.T) {
	res, err := testRunner().E6Locality()
	if err != nil {
		t.Fatal(err)
	}
	passnet := res.Finding("qms_passnet")
	centralMs := res.Finding("qms_central")
	dhtMs := res.Finding("qms_dht")
	// The Boston consumer's query latency: passnet stays in the zone;
	// central pays the tokyo round trip; dht scatters worldwide.
	if passnet >= centralMs {
		t.Fatalf("passnet %vms >= central %vms", passnet, centralMs)
	}
	if passnet >= dhtMs {
		t.Fatalf("passnet %vms >= dht %vms", passnet, dhtMs)
	}
	// passnet local queries ship ~no WAN bytes.
	if res.Finding("qwan_passnet") > res.Finding("qwan_central")/2 {
		t.Fatalf("passnet WAN %v not well under central %v",
			res.Finding("qwan_passnet"), res.Finding("qwan_central"))
	}
}

func TestE7RecallDecaysWithPeriod(t *testing.T) {
	res, err := testRunner().E7SoftStateStaleness()
	if err != nil {
		t.Fatal(err)
	}
	r1 := res.Finding("recall_p1")
	r4 := res.Finding("recall_p4")
	r16 := res.Finding("recall_p16")
	if !(r1 >= r4 && r4 >= r16) {
		t.Fatalf("recall not monotone: p1=%v p4=%v p16=%v", r1, r4, r16)
	}
	if r16 >= r1 {
		t.Fatalf("recall at period 16 (%v) not below period 1 (%v)", r16, r1)
	}
	if res.Finding("recall_passnet") != 1 {
		t.Fatalf("passnet immediate recall = %v, want 1", res.Finding("recall_passnet"))
	}
}

func TestE8SecondaryFansOut(t *testing.T) {
	res, err := testRunner().E8HierarchyOrdering()
	if err != nil {
		t.Fatal(err)
	}
	primary := res.Finding("fanout_primary")
	secondary := res.Finding("fanout_secondary")
	if primary != 1 {
		t.Fatalf("primary fanout = %v, want 1", primary)
	}
	if secondary <= primary {
		t.Fatalf("secondary fanout %v not above primary %v", secondary, primary)
	}
}

func TestE9DHTLoadGrows(t *testing.T) {
	res, err := testRunner().E9DHTUpdates()
	if err != nil {
		t.Fatal(err)
	}
	// More queriable attributes = more messages per publish.
	if res.Finding("pubmsgs_n8_a6") <= res.Finding("pubmsgs_n8_a2") {
		t.Fatal("publish messages did not grow with attribute count")
	}
	// Bigger ring = more hops.
	if res.Finding("hops_n32_a2") <= res.Finding("hops_n8_a2") {
		t.Fatal("hops did not grow with ring size")
	}
}

func TestE10RecoveryAlwaysClean(t *testing.T) {
	res, err := testRunner().E10Recovery()
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range res.Findings {
		if strings.HasPrefix(name, "clean_") && v != 1 {
			t.Fatalf("%s = %v: recovery left an inconsistent store", name, v)
		}
	}
}

func TestE11PassnetClosureCheapest(t *testing.T) {
	res, err := testRunner().E11DistributedClosure()
	if err != nil {
		t.Fatal(err)
	}
	// At span 4, passnet's server-side traversal must use far fewer
	// messages than dht's per-record lookups.
	pn := res.Finding("msgs_passnet_span4")
	dht := res.Finding("msgs_dht_span4")
	ss := res.Finding("msgs_softstate_span4")
	if pn >= dht {
		t.Fatalf("passnet %v msgs >= dht %v", pn, dht)
	}
	if pn >= ss {
		t.Fatalf("passnet %v msgs >= softstate %v", pn, ss)
	}
	// passnet messages grow with span, not with chain depth: span 1 must
	// be cheaper than span 8.
	if res.Finding("msgs_passnet_span1") >= res.Finding("msgs_passnet_span8") {
		t.Fatal("passnet messages did not grow with sites spanned")
	}
}

func TestE12PropertiesHold(t *testing.T) {
	res, err := testRunner().E12PASSProperties()
	if err != nil {
		t.Fatal(err)
	}
	if res.Finding("p3_collisions") != 0 {
		t.Fatalf("P3 collisions = %v", res.Finding("p3_collisions"))
	}
	if res.Finding("p4_ancestors_after_gc") != res.Finding("p4_expected") {
		t.Fatalf("P4: %v/%v ancestors after GC",
			res.Finding("p4_ancestors_after_gc"), res.Finding("p4_expected"))
	}
	if res.Finding("p2_found") != res.Finding("p2_expected") {
		t.Fatalf("P2: %v/%v found", res.Finding("p2_found"), res.Finding("p2_expected"))
	}
	if res.Finding("audit_clean") != 1 {
		t.Fatal("audit not clean")
	}
}

func TestE13CrossoverExists(t *testing.T) {
	res, err := testRunner().E13ResourceCrossover()
	if err != nil {
		t.Fatal(err)
	}
	// Update-heavy end: central's single stream beats immediate digest
	// fan-out OR batched digests beat central — either way both columns
	// are nonzero and the relative gap flips as the ratio rises.
	cLow, pLow := res.Finding("central_0.01"), res.Finding("passnet_0.01")
	cHigh, pHigh := res.Finding("central_100.00"), res.Finding("passnet_100.00")
	if cLow == 0 || cHigh == 0 {
		t.Fatal("central bytes are zero; broken accounting")
	}
	// Query-heavy end: passnet (local queries) must beat central.
	if pHigh >= cHigh {
		t.Fatalf("query-heavy: passnet %v >= central %v", pHigh, cHigh)
	}
	// The advantage must move toward central as updates dominate.
	lowAdvantage := cLow / pLow // >1 means passnet wins updates too
	highAdvantage := cHigh / pHigh
	if highAdvantage <= lowAdvantage {
		t.Fatalf("advantage did not shift with ratio: low %v, high %v", lowAdvantage, highAdvantage)
	}
}

func TestE14SurvivabilityShape(t *testing.T) {
	res, err := testRunner().E14Survivability()
	if err != nil {
		t.Fatal(err)
	}
	models := []string{"central", "distdb", "feddb", "softstate", "hier", "dht", "passnet"}
	for _, n := range []int{16, 64, 256} {
		for _, model := range models {
			// Pristine network: every model must ack and recall everything.
			tag := model + itoa2(n) + "_l0"
			if r := res.Finding("recall_" + tag); r != 1.0 {
				t.Fatalf("recall_%s = %v, want 1.0 on a pristine network", tag, r)
			}
			if a := res.Finding("acked_" + tag); a == 0 {
				t.Fatalf("acked_%s = 0", tag)
			}
			// Fault handling costs bandwidth: lossy WAN bytes must not be
			// cheaper than pristine for the same configuration.
			if res.Finding("wan_"+model+itoa2(n)+"_l20") < res.Finding("wan_"+tag) {
				t.Fatalf("%s at %d sites: 20%% loss cost fewer WAN bytes than pristine", model, n)
			}
		}
	}
	// Recall is a fraction.
	for name, v := range res.Findings {
		if strings.HasPrefix(name, "recall_") && (v < 0 || v > 1) {
			t.Fatalf("%s = %v out of [0,1]", name, v)
		}
	}
	// RTO backoff: a WAN-synchronous publisher's mean publish latency
	// must climb with the loss rate (each retransmission waits out a
	// timeout), and no model may get FASTER under loss.
	if res.Finding("publat_central_n64_l20") <= res.Finding("publat_central_n64_l0") {
		t.Fatalf("central publish latency did not climb with loss: l20=%v l0=%v",
			res.Finding("publat_central_n64_l20"), res.Finding("publat_central_n64_l0"))
	}
	for _, model := range models {
		for _, n := range []int{16, 64, 256} {
			base := res.Finding("publat_" + model + itoa2(n) + "_l0")
			lossy := res.Finding("publat_" + model + itoa2(n) + "_l20")
			if lossy < base {
				t.Fatalf("%s at %d sites: publish latency fell under 20%% loss (%v < %v)", model, n, lossy, base)
			}
		}
	}
}

func TestE15SplitBrainDivergesThenConverges(t *testing.T) {
	res, err := testRunner().E15SplitBrain()
	if err != nil {
		t.Fatal(err)
	}
	// Mid-partition: each side sees exactly its own records and none of
	// the other side's — the same query, two different answers.
	if res.Finding("left_sees_left_partitioned") != 1 {
		t.Fatalf("left querier lost its own side: %v", res.Finding("left_sees_left_partitioned"))
	}
	if res.Finding("right_sees_right_partitioned") != 1 {
		t.Fatalf("right querier lost its own side: %v", res.Finding("right_sees_right_partitioned"))
	}
	if v := res.Finding("left_sees_right_partitioned"); v != 0 {
		t.Fatalf("left querier saw %v of the right side through a partition", v)
	}
	if v := res.Finding("right_sees_left_partitioned"); v != 0 {
		t.Fatalf("right querier saw %v of the left side through a partition", v)
	}
	if res.Finding("views_converged_partitioned") != 0 {
		t.Fatal("views reported converged mid-partition")
	}
	if res.Finding("pending_partitioned") == 0 {
		t.Fatal("no digests pending mid-partition; the split was not real")
	}
	// Healed: both sides see everything, all views carry one fingerprint,
	// nothing is left undelivered.
	for _, f := range []string{"left_sees_left_healed", "left_sees_right_healed", "right_sees_left_healed", "right_sees_right_healed"} {
		if res.Finding(f) != 1 {
			t.Fatalf("%s = %v after heal, want 1", f, res.Finding(f))
		}
	}
	if res.Finding("views_converged_healed") != 1 {
		t.Fatal("views did not converge after heal")
	}
	if res.Finding("pending_healed") != 0 {
		t.Fatalf("%v digests still pending after heal", res.Finding("pending_healed"))
	}
	// The centralized contrast: the warehouse side keeps acking, the
	// other side acks nothing (outage, not split-brain).
	if res.Finding("central_left_acked") == 0 {
		t.Fatal("central's warehouse side stopped acking")
	}
	if res.Finding("central_right_acked") != 0 {
		t.Fatalf("central's warehouse-less side acked %v publishes through a partition",
			res.Finding("central_right_acked"))
	}
	// The efficient cell replays the identical narrative: same split, same
	// heal, same converged answers.
	for _, f := range []string{"eff_left_sees_left_partitioned", "eff_right_sees_right_partitioned",
		"eff_views_converged_healed", "eff_left_sees_right_healed", "eff_right_sees_left_healed"} {
		if res.Finding(f) != 1 {
			t.Fatalf("%s = %v, want 1", f, res.Finding(f))
		}
	}
	if res.Finding("eff_views_converged_partitioned") != 0 {
		t.Fatal("efficient cell's views reported converged mid-partition")
	}
	// Gossip efficiency: >= 30% fewer dissemination bytes across the full
	// narrative at full final recall and no worse convergence, with the
	// dupemap and the armed pull both doing real work.
	if v := res.Finding("gossip_reduction"); v < 0.30 {
		t.Fatalf("gossip_reduction = %.3f, want >= 0.30 (base %v bytes, eff %v)",
			v, res.Finding("gossip_bytes_base"), res.Finding("gossip_bytes_eff"))
	}
	if res.Finding("recall_final_base") != 1 || res.Finding("recall_final_eff") != 1 {
		t.Fatalf("final recall base %v / eff %v, want 1.0 for both",
			res.Finding("recall_final_base"), res.Finding("recall_final_eff"))
	}
	if res.Finding("conv_rounds_eff") > res.Finding("conv_rounds_base") {
		t.Fatalf("efficient cell converged in %v rounds, baseline %v — savings bought with latency",
			res.Finding("conv_rounds_eff"), res.Finding("conv_rounds_base"))
	}
	if res.Finding("dup_suppressed_eff") == 0 {
		t.Fatal("no duplicates suppressed across the re-offer waves")
	}
	if res.Finding("pull_rounds_eff") == 0 {
		t.Fatal("no anti-entropy pulls across the lossy burst")
	}
	// The view-bearing soft-state cell: index-tier split-brain diverges
	// then re-converges, charged on the wire.
	if res.Finding("soft_views_converged_partitioned") != 0 {
		t.Fatal("softstate index views reported converged mid-partition")
	}
	if res.Finding("soft_views_converged_healed") != 1 {
		t.Fatal("softstate index views did not re-converge after heal")
	}
	if res.Finding("soft_index_gossip_bytes") == 0 {
		t.Fatal("softstate index anti-entropy charged zero bytes")
	}
	if res.Finding("soft_recall_healed") != 1 {
		t.Fatalf("softstate post-heal recall %v, want 1.0", res.Finding("soft_recall_healed"))
	}
}

// itoa2 renders the "_n<sites>" finding-tag fragment.
func itoa2(n int) string { return "_n" + strconv.Itoa(n) }

func TestE14Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("repeat run in -short mode")
	}
	r1, err := NewRunner(0.1).E14Survivability()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRunner(0.1).E14Survivability()
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Findings) != len(r2.Findings) {
		t.Fatalf("finding counts differ: %d vs %d", len(r1.Findings), len(r2.Findings))
	}
	for name, v := range r1.Findings {
		if r2.Findings[name] != v {
			t.Fatalf("%s diverged across identical runs: %v vs %v", name, v, r2.Findings[name])
		}
	}
}

func TestRunAllProducesAllResults(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	results, err := NewRunner(0.05).RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 18 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if r.Table == nil || len(r.Findings) == 0 {
			t.Fatalf("%s has empty output", r.ID)
		}
		if !strings.Contains(r.String(), r.ID) {
			t.Fatalf("%s render missing ID", r.ID)
		}
	}
}
