package harness

import (
	"fmt"

	"pass/internal/arch"
	"pass/internal/arch/central"
	"pass/internal/arch/dht"
	"pass/internal/arch/passnet"
	"pass/internal/arch/softstate"
	"pass/internal/metrics"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

// E16Churn — the membership dimension of survivability. E14 injects
// transient faults (loss) and E15 a clean split; E16 is what the paper's
// "sites come and go" scenario actually means: nodes CRASH while the
// workload runs, stay down across maintenance rounds, and then rejoin.
// The experiment measures three things per architecture and churn rate:
//
//   - recall-down: what queries see immediately after the crash, before
//     any maintenance — the raw hole the churn tore;
//   - recall-stab: what queries see after maintenance rounds run WHILE
//     the victims are still down — this is where the DHT's stabilization
//     (successor-list re-homing, arch.Stabilizer) recovers lookups
//     without the crashed nodes coming back, and where locality-bound
//     models honestly cannot (the victims' records are only at the
//     victims);
//   - rounds / rec-bytes: after the victims heal, how many maintenance
//     rounds and how many bytes it takes to restore full recall. passnet
//     appears twice — once rejoining via snapshot state transfer
//     (arch.Rejoiner) and once recovering by outbox replay alone — so
//     the snapshot's rounds-vs-bytes tradeoff is a table row, not a
//     claim: here each origin queues one batched delta, so replay is
//     byte-lean and the snapshot buys immediate convergence; the
//     many-deltas-missed regime where the snapshot also wins on bytes
//     is the FastRejoin conformance law's scenario.
//
// Publishes attempted mid-churn follow E14's client model: re-offered a
// bounded number of times, counted as acked or given up; recall is
// measured over acknowledged publishes only.
func (r *Runner) E16Churn() (*Result, error) {
	table := metrics.NewTable("E16: churn (crash → stabilize → rejoin, recall & recovery cost)",
		"model", "sites", "churn", "acked", "recall-down", "recall-stab", "rounds", "rec-bytes", "rehomed")
	findings := map[string]float64{}

	const sitesPerZone = 4
	prePubs := r.scale.n(60)
	churnPubs := r.scale.n(40)
	const healRounds = 8

	type entrant struct {
		label  string
		rejoin bool
		build  func(net *netsim.Network, sites []netsim.SiteID) arch.Model
	}
	roster := []entrant{
		{"central", false, func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return central.New(net, sites[0])
		}},
		{"softstate", false, func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return softstate.New(net, sites, sites[:2], 1)
		}},
		{"dht", false, func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return dht.New(net, sites)
		}},
		{"passnet", true, func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return passnet.New(net, sites, passnet.Options{})
		}},
		// The replay row must really replay: ManualRejoin switches off the
		// proactive snapshot a recovered site would otherwise take inside
		// Tick, leaving outbox anti-entropy as the only recovery path.
		{"passnet-replay", false, func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return passnet.New(net, sites, passnet.Options{ManualRejoin: true})
		}},
	}

	type cell struct {
		nSites, ci, mi int
		crashFrac      float64
	}
	var cells []cell
	for _, nSites := range []int{16, 64} {
		for ci, crashFrac := range []float64{0.125, 0.25} {
			for mi := range roster {
				cells = append(cells, cell{nSites, ci, mi, crashFrac})
			}
		}
	}
	type out struct {
		acked                  int
		recallDown, recallStab float64
		recallHeal             float64
		rounds                 int
		recBytes, rehomed      int64
	}
	outs, err := runCells(r, cells, func(c cell) (out, error) {
		nSites := c.nSites
		nVictims := int(float64(nSites) * c.crashFrac)
		ent := roster[c.mi]
		net, sites := netsim.RandomTopology(netsim.Config{
			Seed: uint64(nSites*1000 + c.ci*100 + c.mi + 1),
		}, nSites/sitesPerZone, sitesPerZone, uint64(16000+nSites))
		m := ent.build(net, sites)

		// Victims: an even stride over the roster, never the service
		// anchors at sites[0] and sites[1] (central's warehouse,
		// softstate's index nodes) — crashing a single point of
		// failure is E15's contrast, not churn, and keeping the
		// lookup service up is what lets recall-stab measure the
		// LOCALITY effect rather than index outage.
		victims := make([]netsim.SiteID, 0, nVictims)
		isVictim := make(map[netsim.SiteID]bool, nVictims)
		for i := 0; i < nVictims; i++ {
			idx := (2 + i*(nSites/nVictims)) % nSites
			for idx < 2 || isVictim[sites[idx]] {
				idx = (idx + 1) % nSites
			}
			victims = append(victims, sites[idx])
			isVictim[sites[idx]] = true
		}

		// Phase 1: steady state — everyone publishes, maintenance
		// flushes, the federation is converged.
		acked := make(map[provenance.ID]bool)
		pubs, err := taggedPubs(net, sites, "churn", 0xE6, 0, prePubs, nil)
		if err != nil {
			return out{}, err
		}
		var unacked []arch.Pub
		for _, p := range pubs {
			ok, err := churnOffer(m, p, 4)
			if err != nil {
				return out{}, err
			}
			if ok {
				acked[p.ID] = true
			} else {
				unacked = append(unacked, p)
			}
		}
		for i := 0; i < 2; i++ {
			if err := m.Tick(); err != nil {
				return out{}, fmt.Errorf("%s tick: %w", ent.label, err)
			}
		}

		// Phase 2: crash, then keep publishing from live sites.
		for _, v := range victims {
			net.Fail(v)
		}
		morePubs, err := taggedPubs(net, sites, "churn", 0xE6, prePubs, churnPubs, isVictim)
		if err != nil {
			return out{}, err
		}
		for _, p := range morePubs {
			ok, err := churnOffer(m, p, 4)
			if err != nil {
				return out{}, err
			}
			if ok {
				acked[p.ID] = true
			} else {
				unacked = append(unacked, p)
			}
		}

		queriers := liveQueriers(sites, isVictim)
		recallDown := churnRecall(m, queriers, acked)

		// Phase 3: maintenance with the victims still down — the
		// stabilization window.
		for i := 0; i < 3; i++ {
			if err := m.Tick(); err != nil {
				return out{}, fmt.Errorf("%s tick: %w", ent.label, err)
			}
		}
		recallStab := churnRecall(m, queriers, acked)

		// Phase 4: heal; rejoiners take the snapshot path; failed
		// publishes are re-offered (idempotent); rounds until the
		// healed federation answers in full again.
		for _, v := range victims {
			net.Heal(v)
		}
		statsAtHeal := net.Stats()
		if rej, ok := m.(arch.Rejoiner); ok && ent.rejoin {
			for _, v := range victims {
				if _, err := rej.Rejoin(v); err != nil {
					return out{}, fmt.Errorf("%s rejoin of %d: %w", ent.label, v, err)
				}
			}
		}
		for _, p := range unacked {
			ok, err := churnOffer(m, p, 6)
			if err != nil {
				return out{}, err
			}
			if ok {
				acked[p.ID] = true
			}
		}
		healQueriers := append(append([]netsim.SiteID(nil), queriers...), victims[0])
		// The recall probes are real (charged) lookups; their bytes
		// are metered separately so rec-bytes reports only the
		// recovery paths' own traffic — otherwise the slower path
		// would be billed for more measurement sweeps.
		probeBytes := int64(0)
		probe := func() float64 {
			b0 := net.Stats().Bytes
			rec := churnRecall(m, healQueriers, acked)
			probeBytes += net.Stats().Bytes - b0
			return rec
		}
		rounds := 0
		for ; rounds < healRounds; rounds++ {
			if probe() == 1 {
				break
			}
			if err := m.Tick(); err != nil {
				return out{}, fmt.Errorf("%s tick: %w", ent.label, err)
			}
		}
		recBytes := net.Stats().Bytes - statsAtHeal.Bytes - probeBytes
		recallHeal := churnRecall(m, healQueriers, acked)

		rehomed := int64(0)
		if d, ok := m.(*dht.Model); ok {
			rehomed = d.Rehomed()
		}
		return out{
			acked:      len(acked),
			recallDown: recallDown, recallStab: recallStab, recallHeal: recallHeal,
			rounds: rounds, recBytes: recBytes, rehomed: rehomed,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		o := outs[i]
		churnPct := int(c.crashFrac * 100)
		label := roster[c.mi].label
		table.AddRow(label, c.nSites, fmt.Sprintf("%d%%", churnPct),
			fmt.Sprintf("%d/%d", o.acked, prePubs+churnPubs),
			fmt.Sprintf("%.3f", o.recallDown), fmt.Sprintf("%.3f", o.recallStab),
			o.rounds, o.recBytes, o.rehomed)
		tag := fmt.Sprintf("%s_n%d_c%d", label, c.nSites, churnPct)
		findings["acked_"+tag] = float64(o.acked)
		findings["recall_down_"+tag] = o.recallDown
		findings["recall_stab_"+tag] = o.recallStab
		findings["recall_heal_"+tag] = o.recallHeal
		findings["rounds_"+tag] = float64(o.rounds)
		findings["recbytes_"+tag] = float64(o.recBytes)
		findings["rehomed_"+tag] = float64(o.rehomed)
	}
	return &Result{
		ID:       "E16",
		Title:    "Churn: crash, stabilize, rejoin — recall and recovery cost vs crash rate",
		Table:    table,
		Findings: findings,
		Notes: []string{
			"shape check: dht's recall-stab returns to ~1 with victims STILL DOWN (successor-list re-homing); locality-bound models (passnet/softstate) cannot see the victims' records until they heal",
			"rounds counts post-heal maintenance rounds until every acknowledged publish is queryable again; rec-bytes is the wire cost of that recovery window, with the recall probes' own traffic metered out",
			"passnet vs passnet-replay isolates the rejoin snapshot: the snapshot converges immediately (0 rounds) where replay waits on gossip; bytes-wise replay is lean here because each origin queues ONE batched delta — the many-deltas-missed regime where the snapshot also wins on bytes is pinned by the FastRejoin conformance law",
			"victims never include sites[0] or sites[1] (central's warehouse, softstate's index nodes): anchor loss is total outage (E15's contrast), not churn — recall columns measure data reachability, not index-service availability",
		},
	}, nil
}

// churnOffer re-offers a publish up to attempts times (idempotent per the
// fault contract) and reports whether it was acknowledged. Injected
// faults exhaust the attempts and read as unacked; any other error is a
// model bug and aborts the experiment (E14's client model).
func churnOffer(m arch.Model, p arch.Pub, attempts int) (bool, error) {
	for a := 0; a < attempts; a++ {
		_, err := m.Publish(p)
		if err == nil {
			return true, nil
		}
		if !arch.IsUnavailable(err) {
			return false, fmt.Errorf("%s publish: %w", m.Name(), err)
		}
	}
	return false, nil
}

// liveQueriers picks three well-spread non-victim query sites.
func liveQueriers(sites []netsim.SiteID, isVictim map[netsim.SiteID]bool) []netsim.SiteID {
	out := make([]netsim.SiteID, 0, 3)
	for _, idx := range []int{0, len(sites) / 2, len(sites) - 1} {
		for isVictim[sites[idx%len(sites)]] {
			idx++
		}
		out = append(out, sites[idx%len(sites)])
	}
	return out
}

// churnRecall is the mean fraction of acknowledged publishes each querier
// can still RESOLVE — one Lookup per acknowledged record, so the probe
// touches every record's home rather than the single posting node an
// attribute query would (each model's internal retries apply; a record
// whose home is unreachable scores as missing). Lookup targets spread
// across the whole ring/federation, which is exactly where churn tears
// holes.
func churnRecall(m arch.Model, queriers []netsim.SiteID, acked map[provenance.ID]bool) float64 {
	if len(acked) == 0 {
		return 0
	}
	total := 0.0
	for _, q := range queriers {
		hit := 0
		for id := range acked {
			if _, _, err := m.Lookup(q, id); err == nil {
				hit++
			}
		}
		total += float64(hit) / float64(len(acked))
	}
	return total / float64(len(queriers))
}
