// Package keyenc implements order-preserving binary encoding of typed,
// composite keys: the byte-wise lexicographic order of encoded keys equals
// the logical order of their components, compared component by component.
//
// This is the substrate underneath every sorted index in the system. The
// paper (Section II-B) requires "efficient lookups in many dimensions";
// an LSM store offers only one dimension — byte order — so each secondary
// index maps its logical order onto byte order through this encoding. The
// key tricks are standard database craft:
//
//   - strings/bytes: escape 0x00 as 0x00 0xFF and terminate with 0x00 0x01,
//     so a prefix sorts before every extension and the terminator never
//     collides with content;
//   - signed integers: flip the sign bit and store big-endian;
//   - floats: for non-negative values flip the sign bit, for negative
//     values flip all bits (total order matching numeric order, with -0
//     and +0 adjacent);
//   - every component carries a type tag so heterogeneous values have a
//     stable, documented cross-type order (bool < int < float < time <
//     string < bytes).
package keyenc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Component type tags. Their numeric order defines cross-type ordering.
const (
	tagBool   byte = 0x10
	tagInt    byte = 0x20
	tagFloat  byte = 0x30
	tagTime   byte = 0x40
	tagString byte = 0x50
	tagBytes  byte = 0x60
)

// Errors returned by decoders.
var (
	ErrTruncated = errors.New("keyenc: truncated key")
	ErrBadTag    = errors.New("keyenc: unexpected component tag")
)

const (
	escByte  byte = 0x00
	escFill  byte = 0xFF // 0x00 content is encoded as 0x00 0xFF
	termByte byte = 0x01 // terminator is 0x00 0x01
)

// AppendString appends an order-preserving encoding of s.
func AppendString(buf []byte, s string) []byte {
	buf = append(buf, tagString)
	return appendEscaped(buf, []byte(s))
}

// AppendBytes appends an order-preserving encoding of b.
func AppendBytes(buf, b []byte) []byte {
	buf = append(buf, tagBytes)
	return appendEscaped(buf, b)
}

func appendEscaped(buf, b []byte) []byte {
	for _, c := range b {
		if c == escByte {
			buf = append(buf, escByte, escFill)
		} else {
			buf = append(buf, c)
		}
	}
	return append(buf, escByte, termByte)
}

// AppendInt64 appends an order-preserving encoding of v.
func AppendInt64(buf []byte, v int64) []byte {
	buf = append(buf, tagInt)
	return appendOrderedUint64(buf, uint64(v)^(1<<63))
}

// AppendTime appends an order-preserving encoding of a unix-nanosecond
// timestamp. Times sort among themselves; they are tagged distinctly from
// plain ints.
func AppendTime(buf []byte, unixNanos int64) []byte {
	buf = append(buf, tagTime)
	return appendOrderedUint64(buf, uint64(unixNanos)^(1<<63))
}

// AppendFloat appends an order-preserving encoding of v. NaNs sort after
// +Inf (all NaN bit patterns map above all numbers).
func AppendFloat(buf []byte, v float64) []byte {
	buf = append(buf, tagFloat)
	bits := math.Float64bits(v)
	if bits&(1<<63) != 0 {
		bits = ^bits // negative: flip everything
	} else {
		bits ^= 1 << 63 // non-negative: flip sign bit
	}
	return appendOrderedUint64(buf, bits)
}

// AppendBool appends an order-preserving encoding of v (false < true).
func AppendBool(buf []byte, v bool) []byte {
	buf = append(buf, tagBool)
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func appendOrderedUint64(buf []byte, v uint64) []byte {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], v)
	return append(buf, tmp[:]...)
}

// DecodeString consumes one string component from p.
func DecodeString(p []byte) (string, []byte, error) {
	b, rest, err := decodeTagged(p, tagString)
	return string(b), rest, err
}

// DecodeBytes consumes one bytes component from p.
func DecodeBytes(p []byte) ([]byte, []byte, error) {
	return decodeTagged(p, tagBytes)
}

func decodeTagged(p []byte, tag byte) ([]byte, []byte, error) {
	if len(p) == 0 {
		return nil, nil, ErrTruncated
	}
	if p[0] != tag {
		return nil, nil, fmt.Errorf("%w: got 0x%02x want 0x%02x", ErrBadTag, p[0], tag)
	}
	p = p[1:]
	var out []byte
	for i := 0; i < len(p); i++ {
		c := p[i]
		if c != escByte {
			out = append(out, c)
			continue
		}
		if i+1 >= len(p) {
			return nil, nil, ErrTruncated
		}
		switch p[i+1] {
		case escFill:
			out = append(out, escByte)
			i++
		case termByte:
			return out, p[i+2:], nil
		default:
			return nil, nil, fmt.Errorf("keyenc: bad escape 0x%02x: %w", p[i+1], ErrTruncated)
		}
	}
	return nil, nil, ErrTruncated
}

// DecodeInt64 consumes one int component from p.
func DecodeInt64(p []byte) (int64, []byte, error) {
	v, rest, err := decodeOrderedUint64(p, tagInt)
	return int64(v ^ (1 << 63)), rest, err
}

// DecodeTime consumes one time component from p.
func DecodeTime(p []byte) (int64, []byte, error) {
	v, rest, err := decodeOrderedUint64(p, tagTime)
	return int64(v ^ (1 << 63)), rest, err
}

// DecodeFloat consumes one float component from p.
func DecodeFloat(p []byte) (float64, []byte, error) {
	bits, rest, err := decodeOrderedUint64(p, tagFloat)
	if err != nil {
		return 0, nil, err
	}
	if bits&(1<<63) != 0 {
		bits ^= 1 << 63 // was non-negative
	} else {
		bits = ^bits // was negative
	}
	return math.Float64frombits(bits), rest, nil
}

// DecodeBool consumes one bool component from p.
func DecodeBool(p []byte) (bool, []byte, error) {
	if len(p) < 2 {
		return false, nil, ErrTruncated
	}
	if p[0] != tagBool {
		return false, nil, fmt.Errorf("%w: got 0x%02x want 0x%02x", ErrBadTag, p[0], tagBool)
	}
	return p[1] != 0, p[2:], nil
}

func decodeOrderedUint64(p []byte, tag byte) (uint64, []byte, error) {
	if len(p) < 9 {
		return 0, nil, ErrTruncated
	}
	if p[0] != tag {
		return 0, nil, fmt.Errorf("%w: got 0x%02x want 0x%02x", ErrBadTag, p[0], tag)
	}
	return binary.BigEndian.Uint64(p[1:9]), p[9:], nil
}

// PrefixEnd returns the smallest byte slice greater than every key having
// the given prefix, suitable as an exclusive upper bound for a range scan.
// It returns nil when no such bound exists (prefix is all 0xFF), meaning
// "scan to the end of the keyspace".
func PrefixEnd(prefix []byte) []byte {
	end := append([]byte(nil), prefix...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] != 0xFF {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}
