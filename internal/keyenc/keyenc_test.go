package keyenc

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestStringRoundTrip(t *testing.T) {
	cases := []string{"", "a", "hello", "with\x00nul", "\x00", "\x00\x01", strings.Repeat("x", 1000)}
	for _, s := range cases {
		enc := AppendString(nil, s)
		got, rest, err := DecodeString(enc)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if got != s || len(rest) != 0 {
			t.Fatalf("round trip %q -> %q (rest %d)", s, got, len(rest))
		}
	}
}

func TestStringOrderPreserved(t *testing.T) {
	f := func(a, b string) bool {
		ea := AppendString(nil, a)
		eb := AppendString(nil, b)
		return cmpSign(strings.Compare(a, b)) == cmpSign(bytes.Compare(ea, eb))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestStringPrefixSortsFirst(t *testing.T) {
	// "ab" < "ab\x00" < "abc" logically; encoded order must agree.
	a := AppendString(nil, "ab")
	b := AppendString(nil, "ab\x00")
	c := AppendString(nil, "abc")
	if !(bytes.Compare(a, b) < 0 && bytes.Compare(b, c) < 0) {
		t.Fatalf("prefix ordering broken: %x %x %x", a, b, c)
	}
}

func TestBytesRoundTripAndOrder(t *testing.T) {
	f := func(a, b []byte) bool {
		ea := AppendBytes(nil, a)
		eb := AppendBytes(nil, b)
		if cmpSign(bytes.Compare(a, b)) != cmpSign(bytes.Compare(ea, eb)) {
			return false
		}
		got, rest, err := DecodeBytes(ea)
		if err != nil || len(rest) != 0 {
			return false
		}
		return bytes.Equal(got, a) || (len(a) == 0 && len(got) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestInt64OrderPreserved(t *testing.T) {
	f := func(a, b int64) bool {
		ea := AppendInt64(nil, a)
		eb := AppendInt64(nil, b)
		switch {
		case a < b:
			return bytes.Compare(ea, eb) < 0
		case a > b:
			return bytes.Compare(ea, eb) > 0
		default:
			return bytes.Equal(ea, eb)
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestInt64RoundTrip(t *testing.T) {
	for _, v := range []int64{math.MinInt64, -1, 0, 1, math.MaxInt64} {
		got, rest, err := DecodeInt64(AppendInt64(nil, v))
		if err != nil || got != v || len(rest) != 0 {
			t.Fatalf("round trip %d -> %d, %v", v, got, err)
		}
	}
}

func TestFloatOrderPreserved(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ea := AppendFloat(nil, a)
		eb := AppendFloat(nil, b)
		switch {
		case a < b:
			return bytes.Compare(ea, eb) < 0
		case a > b:
			return bytes.Compare(ea, eb) > 0
		default: // includes -0 vs +0, which encode distinctly but adjacent
			return true
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestFloatSpecialValues(t *testing.T) {
	order := []float64{math.Inf(-1), -1e308, -1, -math.SmallestNonzeroFloat64, 0, math.SmallestNonzeroFloat64, 1, 1e308, math.Inf(1)}
	for i := 0; i < len(order)-1; i++ {
		a := AppendFloat(nil, order[i])
		b := AppendFloat(nil, order[i+1])
		if bytes.Compare(a, b) >= 0 {
			t.Fatalf("order violated between %v and %v", order[i], order[i+1])
		}
	}
	// NaN sorts above +Inf.
	nan := AppendFloat(nil, math.NaN())
	inf := AppendFloat(nil, math.Inf(1))
	if bytes.Compare(nan, inf) <= 0 {
		t.Fatal("NaN should sort after +Inf")
	}
}

func TestFloatRoundTrip(t *testing.T) {
	f := func(v float64) bool {
		got, rest, err := DecodeFloat(AppendFloat(nil, v))
		if err != nil || len(rest) != 0 {
			return false
		}
		if math.IsNaN(v) {
			return math.IsNaN(got)
		}
		return got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeRoundTripAndDistinctFromInt(t *testing.T) {
	v := int64(1234567890)
	et := AppendTime(nil, v)
	ei := AppendInt64(nil, v)
	if bytes.Equal(et, ei) {
		t.Fatal("time and int encodings collide")
	}
	got, rest, err := DecodeTime(et)
	if err != nil || got != v || len(rest) != 0 {
		t.Fatalf("time round trip: %d, %v", got, err)
	}
	// Decoding with the wrong decoder must fail loudly.
	if _, _, err := DecodeInt64(et); err == nil {
		t.Fatal("DecodeInt64 accepted a time component")
	}
}

func TestBoolRoundTripAndOrder(t *testing.T) {
	ef := AppendBool(nil, false)
	et := AppendBool(nil, true)
	if bytes.Compare(ef, et) >= 0 {
		t.Fatal("false should sort before true")
	}
	for _, v := range []bool{false, true} {
		got, rest, err := DecodeBool(AppendBool(nil, v))
		if err != nil || got != v || len(rest) != 0 {
			t.Fatalf("bool round trip %v: %v %v", v, got, err)
		}
	}
}

func TestCompositeKeyOrdering(t *testing.T) {
	// (zone, time) composite: primary component dominates.
	k := func(zone string, ts int64) []byte {
		return AppendTime(AppendString(nil, zone), ts)
	}
	if bytes.Compare(k("boston", 999), k("london", 1)) >= 0 {
		t.Fatal("primary component should dominate")
	}
	if bytes.Compare(k("boston", 1), k("boston", 2)) >= 0 {
		t.Fatal("secondary component should break ties")
	}
}

func TestCompositeDecodeSequence(t *testing.T) {
	key := AppendString(nil, "traffic")
	key = AppendInt64(key, -42)
	key = AppendFloat(key, 3.5)
	s, rest, err := DecodeString(key)
	if err != nil || s != "traffic" {
		t.Fatal(err)
	}
	i, rest, err := DecodeInt64(rest)
	if err != nil || i != -42 {
		t.Fatal(err)
	}
	f, rest, err := DecodeFloat(rest)
	if err != nil || f != 3.5 || len(rest) != 0 {
		t.Fatal(err)
	}
}

func TestCrossTypeOrderStable(t *testing.T) {
	// bool < int < float < time < string < bytes
	encs := [][]byte{
		AppendBool(nil, true),
		AppendInt64(nil, math.MaxInt64),
		AppendFloat(nil, math.Inf(1)),
		AppendTime(nil, math.MaxInt64),
		AppendString(nil, "zzz"),
		AppendBytes(nil, []byte{0xFF}),
	}
	for i := 0; i < len(encs)-1; i++ {
		if bytes.Compare(encs[i], encs[i+1]) >= 0 {
			t.Fatalf("cross-type order violated at position %d", i)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeString(nil); err == nil {
		t.Fatal("nil input accepted")
	}
	if _, _, err := DecodeString([]byte{tagInt}); err == nil {
		t.Fatal("wrong tag accepted")
	}
	// Unterminated string.
	if _, _, err := DecodeString([]byte{tagString, 'a', 'b'}); err == nil {
		t.Fatal("unterminated string accepted")
	}
	// Dangling escape.
	if _, _, err := DecodeString([]byte{tagString, 0x00}); err == nil {
		t.Fatal("dangling escape accepted")
	}
	if _, _, err := DecodeInt64([]byte{tagInt, 1, 2}); err == nil {
		t.Fatal("short int accepted")
	}
	if _, _, err := DecodeBool([]byte{tagBool}); err == nil {
		t.Fatal("short bool accepted")
	}
}

func TestPrefixEnd(t *testing.T) {
	cases := []struct {
		in   []byte
		want []byte
	}{
		{[]byte{0x01}, []byte{0x02}},
		{[]byte{0x01, 0xFF}, []byte{0x02}},
		{[]byte{0xFF, 0xFF}, nil},
		{[]byte("abc"), []byte("abd")},
	}
	for _, c := range cases {
		if got := PrefixEnd(c.in); !bytes.Equal(got, c.want) {
			t.Errorf("PrefixEnd(%x) = %x, want %x", c.in, got, c.want)
		}
	}
}

func TestPrefixEndProperty(t *testing.T) {
	// For any key k with prefix p: p <= k < PrefixEnd(p) (when bound exists).
	f := func(prefix, suffix []byte) bool {
		if len(prefix) == 0 {
			return true
		}
		key := append(append([]byte(nil), prefix...), suffix...)
		end := PrefixEnd(prefix)
		if end == nil {
			return true
		}
		return bytes.Compare(key, end) < 0 && bytes.Compare(prefix, end) < 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func cmpSign(v int) int {
	switch {
	case v < 0:
		return -1
	case v > 0:
		return 1
	default:
		return 0
	}
}
