package ratelimit

import (
	"sync"
	"testing"
	"time"
)

func TestBucketLifecycle(t *testing.T) {
	b := NewBucket(2, 4)
	// Starts full at burst.
	if got := b.Tokens(); got != 4 {
		t.Fatalf("initial tokens = %v, want 4", got)
	}
	for i := 0; i < 4; i++ {
		if !b.Allow() {
			t.Fatalf("allow %d refused with tokens available", i)
		}
	}
	if b.Allow() {
		t.Fatal("allow succeeded on empty bucket")
	}
	b.Tick()
	if got := b.Tokens(); got != 2 {
		t.Fatalf("tokens after refill = %v, want 2", got)
	}
	// Refill is capped at burst.
	b.Tick()
	b.Tick()
	if got := b.Tokens(); got != 4 {
		t.Fatalf("tokens after over-refill = %v, want burst cap 4", got)
	}
	if !b.AllowN(3) {
		t.Fatal("AllowN(3) refused with 4 tokens")
	}
	if b.AllowN(2) {
		t.Fatal("AllowN(2) succeeded with 1 token")
	}
}

func TestBucketBurstFloor(t *testing.T) {
	b := NewBucket(5, 1) // burst below rate is raised to rate
	if got := b.Tokens(); got != 5 {
		t.Fatalf("tokens = %v, want 5 (burst floored to rate)", got)
	}
}

func TestAdmissionQueueDelayAndShed(t *testing.T) {
	a := NewAdmission(Config{
		Budget:     100 * time.Millisecond,
		MaxBacklog: 250 * time.Millisecond,
	})
	// First offer waits behind nothing.
	w, err := a.Offer(1, 100*time.Millisecond)
	if err != nil || w != 0 {
		t.Fatalf("offer 1 = (%v, %v), want (0, nil)", w, err)
	}
	// Second waits behind the first.
	w, err = a.Offer(2, 100*time.Millisecond)
	if err != nil || w != 100*time.Millisecond {
		t.Fatalf("offer 2 = (%v, %v), want (100ms, nil)", w, err)
	}
	// Third fills the backlog bound exactly (250ms >= 200+50).
	if _, err = a.Offer(3, 50*time.Millisecond); err != nil {
		t.Fatalf("offer 3 shed: %v", err)
	}
	// Fourth would exceed the bound: shed with ErrOverload.
	if _, err = a.Offer(4, time.Millisecond); err != ErrOverload {
		t.Fatalf("offer 4 err = %v, want ErrOverload", err)
	}
	if !Shed(ErrOverload) || !Shed(ErrRateLimited) || Shed(nil) {
		t.Fatal("Shed misclassifies")
	}
	st := a.Stats()
	if st.Offered != 4 || st.Admitted != 3 || st.ShedQueue != 1 || st.ShedRate != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.QueueItems != 3 || st.QueueDelay != 250*time.Millisecond {
		t.Fatalf("queue state = %d items / %v", st.QueueItems, st.QueueDelay)
	}
	// One tick drains one budget's worth (the 100ms head item).
	a.Tick()
	st = a.Stats()
	if st.Served != 1 || st.QueueItems != 2 || st.QueueDelay != 150*time.Millisecond {
		t.Fatalf("after tick: %+v", st)
	}
	// Two more ticks drain the rest.
	a.Tick()
	a.Tick()
	st = a.Stats()
	if st.Served != 3 || st.QueueItems != 0 || st.QueueDelay != 0 {
		t.Fatalf("after drain: %+v", st)
	}
}

func TestAdmissionPartialHeadDrain(t *testing.T) {
	a := NewAdmission(Config{Budget: 30 * time.Millisecond})
	if _, err := a.Offer(1, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// An item costing more than one budget drains across ticks.
	a.Tick()
	if st := a.Stats(); st.Served != 0 || st.QueueDelay != 70*time.Millisecond {
		t.Fatalf("after tick 1: %+v", st)
	}
	a.Tick()
	a.Tick()
	a.Tick()
	if st := a.Stats(); st.Served != 1 || st.QueueItems != 0 {
		t.Fatalf("after tick 4: %+v", st)
	}
}

func TestAdmissionPerClientRate(t *testing.T) {
	a := NewAdmission(Config{PerClientRate: 2}) // burst defaults to 4
	okA, okB, shed := 0, 0, 0
	for i := 0; i < 10; i++ {
		if _, err := a.Offer(7, 0); err == nil {
			okA++
		} else if err == ErrRateLimited {
			shed++
		} else {
			t.Fatalf("unexpected err %v", err)
		}
	}
	// A different client has its own bucket.
	if _, err := a.Offer(8, 0); err != nil {
		t.Fatalf("fresh client shed: %v", err)
	}
	okB++
	if okA != 4 || shed != 6 {
		t.Fatalf("client 7: ok=%d shed=%d, want 4/6 (burst then empty)", okA, shed)
	}
	st := a.Stats()
	if st.ShedRate != 6 || st.Admitted != int64(okA+okB) {
		t.Fatalf("stats = %+v", st)
	}
	// Refill restores rate tokens per tick.
	a.Tick()
	if _, err := a.Offer(7, 0); err != nil {
		t.Fatalf("post-refill offer shed: %v", err)
	}
	if _, err := a.Offer(7, 0); err != nil {
		t.Fatalf("post-refill offer 2 shed: %v", err)
	}
	if _, err := a.Offer(7, 0); err != ErrRateLimited {
		t.Fatalf("third post-refill offer err = %v, want ErrRateLimited", err)
	}
}

func TestAdmissionDeterminism(t *testing.T) {
	run := func() Stats {
		a := NewAdmission(Config{
			PerClientRate: 3,
			Budget:        50 * time.Millisecond,
			MaxBacklog:    120 * time.Millisecond,
		})
		for round := 0; round < 20; round++ {
			for c := int64(0); c < 5; c++ {
				for k := 0; k <= int(c); k++ {
					a.Offer(c, time.Duration(5+int(c))*time.Millisecond)
				}
			}
			a.Tick()
		}
		return a.Stats()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same schedule diverged: %+v vs %+v", a, b)
	}
}

func TestAdmissionConcurrent(t *testing.T) {
	a := NewAdmission(Config{
		PerClientRate: 1000,
		Budget:        time.Second,
		MaxBacklog:    time.Minute,
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(c int64) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				a.Offer(c, time.Microsecond)
				if i%100 == 0 {
					a.Stats()
				}
			}
		}(int64(w))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			a.Tick()
		}
	}()
	wg.Wait()
	<-done
	st := a.Stats()
	if st.Offered != 4000 {
		t.Fatalf("offered = %d, want 4000", st.Offered)
	}
	if st.Admitted+st.ShedRate+st.ShedQueue != st.Offered {
		t.Fatalf("counters leak: %+v", st)
	}
}

func BenchmarkTokenBucket(b *testing.B) {
	bk := NewBucket(1, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !bk.Allow() {
			bk.Tick()
		}
	}
}

func BenchmarkAdmissionOffer(b *testing.B) {
	a := NewAdmission(Config{
		PerClientRate: 1 << 30,
		Budget:        time.Second,
		MaxBacklog:    time.Hour,
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Offer(int64(i%64), time.Microsecond)
		if i%1024 == 0 {
			a.Tick()
		}
	}
}
