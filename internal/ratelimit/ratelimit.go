// Package ratelimit provides the overload-protection primitives the
// serving-side models use under E18's open-loop load: a deterministic
// token bucket for per-peer rate limiting, and an Admission controller
// that models a bounded serving queue in simulated-time units — admitted
// work is charged the queueing delay of everything ahead of it, and work
// beyond the per-client rate or the backlog bound is shed with a typed
// error instead of queueing forever.
//
// Everything here is round-driven and deterministic: Tick advances one
// round (refill buckets, drain one round's serving budget), and no wall
// clock or global RNG is consulted, so seeded experiment runs reproduce
// bit-for-bit. All types are safe for concurrent use.
package ratelimit

import (
	"errors"
	"sync"
	"time"
)

// ErrRateLimited reports a publish shed by the client's token bucket: the
// client exceeded its per-round rate allowance.
var ErrRateLimited = errors.New("ratelimit: per-client rate exceeded")

// ErrOverload reports a publish shed by the serving queue: accepting it
// would push the queueing delay past the configured bound.
var ErrOverload = errors.New("ratelimit: serving queue full")

// Shed reports whether err is an admission-control shed (either kind).
// Callers use it to distinguish graceful load shedding from real faults.
func Shed(err error) bool {
	return errors.Is(err, ErrRateLimited) || errors.Is(err, ErrOverload)
}

// Bucket is a deterministic token bucket: capacity burst, refilled with
// rate tokens per Tick. The zero value is unusable; use NewBucket.
type Bucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
}

// NewBucket returns a bucket holding burst tokens, refilled with rate
// tokens per Tick. burst < rate is raised to rate so a full refill is
// never wasted.
func NewBucket(rate, burst float64) *Bucket {
	if burst < rate {
		burst = rate
	}
	return &Bucket{rate: rate, burst: burst, tokens: burst}
}

// Allow consumes one token if available.
func (b *Bucket) Allow() bool { return b.AllowN(1) }

// AllowN consumes n tokens if available.
func (b *Bucket) AllowN(n float64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}

// Tick refills one round's worth of tokens, capped at the burst size.
func (b *Bucket) Tick() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// Tokens returns the current token balance.
func (b *Bucket) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}

// Config parameterizes an Admission controller.
type Config struct {
	// PerClientRate is each client's token-bucket refill per round; <= 0
	// disables per-client limiting entirely.
	PerClientRate float64
	// PerClientBurst caps each client's bucket; <= 0 defaults to
	// 2 x PerClientRate.
	PerClientBurst float64
	// Budget is the serving capacity drained from the queue each Tick,
	// expressed in simulated service time (the latencies models report).
	Budget time.Duration
	// MaxBacklog bounds the queueing delay: an offer whose cost would push
	// the queued service time past this bound is shed with ErrOverload.
	// <= 0 means the queue is unbounded (admission still rate-limits).
	MaxBacklog time.Duration
}

// Stats is a point-in-time admission summary. Counters are cumulative
// since construction; QueueItems/QueueDelay describe the current backlog.
type Stats struct {
	Offered    int64
	Admitted   int64
	ShedRate   int64 // shed by a per-client token bucket
	ShedQueue  int64 // shed by the backlog bound
	Served     int64 // drained out of the queue by Tick
	QueueItems int
	QueueDelay time.Duration
}

// Admission is the serving-side controller: per-client token buckets in
// front of one bounded virtual queue. Offer either admits work (returning
// the queueing delay it will experience behind the current backlog) or
// sheds it. Tick drains one round's serving budget and refills buckets.
type Admission struct {
	mu      sync.Mutex
	cfg     Config
	buckets map[int64]*Bucket
	queue   []time.Duration // per-item service cost, FIFO
	backlog time.Duration   // sum(queue)
	stats   Stats
}

// NewAdmission returns an admission controller with cfg's policy.
func NewAdmission(cfg Config) *Admission {
	if cfg.PerClientBurst <= 0 {
		cfg.PerClientBurst = 2 * cfg.PerClientRate
	}
	return &Admission{cfg: cfg, buckets: make(map[int64]*Bucket)}
}

// Offer asks to admit one unit of work from client whose service will
// cost the given simulated time. On admission it returns the queueing
// delay the work waits behind the existing backlog; on shed it returns
// ErrRateLimited or ErrOverload (test with Shed).
func (a *Admission) Offer(client int64, cost time.Duration) (time.Duration, error) {
	if cost < 0 {
		cost = 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stats.Offered++
	if a.cfg.PerClientRate > 0 {
		b, ok := a.buckets[client]
		if !ok {
			b = NewBucket(a.cfg.PerClientRate, a.cfg.PerClientBurst)
			a.buckets[client] = b
		}
		if !b.Allow() {
			a.stats.ShedRate++
			return 0, ErrRateLimited
		}
	}
	if a.cfg.MaxBacklog > 0 && a.backlog+cost > a.cfg.MaxBacklog {
		a.stats.ShedQueue++
		return 0, ErrOverload
	}
	wait := a.backlog
	a.queue = append(a.queue, cost)
	a.backlog += cost
	a.stats.Admitted++
	return wait, nil
}

// Tick advances one round: the serving budget drains queued work in FIFO
// order and every client bucket refills.
func (a *Admission) Tick() {
	a.mu.Lock()
	defer a.mu.Unlock()
	budget := a.cfg.Budget
	for len(a.queue) > 0 && budget >= a.queue[0] {
		budget -= a.queue[0]
		a.backlog -= a.queue[0]
		a.queue = a.queue[1:]
		a.stats.Served++
	}
	// Partial progress on the head item: the budget is spent, not banked.
	if len(a.queue) > 0 && budget > 0 {
		a.queue[0] -= budget
		a.backlog -= budget
	}
	if a.backlog < 0 {
		a.backlog = 0
	}
	for _, b := range a.buckets {
		b.Tick()
	}
}

// Stats returns the cumulative counters and current queue state.
func (a *Admission) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := a.stats
	s.QueueItems = len(a.queue)
	s.QueueDelay = a.backlog
	return s
}
