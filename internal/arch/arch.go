// Package arch defines the common contract for the storage/indexing
// architecture models of Section IV — centralized warehouse, distributed
// database, federated database, soft-state metadata service, hierarchical
// namespace, DHT, and the paper's proposed distributed PASS — plus the
// in-memory site store they all build on.
//
// Every model runs over a netsim.Network, which accounts every byte and
// message; model methods return the *simulated* latency along the
// operation's critical path. The experiment harness compares models on
// exactly the paper's criteria: scalability (throughput vs sites),
// speed (latency), resource consumption (WAN bytes), query result
// quality (recall under staleness), and locality.
package arch

import (
	"sort"
	"sync"
	"time"

	"pass/internal/netsim"
	"pass/internal/provenance"
	"pass/internal/ratelimit"
	"pass/internal/xrand"
)

// Pub is one published unit of provenance metadata: a tuple set's record,
// produced at Origin. Models index metadata only — payloads stay at the
// producing site in every architecture (Section IV-A: "the warehouse
// would not store actual sensor data").
type Pub struct {
	ID     provenance.ID
	Rec    *provenance.Record
	Origin netsim.SiteID
}

// WireSize returns the record's metadata size on the wire.
func (p Pub) WireSize() int { return len(p.Rec.Encode()) }

// Network is the send/deliver surface every architecture model runs
// over: the subset of the simulator's API a model actually touches on
// its message paths. Two backends implement it today —
//
//   - *netsim.Network, the deterministic in-process simulator every
//     experiment and conformance law drives; and
//   - wire.Transport, the real-socket backend, where Send marshals a
//     versioned envelope onto a UDP socket and the returned latency is
//     measured wall-clock rather than simulated.
//
// Model constructors take this interface, so the SAME build function
// (e.g. func(net arch.Network, sites []netsim.SiteID) arch.Model) runs
// unchanged against either backend; the wire package's conformance
// bridge and the multi-process cluster harness rely on exactly that.
//
// Contract notes carried over from netsim: Send/Call return the
// injected-fault sentinels netsim exports (ErrSiteDown, ErrMsgLost,
// ErrPartitioned — IsUnavailable matches all three) so model retry
// logic is backend-independent; Send returns the one-way delivery
// latency (simulated or measured); Latency estimates without sending.
type Network interface {
	// Send delivers a one-way message of the given size and returns its
	// delivery latency.
	Send(from, to netsim.SiteID, bytes int) (time.Duration, error)
	// Call performs a request/response exchange and returns the summed
	// round-trip latency; on failure the duration preserves time already
	// spent.
	Call(from, to netsim.SiteID, reqBytes, respBytes int) (time.Duration, error)
	// Latency estimates the one-way latency for a message of the given
	// size without transmitting anything.
	Latency(from, to netsim.SiteID, bytes int) (time.Duration, error)
	// Site returns the site with the given ID.
	Site(id netsim.SiteID) (netsim.Site, error)
	// NumSites returns the number of registered sites.
	NumSites() int
	// IsDown reports whether the site is failed.
	IsDown(id netsim.SiteID) bool
	// Partitioned reports whether a partition separates a and b.
	Partitioned(a, b netsim.SiteID) bool
}

// Model is the contract every Section IV architecture implements.
//
// Fault contract: every implementation must survive send errors from the
// underlying network (IsUnavailable errors: down sites, lost messages,
// partitions) without corrupting internal state.
//
//   - Publish either delivers (possibly after bounded internal retries)
//     or returns an error; a failed publish must leave the model
//     consistent and the same Pub re-publishable later (idempotence).
//   - QueryAttr and QueryAncestors are best-effort: unreachable sites
//     degrade recall — results omit what those sites hold — rather than
//     aborting the whole query. An error is returned only when the query
//     cannot be answered at all (e.g. the sole index site is down).
//   - Lookup returns an error when the record's holder is unreachable
//     after bounded retries; it never fabricates a record.
//   - Tick must tolerate unavailable peers: work that cannot be pushed
//     this round is retried on a later round (or dropped, for
//     architectures whose semantics are fire-and-forget), and Tick keeps
//     servicing the remaining peers.
//
// Models with recovery mechanisms beyond this baseline declare them via
// the optional capability interfaces Stabilizer (membership repair and
// key re-homing), Rejoiner (snapshot state transfer for recovered
// sites), Joiner (a new node entering an existing membership with a
// charged key handoff), and Leaver (voluntary departure with a pre-exit
// key handoff); the conformance suite and the churn/membership
// experiments type-assert for them.
type Model interface {
	// Name identifies the model in result tables.
	Name() string
	// Publish registers metadata produced at p.Origin and returns the
	// simulated latency until the publish is acknowledged.
	Publish(p Pub) (time.Duration, error)
	// Lookup retrieves a record by exact ID on behalf of a querier site.
	Lookup(from netsim.SiteID, id provenance.ID) (*provenance.Record, time.Duration, error)
	// QueryAttr returns the IDs of records carrying exactly (key, value).
	QueryAttr(from netsim.SiteID, key string, value provenance.Value) ([]provenance.ID, time.Duration, error)
	// QueryAncestors returns the transitive ancestors of id.
	QueryAncestors(from netsim.SiteID, id provenance.ID) ([]provenance.ID, time.Duration, error)
	// Tick advances one maintenance round (soft-state refresh, digest
	// gossip, DHT republish). Models without periodic work return nil.
	Tick() error
}

// Stabilizer is the optional capability interface for models that run
// explicit membership repair (today: dht). A stabilize round detects
// crashed members, repairs successor/finger structures around them, and
// re-homes the keys the dead members owned onto their successors — all
// charged on the simulated network, so churn recovery has a measurable
// bandwidth and latency price. Callers (the churn experiment E16, the
// KeyRehoming conformance law) type-assert for it; models without
// membership state simply do not implement it.
//
// Stabilize returns the simulated time the round spent on probes and
// transfers. Like Tick, it must tolerate unavailable peers: an
// unreachable node is work for a later round, never an error.
type Stabilizer interface {
	Stabilize() (time.Duration, error)
}

// Joiner is the optional capability interface for models whose
// membership can GROW at runtime (today: dht). Stabilizer covers
// departures — crashed members removed, their keys re-homed — and Join
// covers arrivals: a cold node contacts any live member, is spliced into
// the membership, and receives a charged key handoff from its successor
// (the keys whose placements it now owns, plus its share of replica
// buckets), so the very next lookup can route to it. Replication around
// the new member is restored by the next Stabilize round's anti-entropy
// pass. The JoinHandoff conformance law and the membership experiment
// (E17) type-assert for it.
//
// Join returns the simulated critical-path latency of the contact,
// splice, and handoff. It fails with an unavailable error when the new
// node, the contact member, or the handoff transfer is unreachable; a
// failed join changes no membership and is retryable.
type Joiner interface {
	Join(newSite, via netsim.SiteID) (time.Duration, error)
}

// Rejoiner is the optional capability interface for models where a
// recovered site can actively resynchronize from one live neighbour
// (today: passnet) instead of waiting for every sender's per-delta
// retries. Rejoin transfers a state snapshot whose bytes are charged on
// the network; senders observing the snapshot's coverage prune their
// retry queues. The FastRejoin conformance law asserts the snapshot path
// converges in bounded rounds and costs fewer bytes than replaying every
// queued delta.
//
// Rejoin returns the simulated critical-path latency of the transfer. It
// fails with an unavailable error when the site is still down or no live
// donor is reachable; a failed rejoin leaves the model consistent and
// retryable (the site just keeps catching up via ordinary anti-entropy).
type Rejoiner interface {
	Rejoin(site netsim.SiteID) (time.Duration, error)
}

// Leaver is the optional capability interface for models whose members
// can depart VOLUNTARILY (today: dht). Where Stabilizer handles crashes
// after the fact — detect the silence, promote replicas, re-replicate —
// a leaving member announces its departure and pushes its keys to its
// successor before disconnecting, so the membership never routes through
// a hole. The transfer ships only what the successor is missing (it
// usually already replicates most of the leaver's primaries), which is
// why a voluntary leave is strictly cheaper than the crash-then-stabilize
// path the LeaveHandoff conformance law compares it against. The
// membership schedule (E17's OpLeave verb) type-asserts for it; models
// without membership state run the leave-as-crash convention instead.
//
// Leave returns the simulated critical-path latency of the announcement
// and handoff. It fails with an unavailable error when the leaver or its
// successor is unreachable; a failed leave changes no membership and is
// retryable.
type Leaver interface {
	Leave(site netsim.SiteID) (time.Duration, error)
}

// GossipStats is the gossip-path accounting a digest-gossiping model
// exposes through GossipMeter: the wire bytes its dissemination layer
// charged, how many redundant re-offers its duplicate suppression
// swallowed, and how many anti-entropy pull exchanges ran. E15/E17
// surface these as columns; the DuplicateSuppression law asserts on them.
type GossipStats struct {
	// Bytes is every byte the gossip layer charged: digest pushes
	// (delivered, lost in transit, or retried), anti-entropy pull
	// exchanges, and catch-up state transfers.
	Bytes int64
	// DupSuppressed counts re-offers the sender suppressed instead of
	// re-sending: duplicate publications dropped before a delta was cut,
	// and per-peer re-pushes muted by the dupemap while a pull was armed.
	DupSuppressed int64
	// PullRounds counts anti-entropy pull exchanges (fingerprint/seq
	// compare plus targeted diff transfer).
	PullRounds int64
}

// OpsSampler is the optional capability interface for models that export
// operational gauges to the live metrics surface (the obs collector and
// the passd daemon). SampleOps calls set once per reading with a
// stable snake_case metric name (e.g. "outbox_depth", "members") and the
// current value; it must be cheap — a handful of counter loads, no wire
// traffic — because the collector invokes it once per sampled round.
// Today passnet (outbox depth, rejoins, routing-filter accounting) and
// dht (ring size, re-homing and handoff totals) implement it.
type OpsSampler interface {
	SampleOps(set func(metric string, value int64))
}

// Admitter is the optional capability interface for models whose serving
// side can run under admission control (today: central, dht, passnet).
// SetAdmission installs a ratelimit.Admission controller — nil removes it
// — and the model consults it inside Publish: work the controller sheds
// returns a ratelimit error (test with ratelimit.Shed) WITHOUT touching
// the network, so a shed is cheap by construction; admitted work has the
// controller's queueing delay added to its reported critical-path
// latency, modeling time spent behind the backlog. The model's Tick
// drives the controller's Tick (budget drain + bucket refill). E18 and
// the obs collector type-assert for it; models without an ingest
// bottleneck to protect simply do not implement it.
type Admitter interface {
	SetAdmission(a *ratelimit.Admission)
	Admission() *ratelimit.Admission
}

// AdmissionSlot is the embeddable Admitter implementation the capable
// models share: a mutex-guarded slot holding the installed controller.
// Its zero value (no controller) is ready to use.
type AdmissionSlot struct {
	admMu sync.Mutex
	adm   *ratelimit.Admission
}

// SetAdmission implements Admitter.
func (s *AdmissionSlot) SetAdmission(a *ratelimit.Admission) {
	s.admMu.Lock()
	s.adm = a
	s.admMu.Unlock()
}

// Admission implements Admitter; it returns nil when no controller is
// installed.
func (s *AdmissionSlot) Admission() *ratelimit.Admission {
	s.admMu.Lock()
	defer s.admMu.Unlock()
	return s.adm
}

// GossipMeter is the optional capability interface for models that meter
// their dissemination layer (today: passnet and softstate.Viewful's
// index-tier anti-entropy). The harness and the
// conformance suite type-assert for it; models without a gossip path
// simply do not implement it.
type GossipMeter interface {
	GossipStats() GossipStats
}

// Request/response wire-size model, shared across architectures so byte
// comparisons are apples-to-apples.
const (
	// ReqOverhead covers a request header (op, key material).
	ReqOverhead = 64
	// RespOverhead covers a response header.
	RespOverhead = 32
	// IDWire is the wire size of one record ID.
	IDWire = 32
	// AckWire is a small acknowledgement.
	AckWire = 16
)

// SendRetries is the bounded retry budget models apply to messages whose
// delivery they must confirm (publish acks, index round trips). Three
// retransmissions push the residual failure probability of a p-lossy
// link to p^4 — under 1% even at 30% loss — while keeping the wasted
// bandwidth measurable in E14.
const SendRetries = 3

// IsUnavailable reports whether err is an injected network fault (down
// site, lost message, partition) rather than a logical failure such as a
// missing record. Models retry or degrade on these; everything else
// propagates.
func IsUnavailable(err error) bool { return netsim.Unavailable(err) }

// Retransmission-timeout model. A real sender does not learn of a lost
// message from the network; it learns by WAITING — the retransmission
// timer must expire before the next attempt goes out. Every architecture
// model therefore charges, on top of the link latency its failed attempt
// accumulated, an RTO penalty that doubles per consecutive failure
// (exponential backoff, TCP-style) with deterministic ±25% jitter drawn
// from a seeded xrand generator, so lossy-run latencies stay exactly
// reproducible.
const (
	// RTOBase is the initial retransmission timeout. It deliberately
	// dwarfs the simulator's per-message latencies (µs–ms): a retry is
	// supposed to hurt the critical path, which is what E14's latency
	// columns measure.
	RTOBase = 200 * time.Millisecond
	// RTOMax caps the exponential growth.
	RTOMax = 3 * time.Second
)

// RTO is a deterministic retransmission-timeout clock. Each model owns
// one, seeded at construction, and threads it through every Retry so
// timeout penalties are reproducible run to run. A nil *RTO charges no
// penalty (pure link-latency accounting, the pre-RTO behavior — used by
// code that models fire-and-forget traffic). Penalty serializes its
// jitter draws internally: Retry runs OUTSIDE the owning model's lock
// (only the op closures take it), so the clock cannot lean on that lock
// the way the models' other state does.
type RTO struct {
	mu  sync.Mutex
	rng *xrand.Rand
}

// NewRTO returns a timeout clock seeded for deterministic jitter.
func NewRTO(seed uint64) *RTO { return &RTO{rng: xrand.New(seed)} }

// Penalty returns the timeout charged before retransmission number
// attempt+1 (attempt counts consecutive failures so far, starting at 0):
// RTOBase doubled per failure, jittered ±25%, capped at RTOMax. The cap
// applies AFTER jitter: a long-unreachable peer's timer settles at
// exactly RTOMax instead of drifting up to 1.25× past it, so the ceiling
// is a true ceiling (shift counts past the word size collapse to the cap
// as well, closing the duration-overflow hole at high attempt numbers).
func (r *RTO) Penalty(attempt int) time.Duration {
	if r == nil {
		return 0
	}
	timeout := RTOBase
	if attempt >= 63 {
		timeout = RTOMax
	} else if timeout <<= uint(attempt); timeout > RTOMax || timeout <= 0 {
		timeout = RTOMax
	}
	r.mu.Lock()
	jitter := 0.75 + 0.5*r.rng.Float64()
	r.mu.Unlock()
	p := time.Duration(float64(timeout) * jitter)
	if p > RTOMax {
		p = RTOMax
	}
	return p
}

// Retry runs op up to 1+retries times, stopping on success or on the
// first error that is not an injected fault. The returned latency
// accumulates every attempt — time wasted on lost messages is real time
// on the operation's critical path — plus, for every failed attempt, the
// rto's backoff penalty: the sender only discovers a loss when its
// retransmission timer expires, so each failure costs a timeout whether
// or not another attempt follows.
func Retry(rto *RTO, retries int, op func() (time.Duration, error)) (time.Duration, error) {
	var total time.Duration
	var err error
	for attempt := 0; attempt <= retries; attempt++ {
		var d time.Duration
		d, err = op()
		total += d
		if err == nil || !IsUnavailable(err) {
			return total, err
		}
		total += rto.Penalty(attempt)
	}
	return total, err
}

// AttrReqSize sizes an attribute-query request.
func AttrReqSize(key string, value provenance.Value) int {
	return ReqOverhead + len(key) + len(value.Canonical())
}

// IDListRespSize sizes a response carrying n record IDs.
func IDListRespSize(n int) int { return RespOverhead + n*IDWire }

// SiteStore is the in-memory metadata store one site (or server, or DHT
// node, or warehouse) runs. It mirrors the local PASS index structures —
// inverted attribute postings and bidirectional ancestry — without the
// on-disk substrate, which the architecture experiments do not measure.
type SiteStore struct {
	recs     map[provenance.ID]*provenance.Record
	attr     map[string][]provenance.ID // attrMapKey -> postings
	children map[provenance.ID][]provenance.ID
}

// NewSiteStore returns an empty site store.
func NewSiteStore() *SiteStore {
	return &SiteStore{
		recs:     make(map[provenance.ID]*provenance.Record),
		attr:     make(map[string][]provenance.ID),
		children: make(map[provenance.ID][]provenance.ID),
	}
}

// attrMapKey builds the postings map key for (key, value).
func attrMapKey(key string, value provenance.Value) string {
	return key + "\x00" + string(value.Canonical())
}

// QueriableAttrs returns every attribute a model must index and publish
// for the record: the record's own attributes plus the synthetic type and
// tool attributes, mirroring the local PASS index (package index). All
// models use this list so their per-attribute publication costs are
// comparable.
func QueriableAttrs(rec *provenance.Record) []provenance.Attribute {
	out := make([]provenance.Attribute, 0, len(rec.Attributes)+2)
	out = append(out, rec.Attributes...)
	out = append(out, provenance.Attr("~type", provenance.String(rec.Type.String())))
	if rec.Tool != "" {
		out = append(out, provenance.Attr("~tool", provenance.String(rec.Tool)))
	}
	return out
}

// Add indexes a record. Re-adding the same ID is a no-op.
func (st *SiteStore) Add(id provenance.ID, rec *provenance.Record) {
	if _, ok := st.recs[id]; ok {
		return
	}
	st.recs[id] = rec
	for _, a := range QueriableAttrs(rec) {
		k := attrMapKey(a.Key, a.Value)
		st.attr[k] = append(st.attr[k], id)
	}
	for _, p := range rec.Parents {
		st.children[p] = append(st.children[p], id)
	}
}

// Get returns the record for id.
func (st *SiteStore) Get(id provenance.ID) (*provenance.Record, bool) {
	r, ok := st.recs[id]
	return r, ok
}

// Len returns the number of records held.
func (st *SiteStore) Len() int { return len(st.recs) }

// LookupAttr returns the postings for (key, value).
func (st *SiteStore) LookupAttr(key string, value provenance.Value) []provenance.ID {
	return st.attr[attrMapKey(key, value)]
}

// Parents returns the direct parents of id (empty if unknown).
func (st *SiteStore) Parents(id provenance.ID) []provenance.ID {
	if r, ok := st.recs[id]; ok {
		return r.Parents
	}
	return nil
}

// Children returns the direct children of id.
func (st *SiteStore) Children(id provenance.ID) []provenance.ID {
	return st.children[id]
}

// LocalAncestors walks ancestry as far as this store's records reach,
// starting from the given frontier. It returns every ancestor found
// locally plus the unresolved parent IDs whose records live elsewhere.
// This server-side traversal is what lets distributed PASS resolve long
// same-site lineage chains in a single round trip (experiment E11).
func (st *SiteStore) LocalAncestors(frontier []provenance.ID) (found, unresolved []provenance.ID) {
	visited := make(map[provenance.ID]struct{})
	var stack []provenance.ID
	for _, id := range frontier {
		if rec, ok := st.recs[id]; ok {
			stack = append(stack, rec.Parents...)
		}
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, seen := visited[cur]; seen {
			continue
		}
		visited[cur] = struct{}{}
		rec, ok := st.recs[cur]
		if !ok {
			unresolved = append(unresolved, cur)
			continue
		}
		found = append(found, cur)
		stack = append(stack, rec.Parents...)
	}
	return found, unresolved
}

// IDs returns all record IDs in deterministic order (tests).
func (st *SiteStore) IDs() []provenance.ID {
	out := make([]provenance.ID, 0, len(st.recs))
	for id := range st.recs {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		for b := 0; b < len(out[i]); b++ {
			if out[i][b] != out[j][b] {
				return out[i][b] < out[j][b]
			}
		}
		return false
	})
	return out
}

// Rand is the shared deterministic PRNG (xorshift*, package xrand) models
// use for reproducible placement or corruption decisions.
type Rand = xrand.Rand

// NewRand seeds a generator (0 seed is fixed up internally).
func NewRand(seed uint64) *Rand { return xrand.New(seed) }

// MaxDuration returns the larger duration.
func MaxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
