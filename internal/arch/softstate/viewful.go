package softstate

// Viewful wraps the soft-state service with per-index-node federation
// views, making the index tier a second view-bearing architecture next
// to passnet (experiment E15). The plain Model's semantics are untouched
// — records still live at their producers, queries still consult the
// hash-owning shard, refreshes still run on the same cadence — but every
// index node now folds the refresh batches that land on it into a
// siteview.View, and the nodes run a charged anti-entropy exchange among
// themselves each Tick so their views converge to one federation
// picture. Under a partition the exchange is blocked and the two sides'
// index views diverge exactly like passnet's per-site views do; after
// the heal the next exchanges re-converge them.
//
// Viewful implements siteview.Exposer. A plain site has no view of its
// own — its federation picture is whatever its designated index node
// (the nearest by site id, admission order) currently holds, which is
// precisely the soft-state trust relationship the paper's RLS/SRB
// clients live with.
//
// Viewful deliberately does NOT run the archtest conformance suite: the
// sharded index means a mid-partition querier cannot see even its own
// side's records when they hash to an index node across the cut, which
// is an honest soft-state failure mode, not a view-model bug. E15 shows
// it side by side with passnet instead.

import (
	"errors"

	"pass/internal/arch"
	"pass/internal/arch/siteview"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

// Viewful is the view-bearing soft-state service.
type Viewful struct {
	*Model
	views map[netsim.SiteID]*siteview.View
	// serve maps every plain site to its designated index node.
	serve map[netsim.SiteID]netsim.SiteID
	// emptyDiff is the size of a diff that carries nothing — the floor
	// below which an exchange is skipped entirely.
	emptyDiff   int
	gossipBytes int64
}

// NewViewful builds a soft-state service whose index nodes carry views.
// Arguments are New's.
func NewViewful(net arch.Network, sites, indexNodes []netsim.SiteID, refreshEvery int) *Viewful {
	m := New(net, sites, indexNodes, refreshEvery)
	v := &Viewful{
		Model:     m,
		views:     make(map[netsim.SiteID]*siteview.View, len(m.indexNodes)),
		serve:     make(map[netsim.SiteID]netsim.SiteID, len(sites)),
		emptyDiff: siteview.DiffWireSize(siteview.NewView(0), siteview.NewView(0)),
	}
	for _, n := range m.indexNodes {
		v.views[n] = siteview.NewView(n)
	}
	for _, s := range sites {
		best := m.indexNodes[0]
		for _, n := range m.indexNodes[1:] {
			if dist(s, n) < dist(s, best) {
				best = n
			}
		}
		v.serve[s] = best
	}
	m.onLanded = v.fold
	return v
}

func dist(a, b netsim.SiteID) netsim.SiteID {
	if a < b {
		return b - a
	}
	return a - b
}

// Name implements arch.Model.
func (v *Viewful) Name() string { return "softstate+views" }

// fold records a refresh batch that landed at an index node: the node's
// view learns the batch's locations and attribute keys, attributed to
// the producing site. Batches are shard subsets of a site's output, so
// they fold through a scratch view and Merge — content union — rather
// than the contiguous per-origin delta stream passnet's gossip delivers.
func (v *Viewful) fold(node, site netsim.SiteID, ids []provenance.ID, attrKeys []string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	scratch := siteview.NewView(node)
	scratch.Apply(siteview.NewDelta(site, 1, ids, attrKeys))
	v.views[node].Merge(scratch)
}

// SiteView implements siteview.Exposer: an index node answers with its
// own view, a plain site with its designated index node's.
func (v *Viewful) SiteView(s netsim.SiteID) *siteview.View {
	v.mu.Lock()
	defer v.mu.Unlock()
	if view, ok := v.views[s]; ok {
		return view
	}
	return v.views[v.serve[s]]
}

// Tick runs the embedded model's refresh round, then the index tier's
// anti-entropy: every node offers every other node a diff of what the
// receiver is missing, priced by siteview.DiffWireSize and charged on
// the wire. A lost diff is charged and retried next Tick (the views
// still differ); a node behind a partition is a free skip until the
// heal.
func (v *Viewful) Tick() error {
	if err := v.Model.Tick(); err != nil {
		return err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, a := range v.indexNodes { // deterministic order, never map order
		for _, b := range v.indexNodes {
			if a == b {
				continue
			}
			diff := siteview.DiffWireSize(v.views[a], v.views[b])
			if diff <= v.emptyDiff {
				continue
			}
			_, err := v.net.Send(a, b, diff)
			switch {
			case err == nil:
				v.gossipBytes += int64(diff)
				v.views[b].Merge(v.views[a])
			case errors.Is(err, netsim.ErrMsgLost):
				v.gossipBytes += int64(diff)
			case arch.IsUnavailable(err):
				// down or partitioned: free fail, retry next round
			default:
				return err
			}
		}
	}
	return nil
}

// GossipStats implements arch.GossipMeter for the index tier's
// anti-entropy traffic. The soft-state service has no duplicate
// suppression and no pull protocol — those fields stay zero.
func (v *Viewful) GossipStats() arch.GossipStats {
	v.mu.Lock()
	defer v.mu.Unlock()
	return arch.GossipStats{Bytes: v.gossipBytes}
}

var _ siteview.Exposer = (*Viewful)(nil)
var _ arch.GossipMeter = (*Viewful)(nil)
