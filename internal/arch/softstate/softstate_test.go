package softstate

import (
	"testing"

	"pass/internal/arch"
	"pass/internal/arch/archtest"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

func TestConformance(t *testing.T) {
	archtest.Run(t, archtest.Config{
		Make: func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return New(net, sites, sites[:2], 1)
		},
		NeedsTick: true,
	})
}

func TestStalenessBeforeRefresh(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites, sites[:1], 1)
	p := archtest.PubAt(1, sites[0], provenance.Attr("k", provenance.String("v")))
	if _, err := m.Publish(p); err != nil {
		t.Fatal(err)
	}
	// Before any refresh the global index knows nothing: recall 0.
	got, _, err := m.QueryAttr(sites[1], "k", provenance.String("v"))
	if err != nil || len(got) != 0 {
		t.Fatalf("pre-refresh query = %d ids, %v (soft state should be stale)", len(got), err)
	}
	if m.PendingCount() != 1 {
		t.Fatalf("pending = %d", m.PendingCount())
	}
	// After the refresh, full recall.
	if err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	got, _, err = m.QueryAttr(sites[1], "k", provenance.String("v"))
	if err != nil || len(got) != 1 {
		t.Fatalf("post-refresh query = %d ids, %v", len(got), err)
	}
	if m.PendingCount() != 0 {
		t.Fatal("pending not drained by refresh")
	}
}

func TestRefreshEveryNTicks(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites, sites[:1], 4)
	p := archtest.PubAt(1, sites[0], provenance.Attr("k", provenance.String("v")))
	m.Publish(p)
	for i := 0; i < 3; i++ {
		m.Tick()
		if got, _, _ := m.QueryAttr(sites[1], "k", provenance.String("v")); len(got) != 0 {
			t.Fatalf("visible after %d ticks with period 4", i+1)
		}
	}
	m.Tick() // 4th tick: refresh fires
	if got, _, _ := m.QueryAttr(sites[1], "k", provenance.String("v")); len(got) != 1 {
		t.Fatal("not visible after full period")
	}
	if m.Refreshes() != 1 {
		t.Fatalf("refreshes = %d", m.Refreshes())
	}
}

func TestLookupUsesLocationThenHome(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites, sites[:1], 1)
	p := archtest.PubAt(1, sites[2]) // produced in london
	m.Publish(p)
	m.Tick()
	net.ResetStats()
	rec, _, err := m.Lookup(sites[3], p.ID) // london consumer
	if err != nil {
		t.Fatal(err)
	}
	if rec.ComputeID() != p.ID {
		t.Fatal("wrong record")
	}
	// Two round trips: index node + home site = 4 messages.
	if msgs := net.Stats().Messages; msgs != 4 {
		t.Fatalf("lookup used %d messages, want 4", msgs)
	}
}

func TestUnknownSitePublish(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites[:2], sites[:1], 1)
	if _, err := m.Publish(archtest.PubAt(1, sites[3])); err == nil {
		t.Fatal("publish from unknown site accepted")
	}
}

func TestDefaultIndexNode(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites, nil, 1) // no index nodes given: first site hosts
	p := archtest.PubAt(1, sites[1], provenance.Attr("k", provenance.String("v")))
	m.Publish(p)
	m.Tick()
	got, _, err := m.QueryAttr(sites[2], "k", provenance.String("v"))
	if err != nil || len(got) != 1 {
		t.Fatalf("query via default index node = %d, %v", len(got), err)
	}
}
