// Package softstate implements Section IV-B's third model, the
// soft-state metadata services of the Grid: the Replica Location Service
// (RLS) and the Storage Resource Broker (SRB). Records live at their
// producing site (availability over consistency, locality preserved);
// a distributed lookup layer of index nodes holds *soft state* — location
// and attribute mappings that producers push only on periodic refresh.
//
// The two weaknesses the paper names, made measurable:
//
//   - "it relies on periodic updates to keep its soft-state from becoming
//     stale": records published since a site's last refresh are invisible
//     to global queries, so recall decays as the refresh period grows
//     (experiment E7);
//   - "SRB's metadata model denies transitive closure": the index maps
//     names to locations and attributes to names, but holds no ancestry,
//     so closure queries must fetch each record from its home site, one
//     round trip per step.
package softstate

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"pass/internal/arch"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

// Model is the soft-state metadata service.
type Model struct {
	mu    sync.Mutex
	net   arch.Network
	sites []netsim.SiteID
	// index nodes hold the soft state; records hash to one index node.
	indexNodes []netsim.SiteID

	// Authoritative per-site stores.
	stores map[netsim.SiteID]*arch.SiteStore
	// Soft state: per index node, attr postings and record locations,
	// refreshed on Tick. softSeen makes posting insertion idempotent
	// (fault-requeued refreshes re-push batches that partially landed).
	softAttr map[netsim.SiteID]map[string][]provenance.ID
	softSeen map[netsim.SiteID]map[string]struct{}
	softLoc  map[netsim.SiteID]map[provenance.ID]netsim.SiteID
	// Pending: published but not yet refreshed, per site.
	pending map[netsim.SiteID][]arch.Pub

	// RefreshEvery counts Ticks between refreshes per site.
	refreshEvery int
	tickCount    int
	refreshes    int64
	rto          *arch.RTO

	// onLanded, when set (Viewful), observes every refresh batch that
	// successfully landed at an index node: the node, the producing site,
	// and the batch's location ids and canonical attribute keys. Called
	// without m.mu held.
	onLanded func(node, site netsim.SiteID, ids []provenance.ID, attrKeys []string)
}

// New builds a soft-state service. indexNodes are the sites that host the
// distributed lookup service (RLS's "metadata lookup service is
// distributed"); refreshEvery is the number of Ticks between soft-state
// pushes (1 = refresh every tick).
func New(net arch.Network, sites, indexNodes []netsim.SiteID, refreshEvery int) *Model {
	if refreshEvery < 1 {
		refreshEvery = 1
	}
	if len(indexNodes) == 0 && len(sites) > 0 {
		indexNodes = sites[:1]
	}
	m := &Model{
		net:          net,
		sites:        append([]netsim.SiteID(nil), sites...),
		indexNodes:   append([]netsim.SiteID(nil), indexNodes...),
		stores:       make(map[netsim.SiteID]*arch.SiteStore),
		softAttr:     make(map[netsim.SiteID]map[string][]provenance.ID),
		softSeen:     make(map[netsim.SiteID]map[string]struct{}),
		softLoc:      make(map[netsim.SiteID]map[provenance.ID]netsim.SiteID),
		pending:      make(map[netsim.SiteID][]arch.Pub),
		refreshEvery: refreshEvery,
		rto:          arch.NewRTO(0x50F757),
	}
	for _, s := range sites {
		m.stores[s] = arch.NewSiteStore()
	}
	for _, n := range indexNodes {
		m.softAttr[n] = make(map[string][]provenance.ID)
		m.softSeen[n] = make(map[string]struct{})
		m.softLoc[n] = make(map[provenance.ID]netsim.SiteID)
	}
	return m
}

// Name implements arch.Model.
func (m *Model) Name() string { return "softstate" }

// indexNodeFor hashes a key onto one index node (SRB zones).
func (m *Model) indexNodeFor(b []byte) netsim.SiteID {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return m.indexNodes[h%uint64(len(m.indexNodes))]
}

// Publish commits locally only; global visibility waits for the next
// refresh. This is the availability-over-consistency trade.
func (m *Model) Publish(p arch.Pub) (time.Duration, error) {
	st, ok := m.stores[p.Origin]
	if !ok {
		return 0, fmt.Errorf("softstate: unknown site %d", p.Origin)
	}
	d, err := m.net.Send(p.Origin, p.Origin, p.WireSize())
	if err != nil {
		return 0, err
	}
	m.mu.Lock()
	st.Add(p.ID, p.Rec)
	m.pending[p.Origin] = append(m.pending[p.Origin], p)
	m.mu.Unlock()
	return d, nil
}

// Tick advances one maintenance round; every refreshEvery ticks, each
// site pushes its pending soft state to the index nodes.
func (m *Model) Tick() error {
	m.mu.Lock()
	m.tickCount++
	due := m.tickCount%m.refreshEvery == 0
	m.mu.Unlock()
	if !due {
		return nil
	}
	return m.RefreshNow()
}

// RefreshNow pushes all pending soft state immediately. A batch that
// cannot reach its index node (down, partitioned, lossy after
// retransmission) requeues that site's publications for the next refresh
// round — soft state is best-effort about freshness, but producers keep
// re-pushing until the index hears them, which is exactly how RLS-style
// periodic refresh recovers from faults. Requeued publications may resend
// postings an index node already holds; QueryAttr deduplicates.
func (m *Model) RefreshNow() error {
	m.mu.Lock()
	work := m.pending
	m.pending = make(map[netsim.SiteID][]arch.Pub)
	m.refreshes++
	m.mu.Unlock()

	// Deterministic site order: map-order iteration would scramble the
	// packet-loss draws from run to run.
	siteOrder := make([]netsim.SiteID, 0, len(work))
	for site := range work {
		siteOrder = append(siteOrder, site)
	}
	sort.Slice(siteOrder, func(i, j int) bool { return siteOrder[i] < siteOrder[j] })

	for _, site := range siteOrder {
		pubs := work[site]
		// Group updates per index node: location entries go to the
		// record's node, each attribute posting to that attribute's
		// node. One batched message per node.
		type update struct {
			locs  []provenance.ID
			attrs []attrPosting
		}
		batch := make(map[netsim.SiteID]*update)
		get := func(node netsim.SiteID) *update {
			u, ok := batch[node]
			if !ok {
				u = &update{}
				batch[node] = u
			}
			return u
		}
		for _, p := range pubs {
			get(m.indexNodeFor(p.ID[:])).locs = append(get(m.indexNodeFor(p.ID[:])).locs, p.ID)
			for _, a := range arch.QueriableAttrs(p.Rec) {
				mk := a.Key + "\x00" + string(a.Value.Canonical())
				node := m.indexNodeFor([]byte(mk))
				get(node).attrs = append(get(node).attrs, attrPosting{mk: mk, id: p.ID})
			}
		}
		nodeOrder := make([]netsim.SiteID, 0, len(batch))
		for node := range batch {
			nodeOrder = append(nodeOrder, node)
		}
		sort.Slice(nodeOrder, func(i, j int) bool { return nodeOrder[i] < nodeOrder[j] })
		failed := false
		for _, node := range nodeOrder {
			u := batch[node]
			size := len(u.locs) * (arch.IDWire + 8)
			for _, ap := range u.attrs {
				size += len(ap.mk) + arch.IDWire
			}
			if _, err := arch.Retry(m.rto, arch.SendRetries, func() (time.Duration, error) {
				return m.net.Send(site, node, size)
			}); err != nil {
				failed = true // retried next round
				continue
			}
			m.mu.Lock()
			for _, id := range u.locs {
				m.softLoc[node][id] = site
			}
			for _, ap := range u.attrs {
				// Idempotent insert: a requeued refresh may re-push
				// postings this node already holds.
				sk := ap.mk + "\x00" + string(ap.id[:])
				if _, dup := m.softSeen[node][sk]; dup {
					continue
				}
				m.softSeen[node][sk] = struct{}{}
				m.softAttr[node][ap.mk] = append(m.softAttr[node][ap.mk], ap.id)
			}
			m.mu.Unlock()
			if m.onLanded != nil {
				mks := make([]string, 0, len(u.attrs))
				for _, ap := range u.attrs {
					mks = append(mks, ap.mk)
				}
				m.onLanded(node, site, u.locs, mks)
			}
		}
		if failed {
			m.mu.Lock()
			m.pending[site] = append(append([]arch.Pub(nil), pubs...), m.pending[site]...)
			m.mu.Unlock()
		}
	}
	return nil
}

// Lookup asks the index node for the record's location, then fetches the
// record from its home site: two round trips, locality preserved for the
// fetch ("data is stored at the producers ... shipped to neither a
// central nor an arbitrary location").
func (m *Model) Lookup(from netsim.SiteID, id provenance.ID) (*provenance.Record, time.Duration, error) {
	node := m.indexNodeFor(id[:])
	m.mu.Lock()
	home, known := m.softLoc[node][id]
	m.mu.Unlock()
	d1, err := arch.Retry(m.rto, arch.SendRetries, func() (time.Duration, error) {
		return m.net.Call(from, node, arch.ReqOverhead+arch.IDWire, arch.RespOverhead+8)
	})
	if err != nil {
		return nil, d1, err
	}
	if !known {
		return nil, d1, fmt.Errorf("softstate: %s not in soft state (stale or never refreshed)", id.Short())
	}
	m.mu.Lock()
	rec, ok := m.stores[home].Get(id)
	m.mu.Unlock()
	respSize := arch.RespOverhead
	if ok {
		respSize += len(rec.Encode())
	}
	d2, err := arch.Retry(m.rto, arch.SendRetries, func() (time.Duration, error) {
		return m.net.Call(from, home, arch.ReqOverhead+arch.IDWire, respSize)
	})
	if err != nil {
		return nil, d1 + d2, err
	}
	if !ok {
		return nil, d1 + d2, fmt.Errorf("softstate: index points at %d but record %s is gone", home, id.Short())
	}
	return rec, d1 + d2, nil
}

// QueryAttr consults the attribute's index node. Results reflect the last
// refresh only — the staleness E7 quantifies. Postings are unique by
// construction (insertion is idempotent), so no query-time dedup.
func (m *Model) QueryAttr(from netsim.SiteID, key string, value provenance.Value) ([]provenance.ID, time.Duration, error) {
	mk := key + "\x00" + string(value.Canonical())
	node := m.indexNodeFor([]byte(mk))
	m.mu.Lock()
	ids := append([]provenance.ID(nil), m.softAttr[node][mk]...)
	m.mu.Unlock()
	d, err := arch.Retry(m.rto, arch.SendRetries, func() (time.Duration, error) {
		return m.net.Call(from, node, arch.AttrReqSize(key, value), arch.IDListRespSize(len(ids)))
	})
	if err != nil {
		return nil, d, err
	}
	return ids, d, nil
}

// QueryAncestors: the soft-state index holds no ancestry ("SRB's metadata
// model denies transitive closure"), so the querier fetches record after
// record via Lookup — two round trips per step.
func (m *Model) QueryAncestors(from netsim.SiteID, id provenance.ID) ([]provenance.ID, time.Duration, error) {
	var total time.Duration
	visited := make(map[provenance.ID]struct{})
	var out []provenance.ID
	frontier := []provenance.ID{id}
	for len(frontier) > 0 {
		var next []provenance.ID
		for _, cur := range frontier {
			rec, d, err := m.Lookup(from, cur)
			total += d
			if err != nil {
				if cur == id {
					return nil, total, err
				}
				continue // stale index: edge unresolvable right now
			}
			for _, parent := range rec.Parents {
				if _, seen := visited[parent]; seen {
					continue
				}
				visited[parent] = struct{}{}
				out = append(out, parent)
				next = append(next, parent)
			}
		}
		frontier = next
	}
	return out, total, nil
}

// PendingCount reports unrefreshed publications (tests, E7).
func (m *Model) PendingCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, ps := range m.pending {
		n += len(ps)
	}
	return n
}

// Refreshes reports completed refresh rounds.
func (m *Model) Refreshes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.refreshes
}

// attrPosting is one (attribute map key, record ID) soft-state entry.
type attrPosting struct {
	mk string
	id provenance.ID
}
