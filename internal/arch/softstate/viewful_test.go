package softstate

import (
	"testing"

	"pass/internal/arch"
	"pass/internal/arch/archtest"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

// TestViewfulIndexViewsConverge: the index tier's anti-entropy gives
// every index node — and every plain site through its designated node —
// one converged federation picture, charged on the wire, while the plain
// model's query semantics stay untouched.
func TestViewfulIndexViewsConverge(t *testing.T) {
	net, sites := netsim.RandomTopology(netsim.Config{}, 2, 4, 9090) // 8 sites
	nodes := []netsim.SiteID{sites[0], sites[4]}
	m := NewViewful(net, sites, nodes, 1)

	domain := provenance.String("vf")
	pubs := make([]arch.Pub, 0, 24)
	for i := 0; i < 24; i++ {
		p := archtest.PubN(i, sites[i%len(sites)], provenance.Attr("domain", domain))
		if _, err := m.Publish(p); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		pubs = append(pubs, p)
	}
	if err := m.Tick(); err != nil { // refresh lands shards, then index gossip
		t.Fatal(err)
	}

	if got := m.SiteView(nodes[0]).Fingerprint(); got != m.SiteView(nodes[1]).Fingerprint() {
		t.Fatal("index node views did not converge after anti-entropy")
	}
	// Every node's view locates EVERY record, not just its own shard.
	for _, n := range nodes {
		for _, p := range pubs {
			home, ok := m.SiteView(n).Locate(p.ID)
			if !ok {
				t.Fatalf("node %d cannot locate %s after convergence", n, p.ID.Short())
			}
			if home != p.Origin {
				t.Fatalf("node %d locates %s at %d, want its producer %d", n, p.ID.Short(), home, p.Origin)
			}
		}
	}
	// A plain site answers with its designated node's view.
	if m.SiteView(sites[1]).Fingerprint() != m.SiteView(nodes[0]).Fingerprint() {
		t.Fatal("plain site's view is not its designated index node's")
	}
	if gs := m.GossipStats(); gs.Bytes == 0 {
		t.Fatal("index-tier anti-entropy charged zero bytes")
	}
	// The wrapped query path still answers exactly.
	got, _, err := m.QueryAttr(sites[7], "domain", domain)
	if err != nil || len(got) != len(pubs) {
		t.Fatalf("query through the wrapper = %d/%d ids, %v", len(got), len(pubs), err)
	}
}

// TestViewfulSplitBrainAtIndexTier: a partition separating the two index
// nodes makes their views diverge — each side's node learns only its
// side's refreshes — and the first post-heal Tick re-converges them.
func TestViewfulSplitBrainAtIndexTier(t *testing.T) {
	net, sites := netsim.RandomTopology(netsim.Config{}, 2, 4, 9091) // 8 sites
	left, right := sites[:4], sites[4:]
	nodes := []netsim.SiteID{left[0], right[0]}
	m := NewViewful(net, sites, nodes, 1)
	domain := provenance.String("vfsplit")

	net.Partition(left, right)
	for i := 0; i < 16; i++ {
		side := left
		if i%2 == 1 {
			side = right
		}
		// Publishing is local and never blocked; only the refresh's reach
		// is partitioned.
		if _, err := m.Publish(archtest.PubN(i, side[(i/2)%len(side)], provenance.Attr("domain", domain))); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := m.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if m.SiteView(nodes[0]).Fingerprint() == m.SiteView(nodes[1]).Fingerprint() {
		t.Fatal("index views match across an open partition")
	}

	net.HealPartition()
	// Refresh requeues drain and the index exchange reconnects; a couple
	// of rounds re-converge the tier.
	for i := 0; i < 3; i++ {
		if err := m.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if m.SiteView(nodes[0]).Fingerprint() != m.SiteView(nodes[1]).Fingerprint() {
		t.Fatal("index views did not re-converge after the heal")
	}
	got, _, err := m.QueryAttr(sites[1], "domain", domain)
	if err != nil || len(got) != 16 {
		t.Fatalf("post-heal query = %d/16 ids, %v", len(got), err)
	}
}
