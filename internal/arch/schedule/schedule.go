// Package schedule generates and executes randomized membership
// schedules: seeded interleavings of join / leave / crash / heal /
// partition / loss-burst events that drive any arch.Model through the
// full "sites come and go" lifecycle the paper's Section IV comparison
// assumes.
//
// The scripted churn scenarios (E16, the KeyRehoming and FastRejoin
// laws) pin one mechanism each; this package is the scenario-diversity
// counterpart. Generate derives, from one seed, a deterministic event
// list over a fixed site population — some sites are members from the
// start, some are cold "joiners" admitted mid-run — and Run replays that
// list against a model: publishes flow every round from live members,
// events mutate the network and the membership, maintenance ticks run in
// between, and a final quiescence phase (every fault lifted, stragglers
// joined, unacknowledged publishes re-offered) measures how many rounds
// the model needs to answer in full again.
//
// The oracle a conformance law or experiment applies on top is generic:
//
//   - eventual recall: after quiescence plus convergence rounds, lookups
//     over every acknowledged publish succeed (recall ≥ 0.99 — the same
//     bar the scripted churn laws use);
//   - everything charged: all recovery traffic — join handoffs included —
//     appears in the network's byte accounting;
//   - determinism: the same seed replays to a byte-identical Outcome, so
//     a failing schedule is a reproducible artifact, not an anecdote.
//
// Schedule.String prints the event list in replayable form; a law that
// fails embeds it in the failure message so the exact interleaving can
// be re-run and debugged.
//
// Membership convention: models implementing arch.Joiner admit joiners
// through Join (charged handoff); for every other model a joiner is a
// member that was down from round zero — netsim.Fail at start, Heal at
// its join event — the "not yet joined" convention the conformance
// suite's churn scenario already uses. Departures mirror it: models
// implementing arch.Leaver retire OpLeave targets through Leave (charged
// pre-exit key handoff to the successor); for everyone else the site
// goes dark at the leave event and heals at quiescence, so the oracle's
// recall bar still applies.
package schedule

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"time"

	"pass/internal/arch"
	"pass/internal/netsim"
	"pass/internal/provenance"
	"pass/internal/ratelimit"
	"pass/internal/xrand"
)

// Op is one membership-schedule event kind.
type Op int

// The event kinds a schedule interleaves.
const (
	// OpCrash fails a member site mid-run.
	OpCrash Op = iota
	// OpHeal recovers a crashed member.
	OpHeal
	// OpJoin admits the next cold joiner (arch.Joiner models pay a key
	// handoff; others heal the never-up site).
	OpJoin
	// OpPartition splits the population in two at Cut.
	OpPartition
	// OpHealPartition reconnects the cells.
	OpHealPartition
	// OpLossBurst sets a global packet-loss rate.
	OpLossBurst
	// OpLossEnd clears it.
	OpLossEnd
	// OpLeave retires a founding member voluntarily (arch.Leaver models
	// hand the member's keys to a successor pre-exit; for everyone else
	// the site simply goes dark until quiescence heals it — the departure
	// analogue of OpJoin's two conventions). A left member never crashes,
	// heals, or publishes again.
	OpLeave
)

// String names the op the way Schedule.String prints it.
func (o Op) String() string {
	switch o {
	case OpCrash:
		return "crash"
	case OpHeal:
		return "heal"
	case OpJoin:
		return "join"
	case OpPartition:
		return "partition"
	case OpHealPartition:
		return "heal-partition"
	case OpLossBurst:
		return "loss-burst"
	case OpLossEnd:
		return "loss-end"
	case OpLeave:
		return "leave"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Event is one schedule entry, applied at the start of its round.
type Event struct {
	// Round the event fires in, 0-based, ascending.
	Round int
	// Op is the event kind.
	Op Op
	// Site indexes the schedule's site slice (crash/heal/join).
	Site int
	// Cut is the partition split point: sites[:Cut] vs sites[Cut:].
	Cut int
	// Rate is the loss-burst drop probability.
	Rate float64
}

// Config sizes a generated schedule.
type Config struct {
	// Sites is the total population, joiners included. Must be a
	// multiple of SitesPerZone (the topology builder creates whole
	// zones); Run validates.
	Sites int
	// SitesPerZone shapes the topology (netsim.RandomTopology).
	SitesPerZone int
	// Joiners is how many sites start cold and join mid-run.
	Joiners int
	// Rounds is how many event/publish/tick rounds the schedule spans.
	Rounds int
	// EventRate is the expected membership/fault events per round.
	EventRate float64
	// PubsPerRound is the publish workload per round.
	PubsPerRound int
	// Reoffer is how many EXTRA times each acknowledged publish is
	// re-offered in its round — an at-least-once ingest pipeline that
	// keeps re-sending what the service already took. Zero (the default)
	// offers once. Re-offers are not counted in Offered and never change
	// recall; they exist to load the dissemination layer with the
	// duplicate traffic real pipelines produce (the E17 gossip-efficiency
	// columns).
	Reoffer int
}

// Schedule is one generated event list, replayable from its seed.
type Schedule struct {
	Seed   uint64
	Cfg    Config
	Events []Event
}

// anchors is how many leading sites the generator never crashes: the
// service anchors (central's warehouse, softstate's index nodes) whose
// loss is total outage, not churn — the same convention E16 uses so
// recall measures data reachability rather than index availability.
const anchors = 2

// Generate derives a deterministic schedule from the seed. Joins are
// spread across the run (every joiner is admitted before the final
// round); crash/heal/leave/partition/loss events are drawn at EventRate
// with bounded concurrency (at most a quarter of the members down at
// once, at most an eighth departed voluntarily, one partition and one
// loss burst at a time, both always closed before the schedule ends).
// Leaves target founding members only — never anchors, joiners, or sites
// currently crashed or already departed — and a departed site is never
// crashed or healed afterwards.
func Generate(seed uint64, cfg Config) *Schedule {
	rng := xrand.New(seed)
	s := &Schedule{Seed: seed, Cfg: cfg}
	members := cfg.Sites - cfg.Joiners

	crashed := map[int]bool{}
	left := map[int]bool{}
	partitioned := false
	lossy := false
	nextJoiner := 0

	// Joiner j is admitted at a fixed stride through the run so every
	// join lands before quiescence and the joins interleave with faults.
	joinRound := func(j int) int {
		return (j + 1) * (cfg.Rounds - 1) / (cfg.Joiners + 1)
	}

	for round := 0; round < cfg.Rounds; round++ {
		for nextJoiner < cfg.Joiners && joinRound(nextJoiner) == round {
			s.Events = append(s.Events, Event{Round: round, Op: OpJoin, Site: members + nextJoiner})
			nextJoiner++
		}
		// Loss bursts and partitions are closed two rounds before the end
		// so the tail of the schedule exercises recovery, not fresh damage.
		closing := round >= cfg.Rounds-2
		n := 0
		for rng.Float64() < cfg.EventRate && n < 3 {
			n++
			switch pick := rng.Intn(7); {
			case pick == 0 && len(crashed) < members/4:
				victim := anchors + rng.Intn(members-anchors)
				if crashed[victim] || left[victim] {
					continue
				}
				crashed[victim] = true
				s.Events = append(s.Events, Event{Round: round, Op: OpCrash, Site: victim})
			case pick == 1 && len(crashed) > 0:
				// Deterministic pick: lowest crashed index.
				victim := -1
				for i := 0; i < members; i++ {
					if crashed[i] {
						victim = i
						break
					}
				}
				delete(crashed, victim)
				s.Events = append(s.Events, Event{Round: round, Op: OpHeal, Site: victim})
			case pick == 6 && len(left) < members/8 && !closing:
				leaver := anchors + rng.Intn(members-anchors)
				if crashed[leaver] || left[leaver] {
					continue
				}
				left[leaver] = true
				s.Events = append(s.Events, Event{Round: round, Op: OpLeave, Site: leaver})
			case pick == 2 && !partitioned && !closing:
				cut := cfg.Sites/4 + rng.Intn(cfg.Sites/2)
				partitioned = true
				s.Events = append(s.Events, Event{Round: round, Op: OpPartition, Cut: cut})
			case pick == 3 && partitioned:
				partitioned = false
				s.Events = append(s.Events, Event{Round: round, Op: OpHealPartition})
			case pick == 4 && !lossy && !closing:
				lossy = true
				rate := 0.05 + 0.2*rng.Float64()
				s.Events = append(s.Events, Event{Round: round, Op: OpLossBurst, Rate: rate})
			case pick == 5 && lossy:
				lossy = false
				s.Events = append(s.Events, Event{Round: round, Op: OpLossEnd})
			}
		}
		if closing {
			if partitioned {
				partitioned = false
				s.Events = append(s.Events, Event{Round: round, Op: OpHealPartition})
			}
			if lossy {
				lossy = false
				s.Events = append(s.Events, Event{Round: round, Op: OpLossEnd})
			}
		}
	}
	return s
}

// SoakOptions shapes GenerateSoak's fault stream. The zero value selects
// the defaults noted per field.
type SoakOptions struct {
	// CrashEvery starts a crash wave every this many rounds (default 6).
	CrashEvery int
	// DownFor is how many rounds each victim stays down before its
	// scheduled heal (default 3). The soak gate's consecutive-round
	// streak budget derives from this bound.
	DownFor int
	// Victims is how many members each wave takes down (default 1).
	Victims int
	// LossEvery opens a packet-loss burst every this many rounds; 0 (the
	// default) disables bursts.
	LossEvery int
	// LossFor is how many rounds a burst lasts (default 2).
	LossFor int
	// LossRate is the burst drop probability (default 0.1, capped at 0.2
	// so retry chains still converge).
	LossRate float64
}

// withDefaults fills zero fields with the documented defaults.
func (o SoakOptions) withDefaults() SoakOptions {
	if o.CrashEvery <= 0 {
		o.CrashEvery = 6
	}
	if o.DownFor <= 0 {
		o.DownFor = 3
	}
	if o.Victims <= 0 {
		o.Victims = 1
	}
	if o.LossFor <= 0 {
		o.LossFor = 2
	}
	if o.LossRate <= 0 {
		o.LossRate = 0.1
	}
	if o.LossRate > 0.2 {
		o.LossRate = 0.2
	}
	return o
}

// GenerateSoak derives a deterministic soak schedule: periodic crash
// waves whose victims ALWAYS heal exactly DownFor rounds later, plus
// optional bounded loss bursts — damage with a known repair deadline,
// unlike Generate's open-ended churn. That bound is what makes a
// time-windowed gate meaningful: a healthy model's recall dip after a
// wave cannot outlive DownFor plus its own recovery lag, so "recall below
// threshold for more than K consecutive rounds" is a correctness signal,
// not noise. Victims are never anchors, never already-down sites; waves
// that would straddle the schedule's tail are skipped so the run ends
// healed. Soak schedules draw no joins, leaves, or partitions; use
// Generate for full-lifecycle churn.
func GenerateSoak(seed uint64, cfg Config, opt SoakOptions) *Schedule {
	opt = opt.withDefaults()
	rng := xrand.New(seed)
	s := &Schedule{Seed: seed, Cfg: cfg}
	members := cfg.Sites - cfg.Joiners

	healAt := map[int]int{} // victim index -> round its scheduled heal fires
	lossyUntil := -1
	for round := 0; round < cfg.Rounds; round++ {
		for v, h := range healAt {
			if h <= round {
				delete(healAt, v)
			}
		}
		if round%opt.CrashEvery == 0 && round+opt.DownFor <= cfg.Rounds-2 {
			for v := 0; v < opt.Victims; v++ {
				victim := anchors + rng.Intn(members-anchors)
				if _, dup := healAt[victim]; dup {
					continue
				}
				healAt[victim] = round + opt.DownFor
				s.Events = append(s.Events,
					Event{Round: round, Op: OpCrash, Site: victim},
					Event{Round: round + opt.DownFor, Op: OpHeal, Site: victim})
			}
		}
		if opt.LossEvery > 0 && round >= lossyUntil && round%opt.LossEvery == opt.LossEvery-1 &&
			round+opt.LossFor <= cfg.Rounds-2 {
			lossyUntil = round + opt.LossFor
			s.Events = append(s.Events,
				Event{Round: round, Op: OpLossBurst, Rate: opt.LossRate},
				Event{Round: lossyUntil, Op: OpLossEnd})
		}
	}
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].Round < s.Events[j].Round })
	return s
}

// String renders the schedule as a replayable event list — what a
// failing conformance run prints so the interleaving can be re-run.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule seed=%d sites=%d joiners=%d rounds=%d events=%d\n",
		s.Seed, s.Cfg.Sites, s.Cfg.Joiners, s.Cfg.Rounds, len(s.Events))
	for _, e := range s.Events {
		switch e.Op {
		case OpCrash, OpHeal, OpJoin, OpLeave:
			fmt.Fprintf(&b, "  round %2d: %-14s site %d\n", e.Round, e.Op, e.Site)
		case OpPartition:
			fmt.Fprintf(&b, "  round %2d: %-14s cut %d\n", e.Round, e.Op, e.Cut)
		case OpLossBurst:
			fmt.Fprintf(&b, "  round %2d: %-14s rate %.2f\n", e.Round, e.Op, e.Rate)
		default:
			fmt.Fprintf(&b, "  round %2d: %s\n", e.Round, e.Op)
		}
	}
	return b.String()
}

// Outcome is one replay's measurable result. Two same-seed replays of
// the same model must produce identical Outcomes — the determinism half
// of the oracle.
type Outcome struct {
	// Offered / Acked count the publish workload and how much of it the
	// model acknowledged (quiescence re-offers included).
	Offered, Acked int
	// Joins is how many joiners were actually admitted.
	Joins int
	// Recall is the final lookup recall over acknowledged publishes,
	// averaged across the queriers.
	Recall float64
	// ConvRounds is how many post-quiescence maintenance rounds ran
	// before recall reached 1 (capped; Recall tells whether it got there).
	ConvRounds int
	// HandoffBytes is the wire cost of join admissions (zero for models
	// whose joiners enter by healing).
	HandoffBytes int64
	// Leaves is how many voluntary departures completed; LeaveBytes is
	// what arch.Leaver models' pre-exit key handoffs cost on the wire
	// (zero for models whose leavers simply go dark).
	Leaves     int
	LeaveBytes int64
	// Shed counts publishes the model's admission controller refused
	// (ratelimit errors); zero for models without one installed. Shed
	// publishes are not acknowledged and leave the recall denominator.
	Shed int
	// GossipBytes / DupSuppressed / PullRounds mirror the model's
	// arch.GossipMeter accounting at the end of the replay (all zero for
	// models without a metered dissemination layer) — the E17 gossip
	// efficiency columns.
	GossipBytes   int64
	DupSuppressed int64
	PullRounds    int64
	// Stats is the network's final accounting snapshot.
	Stats netsim.Stats
}

// validate rejects configs the generator or runner would misexecute —
// better an explicit error than a truncated topology whose join events
// index past the site slice.
func (c Config) validate() error {
	switch {
	case c.SitesPerZone < 1 || c.Sites < 1 || c.Sites%c.SitesPerZone != 0:
		return fmt.Errorf("schedule: Sites (%d) must be a positive multiple of SitesPerZone (%d)", c.Sites, c.SitesPerZone)
	case c.Joiners < 0 || c.Sites-c.Joiners <= anchors:
		return fmt.Errorf("schedule: %d joiners leave no crashable members among %d sites (%d anchors)", c.Joiners, c.Sites, anchors)
	case c.Rounds < 2:
		return fmt.Errorf("schedule: %d rounds leave no room for joins before quiescence", c.Rounds)
	case c.PubsPerRound < 1:
		return fmt.Errorf("schedule: PubsPerRound must be positive, got %d", c.PubsPerRound)
	case c.Reoffer < 0:
		return fmt.Errorf("schedule: Reoffer must be non-negative, got %d", c.Reoffer)
	}
	return nil
}

// RoundStats is the per-round reading RunObserved hands its Observer
// after the round's events, workload, and maintenance tick: cumulative
// workload and network accounting plus a live recall probe.
type RoundStats struct {
	// Round is 0-based; quiescence convergence rounds continue the
	// numbering past Cfg.Rounds.
	Round int
	// Offered / Acked are cumulative workload counts so far.
	Offered, Acked int
	// Live is how many sites are currently up (netsim.UpCount).
	Live int
	// Bytes / Msgs are the network's cumulative accounting totals.
	Bytes, Msgs int64
	// Recall is a live probe: the mean fraction of acknowledged
	// publishes resolvable right now from two live member queriers.
	// Probe lookups travel the simulated network, so observed runs
	// charge slightly more bytes than unobserved ones — deterministically.
	Recall float64
	// Shed is the cumulative admission-refusal count (Outcome.Shed so
	// far).
	Shed int
	// PubLatencies holds this round's acknowledged-publish latencies
	// (admission queueing included), in offer order — the feed for the
	// observer's pass_latency_publish series. The slice is handed to the
	// observer; it is not reused across rounds.
	PubLatencies []time.Duration
}

// Observer receives the runner's per-round telemetry. OnEvent fires for
// every schedule event as it is applied; OnRound fires at the end of each
// round (and each quiescence convergence round). Implementations must not
// mutate the network or the model.
type Observer interface {
	OnEvent(round int, e Event)
	OnRound(st RoundStats)
}

// maxConvRounds bounds the quiescence convergence loop.
const maxConvRounds = 12

// offerRetries bounds per-publish re-offers mid-run; quiescence re-offers
// get a slightly larger budget (the heal is supposed to stick).
const (
	offerRetries = 4
	healRetries  = 6
)

// Run replays the schedule against one model instance built by build.
// The topology is seeded from the schedule, so the whole replay is a
// pure function of (schedule, build). Non-fault errors abort the replay:
// by the arch.Model fault contract anything that is not an injected
// unavailability is a model bug.
func Run(s *Schedule, build func(net *netsim.Network, sites []netsim.SiteID) arch.Model) (Outcome, error) {
	return RunObserved(s, build, nil)
}

// RunObserved is Run with a live telemetry tap: obs (may be nil) receives
// every applied event and an end-of-round RoundStats including a recall
// probe. A nil obs replays exactly like Run; a non-nil obs adds
// deterministic probe lookups (charged to the network like any traffic),
// so observed and unobserved replays of the same schedule agree on every
// Outcome field except byte/message accounting. Two observed replays of
// the same (schedule, build) are byte-identical to each other — the
// determinism oracle the soak law applies per round rather than at the
// endpoint.
func RunObserved(s *Schedule, build func(net *netsim.Network, sites []netsim.SiteID) arch.Model, obs Observer) (Outcome, error) {
	cfg := s.Cfg
	var out Outcome
	if err := cfg.validate(); err != nil {
		return out, err
	}

	// Capability probe on a scratch topology: Joiner models grow their
	// membership (and Leaver models shrink it); everyone else runs the
	// fail-at-start / dark-until-quiescence conventions.
	probeNet, probeSites := netsim.RandomTopology(netsim.Config{}, 2, 2, s.Seed+2)
	probeModel := build(probeNet, probeSites)
	_, joiner := probeModel.(arch.Joiner)
	_, leaver := probeModel.(arch.Leaver)

	net, sites := netsim.RandomTopology(netsim.Config{Seed: s.Seed}, cfg.Sites/cfg.SitesPerZone, cfg.SitesPerZone, s.Seed+1)
	members := sites[:cfg.Sites-cfg.Joiners]
	var m arch.Model
	if joiner {
		m = build(net, members)
	} else {
		m = build(net, sites)
		for _, j := range sites[len(members):] {
			net.Fail(j) // not yet joined
		}
	}

	acked := make(map[provenance.ID]bool)
	var unacked []arch.Pub
	seq := 0
	var roundLat []time.Duration
	offer := func(p arch.Pub, attempts int) (bool, error) {
		for a := 0; a < attempts; a++ {
			d, err := m.Publish(p)
			if err == nil {
				roundLat = append(roundLat, d)
				return true, nil
			}
			if ratelimit.Shed(err) {
				// An admission refusal is load shedding, not a fault:
				// retrying within the round cannot help (buckets refill
				// and queues drain on Tick), so the publish stays
				// unacknowledged.
				out.Shed++
				return false, nil
			}
			if !arch.IsUnavailable(err) {
				return false, fmt.Errorf("%s publish: %w", m.Name(), err)
			}
		}
		return false, nil
	}

	// pendingJoins holds join events that could not complete this round
	// (the joiner or every possible contact was unreachable); they retry
	// at each following round and at quiescence.
	var pendingJoins []netsim.SiteID
	admit := func(site netsim.SiteID) (bool, error) {
		if !joiner {
			net.Heal(site)
			return true, nil
		}
		for _, via := range members {
			if via == site || net.IsDown(via) || net.Partitioned(site, via) {
				continue
			}
			b0 := net.Stats().Bytes
			_, err := m.(arch.Joiner).Join(site, via)
			if err == nil {
				out.HandoffBytes += net.Stats().Bytes - b0
				return true, nil
			}
			if !arch.IsUnavailable(err) {
				return false, fmt.Errorf("%s join of %d: %w", m.Name(), site, err)
			}
			break // retry on a later round rather than hammering every contact
		}
		return false, nil
	}
	retryJoins := func() error {
		live := pendingJoins[:0]
		for _, site := range pendingJoins {
			ok, err := admit(site)
			if err != nil {
				return err
			}
			if ok {
				out.Joins++
			} else {
				live = append(live, site)
			}
		}
		pendingJoins = live
		return nil
	}

	// leftIdx marks member indices retired by OpLeave: excluded from the
	// publish workload from their leave round on. pendingLeaves holds
	// departures an arch.Leaver model could not coordinate this round
	// (successor unreachable); they retry each round and at quiescence.
	leftIdx := map[int]bool{}
	var pendingLeaves []int
	depart := func(idx int) (bool, error) {
		if !leaver {
			net.Fail(sites[idx]) // dark until quiescence heals it
			return true, nil
		}
		b0 := net.Stats().Bytes
		_, err := m.(arch.Leaver).Leave(sites[idx])
		if err == nil {
			out.LeaveBytes += net.Stats().Bytes - b0
			return true, nil
		}
		if !arch.IsUnavailable(err) {
			return false, fmt.Errorf("%s leave of %d: %w", m.Name(), sites[idx], err)
		}
		return false, nil
	}
	retryLeaves := func() error {
		live := pendingLeaves[:0]
		for _, idx := range pendingLeaves {
			ok, err := depart(idx)
			if err != nil {
				return err
			}
			if ok {
				out.Leaves++
			} else {
				live = append(live, idx)
			}
		}
		pendingLeaves = live
		return nil
	}

	evIdx := 0
	for round := 0; round < cfg.Rounds; round++ {
		if err := retryJoins(); err != nil {
			return out, err
		}
		if err := retryLeaves(); err != nil {
			return out, err
		}
		for evIdx < len(s.Events) && s.Events[evIdx].Round == round {
			e := s.Events[evIdx]
			evIdx++
			switch e.Op {
			case OpCrash:
				net.Fail(sites[e.Site])
			case OpHeal:
				net.Heal(sites[e.Site])
			case OpJoin:
				ok, err := admit(sites[e.Site])
				if err != nil {
					return out, err
				}
				if ok {
					out.Joins++
				} else {
					pendingJoins = append(pendingJoins, sites[e.Site])
				}
			case OpPartition:
				net.Partition(sites[:e.Cut], sites[e.Cut:])
			case OpHealPartition:
				net.HealPartition()
			case OpLossBurst:
				net.SetLossRate(e.Rate)
			case OpLossEnd:
				net.SetLossRate(0)
			case OpLeave:
				leftIdx[e.Site] = true
				ok, err := depart(e.Site)
				if err != nil {
					return out, err
				}
				if ok {
					out.Leaves++
				} else {
					pendingLeaves = append(pendingLeaves, e.Site)
				}
			}
			if obs != nil {
				obs.OnEvent(round, e)
			}
		}

		// The round's workload: live, still-member sites publish.
		for i := 0; i < cfg.PubsPerRound; i++ {
			idx := (seq * 7) % len(members)
			for net.IsDown(members[idx]) || leftIdx[idx] {
				idx = (idx + 1) % len(members)
			}
			p, err := pubN(net, members[idx], seq)
			if err != nil {
				return out, err
			}
			seq++
			out.Offered++
			ok, err := offer(p, offerRetries)
			if err != nil {
				return out, err
			}
			if ok {
				acked[p.ID] = true
				// The at-least-once pipeline re-sends what was just taken;
				// a re-offer that finds the site unavailable is dropped.
				for k := 0; k < cfg.Reoffer; k++ {
					if _, err := offer(p, 1); err != nil {
						return out, err
					}
				}
			} else {
				unacked = append(unacked, p)
			}
		}
		if err := m.Tick(); err != nil {
			return out, fmt.Errorf("%s tick (round %d): %w", m.Name(), round, err)
		}
		if obs != nil {
			obs.OnRound(roundStats(round, net, members, leftIdx, &out, acked, m, roundLat))
			roundLat = nil
		}
	}

	// Quiescence: every fault lifted, stragglers admitted, unacknowledged
	// work re-offered — then count maintenance rounds to full recall.
	net.HealPartition()
	net.SetLossRate(0)
	for _, site := range sites {
		net.Heal(site)
	}
	if err := retryJoins(); err != nil {
		return out, err
	}
	if err := retryLeaves(); err != nil {
		return out, err
	}
	for _, p := range unacked {
		ok, err := offer(p, healRetries)
		if err != nil {
			return out, err
		}
		if ok {
			acked[p.ID] = true
		}
	}
	out.Acked = len(acked)

	queriers := []netsim.SiteID{members[0], members[len(members)/2]}
	if cfg.Joiners > 0 {
		queriers = append(queriers, sites[len(members)]) // a joined joiner
	}
	for ; out.ConvRounds < maxConvRounds; out.ConvRounds++ {
		if err := m.Tick(); err != nil {
			return out, fmt.Errorf("%s tick (quiescence): %w", m.Name(), err)
		}
		out.Recall = recall(m, queriers, acked)
		if obs != nil {
			st := net.Stats()
			obs.OnRound(RoundStats{
				Round: cfg.Rounds + out.ConvRounds, Offered: out.Offered, Acked: len(acked),
				Live: net.UpCount(), Bytes: st.Bytes, Msgs: st.Messages, Recall: out.Recall,
				Shed: out.Shed, PubLatencies: roundLat,
			})
			roundLat = nil
		}
		if out.Recall == 1 {
			out.ConvRounds++
			break
		}
	}
	if gm, ok := m.(arch.GossipMeter); ok {
		gs := gm.GossipStats()
		out.GossipBytes, out.DupSuppressed, out.PullRounds = gs.Bytes, gs.DupSuppressed, gs.PullRounds
	}
	out.Stats = net.Stats()
	return out, nil
}

// roundStats probes the live state for an Observer: network totals, up
// count, and a two-querier recall probe over everything acknowledged so
// far. Queriers are the first two live, non-departed members (anchors in
// practice — the generator never crashes them).
func roundStats(round int, net *netsim.Network, members []netsim.SiteID, leftIdx map[int]bool, out *Outcome, acked map[provenance.ID]bool, m arch.Model, lats []time.Duration) RoundStats {
	queriers := make([]netsim.SiteID, 0, 2)
	for i := 0; i < len(members) && len(queriers) < 2; i++ {
		if !net.IsDown(members[i]) && !leftIdx[i] {
			queriers = append(queriers, members[i])
		}
	}
	st := net.Stats()
	rs := RoundStats{
		Round: round, Offered: out.Offered, Acked: len(acked),
		Live: net.UpCount(), Bytes: st.Bytes, Msgs: st.Messages,
		Recall: 1, Shed: out.Shed, PubLatencies: lats,
	}
	if len(queriers) > 0 {
		rs.Recall = recall(m, queriers, acked)
	}
	return rs
}

// pubN builds the deterministic n-th workload record at origin, tagged
// with the membership domain plus the origin's zone.
func pubN(net *netsim.Network, origin netsim.SiteID, n int) (arch.Pub, error) {
	site, err := net.Site(origin)
	if err != nil {
		return arch.Pub{}, err
	}
	var digest [32]byte
	digest[0], digest[1], digest[2] = byte(n), byte(n>>8), 0xE7
	rec, id, err := provenance.NewRaw(digest, 64).
		Attrs(
			provenance.Attr("n", provenance.Int64(int64(n))),
			provenance.Attr(provenance.KeyDomain, provenance.String("membership")),
			provenance.Attr(provenance.KeyZone, provenance.String(site.Zone)),
		).
		CreatedAt(int64(n) + 1).
		Build()
	if err != nil {
		return arch.Pub{}, err
	}
	return arch.Pub{ID: id, Rec: rec, Origin: origin}, nil
}

// recall is the mean fraction of acknowledged publishes each querier can
// resolve by Lookup — the probe that touches every record's home, which
// is where membership change tears holes. Probes run in sorted ID order:
// under an active loss burst the network's drop draws are consumed per
// send, so map-order iteration would make the byte accounting (and
// marginally the recall itself) depend on Go's map seed instead of the
// schedule seed.
func recall(m arch.Model, queriers []netsim.SiteID, acked map[provenance.ID]bool) float64 {
	if len(acked) == 0 {
		return 1
	}
	ids := make([]provenance.ID, 0, len(acked))
	for id := range acked {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return bytes.Compare(ids[i][:], ids[j][:]) < 0 })
	total := 0.0
	for _, q := range queriers {
		hit := 0
		for _, id := range ids {
			if _, _, err := m.Lookup(q, id); err == nil {
				hit++
			}
		}
		total += float64(hit) / float64(len(ids))
	}
	return total / float64(len(queriers))
}
