package schedule

import (
	"strings"
	"testing"

	"pass/internal/arch"
	"pass/internal/arch/central"
	"pass/internal/arch/dht"
	"pass/internal/netsim"
)

var testCfg = Config{
	Sites:        16,
	SitesPerZone: 4,
	Joiners:      2,
	Rounds:       8,
	EventRate:    0.6,
	PubsPerRound: 4,
}

func TestGenerateDeterministicAndSeedSensitive(t *testing.T) {
	a, b := Generate(42, testCfg), Generate(42, testCfg)
	if len(a.Events) != len(b.Events) {
		t.Fatalf("same seed produced %d vs %d events", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d diverged across identical seeds: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
	c := Generate(43, testCfg)
	if a.String() == c.String() {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestGenerateWellFormed: the generator's structural invariants — every
// joiner admitted exactly once before the final round, anchors and
// joiners never crashed, heals only of crashed sites, partitions and
// loss bursts opened at most singly and always closed by the end, and
// leaves only of live founding members that never departed before — with
// a departed site never crashed, healed, or left again afterwards.
func TestGenerateWellFormed(t *testing.T) {
	members := testCfg.Sites - testCfg.Joiners
	sawLeave := false
	for seed := uint64(1); seed <= 50; seed++ {
		s := Generate(seed, testCfg)
		joined := map[int]int{}
		crashed := map[int]bool{}
		left := map[int]bool{}
		partitioned, lossy := false, false
		lastRound := -1
		for _, e := range s.Events {
			if e.Round < lastRound || e.Round >= testCfg.Rounds {
				t.Fatalf("seed %d: event rounds out of order or range: %+v", seed, e)
			}
			lastRound = e.Round
			switch e.Op {
			case OpJoin:
				joined[e.Site]++
				if e.Site < members {
					t.Fatalf("seed %d: join of a founding member %d", seed, e.Site)
				}
				if e.Round >= testCfg.Rounds-1 {
					t.Fatalf("seed %d: join in the final round leaves no time to converge", seed)
				}
			case OpCrash:
				if e.Site < anchors || e.Site >= members {
					t.Fatalf("seed %d: crash of anchor or joiner %d", seed, e.Site)
				}
				if crashed[e.Site] {
					t.Fatalf("seed %d: double crash of %d", seed, e.Site)
				}
				if left[e.Site] {
					t.Fatalf("seed %d: crash of departed member %d", seed, e.Site)
				}
				crashed[e.Site] = true
			case OpHeal:
				if !crashed[e.Site] {
					t.Fatalf("seed %d: heal of a live site %d", seed, e.Site)
				}
				delete(crashed, e.Site)
			case OpLeave:
				sawLeave = true
				if e.Site < anchors || e.Site >= members {
					t.Fatalf("seed %d: leave of anchor or joiner %d — only founding members depart", seed, e.Site)
				}
				if crashed[e.Site] {
					t.Fatalf("seed %d: leave of crashed member %d", seed, e.Site)
				}
				if left[e.Site] {
					t.Fatalf("seed %d: double leave of %d", seed, e.Site)
				}
				left[e.Site] = true
			case OpPartition:
				if partitioned {
					t.Fatalf("seed %d: nested partition", seed)
				}
				if e.Cut < testCfg.Sites/4 || e.Cut >= testCfg.Sites {
					t.Fatalf("seed %d: degenerate cut %d", seed, e.Cut)
				}
				partitioned = true
			case OpHealPartition:
				partitioned = false
			case OpLossBurst:
				if lossy {
					t.Fatalf("seed %d: nested loss burst", seed)
				}
				if e.Rate <= 0 || e.Rate >= 0.3 {
					t.Fatalf("seed %d: loss rate %v out of range", seed, e.Rate)
				}
				lossy = true
			case OpLossEnd:
				lossy = false
			}
		}
		if partitioned || lossy {
			t.Fatalf("seed %d: schedule ends with an open partition/loss burst", seed)
		}
		for j := 0; j < testCfg.Joiners; j++ {
			if joined[members+j] != 1 {
				t.Fatalf("seed %d: joiner %d admitted %d times", seed, members+j, joined[members+j])
			}
		}
		if len(left) > (members)/8 {
			t.Fatalf("seed %d: %d departures exceed the members/8 budget", seed, len(left))
		}
	}
	if !sawLeave {
		t.Fatal("no seed in 1..50 generated a leave — the verb is unreachable")
	}
}

// TestRunLeaveConventions: a schedule with a leave runs under both
// departure conventions — dht retires the member through Leave (charged
// pre-exit handoff, membership shrinks for good), central sends it dark
// until quiescence — and both still meet the oracle, byte-identically on
// replay.
func TestRunLeaveConventions(t *testing.T) {
	var s *Schedule
	for seed := uint64(1); seed <= 50; seed++ {
		c := Generate(seed, testCfg)
		for _, e := range c.Events {
			if e.Op == OpLeave {
				s = c
				break
			}
		}
		if s != nil {
			break
		}
	}
	if s == nil {
		t.Fatal("no schedule with a leave in seeds 1..50")
	}
	nLeaves := 0
	for _, e := range s.Events {
		if e.Op == OpLeave {
			nLeaves++
		}
	}

	builds := map[string]func(net *netsim.Network, sites []netsim.SiteID) arch.Model{
		"dht":     func(net *netsim.Network, sites []netsim.SiteID) arch.Model { return dht.New(net, sites) },
		"central": func(net *netsim.Network, sites []netsim.SiteID) arch.Model { return central.New(net, sites[0]) },
	}
	for _, name := range []string{"dht", "central"} {
		o, err := Run(s, builds[name])
		if err != nil {
			t.Fatalf("%s: %v\nreplay:\n%s", name, err, s)
		}
		if o.Leaves != nLeaves {
			t.Fatalf("%s: %d/%d departures completed\nreplay:\n%s", name, o.Leaves, nLeaves, s)
		}
		if o.Recall < 0.99 {
			t.Fatalf("%s: recall %.3f after leaves, want >= 0.99\nreplay:\n%s", name, o.Recall, s)
		}
		if name == "dht" && o.LeaveBytes == 0 {
			t.Fatal("dht leaves charged no bytes — the pre-exit handoff was free")
		}
		if name == "central" && o.LeaveBytes != 0 {
			t.Fatal("dark-convention leavers charged leave bytes")
		}
		o2, err := Run(s, builds[name])
		if err != nil {
			t.Fatalf("%s replay: %v", name, err)
		}
		if o != o2 {
			t.Fatalf("%s: same-seed replay with leaves diverged:\n%+v\nvs\n%+v", name, o, o2)
		}
	}
}

// TestRunRejectsMalformedConfig: a population that does not fill whole
// zones (or starves the generator of crashable members) is an explicit
// error, not a truncated topology that panics at the first join event.
func TestRunRejectsMalformedConfig(t *testing.T) {
	build := func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
		return central.New(net, sites[0])
	}
	bad := []Config{
		{Sites: 18, SitesPerZone: 4, Joiners: 2, Rounds: 8, EventRate: 0.5, PubsPerRound: 4},  // partial zone
		{Sites: 16, SitesPerZone: 4, Joiners: 14, Rounds: 8, EventRate: 0.5, PubsPerRound: 4}, // no crashable members
		{Sites: 16, SitesPerZone: 4, Joiners: 2, Rounds: 1, EventRate: 0.5, PubsPerRound: 4},  // no room for joins
		{Sites: 16, SitesPerZone: 4, Joiners: 2, Rounds: 8, EventRate: 0.5, PubsPerRound: 0},  // no workload
	}
	for i, cfg := range bad {
		s := &Schedule{Seed: 1, Cfg: cfg}
		if _, err := Run(s, build); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestScheduleStringReplayable(t *testing.T) {
	s := Generate(7, testCfg)
	out := s.String()
	for _, want := range []string{"seed=7", "join", "round"} {
		if !strings.Contains(out, want) {
			t.Fatalf("schedule listing missing %q:\n%s", want, out)
		}
	}
}

// TestRunOracleAndDeterminism: the runner holds its oracle against both
// membership conventions — dht grows its ring through Join (handoff
// bytes charged), central runs the fail-at-start convention — and a
// same-seed replay is byte-identical.
func TestRunOracleAndDeterminism(t *testing.T) {
	builds := map[string]func(net *netsim.Network, sites []netsim.SiteID) arch.Model{
		"dht": func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return dht.New(net, sites)
		},
		"central": func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return central.New(net, sites[0])
		},
	}
	for _, name := range []string{"dht", "central"} {
		build := builds[name]
		s := Generate(99, testCfg)
		o, err := Run(s, build)
		if err != nil {
			t.Fatalf("%s: %v\nreplay:\n%s", name, err, s)
		}
		if o.Recall < 0.99 {
			t.Fatalf("%s: recall %.3f, want >= 0.99\nreplay:\n%s", name, o.Recall, s)
		}
		if o.Joins != testCfg.Joiners {
			t.Fatalf("%s: %d/%d joiners admitted", name, o.Joins, testCfg.Joiners)
		}
		if o.Offered != testCfg.Rounds*testCfg.PubsPerRound {
			t.Fatalf("%s: offered %d publishes, want %d", name, o.Offered, testCfg.Rounds*testCfg.PubsPerRound)
		}
		if o.Stats.Bytes == 0 || o.Stats.Messages == 0 {
			t.Fatalf("%s: no traffic accounted", name)
		}
		if name == "dht" && o.HandoffBytes == 0 {
			t.Fatal("dht joins charged no handoff bytes")
		}
		if name == "central" && o.HandoffBytes != 0 {
			t.Fatal("heal-convention joiners charged handoff bytes")
		}
		o2, err := Run(s, build)
		if err != nil {
			t.Fatalf("%s replay: %v", name, err)
		}
		if o != o2 {
			t.Fatalf("%s: same-seed replay diverged:\n%+v\nvs\n%+v", name, o, o2)
		}
	}
}
