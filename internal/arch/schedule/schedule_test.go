package schedule

import (
	"strings"
	"testing"

	"pass/internal/arch"
	"pass/internal/arch/central"
	"pass/internal/arch/dht"
	"pass/internal/netsim"
)

var testCfg = Config{
	Sites:        16,
	SitesPerZone: 4,
	Joiners:      2,
	Rounds:       8,
	EventRate:    0.6,
	PubsPerRound: 4,
}

func TestGenerateDeterministicAndSeedSensitive(t *testing.T) {
	a, b := Generate(42, testCfg), Generate(42, testCfg)
	if len(a.Events) != len(b.Events) {
		t.Fatalf("same seed produced %d vs %d events", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d diverged across identical seeds: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
	c := Generate(43, testCfg)
	if a.String() == c.String() {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestGenerateWellFormed: the generator's structural invariants — every
// joiner admitted exactly once before the final round, anchors and
// joiners never crashed, heals only of crashed sites, partitions and
// loss bursts opened at most singly and always closed by the end, and
// leaves only of live founding members that never departed before — with
// a departed site never crashed, healed, or left again afterwards.
func TestGenerateWellFormed(t *testing.T) {
	members := testCfg.Sites - testCfg.Joiners
	sawLeave := false
	for seed := uint64(1); seed <= 50; seed++ {
		s := Generate(seed, testCfg)
		joined := map[int]int{}
		crashed := map[int]bool{}
		left := map[int]bool{}
		partitioned, lossy := false, false
		lastRound := -1
		for _, e := range s.Events {
			if e.Round < lastRound || e.Round >= testCfg.Rounds {
				t.Fatalf("seed %d: event rounds out of order or range: %+v", seed, e)
			}
			lastRound = e.Round
			switch e.Op {
			case OpJoin:
				joined[e.Site]++
				if e.Site < members {
					t.Fatalf("seed %d: join of a founding member %d", seed, e.Site)
				}
				if e.Round >= testCfg.Rounds-1 {
					t.Fatalf("seed %d: join in the final round leaves no time to converge", seed)
				}
			case OpCrash:
				if e.Site < anchors || e.Site >= members {
					t.Fatalf("seed %d: crash of anchor or joiner %d", seed, e.Site)
				}
				if crashed[e.Site] {
					t.Fatalf("seed %d: double crash of %d", seed, e.Site)
				}
				if left[e.Site] {
					t.Fatalf("seed %d: crash of departed member %d", seed, e.Site)
				}
				crashed[e.Site] = true
			case OpHeal:
				if !crashed[e.Site] {
					t.Fatalf("seed %d: heal of a live site %d", seed, e.Site)
				}
				delete(crashed, e.Site)
			case OpLeave:
				sawLeave = true
				if e.Site < anchors || e.Site >= members {
					t.Fatalf("seed %d: leave of anchor or joiner %d — only founding members depart", seed, e.Site)
				}
				if crashed[e.Site] {
					t.Fatalf("seed %d: leave of crashed member %d", seed, e.Site)
				}
				if left[e.Site] {
					t.Fatalf("seed %d: double leave of %d", seed, e.Site)
				}
				left[e.Site] = true
			case OpPartition:
				if partitioned {
					t.Fatalf("seed %d: nested partition", seed)
				}
				if e.Cut < testCfg.Sites/4 || e.Cut >= testCfg.Sites {
					t.Fatalf("seed %d: degenerate cut %d", seed, e.Cut)
				}
				partitioned = true
			case OpHealPartition:
				partitioned = false
			case OpLossBurst:
				if lossy {
					t.Fatalf("seed %d: nested loss burst", seed)
				}
				if e.Rate <= 0 || e.Rate >= 0.3 {
					t.Fatalf("seed %d: loss rate %v out of range", seed, e.Rate)
				}
				lossy = true
			case OpLossEnd:
				lossy = false
			}
		}
		if partitioned || lossy {
			t.Fatalf("seed %d: schedule ends with an open partition/loss burst", seed)
		}
		for j := 0; j < testCfg.Joiners; j++ {
			if joined[members+j] != 1 {
				t.Fatalf("seed %d: joiner %d admitted %d times", seed, members+j, joined[members+j])
			}
		}
		if len(left) > (members)/8 {
			t.Fatalf("seed %d: %d departures exceed the members/8 budget", seed, len(left))
		}
	}
	if !sawLeave {
		t.Fatal("no seed in 1..50 generated a leave — the verb is unreachable")
	}
}

// TestRunLeaveConventions: a schedule with a leave runs under both
// departure conventions — dht retires the member through Leave (charged
// pre-exit handoff, membership shrinks for good), central sends it dark
// until quiescence — and both still meet the oracle, byte-identically on
// replay.
func TestRunLeaveConventions(t *testing.T) {
	var s *Schedule
	for seed := uint64(1); seed <= 50; seed++ {
		c := Generate(seed, testCfg)
		for _, e := range c.Events {
			if e.Op == OpLeave {
				s = c
				break
			}
		}
		if s != nil {
			break
		}
	}
	if s == nil {
		t.Fatal("no schedule with a leave in seeds 1..50")
	}
	nLeaves := 0
	for _, e := range s.Events {
		if e.Op == OpLeave {
			nLeaves++
		}
	}

	builds := map[string]func(net *netsim.Network, sites []netsim.SiteID) arch.Model{
		"dht":     func(net *netsim.Network, sites []netsim.SiteID) arch.Model { return dht.New(net, sites) },
		"central": func(net *netsim.Network, sites []netsim.SiteID) arch.Model { return central.New(net, sites[0]) },
	}
	for _, name := range []string{"dht", "central"} {
		o, err := Run(s, builds[name])
		if err != nil {
			t.Fatalf("%s: %v\nreplay:\n%s", name, err, s)
		}
		if o.Leaves != nLeaves {
			t.Fatalf("%s: %d/%d departures completed\nreplay:\n%s", name, o.Leaves, nLeaves, s)
		}
		if o.Recall < 0.99 {
			t.Fatalf("%s: recall %.3f after leaves, want >= 0.99\nreplay:\n%s", name, o.Recall, s)
		}
		if name == "dht" && o.LeaveBytes == 0 {
			t.Fatal("dht leaves charged no bytes — the pre-exit handoff was free")
		}
		if name == "central" && o.LeaveBytes != 0 {
			t.Fatal("dark-convention leavers charged leave bytes")
		}
		o2, err := Run(s, builds[name])
		if err != nil {
			t.Fatalf("%s replay: %v", name, err)
		}
		if o != o2 {
			t.Fatalf("%s: same-seed replay with leaves diverged:\n%+v\nvs\n%+v", name, o, o2)
		}
	}
}

// TestRunRejectsMalformedConfig: a population that does not fill whole
// zones (or starves the generator of crashable members) is an explicit
// error, not a truncated topology that panics at the first join event.
func TestRunRejectsMalformedConfig(t *testing.T) {
	build := func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
		return central.New(net, sites[0])
	}
	bad := []Config{
		{Sites: 18, SitesPerZone: 4, Joiners: 2, Rounds: 8, EventRate: 0.5, PubsPerRound: 4},  // partial zone
		{Sites: 16, SitesPerZone: 4, Joiners: 14, Rounds: 8, EventRate: 0.5, PubsPerRound: 4}, // no crashable members
		{Sites: 16, SitesPerZone: 4, Joiners: 2, Rounds: 1, EventRate: 0.5, PubsPerRound: 4},  // no room for joins
		{Sites: 16, SitesPerZone: 4, Joiners: 2, Rounds: 8, EventRate: 0.5, PubsPerRound: 0},  // no workload
	}
	for i, cfg := range bad {
		s := &Schedule{Seed: 1, Cfg: cfg}
		if _, err := Run(s, build); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestScheduleStringReplayable(t *testing.T) {
	s := Generate(7, testCfg)
	out := s.String()
	for _, want := range []string{"seed=7", "join", "round"} {
		if !strings.Contains(out, want) {
			t.Fatalf("schedule listing missing %q:\n%s", want, out)
		}
	}
}

// TestRunOracleAndDeterminism: the runner holds its oracle against both
// membership conventions — dht grows its ring through Join (handoff
// bytes charged), central runs the fail-at-start convention — and a
// same-seed replay is byte-identical.
func TestRunOracleAndDeterminism(t *testing.T) {
	builds := map[string]func(net *netsim.Network, sites []netsim.SiteID) arch.Model{
		"dht": func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return dht.New(net, sites)
		},
		"central": func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return central.New(net, sites[0])
		},
	}
	for _, name := range []string{"dht", "central"} {
		build := builds[name]
		s := Generate(99, testCfg)
		o, err := Run(s, build)
		if err != nil {
			t.Fatalf("%s: %v\nreplay:\n%s", name, err, s)
		}
		if o.Recall < 0.99 {
			t.Fatalf("%s: recall %.3f, want >= 0.99\nreplay:\n%s", name, o.Recall, s)
		}
		if o.Joins != testCfg.Joiners {
			t.Fatalf("%s: %d/%d joiners admitted", name, o.Joins, testCfg.Joiners)
		}
		if o.Offered != testCfg.Rounds*testCfg.PubsPerRound {
			t.Fatalf("%s: offered %d publishes, want %d", name, o.Offered, testCfg.Rounds*testCfg.PubsPerRound)
		}
		if o.Stats.Bytes == 0 || o.Stats.Messages == 0 {
			t.Fatalf("%s: no traffic accounted", name)
		}
		if name == "dht" && o.HandoffBytes == 0 {
			t.Fatal("dht joins charged no handoff bytes")
		}
		if name == "central" && o.HandoffBytes != 0 {
			t.Fatal("heal-convention joiners charged handoff bytes")
		}
		o2, err := Run(s, build)
		if err != nil {
			t.Fatalf("%s replay: %v", name, err)
		}
		if o != o2 {
			t.Fatalf("%s: same-seed replay diverged:\n%+v\nvs\n%+v", name, o, o2)
		}
	}
}

// TestGenerateSoakWellFormed: the soak generator's structural invariants —
// every crash has its heal exactly DownFor rounds later, victims are
// never anchors and never doubly crashed, loss bursts are bounded and
// closed, events sort by round, and the stream is seed-deterministic.
func TestGenerateSoakWellFormed(t *testing.T) {
	cfg := Config{Sites: 16, SitesPerZone: 4, Rounds: 24, PubsPerRound: 3}
	opt := SoakOptions{CrashEvery: 6, DownFor: 3, Victims: 2, LossEvery: 9, LossFor: 2, LossRate: 0.1}
	for seed := uint64(1); seed <= 30; seed++ {
		s := GenerateSoak(seed, cfg, opt)
		if len(s.Events) == 0 {
			t.Fatalf("seed %d: empty soak schedule", seed)
		}
		healAt := map[int]int{} // victim -> pending heal round
		lossy := false
		lastRound := -1
		for _, e := range s.Events {
			if e.Round < lastRound || e.Round >= cfg.Rounds {
				t.Fatalf("seed %d: event out of order or range: %+v", seed, e)
			}
			lastRound = e.Round
			switch e.Op {
			case OpCrash:
				if e.Site < anchors {
					t.Fatalf("seed %d: anchor crashed: %+v", seed, e)
				}
				if _, dup := healAt[e.Site]; dup {
					t.Fatalf("seed %d: site %d crashed while already down", seed, e.Site)
				}
				healAt[e.Site] = e.Round + opt.DownFor
			case OpHeal:
				want, ok := healAt[e.Site]
				if !ok || want != e.Round {
					t.Fatalf("seed %d: heal of %d at round %d, want scheduled %d", seed, e.Site, e.Round, want)
				}
				delete(healAt, e.Site)
			case OpLossBurst:
				if lossy || e.Rate <= 0 || e.Rate > 0.2 {
					t.Fatalf("seed %d: malformed loss burst %+v (lossy=%v)", seed, e, lossy)
				}
				lossy = true
			case OpLossEnd:
				if !lossy {
					t.Fatalf("seed %d: loss-end without burst", seed)
				}
				lossy = false
			default:
				t.Fatalf("seed %d: soak stream drew op %s", seed, e.Op)
			}
		}
		if len(healAt) != 0 || lossy {
			t.Fatalf("seed %d: schedule ends with open damage: heals=%v lossy=%v", seed, healAt, lossy)
		}
		s2 := GenerateSoak(seed, cfg, opt)
		if s.String() != s2.String() {
			t.Fatalf("seed %d: soak schedule not deterministic", seed)
		}
	}
}

// seriesRecorder implements Observer for tests: per-round recall series
// plus applied-event count.
type seriesRecorder struct {
	recalls []float64
	rounds  []RoundStats
	events  int
}

func (r *seriesRecorder) OnEvent(round int, e Event) { r.events++ }
func (r *seriesRecorder) OnRound(st RoundStats) {
	r.rounds = append(r.rounds, st)
	r.recalls = append(r.recalls, st.Recall)
}

// TestRunObserved: the observer tap sees every event and every round
// (quiescence included), the recall probe dips while a victim is down and
// recovers, the unobserved Outcome is unchanged by observation except for
// probe traffic accounting, and two observed replays agree byte-for-byte.
func TestRunObserved(t *testing.T) {
	cfg := Config{Sites: 16, SitesPerZone: 4, Rounds: 18, PubsPerRound: 4}
	s := GenerateSoak(7, cfg, SoakOptions{CrashEvery: 6, DownFor: 3})
	build := func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
		return central.New(net, sites[0])
	}

	rec := &seriesRecorder{}
	o, err := RunObserved(s, build, rec)
	if err != nil {
		t.Fatalf("%v\nreplay:\n%s", err, s)
	}
	if rec.events != len(s.Events) {
		t.Fatalf("observer saw %d events, schedule has %d", rec.events, len(s.Events))
	}
	if len(rec.rounds) < cfg.Rounds {
		t.Fatalf("observer saw %d rounds, want >= %d", len(rec.rounds), cfg.Rounds)
	}
	for i, st := range rec.rounds[:cfg.Rounds] {
		if st.Round != i {
			t.Fatalf("round numbering broken at %d: %+v", i, st)
		}
	}
	dipped := false
	for _, r := range rec.recalls {
		if r < 1 {
			dipped = true
		}
	}
	// central stores everything at the warehouse (an anchor), so its
	// probe recall never dips — but a victim site losing its records
	// would. Either way the series must end recovered.
	if last := rec.recalls[len(rec.recalls)-1]; last != 1 {
		t.Fatalf("soak did not end recovered: final probe recall %.3f (dipped=%v)", last, dipped)
	}

	// Unobserved outcome matches on every field except traffic accounting
	// (probe lookups are charged like any other messages).
	plain, err := Run(s, build)
	if err != nil {
		t.Fatal(err)
	}
	o.Stats, plain.Stats = netsim.Stats{}, netsim.Stats{}
	if o != plain {
		t.Fatalf("observation changed the outcome:\n%+v\nvs\n%+v", o, plain)
	}

	rec2 := &seriesRecorder{}
	o2, err := RunObserved(s, build, rec2)
	if err != nil {
		t.Fatal(err)
	}
	o2.Stats = netsim.Stats{}
	if o != o2 || len(rec2.recalls) != len(rec.recalls) {
		t.Fatal("observed replay diverged across identical seeds")
	}
	for i := range rec.recalls {
		if rec.recalls[i] != rec2.recalls[i] {
			t.Fatalf("recall series diverged at round %d: %v vs %v", i, rec.recalls[i], rec2.recalls[i])
		}
	}
}
