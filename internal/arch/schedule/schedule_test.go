package schedule

import (
	"strings"
	"testing"

	"pass/internal/arch"
	"pass/internal/arch/central"
	"pass/internal/arch/dht"
	"pass/internal/netsim"
)

var testCfg = Config{
	Sites:        16,
	SitesPerZone: 4,
	Joiners:      2,
	Rounds:       8,
	EventRate:    0.6,
	PubsPerRound: 4,
}

func TestGenerateDeterministicAndSeedSensitive(t *testing.T) {
	a, b := Generate(42, testCfg), Generate(42, testCfg)
	if len(a.Events) != len(b.Events) {
		t.Fatalf("same seed produced %d vs %d events", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d diverged across identical seeds: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
	c := Generate(43, testCfg)
	if a.String() == c.String() {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestGenerateWellFormed: the generator's structural invariants — every
// joiner admitted exactly once before the final round, anchors and
// joiners never crashed, heals only of crashed sites, partitions and
// loss bursts opened at most singly and always closed by the end.
func TestGenerateWellFormed(t *testing.T) {
	members := testCfg.Sites - testCfg.Joiners
	for seed := uint64(1); seed <= 50; seed++ {
		s := Generate(seed, testCfg)
		joined := map[int]int{}
		crashed := map[int]bool{}
		partitioned, lossy := false, false
		lastRound := -1
		for _, e := range s.Events {
			if e.Round < lastRound || e.Round >= testCfg.Rounds {
				t.Fatalf("seed %d: event rounds out of order or range: %+v", seed, e)
			}
			lastRound = e.Round
			switch e.Op {
			case OpJoin:
				joined[e.Site]++
				if e.Site < members {
					t.Fatalf("seed %d: join of a founding member %d", seed, e.Site)
				}
				if e.Round >= testCfg.Rounds-1 {
					t.Fatalf("seed %d: join in the final round leaves no time to converge", seed)
				}
			case OpCrash:
				if e.Site < anchors || e.Site >= members {
					t.Fatalf("seed %d: crash of anchor or joiner %d", seed, e.Site)
				}
				if crashed[e.Site] {
					t.Fatalf("seed %d: double crash of %d", seed, e.Site)
				}
				crashed[e.Site] = true
			case OpHeal:
				if !crashed[e.Site] {
					t.Fatalf("seed %d: heal of a live site %d", seed, e.Site)
				}
				delete(crashed, e.Site)
			case OpPartition:
				if partitioned {
					t.Fatalf("seed %d: nested partition", seed)
				}
				if e.Cut < testCfg.Sites/4 || e.Cut >= testCfg.Sites {
					t.Fatalf("seed %d: degenerate cut %d", seed, e.Cut)
				}
				partitioned = true
			case OpHealPartition:
				partitioned = false
			case OpLossBurst:
				if lossy {
					t.Fatalf("seed %d: nested loss burst", seed)
				}
				if e.Rate <= 0 || e.Rate >= 0.3 {
					t.Fatalf("seed %d: loss rate %v out of range", seed, e.Rate)
				}
				lossy = true
			case OpLossEnd:
				lossy = false
			}
		}
		if partitioned || lossy {
			t.Fatalf("seed %d: schedule ends with an open partition/loss burst", seed)
		}
		for j := 0; j < testCfg.Joiners; j++ {
			if joined[members+j] != 1 {
				t.Fatalf("seed %d: joiner %d admitted %d times", seed, members+j, joined[members+j])
			}
		}
	}
}

// TestRunRejectsMalformedConfig: a population that does not fill whole
// zones (or starves the generator of crashable members) is an explicit
// error, not a truncated topology that panics at the first join event.
func TestRunRejectsMalformedConfig(t *testing.T) {
	build := func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
		return central.New(net, sites[0])
	}
	bad := []Config{
		{Sites: 18, SitesPerZone: 4, Joiners: 2, Rounds: 8, EventRate: 0.5, PubsPerRound: 4},  // partial zone
		{Sites: 16, SitesPerZone: 4, Joiners: 14, Rounds: 8, EventRate: 0.5, PubsPerRound: 4}, // no crashable members
		{Sites: 16, SitesPerZone: 4, Joiners: 2, Rounds: 1, EventRate: 0.5, PubsPerRound: 4},  // no room for joins
		{Sites: 16, SitesPerZone: 4, Joiners: 2, Rounds: 8, EventRate: 0.5, PubsPerRound: 0},  // no workload
	}
	for i, cfg := range bad {
		s := &Schedule{Seed: 1, Cfg: cfg}
		if _, err := Run(s, build); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestScheduleStringReplayable(t *testing.T) {
	s := Generate(7, testCfg)
	out := s.String()
	for _, want := range []string{"seed=7", "join", "round"} {
		if !strings.Contains(out, want) {
			t.Fatalf("schedule listing missing %q:\n%s", want, out)
		}
	}
}

// TestRunOracleAndDeterminism: the runner holds its oracle against both
// membership conventions — dht grows its ring through Join (handoff
// bytes charged), central runs the fail-at-start convention — and a
// same-seed replay is byte-identical.
func TestRunOracleAndDeterminism(t *testing.T) {
	builds := map[string]func(net *netsim.Network, sites []netsim.SiteID) arch.Model{
		"dht": func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return dht.New(net, sites)
		},
		"central": func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return central.New(net, sites[0])
		},
	}
	for _, name := range []string{"dht", "central"} {
		build := builds[name]
		s := Generate(99, testCfg)
		o, err := Run(s, build)
		if err != nil {
			t.Fatalf("%s: %v\nreplay:\n%s", name, err, s)
		}
		if o.Recall < 0.99 {
			t.Fatalf("%s: recall %.3f, want >= 0.99\nreplay:\n%s", name, o.Recall, s)
		}
		if o.Joins != testCfg.Joiners {
			t.Fatalf("%s: %d/%d joiners admitted", name, o.Joins, testCfg.Joiners)
		}
		if o.Offered != testCfg.Rounds*testCfg.PubsPerRound {
			t.Fatalf("%s: offered %d publishes, want %d", name, o.Offered, testCfg.Rounds*testCfg.PubsPerRound)
		}
		if o.Stats.Bytes == 0 || o.Stats.Messages == 0 {
			t.Fatalf("%s: no traffic accounted", name)
		}
		if name == "dht" && o.HandoffBytes == 0 {
			t.Fatal("dht joins charged no handoff bytes")
		}
		if name == "central" && o.HandoffBytes != 0 {
			t.Fatal("heal-convention joiners charged handoff bytes")
		}
		o2, err := Run(s, build)
		if err != nil {
			t.Fatalf("%s replay: %v", name, err)
		}
		if o != o2 {
			t.Fatalf("%s: same-seed replay diverged:\n%+v\nvs\n%+v", name, o, o2)
		}
	}
}
