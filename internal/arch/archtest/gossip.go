package archtest

// Gossip-efficiency laws: what a model's dissemination layer must save —
// not just what it must deliver. faults.go pins that gossip converges
// under loss and churn; this file pins that the EFFICIENT gossip path
// (duplicate suppression, per-peer delta coalescing, armed anti-entropy
// pulls) buys its byte savings without giving any of that convergence
// back, and that a voluntary departure is cheaper than the crash it
// replaces.
//
//   - DuplicateSuppression (Config.MakeEfficient, today: passnet): the
//     same seeded scenario — duplicate re-offers, a lossy burst, a crash
//     that heals — runs once on the baseline build and once on the
//     efficient build. Both must converge every site to the SAME view
//     fingerprint with full recall, the efficient run in no more
//     maintenance rounds, while charging strictly fewer WAN bytes; its
//     meter must show real suppression work (DupSuppressed > 0) and real
//     pull exchanges (PullRounds > 0), and the whole efficient run must
//     replay byte-identically.
//
//   - LeaveHandoff (arch.Leaver + arch.Stabilizer, today: dht): a member
//     that departs voluntarily pushes its keys to its successor before
//     disconnecting. The law runs the same build twice — one leg leaves,
//     the other crashes the same site and stabilizes — and requires the
//     leave's charged handoff (> 0 bytes) to be strictly cheaper than
//     crash-then-stabilize, with lookup and attribute recall >= 0.99 on
//     both legs.

import (
	"testing"

	"pass/internal/arch"
	"pass/internal/arch/siteview"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

const (
	dupTopoSeed   = 13099
	leaveTopoSeed = 13177
)

// testDuplicateSuppression: baseline vs efficient gossip over an
// identical seeded workload — same converged state, no extra rounds,
// strictly fewer bytes.
func testDuplicateSuppression(t *testing.T, cfg Config) {
	if cfg.MakeEfficient == nil {
		t.Skip("model has no efficient gossip mode to compare")
	}
	{
		net, sites := netsim.RandomTopology(netsim.Config{}, 2, 2, dupTopoSeed)
		m := cfg.MakeEfficient(net, sites)
		if _, ok := m.(siteview.Exposer); !ok {
			t.Fatal("MakeEfficient model exposes no per-site views — fingerprint convergence is unobservable")
		}
		if _, ok := m.(arch.GossipMeter); !ok {
			t.Fatal("MakeEfficient model meters no gossip — the law's savings are unobservable")
		}
	}
	domain := provenance.String("dup")

	type outcome struct {
		fp     uint64
		bytes  int64
		rounds int
		gs     arch.GossipStats
	}
	// run drives the shared scenario: duplicate re-offers on a pristine
	// network, more duplicates through a lossy burst, a crash that heals,
	// then bounded maintenance until every site's view fingerprint
	// matches. Publishes are origin-local and so never lost — both builds
	// see the identical offered workload.
	run := func(build func(net *netsim.Network, sites []netsim.SiteID) arch.Model) outcome {
		net, sites := netsim.RandomTopology(netsim.Config{}, 6, 4, dupTopoSeed) // 24 sites
		m := build(net, sites)
		ve := m.(siteview.Exposer)
		victim := sites[20]

		want := make(map[provenance.ID]bool)
		offer := func(n int, origin netsim.SiteID, times int) {
			p := PubN(n, origin,
				provenance.Attr(provenance.KeyDomain, domain),
				zoneAttr(t, net, origin))
			for k := 0; k < times; k++ {
				if !publishRetry(m, p, 4) {
					t.Fatalf("publish %d failed", n)
				}
			}
			want[p.ID] = true
		}

		// Phase 1: pristine network, every record offered twice — an
		// at-least-once ingest pipeline re-offering what it already sent.
		for i := 0; i < 16; i++ {
			offer(i, sites[i%12], 2)
		}
		flushN(t, m, 2)

		// Phase 2: a lossy burst with the duplicates still coming. Lost
		// pushes are charged, so this is where naive re-push bleeds bytes.
		net.SetLossRate(0.25)
		for w := 0; w < 4; w++ {
			for i := 0; i < 6; i++ {
				offer(100+w*6+i, sites[i%12], 2)
			}
			flushN(t, m, 1)
		}

		// Phase 3: a crash on top of the loss; publishing continues.
		net.Fail(victim)
		for w := 0; w < 3; w++ {
			for i := 0; i < 4; i++ {
				offer(200+w*4+i, sites[i%12], 1)
			}
			flushN(t, m, 1)
		}
		net.SetLossRate(0)
		net.Heal(victim)

		converged := func() bool {
			fp := ve.SiteView(sites[0]).Fingerprint()
			for _, s := range sites[1:] {
				if ve.SiteView(s).Fingerprint() != fp {
					return false
				}
			}
			return true
		}
		o := outcome{}
		for ; !converged(); o.rounds++ {
			if o.rounds > 20 {
				t.Fatal("views did not converge within 20 rounds after heal")
			}
			flushN(t, m, 1)
		}
		for qi, r := range recallOf(m, []netsim.SiteID{sites[0], victim, sites[23]}, provenance.KeyDomain, domain, want) {
			if r != 1.0 {
				t.Fatalf("querier %d: recall %v after convergence, want 1.0", qi, r)
			}
		}
		o.fp = ve.SiteView(sites[0]).Fingerprint()
		o.bytes = net.Stats().Bytes
		if gm, ok := m.(arch.GossipMeter); ok {
			o.gs = gm.GossipStats()
		}
		return o
	}

	base := run(cfg.Make)
	eff := run(cfg.MakeEfficient)

	if eff.fp != base.fp {
		t.Fatalf("efficient gossip converged to fingerprint %x, baseline %x — suppression changed the state", eff.fp, base.fp)
	}
	if eff.rounds > base.rounds {
		t.Fatalf("efficient gossip needed %d convergence rounds, baseline %d — savings bought with latency", eff.rounds, base.rounds)
	}
	if eff.bytes >= base.bytes {
		t.Fatalf("efficient gossip charged %d total WAN bytes, baseline %d — no savings\neff %+v\nbase %+v", eff.bytes, base.bytes, eff.gs, base.gs)
	}
	t.Logf("gossip layer: baseline %d bytes, efficient %d (%.1f%% saved; %d re-offers suppressed, %d pulls)",
		base.gs.Bytes, eff.gs.Bytes, 100*(1-float64(eff.gs.Bytes)/float64(base.gs.Bytes)), eff.gs.DupSuppressed, eff.gs.PullRounds)
	if eff.gs.Bytes >= base.gs.Bytes {
		t.Fatalf("efficient gossip layer charged %d bytes, baseline layer %d — the savings came from somewhere else", eff.gs.Bytes, base.gs.Bytes)
	}
	if eff.gs.DupSuppressed == 0 {
		t.Fatal("no duplicates suppressed across a workload that offered every record twice — the dupemap is inert")
	}
	if eff.gs.PullRounds == 0 {
		t.Fatal("no anti-entropy pulls ran across a lossy burst — the armed pull never fired")
	}

	// Same-seed determinism: the efficient run replays byte-identically,
	// suppression counters and all.
	eff2 := run(cfg.MakeEfficient)
	if eff2 != eff {
		t.Fatalf("efficient run diverged across identical seeds:\n%+v\nvs\n%+v", eff, eff2)
	}
}

// testLeaveHandoff: a voluntary departure with a pre-exit key handoff
// must cost real bytes — and strictly fewer of them than crashing the
// same member and stabilizing around the hole.
func testLeaveHandoff(t *testing.T, cfg Config) {
	{
		net, sites := netsim.RandomTopology(netsim.Config{}, 2, 2, leaveTopoSeed)
		m := cfg.Make(net, sites)
		_, isLeaver := m.(arch.Leaver)
		_, isStab := m.(arch.Stabilizer)
		if !isLeaver || !isStab {
			t.Skip("model has no voluntary departure")
		}
	}
	domain := provenance.String("leave")

	const nRecs = 60
	// build stands up a fresh 40-site deployment with the shared workload;
	// both legs start from byte-identical state.
	build := func() (*netsim.Network, []netsim.SiteID, arch.Model, []arch.Pub, map[provenance.ID]bool) {
		net, sites := netsim.RandomTopology(netsim.Config{}, 10, 4, leaveTopoSeed) // 40 sites
		m := cfg.Make(net, sites)
		want := make(map[provenance.ID]bool, nRecs)
		pubs := make([]arch.Pub, 0, nRecs)
		for i := 0; i < nRecs; i++ {
			origin := sites[(i*11)%len(sites)]
			p := PubN(i, origin,
				provenance.Attr(provenance.KeyDomain, domain),
				zoneAttr(t, net, origin))
			if _, err := m.Publish(p); err != nil {
				t.Fatalf("publish %d: %v", i, err)
			}
			want[p.ID] = true
			pubs = append(pubs, p)
		}
		flush(t, cfg, m)
		return net, sites, m, pubs, want
	}
	check := func(leg string, net *netsim.Network, sites []netsim.SiteID, m arch.Model, pubs []arch.Pub, want map[provenance.ID]bool) {
		t.Helper()
		queriers := []netsim.SiteID{sites[0], sites[20]}
		recovered := 0
		for _, p := range pubs {
			rec, _, err := m.Lookup(queriers[0], p.ID)
			if err != nil {
				continue
			}
			if rec.ComputeID() != p.ID {
				t.Fatalf("%s: lookup of %s returned a different record", leg, p.ID.Short())
			}
			recovered++
		}
		if frac := float64(recovered) / float64(len(pubs)); frac < 0.99 {
			t.Fatalf("%s: lookup recall %.3f (%d/%d), want >= 0.99", leg, frac, recovered, len(pubs))
		}
		for qi, r := range recallOf(m, queriers, provenance.KeyDomain, domain, want) {
			if r < 0.99 {
				t.Fatalf("%s: querier %d attribute recall %v, want >= 0.99", leg, qi, r)
			}
		}
	}

	// Leg 1: sites[7] departs voluntarily — announcement plus a charged
	// diff of whatever its successor is missing.
	net1, sites1, m1, pubs1, want1 := build()
	before := net1.Stats().Bytes
	if _, err := m1.(arch.Leaver).Leave(sites1[7]); err != nil {
		t.Fatalf("leave on a pristine network: %v", err)
	}
	leaveBytes := net1.Stats().Bytes - before
	if leaveBytes == 0 {
		t.Fatal("voluntary leave charged zero bytes — the pre-exit handoff was free")
	}
	if mem, ok := m1.(interface{ Members() int }); ok {
		if got := mem.Members(); got != len(sites1)-1 {
			t.Fatalf("membership is %d after the leave, want %d", got, len(sites1)-1)
		}
	}
	check("leave", net1, sites1, m1, pubs1, want1)

	// Leg 2: the same site crashes on an identical build and the
	// membership stabilizes around the hole — probes, promotion, and
	// re-replication all charged.
	net2, sites2, m2, pubs2, want2 := build()
	before = net2.Stats().Bytes
	net2.Fail(sites2[7])
	for i := 0; i < 3; i++ {
		if _, err := m2.(arch.Stabilizer).Stabilize(); err != nil {
			t.Fatalf("stabilize round %d: %v", i, err)
		}
	}
	crashBytes := net2.Stats().Bytes - before
	check("crash", net2, sites2, m2, pubs2, want2)

	if leaveBytes >= crashBytes {
		t.Fatalf("voluntary leave cost %d bytes, crash-then-stabilize %d — the announced handoff must be cheaper",
			leaveBytes, crashBytes)
	}
}
