// Package archtest provides the shared conformance suite every Section IV
// architecture model must pass: publish → lookup, attribute query, and
// transitive ancestry, all from arbitrary querier sites, plus the fault,
// view, and churn-recovery laws (faults.go, views.go, churn.go). Models
// with soft state declare NeedsTick so the suite flushes before
// asserting recall; capability-gated laws (per-site views, stabilization,
// rejoin) skip models that cannot express the mechanism.
package archtest

import (
	"fmt"
	"testing"

	"pass/internal/arch"
	"pass/internal/geo"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

// Config describes the model under test.
type Config struct {
	// Make builds the model over the given network and participant sites.
	Make func(net *netsim.Network, sites []netsim.SiteID) arch.Model
	// MakeReplay optionally builds the model with proactive snapshot
	// recovery disabled (passnet's ManualRejoin), for laws that need a
	// replay-only recovery path to compare against — today FastRejoin's
	// replay leg. Models whose default already is replay-only leave it
	// nil and Make is used.
	MakeReplay func(net *netsim.Network, sites []netsim.SiteID) arch.Model
	// MakeEfficient optionally builds the model with its byte-efficient
	// gossip mode on (passnet's EfficientGossip), for the
	// DuplicateSuppression law's baseline-vs-efficient comparison. The
	// efficient build must expose per-site views (siteview.Exposer) and
	// meter its gossip (arch.GossipMeter). Leave nil — skipping the law —
	// when Make already is the efficient build or the model has no such
	// mode.
	MakeEfficient func(net *netsim.Network, sites []netsim.SiteID) arch.Model
	// NeedsTick indicates queries only see state after a Tick (soft
	// state, digest gossip).
	NeedsTick bool
}

// NewNetwork builds a 4-site test network spanning two zones.
func NewNetwork() (*netsim.Network, []netsim.SiteID) {
	net := netsim.New(netsim.Config{})
	sites := []netsim.SiteID{
		net.AddSite("boston-0", geo.Point{X: 0, Y: 0}, "boston"),
		net.AddSite("boston-1", geo.Point{X: 10, Y: 0}, "boston"),
		net.AddSite("london-0", geo.Point{X: 5000, Y: 0}, "london"),
		net.AddSite("london-1", geo.Point{X: 5010, Y: 0}, "london"),
	}
	return net, sites
}

func digestOf(b byte) (d [32]byte) {
	for i := range d {
		d[i] = b
	}
	return
}

// MakeRaw builds a deterministic raw record.
func MakeRaw(seed byte, attrs ...provenance.Attribute) (provenance.ID, *provenance.Record) {
	rec, id, err := provenance.NewRaw(digestOf(seed), int64(seed)).
		Attrs(attrs...).CreatedAt(int64(seed)).Build()
	if err != nil {
		panic(err)
	}
	return id, rec
}

// MakeDerived builds a deterministic derived record.
func MakeDerived(seed byte, tool string, parents ...provenance.ID) (provenance.ID, *provenance.Record) {
	rec, id, err := provenance.NewDerived(digestOf(seed), int64(seed), tool, "1.0", parents...).
		CreatedAt(int64(seed)).Build()
	if err != nil {
		panic(err)
	}
	return id, rec
}

// Run executes the conformance suite: the quick correctness checks on
// the 4-site unit network, then the heavyweight scenarios (faults.go) —
// a 1,000-site scale sweep plus loss, churn, and partition injection —
// the per-site view laws (views.go): convergence after full digest
// delivery and split-brain under partitions for view-exposing models,
// the churn-recovery laws (churn.go): KeyRehoming for arch.Stabilizer
// models and FastRejoin for arch.Rejoiner models, the membership laws
// (membership.go): JoinHandoff for arch.Joiner models, ProactiveRejoin
// for self-recovering rejoiners, and the randomized-schedule oracle
// (package schedule) for everyone, the gossip-efficiency laws
// (gossip.go): DuplicateSuppression for models with a MakeEfficient
// build and LeaveHandoff for arch.Leaver models, and a 10,000-site sweep
// that pins indexed per-lookup cost. `go test -short` shrinks the scale
// sweep, runs one schedule seed instead of three, and skips the 10k
// sweep.
func Run(t *testing.T, cfg Config) {
	t.Helper()
	t.Run("PublishLookup", func(t *testing.T) { testPublishLookup(t, cfg) })
	t.Run("AttrQueryFromEverySite", func(t *testing.T) { testAttrQuery(t, cfg) })
	t.Run("AncestryAcrossSites", func(t *testing.T) { testAncestry(t, cfg) })
	t.Run("UnknownID", func(t *testing.T) { testUnknown(t, cfg) })
	t.Run("TrafficAccounted", func(t *testing.T) { testTraffic(t, cfg) })
	t.Run("ScaleSweep", func(t *testing.T) { testScaleSweep(t, cfg) })
	t.Run("RecallUnderLoss", func(t *testing.T) { testRecallUnderLoss(t, cfg) })
	t.Run("RecallUnderChurn", func(t *testing.T) { testRecallUnderChurn(t, cfg) })
	t.Run("PartitionHeal", func(t *testing.T) { testPartitionHeal(t, cfg) })
	t.Run("ViewConvergence", func(t *testing.T) { testViewConvergence(t, cfg) })
	t.Run("SplitBrainViews", func(t *testing.T) { testSplitBrainViews(t, cfg) })
	t.Run("KeyRehoming", func(t *testing.T) { testKeyRehoming(t, cfg) })
	t.Run("FastRejoin", func(t *testing.T) { testFastRejoin(t, cfg) })
	t.Run("JoinHandoff", func(t *testing.T) { testJoinHandoff(t, cfg) })
	t.Run("ProactiveRejoin", func(t *testing.T) { testProactiveRejoin(t, cfg) })
	t.Run("MembershipSchedule", func(t *testing.T) { testMembershipSchedule(t, cfg) })
	t.Run("RecallSoak", func(t *testing.T) { testRecallSoak(t, cfg) })
	t.Run("DuplicateSuppression", func(t *testing.T) { testDuplicateSuppression(t, cfg) })
	t.Run("LeaveHandoff", func(t *testing.T) { testLeaveHandoff(t, cfg) })
	t.Run("Sweep10k", func(t *testing.T) { testSweep10k(t, cfg) })
}

func flush(t *testing.T, cfg Config, m arch.Model) {
	t.Helper()
	if cfg.NeedsTick {
		if err := m.Tick(); err != nil {
			t.Fatal(err)
		}
	}
}

func testPublishLookup(t *testing.T, cfg Config) {
	net, sites := NewNetwork()
	m := cfg.Make(net, sites)
	id, rec := MakeRaw(1, provenance.Attr("zone", provenance.String("boston")))
	if _, err := m.Publish(arch.Pub{ID: id, Rec: rec, Origin: sites[0]}); err != nil {
		t.Fatal(err)
	}
	flush(t, cfg, m)
	for _, from := range sites {
		got, d, err := m.Lookup(from, id)
		if err != nil {
			t.Fatalf("lookup from %d: %v", from, err)
		}
		if got.ComputeID() != id {
			t.Fatalf("lookup from %d returned wrong record", from)
		}
		if d < 0 {
			t.Fatalf("negative latency %v", d)
		}
	}
}

func testAttrQuery(t *testing.T, cfg Config) {
	net, sites := NewNetwork()
	m := cfg.Make(net, sites)
	want := make(map[provenance.ID]bool)
	// Two matching records at different sites, one non-matching.
	for i, origin := range []netsim.SiteID{sites[0], sites[2]} {
		id, rec := MakeRaw(byte(10+i), provenance.Attr("domain", provenance.String("traffic")))
		if _, err := m.Publish(arch.Pub{ID: id, Rec: rec, Origin: origin}); err != nil {
			t.Fatal(err)
		}
		want[id] = true
	}
	idOther, recOther := MakeRaw(30, provenance.Attr("domain", provenance.String("weather")))
	if _, err := m.Publish(arch.Pub{ID: idOther, Rec: recOther, Origin: sites[1]}); err != nil {
		t.Fatal(err)
	}
	flush(t, cfg, m)
	for _, from := range sites {
		got, _, err := m.QueryAttr(from, "domain", provenance.String("traffic"))
		if err != nil {
			t.Fatalf("query from %d: %v", from, err)
		}
		if len(got) != len(want) {
			t.Fatalf("query from %d: got %d ids, want %d", from, len(got), len(want))
		}
		for _, id := range got {
			if !want[id] {
				t.Fatalf("query from %d returned wrong id %s", from, id.Short())
			}
		}
	}
	// Missing value yields empty, not error.
	got, _, err := m.QueryAttr(sites[0], "domain", provenance.String("volcano"))
	if err != nil || len(got) != 0 {
		t.Fatalf("missing value: %v, %v", got, err)
	}
}

func testAncestry(t *testing.T, cfg Config) {
	net, sites := NewNetwork()
	m := cfg.Make(net, sites)
	// Chain spanning sites: raw@boston-0 <- mid@boston-1 <- leaf@london-0,
	// plus a second raw parent for the mid node (DAG, not just a chain).
	rawA, recA := MakeRaw(1)
	rawB, recB := MakeRaw(2)
	mid, recMid := MakeDerived(3, "merge", rawA, rawB)
	leaf, recLeaf := MakeDerived(4, "render", mid)

	pubs := []struct {
		id     provenance.ID
		rec    *provenance.Record
		origin netsim.SiteID
	}{
		{rawA, recA, sites[0]},
		{rawB, recB, sites[1]},
		{mid, recMid, sites[1]},
		{leaf, recLeaf, sites[2]},
	}
	for _, p := range pubs {
		if _, err := m.Publish(arch.Pub{ID: p.id, Rec: p.rec, Origin: p.origin}); err != nil {
			t.Fatal(err)
		}
	}
	flush(t, cfg, m)

	got, d, err := m.QueryAncestors(sites[3], leaf)
	if err != nil {
		t.Fatal(err)
	}
	want := map[provenance.ID]bool{rawA: true, rawB: true, mid: true}
	if len(got) != len(want) {
		t.Fatalf("ancestors = %d ids (%v), want 3", len(got), d)
	}
	for _, id := range got {
		if !want[id] {
			t.Fatalf("wrong ancestor %s", id.Short())
		}
	}
	// A raw record has no ancestors.
	got, _, err = m.QueryAncestors(sites[0], rawA)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("raw record has %d ancestors", len(got))
	}
}

func testUnknown(t *testing.T, cfg Config) {
	net, sites := NewNetwork()
	m := cfg.Make(net, sites)
	// Publish one record so internal tables exist.
	id, rec := MakeRaw(1)
	if _, err := m.Publish(arch.Pub{ID: id, Rec: rec, Origin: sites[0]}); err != nil {
		t.Fatal(err)
	}
	flush(t, cfg, m)
	var ghost provenance.ID
	ghost[0] = 0xEE
	if _, _, err := m.Lookup(sites[0], ghost); err == nil {
		t.Fatal("lookup of unknown id succeeded")
	}
}

func testTraffic(t *testing.T, cfg Config) {
	net, sites := NewNetwork()
	m := cfg.Make(net, sites)
	id, rec := MakeRaw(1, provenance.Attr("k", provenance.String("v")))
	if _, err := m.Publish(arch.Pub{ID: id, Rec: rec, Origin: sites[0]}); err != nil {
		t.Fatal(err)
	}
	flush(t, cfg, m)
	if _, _, err := m.QueryAttr(sites[3], "k", provenance.String("v")); err != nil {
		t.Fatal(err)
	}
	st := net.Stats()
	if st.Messages == 0 || st.Bytes == 0 {
		t.Fatalf("no traffic accounted: %+v", st)
	}
}

// PubAt is a convenience for model-specific tests.
func PubAt(seed byte, origin netsim.SiteID, attrs ...provenance.Attribute) arch.Pub {
	id, rec := MakeRaw(seed, attrs...)
	return arch.Pub{ID: id, Rec: rec, Origin: origin}
}

// ChainAt publishes a linear derivation chain of the given length rooted
// at origins[i%len(origins)] and returns the IDs root-first.
func ChainAt(t *testing.T, m arch.Model, origins []netsim.SiteID, length int, seedBase byte) []provenance.ID {
	t.Helper()
	ids := make([]provenance.ID, 0, length)
	rootID, rootRec := MakeRaw(seedBase)
	if _, err := m.Publish(arch.Pub{ID: rootID, Rec: rootRec, Origin: origins[0]}); err != nil {
		t.Fatal(err)
	}
	ids = append(ids, rootID)
	for i := 1; i < length; i++ {
		id, rec := MakeDerived(byte(int(seedBase)+i), fmt.Sprintf("step-%d", i), ids[i-1])
		if _, err := m.Publish(arch.Pub{ID: id, Rec: rec, Origin: origins[i%len(origins)]}); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	return ids
}
