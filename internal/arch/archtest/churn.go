package archtest

// Churn-recovery laws: what a model must guarantee when MEMBERSHIP
// changes, beyond the transient-fault contract of faults.go. Both laws
// are capability-gated: a model that cannot express the recovery
// mechanism (no ring to stabilize, no per-site views to snapshot) skips
// the law rather than faking it.
//
//   - KeyRehoming (arch.Stabilizer, today: dht): keys owned by a crashed
//     node must become resolvable again after stabilization alone — no
//     origin republish — because the dead node's successor promotes the
//     replicas it holds. Lookups that failed right after the crash
//     succeed after Stabilize, and attribute recall returns to 1.
//
//   - FastRejoin (arch.Rejoiner + siteview.Exposer, today: passnet): a
//     site recovering from a crash converges via one snapshot transfer
//     instead of replaying every queued digest delta. The law runs the
//     same scenario twice — once recovering by gossip replay, once by
//     Rejoin — and asserts the rejoin path converges in strictly fewer
//     maintenance rounds AND fewer bytes, and that the senders' pruned
//     outboxes send nothing further to the rejoined site.

import (
	"testing"

	"pass/internal/arch"
	"pass/internal/arch/siteview"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

const (
	rehomeTopoSeed = 9462
	rejoinTopoSeed = 10301
)

// testKeyRehoming: crash several ring members, stabilize, and require
// every acknowledged record to resolve again — the successor-list
// replicas must be promoted, not routed around forever.
func testKeyRehoming(t *testing.T, cfg Config) {
	net, sites := netsim.RandomTopology(netsim.Config{}, 10, 4, rehomeTopoSeed) // 40 sites
	m := cfg.Make(net, sites)
	stab, ok := m.(arch.Stabilizer)
	if !ok {
		t.Skip("model has no membership to stabilize")
	}
	domain := provenance.String("rehome")

	const nRecs = 60
	want := make(map[provenance.ID]bool, nRecs)
	pubs := make([]arch.Pub, 0, nRecs)
	for i := 0; i < nRecs; i++ {
		origin := sites[(i*11)%len(sites)]
		p := PubN(i, origin,
			provenance.Attr(provenance.KeyDomain, domain),
			zoneAttr(t, net, origin))
		if _, err := m.Publish(p); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		want[p.ID] = true
		pubs = append(pubs, p)
	}

	// Crash a spread of sites. Ring positions are hash-scrambled, so a
	// stride over site IDs lands the victims at scattered ring slots.
	victims := []netsim.SiteID{sites[3], sites[13], sites[23], sites[33]}
	for _, v := range victims {
		net.Fail(v)
	}
	queriers := []netsim.SiteID{sites[0], sites[20], sites[39]}

	// Before stabilization the dead nodes' keys are simply gone: at least
	// one lookup must fail (otherwise the crash hit nothing and the law
	// is vacuous).
	brokenBefore := 0
	for _, p := range pubs {
		if _, _, err := m.Lookup(queriers[0], p.ID); err != nil {
			brokenBefore++
		}
	}
	if brokenBefore == 0 {
		t.Fatal("no lookups broke after crashing 4/40 nodes — victims held nothing, law is vacuous")
	}

	// Stabilize (several rounds: detection walks successor lists
	// progressively). No Tick, no origin republish — recovery must come
	// from re-homing alone.
	for i := 0; i < 3; i++ {
		if _, err := stab.Stabilize(); err != nil {
			t.Fatalf("stabilize round %d: %v", i, err)
		}
	}

	recovered := 0
	for _, p := range pubs {
		rec, _, err := m.Lookup(queriers[1], p.ID)
		if err != nil {
			continue
		}
		if rec.ComputeID() != p.ID {
			t.Fatalf("lookup of %s returned a different record after re-homing", p.ID.Short())
		}
		recovered++
	}
	if frac := float64(recovered) / float64(nRecs); frac < 0.99 {
		t.Fatalf("lookup recovery %.3f after crash+stabilize (%d/%d), want >= 0.99", frac, recovered, nRecs)
	}
	for qi, r := range recallOf(m, queriers, provenance.KeyDomain, domain, want) {
		if r < 0.99 {
			t.Fatalf("querier %d: attribute recall %v after crash+stabilize, want >= 0.99", qi, r)
		}
	}
}

// testFastRejoin: the same crash-and-recover scenario twice — gossip
// replay vs snapshot rejoin — asserting the snapshot path is strictly
// cheaper in both rounds and bytes, and that it really prunes the
// senders' queues.
func testFastRejoin(t *testing.T, cfg Config) {
	{
		probe := func() bool {
			net, sites := netsim.RandomTopology(netsim.Config{}, 2, 2, rejoinTopoSeed)
			m := cfg.Make(net, sites)
			_, isRejoiner := m.(arch.Rejoiner)
			_, isExposer := m.(siteview.Exposer)
			return isRejoiner && isExposer
		}
		if !probe() {
			t.Skip("model has no rejoin state transfer")
		}
	}

	const (
		nBase  = 12 // records published before the crash
		nWaves = 8  // gossip rounds missed while down
		perWav = 12 // records per missed round
	)
	domain := provenance.String("rejoin")

	// run executes the scenario and reports the recovery cost after the
	// heal: bytes on the wire, maintenance rounds until every view
	// fingerprint matches, and the traffic of one extra post-convergence
	// round (which must be zero if the senders' queues drained). The
	// replay leg builds via MakeReplay when the model's default recovery
	// is already the snapshot (proactive rejoin) — otherwise both legs
	// would take the same path and the comparison would be vacuous.
	run := func(useRejoin bool) (bytes int64, rounds int, extraMsgs int64) {
		net, sites := netsim.RandomTopology(netsim.Config{}, 6, 4, rejoinTopoSeed) // 24 sites
		build := cfg.Make
		if !useRejoin && cfg.MakeReplay != nil {
			build = cfg.MakeReplay
		}
		m := build(net, sites)
		ve := m.(siteview.Exposer)
		victim := sites[20]

		pub := func(n int, origin netsim.SiteID) {
			p := PubN(n, origin,
				provenance.Attr(provenance.KeyDomain, domain),
				zoneAttr(t, net, origin))
			if !publishRetry(m, p, 4) {
				t.Fatalf("publish %d failed on a pristine network", n)
			}
		}
		for i := 0; i < nBase; i++ {
			pub(i, sites[i%12]) // victims never produce in this scenario
		}
		flushN(t, m, 2)

		net.Fail(victim)
		for w := 0; w < nWaves; w++ {
			for i := 0; i < perWav; i++ {
				pub(100+w*perWav+i, sites[i%12])
			}
			flushN(t, m, 1) // deltas reach everyone except the victim
		}
		net.Heal(victim)

		converged := func() bool {
			fp := ve.SiteView(sites[0]).Fingerprint()
			for _, s := range sites[1:] {
				if ve.SiteView(s).Fingerprint() != fp {
					return false
				}
			}
			return true
		}

		before := net.Stats()
		if useRejoin {
			rej := m.(arch.Rejoiner)
			if _, err := rej.Rejoin(victim); err != nil {
				t.Fatalf("rejoin: %v", err)
			}
		}
		for rounds = 0; !converged(); rounds++ {
			if rounds > 10 {
				t.Fatalf("views did not converge within 10 rounds (rejoin=%v)", useRejoin)
			}
			flushN(t, m, 1)
		}
		after := net.Stats()
		bytes = after.Bytes - before.Bytes

		// One more maintenance round: anything still queued for the victim
		// goes out now and is charged against the recovery path.
		flushN(t, m, 1)
		extraMsgs = net.Stats().Messages - after.Messages
		return bytes, rounds, extraMsgs
	}

	replayBytes, replayRounds, _ := run(false)
	rejoinBytes, rejoinRounds, rejoinExtra := run(true)

	if rejoinRounds >= replayRounds && replayRounds > 0 {
		t.Fatalf("rejoin took %d rounds, replay %d — snapshot did not speed convergence", rejoinRounds, replayRounds)
	}
	if rejoinRounds > 1 {
		t.Fatalf("rejoined site needed %d maintenance rounds, want <= 1 (bounded convergence)", rejoinRounds)
	}
	if rejoinBytes >= replayBytes {
		t.Fatalf("rejoin snapshot cost %d bytes, outbox replay %d — snapshot must be cheaper", rejoinBytes, replayBytes)
	}
	if rejoinExtra != 0 {
		t.Fatalf("%d messages sent after rejoin convergence — senders' outboxes were not pruned", rejoinExtra)
	}
}
