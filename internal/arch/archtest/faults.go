package archtest

// The heavyweight half of the conformance suite: paper-scale topologies
// and fault injection. Where archtest.go checks that a model answers
// correctly on a pristine 4-site network, this file checks that it keeps
// its contract (arch.Model's fault contract) when the network looks like
// a real wide-area deployment: 1,000+ sites, lossy links, sites crashing
// and joining mid-run, and partitions that heal.
//
// Every scenario is deterministic: topologies come from seeded
// geo.RandomLayout, loss draws from the network's seeded generator, and
// all model-internal fan-out orders are sorted — so the same seed always
// produces the same recall figures, which RecallUnderLoss verifies by
// running itself twice and comparing byte-for-byte.

import (
	"fmt"
	"testing"

	"pass/internal/arch"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

// Scenario seeds, fixed so failures reproduce.
const (
	scaleTopoSeed = 1414
	lossTopoSeed  = 2718
	lossNetSeed   = 3141
	churnTopoSeed = 4669
	partTopoSeed  = 5772
)

// PubN builds a deterministic raw record distinguished by n (MakeRaw's
// one-byte seed caps out at 256 records; fault scenarios need more). The
// record carries a unique "n" attribute plus attrs.
func PubN(n int, origin netsim.SiteID, attrs ...provenance.Attribute) arch.Pub {
	var digest [32]byte
	digest[0], digest[1], digest[2] = byte(n), byte(n>>8), 0xAB
	all := append([]provenance.Attribute{provenance.Attr("n", provenance.Int64(int64(n)))}, attrs...)
	rec, id, err := provenance.NewRaw(digest, 64).Attrs(all...).CreatedAt(int64(n) + 1).Build()
	if err != nil {
		panic(err)
	}
	return arch.Pub{ID: id, Rec: rec, Origin: origin}
}

// DerivedN builds a deterministic derived record distinguished by n.
func DerivedN(n int, tool string, origin netsim.SiteID, parents ...provenance.ID) arch.Pub {
	var digest [32]byte
	digest[0], digest[1], digest[2] = byte(n), byte(n>>8), 0xCD
	rec, id, err := provenance.NewDerived(digest, 64, tool, "1.0", parents...).
		CreatedAt(int64(n) + 1).Build()
	if err != nil {
		panic(err)
	}
	return arch.Pub{ID: id, Rec: rec, Origin: origin}
}

// publishRetry offers p up to attempts times (Publish is idempotent by
// the fault contract) and reports whether it was eventually acknowledged.
func publishRetry(m arch.Model, p arch.Pub, attempts int) bool {
	for i := 0; i < attempts; i++ {
		if _, err := m.Publish(p); err == nil {
			return true
		}
	}
	return false
}

// flushN runs n maintenance rounds; under faults a single round may not
// deliver everything (requeued refreshes, partially-delivered digests).
func flushN(t *testing.T, m arch.Model, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := m.Tick(); err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
	}
}

// zoneAttr returns the origin site's zone as the standard zone attribute,
// so hierarchical models get a meaningful primary attribute at scale.
func zoneAttr(t *testing.T, net *netsim.Network, origin netsim.SiteID) provenance.Attribute {
	t.Helper()
	s, err := net.Site(origin)
	if err != nil {
		t.Fatal(err)
	}
	return provenance.Attr(provenance.KeyZone, provenance.String(s.Zone))
}

// recallOf queries (key, value) from each querier and returns the
// per-querier fraction of want found. Queries are best-effort, so a
// lossy network can transiently degrade a single attempt (a fan-out
// skips a component whose retransmissions all dropped); like a real
// client, each querier retries up to three times and keeps its best
// answer. A querier whose every attempt errors scores 0.
func recallOf(m arch.Model, queriers []netsim.SiteID, key string, value provenance.Value, want map[provenance.ID]bool) []float64 {
	out := make([]float64, len(queriers))
	for qi, q := range queriers {
		for attempt := 0; attempt < 3; attempt++ {
			got, _, err := m.QueryAttr(q, key, value)
			if err != nil {
				continue
			}
			hit := 0
			for _, id := range got {
				if want[id] {
					hit++
				}
			}
			if r := float64(hit) / float64(len(want)); r > out[qi] {
				out[qi] = r
			}
			if out[qi] == 1.0 {
				break
			}
		}
	}
	return out
}

// scenarioScale sizes the scale sweep: the full conformance run uses
// 1,000 sites; -short keeps edit-compile-test loops quick.
func scenarioScale(t *testing.T) (zones, sitesPerZone int) {
	if testing.Short() {
		return 25, 8 // 200 sites
	}
	return 125, 8 // 1,000 sites
}

// testScaleSweep: the model must stay correct — exact recall, exact
// ancestry — on a pristine 1,000-site continental topology, not just the
// 4-site unit network.
func testScaleSweep(t *testing.T, cfg Config) {
	zones, spz := scenarioScale(t)
	net, sites := netsim.RandomTopology(netsim.Config{}, zones, spz, scaleTopoSeed)
	m := cfg.Make(net, sites)

	const nRecs = 160
	domain := provenance.String("fault-suite")
	want := make(map[provenance.ID]bool, nRecs)
	for i := 0; i < nRecs; i++ {
		origin := sites[(i*17)%len(sites)]
		p := PubN(i, origin,
			provenance.Attr(provenance.KeyDomain, domain),
			zoneAttr(t, net, origin))
		if _, err := m.Publish(p); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		want[p.ID] = true
	}
	flushN(t, m, 1)

	queriers := []netsim.SiteID{sites[0], sites[len(sites)/2], sites[len(sites)-1]}
	for _, r := range recallOf(m, queriers, provenance.KeyDomain, domain, want) {
		if r != 1.0 {
			t.Fatalf("recall %v at %d sites, want 1.0", r, len(sites))
		}
	}

	// A lineage chain spanning 12 distinct sites across the topology must
	// resolve completely from yet another site.
	const depth = 24
	chain := make([]provenance.ID, 0, depth)
	for i := 0; i < depth; i++ {
		origin := sites[(i*83)%len(sites)]
		var p arch.Pub
		if i == 0 {
			p = PubN(1000+i, origin, zoneAttr(t, net, origin))
		} else {
			p = DerivedN(1000+i, fmt.Sprintf("step-%d", i), origin, chain[i-1])
		}
		if _, err := m.Publish(p); err != nil {
			t.Fatalf("chain publish %d: %v", i, err)
		}
		chain = append(chain, p.ID)
	}
	flushN(t, m, 1)
	anc, _, err := m.QueryAncestors(sites[1], chain[depth-1])
	if err != nil {
		t.Fatal(err)
	}
	if len(anc) != depth-1 {
		t.Fatalf("ancestors = %d, want %d", len(anc), depth-1)
	}
	if st := net.Stats(); st.Messages == 0 {
		t.Fatal("no traffic accounted at scale")
	}
}

// testRecallUnderLoss: on a lossy network every acknowledged publish must
// still become queryable once maintenance rounds flush, and the whole
// run — recall figures and traffic accounting — must be identical when
// repeated with the same seeds.
func testRecallUnderLoss(t *testing.T, cfg Config) {
	const (
		nRecs    = 80
		lossRate = 0.15
	)
	domain := provenance.String("lossy")

	run := func() ([]float64, int, netsim.Stats) {
		net, sites := netsim.RandomTopology(netsim.Config{LossRate: lossRate, Seed: lossNetSeed}, 8, 5, lossTopoSeed)
		m := cfg.Make(net, sites)
		want := make(map[provenance.ID]bool, nRecs)
		acked := 0
		for i := 0; i < nRecs; i++ {
			origin := sites[(i*7)%len(sites)]
			p := PubN(i, origin,
				provenance.Attr(provenance.KeyDomain, domain),
				zoneAttr(t, net, origin))
			if publishRetry(m, p, 6) {
				acked++
				want[p.ID] = true
			}
		}
		flushN(t, m, 8)
		queriers := []netsim.SiteID{sites[0], sites[13], sites[26], sites[39]}
		return recallOf(m, queriers, provenance.KeyDomain, domain, want), acked, net.Stats()
	}

	recall1, acked1, stats1 := run()
	if acked1 != nRecs {
		t.Fatalf("only %d/%d publishes acknowledged at %.0f%% loss with retries", acked1, nRecs, lossRate*100)
	}
	for qi, r := range recall1 {
		if r != 1.0 {
			t.Fatalf("querier %d: recall %v over acknowledged publishes, want 1.0", qi, r)
		}
	}
	if stats1.DroppedMsgs == 0 {
		t.Fatal("loss injection inert: nothing was dropped")
	}

	// Determinism: identical seeds → byte-for-byte identical run.
	recall2, acked2, stats2 := run()
	if acked2 != acked1 || stats2 != stats1 {
		t.Fatalf("same seed diverged: acked %d vs %d, stats %+v vs %+v", acked1, acked2, stats1, stats2)
	}
	for qi := range recall1 {
		if recall1[qi] != recall2[qi] {
			t.Fatalf("querier %d recall diverged across identical seeds: %v vs %v", qi, recall1[qi], recall2[qi])
		}
	}
}

// testRecallUnderChurn: sites crash and join mid-run. While churn is in
// progress queries must stay best-effort (never a wrong answer, errors
// only when the model's index is genuinely unreachable); once everyone is
// back and unacknowledged publishes are re-offered, recall must return to
// exactly 1.
func testRecallUnderChurn(t *testing.T, cfg Config) {
	net, sites := netsim.RandomTopology(netsim.Config{}, 6, 4, churnTopoSeed) // 24 sites
	m := cfg.Make(net, sites)
	domain := provenance.String("churny")

	lateJoiners := sites[16:20]
	secondWave := sites[20:24]
	for _, s := range lateJoiners {
		net.Fail(s) // "not yet joined"
	}

	offered := make(map[provenance.ID]bool)
	var all []arch.Pub
	offer := func(p arch.Pub) {
		all = append(all, p)
		offered[p.ID] = true
		publishRetry(m, p, 4) // may fail mid-churn; re-offered after heal
	}

	// Phase A: steady state minus the late joiners.
	for i := 0; i < 40; i++ {
		origin := sites[(i*3)%16] // only up sites produce
		offer(PubN(i, origin,
			provenance.Attr(provenance.KeyDomain, domain),
			zoneAttr(t, net, origin)))
	}
	flushN(t, m, 3)
	sanityQueries(t, m, []netsim.SiteID{sites[1], sites[9]}, domain, offered)

	// Phase B: the late joiners come up and publish; a second wave
	// crashes.
	for _, s := range lateJoiners {
		net.Heal(s)
	}
	for _, s := range secondWave {
		net.Fail(s)
	}
	for i := 40; i < 60; i++ {
		origin := lateJoiners[i%len(lateJoiners)]
		offer(PubN(i, origin,
			provenance.Attr(provenance.KeyDomain, domain),
			zoneAttr(t, net, origin)))
	}
	flushN(t, m, 3)
	sanityQueries(t, m, []netsim.SiteID{sites[1], lateJoiners[0]}, domain, offered)

	// Full heal: every site returns, every publication is re-offered
	// (idempotent), maintenance flushes — and the model must recover
	// complete recall.
	for _, s := range secondWave {
		net.Heal(s)
	}
	want := make(map[provenance.ID]bool, len(all))
	for _, p := range all {
		if !publishRetry(m, p, 6) {
			t.Fatalf("publish %s still failing after full heal", p.ID.Short())
		}
		want[p.ID] = true
	}
	flushN(t, m, 8)
	queriers := []netsim.SiteID{sites[0], sites[17], sites[23]}
	for qi, r := range recallOf(m, queriers, provenance.KeyDomain, domain, want) {
		if r != 1.0 {
			t.Fatalf("querier %d: post-churn recall %v, want 1.0", qi, r)
		}
	}
}

// sanityQueries checks the best-effort contract mid-fault: a query either
// errors (its index is unreachable) or returns only records that were
// actually offered to the model — degraded recall is fine, and so is
// seeing a partially-indexed record whose publish errored mid-way, but a
// record nobody ever offered is a corruption.
func sanityQueries(t *testing.T, m arch.Model, queriers []netsim.SiteID, domain provenance.Value, offered map[provenance.ID]bool) {
	t.Helper()
	for _, q := range queriers {
		got, _, err := m.QueryAttr(q, provenance.KeyDomain, domain)
		if err != nil {
			continue // index unreachable: an honest refusal
		}
		for _, id := range got {
			if !offered[id] {
				t.Fatalf("querier %d: fabricated result %s", q, id.Short())
			}
		}
		if len(got) > len(offered) {
			t.Fatalf("querier %d: %d results exceed %d offered", q, len(got), len(offered))
		}
	}
}

// testPartitionHeal: a clean network split. Each side keeps operating on
// what it can reach; after the partition heals and failed publishes are
// re-offered, both sides converge to full recall.
func testPartitionHeal(t *testing.T, cfg Config) {
	net, sites := netsim.RandomTopology(netsim.Config{}, 4, 4, partTopoSeed) // 16 sites
	m := cfg.Make(net, sites)
	domain := provenance.String("split")

	left, right := sites[:8], sites[8:]
	net.Partition(left, right)

	offered := make(map[provenance.ID]bool)
	var all []arch.Pub
	for i := 0; i < 40; i++ {
		var origin netsim.SiteID
		if i%2 == 0 {
			origin = left[(i/2)%len(left)]
		} else {
			origin = right[(i/2)%len(right)]
		}
		p := PubN(i, origin,
			provenance.Attr(provenance.KeyDomain, domain),
			zoneAttr(t, net, origin))
		all = append(all, p)
		offered[p.ID] = true
		publishRetry(m, p, 2) // cross-partition publishes fail for now
	}
	flushN(t, m, 2)
	sanityQueries(t, m, []netsim.SiteID{left[1], right[1]}, domain, offered)

	net.HealPartition()
	want := make(map[provenance.ID]bool, len(all))
	for _, p := range all {
		if !publishRetry(m, p, 6) {
			t.Fatalf("publish %s still failing after heal", p.ID.Short())
		}
		want[p.ID] = true
	}
	flushN(t, m, 8)
	for qi, r := range recallOf(m, []netsim.SiteID{left[0], right[0]}, provenance.KeyDomain, domain, want) {
		if r != 1.0 {
			t.Fatalf("querier %d: post-heal recall %v, want 1.0", qi, r)
		}
	}
}
