package archtest

// Membership laws: the ARRIVAL half of churn, plus the randomized
// schedules that interleave everything. churn.go pins departures
// (KeyRehoming) and operator-driven recovery (FastRejoin); this file
// pins the rest of the lifecycle:
//
//   - JoinHandoff (arch.Joiner, today: dht): a cold node joining a live
//     ring receives a charged key handoff from its successor — lookups
//     for the handed-off keys recover to ≥ 0.99 with the handoff's bytes
//     visible in the network accounting, and the new member serves both
//     as a queryable home and as a querier.
//
//   - ProactiveRejoin (arch.Rejoiner + siteview.Exposer, today:
//     passnet): a site that crashed and came back converges via the
//     snapshot path with ZERO operator Rejoin calls — the model detects
//     its own recovery inside Tick — and the senders' pruned outboxes
//     send nothing further.
//
//   - MembershipSchedule: the generative law. For several seeds, a
//     randomized interleaving of join / crash / heal / partition /
//     loss-burst events (package schedule) runs against the model, and a
//     generic oracle asserts eventual recall ≥ 0.99 after quiescence,
//     non-trivial traffic accounting, every joiner admitted, and
//     same-seed determinism. A failing seed prints the schedule as a
//     replayable event list.

import (
	"testing"

	"pass/internal/arch"
	"pass/internal/arch/schedule"
	"pass/internal/arch/siteview"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

const (
	joinTopoSeed      = 11213
	proactiveTopoSeed = 12007
)

// testJoinHandoff: grow a live membership by four cold nodes and require
// the keys they now own to keep resolving — which only works if the
// successors actually handed them over.
func testJoinHandoff(t *testing.T, cfg Config) {
	{
		net, sites := netsim.RandomTopology(netsim.Config{}, 2, 2, joinTopoSeed)
		if _, ok := cfg.Make(net, sites).(arch.Joiner); !ok {
			t.Skip("model has no runtime membership growth")
		}
	}
	net, sites := netsim.RandomTopology(netsim.Config{}, 10, 4, joinTopoSeed) // 40 sites
	members, cold := sites[:36], sites[36:]
	m := cfg.Make(net, members)
	joiner := m.(arch.Joiner)
	domain := provenance.String("join")

	const nRecs = 80
	want := make(map[provenance.ID]bool, nRecs)
	pubs := make([]arch.Pub, 0, nRecs)
	for i := 0; i < nRecs; i++ {
		origin := members[(i*13)%len(members)]
		p := PubN(i, origin,
			provenance.Attr(provenance.KeyDomain, domain),
			zoneAttr(t, net, origin))
		if _, err := m.Publish(p); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		want[p.ID] = true
		pubs = append(pubs, p)
	}
	flush(t, cfg, m)

	before := net.Stats().Bytes
	for i, c := range cold {
		if _, err := joiner.Join(c, members[i*7]); err != nil {
			t.Fatalf("join of %d via %d: %v", c, members[i*7], err)
		}
	}
	joinBytes := net.Stats().Bytes - before
	if joinBytes == 0 {
		t.Fatal("four joins charged zero bytes — admission and handoff were free")
	}
	// Models exposing handoff observability must have moved something on
	// this workload (4/40 of the ring over 80 multi-attribute records),
	// and every handoff byte must be visible in the network accounting.
	if ho, ok := m.(interface{ HandedOff() int64 }); ok {
		if ho.HandedOff() == 0 {
			t.Fatal("no records handed off across four joins — the new arcs took ownership of nothing")
		}
	}
	if hb, ok := m.(interface{ HandoffBytes() int64 }); ok {
		if hb.HandoffBytes() <= 0 || hb.HandoffBytes() > joinBytes {
			t.Fatalf("handoff bytes %d not within the %d bytes the joins charged", hb.HandoffBytes(), joinBytes)
		}
	}
	if mem, ok := m.(interface{ Members() int }); ok {
		if got := mem.Members(); got != len(sites) {
			t.Fatalf("membership is %d after the joins, want %d", got, len(sites))
		}
	}

	// The law's core: every pre-join key still resolves, now routed
	// through a ring that includes the new members — so the handed-off
	// arcs answer from the joiners' stores. Queried from an old member
	// AND from a fresh joiner.
	for _, q := range []netsim.SiteID{members[5], cold[0]} {
		recovered := 0
		for _, p := range pubs {
			rec, _, err := m.Lookup(q, p.ID)
			if err != nil {
				continue
			}
			if rec.ComputeID() != p.ID {
				t.Fatalf("lookup of %s from %d returned a different record after the joins", p.ID.Short(), q)
			}
			recovered++
		}
		if frac := float64(recovered) / float64(nRecs); frac < 0.99 {
			t.Fatalf("querier %d: lookup recall %.3f after joins (%d/%d), want >= 0.99", q, frac, recovered, nRecs)
		}
	}
	for qi, r := range recallOf(m, []netsim.SiteID{members[0], cold[1]}, provenance.KeyDomain, domain, want) {
		if r < 0.99 {
			t.Fatalf("querier %d: attribute recall %v after joins, want >= 0.99", qi, r)
		}
	}

	// The new members are full citizens: they publish, and the rest of
	// the federation finds it.
	for i, c := range cold {
		p := PubN(1000+i, c,
			provenance.Attr(provenance.KeyDomain, domain),
			zoneAttr(t, net, c))
		if _, err := m.Publish(p); err != nil {
			t.Fatalf("post-join publish from %d: %v", c, err)
		}
		want[p.ID] = true
	}
	flush(t, cfg, m)
	for qi, r := range recallOf(m, []netsim.SiteID{members[1]}, provenance.KeyDomain, domain, want) {
		if r < 0.99 {
			t.Fatalf("querier %d: recall %v including the joiners' own publications, want >= 0.99", qi, r)
		}
	}
}

// testProactiveRejoin: a crashed-and-recovered site must converge via
// the snapshot path without ANY operator Rejoin call — the model notices
// its own recovery during maintenance.
func testProactiveRejoin(t *testing.T, cfg Config) {
	{
		net, sites := netsim.RandomTopology(netsim.Config{}, 2, 2, proactiveTopoSeed)
		m := cfg.Make(net, sites)
		_, isRejoiner := m.(arch.Rejoiner)
		_, isExposer := m.(siteview.Exposer)
		if !isRejoiner || !isExposer {
			t.Skip("model has no rejoin state transfer")
		}
	}
	net, sites := netsim.RandomTopology(netsim.Config{}, 6, 4, proactiveTopoSeed) // 24 sites
	m := cfg.Make(net, sites)
	ve := m.(siteview.Exposer)
	victim := sites[20]
	domain := provenance.String("proactive")

	pub := func(n int, origin netsim.SiteID) {
		p := PubN(n, origin,
			provenance.Attr(provenance.KeyDomain, domain),
			zoneAttr(t, net, origin))
		if !publishRetry(m, p, 4) {
			t.Fatalf("publish %d failed on a pristine network", n)
		}
	}
	for i := 0; i < 12; i++ {
		pub(i, sites[i%12])
	}
	flushN(t, m, 2)

	net.Fail(victim)
	for w := 0; w < 4; w++ {
		for i := 0; i < 8; i++ {
			pub(100+w*8+i, sites[i%12])
		}
		flushN(t, m, 1) // maintenance observes the victim down
	}
	net.Heal(victim)

	converged := func() bool {
		fp := ve.SiteView(sites[0]).Fingerprint()
		for _, s := range sites[1:] {
			if ve.SiteView(s).Fingerprint() != fp {
				return false
			}
		}
		return true
	}
	// No Rejoin call anywhere below: maintenance rounds alone must take
	// the snapshot path and converge in bounded rounds.
	rounds := 0
	for ; !converged(); rounds++ {
		if rounds >= 2 {
			t.Fatalf("views not converged after %d maintenance rounds with zero operator rejoins", rounds)
		}
		flushN(t, m, 1)
	}
	if pr, ok := m.(interface{ ProactiveRejoins() int64 }); ok {
		if pr.ProactiveRejoins() == 0 {
			t.Fatal("views converged but no proactive rejoin fired — replay converged by luck, the law is vacuous")
		}
	}
	// The snapshot superseded the queued deltas: one more maintenance
	// round sends nothing to the rejoined site.
	msgs := net.Stats().Messages
	flushN(t, m, 1)
	if extra := net.Stats().Messages - msgs; extra != 0 {
		t.Fatalf("%d messages sent after proactive convergence — outboxes were not pruned", extra)
	}
}

// scheduleSeeds are the randomized-schedule law's seeds; three distinct
// interleavings per model (one under -short).
var scheduleSeeds = []uint64{17001, 17002, 17003}

// testMembershipSchedule: the generative oracle. Every model must
// survive randomized join/crash/partition/heal/loss interleavings —
// eventual recall, honest accounting, full admission, and same-seed
// determinism — with failures reported as replayable schedules.
func testMembershipSchedule(t *testing.T, cfg Config) {
	scfg := schedule.Config{
		Sites:        24,
		SitesPerZone: 4,
		Joiners:      3,
		Rounds:       10,
		EventRate:    0.5,
		PubsPerRound: 5,
	}
	seeds := scheduleSeeds
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		sched := schedule.Generate(seed, scfg)
		o, err := schedule.Run(sched, cfg.Make)
		if err != nil {
			t.Fatalf("seed %d: %v\nreplay:\n%s", seed, err, sched)
		}
		if o.Acked == 0 {
			t.Fatalf("seed %d: no publish was ever acknowledged\nreplay:\n%s", seed, sched)
		}
		if o.Recall < 0.99 {
			t.Fatalf("seed %d: recall %.3f after quiescence + %d convergence rounds, want >= 0.99\nreplay:\n%s",
				seed, o.Recall, o.ConvRounds, sched)
		}
		if o.Joins != scfg.Joiners {
			t.Fatalf("seed %d: %d/%d joiners admitted by quiescence\nreplay:\n%s", seed, o.Joins, scfg.Joiners, sched)
		}
		if o.Stats.Messages == 0 || o.Stats.Bytes == 0 {
			t.Fatalf("seed %d: no traffic accounted\nreplay:\n%s", seed, sched)
		}
		o2, err := schedule.Run(sched, cfg.Make)
		if err != nil {
			t.Fatalf("seed %d replay: %v\nreplay:\n%s", seed, err, sched)
		}
		if o != o2 {
			t.Fatalf("seed %d diverged across identical replays:\n%+v\nvs\n%+v\nreplay:\n%s", seed, o, o2, sched)
		}
	}
}
