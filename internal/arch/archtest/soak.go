package archtest

// RecallSoak — the suite's first TIME-WINDOWED correctness law. Every
// other law checks an endpoint (recall after quiescence, bytes after a
// join); this one watches the whole timeline. A soak stream
// (schedule.GenerateSoak) injects periodic crash waves whose victims
// always heal after a bounded number of rounds, plus mild loss bursts,
// and the law asserts on the per-round recall probe series:
//
//   - bounded dips: recall may drop below the threshold when a victim's
//     records go dark — that is the dip the fault stream constructs — but
//     never for more than K CONSECUTIVE rounds, where K is the victim
//     downtime plus a small recovery lag. A model that heals slower than
//     the fault cadence (or not at all) shows an over-budget streak.
//   - capability-gated budget: models that re-home crashed sites' keys
//     while the victims are still down (arch.Stabilizer, today: dht) get
//     NO recovery lag beyond the downtime itself — their recall must
//     return above threshold as fast as stabilization runs.
//   - recovered endpoint: the run ends healed, with recall ≥ 0.99.
//   - per-round determinism: two same-seed observed replays produce
//     identical recall series and identical outcomes — the series is a
//     reproducible artifact, and a failure dumps both the schedule and
//     the JSONL round trace.

import (
	"testing"

	"pass/internal/arch"
	"pass/internal/arch/schedule"
	"pass/internal/netsim"
	"pass/internal/trace"
)

// soakSeeds drive the law's fault streams; one under -short.
var soakSeeds = []uint64{23001, 23002}

const (
	soakProbeSeed = 23999
	// soakThreshold is the recall bar the windowed gate watches. One
	// victim among 16 sites parks ~1/16 of the records below it, so the
	// gate is non-vacuous for locality-bound models.
	soakThreshold = 0.95
	// soakRecoveryLag is the post-heal grace (rounds) for models without
	// live re-homing: the heal lands at a round boundary and recovery
	// paths (proactive rejoin, outbox replay, index refresh) need a tick
	// or two to re-expose the victim's records.
	soakRecoveryLag = 3
)

// soakRecorder implements schedule.Observer: JSONL trace plus the recall
// series the law asserts on.
type soakRecorder struct {
	tr      *trace.Log
	recalls []float64
}

func (r *soakRecorder) OnEvent(round int, e schedule.Event) {
	r.tr.Append(trace.Event{Round: round, Kind: "fault", Op: e.Op.String(), Site: e.Site})
}

func (r *soakRecorder) OnRound(st schedule.RoundStats) {
	r.recalls = append(r.recalls, st.Recall)
	r.tr.Append(trace.Event{
		Round: st.Round, Kind: "round",
		Offered: st.Offered, Acked: st.Acked, Live: st.Live,
		Bytes: st.Bytes, Msgs: st.Msgs, Recall: st.Recall,
	})
}

func testRecallSoak(t *testing.T, cfg Config) {
	rounds := 36
	seeds := soakSeeds
	if testing.Short() {
		rounds = 18
		seeds = seeds[:1]
	}
	scfg := schedule.Config{Sites: 16, SitesPerZone: 4, Rounds: rounds, PubsPerRound: 4}
	opt := schedule.SoakOptions{CrashEvery: 6, DownFor: 3, Victims: 1, LossEvery: 9, LossFor: 2, LossRate: 0.1}

	// Capability gate: live re-homing forfeits the recovery grace.
	budget := opt.DownFor + soakRecoveryLag
	{
		net, sites := netsim.RandomTopology(netsim.Config{}, 2, 2, soakProbeSeed)
		if _, ok := cfg.Make(net, sites).(arch.Stabilizer); ok {
			budget = opt.DownFor
		}
	}

	for _, seed := range seeds {
		sched := schedule.GenerateSoak(seed, scfg, opt)
		run := func() (*soakRecorder, schedule.Outcome) {
			rec := &soakRecorder{tr: trace.New(4 * rounds)}
			o, err := schedule.RunObserved(sched, cfg.Make, rec)
			if err != nil {
				t.Fatalf("seed %d: %v\nreplay:\n%s\ntrace:\n%s", seed, err, sched, rec.tr)
			}
			return rec, o
		}
		rec, o := run()

		// The windowed gate: longest consecutive below-threshold streak.
		worst, cur, from := 0, 0, -1
		for i, r := range rec.recalls {
			if r < soakThreshold {
				cur++
				if cur > worst {
					worst = cur
					from = i - cur + 1
				}
			} else {
				cur = 0
			}
		}
		if worst > budget {
			t.Fatalf("seed %d: recall below %.2f for %d consecutive rounds (budget %d, streak starts round %d)\nreplay:\n%s\ntrace:\n%s",
				seed, soakThreshold, worst, budget, from, sched, rec.tr)
		}
		if o.Recall < 0.99 {
			t.Fatalf("seed %d: soak did not end recovered: recall %.3f\nreplay:\n%s\ntrace:\n%s",
				seed, o.Recall, sched, rec.tr)
		}
		if o.Acked == 0 || o.Stats.Bytes == 0 {
			t.Fatalf("seed %d: vacuous soak (acked=%d bytes=%d)\nreplay:\n%s", seed, o.Acked, o.Stats.Bytes, sched)
		}

		// Per-round determinism: the series, not just the endpoint.
		rec2, o2 := run()
		if o != o2 {
			t.Fatalf("seed %d: outcome diverged across identical soaks:\n%+v\nvs\n%+v\nreplay:\n%s", seed, o, o2, sched)
		}
		if len(rec2.recalls) != len(rec.recalls) {
			t.Fatalf("seed %d: series length diverged: %d vs %d rounds\nreplay:\n%s",
				seed, len(rec.recalls), len(rec2.recalls), sched)
		}
		for i := range rec.recalls {
			if rec.recalls[i] != rec2.recalls[i] {
				t.Fatalf("seed %d: recall series diverged at round %d: %v vs %v\nreplay:\n%s",
					seed, i, rec.recalls[i], rec2.recalls[i], sched)
			}
		}
	}
}
