package archtest

// Per-site view laws and the 10k-site scale sweep.
//
// The siteview refactor gives every distributed-PASS site its own
// versioned picture of the federation, which creates two laws the whole
// roster must obey and one that only view-exposing models can:
//
//   - View convergence: after every publication's digest is fully
//     delivered on a fault-free network, EVERY site answers the same
//     attribute query identically. This holds for all seven models (on a
//     pristine network a flushed index has one truth); for models that
//     implement siteview.Exposer it is additionally asserted at the view
//     level — all per-site fingerprints equal.
//
//   - Split-brain: while a partition separates two site groups, the same
//     query asked from opposite sides returns the two sides' local
//     truths; healing plus full gossip restores convergence. Only
//     view-exposing models can represent this (a shared global index has
//     nothing to diverge), so the scenario runs for Exposer models and is
//     skipped for the rest.
//
//   - Scale: the 10k-site sweep re-checks correctness at paper-straining
//     scale and pins the cost law the indexed lookups bought: resolving
//     one record costs a bounded number of messages, NOT O(sites).

import (
	"fmt"
	"sort"
	"testing"

	"pass/internal/arch"
	"pass/internal/arch/siteview"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

const (
	convTopoSeed  = 6283
	splitTopoSeed = 7071
	sweepTopoSeed = 8128
)

// idsKey canonicalizes a query result for equality comparison.
func idsKey(ids []provenance.ID) string {
	sorted := append([]provenance.ID(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool {
		for b := 0; b < len(sorted[i]); b++ {
			if sorted[i][b] != sorted[j][b] {
				return sorted[i][b] < sorted[j][b]
			}
		}
		return false
	})
	out := make([]byte, 0, len(sorted)*32)
	for _, id := range sorted {
		out = append(out, id[:]...)
	}
	return string(out)
}

// testViewConvergence: the convergence law. After full digest delivery
// with no faults, every site's view answers identically — checked through
// QueryAttr for every model, and through view fingerprints for models
// exposing per-site views.
func testViewConvergence(t *testing.T, cfg Config) {
	net, sites := netsim.RandomTopology(netsim.Config{}, 6, 4, convTopoSeed) // 24 sites
	m := cfg.Make(net, sites)
	domain := provenance.String("conv")
	for i := 0; i < 30; i++ {
		origin := sites[(i*7)%len(sites)]
		p := PubN(i, origin,
			provenance.Attr(provenance.KeyDomain, domain),
			zoneAttr(t, net, origin))
		if _, err := m.Publish(p); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	flushN(t, m, 2)

	var want string
	for i, q := range sites {
		got, _, err := m.QueryAttr(q, provenance.KeyDomain, domain)
		if err != nil {
			t.Fatalf("query from site %d: %v", q, err)
		}
		if len(got) != 30 {
			t.Fatalf("site %d sees %d/30 records after full delivery", q, len(got))
		}
		key := idsKey(got)
		if i == 0 {
			want = key
		} else if key != want {
			t.Fatalf("site %d answers differently from site %d after full delivery", q, sites[0])
		}
	}

	if ve, ok := m.(siteview.Exposer); ok {
		fp := ve.SiteView(sites[0]).Fingerprint()
		for _, s := range sites[1:] {
			if got := ve.SiteView(s).Fingerprint(); got != fp {
				t.Fatalf("site %d view fingerprint %x != site %d's %x after full delivery",
					s, got, sites[0], fp)
			}
		}
	}
}

// testSplitBrainViews: the divergence-then-convergence round trip, for
// models that expose per-site views. Both partition sides keep publishing
// (view-based models commit locally); mid-partition the two sides answer
// with their own local truths, and healing plus gossip converges every
// view again.
func testSplitBrainViews(t *testing.T, cfg Config) {
	net, sites := netsim.RandomTopology(netsim.Config{}, 4, 4, splitTopoSeed) // 16 sites
	m := cfg.Make(net, sites)
	ve, ok := m.(siteview.Exposer)
	if !ok {
		t.Skip("model does not expose per-site views")
	}
	domain := provenance.String("brain")
	left, right := sites[:8], sites[8:]
	net.Partition(left, right)

	wantLeft := make(map[provenance.ID]bool)
	wantRight := make(map[provenance.ID]bool)
	for i := 0; i < 24; i++ {
		var origin netsim.SiteID
		if i%2 == 0 {
			origin = left[(i/2)%len(left)]
		} else {
			origin = right[(i/2)%len(right)]
		}
		p := PubN(i, origin,
			provenance.Attr(provenance.KeyDomain, domain),
			zoneAttr(t, net, origin))
		if !publishRetry(m, p, 4) {
			t.Fatalf("local publish %d failed under partition", i)
		}
		if i%2 == 0 {
			wantLeft[p.ID] = true
		} else {
			wantRight[p.ID] = true
		}
	}
	flushN(t, m, 2)

	// Mid-partition: each side sees exactly its own records.
	check := func(q netsim.SiteID, wantSide, otherSide map[provenance.ID]bool, side string) {
		t.Helper()
		got, _, err := m.QueryAttr(q, provenance.KeyDomain, domain)
		if err != nil {
			t.Fatalf("%s querier %d: %v", side, q, err)
		}
		if len(got) != len(wantSide) {
			t.Fatalf("%s querier %d sees %d records, want its side's %d", side, q, len(got), len(wantSide))
		}
		for _, id := range got {
			if otherSide[id] {
				t.Fatalf("%s querier %d saw a record from across the partition", side, q)
			}
			if !wantSide[id] {
				t.Fatalf("%s querier %d fabricated %s", side, q, id.Short())
			}
		}
	}
	check(left[1], wantLeft, wantRight, "left")
	check(right[1], wantRight, wantLeft, "right")
	if ve.SiteView(left[1]).Fingerprint() == ve.SiteView(right[1]).Fingerprint() {
		t.Fatal("views on opposite partition sides match mid-partition")
	}

	// Heal and gossip: every view converges and every site sees both
	// sides' records.
	net.HealPartition()
	flushN(t, m, 4)
	fp := ve.SiteView(sites[0]).Fingerprint()
	for _, s := range sites[1:] {
		if got := ve.SiteView(s).Fingerprint(); got != fp {
			t.Fatalf("site %d view did not converge after heal", s)
		}
	}
	for _, q := range []netsim.SiteID{left[0], right[0]} {
		got, _, err := m.QueryAttr(q, provenance.KeyDomain, domain)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(wantLeft)+len(wantRight) {
			t.Fatalf("post-heal querier %d sees %d/%d records", q, len(got), len(wantLeft)+len(wantRight))
		}
	}
}

// testSweep10k: correctness and cost laws at 10,000 sites. Publishes a
// modest workload over a 2,500-zone topology, requires exact recall and
// complete ancestry, and pins the indexed-lookup bound: resolving one
// record costs a bounded number of messages (catalog/name-path/view
// routing; a DHT pays O(log n) hops), never O(sites). Skipped under
// -short: building the topology alone is meaningful work.
func testSweep10k(t *testing.T, cfg Config) {
	if testing.Short() {
		t.Skip("10k-site sweep in -short mode")
	}
	net, sites := netsim.RandomTopology(netsim.Config{}, 2500, 4, sweepTopoSeed)
	if len(sites) != 10000 {
		t.Fatalf("topology has %d sites, want 10000", len(sites))
	}
	m := cfg.Make(net, sites)

	const nRecs = 48
	domain := provenance.String("sweep10k")
	want := make(map[provenance.ID]bool, nRecs)
	pubs := make([]arch.Pub, 0, nRecs)
	for i := 0; i < nRecs; i++ {
		origin := sites[(i*211)%len(sites)]
		p := PubN(i, origin,
			provenance.Attr(provenance.KeyDomain, domain),
			zoneAttr(t, net, origin))
		if _, err := m.Publish(p); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
		want[p.ID] = true
		pubs = append(pubs, p)
	}
	flushN(t, m, 1)

	queriers := []netsim.SiteID{sites[1], sites[len(sites)/2], sites[len(sites)-2]}
	for qi, r := range recallOf(m, queriers, provenance.KeyDomain, domain, want) {
		if r != 1.0 {
			t.Fatalf("querier %d: recall %v at 10k sites, want 1.0", qi, r)
		}
	}

	// The per-lookup cost law. 64 messages comfortably covers every
	// indexed path (2–4 messages) and DHT routing (~log2(10k) hops plus
	// the response) while sitting three orders of magnitude below an
	// O(sites) probe loop.
	const lookupBudget = 64
	for i, p := range []arch.Pub{pubs[0], pubs[nRecs/2], pubs[nRecs-1]} {
		before := net.Stats().Messages
		if _, _, err := m.Lookup(queriers[i%len(queriers)], p.ID); err != nil {
			t.Fatalf("lookup %d: %v", i, err)
		}
		if cost := net.Stats().Messages - before; cost > lookupBudget {
			t.Fatalf("lookup cost %d messages at 10k sites (budget %d): probe loop is back", cost, lookupBudget)
		}
	}

	// Ancestry across 12 sites: complete closure, message cost bounded by
	// the chain's shape (per-record routing), not the site count.
	const depth = 12
	chain := make([]provenance.ID, 0, depth)
	for i := 0; i < depth; i++ {
		origin := sites[(i*977)%len(sites)]
		var p arch.Pub
		if i == 0 {
			p = PubN(2000+i, origin, zoneAttr(t, net, origin))
		} else {
			p = DerivedN(2000+i, fmt.Sprintf("step-%d", i), origin, chain[i-1])
		}
		if _, err := m.Publish(p); err != nil {
			t.Fatalf("chain publish %d: %v", i, err)
		}
		chain = append(chain, p.ID)
	}
	flushN(t, m, 1)
	before := net.Stats().Messages
	anc, _, err := m.QueryAncestors(sites[3], chain[depth-1])
	if err != nil {
		t.Fatal(err)
	}
	if len(anc) != depth-1 {
		t.Fatalf("ancestors = %d, want %d", len(anc), depth-1)
	}
	if cost := net.Stats().Messages - before; cost > depth*lookupBudget {
		t.Fatalf("ancestry cost %d messages at 10k sites (budget %d)", cost, depth*lookupBudget)
	}
}
