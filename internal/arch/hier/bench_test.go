package hier

import (
	"testing"

	"pass/internal/arch/archtest"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

// Name-path resolution (nameHome) makes Lookup and ancestry border hops
// O(1) in the server count; the seed probed every server per record,
// which made 10k-server sweeps intractable (ROADMAP scale item).

func scaleModel(tb testing.TB, nSites int) (*netsim.Network, []netsim.SiteID, *Model) {
	tb.Helper()
	net, sites := netsim.RandomTopology(netsim.Config{}, nSites/4, 4, 13)
	m, err := New(net, sites, []string{provenance.KeyZone, provenance.KeySensorClass})
	if err != nil {
		tb.Fatal(err)
	}
	return net, sites, m
}

func TestLookupResolvesNamePathNotProbing(t *testing.T) {
	net, sites, m := scaleModel(t, 100)
	p := archtest.PubAt(1, sites[42], provenance.Attr(provenance.KeyZone, provenance.String("z")))
	if _, err := m.Publish(p); err != nil {
		t.Fatal(err)
	}
	net.ResetStats()
	rec, _, err := m.Lookup(sites[7], p.ID)
	if err != nil || rec.ComputeID() != p.ID {
		t.Fatalf("lookup: %v", err)
	}
	if msgs := net.Stats().Messages; msgs != 2 {
		t.Fatalf("lookup cost %d messages, want 2 (name-path routing)", msgs)
	}
}

func TestAncestryHopsAreBoundedByChainNotServers(t *testing.T) {
	net, sites, m := scaleModel(t, 100)
	const depth = 8
	ids := archtest.ChainAt(t, m, sites[:4], depth, 50)
	net.ResetStats()
	anc, _, err := m.QueryAncestors(sites[90], ids[depth-1])
	if err != nil {
		t.Fatal(err)
	}
	if len(anc) != depth-1 {
		t.Fatalf("ancestors = %d, want %d", len(anc), depth-1)
	}
	// One traversal Call (2 messages) per visited record, regardless of
	// the 100 servers; the seed's probe loop would have cost ~100 calls
	// per record.
	if msgs := net.Stats().Messages; msgs > int64(depth*2) {
		t.Fatalf("ancestry cost %d messages for depth %d; probing is back", msgs, depth)
	}
}

// BenchmarkLookupAtScale exercises the name-directory lookup path at a
// server count where probing would pay thousands of calls per lookup.
func BenchmarkLookupAtScale(b *testing.B) {
	for _, nSites := range []int{100, 2000} {
		b.Run(map[int]string{100: "servers=100", 2000: "servers=2000"}[nSites], func(b *testing.B) {
			_, sites, m := scaleModel(b, nSites)
			ids := make([]provenance.ID, 64)
			for i := range ids {
				p := archtest.PubN(i, sites[(i*31)%len(sites)],
					provenance.Attr(provenance.KeyZone, provenance.String("z")))
				if _, err := m.Publish(p); err != nil {
					b.Fatal(err)
				}
				ids[i] = p.ID
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := m.Lookup(sites[i%len(sites)], ids[i%len(ids)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
