package hier

import (
	"testing"

	"pass/internal/arch"
	"pass/internal/arch/archtest"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

func mk(net *netsim.Network, sites []netsim.SiteID) arch.Model {
	m, err := New(net, sites, []string{provenance.KeyZone, provenance.KeySensorClass})
	if err != nil {
		panic(err)
	}
	return m
}

func TestConformance(t *testing.T) {
	archtest.Run(t, archtest.Config{Make: mk})
}

func TestConstructorValidation(t *testing.T) {
	net, sites := archtest.NewNetwork()
	if _, err := New(net, sites, nil); err == nil {
		t.Fatal("empty ordering accepted")
	}
	if _, err := New(net, nil, []string{"a"}); err == nil {
		t.Fatal("no servers accepted")
	}
}

// seedTwoAttr publishes records tagged (zone, sensor-class) so primary and
// secondary queries can be contrasted.
func seedTwoAttr(t *testing.T, m *Model, sites []netsim.SiteID) {
	t.Helper()
	zones := []string{"boston", "london", "tokyo", "seattle"}
	classes := []string{"camera", "magnetometer"}
	seed := byte(1)
	for _, z := range zones {
		for _, c := range classes {
			p := archtest.PubAt(seed, sites[0],
				provenance.Attr(provenance.KeyZone, provenance.String(z)),
				provenance.Attr(provenance.KeySensorClass, provenance.String(c)))
			if _, err := m.Publish(p); err != nil {
				t.Fatal(err)
			}
			seed++
		}
	}
}

func TestPrimaryQueryTouchesOneServer(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := mk(net, sites).(*Model)
	seedTwoAttr(t, m, sites)

	got, _, err := m.QueryAttr(sites[0], provenance.KeyZone, provenance.String("boston"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("boston records = %d, want 2", len(got))
	}
	if m.LastFanout() != 1 {
		t.Fatalf("primary query contacted %d servers, want 1", m.LastFanout())
	}
}

func TestSecondaryQueryFansOutToAllServers(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := mk(net, sites).(*Model)
	seedTwoAttr(t, m, sites)

	got, _, err := m.QueryAttr(sites[0], provenance.KeySensorClass, provenance.String("camera"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("camera records = %d, want 4", len(got))
	}
	if m.LastFanout() != len(sites) {
		t.Fatalf("secondary query contacted %d servers, want %d (significance-ordering penalty)",
			m.LastFanout(), len(sites))
	}
}

func TestRecordsWithoutPrimaryAreUnfiled(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := mk(net, sites).(*Model)
	p := archtest.PubAt(99, sites[0]) // no zone attribute at all
	if _, err := m.Publish(p); err != nil {
		t.Fatal(err)
	}
	rec, _, err := m.Lookup(sites[1], p.ID)
	if err != nil || rec.ComputeID() != p.ID {
		t.Fatalf("unfiled record lookup: %v", err)
	}
}

func TestSubtreeStickiness(t *testing.T) {
	// All records of one primary value land on the same server.
	net, sites := archtest.NewNetwork()
	m := mk(net, sites).(*Model)
	h1 := m.homeFor("boston")
	h2 := m.homeFor("boston")
	if h1 != h2 {
		t.Fatal("same primary value moved servers")
	}
	h3 := m.homeFor("london")
	h4 := m.homeFor("tokyo")
	h5 := m.homeFor("seattle")
	if h1 == h3 && h3 == h4 && h4 == h5 {
		t.Fatal("all values landed on one server (no partitioning)")
	}
}
