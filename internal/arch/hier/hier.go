// Package hier implements Section IV-B's fourth model: "organize the
// material into a hierarchical namespace and then use the hierarchy to
// partition the data across a distributed network of servers."
//
// A significance ordering of attribute keys defines the hierarchy; the
// first (most significant) attribute's value decides which server owns a
// record. The paper's objection — "hierarchical naming systems are
// fundamentally limited by the need to choose a significance ordering
// ... choosing either one as most significant will make querying on the
// other difficult" — becomes measurable: queries on the primary attribute
// touch one server, queries on any other attribute must fan out to every
// server (experiment E8).
package hier

import (
	"fmt"
	"sync"
	"time"

	"pass/internal/arch"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

// Model is the hierarchical-namespace architecture.
type Model struct {
	mu      sync.Mutex
	net     arch.Network
	servers []netsim.SiteID
	// order is the significance ordering; order[0] partitions the tree.
	order  []string
	stores map[netsim.SiteID]*arch.SiteStore
	// valueHome pins each observed primary value to a server.
	valueHome map[string]netsim.SiteID
	nextHome  int
	// nameHome resolves a record id to the server owning its subtree.
	// Provenance IDs double as hierarchical names here (§II-A): the name
	// encodes the record's path, whose first component is its primary
	// value, so resolving id→server is a local name parse plus the
	// valueHome delegation table — not a federation-wide probe. The seed
	// implementation probed every server per lookup (O(n) calls), which
	// made 10k-server sweeps intractable.
	nameHome map[provenance.ID]netsim.SiteID
	// lastFanout is the number of servers the most recent QueryAttr hit.
	lastFanout int
	rto        *arch.RTO
}

// New builds a hierarchy over servers with the given attribute
// significance ordering (must be non-empty).
func New(net arch.Network, servers []netsim.SiteID, order []string) (*Model, error) {
	if len(order) == 0 {
		return nil, fmt.Errorf("hier: significance ordering must name at least one attribute")
	}
	if len(servers) == 0 {
		return nil, fmt.Errorf("hier: need at least one server")
	}
	m := &Model{
		net:       net,
		servers:   append([]netsim.SiteID(nil), servers...),
		order:     append([]string(nil), order...),
		stores:    make(map[netsim.SiteID]*arch.SiteStore),
		valueHome: make(map[string]netsim.SiteID),
		nameHome:  make(map[provenance.ID]netsim.SiteID),
		rto:       arch.NewRTO(0x41E221),
	}
	for _, s := range servers {
		m.stores[s] = arch.NewSiteStore()
	}
	return m, nil
}

// Name implements arch.Model.
func (m *Model) Name() string { return "hier" }

// Primary returns the most significant attribute key.
func (m *Model) Primary() string { return m.order[0] }

// homeFor assigns (and remembers) the server owning a primary value:
// values are spread round-robin over servers, mimicking subtree
// delegation.
func (m *Model) homeFor(primaryValue string) netsim.SiteID {
	m.mu.Lock()
	defer m.mu.Unlock()
	if s, ok := m.valueHome[primaryValue]; ok {
		return s
	}
	s := m.servers[m.nextHome%len(m.servers)]
	m.nextHome++
	m.valueHome[primaryValue] = s
	return s
}

// primaryOf extracts the record's primary attribute value; records
// without it land in a catch-all subtree.
func (m *Model) primaryOf(rec *provenance.Record) string {
	if v, ok := rec.Get(m.order[0]); ok {
		return v.AsString()
	}
	return "\x00unfiled"
}

// Publish routes the record to the server owning its primary value's
// subtree, retransmitting on lost messages (missing ack).
func (m *Model) Publish(p arch.Pub) (time.Duration, error) {
	home := m.homeFor(m.primaryOf(p.Rec))
	return arch.Retry(m.rto, arch.SendRetries, func() (time.Duration, error) {
		d1, err := m.net.Send(p.Origin, home, p.WireSize())
		if err != nil {
			return d1, err
		}
		m.mu.Lock()
		m.stores[home].Add(p.ID, p.Rec)
		m.nameHome[p.ID] = home
		m.mu.Unlock()
		d2, err := m.net.Send(home, p.Origin, arch.AckWire)
		return d1 + d2, err
	})
}

// Lookup parses the record's name into its hierarchy path and contacts
// the server the path delegates to (nameHome): one round trip, O(1) in
// the server count. An unreachable owning server yields an error after
// retransmission; an unknown name is not found anywhere.
func (m *Model) Lookup(from netsim.SiteID, id provenance.ID) (*provenance.Record, time.Duration, error) {
	m.mu.Lock()
	home, known := m.nameHome[id]
	m.mu.Unlock()
	if !known {
		return nil, 0, fmt.Errorf("hier: %s not in the namespace", id.Short())
	}
	m.mu.Lock()
	rec, ok := m.stores[home].Get(id)
	m.mu.Unlock()
	respSize := arch.RespOverhead
	if ok {
		respSize += len(rec.Encode())
	}
	d, err := arch.Retry(m.rto, arch.SendRetries, func() (time.Duration, error) {
		return m.net.Call(from, home, arch.ReqOverhead+arch.IDWire, respSize)
	})
	if err != nil {
		return nil, d, err
	}
	if !ok {
		return nil, d, fmt.Errorf("hier: namespace points at %d but %s is gone", home, id.Short())
	}
	return rec, d, nil
}

// QueryAttr on the primary attribute touches exactly the owning server;
// on any other attribute it must contact every server (the significance-
// ordering penalty). ServersContacted reports the fan-out of the last
// query for the E8 table.
func (m *Model) QueryAttr(from netsim.SiteID, key string, value provenance.Value) ([]provenance.ID, time.Duration, error) {
	if key == m.order[0] && value.Kind == provenance.KindString {
		home := m.homeFor(value.Str)
		m.mu.Lock()
		ids := append([]provenance.ID(nil), m.stores[home].LookupAttr(key, value)...)
		m.mu.Unlock()
		d, err := arch.Retry(m.rto, arch.SendRetries, func() (time.Duration, error) {
			return m.net.Call(from, home, arch.AttrReqSize(key, value), arch.IDListRespSize(len(ids)))
		})
		if err != nil {
			return nil, d, err
		}
		m.mu.Lock()
		m.lastFanout = 1
		m.mu.Unlock()
		return ids, d, nil
	}
	// Secondary attribute: full fan-out; unreachable servers are skipped
	// (best-effort recall), reachable ones still answer.
	var slowest time.Duration
	var out []provenance.ID
	contacted := 0
	for _, s := range m.servers {
		m.mu.Lock()
		ids := append([]provenance.ID(nil), m.stores[s].LookupAttr(key, value)...)
		m.mu.Unlock()
		d, err := arch.Retry(m.rto, arch.SendRetries, func() (time.Duration, error) {
			return m.net.Call(from, s, arch.AttrReqSize(key, value), arch.IDListRespSize(len(ids)))
		})
		if err != nil {
			if arch.IsUnavailable(err) {
				continue
			}
			return nil, slowest, err
		}
		contacted++
		slowest = arch.MaxDuration(slowest, d)
		out = append(out, ids...)
	}
	m.mu.Lock()
	m.lastFanout = contacted
	m.mu.Unlock()
	return out, slowest, nil
}

// QueryAncestors chases lineage with server-side traversal per subtree;
// cross-subtree edges hop between servers by resolving each border
// record's name path to its owning server.
func (m *Model) QueryAncestors(from netsim.SiteID, id provenance.ID) ([]provenance.ID, time.Duration, error) {
	var total time.Duration
	found := make(map[provenance.ID]struct{})
	var out []provenance.ID
	frontier := []provenance.ID{id}
	guard := 0
	for len(frontier) > 0 {
		guard++
		if guard > 1<<16 {
			return out, total, fmt.Errorf("hier: ancestry traversal did not converge")
		}
		cur := frontier[0]
		frontier = frontier[1:]
		// Resolve cur's server from its name path (nameHome); an unknown
		// name drops out of this best-effort answer, and an unreachable
		// server below drops its sub-DAG the same way.
		m.mu.Lock()
		home, known := m.nameHome[cur]
		m.mu.Unlock()
		if !known {
			continue // unknown record
		}
		m.mu.Lock()
		local, unresolved := m.stores[home].LocalAncestors([]provenance.ID{cur})
		m.mu.Unlock()
		d, err := arch.Retry(m.rto, arch.SendRetries, func() (time.Duration, error) {
			return m.net.Call(from, home, arch.ReqOverhead+arch.IDWire, arch.IDListRespSize(len(local)+len(unresolved)))
		})
		total += d
		if err != nil {
			if arch.IsUnavailable(err) {
				continue
			}
			return nil, total, err
		}
		if cur != id {
			if _, seen := found[cur]; !seen {
				found[cur] = struct{}{}
				out = append(out, cur)
			}
		}
		for _, a := range local {
			if _, seen := found[a]; !seen {
				found[a] = struct{}{}
				out = append(out, a)
			}
		}
		for _, u := range unresolved {
			if _, seen := found[u]; !seen {
				frontier = append(frontier, u)
			}
		}
	}
	return out, total, nil
}

// Tick implements arch.Model.
func (m *Model) Tick() error { return nil }

// LastFanout reports the number of servers the most recent QueryAttr
// contacted (1 for primary-attribute queries, all servers otherwise).
func (m *Model) LastFanout() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastFanout
}
