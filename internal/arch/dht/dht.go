// Package dht implements Section IV-C's distributed-and-unstable model: a
// Chord-style distributed hash table with consistent hashing and
// finger-table routing. Records are stored at the successor of their
// hashed ID; every queriable attribute posting is stored at the successor
// of the hashed (key, value) pair.
//
// The paper's four objections, made measurable:
//
//  1. "storing data objects by hashing a key inherently assumes that the
//     location of these objects is unimportant" — record homes are random
//     sites, so a consumer next door to the producer still pays WAN round
//     trips (E6, the Pier observation);
//  2. "periodic updates of distinct queriable attributes to DHTs scale to
//     only tens of thousands of updaters" — RepublishAll models the
//     periodic re-publication soft-state DHTs require; per-node load
//     grows with updaters × attributes (E9);
//  3. routing costs O(log n) hops per lookup, each a real message;
//  4. "support for efficient recursive queries is so far nonexistent" —
//     ancestry resolution is one full DHT lookup per visited record.
package dht

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"pass/internal/arch"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

// Model is the Chord-style DHT.
type Model struct {
	mu    sync.Mutex
	net   *netsim.Network
	nodes []node // sorted by ring position
	// stores[i] belongs to nodes[i].
	stores []*arch.SiteStore
	// published remembers everything for republish rounds.
	published []arch.Pub
	// hopsTotal / lookups track routing cost.
	hopsTotal int64
	lookups   int64
	rto       *arch.RTO
}

type node struct {
	site netsim.SiteID
	pos  uint64 // ring position
}

// New builds a DHT whose participants are the given sites.
func New(net *netsim.Network, sites []netsim.SiteID) *Model {
	m := &Model{net: net, rto: arch.NewRTO(0xD47A91)}
	for _, s := range sites {
		m.nodes = append(m.nodes, node{site: s, pos: ringPosOfSite(s)})
	}
	sort.Slice(m.nodes, func(i, j int) bool { return m.nodes[i].pos < m.nodes[j].pos })
	m.stores = make([]*arch.SiteStore, len(m.nodes))
	for i := range m.stores {
		m.stores[i] = arch.NewSiteStore()
	}
	return m
}

// Name implements arch.Model.
func (m *Model) Name() string { return "dht" }

func ringPosOfSite(s netsim.SiteID) uint64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(s)+0x5851F42D4C957F2D)
	h := sha256.Sum256(buf[:])
	return binary.LittleEndian.Uint64(h[:8])
}

func ringPos(b []byte) uint64 {
	h := sha256.Sum256(b)
	return binary.LittleEndian.Uint64(h[:8])
}

// successorIdx returns the index of the first node clockwise from pos.
func (m *Model) successorIdx(pos uint64) int {
	i := sort.Search(len(m.nodes), func(i int) bool { return m.nodes[i].pos >= pos })
	if i == len(m.nodes) {
		return 0
	}
	return i
}

// route simulates Chord finger-table routing from one site toward the
// home of pos: each hop halves the remaining clockwise distance, charging
// one network message per hop. It returns the home node index, the
// accumulated latency, and the hop count.
func (m *Model) route(from netsim.SiteID, pos uint64, msgSize int) (int, time.Duration, int, error) {
	// A crashed originator cannot route at all; fail fast instead of
	// misreading its own ErrSiteDown as dead finger targets and scanning
	// the whole ring.
	if m.net.IsDown(from) {
		return 0, 0, 0, fmt.Errorf("%w: routing origin %d", netsim.ErrSiteDown, from)
	}
	homeIdx := m.successorIdx(pos)
	// Current position on the ring = the node owning the querier's hash;
	// route by jumping fingers: each finger jump moves to the successor
	// of cur + 2^k for the largest useful k — equivalent to halving the
	// clockwise gap. We simulate the standard O(log n) path.
	curIdx := m.successorIdx(ringPosOfSite(from))
	var total time.Duration
	hops := 0
	curSite := from
	for curIdx != homeIdx {
		gap := m.nodes[homeIdx].pos - m.nodes[curIdx].pos // modular arithmetic via uint64 wraparound
		// Largest power-of-two jump not exceeding the gap.
		jump := uint64(1) << 63
		for jump > gap && jump > 1 {
			jump >>= 1
		}
		nextIdx := m.successorIdx(m.nodes[curIdx].pos + jump)
		if nextIdx == curIdx {
			nextIdx = (curIdx + 1) % len(m.nodes) // guarantee progress
		}
		// A dead or partitioned finger target costs nothing on the wire;
		// Chord falls back to successively closer successors until it
		// reaches a live node — or the home itself, whose unreachability
		// fails the route (the data holder is gone). Lost messages are
		// NOT routed around: the sender only discovers the loss by
		// timeout, and the caller retransmits the whole operation.
		d, err := m.net.Send(curSite, m.nodes[nextIdx].site, msgSize)
		for err != nil && (errors.Is(err, netsim.ErrSiteDown) || errors.Is(err, netsim.ErrPartitioned)) && nextIdx != homeIdx {
			nextIdx = (nextIdx + 1) % len(m.nodes)
			d, err = m.net.Send(curSite, m.nodes[nextIdx].site, msgSize)
		}
		if err != nil {
			return 0, total, hops, err
		}
		total += d
		hops++
		curSite = m.nodes[nextIdx].site
		curIdx = nextIdx
		if hops > len(m.nodes)+64 {
			return 0, total, hops, fmt.Errorf("dht: routing did not converge")
		}
	}
	m.mu.Lock()
	m.hopsTotal += int64(hops)
	m.lookups++
	m.mu.Unlock()
	return homeIdx, total, hops, nil
}

// Publish routes the record to successor(hash(id)) and one posting per
// attribute to successor(hash(key,value)); the "distinct queriable
// attributes" cost of Section IV-C. Each placement retransmits
// independently on lost messages (a publish touching five homes does not
// restart from scratch because one acknowledgement dropped), so loss
// costs bandwidth and latency before it costs recall; a placement whose
// retransmissions all fail leaves the publish partially indexed and
// returns an error — re-offering the same Pub completes it
// (idempotence).
func (m *Model) Publish(p arch.Pub) (time.Duration, error) {
	d, err := m.publishOnce(p)
	if err != nil {
		return d, err
	}
	m.mu.Lock()
	m.published = append(m.published, p)
	m.mu.Unlock()
	return d, nil
}

func (m *Model) publishOnce(p arch.Pub) (time.Duration, error) {
	total, err := arch.Retry(m.rto, arch.SendRetries, func() (time.Duration, error) {
		homeIdx, d1, _, err := m.route(p.Origin, ringPos(p.ID[:]), p.WireSize())
		if err != nil {
			return d1, err
		}
		m.mu.Lock()
		m.stores[homeIdx].Add(p.ID, p.Rec)
		m.mu.Unlock()
		// Ack straight back; a lost ack retransmits the placement.
		dAck, err := m.net.Send(m.nodes[homeIdx].site, p.Origin, arch.AckWire)
		return d1 + dAck, err
	})
	if err != nil {
		return total, err
	}
	// Attribute postings, routed independently (parallel; max latency).
	var attrMax time.Duration
	seen := make(map[string]struct{})
	for _, a := range arch.QueriableAttrs(p.Rec) {
		mk := a.Key + "\x00" + string(a.Value.Canonical())
		if _, dup := seen[mk]; dup {
			continue
		}
		seen[mk] = struct{}{}
		d, err := arch.Retry(m.rto, arch.SendRetries, func() (time.Duration, error) {
			idx, d, _, err := m.route(p.Origin, ringPos([]byte(mk)), arch.ReqOverhead+len(mk)+arch.IDWire)
			if err != nil {
				return d, err
			}
			m.mu.Lock()
			m.stores[idx].Add(p.ID, p.Rec)
			m.mu.Unlock()
			return d, nil
		})
		if err != nil {
			return total + attrMax, err
		}
		attrMax = arch.MaxDuration(attrMax, d)
	}
	return total + attrMax, nil
}

// Lookup routes to the record's home and returns it; lost messages
// retransmit the whole lookup.
func (m *Model) Lookup(from netsim.SiteID, id provenance.ID) (*provenance.Record, time.Duration, error) {
	var rec *provenance.Record
	var ok bool
	d, err := arch.Retry(m.rto, arch.SendRetries, func() (time.Duration, error) {
		homeIdx, d1, _, err := m.route(from, ringPos(id[:]), arch.ReqOverhead+arch.IDWire)
		if err != nil {
			return d1, err
		}
		m.mu.Lock()
		rec, ok = m.stores[homeIdx].Get(id)
		m.mu.Unlock()
		respSize := arch.RespOverhead
		if ok {
			respSize += len(rec.Encode())
		}
		d2, err := m.net.Send(m.nodes[homeIdx].site, from, respSize)
		return d1 + d2, err
	})
	if err != nil {
		return nil, d, err
	}
	if !ok {
		return nil, d, fmt.Errorf("dht: %s not found", id.Short())
	}
	return rec, d, nil
}

// QueryAttr routes to the attribute's home node; lost messages
// retransmit the whole query.
func (m *Model) QueryAttr(from netsim.SiteID, key string, value provenance.Value) ([]provenance.ID, time.Duration, error) {
	mk := key + "\x00" + string(value.Canonical())
	var ids []provenance.ID
	d, err := arch.Retry(m.rto, arch.SendRetries, func() (time.Duration, error) {
		homeIdx, d1, _, err := m.route(from, ringPos([]byte(mk)), arch.AttrReqSize(key, value))
		if err != nil {
			return d1, err
		}
		m.mu.Lock()
		ids = append([]provenance.ID(nil), m.stores[homeIdx].LookupAttr(key, value)...)
		m.mu.Unlock()
		d2, err := m.net.Send(m.nodes[homeIdx].site, from, arch.IDListRespSize(len(ids)))
		return d1 + d2, err
	})
	if err != nil {
		return nil, d, err
	}
	return ids, d, nil
}

// QueryAncestors performs one full DHT lookup per visited record: "support
// for efficient recursive queries is so far nonexistent."
func (m *Model) QueryAncestors(from netsim.SiteID, id provenance.ID) ([]provenance.ID, time.Duration, error) {
	var total time.Duration
	visited := make(map[provenance.ID]struct{})
	var out []provenance.ID
	frontier := []provenance.ID{id}
	for len(frontier) > 0 {
		var next []provenance.ID
		for _, cur := range frontier {
			rec, d, err := m.Lookup(from, cur)
			total += d
			if err != nil {
				if cur == id {
					return nil, total, err
				}
				continue
			}
			for _, parent := range rec.Parents {
				if _, seen := visited[parent]; seen {
					continue
				}
				visited[parent] = struct{}{}
				out = append(out, parent)
				next = append(next, parent)
			}
		}
		frontier = next
	}
	return out, total, nil
}

// Tick runs one republish round: every published record's postings are
// pushed again (DHT soft state decays without refresh). This is the
// update load that Section IV-C says scales to only tens of thousands of
// updaters. Records whose home is unreachable this round are skipped —
// the next republish round retries them — so one crashed node cannot
// stall everyone else's refresh.
func (m *Model) Tick() error {
	m.mu.Lock()
	pubs := append([]arch.Pub(nil), m.published...)
	m.mu.Unlock()
	for _, p := range pubs {
		if _, err := m.publishOnce(p); err != nil {
			if arch.IsUnavailable(err) {
				continue
			}
			return err
		}
	}
	return nil
}

// AvgHops reports the mean routing hops per lookup so far.
func (m *Model) AvgHops() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.lookups == 0 {
		return 0
	}
	return float64(m.hopsTotal) / float64(m.lookups)
}

// NodeLoad returns per-node stored record counts (load imbalance and E9's
// per-node update load proxy).
func (m *Model) NodeLoad() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int, len(m.stores))
	for i, st := range m.stores {
		out[i] = st.Len()
	}
	return out
}

// HomeOf exposes record placement (tests: placement ignores locality).
func (m *Model) HomeOf(id provenance.ID) netsim.SiteID {
	return m.nodes[m.successorIdx(ringPos(id[:]))].site
}
