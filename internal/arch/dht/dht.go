// Package dht implements Section IV-C's distributed-and-unstable model: a
// Chord-style distributed hash table with consistent hashing and
// finger-table routing. Records are stored at the successor of their
// hashed ID; every queriable attribute posting is stored at the successor
// of the hashed (key, value) pair.
//
// The paper's four objections, made measurable:
//
//  1. "storing data objects by hashing a key inherently assumes that the
//     location of these objects is unimportant" — record homes are random
//     sites, so a consumer next door to the producer still pays WAN round
//     trips (E6, the Pier observation);
//  2. "periodic updates of distinct queriable attributes to DHTs scale to
//     only tens of thousands of updaters" — RepublishAll models the
//     periodic re-publication soft-state DHTs require; per-node load
//     grows with updaters × attributes (E9);
//  3. routing costs O(log n) hops per lookup, each a real message;
//  4. "support for efficient recursive queries is so far nonexistent" —
//     ancestry resolution is one full DHT lookup per visited record.
//
// # Churn recovery
//
// The ring survives membership change the way Chord does (E16, the
// KeyRehoming law). Each placement is replicated to the home's first
// ReplicaFanout ring successors (successor-list replication, charged on
// the wire, surviving runs of up to ReplicaFanout adjacent crashes), and a
// periodic Stabilize round — implementing arch.Stabilizer — probes each
// member's successor list, removes crashed members from the ring, promotes
// the replicas their successors already hold into primary ownership, and
// re-establishes the replication invariant along the repaired successor
// links. All repair traffic is charged in bytes and messages: churn
// tolerance has a measurable price, which is exactly the paper's point
// about DHT maintenance load.
//
// # Elastic membership
//
// Arrivals are the other half of "sites come and go" (E17, the
// JoinHandoff law). Join — implementing arch.Joiner — splices a cold
// node into the ring: the joiner contacts any live member, the contact
// routes to the joiner's ring position (charged finger hops), and the
// successor owning that arc hands over every record whose placement the
// new node now owns, plus the replica buckets whose source chains now
// run through it — one batched, charged transfer. The next Stabilize
// round re-establishes the replication invariant around the new member;
// the next Tick's republish refreshes every placement against the grown
// ring. HandedOff() exposes the transfer count the way Rehomed() exposes
// promotions.
//
// Departures have a voluntary counterpart too: Leave — implementing
// arch.Leaver — hands the leaver's arc to its ring successor BEFORE the
// exit, shipping only the records the successor's replica bucket is
// missing (a diff, not a snapshot), so a planned departure is strictly
// cheaper than crash-then-stabilize. The LeaveHandoff law pins that
// comparison; Left(), LeaveHandedOff(), and LeaveBytes() expose the
// observables.
package dht

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"pass/internal/arch"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

// SuccessorListLen is how many ring successors each node tracks (the
// Chord successor list). One stabilize round can detect and route around
// runs of up to SuccessorListLen dead members; longer runs are repaired
// over successive rounds.
const SuccessorListLen = 4

// ReplicaFanout is how many ring successors hold a replica of each
// placement. Two replicas survive a pair of adjacent crashes — the
// common case a 10% churn rate produces — at the price of two extra
// (charged) messages per placement; runs of more than ReplicaFanout
// adjacent crashes fall back to the next republish round.
const ReplicaFanout = 2

// Model is the Chord-style DHT.
type Model struct {
	arch.AdmissionSlot
	mu  sync.Mutex
	net arch.Network
	// ring is the current membership snapshot. Stabilize replaces it
	// wholesale (never mutates nodes in place), so an operation that
	// grabbed the pointer keeps a consistent view for its whole run.
	ring *ring
	// published remembers everything for republish rounds.
	published []arch.Pub
	// hopsTotal / lookups track routing cost.
	hopsTotal int64
	lookups   int64
	// rehomed counts records promoted from replica to primary by
	// stabilization (the E16 re-homing column).
	rehomed int64
	// handedOff counts records transferred to joining nodes (the E17
	// handoff column); handoffBytes is their wire cost.
	handedOff    int64
	handoffBytes int64
	// left counts voluntary departures (arch.Leaver); leaveHandedOff and
	// leaveBytes are what those departures moved and what the moving cost
	// — the E17 leave columns and the LeaveHandoff law's observables.
	left           int64
	leaveHandedOff int64
	leaveBytes     int64
	rto            *arch.RTO
}

// ring is one immutable membership snapshot: nodes sorted by ring
// position, with each node's primary store and the replicas it holds for
// its nearest predecessors (successor-list replication). Replicas are
// bucketed by the SOURCE node's ring position, so when a member dies its
// successor promotes exactly the dead node's records — never a still-live
// neighbour's copies.
type ring struct {
	nodes    []node
	stores   []*arch.SiteStore
	replicas []map[uint64]*arch.SiteStore
}

type node struct {
	site netsim.SiteID
	pos  uint64 // ring position
}

// New builds a DHT whose participants are the given sites.
func New(net arch.Network, sites []netsim.SiteID) *Model {
	m := &Model{net: net, rto: arch.NewRTO(0xD47A91)}
	r := &ring{}
	for _, s := range sites {
		r.nodes = append(r.nodes, node{site: s, pos: ringPosOfSite(s)})
	}
	sort.Slice(r.nodes, func(i, j int) bool { return r.nodes[i].pos < r.nodes[j].pos })
	r.stores = make([]*arch.SiteStore, len(r.nodes))
	r.replicas = make([]map[uint64]*arch.SiteStore, len(r.nodes))
	for i := range r.stores {
		r.stores[i] = arch.NewSiteStore()
		r.replicas[i] = make(map[uint64]*arch.SiteStore)
	}
	m.ring = r
	return m
}

// Name implements arch.Model.
func (m *Model) Name() string { return "dht" }

// snapshot returns the current membership ring.
func (m *Model) snapshot() *ring {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ring
}

func ringPosOfSite(s netsim.SiteID) uint64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(s)+0x5851F42D4C957F2D)
	h := sha256.Sum256(buf[:])
	return binary.LittleEndian.Uint64(h[:8])
}

func ringPos(b []byte) uint64 {
	h := sha256.Sum256(b)
	return binary.LittleEndian.Uint64(h[:8])
}

// successorIdx returns the index of the first node clockwise from pos.
func (r *ring) successorIdx(pos uint64) int {
	i := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].pos >= pos })
	if i == len(r.nodes) {
		return 0
	}
	return i
}

// route simulates Chord finger-table routing from one site toward the
// home of pos: each hop halves the remaining clockwise distance, charging
// one network message per hop. It returns the home node index (within r),
// the accumulated latency, and the hop count.
func (m *Model) route(r *ring, from netsim.SiteID, pos uint64, msgSize int) (int, time.Duration, int, error) {
	// A crashed originator cannot route at all; fail fast instead of
	// misreading its own ErrSiteDown as dead finger targets and scanning
	// the whole ring.
	if m.net.IsDown(from) {
		return 0, 0, 0, fmt.Errorf("%w: routing origin %d", netsim.ErrSiteDown, from)
	}
	homeIdx := r.successorIdx(pos)
	// Current position on the ring = the node owning the querier's hash;
	// route by jumping fingers: each finger jump moves to the successor
	// of cur + 2^k for the largest useful k — equivalent to halving the
	// clockwise gap. We simulate the standard O(log n) path.
	curIdx := r.successorIdx(ringPosOfSite(from))
	var total time.Duration
	hops := 0
	curSite := from
	for curIdx != homeIdx {
		gap := r.nodes[homeIdx].pos - r.nodes[curIdx].pos // modular arithmetic via uint64 wraparound
		// Largest power-of-two jump not exceeding the gap.
		jump := uint64(1) << 63
		for jump > gap && jump > 1 {
			jump >>= 1
		}
		nextIdx := r.successorIdx(r.nodes[curIdx].pos + jump)
		if nextIdx == curIdx {
			nextIdx = (curIdx + 1) % len(r.nodes) // guarantee progress
		}
		// A dead or partitioned finger target costs nothing on the wire;
		// Chord falls back to successively closer successors until it
		// reaches a live node — or the home itself, whose unreachability
		// fails the route (the data holder is gone, until a Stabilize
		// round re-homes its keys). Lost messages are NOT routed around:
		// the sender only discovers the loss by timeout, and the caller
		// retransmits the whole operation.
		d, err := m.net.Send(curSite, r.nodes[nextIdx].site, msgSize)
		for err != nil && (errors.Is(err, netsim.ErrSiteDown) || errors.Is(err, netsim.ErrPartitioned)) && nextIdx != homeIdx {
			nextIdx = (nextIdx + 1) % len(r.nodes)
			d, err = m.net.Send(curSite, r.nodes[nextIdx].site, msgSize)
		}
		if err != nil {
			return 0, total, hops, err
		}
		total += d
		hops++
		curSite = r.nodes[nextIdx].site
		curIdx = nextIdx
		if hops > len(r.nodes)+64 {
			return 0, total, hops, fmt.Errorf("dht: routing did not converge")
		}
	}
	m.mu.Lock()
	m.hopsTotal += int64(hops)
	m.lookups++
	m.mu.Unlock()
	return homeIdx, total, hops, nil
}

// replicate pushes a freshly placed record from its home to the home's
// first ReplicaFanout ring successors (successor-list replication). One
// attempt each, fire-and-forget — a replica lost to the network is
// repaired by the next Stabilize round's anti-entropy pass — so the
// bytes are charged but the publish's critical-path latency is not
// extended.
func (m *Model) replicate(r *ring, homeIdx int, id provenance.ID, rec *provenance.Record) {
	for k := 1; k <= ReplicaFanout; k++ {
		succ := (homeIdx + k) % len(r.nodes)
		if succ == homeIdx {
			return // ring smaller than the fanout
		}
		if _, err := m.net.Send(r.nodes[homeIdx].site, r.nodes[succ].site, arch.ReqOverhead+len(rec.Encode())); err != nil {
			continue
		}
		m.mu.Lock()
		r.replicaBucket(succ, r.nodes[homeIdx].pos).Add(id, rec)
		m.mu.Unlock()
	}
}

// replicaBucket returns (creating if needed) the store where node idx
// keeps replicas pushed by the source node at the given ring position.
// Callers hold m.mu.
func (r *ring) replicaBucket(idx int, sourcePos uint64) *arch.SiteStore {
	b := r.replicas[idx][sourcePos]
	if b == nil {
		b = arch.NewSiteStore()
		r.replicas[idx][sourcePos] = b
	}
	return b
}

// Publish routes the record to successor(hash(id)) and one posting per
// attribute to successor(hash(key,value)); the "distinct queriable
// attributes" cost of Section IV-C. Each placement retransmits
// independently on lost messages (a publish touching five homes does not
// restart from scratch because one acknowledgement dropped), so loss
// costs bandwidth and latency before it costs recall; a placement whose
// retransmissions all fail leaves the publish partially indexed and
// returns an error — re-offering the same Pub completes it
// (idempotence).
func (m *Model) Publish(p arch.Pub) (time.Duration, error) {
	var wait time.Duration
	if adm := m.Admission(); adm != nil {
		// Admission at the record's home node: charge the estimated
		// direct exchange (placement + ack) as the service cost; shed
		// publishes never touch the network.
		r := m.snapshot()
		if len(r.nodes) > 0 {
			home := r.nodes[r.successorIdx(ringPos(p.ID[:]))].site
			est, _ := m.net.Latency(p.Origin, home, p.WireSize())
			ack, _ := m.net.Latency(home, p.Origin, arch.AckWire)
			w, err := adm.Offer(int64(p.Origin), est+ack)
			if err != nil {
				return 0, err
			}
			wait = w
		}
	}
	d, err := m.publishOnce(p)
	d += wait
	if err != nil {
		return d, err
	}
	m.mu.Lock()
	m.published = append(m.published, p)
	m.mu.Unlock()
	return d, nil
}

func (m *Model) publishOnce(p arch.Pub) (time.Duration, error) {
	r := m.snapshot()
	total, err := arch.Retry(m.rto, arch.SendRetries, func() (time.Duration, error) {
		homeIdx, d1, _, err := m.route(r, p.Origin, ringPos(p.ID[:]), p.WireSize())
		if err != nil {
			return d1, err
		}
		m.mu.Lock()
		r.stores[homeIdx].Add(p.ID, p.Rec)
		m.mu.Unlock()
		m.replicate(r, homeIdx, p.ID, p.Rec)
		// Ack straight back; a lost ack retransmits the placement.
		dAck, err := m.net.Send(r.nodes[homeIdx].site, p.Origin, arch.AckWire)
		return d1 + dAck, err
	})
	if err != nil {
		return total, err
	}
	// Attribute postings, routed independently (parallel; max latency).
	var attrMax time.Duration
	seen := make(map[string]struct{})
	for _, a := range arch.QueriableAttrs(p.Rec) {
		mk := a.Key + "\x00" + string(a.Value.Canonical())
		if _, dup := seen[mk]; dup {
			continue
		}
		seen[mk] = struct{}{}
		d, err := arch.Retry(m.rto, arch.SendRetries, func() (time.Duration, error) {
			idx, d, _, err := m.route(r, p.Origin, ringPos([]byte(mk)), arch.ReqOverhead+len(mk)+arch.IDWire)
			if err != nil {
				return d, err
			}
			m.mu.Lock()
			r.stores[idx].Add(p.ID, p.Rec)
			m.mu.Unlock()
			m.replicate(r, idx, p.ID, p.Rec)
			return d, nil
		})
		if err != nil {
			return total + attrMax, err
		}
		attrMax = arch.MaxDuration(attrMax, d)
	}
	return total + attrMax, nil
}

// Lookup routes to the record's home and returns it; lost messages
// retransmit the whole lookup.
func (m *Model) Lookup(from netsim.SiteID, id provenance.ID) (*provenance.Record, time.Duration, error) {
	var rec *provenance.Record
	var ok bool
	d, err := arch.Retry(m.rto, arch.SendRetries, func() (time.Duration, error) {
		r := m.snapshot()
		homeIdx, d1, _, err := m.route(r, from, ringPos(id[:]), arch.ReqOverhead+arch.IDWire)
		if err != nil {
			return d1, err
		}
		m.mu.Lock()
		rec, ok = r.stores[homeIdx].Get(id)
		m.mu.Unlock()
		respSize := arch.RespOverhead
		if ok {
			respSize += len(rec.Encode())
		}
		d2, err := m.net.Send(r.nodes[homeIdx].site, from, respSize)
		return d1 + d2, err
	})
	if err != nil {
		return nil, d, err
	}
	if !ok {
		return nil, d, fmt.Errorf("dht: %s not found", id.Short())
	}
	return rec, d, nil
}

// QueryAttr routes to the attribute's home node; lost messages
// retransmit the whole query.
func (m *Model) QueryAttr(from netsim.SiteID, key string, value provenance.Value) ([]provenance.ID, time.Duration, error) {
	mk := key + "\x00" + string(value.Canonical())
	var ids []provenance.ID
	d, err := arch.Retry(m.rto, arch.SendRetries, func() (time.Duration, error) {
		r := m.snapshot()
		homeIdx, d1, _, err := m.route(r, from, ringPos([]byte(mk)), arch.AttrReqSize(key, value))
		if err != nil {
			return d1, err
		}
		m.mu.Lock()
		ids = append([]provenance.ID(nil), r.stores[homeIdx].LookupAttr(key, value)...)
		m.mu.Unlock()
		d2, err := m.net.Send(r.nodes[homeIdx].site, from, arch.IDListRespSize(len(ids)))
		return d1 + d2, err
	})
	if err != nil {
		return nil, d, err
	}
	return ids, d, nil
}

// QueryAncestors performs one full DHT lookup per visited record: "support
// for efficient recursive queries is so far nonexistent."
func (m *Model) QueryAncestors(from netsim.SiteID, id provenance.ID) ([]provenance.ID, time.Duration, error) {
	var total time.Duration
	visited := make(map[provenance.ID]struct{})
	var out []provenance.ID
	frontier := []provenance.ID{id}
	for len(frontier) > 0 {
		var next []provenance.ID
		for _, cur := range frontier {
			rec, d, err := m.Lookup(from, cur)
			total += d
			if err != nil {
				if cur == id {
					return nil, total, err
				}
				continue
			}
			for _, parent := range rec.Parents {
				if _, seen := visited[parent]; seen {
					continue
				}
				visited[parent] = struct{}{}
				out = append(out, parent)
				next = append(next, parent)
			}
		}
		frontier = next
	}
	return out, total, nil
}

// Stabilize implements arch.Stabilizer: one Chord stabilization round.
//
//  1. Probe: every live member pings down its successor list (each probe a
//     charged message) until it reaches a live successor; members whose
//     probes fail with ErrSiteDown are marked departed. Lost or
//     partitioned probes are inconclusive — a slow or cut-off peer is not
//     a crashed one — so membership is left alone for those.
//  2. Repair: departed members are removed from the ring (successors and
//     fingers now resolve past them), and each departed member's first
//     live successor promotes the replicas it already holds into primary
//     ownership — the keys the dead node owned are re-homed without
//     waiting for their origins to republish.
//  3. Re-replicate: along the successor links, every member re-sends its
//     successors the primary records their replica buckets are missing,
//     one batched transfer per link, charged in bytes — restoring the
//     replication invariant after a removal and, because the pass runs
//     every round, repairing replicas that packet loss dropped at
//     publish time.
//
// A run of more than SuccessorListLen adjacent crashes loses the replica
// chain for the run's interior; those keys come back on the next Tick's
// origin republish, which is the DHT's soft-state backstop.
func (m *Model) Stabilize() (time.Duration, error) {
	r := m.snapshot()
	n := len(r.nodes)
	if n < 2 {
		return 0, nil
	}
	var total time.Duration
	dead := make(map[int]bool)
	for i := 0; i < n; i++ {
		if m.net.IsDown(r.nodes[i].site) {
			continue // a crashed member probes nothing
		}
		for k := 1; k <= SuccessorListLen && k < n; k++ {
			j := (i + k) % n
			d, err := m.net.Send(r.nodes[i].site, r.nodes[j].site, arch.AckWire)
			total += d
			if err == nil {
				break
			}
			if errors.Is(err, netsim.ErrSiteDown) {
				dead[j] = true
				continue
			}
			break // lost or partitioned: inconclusive, no removal
		}
	}
	if len(dead) > 0 && len(dead) < n {
		m.mu.Lock()
		// Promote: each departed member's first live successor takes over
		// exactly that member's replica bucket — records a still-live
		// neighbour replicated here stay replicas. Promotion is local
		// (the bucket is already on the successor), so no wire traffic.
		deadPos := make(map[uint64]bool, len(dead))
		for i := 0; i < n; i++ {
			if !dead[i] {
				continue
			}
			deadPos[r.nodes[i].pos] = true
			for k := 1; k < n; k++ {
				j := (i + k) % n
				if dead[j] {
					continue
				}
				if bucket := r.replicas[j][r.nodes[i].pos]; bucket != nil {
					m.rehomed += mergeStores(r.stores[j], bucket)
				}
				break
			}
		}
		nr := &ring{}
		for i := 0; i < n; i++ {
			if dead[i] {
				continue
			}
			// Buckets sourced from departed members are spent: their
			// contents are primary at the promoting successor now.
			for pos := range r.replicas[i] {
				if deadPos[pos] {
					delete(r.replicas[i], pos)
				}
			}
			nr.nodes = append(nr.nodes, r.nodes[i])
			nr.stores = append(nr.stores, r.stores[i])
			nr.replicas = append(nr.replicas, r.replicas[i])
		}
		m.ring = nr
		r = nr
		m.mu.Unlock()
	}

	// Re-replicate along the (possibly repaired) successor links. This
	// anti-entropy pass runs every round, not only after a removal: it is
	// what heals replicas dropped by packet loss at publish time, per
	// replicate's contract, and it is free when nothing is missing.
	nn := len(r.nodes)
	for i := 0; i < nn; i++ {
		for k := 1; k <= ReplicaFanout; k++ {
			j := (i + k) % nn
			if i == j || m.net.IsDown(r.nodes[i].site) || m.net.IsDown(r.nodes[j].site) {
				continue
			}
			m.mu.Lock()
			ids, recs, bytes := missingFrom(r.stores[i], r.replicaBucket(j, r.nodes[i].pos))
			m.mu.Unlock()
			if len(ids) == 0 {
				continue
			}
			d, err := m.net.Send(r.nodes[i].site, r.nodes[j].site, arch.ReqOverhead+bytes)
			total += d
			if err != nil {
				continue // retried by a later round
			}
			m.mu.Lock()
			bucket := r.replicaBucket(j, r.nodes[i].pos)
			for x, id := range ids {
				bucket.Add(id, recs[x])
			}
			m.mu.Unlock()
		}
	}
	return total, nil
}

// Join implements arch.Joiner: splice a cold node into the live ring.
//
//  1. Contact: the joiner announces itself to any live member (via) —
//     one charged round trip, retransmitted on loss.
//  2. Locate: the contact routes to the joiner's ring position with
//     ordinary finger hops (charged), landing on the successor that
//     owns the joiner's arc today.
//  3. Handoff: the successor transfers, in one batched charged message,
//     every record with a placement the new node now owns — placed by
//     hash(id) or by any queriable attribute hashing into the new arc —
//     plus copies of the replica buckets whose source nodes now count
//     the joiner among their first ReplicaFanout successors. The
//     successor keeps its own copies; like any stale placement they age
//     into soft state, refreshed by the next republish round.
//  4. Splice: the membership snapshot is replaced with one including the
//     new node, so the very next lookup routes to it. The next Stabilize
//     round's anti-entropy pass re-establishes the replication invariant
//     around the new member.
//
// A join whose contact, routing, or handoff transfer fails returns an
// unavailable error and changes no membership; re-offering the same Join
// later completes it.
func (m *Model) Join(newSite, via netsim.SiteID) (time.Duration, error) {
	if m.net.IsDown(newSite) {
		return 0, fmt.Errorf("%w: joining node %d", netsim.ErrSiteDown, newSite)
	}
	r := m.snapshot()
	for _, n := range r.nodes {
		if n.site == newSite {
			return 0, fmt.Errorf("dht: site %d is already a ring member", newSite)
		}
	}
	total, err := arch.Retry(m.rto, arch.SendRetries, func() (time.Duration, error) {
		return m.net.Call(newSite, via, arch.ReqOverhead, arch.AckWire)
	})
	if err != nil {
		return total, err
	}
	newPos := ringPosOfSite(newSite)
	succIdx, dRoute, _, err := m.route(r, via, newPos, arch.ReqOverhead)
	total += dRoute
	if err != nil {
		return total, err
	}
	succSite := r.nodes[succIdx].site

	// Build the grown snapshot; it is published only after the handoff
	// lands, so a failed join leaves the old ring untouched.
	ins := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].pos >= newPos })
	nr := &ring{
		nodes:    make([]node, 0, len(r.nodes)+1),
		stores:   make([]*arch.SiteStore, 0, len(r.nodes)+1),
		replicas: make([]map[uint64]*arch.SiteStore, 0, len(r.nodes)+1),
	}
	for i := 0; i <= len(r.nodes); i++ {
		if i == ins {
			nr.nodes = append(nr.nodes, node{site: newSite, pos: newPos})
			nr.stores = append(nr.stores, arch.NewSiteStore())
			nr.replicas = append(nr.replicas, make(map[uint64]*arch.SiteStore))
		}
		if i < len(r.nodes) {
			nr.nodes = append(nr.nodes, r.nodes[i])
			nr.stores = append(nr.stores, r.stores[i])
			nr.replicas = append(nr.replicas, r.replicas[i])
		}
	}
	newIdx := ins
	succNewIdx := (newIdx + 1) % len(nr.nodes)

	// Collect the handoff: primary records whose placement moved, then the
	// replica buckets the joiner's new chain position entitles it to
	// (sources iterated in sorted order so the byte accounting is
	// deterministic run to run).
	m.mu.Lock()
	var ids []provenance.ID
	var recs []*provenance.Record
	bytes := 0
	src := nr.stores[succNewIdx]
	for _, id := range src.IDs() {
		rec, ok := src.Get(id)
		if !ok || !placementMoved(nr, newIdx, id, rec) {
			continue
		}
		ids = append(ids, id)
		recs = append(recs, rec)
		bytes += len(rec.Encode())
	}
	var bucketSrcs []uint64
	for srcPos := range nr.replicas[succNewIdx] {
		if replicatesTo(nr, srcPos, newIdx) {
			bucketSrcs = append(bucketSrcs, srcPos)
		}
	}
	sort.Slice(bucketSrcs, func(i, j int) bool { return bucketSrcs[i] < bucketSrcs[j] })
	for _, srcPos := range bucketSrcs {
		b := nr.replicas[succNewIdx][srcPos]
		for _, id := range b.IDs() {
			if rec, ok := b.Get(id); ok {
				bytes += len(rec.Encode())
			}
		}
	}
	m.mu.Unlock()

	dXfer, err := arch.Retry(m.rto, arch.SendRetries, func() (time.Duration, error) {
		return m.net.Send(succSite, newSite, arch.ReqOverhead+bytes)
	})
	total += dXfer
	if err != nil {
		return total, err
	}

	// Commit: fold the handoff into the joiner's stores and publish the
	// grown ring.
	m.mu.Lock()
	for i, id := range ids {
		nr.stores[newIdx].Add(id, recs[i])
		m.handedOff++
	}
	for _, srcPos := range bucketSrcs {
		m.handedOff += mergeStores(nr.replicaBucket(newIdx, srcPos), nr.replicas[succNewIdx][srcPos])
	}
	m.handoffBytes += int64(bytes)
	m.ring = nr
	m.mu.Unlock()

	// Ack the joiner's admission back to its contact.
	dAck, err := m.net.Send(newSite, via, arch.AckWire)
	total += dAck
	if err != nil && !arch.IsUnavailable(err) {
		return total, err
	}
	return total, nil
}

// Leave implements arch.Leaver: a voluntary, coordinated departure — the
// planned counterpart of a crash. Where a crashed node's keys come back
// only after Stabilize detects the death, promotes replicas, and
// re-replicates along the repaired links (all charged), a leaver hands
// its arc over BEFORE it exits:
//
//  1. Announce: the leaver tells its immediate ring successor it is
//     departing — one charged round trip, retransmitted on loss. The
//     successor must be live and reachable; a leave without it fails
//     unavailable, changes no membership, and can be retried.
//  2. Transfer: the leaver ships, in one batched charged message, only
//     the primary records the successor is actually missing. The
//     successor already holds most of the arc in the replica bucket the
//     leaver pushed to it at publish time, so the transfer is a diff,
//     not a snapshot — the reason a leave is strictly cheaper than
//     crash-then-stabilize (the LeaveHandoff law's comparison).
//  3. Commit: the successor promotes the leaver's replica bucket into
//     primary ownership (local, free), folds in the shipped diff, and
//     the shrunken ring is published — the very next lookup routes the
//     departed arc to the successor. Replica buckets the leaver held
//     for its predecessors vanish with it; the next Stabilize round's
//     re-replication pass rebuilds the invariant at the new chain
//     positions.
//
// The departed site remains a live netsim client — it can still publish
// and query through the ring — it just owns no arc. Leaving again, or
// leaving a site that never joined, is an explicit error.
func (m *Model) Leave(s netsim.SiteID) (time.Duration, error) {
	if m.net.IsDown(s) {
		return 0, fmt.Errorf("%w: leaving node %d", netsim.ErrSiteDown, s)
	}
	r := m.snapshot()
	idx := -1
	for i, n := range r.nodes {
		if n.site == s {
			idx = i
			break
		}
	}
	if idx < 0 {
		return 0, fmt.Errorf("dht: site %d is not a ring member", s)
	}
	if len(r.nodes) < 2 {
		return 0, fmt.Errorf("dht: last member %d cannot leave", s)
	}
	succIdx := (idx + 1) % len(r.nodes)
	succSite := r.nodes[succIdx].site
	if m.net.IsDown(succSite) || m.net.Partitioned(s, succSite) {
		return 0, fmt.Errorf("%w: successor %d unreachable for leaving node %d", netsim.ErrSiteDown, succSite, s)
	}

	total, err := arch.Retry(m.rto, arch.SendRetries, func() (time.Duration, error) {
		return m.net.Call(s, succSite, arch.ReqOverhead, arch.AckWire)
	})
	if err != nil {
		return total, err
	}

	// The diff: primaries the successor holds neither as primary nor in
	// the replica bucket this leaver filled at publish time.
	m.mu.Lock()
	bucket := r.replicaBucket(succIdx, r.nodes[idx].pos)
	var ids []provenance.ID
	var recs []*provenance.Record
	bytes := 0
	for _, id := range r.stores[idx].IDs() {
		if _, have := bucket.Get(id); have {
			continue
		}
		if _, have := r.stores[succIdx].Get(id); have {
			continue
		}
		rec, ok := r.stores[idx].Get(id)
		if !ok {
			continue
		}
		ids = append(ids, id)
		recs = append(recs, rec)
		bytes += len(rec.Encode())
	}
	m.mu.Unlock()

	dXfer, err := arch.Retry(m.rto, arch.SendRetries, func() (time.Duration, error) {
		return m.net.Send(s, succSite, arch.ReqOverhead+bytes)
	})
	total += dXfer
	if err != nil {
		return total, err
	}

	// Commit: promote, fold the diff, publish the shrunken ring. A failed
	// leave never reaches here, so membership is untouched on any error
	// path above.
	m.mu.Lock()
	nr := &ring{
		nodes:    make([]node, 0, len(r.nodes)-1),
		stores:   make([]*arch.SiteStore, 0, len(r.nodes)-1),
		replicas: make([]map[uint64]*arch.SiteStore, 0, len(r.nodes)-1),
	}
	for i := range r.nodes {
		if i == idx {
			continue
		}
		// Buckets sourced at the leaver are spent: their contents become
		// primary at the successor now.
		delete(r.replicas[i], r.nodes[idx].pos)
		nr.nodes = append(nr.nodes, r.nodes[i])
		nr.stores = append(nr.stores, r.stores[i])
		nr.replicas = append(nr.replicas, r.replicas[i])
	}
	succNew := succIdx
	if succIdx > idx {
		succNew--
	}
	moved := mergeStores(nr.stores[succNew], bucket)
	for i, id := range ids {
		if _, have := nr.stores[succNew].Get(id); !have {
			moved++
		}
		nr.stores[succNew].Add(id, recs[i])
	}
	m.left++
	m.leaveHandedOff += moved
	m.leaveBytes += int64(bytes)
	m.ring = nr
	m.mu.Unlock()
	return total, nil
}

// placementMoved reports whether any of the record's placements — the
// hashed id or any hashed queriable attribute — lands on the new node
// under the grown ring. Callers hold m.mu.
func placementMoved(nr *ring, newIdx int, id provenance.ID, rec *provenance.Record) bool {
	if nr.successorIdx(ringPos(id[:])) == newIdx {
		return true
	}
	for _, a := range arch.QueriableAttrs(rec) {
		mk := a.Key + "\x00" + string(a.Value.Canonical())
		if nr.successorIdx(ringPos([]byte(mk))) == newIdx {
			return true
		}
	}
	return false
}

// replicatesTo reports whether the node at newIdx sits in the first
// ReplicaFanout ring successors of the member at sourcePos — i.e. whether
// that member's placements now replicate onto the joiner.
func replicatesTo(nr *ring, sourcePos uint64, newIdx int) bool {
	si := -1
	for i, n := range nr.nodes {
		if n.pos == sourcePos {
			si = i
			break
		}
	}
	if si < 0 {
		return false // source departed; its bucket is spent
	}
	for k := 1; k <= ReplicaFanout; k++ {
		if (si+k)%len(nr.nodes) == newIdx {
			return true
		}
	}
	return false
}

// mergeStores folds every record of src into dst, returning how many were
// new. Callers hold m.mu.
func mergeStores(dst, src *arch.SiteStore) int64 {
	var n int64
	for _, id := range src.IDs() {
		if _, have := dst.Get(id); have {
			continue
		}
		if rec, ok := src.Get(id); ok {
			dst.Add(id, rec)
			n++
		}
	}
	return n
}

// missingFrom lists the records of primary that replica lacks, plus their
// total encoded size (the batched transfer's payload). Callers hold m.mu.
func missingFrom(primary, replica *arch.SiteStore) ([]provenance.ID, []*provenance.Record, int) {
	var ids []provenance.ID
	var recs []*provenance.Record
	bytes := 0
	for _, id := range primary.IDs() {
		if _, have := replica.Get(id); have {
			continue
		}
		rec, ok := primary.Get(id)
		if !ok {
			continue
		}
		ids = append(ids, id)
		recs = append(recs, rec)
		bytes += len(rec.Encode())
	}
	return ids, recs, bytes
}

// Tick runs one maintenance round: a Chord stabilization pass (ring
// repair and key re-homing; see Stabilize) followed by a republish round
// in which every published record's postings are pushed again (DHT soft
// state decays without refresh). This is the update load that Section
// IV-C says scales to only tens of thousands of updaters. Records whose
// home is unreachable this round are skipped — the next republish round
// retries them — so one crashed node cannot stall everyone else's
// refresh.
func (m *Model) Tick() error {
	if adm := m.Admission(); adm != nil {
		adm.Tick()
	}
	if _, err := m.Stabilize(); err != nil {
		return err
	}
	m.mu.Lock()
	pubs := append([]arch.Pub(nil), m.published...)
	m.mu.Unlock()
	for _, p := range pubs {
		if _, err := m.publishOnce(p); err != nil {
			if arch.IsUnavailable(err) {
				continue
			}
			return err
		}
	}
	return nil
}

// AvgHops reports the mean routing hops per lookup so far.
func (m *Model) AvgHops() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.lookups == 0 {
		return 0
	}
	return float64(m.hopsTotal) / float64(m.lookups)
}

// Rehomed reports how many records stabilization promoted from replica to
// primary ownership (the churn experiment's re-homing column).
func (m *Model) Rehomed() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rehomed
}

// HandedOff reports how many records join handoffs have transferred to
// newly admitted nodes (the membership experiment's handoff column).
func (m *Model) HandedOff() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.handedOff
}

// HandoffBytes reports the wire bytes those handoffs cost.
func (m *Model) HandoffBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.handoffBytes
}

// Left reports how many members departed voluntarily through Leave.
func (m *Model) Left() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.left
}

// LeaveHandedOff reports how many records voluntary departures moved to
// their successors (bucket promotions plus the shipped diff).
func (m *Model) LeaveHandedOff() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.leaveHandedOff
}

// LeaveBytes reports the wire bytes the leave diffs cost (announce round
// trips excluded — those are fixed overhead, this is the data moved).
func (m *Model) LeaveBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.leaveBytes
}

// Members reports the current ring membership size (shrinks as Stabilize
// removes crashed nodes, grows as Join admits new ones, and shrinks as
// Leave retires voluntary departures).
func (m *Model) Members() int {
	return len(m.snapshot().nodes)
}

// SampleOps implements arch.OpsSampler: the ring's operational gauges
// for the live metrics surface — membership size plus the cumulative
// stabilize/handoff accounting (records re-homed after crashes, records
// and bytes moved by join and leave handoffs).
func (m *Model) SampleOps(set func(metric string, value int64)) {
	set("members", int64(m.Members()))
	set("rehomed", m.Rehomed())
	set("handed_off", m.HandedOff())
	set("handoff_bytes", m.HandoffBytes())
	set("left", m.Left())
	set("leave_bytes", m.LeaveBytes())
}

// NodeLoad returns per-node stored record counts (load imbalance and E9's
// per-node update load proxy). Primary ownership only; replicas are not
// counted.
func (m *Model) NodeLoad() []int {
	r := m.snapshot()
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int, len(r.stores))
	for i, st := range r.stores {
		out[i] = st.Len()
	}
	return out
}

// HomeOf exposes record placement (tests: placement ignores locality).
func (m *Model) HomeOf(id provenance.ID) netsim.SiteID {
	r := m.snapshot()
	return r.nodes[r.successorIdx(ringPos(id[:]))].site
}
