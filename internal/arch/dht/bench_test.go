package dht

import (
	"testing"

	"pass/internal/arch/archtest"
	"pass/internal/geo"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

// Lookup is the DHT's read path: a finger-routed multi-hop locate plus a
// record fetch. E16's churnRecall probes issue one Lookup per
// acknowledged record per querier, so this is the dominant cost of the
// churn sweeps. Part of `make bench-quick`.

func gridNet(n int) (*netsim.Network, []netsim.SiteID) {
	net := netsim.New(netsim.Config{})
	m := geo.GridLayout(n, 500, 50)
	var sites []netsim.SiteID
	for _, z := range m.Zones() {
		sites = append(sites, net.AddSite("site-"+z.Name, z.Center, z.Name))
	}
	return net, sites
}

// BenchmarkDHTLookup measures finger-routed lookups across a 64-node
// ring with a populated keyspace.
func BenchmarkDHTLookup(b *testing.B) {
	net, sites := gridNet(64)
	m := New(net, sites)
	var ids []provenance.ID
	for i := 0; i < 128; i++ {
		p := archtest.PubAt(byte(i%250+1), sites[i%len(sites)],
			provenance.Attr("seq", provenance.Int64(int64(i))))
		if _, err := m.Publish(p); err != nil {
			b.Fatal(err)
		}
		ids = append(ids, p.ID)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.Lookup(sites[i%len(sites)], ids[i%len(ids)]); err != nil {
			b.Fatal(err)
		}
	}
}
