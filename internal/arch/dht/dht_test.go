package dht

import (
	"testing"

	"pass/internal/arch"
	"pass/internal/arch/archtest"
	"pass/internal/geo"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

func TestConformance(t *testing.T) {
	archtest.Run(t, archtest.Config{
		Make: func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return New(net, sites)
		},
	})
}

// bigRing builds an n-node network on a grid.
func bigRing(n int) (*netsim.Network, []netsim.SiteID, *Model) {
	net := netsim.New(netsim.Config{})
	var sites []netsim.SiteID
	for i := 0; i < n; i++ {
		sites = append(sites, net.AddSite(
			siteName(i), geo.Point{X: float64(i % 8 * 100), Y: float64(i / 8 * 100)}, zoneName(i)))
	}
	return net, sites, New(net, sites)
}

func siteName(i int) string { return "node-" + string(rune('a'+i%26)) + string(rune('0'+i/26)) }
func zoneName(i int) string { return "zone-" + string(rune('0'+i%8)) }

func TestRoutingHopsLogarithmic(t *testing.T) {
	_, sites, m := bigRing(64)
	for i := byte(1); i <= 40; i++ {
		if _, err := m.Publish(archtest.PubAt(i, sites[int(i)%len(sites)])); err != nil {
			t.Fatal(err)
		}
	}
	avg := m.AvgHops()
	// log2(64) = 6; finger routing should stay well under the node count
	// and above zero.
	if avg <= 0 || avg > 10 {
		t.Fatalf("avg hops = %v, want (0, 10] for 64 nodes", avg)
	}
}

func TestPlacementIgnoresLocality(t *testing.T) {
	// Publishing many records from ONE site must scatter them across the
	// ring (that is the DHT's defining flaw for sensor data).
	_, sites, m := bigRing(16)
	homes := make(map[netsim.SiteID]int)
	for i := byte(1); i <= 60; i++ {
		p := archtest.PubAt(i, sites[0])
		if _, err := m.Publish(p); err != nil {
			t.Fatal(err)
		}
		homes[m.HomeOf(p.ID)]++
	}
	if len(homes) < 4 {
		t.Fatalf("records from one site landed on only %d nodes", len(homes))
	}
	if homes[sites[0]] == 60 {
		t.Fatal("all records stayed local — not a DHT")
	}
}

func TestRepublishTickCostsGrow(t *testing.T) {
	net, sites, m := bigRing(8)
	for i := byte(1); i <= 10; i++ {
		if _, err := m.Publish(archtest.PubAt(i, sites[0],
			provenance.Attr("k", provenance.String("v")))); err != nil {
			t.Fatal(err)
		}
	}
	net.ResetStats()
	if err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	afterOne := net.Stats().Messages
	if afterOne == 0 {
		t.Fatal("republish tick sent nothing")
	}
	// Republishing again costs the same again: sustained periodic load.
	if err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	if net.Stats().Messages < 2*afterOne-4 {
		t.Fatalf("second tick cheaper than first: %d vs %d", net.Stats().Messages, afterOne)
	}
}

func TestNodeLoadReported(t *testing.T) {
	_, sites, m := bigRing(8)
	for i := byte(1); i <= 30; i++ {
		if _, err := m.Publish(archtest.PubAt(i, sites[0])); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for _, l := range m.NodeLoad() {
		total += l
	}
	// Each record is stored at its home plus one copy per attribute home
	// (~type), so total >= 30.
	if total < 30 {
		t.Fatalf("total stored = %d, want >= 30", total)
	}
}

func TestAncestryPaysLookupPerRecord(t *testing.T) {
	net, sites, m := bigRing(16)
	ids := archtest.ChainAt(t, m, sites, 10, 100)
	net.ResetStats()
	anc, _, err := m.QueryAncestors(sites[0], ids[len(ids)-1])
	if err != nil {
		t.Fatal(err)
	}
	if len(anc) != 9 {
		t.Fatalf("ancestors = %d, want 9", len(anc))
	}
	// 10 lookups, each >= 1 routed message + response.
	if msgs := net.Stats().Messages; msgs < 20 {
		t.Fatalf("ancestry used only %d messages", msgs)
	}
}

// TestStabilizeRehomesKeys: a crashed node's keys move to its successor
// after one stabilize round — no origin republish — and membership
// shrinks so routing stops detouring around the hole.
func TestStabilizeRehomesKeys(t *testing.T) {
	net, sites, m := bigRing(16)
	var ids []provenance.ID
	for i := byte(1); i <= 40; i++ {
		p := archtest.PubAt(i, sites[int(i)%len(sites)],
			provenance.Attr("domain", provenance.String("rehome")))
		if _, err := m.Publish(p); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, p.ID)
	}

	victim := m.HomeOf(ids[0])
	querier := sites[0]
	if querier == victim {
		querier = sites[1]
	}
	net.Fail(victim)
	if _, _, err := m.Lookup(querier, ids[0]); err == nil {
		t.Fatal("lookup of a dead-homed key succeeded before stabilization")
	}

	if _, err := m.Stabilize(); err != nil {
		t.Fatal(err)
	}
	if got := m.Members(); got != 15 {
		t.Fatalf("ring has %d members after one crash + stabilize, want 15", got)
	}
	if m.HomeOf(ids[0]) == victim {
		t.Fatal("key still homed at the departed node")
	}
	if m.Rehomed() == 0 {
		t.Fatal("stabilization promoted no replicas")
	}
	// Every key resolves again, from replicas alone (no Tick ran).
	for _, id := range ids {
		rec, _, err := m.Lookup(querier, id)
		if err != nil {
			t.Fatalf("lookup of %s after stabilize: %v", id.Short(), err)
		}
		if rec.ComputeID() != id {
			t.Fatalf("re-homed lookup of %s returned the wrong record", id.Short())
		}
	}
}

// TestStabilizeLeavesHealthyRingAlone: with nobody down, stabilization is
// pure probe traffic — membership and placement must not move.
func TestStabilizeLeavesHealthyRingAlone(t *testing.T) {
	net, sites, m := bigRing(8)
	p := archtest.PubAt(1, sites[0])
	if _, err := m.Publish(p); err != nil {
		t.Fatal(err)
	}
	homeBefore := m.HomeOf(p.ID)
	before := net.Stats().Messages
	if _, err := m.Stabilize(); err != nil {
		t.Fatal(err)
	}
	if m.Members() != 8 {
		t.Fatalf("membership changed on a healthy ring: %d", m.Members())
	}
	if m.HomeOf(p.ID) != homeBefore {
		t.Fatal("placement moved on a healthy ring")
	}
	if net.Stats().Messages == before {
		t.Fatal("stabilization probes were not charged")
	}
}

// TestPartitionDoesNotEvictMembers: a partitioned peer is unreachable but
// not departed; stabilization must leave membership alone so the healed
// partition needs no re-homing.
func TestPartitionDoesNotEvictMembers(t *testing.T) {
	net, sites, m := bigRing(8)
	net.Partition(sites[:4], sites[4:])
	if _, err := m.Stabilize(); err != nil {
		t.Fatal(err)
	}
	if got := m.Members(); got != 8 {
		t.Fatalf("partition evicted members: %d left", got)
	}
}
