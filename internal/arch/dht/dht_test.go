package dht

import (
	"testing"

	"pass/internal/arch"
	"pass/internal/arch/archtest"
	"pass/internal/geo"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

func TestConformance(t *testing.T) {
	archtest.Run(t, archtest.Config{
		Make: func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return New(net, sites)
		},
	})
}

// gridSites registers n sites on a grid network.
func gridSites(net *netsim.Network, n int) []netsim.SiteID {
	var sites []netsim.SiteID
	for i := 0; i < n; i++ {
		sites = append(sites, net.AddSite(
			siteName(i), geo.Point{X: float64(i % 8 * 100), Y: float64(i / 8 * 100)}, zoneName(i)))
	}
	return sites
}

// bigRing builds an n-node network on a grid.
func bigRing(n int) (*netsim.Network, []netsim.SiteID, *Model) {
	net := netsim.New(netsim.Config{})
	sites := gridSites(net, n)
	return net, sites, New(net, sites)
}

func siteName(i int) string { return "node-" + string(rune('a'+i%26)) + string(rune('0'+i/26)) }
func zoneName(i int) string { return "zone-" + string(rune('0'+i%8)) }

func TestRoutingHopsLogarithmic(t *testing.T) {
	_, sites, m := bigRing(64)
	for i := byte(1); i <= 40; i++ {
		if _, err := m.Publish(archtest.PubAt(i, sites[int(i)%len(sites)])); err != nil {
			t.Fatal(err)
		}
	}
	avg := m.AvgHops()
	// log2(64) = 6; finger routing should stay well under the node count
	// and above zero.
	if avg <= 0 || avg > 10 {
		t.Fatalf("avg hops = %v, want (0, 10] for 64 nodes", avg)
	}
}

func TestPlacementIgnoresLocality(t *testing.T) {
	// Publishing many records from ONE site must scatter them across the
	// ring (that is the DHT's defining flaw for sensor data).
	_, sites, m := bigRing(16)
	homes := make(map[netsim.SiteID]int)
	for i := byte(1); i <= 60; i++ {
		p := archtest.PubAt(i, sites[0])
		if _, err := m.Publish(p); err != nil {
			t.Fatal(err)
		}
		homes[m.HomeOf(p.ID)]++
	}
	if len(homes) < 4 {
		t.Fatalf("records from one site landed on only %d nodes", len(homes))
	}
	if homes[sites[0]] == 60 {
		t.Fatal("all records stayed local — not a DHT")
	}
}

func TestRepublishTickCostsGrow(t *testing.T) {
	net, sites, m := bigRing(8)
	for i := byte(1); i <= 10; i++ {
		if _, err := m.Publish(archtest.PubAt(i, sites[0],
			provenance.Attr("k", provenance.String("v")))); err != nil {
			t.Fatal(err)
		}
	}
	net.ResetStats()
	if err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	afterOne := net.Stats().Messages
	if afterOne == 0 {
		t.Fatal("republish tick sent nothing")
	}
	// Republishing again costs the same again: sustained periodic load.
	if err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	if net.Stats().Messages < 2*afterOne-4 {
		t.Fatalf("second tick cheaper than first: %d vs %d", net.Stats().Messages, afterOne)
	}
}

func TestNodeLoadReported(t *testing.T) {
	_, sites, m := bigRing(8)
	for i := byte(1); i <= 30; i++ {
		if _, err := m.Publish(archtest.PubAt(i, sites[0])); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for _, l := range m.NodeLoad() {
		total += l
	}
	// Each record is stored at its home plus one copy per attribute home
	// (~type), so total >= 30.
	if total < 30 {
		t.Fatalf("total stored = %d, want >= 30", total)
	}
}

func TestAncestryPaysLookupPerRecord(t *testing.T) {
	net, sites, m := bigRing(16)
	ids := archtest.ChainAt(t, m, sites, 10, 100)
	net.ResetStats()
	anc, _, err := m.QueryAncestors(sites[0], ids[len(ids)-1])
	if err != nil {
		t.Fatal(err)
	}
	if len(anc) != 9 {
		t.Fatalf("ancestors = %d, want 9", len(anc))
	}
	// 10 lookups, each >= 1 routed message + response.
	if msgs := net.Stats().Messages; msgs < 20 {
		t.Fatalf("ancestry used only %d messages", msgs)
	}
}

// TestStabilizeRehomesKeys: a crashed node's keys move to its successor
// after one stabilize round — no origin republish — and membership
// shrinks so routing stops detouring around the hole.
func TestStabilizeRehomesKeys(t *testing.T) {
	net, sites, m := bigRing(16)
	var ids []provenance.ID
	for i := byte(1); i <= 40; i++ {
		p := archtest.PubAt(i, sites[int(i)%len(sites)],
			provenance.Attr("domain", provenance.String("rehome")))
		if _, err := m.Publish(p); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, p.ID)
	}

	victim := m.HomeOf(ids[0])
	querier := sites[0]
	if querier == victim {
		querier = sites[1]
	}
	net.Fail(victim)
	if _, _, err := m.Lookup(querier, ids[0]); err == nil {
		t.Fatal("lookup of a dead-homed key succeeded before stabilization")
	}

	if _, err := m.Stabilize(); err != nil {
		t.Fatal(err)
	}
	if got := m.Members(); got != 15 {
		t.Fatalf("ring has %d members after one crash + stabilize, want 15", got)
	}
	if m.HomeOf(ids[0]) == victim {
		t.Fatal("key still homed at the departed node")
	}
	if m.Rehomed() == 0 {
		t.Fatal("stabilization promoted no replicas")
	}
	// Every key resolves again, from replicas alone (no Tick ran).
	for _, id := range ids {
		rec, _, err := m.Lookup(querier, id)
		if err != nil {
			t.Fatalf("lookup of %s after stabilize: %v", id.Short(), err)
		}
		if rec.ComputeID() != id {
			t.Fatalf("re-homed lookup of %s returned the wrong record", id.Short())
		}
	}
}

// TestStabilizeLeavesHealthyRingAlone: with nobody down, stabilization is
// pure probe traffic — membership and placement must not move.
func TestStabilizeLeavesHealthyRingAlone(t *testing.T) {
	net, sites, m := bigRing(8)
	p := archtest.PubAt(1, sites[0])
	if _, err := m.Publish(p); err != nil {
		t.Fatal(err)
	}
	homeBefore := m.HomeOf(p.ID)
	before := net.Stats().Messages
	if _, err := m.Stabilize(); err != nil {
		t.Fatal(err)
	}
	if m.Members() != 8 {
		t.Fatalf("membership changed on a healthy ring: %d", m.Members())
	}
	if m.HomeOf(p.ID) != homeBefore {
		t.Fatal("placement moved on a healthy ring")
	}
	if net.Stats().Messages == before {
		t.Fatal("stabilization probes were not charged")
	}
}

// TestJoinHandsOffKeys: a cold node joining a live ring takes ownership
// of its arc — the successor's charged handoff means every key resolves
// through the grown ring immediately, no republish round needed.
func TestJoinHandsOffKeys(t *testing.T) {
	net := netsim.New(netsim.Config{})
	sites := gridSites(net, 16)
	m := New(net, sites[:14])
	var ids []provenance.ID
	for i := byte(1); i <= 60; i++ {
		p := archtest.PubAt(i, sites[int(i)%14],
			provenance.Attr("domain", provenance.String("join")))
		if _, err := m.Publish(p); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, p.ID)
	}

	before := net.Stats().Bytes
	for _, c := range []netsim.SiteID{sites[14], sites[15]} {
		if _, err := m.Join(c, sites[0]); err != nil {
			t.Fatalf("join of %d: %v", c, err)
		}
	}
	if m.Members() != 16 {
		t.Fatalf("members = %d after two joins, want 16", m.Members())
	}
	if m.HandedOff() == 0 {
		t.Fatal("two joins over 60 multi-placement records handed off nothing")
	}
	if hb := m.HandoffBytes(); hb <= 0 || hb > net.Stats().Bytes-before {
		t.Fatalf("handoff bytes %d not within the %d bytes the joins charged", hb, net.Stats().Bytes-before)
	}

	// Some placement must now be homed at a joiner (otherwise the handoff
	// observability above lied), and EVERY key still resolves — including
	// the moved ones, served from the joiner's handed-off store.
	movedHome := false
	for _, id := range ids {
		home := m.HomeOf(id)
		if home == sites[14] || home == sites[15] {
			movedHome = true
		}
		rec, _, err := m.Lookup(sites[1], id)
		if err != nil {
			t.Fatalf("lookup of %s after join: %v", id.Short(), err)
		}
		if rec.ComputeID() != id {
			t.Fatalf("lookup of %s returned the wrong record after join", id.Short())
		}
	}
	if !movedHome && m.HandedOff() > 0 {
		// Records can also be handed off for attribute placements; accept
		// that, but at least the joiners must answer as queriers.
		t.Log("no record id re-homed onto a joiner; handoff was attribute placements")
	}
	// A joiner is a full member: it publishes and queries.
	p := archtest.PubAt(200, sites[15], provenance.Attr("domain", provenance.String("join")))
	if _, err := m.Publish(p); err != nil {
		t.Fatalf("publish from joiner: %v", err)
	}
	if _, _, err := m.Lookup(sites[14], p.ID); err != nil {
		t.Fatalf("lookup from joiner: %v", err)
	}
}

// TestJoinFailsCleanly: joins that cannot complete — the joiner still
// down, the contact dead, or the node already a member — change no
// membership and stay retryable.
func TestJoinFailsCleanly(t *testing.T) {
	net := netsim.New(netsim.Config{})
	sites := gridSites(net, 10)
	m := New(net, sites[:8])
	if _, err := m.Publish(archtest.PubAt(1, sites[0])); err != nil {
		t.Fatal(err)
	}

	net.Fail(sites[8])
	if _, err := m.Join(sites[8], sites[0]); !arch.IsUnavailable(err) {
		t.Fatalf("join of a down node: err = %v, want unavailable", err)
	}
	net.Heal(sites[8])

	net.Fail(sites[0])
	if _, err := m.Join(sites[8], sites[0]); !arch.IsUnavailable(err) {
		t.Fatalf("join via a dead contact: err = %v, want unavailable", err)
	}
	net.Heal(sites[0])
	if m.Members() != 8 {
		t.Fatalf("failed joins changed membership: %d members", m.Members())
	}

	if _, err := m.Join(sites[8], sites[0]); err != nil {
		t.Fatalf("retried join: %v", err)
	}
	if _, err := m.Join(sites[8], sites[1]); err == nil {
		t.Fatal("double join accepted")
	}
	if m.Members() != 9 {
		t.Fatalf("members = %d, want 9", m.Members())
	}
}

// TestJoinThenStabilizeRestoresReplication: after a join, one Stabilize
// round re-establishes the replication invariant around the new member —
// so the joiner itself can crash and its handed-off keys re-home again.
func TestJoinThenStabilizeRestoresReplication(t *testing.T) {
	net := netsim.New(netsim.Config{})
	sites := gridSites(net, 16)
	m := New(net, sites[:15])
	var ids []provenance.ID
	for i := byte(1); i <= 50; i++ {
		p := archtest.PubAt(i, sites[int(i)%15])
		if _, err := m.Publish(p); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, p.ID)
	}
	joiner := sites[15]
	if _, err := m.Join(joiner, sites[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Stabilize(); err != nil { // re-replicates around the joiner
		t.Fatal(err)
	}

	net.Fail(joiner)
	for i := 0; i < 2; i++ {
		if _, err := m.Stabilize(); err != nil {
			t.Fatal(err)
		}
	}
	if m.Members() != 15 {
		t.Fatalf("members = %d after joiner crash + stabilize, want 15", m.Members())
	}
	for _, id := range ids {
		if _, _, err := m.Lookup(sites[0], id); err != nil {
			t.Fatalf("lookup of %s after joiner crash: %v — join skipped re-replication", id.Short(), err)
		}
	}
}

// TestPartitionDoesNotEvictMembers: a partitioned peer is unreachable but
// not departed; stabilization must leave membership alone so the healed
// partition needs no re-homing.
func TestPartitionDoesNotEvictMembers(t *testing.T) {
	net, sites, m := bigRing(8)
	net.Partition(sites[:4], sites[4:])
	if _, err := m.Stabilize(); err != nil {
		t.Fatal(err)
	}
	if got := m.Members(); got != 8 {
		t.Fatalf("partition evicted members: %d left", got)
	}
}

// TestLeaveHandsArcToSuccessor: a voluntary departure moves the leaver's
// records to its ring successor before exit — lookups keep resolving with
// no Stabilize round anywhere — and the transfer is a charged diff, not a
// free promotion.
func TestLeaveHandsArcToSuccessor(t *testing.T) {
	net, sites, m := bigRing(16)
	var pubs []arch.Pub
	for i := byte(1); i <= 60; i++ {
		p := archtest.PubAt(i, sites[int(i)%len(sites)],
			provenance.Attr("domain", provenance.String("leave")))
		if _, err := m.Publish(p); err != nil {
			t.Fatal(err)
		}
		pubs = append(pubs, p)
	}
	leaver := sites[5]
	before := net.Stats().Bytes
	if _, err := m.Leave(leaver); err != nil {
		t.Fatalf("leave: %v", err)
	}
	if got := net.Stats().Bytes - before; got == 0 {
		t.Fatal("leave charged zero bytes — the announce and diff were free")
	}
	if m.Left() != 1 {
		t.Fatalf("left = %d, want 1", m.Left())
	}
	if m.LeaveHandedOff() == 0 {
		t.Fatal("leave moved nothing across 60 records on a 16-node ring")
	}
	if m.Members() != 15 {
		t.Fatalf("membership = %d after the leave, want 15", m.Members())
	}
	// Every record still resolves — including the departed arc, now served
	// by the successor — with zero Stabilize calls.
	for _, p := range pubs {
		rec, _, err := m.Lookup(sites[0], p.ID)
		if err != nil {
			t.Fatalf("lookup of %s after leave: %v", p.ID.Short(), err)
		}
		if rec.ComputeID() != p.ID {
			t.Fatalf("lookup of %s returned a different record after leave", p.ID.Short())
		}
	}
	// The departed site stays a live client: it queries through the ring.
	if _, _, err := m.QueryAttr(leaver, "domain", provenance.String("leave")); err != nil {
		t.Fatalf("departed site cannot query: %v", err)
	}
}

// TestLeavePreconditions: leaves that cannot be coordinated fail cleanly
// and change nothing — down leaver (unavailable, retryable), non-member
// (explicit error), double leave (the site is a non-member by then).
func TestLeavePreconditions(t *testing.T) {
	net, sites, m := bigRing(8)
	if _, err := m.Publish(archtest.PubAt(1, sites[0])); err != nil {
		t.Fatal(err)
	}
	leaver := sites[3]
	net.Fail(leaver)
	if _, err := m.Leave(leaver); !arch.IsUnavailable(err) {
		t.Fatalf("leave of a down site: err = %v, want unavailable", err)
	}
	if m.Members() != 8 {
		t.Fatal("failed leave changed membership")
	}
	net.Heal(leaver)
	if _, err := m.Leave(leaver); err != nil {
		t.Fatalf("leave after heal: %v", err)
	}
	if _, err := m.Leave(leaver); err == nil {
		t.Fatal("double leave accepted")
	}
	if arch.IsUnavailable(func() error { _, err := m.Leave(leaver); return err }()) {
		t.Fatal("double leave reported as transient unavailability, not a caller bug")
	}
	if m.Members() != 7 {
		t.Fatalf("membership = %d, want 7", m.Members())
	}
}

// TestLeaveCheaperThanCrash: the same departure twice — once voluntary,
// once as crash-then-stabilize — on identical rings and workloads. The
// coordinated exit must cost strictly fewer bytes, because the successor
// already replicates most of the arc and promotion needs no repair
// traffic afterwards.
func TestLeaveCheaperThanCrash(t *testing.T) {
	build := func() (*netsim.Network, []netsim.SiteID, *Model) {
		net, sites, m := bigRing(16)
		for i := byte(1); i <= 60; i++ {
			if _, err := m.Publish(archtest.PubAt(i, sites[int(i)%len(sites)],
				provenance.Attr("domain", provenance.String("cmp")))); err != nil {
				t.Fatal(err)
			}
		}
		return net, sites, m
	}

	netA, sitesA, mA := build()
	beforeA := netA.Stats().Bytes
	if _, err := mA.Leave(sitesA[5]); err != nil {
		t.Fatal(err)
	}
	leaveBytes := netA.Stats().Bytes - beforeA

	netB, sitesB, mB := build()
	beforeB := netB.Stats().Bytes
	netB.Fail(sitesB[5])
	for i := 0; i < 3; i++ {
		if _, err := mB.Stabilize(); err != nil {
			t.Fatal(err)
		}
	}
	crashBytes := netB.Stats().Bytes - beforeB

	if leaveBytes >= crashBytes {
		t.Fatalf("voluntary leave cost %d bytes, crash-then-stabilize %d — leave must be cheaper", leaveBytes, crashBytes)
	}
}
