package arch_test

// Failure injection across the distributed models: the paper's
// Reliability criterion says metadata service failures must not corrupt
// state, and the distributed-but-stable models explicitly assume
// "permanent participants with reasonable reliability" — these tests
// check what actually happens when that assumption breaks.

import (
	"testing"

	"pass/internal/arch"
	"pass/internal/arch/archtest"
	"pass/internal/arch/central"
	"pass/internal/arch/feddb"
	"pass/internal/arch/passnet"
	"pass/internal/arch/softstate"
	"pass/internal/provenance"
)

func TestCentralSPOF(t *testing.T) {
	// The warehouse is a single point of failure: with it down, every
	// operation fails everywhere — even for data produced next door.
	net, sites := archtest.NewNetwork()
	m := central.New(net, sites[0])
	p := archtest.PubAt(1, sites[2], provenance.Attr("k", provenance.String("v")))
	if _, err := m.Publish(p); err != nil {
		t.Fatal(err)
	}
	net.Fail(sites[0])
	if _, _, err := m.QueryAttr(sites[2], "k", provenance.String("v")); err == nil {
		t.Fatal("query succeeded with the warehouse down")
	}
	if _, _, err := m.Lookup(sites[2], p.ID); err == nil {
		t.Fatal("lookup succeeded with the warehouse down")
	}
	// Recovery: heal and everything works again (state was never lost).
	net.Heal(sites[0])
	got, _, err := m.QueryAttr(sites[2], "k", provenance.String("v"))
	if err != nil || len(got) != 1 {
		t.Fatalf("after heal: %v, %v", got, err)
	}
}

func TestFeddbDegradedByComponentFailure(t *testing.T) {
	// Federation queries fan out to all components; a down component
	// silently drops out of the best-effort answer (recall degrades, the
	// query does not abort), and local publishes continue.
	net, sites := archtest.NewNetwork()
	m := feddb.New(net, sites, 0)
	pHealthy := archtest.PubAt(1, sites[0], provenance.Attr("k", provenance.String("v")))
	pDoomed := archtest.PubAt(2, sites[3], provenance.Attr("k", provenance.String("v")))
	for _, p := range []arch.Pub{pHealthy, pDoomed} {
		if _, err := m.Publish(p); err != nil {
			t.Fatal(err)
		}
	}
	net.Fail(sites[3])
	got, _, err := m.QueryAttr(sites[0], "k", provenance.String("v"))
	if err != nil {
		t.Fatalf("best-effort fan-out errored: %v", err)
	}
	if len(got) != 1 || got[0] != pHealthy.ID {
		t.Fatalf("degraded query = %v, want only the healthy component's record", got)
	}
	// Publishing at healthy components is unaffected (autonomy).
	if _, err := m.Publish(archtest.PubAt(3, sites[1])); err != nil {
		t.Fatal(err)
	}
	// The down component's data returns with it.
	net.Heal(sites[3])
	got, _, err = m.QueryAttr(sites[0], "k", provenance.String("v"))
	if err != nil || len(got) != 2 {
		t.Fatalf("after heal: %v, %v", got, err)
	}
}

func TestSoftstateRequeuesRefreshWhenIndexNodeDown(t *testing.T) {
	// Soft state's failure mode is staleness, not corruption or loss: a
	// refresh that cannot reach its index node stays pending, invisible
	// to global queries, and is re-pushed on the next refresh round once
	// the node returns.
	net, sites := archtest.NewNetwork()
	m := softstate.New(net, sites, sites[:1], 1)
	if _, err := m.Publish(archtest.PubAt(1, sites[1],
		provenance.Attr("k", provenance.String("v")))); err != nil {
		t.Fatal(err)
	}
	net.Fail(sites[0]) // index node down during the refresh
	if err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	net.Heal(sites[0])
	got, _, err := m.QueryAttr(sites[2], "k", provenance.String("v"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("refresh should still be pending while the node was down")
	}
	if m.PendingCount() != 1 {
		t.Fatalf("pending = %d, want 1 (requeued)", m.PendingCount())
	}
	// Next refresh round delivers the requeued state.
	if err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	got, _, err = m.QueryAttr(sites[2], "k", provenance.String("v"))
	if err != nil || len(got) != 1 {
		t.Fatalf("after recovery tick: %v, %v", got, err)
	}
	// The authoritative copy lived at the producer throughout — only the
	// global view went stale.
}

func TestPassnetLocalOperationSurvivesRemoteFailures(t *testing.T) {
	// Locality pays off under failure: with every remote site down, a
	// site still ingests and queries its own data.
	net, sites := archtest.NewNetwork()
	m := passnet.New(net, sites, passnet.Options{})
	for _, s := range sites[1:] {
		net.Fail(s)
	}
	p := archtest.PubAt(1, sites[0], provenance.Attr("k", provenance.String("v")))
	if _, err := m.Publish(p); err != nil {
		t.Fatalf("local publish failed with remotes down: %v", err)
	}
	got, _, err := m.QueryAttr(sites[0], "k", provenance.String("v"))
	if err != nil || len(got) != 1 {
		t.Fatalf("local query with remotes down: %v, %v", got, err)
	}
	if _, _, err := m.Lookup(sites[0], p.ID); err != nil {
		t.Fatalf("local lookup with remotes down: %v", err)
	}
}

func TestModelsRemainConsistentAfterPartialPublishFailure(t *testing.T) {
	// A publish that fails mid-way (destination down) must not leave a
	// model returning errors forever: after healing, re-publishing the
	// same record converges (publication is idempotent — SiteStore.Add
	// ignores duplicates).
	net, sites := archtest.NewNetwork()
	m := central.New(net, sites[0])
	p := archtest.PubAt(1, sites[2], provenance.Attr("k", provenance.String("v")))
	net.Fail(sites[0])
	if _, err := m.Publish(p); err == nil {
		t.Fatal("publish to failed warehouse succeeded")
	}
	net.Heal(sites[0])
	if _, err := m.Publish(p); err != nil {
		t.Fatal(err)
	}
	got, _, err := m.QueryAttr(sites[1], "k", provenance.String("v"))
	if err != nil || len(got) != 1 {
		t.Fatalf("after retry: %v, %v", got, err)
	}
	var _ arch.Model = m
}
