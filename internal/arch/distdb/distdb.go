// Package distdb implements Section IV-B's first distributed-but-stable
// model: the distributed database. Records and attribute postings are
// hash-partitioned across all sites under one unified schema, and every
// write runs a synchronous two-phase commit to its partition owner and a
// replica — the "strong consistency: full transaction semantics" the
// paper notes "may be overkill for sensor data, given that the provenance
// index will be effectively append-only."
//
// The measurable consequences: each publish costs multiple WAN round
// trips (2PC to the record's owner and replica, plus one update per
// attribute partition), and recursive queries degenerate into one remote
// call per visited record because adjacency is scattered by hash —
// "they have limited ability to process recursive queries."
package distdb

import (
	"fmt"
	"sync"
	"time"

	"pass/internal/arch"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

// Model is the hash-partitioned distributed database.
type Model struct {
	mu       sync.Mutex
	net      arch.Network
	sites    []netsim.SiteID
	stores   map[netsim.SiteID]*arch.SiteStore
	replicas int // synchronous replicas per partition (>=1: owner only)
	rto      *arch.RTO
}

// New builds a distributed database over the given participant sites.
// replicas is the number of synchronous copies per record (minimum 1).
func New(net arch.Network, sites []netsim.SiteID, replicas int) *Model {
	if replicas < 1 {
		replicas = 1
	}
	if replicas > len(sites) {
		replicas = len(sites)
	}
	m := &Model{
		net:      net,
		sites:    append([]netsim.SiteID(nil), sites...),
		stores:   make(map[netsim.SiteID]*arch.SiteStore),
		replicas: replicas,
		rto:      arch.NewRTO(0xD15DB1),
	}
	for _, s := range sites {
		m.stores[s] = arch.NewSiteStore()
	}
	return m
}

// Name implements arch.Model.
func (m *Model) Name() string { return "distdb" }

// ownerOf hashes arbitrary bytes onto a participant.
func (m *Model) ownerOf(b []byte) netsim.SiteID {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return m.sites[h%uint64(len(m.sites))]
}

// replicaSet returns the owner and its replicas-1 successors on the site
// list.
func (m *Model) replicaSet(b []byte) []netsim.SiteID {
	owner := m.ownerOf(b)
	idx := 0
	for i, s := range m.sites {
		if s == owner {
			idx = i
			break
		}
	}
	out := make([]netsim.SiteID, 0, m.replicas)
	for i := 0; i < m.replicas; i++ {
		out = append(out, m.sites[(idx+i)%len(m.sites)])
	}
	return out
}

// twoPhaseCommit charges prepare+vote+commit+ack to every participant and
// applies fn under the lock. Latency is the slowest participant's two
// round trips (phases are parallel across participants, sequential
// between phases).
//
// Fault handling follows the protocol: a participant unreachable during
// phase 1 (after retransmissions) aborts the transaction with no state
// applied anywhere — strong consistency refuses rather than degrades,
// which is exactly the availability cost E14 measures. Once phase 1
// completes the transaction is decided; phase 2 retransmits the commit to
// each participant, and a participant that stays unreachable leaves the
// transaction blocked (the classic 2PC weakness): already-notified
// participants keep their committed state and the caller gets an error.
func (m *Model) twoPhaseCommit(coord netsim.SiteID, parts []netsim.SiteID, payload int, fn func(netsim.SiteID)) (time.Duration, error) {
	var phase1, phase2 time.Duration
	for _, p := range parts {
		d, err := arch.Retry(m.rto, arch.SendRetries, func() (time.Duration, error) {
			return m.net.Call(coord, p, payload, arch.AckWire) // prepare + vote
		})
		if err != nil {
			return arch.MaxDuration(phase1, d), fmt.Errorf("distdb: 2pc abort (prepare): %w", err)
		}
		phase1 = arch.MaxDuration(phase1, d)
	}
	for _, p := range parts {
		d, err := arch.Retry(m.rto, arch.SendRetries, func() (time.Duration, error) {
			return m.net.Call(coord, p, arch.AckWire, arch.AckWire) // commit + ack
		})
		if err != nil {
			return phase1 + arch.MaxDuration(phase2, d), fmt.Errorf("distdb: 2pc blocked (commit): %w", err)
		}
		phase2 = arch.MaxDuration(phase2, d)
		m.mu.Lock()
		fn(p)
		m.mu.Unlock()
	}
	return phase1 + phase2, nil
}

// Publish 2PCs the record to its partition (owner + replicas), then 2PCs
// each attribute posting to that attribute's partition.
func (m *Model) Publish(p arch.Pub) (time.Duration, error) {
	recParts := m.replicaSet(p.ID[:])
	total, err := m.twoPhaseCommit(p.Origin, recParts, p.WireSize(), func(s netsim.SiteID) {
		m.stores[s].Add(p.ID, p.Rec)
	})
	if err != nil {
		return 0, err
	}
	// Attribute postings live on their own partitions (global secondary
	// index). Each distinct (key, value) pair is one more 2PC; they
	// proceed in parallel, so latency takes the max.
	var attrMax time.Duration
	seen := make(map[string]struct{})
	for _, a := range arch.QueriableAttrs(p.Rec) {
		mk := a.Key + "\x00" + string(a.Value.Canonical())
		if _, dup := seen[mk]; dup {
			continue
		}
		seen[mk] = struct{}{}
		parts := m.replicaSet([]byte(mk))
		id, rec := p.ID, p.Rec
		d, err := m.twoPhaseCommit(p.Origin, parts, arch.ReqOverhead+len(mk)+arch.IDWire, func(s netsim.SiteID) {
			m.stores[s].Add(id, rec)
		})
		if err != nil {
			return total, err
		}
		attrMax = arch.MaxDuration(attrMax, d)
	}
	return total + attrMax, nil
}

// Lookup routes to the record's partition owner.
func (m *Model) Lookup(from netsim.SiteID, id provenance.ID) (*provenance.Record, time.Duration, error) {
	owner := m.ownerOf(id[:])
	m.mu.Lock()
	rec, ok := m.stores[owner].Get(id)
	m.mu.Unlock()
	respSize := arch.RespOverhead
	if ok {
		respSize += len(rec.Encode())
	}
	d, err := arch.Retry(m.rto, arch.SendRetries, func() (time.Duration, error) {
		return m.net.Call(from, owner, arch.ReqOverhead+arch.IDWire, respSize)
	})
	if err != nil {
		return nil, d, err
	}
	if !ok {
		return nil, d, fmt.Errorf("distdb: %s not found", id.Short())
	}
	return rec, d, nil
}

// QueryAttr routes to the attribute partition, which holds the full
// postings for that (key, value).
func (m *Model) QueryAttr(from netsim.SiteID, key string, value provenance.Value) ([]provenance.ID, time.Duration, error) {
	mk := key + "\x00" + string(value.Canonical())
	owner := m.ownerOf([]byte(mk))
	m.mu.Lock()
	ids := append([]provenance.ID(nil), m.stores[owner].LookupAttr(key, value)...)
	m.mu.Unlock()
	d, err := arch.Retry(m.rto, arch.SendRetries, func() (time.Duration, error) {
		return m.net.Call(from, owner, arch.AttrReqSize(key, value), arch.IDListRespSize(len(ids)))
	})
	if err != nil {
		return nil, d, err
	}
	return ids, d, nil
}

// QueryAncestors chases parent pointers one remote call per record: the
// hash partitioning scatters adjacency, so no server-side traversal is
// possible. Latency grows linearly with the closure size (E11).
func (m *Model) QueryAncestors(from netsim.SiteID, id provenance.ID) ([]provenance.ID, time.Duration, error) {
	var total time.Duration
	visited := make(map[provenance.ID]struct{})
	var out []provenance.ID
	frontier := []provenance.ID{id}
	for len(frontier) > 0 {
		var next []provenance.ID
		for _, cur := range frontier {
			rec, d, err := m.Lookup(from, cur)
			total += d
			if err != nil {
				if cur == id {
					return nil, total, err
				}
				continue // dangling edge: skip
			}
			for _, parent := range rec.Parents {
				if _, seen := visited[parent]; seen {
					continue
				}
				visited[parent] = struct{}{}
				out = append(out, parent)
				next = append(next, parent)
			}
		}
		frontier = next
	}
	return out, total, nil
}

// Tick implements arch.Model; the distributed database is synchronous.
func (m *Model) Tick() error { return nil }

// PartitionOf exposes placement for tests.
func (m *Model) PartitionOf(id provenance.ID) netsim.SiteID { return m.ownerOf(id[:]) }

// storeCount is used by tests to check replication.
func (m *Model) ReplicaCount(id provenance.ID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, st := range m.stores {
		if _, ok := st.Get(id); ok {
			n++
		}
	}
	return n
}
