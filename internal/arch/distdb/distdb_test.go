package distdb

import (
	"testing"

	"pass/internal/arch"
	"pass/internal/arch/archtest"
	"pass/internal/netsim"
)

func TestConformance(t *testing.T) {
	archtest.Run(t, archtest.Config{
		Make: func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return New(net, sites, 2)
		},
	})
}

func TestSynchronousReplication(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites, 3)
	p := archtest.PubAt(1, sites[0])
	if _, err := m.Publish(p); err != nil {
		t.Fatal(err)
	}
	if got := m.ReplicaCount(p.ID); got < 3 {
		t.Fatalf("replicas = %d, want >= 3", got)
	}
}

func TestReplicasClampedToSites(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites, 100)
	if m.replicas != len(sites) {
		t.Fatalf("replicas = %d, want %d", m.replicas, len(sites))
	}
	m2 := New(net, sites, 0)
	if m2.replicas != 1 {
		t.Fatalf("replicas = %d, want 1", m2.replicas)
	}
}

func TestPublishCostsMultipleRoundTrips(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites, 2)
	net.ResetStats()
	if _, err := m.Publish(archtest.PubAt(1, sites[0])); err != nil {
		t.Fatal(err)
	}
	// 2PC to 2 record replicas = 2 participants x 4 messages = 8, plus
	// one 2PC per synthetic attribute partition (~type) = 8 more.
	if msgs := net.Stats().Messages; msgs < 12 {
		t.Fatalf("2PC publish used only %d messages", msgs)
	}
}

func TestAncestryCostGrowsLinearly(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites, 1)
	ids := archtest.ChainAt(t, m, sites, 12, 50)
	leaf := ids[len(ids)-1]

	net.ResetStats()
	anc, _, err := m.QueryAncestors(sites[0], leaf)
	if err != nil {
		t.Fatal(err)
	}
	if len(anc) != 11 {
		t.Fatalf("ancestors = %d, want 11", len(anc))
	}
	// One Lookup round trip (2 messages) per visited record (12 visits).
	if msgs := net.Stats().Messages; msgs < 24 {
		t.Fatalf("chain of 12 resolved in %d messages; expected >= 24 (no server-side traversal in a hash-partitioned DB)", msgs)
	}
}

func TestPartitioningSpreadsRecords(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites, 1)
	owners := make(map[netsim.SiteID]int)
	for i := byte(1); i <= 40; i++ {
		p := archtest.PubAt(i, sites[0])
		if _, err := m.Publish(p); err != nil {
			t.Fatal(err)
		}
		owners[m.PartitionOf(p.ID)]++
	}
	if len(owners) < 2 {
		t.Fatalf("all records landed on %d partition(s)", len(owners))
	}
}
