// Package feddb implements Section IV-B's second model: the federated
// database. Each site runs an autonomous store "with its own specific
// interface, transactions, concurrency, and schema"; a mediator at the
// querying site provides "the illusion of a unified schema".
//
// The trade the paper predicts, made measurable here:
//
//   - Publishing is purely local (great ingest scalability and locality —
//     data stays at the producer);
//   - every global query must fan out to every component system, and each
//     component charges a schema-translation delay, so "the fact that the
//     components are truly disjoint systems may lead to slow access";
//   - recursive queries hop site to site, translating at each step.
package feddb

import (
	"fmt"
	"sync"
	"time"

	"pass/internal/arch"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

// DefaultTranslation is the per-site schema-translation cost charged on
// every federated request (wrapper/mediator work).
const DefaultTranslation = 2 * time.Millisecond

// Model is the federated database.
type Model struct {
	mu          sync.Mutex
	net         arch.Network
	sites       []netsim.SiteID
	stores      map[netsim.SiteID]*arch.SiteStore
	origin      map[provenance.ID]netsim.SiteID // which component holds each record
	translation time.Duration
	rto         *arch.RTO
}

// New builds a federation over the given autonomous sites. translation
// <= 0 selects DefaultTranslation.
func New(net arch.Network, sites []netsim.SiteID, translation time.Duration) *Model {
	if translation <= 0 {
		translation = DefaultTranslation
	}
	m := &Model{
		net:         net,
		sites:       append([]netsim.SiteID(nil), sites...),
		stores:      make(map[netsim.SiteID]*arch.SiteStore),
		origin:      make(map[provenance.ID]netsim.SiteID),
		translation: translation,
		rto:         arch.NewRTO(0xFEDDB1),
	}
	for _, s := range sites {
		m.stores[s] = arch.NewSiteStore()
	}
	return m
}

// Name implements arch.Model.
func (m *Model) Name() string { return "feddb" }

// Publish commits to the producing site's autonomous store: no WAN
// traffic at all.
func (m *Model) Publish(p arch.Pub) (time.Duration, error) {
	st, ok := m.stores[p.Origin]
	if !ok {
		return 0, fmt.Errorf("feddb: site %d is not a federation member", p.Origin)
	}
	d, err := m.net.Send(p.Origin, p.Origin, p.WireSize()) // loopback commit
	if err != nil {
		return 0, err
	}
	m.mu.Lock()
	st.Add(p.ID, p.Rec)
	m.origin[p.ID] = p.Origin
	m.mu.Unlock()
	return d, nil
}

// Lookup consults the mediator's catalog — the same origin map every
// federation mediator builds while integrating component schemas — and
// contacts exactly the component that holds the record: one translated
// round trip, O(1) in the federation size. (The seed implementation
// probed components in site order, ≈ n/2 calls per lookup, which
// dominated host time past 1,000 sites; the catalog is standard mediator
// machinery, not a new global service — attribute queries below still pay
// the full fan-out that defines this architecture.) A record whose
// component is unreachable (down, partitioned, or lossy after
// retransmission) reports an error until that component returns.
func (m *Model) Lookup(from netsim.SiteID, id provenance.ID) (*provenance.Record, time.Duration, error) {
	m.mu.Lock()
	home, known := m.origin[id]
	m.mu.Unlock()
	if !known {
		return nil, 0, fmt.Errorf("feddb: %s not in any component's exported schema", id.Short())
	}
	m.mu.Lock()
	rec, ok := m.stores[home].Get(id)
	m.mu.Unlock()
	respSize := arch.RespOverhead
	if ok {
		respSize += len(rec.Encode())
	}
	d, err := arch.Retry(m.rto, arch.SendRetries, func() (time.Duration, error) {
		return m.net.Call(from, home, arch.ReqOverhead+arch.IDWire, respSize)
	})
	if err != nil {
		if arch.IsUnavailable(err) {
			return nil, d, fmt.Errorf("feddb: component %d holding %s is unreachable: %w", home, id.Short(), err)
		}
		return nil, d, err
	}
	d += m.translation
	if !ok {
		return nil, d, fmt.Errorf("feddb: catalog points at %d but %s is gone", home, id.Short())
	}
	return rec, d, nil
}

// QueryAttr fans out to every component, translating the query into each
// local schema; latency is the slowest component plus translation, and
// bytes scale with the component count (E5's feddb row). Unreachable
// components are skipped after retransmission — the federated answer is
// best-effort and silently omits what they hold (recall under churn,
// E14).
func (m *Model) QueryAttr(from netsim.SiteID, key string, value provenance.Value) ([]provenance.ID, time.Duration, error) {
	var slowest time.Duration
	var out []provenance.ID
	for _, s := range m.sites {
		m.mu.Lock()
		ids := append([]provenance.ID(nil), m.stores[s].LookupAttr(key, value)...)
		m.mu.Unlock()
		d, err := arch.Retry(m.rto, arch.SendRetries, func() (time.Duration, error) {
			return m.net.Call(from, s, arch.AttrReqSize(key, value), arch.IDListRespSize(len(ids)))
		})
		if err != nil {
			if arch.IsUnavailable(err) {
				continue
			}
			return nil, slowest, err
		}
		slowest = arch.MaxDuration(slowest, d+m.translation)
		out = append(out, ids...)
	}
	return out, slowest, nil
}

// QueryAncestors resolves lineage by server-side traversal within each
// component, hopping to the next component when an edge crosses a
// federation boundary. Each hop pays translation.
func (m *Model) QueryAncestors(from netsim.SiteID, id provenance.ID) ([]provenance.ID, time.Duration, error) {
	var total time.Duration
	found := make(map[provenance.ID]struct{})
	var out []provenance.ID
	frontier := []provenance.ID{id}
	for iter := 0; len(frontier) > 0 && iter <= len(m.sites)*64; iter++ {
		// Locate a component holding the first frontier record.
		cur := frontier[0]
		m.mu.Lock()
		home, ok := m.origin[cur]
		m.mu.Unlock()
		if !ok {
			// Unknown record (e.g. never published): drop it.
			frontier = frontier[1:]
			continue
		}
		m.mu.Lock()
		local, unresolved := m.stores[home].LocalAncestors([]provenance.ID{cur})
		m.mu.Unlock()
		d, err := arch.Retry(m.rto, arch.SendRetries, func() (time.Duration, error) {
			return m.net.Call(from, home, arch.ReqOverhead+arch.IDWire, arch.IDListRespSize(len(local)+len(unresolved)))
		})
		total += d
		if err != nil {
			if arch.IsUnavailable(err) {
				// Component unreachable: its sub-DAG is missing from this
				// best-effort answer.
				frontier = frontier[1:]
				continue
			}
			return nil, total, err
		}
		total += m.translation
		frontier = frontier[1:]
		if cur != id {
			// cur is itself an ancestor whose record we just resolved.
			if _, seen := found[cur]; !seen {
				found[cur] = struct{}{}
				out = append(out, cur)
			}
		}
		for _, a := range local {
			if _, seen := found[a]; !seen {
				found[a] = struct{}{}
				out = append(out, a)
			}
		}
		for _, u := range unresolved {
			if _, seen := found[u]; !seen {
				frontier = append(frontier, u)
			}
		}
	}
	return out, total, nil
}

// Tick implements arch.Model; federation members are autonomous and need
// no global maintenance.
func (m *Model) Tick() error { return nil }

// ComponentRecords reports per-site record counts (tests).
func (m *Model) ComponentRecords(s netsim.SiteID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.stores[s]; ok {
		return st.Len()
	}
	return 0
}
