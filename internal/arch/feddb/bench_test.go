package feddb

import (
	"testing"

	"pass/internal/arch/archtest"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

// The mediator catalog makes Lookup O(1) in the federation size; the seed
// implementation probed ≈ n/2 components per lookup, which dominated host
// time past 1,000 sites (ROADMAP scale item).

func TestLookupUsesCatalogNotProbing(t *testing.T) {
	net, sites := netsim.RandomTopology(netsim.Config{}, 25, 4, 7) // 100 components
	m := New(net, sites, 0)
	p := archtest.PubAt(1, sites[77])
	if _, err := m.Publish(p); err != nil {
		t.Fatal(err)
	}
	net.ResetStats()
	rec, _, err := m.Lookup(sites[3], p.ID)
	if err != nil || rec.ComputeID() != p.ID {
		t.Fatalf("lookup: %v", err)
	}
	// One catalog-routed Call = 2 messages, independent of the 100
	// components (probing would have cost ~156).
	if msgs := net.Stats().Messages; msgs != 2 {
		t.Fatalf("lookup cost %d messages, want 2 (catalog routing)", msgs)
	}
	// An unknown record is refused without touching the network.
	net.ResetStats()
	var ghost provenance.ID
	ghost[5] = 0xAA
	if _, _, err := m.Lookup(sites[3], ghost); err == nil {
		t.Fatal("ghost lookup succeeded")
	}
	if msgs := net.Stats().Messages; msgs != 0 {
		t.Fatalf("ghost lookup cost %d messages, want 0", msgs)
	}
}

// BenchmarkLookupAtScale exercises the indexed lookup path at a site count
// where the seed's probe loop would pay thousands of calls per lookup.
func BenchmarkLookupAtScale(b *testing.B) {
	for _, nSites := range []int{100, 2000} {
		b.Run(map[int]string{100: "sites=100", 2000: "sites=2000"}[nSites], func(b *testing.B) {
			net, sites := netsim.RandomTopology(netsim.Config{}, nSites/4, 4, 11)
			m := New(net, sites, 0)
			ids := make([]provenance.ID, 64)
			for i := range ids {
				p := archtest.PubN(i, sites[(i*31)%len(sites)])
				if _, err := m.Publish(p); err != nil {
					b.Fatal(err)
				}
				ids[i] = p.ID
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := m.Lookup(sites[i%len(sites)], ids[i%len(ids)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
