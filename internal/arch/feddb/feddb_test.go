package feddb

import (
	"testing"
	"time"

	"pass/internal/arch"
	"pass/internal/arch/archtest"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

func TestConformance(t *testing.T) {
	archtest.Run(t, archtest.Config{
		Make: func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return New(net, sites, time.Millisecond)
		},
	})
}

func TestPublishIsPurelyLocal(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites, 0)
	net.ResetStats()
	if _, err := m.Publish(archtest.PubAt(1, sites[2])); err != nil {
		t.Fatal(err)
	}
	st := net.Stats()
	if st.WANBytes != 0 {
		t.Fatalf("federated publish crossed the WAN: %d bytes", st.WANBytes)
	}
	if m.ComponentRecords(sites[2]) != 1 {
		t.Fatal("record not stored at producing component")
	}
}

func TestQueryFansOutToAllComponents(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites, time.Millisecond)
	if _, err := m.Publish(archtest.PubAt(1, sites[0],
		provenance.Attr("k", provenance.String("v")))); err != nil {
		t.Fatal(err)
	}
	net.ResetStats()
	_, d, err := m.QueryAttr(sites[0], "k", provenance.String("v"))
	if err != nil {
		t.Fatal(err)
	}
	// One call per component = 2 messages each.
	if msgs := net.Stats().Messages; msgs != int64(len(sites)*2) {
		t.Fatalf("fan-out used %d messages, want %d", msgs, len(sites)*2)
	}
	// Latency includes at least one translation delay.
	if d < time.Millisecond {
		t.Fatalf("latency %v lacks translation cost", d)
	}
}

func TestPublishOutsideFederationFails(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites[:2], 0)
	if _, err := m.Publish(archtest.PubAt(1, sites[3])); err == nil {
		t.Fatal("publish from non-member accepted")
	}
}

func TestCrossComponentAncestryHops(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites, time.Millisecond)
	ids := archtest.ChainAt(t, m, sites, 8, 40)
	anc, d, err := m.QueryAncestors(sites[0], ids[len(ids)-1])
	if err != nil {
		t.Fatal(err)
	}
	if len(anc) != 7 {
		t.Fatalf("ancestors = %d, want 7", len(anc))
	}
	// Each cross-component hop pays translation; the chain alternates
	// across 4 sites, so there are several hops.
	if d < 3*time.Millisecond {
		t.Fatalf("ancestry latency %v suspiciously low for a cross-component chain", d)
	}
}

func TestDefaultTranslationApplied(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites, 0)
	if m.translation != DefaultTranslation {
		t.Fatalf("translation = %v", m.translation)
	}
}
