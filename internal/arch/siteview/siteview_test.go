package siteview

import (
	"fmt"
	"testing"

	"pass/internal/netsim"
	"pass/internal/provenance"
)

func idN(n int) (id provenance.ID) {
	id[0], id[1] = byte(n), byte(n>>8)
	return
}

func TestApplyOrderingAndIdempotence(t *testing.T) {
	v := NewView(0)
	d1 := NewDelta(1, 1, []provenance.ID{idN(1)}, []string{"k\x00a"})
	d2 := NewDelta(1, 2, []provenance.ID{idN(2)}, []string{"k\x00b"})

	if !v.Apply(d1) {
		t.Fatal("first delivery of seq 1 rejected")
	}
	fp := v.Fingerprint()
	// Duplicate re-delivery: ignored, content unchanged.
	if v.Apply(d1) {
		t.Fatal("duplicate delta applied twice")
	}
	if v.Fingerprint() != fp {
		t.Fatal("duplicate delivery changed the view")
	}
	// A gap (seq 3 before seq 2) must not apply: gossip delivers in order
	// per peer, so a gap can only be a protocol bug.
	d3 := NewDelta(1, 3, []provenance.ID{idN(3)}, nil)
	if v.Apply(d3) {
		t.Fatal("out-of-order delta applied")
	}
	if !v.Apply(d2) {
		t.Fatal("next-in-order delta rejected")
	}
	if v.Seq(1) != 2 {
		t.Fatalf("seq = %d, want 2", v.Seq(1))
	}
	if v.Applied() != 2 || v.Ignored() != 2 {
		t.Fatalf("applied=%d ignored=%d, want 2/2", v.Applied(), v.Ignored())
	}
}

func TestLocateAndSitesFor(t *testing.T) {
	v := NewView(9)
	v.Apply(NewDelta(1, 1, []provenance.ID{idN(1)}, []string{"k\x00a", "k\x00b"}))
	v.Apply(NewDelta(2, 1, []provenance.ID{idN(2)}, []string{"k\x00a"}))

	if home, ok := v.Locate(idN(1)); !ok || home != 1 {
		t.Fatalf("Locate = %d/%v", home, ok)
	}
	if _, ok := v.Locate(idN(99)); ok {
		t.Fatal("located an undelivered record")
	}
	sites := v.SitesFor("k\x00a")
	if len(sites) != 2 || sites[0] != 1 || sites[1] != 2 {
		t.Fatalf("SitesFor(k=a) = %v, want [1 2]", sites)
	}
	if got := v.SitesFor("k\x00b"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("SitesFor(k=b) = %v, want [1]", got)
	}
	if got := v.SitesFor("k\x00missing"); got != nil {
		t.Fatalf("SitesFor(missing) = %v, want nil", got)
	}
	// The inverted index never lists a site the Bloom filter would deny.
	for _, key := range []string{"k\x00a", "k\x00b"} {
		for _, s := range v.SitesFor(key) {
			if !v.MayHold(s, key) {
				t.Fatalf("index lists site %d for %q but filter denies it", s, key)
			}
		}
	}
}

func TestFingerprintConvergence(t *testing.T) {
	// Two views receiving the same deltas — in different orders across
	// origins — converge to the same content fingerprint.
	a, b := NewView(10), NewView(11)
	d1 := NewDelta(1, 1, []provenance.ID{idN(1)}, []string{"k\x00a"})
	d2 := NewDelta(2, 1, []provenance.ID{idN(2)}, []string{"k\x00b"})
	a.Apply(d1)
	a.Apply(d2)
	b.Apply(d2)
	b.Apply(d1)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same deltas, different fingerprints")
	}
	// A view missing one delta diverges.
	c := NewView(12)
	c.Apply(d1)
	if c.Fingerprint() == a.Fingerprint() {
		t.Fatal("partial view matched full view")
	}
	if a.Locations() != 2 || c.Locations() != 1 {
		t.Fatalf("locations %d/%d, want 2/1", a.Locations(), c.Locations())
	}
}

func TestFilterNoFalseNegatives(t *testing.T) {
	f := NewFilter(64)
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = "key\x00" + string(rune('A'+i%26)) + string(rune('0'+i%10))
		f.Add(keys[i])
	}
	for _, k := range keys {
		if !f.MayContain(k) {
			t.Fatalf("false negative for %q", k)
		}
	}
	if f.SizeBytes() <= 0 {
		t.Fatal("filter has no wire size")
	}
}

func TestFilterGrowthKeepsNoFalseNegatives(t *testing.T) {
	// Deltas from one origin vary in size (batch sizes differ per gossip
	// round), so the per-origin filter must absorb differently-sized wire
	// filters without ever losing a delivered key: bit positions depend
	// on the array length, so growth rebuilds rather than ORs.
	v := NewView(0)
	var allKeys []string
	seq := uint64(0)
	for _, batch := range []int{1, 12, 3, 40, 1} {
		keys := make([]string, batch)
		for i := range keys {
			keys[i] = fmt.Sprintf("k\x00v-%d-%d", seq, i)
		}
		allKeys = append(allKeys, keys...)
		seq++
		if !v.Apply(NewDelta(1, seq, nil, keys)) {
			t.Fatalf("delta %d rejected", seq)
		}
	}
	for _, k := range allKeys {
		if !v.MayHold(1, k) {
			t.Fatalf("false negative for delivered key %q after filter growth", k)
		}
	}
}

func TestDeltaWireSizeAndDedup(t *testing.T) {
	d := NewDelta(3, 1, []provenance.ID{idN(1), idN(2)}, []string{"a\x00x", "a\x00x", "b\x00y"})
	if len(d.AttrKeys) != 2 {
		t.Fatalf("attr keys not deduplicated: %v", d.AttrKeys)
	}
	if d.WireSize() <= 2*locEntryWire {
		t.Fatalf("wire size %d implausibly small", d.WireSize())
	}
	var _ netsim.SiteID = d.Origin
}

// TestMergeSnapshotFastForwards: folding a fresher view in unions the
// content, fast-forwards per-origin sequence numbers (so superseded
// deltas read as stale), keeps Bloom no-false-negatives, and is
// idempotent.
func TestMergeSnapshotFastForwards(t *testing.T) {
	origin := netsim.SiteID(7)
	d1 := NewDelta(origin, 1, []provenance.ID{idN(1)}, []string{"k\x00a"})
	d2 := NewDelta(origin, 2, []provenance.ID{idN(2), idN(3)}, []string{"k\x00b", "j\x00c"})

	donor := NewView(1)
	donor.Apply(d1)
	donor.Apply(d2)
	rejoiner := NewView(2)
	rejoiner.Apply(d1) // crashed before d2 arrived

	if added := rejoiner.Merge(donor); added != 2 {
		t.Fatalf("merge added %d locations, want 2", added)
	}
	if rejoiner.Seq(origin) != 2 {
		t.Fatalf("seq not fast-forwarded: %d", rejoiner.Seq(origin))
	}
	if home, ok := rejoiner.Locate(idN(3)); !ok || home != origin {
		t.Fatalf("merged location missing: %v %v", home, ok)
	}
	for _, k := range []string{"k\x00a", "k\x00b", "j\x00c"} {
		if got := rejoiner.SitesFor(k); len(got) != 1 || got[0] != origin {
			t.Fatalf("SitesFor(%q) = %v after merge", k, got)
		}
		if !rejoiner.MayHold(origin, k) {
			t.Fatalf("merged filter lost %q (false negative)", k)
		}
	}
	if rejoiner.Fingerprint() != donor.Fingerprint() {
		t.Fatal("fingerprints differ after full merge")
	}
	// The superseded delta is now stale here too.
	if rejoiner.Apply(d2) {
		t.Fatal("superseded delta applied after merge")
	}
	// Idempotence: merging again changes nothing.
	if added := rejoiner.Merge(donor); added != 0 {
		t.Fatalf("second merge added %d locations", added)
	}
	if rejoiner.Fingerprint() != donor.Fingerprint() {
		t.Fatal("second merge changed the fingerprint")
	}
}

// TestSnapshotWireSizeTracksContent: an empty view's snapshot is nearly
// free; content makes it grow; and it stays comparable to the deltas it
// replaces (same sizing model).
func TestSnapshotWireSizeTracksContent(t *testing.T) {
	v := NewView(1)
	empty := v.WireSize()
	var deltaBytes int
	for s := 0; s < 4; s++ {
		for q := uint64(1); q <= 3; q++ {
			ids := []provenance.ID{idN(s*100 + int(q))}
			d := NewDelta(netsim.SiteID(s), q, ids, []string{fmt.Sprintf("k\x00%d-%d", s, q)})
			deltaBytes += d.WireSize()
			v.Apply(d)
		}
	}
	if v.WireSize() <= empty {
		t.Fatalf("snapshot size did not grow with content: %d <= %d", v.WireSize(), empty)
	}
	// One snapshot must undercut replaying its constituent deltas (it
	// carries one header and one filter per origin, not per delta).
	if v.WireSize() >= deltaBytes {
		t.Fatalf("snapshot %dB not below the %dB of the 12 deltas it replaces", v.WireSize(), deltaBytes)
	}
}
