package siteview

import (
	"fmt"
	"testing"

	"pass/internal/netsim"
	"pass/internal/provenance"
)

func idN(n int) (id provenance.ID) {
	id[0], id[1] = byte(n), byte(n>>8)
	return
}

func TestApplyOrderingAndIdempotence(t *testing.T) {
	v := NewView(0)
	d1 := NewDelta(1, 1, []provenance.ID{idN(1)}, []string{"k\x00a"})
	d2 := NewDelta(1, 2, []provenance.ID{idN(2)}, []string{"k\x00b"})

	if !v.Apply(d1) {
		t.Fatal("first delivery of seq 1 rejected")
	}
	fp := v.Fingerprint()
	// Duplicate re-delivery: ignored, content unchanged.
	if v.Apply(d1) {
		t.Fatal("duplicate delta applied twice")
	}
	if v.Fingerprint() != fp {
		t.Fatal("duplicate delivery changed the view")
	}
	// A gap (seq 3 before seq 2) must not apply: gossip delivers in order
	// per peer, so a gap can only be a protocol bug.
	d3 := NewDelta(1, 3, []provenance.ID{idN(3)}, nil)
	if v.Apply(d3) {
		t.Fatal("out-of-order delta applied")
	}
	if !v.Apply(d2) {
		t.Fatal("next-in-order delta rejected")
	}
	if v.Seq(1) != 2 {
		t.Fatalf("seq = %d, want 2", v.Seq(1))
	}
	if v.Applied() != 2 || v.Ignored() != 2 {
		t.Fatalf("applied=%d ignored=%d, want 2/2", v.Applied(), v.Ignored())
	}
}

func TestLocateAndSitesFor(t *testing.T) {
	v := NewView(9)
	v.Apply(NewDelta(1, 1, []provenance.ID{idN(1)}, []string{"k\x00a", "k\x00b"}))
	v.Apply(NewDelta(2, 1, []provenance.ID{idN(2)}, []string{"k\x00a"}))

	if home, ok := v.Locate(idN(1)); !ok || home != 1 {
		t.Fatalf("Locate = %d/%v", home, ok)
	}
	if _, ok := v.Locate(idN(99)); ok {
		t.Fatal("located an undelivered record")
	}
	sites := v.SitesFor("k\x00a")
	if len(sites) != 2 || sites[0] != 1 || sites[1] != 2 {
		t.Fatalf("SitesFor(k=a) = %v, want [1 2]", sites)
	}
	if got := v.SitesFor("k\x00b"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("SitesFor(k=b) = %v, want [1]", got)
	}
	if got := v.SitesFor("k\x00missing"); got != nil {
		t.Fatalf("SitesFor(missing) = %v, want nil", got)
	}
	// The inverted index never lists a site the Bloom filter would deny.
	for _, key := range []string{"k\x00a", "k\x00b"} {
		for _, s := range v.SitesFor(key) {
			if !v.MayHold(s, key) {
				t.Fatalf("index lists site %d for %q but filter denies it", s, key)
			}
		}
	}
}

func TestFingerprintConvergence(t *testing.T) {
	// Two views receiving the same deltas — in different orders across
	// origins — converge to the same content fingerprint.
	a, b := NewView(10), NewView(11)
	d1 := NewDelta(1, 1, []provenance.ID{idN(1)}, []string{"k\x00a"})
	d2 := NewDelta(2, 1, []provenance.ID{idN(2)}, []string{"k\x00b"})
	a.Apply(d1)
	a.Apply(d2)
	b.Apply(d2)
	b.Apply(d1)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same deltas, different fingerprints")
	}
	// A view missing one delta diverges.
	c := NewView(12)
	c.Apply(d1)
	if c.Fingerprint() == a.Fingerprint() {
		t.Fatal("partial view matched full view")
	}
	if a.Locations() != 2 || c.Locations() != 1 {
		t.Fatalf("locations %d/%d, want 2/1", a.Locations(), c.Locations())
	}
}

func TestFilterNoFalseNegatives(t *testing.T) {
	f := NewFilter(64)
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = "key\x00" + string(rune('A'+i%26)) + string(rune('0'+i%10))
		f.Add(keys[i])
	}
	for _, k := range keys {
		if !f.MayContain(k) {
			t.Fatalf("false negative for %q", k)
		}
	}
	if f.SizeBytes() <= 0 {
		t.Fatal("filter has no wire size")
	}
}

func TestFilterGrowthKeepsNoFalseNegatives(t *testing.T) {
	// Deltas from one origin vary in size (batch sizes differ per gossip
	// round), so the per-origin filter must absorb differently-sized wire
	// filters without ever losing a delivered key: bit positions depend
	// on the array length, so growth rebuilds rather than ORs.
	v := NewView(0)
	var allKeys []string
	seq := uint64(0)
	for _, batch := range []int{1, 12, 3, 40, 1} {
		keys := make([]string, batch)
		for i := range keys {
			keys[i] = fmt.Sprintf("k\x00v-%d-%d", seq, i)
		}
		allKeys = append(allKeys, keys...)
		seq++
		if !v.Apply(NewDelta(1, seq, nil, keys)) {
			t.Fatalf("delta %d rejected", seq)
		}
	}
	for _, k := range allKeys {
		if !v.MayHold(1, k) {
			t.Fatalf("false negative for delivered key %q after filter growth", k)
		}
	}
}

func TestDeltaWireSizeAndDedup(t *testing.T) {
	d := NewDelta(3, 1, []provenance.ID{idN(1), idN(2)}, []string{"a\x00x", "a\x00x", "b\x00y"})
	if len(d.AttrKeys) != 2 {
		t.Fatalf("attr keys not deduplicated: %v", d.AttrKeys)
	}
	if d.WireSize() <= 2*locEntryWire {
		t.Fatalf("wire size %d implausibly small", d.WireSize())
	}
	var _ netsim.SiteID = d.Origin
}

// TestMergeSnapshotFastForwards: folding a fresher view in unions the
// content, fast-forwards per-origin sequence numbers (so superseded
// deltas read as stale), keeps Bloom no-false-negatives, and is
// idempotent.
func TestMergeSnapshotFastForwards(t *testing.T) {
	origin := netsim.SiteID(7)
	d1 := NewDelta(origin, 1, []provenance.ID{idN(1)}, []string{"k\x00a"})
	d2 := NewDelta(origin, 2, []provenance.ID{idN(2), idN(3)}, []string{"k\x00b", "j\x00c"})

	donor := NewView(1)
	donor.Apply(d1)
	donor.Apply(d2)
	rejoiner := NewView(2)
	rejoiner.Apply(d1) // crashed before d2 arrived

	if added := rejoiner.Merge(donor); added != 2 {
		t.Fatalf("merge added %d locations, want 2", added)
	}
	if rejoiner.Seq(origin) != 2 {
		t.Fatalf("seq not fast-forwarded: %d", rejoiner.Seq(origin))
	}
	if home, ok := rejoiner.Locate(idN(3)); !ok || home != origin {
		t.Fatalf("merged location missing: %v %v", home, ok)
	}
	for _, k := range []string{"k\x00a", "k\x00b", "j\x00c"} {
		if got := rejoiner.SitesFor(k); len(got) != 1 || got[0] != origin {
			t.Fatalf("SitesFor(%q) = %v after merge", k, got)
		}
		if !rejoiner.MayHold(origin, k) {
			t.Fatalf("merged filter lost %q (false negative)", k)
		}
	}
	if rejoiner.Fingerprint() != donor.Fingerprint() {
		t.Fatal("fingerprints differ after full merge")
	}
	// The superseded delta is now stale here too.
	if rejoiner.Apply(d2) {
		t.Fatal("superseded delta applied after merge")
	}
	// Idempotence: merging again changes nothing.
	if added := rejoiner.Merge(donor); added != 0 {
		t.Fatalf("second merge added %d locations", added)
	}
	if rejoiner.Fingerprint() != donor.Fingerprint() {
		t.Fatal("second merge changed the fingerprint")
	}
}

// TestSnapshotWireSizeTracksContent: an empty view's snapshot is nearly
// free; content makes it grow; and it stays comparable to the deltas it
// replaces (same sizing model).
func TestSnapshotWireSizeTracksContent(t *testing.T) {
	v := NewView(1)
	empty := v.WireSize()
	var deltaBytes int
	for s := 0; s < 4; s++ {
		for q := uint64(1); q <= 3; q++ {
			ids := []provenance.ID{idN(s*100 + int(q))}
			d := NewDelta(netsim.SiteID(s), q, ids, []string{fmt.Sprintf("k\x00%d-%d", s, q)})
			deltaBytes += d.WireSize()
			v.Apply(d)
		}
	}
	if v.WireSize() <= empty {
		t.Fatalf("snapshot size did not grow with content: %d <= %d", v.WireSize(), empty)
	}
	// One snapshot must undercut replaying its constituent deltas (it
	// carries one header and one filter per origin, not per delta).
	if v.WireSize() >= deltaBytes {
		t.Fatalf("snapshot %dB not below the %dB of the 12 deltas it replaces", v.WireSize(), deltaBytes)
	}
}

// TestFilterSaturationRecoversAfterRebuild is the Bloom-saturation
// satellite: a filter fed far past its allocation saturates (measured
// fill → 1, false-positive rate → 1), and the view-level rebuild —
// triggered by measured fill, sized from the exact distinct-key count —
// brings the false-positive rate back down while keeping every delivered
// key (no false negatives, ever).
func TestFilterSaturationRecoversAfterRebuild(t *testing.T) {
	// A raw filter sized for 4 keys, force-fed 400: saturated.
	f := NewFilter(4)
	for i := 0; i < 400; i++ {
		f.Add(fmt.Sprintf("sat\x00key-%d", i))
	}
	if fill := f.FillRatio(); fill < 0.9 {
		t.Fatalf("force-fed filter fill = %v, expected near-saturation", fill)
	}
	fp := 0
	for i := 0; i < 2000; i++ {
		if f.MayContain(fmt.Sprintf("absent\x00probe-%d", i)) {
			fp++
		}
	}
	if rate := float64(fp) / 2000; rate < 0.5 {
		t.Fatalf("saturated filter fp-rate = %v, expected it useless", rate)
	}

	// The same key stream through a View: the fill-triggered rebuild
	// must keep measured fill bounded the whole way and land the
	// false-positive rate back near the sized-filter design point.
	v := NewView(0)
	var delivered []string
	for seq := uint64(1); seq <= 400; seq++ {
		k := fmt.Sprintf("sat\x00key-%d", seq)
		delivered = append(delivered, k)
		if !v.Apply(NewDelta(1, seq, nil, []string{k})) {
			t.Fatalf("delta %d rejected", seq)
		}
		if fill := v.FilterFill(1); fill > MaxFillRatio+0.05 {
			t.Fatalf("after delta %d: fill %v never rebuilt (threshold %v)", seq, fill, MaxFillRatio)
		}
	}
	for _, k := range delivered {
		if !v.MayHold(1, k) {
			t.Fatalf("false negative for %q after rebuilds", k)
		}
	}
	fp = 0
	for i := 0; i < 2000; i++ {
		if v.MayHold(1, fmt.Sprintf("absent\x00probe-%d", i)) {
			fp++
		}
	}
	if rate := float64(fp) / 2000; rate > 0.1 {
		t.Fatalf("post-rebuild fp-rate = %v, want < 0.1", rate)
	}
}

// TestFilterKeysCountDistinct pins the exact-accounting fix: an origin
// re-delivering the same attribute keys across many deltas must not
// inflate the filter capacity (the old per-delivery count doubled the
// filter size for every re-delivery wave, bloating snapshot bytes).
func TestFilterKeysCountDistinct(t *testing.T) {
	shared := []string{"domain\x00d", "zone\x00z", "type\x00t"}
	exact, noisy := NewView(0), NewView(1)
	for seq := uint64(1); seq <= 50; seq++ {
		// noisy re-delivers the shared keys every delta; exact sees them once.
		keys := []string{fmt.Sprintf("n\x00%d", seq)}
		if !exact.Apply(NewDelta(1, seq, nil, keys)) {
			t.Fatalf("exact delta %d rejected", seq)
		}
		if !noisy.Apply(NewDelta(1, seq, nil, append(append([]string(nil), shared...), keys...))) {
			t.Fatalf("noisy delta %d rejected", seq)
		}
	}
	if got, want := noisy.filterKeys[1], 50+len(shared); got != want {
		t.Fatalf("distinct key count = %d, want %d (re-deliveries counted)", got, want)
	}
	// Re-delivery cost three distinct keys, so the two filters may differ
	// by at most one growth step, not by a runaway factor.
	ne, nn := exact.filters[1].SizeBytes(), noisy.filters[1].SizeBytes()
	if nn > ne*4 {
		t.Fatalf("re-delivered keys bloated the filter: %dB vs %dB", nn, ne)
	}
}

// TestDiffWireSizeTracksMissingContent: the pull path's targeted diff
// must price only what the recipient is missing — empty when views
// match, a small fraction of the snapshot when only a few deltas were
// missed, and never more than the full snapshot.
func TestDiffWireSizeTracksMissingContent(t *testing.T) {
	donor, have := NewView(0), NewView(1)
	for seq := uint64(1); seq <= 20; seq++ {
		d := NewDelta(2, seq, []provenance.ID{idN(int(seq))}, []string{fmt.Sprintf("k\x00%d", seq)})
		donor.Apply(d)
		if seq <= 15 {
			have.Apply(d)
		}
	}
	full := donor.WireSize()
	diff := DiffWireSize(donor, have)
	if diff >= full {
		t.Fatalf("diff %dB not below full snapshot %dB", diff, full)
	}
	// 5 of 20 deltas missing: the diff must price roughly that fraction
	// of the location entries, not the whole map.
	if want := deltaHeaderWire + 5*locEntryWire; diff < want {
		t.Fatalf("diff %dB cannot carry the 5 missing entries (min %d)", diff, want)
	}
	caughtUp := DiffWireSize(donor, donor)
	if caughtUp != deltaHeaderWire {
		t.Fatalf("diff between identical views = %dB, want bare header %d", caughtUp, deltaHeaderWire)
	}
	if v := have.SeqVectorWireSize(); v != deltaHeaderWire+seqEntryWire {
		t.Fatalf("seq vector for one known origin = %dB", v)
	}
}
