package siteview

import (
	"fmt"
	"testing"

	"pass/internal/netsim"
	"pass/internal/provenance"
)

func idN(n int) (id provenance.ID) {
	id[0], id[1] = byte(n), byte(n>>8)
	return
}

func TestApplyOrderingAndIdempotence(t *testing.T) {
	v := NewView(0)
	d1 := NewDelta(1, 1, []provenance.ID{idN(1)}, []string{"k\x00a"})
	d2 := NewDelta(1, 2, []provenance.ID{idN(2)}, []string{"k\x00b"})

	if !v.Apply(d1) {
		t.Fatal("first delivery of seq 1 rejected")
	}
	fp := v.Fingerprint()
	// Duplicate re-delivery: ignored, content unchanged.
	if v.Apply(d1) {
		t.Fatal("duplicate delta applied twice")
	}
	if v.Fingerprint() != fp {
		t.Fatal("duplicate delivery changed the view")
	}
	// A gap (seq 3 before seq 2) must not apply: gossip delivers in order
	// per peer, so a gap can only be a protocol bug.
	d3 := NewDelta(1, 3, []provenance.ID{idN(3)}, nil)
	if v.Apply(d3) {
		t.Fatal("out-of-order delta applied")
	}
	if !v.Apply(d2) {
		t.Fatal("next-in-order delta rejected")
	}
	if v.Seq(1) != 2 {
		t.Fatalf("seq = %d, want 2", v.Seq(1))
	}
	if v.Applied() != 2 || v.Ignored() != 2 {
		t.Fatalf("applied=%d ignored=%d, want 2/2", v.Applied(), v.Ignored())
	}
}

func TestLocateAndSitesFor(t *testing.T) {
	v := NewView(9)
	v.Apply(NewDelta(1, 1, []provenance.ID{idN(1)}, []string{"k\x00a", "k\x00b"}))
	v.Apply(NewDelta(2, 1, []provenance.ID{idN(2)}, []string{"k\x00a"}))

	if home, ok := v.Locate(idN(1)); !ok || home != 1 {
		t.Fatalf("Locate = %d/%v", home, ok)
	}
	if _, ok := v.Locate(idN(99)); ok {
		t.Fatal("located an undelivered record")
	}
	sites := v.SitesFor("k\x00a")
	if len(sites) != 2 || sites[0] != 1 || sites[1] != 2 {
		t.Fatalf("SitesFor(k=a) = %v, want [1 2]", sites)
	}
	if got := v.SitesFor("k\x00b"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("SitesFor(k=b) = %v, want [1]", got)
	}
	if got := v.SitesFor("k\x00missing"); got != nil {
		t.Fatalf("SitesFor(missing) = %v, want nil", got)
	}
	// The inverted index never lists a site the Bloom filter would deny.
	for _, key := range []string{"k\x00a", "k\x00b"} {
		for _, s := range v.SitesFor(key) {
			if !v.MayHold(s, key) {
				t.Fatalf("index lists site %d for %q but filter denies it", s, key)
			}
		}
	}
}

func TestFingerprintConvergence(t *testing.T) {
	// Two views receiving the same deltas — in different orders across
	// origins — converge to the same content fingerprint.
	a, b := NewView(10), NewView(11)
	d1 := NewDelta(1, 1, []provenance.ID{idN(1)}, []string{"k\x00a"})
	d2 := NewDelta(2, 1, []provenance.ID{idN(2)}, []string{"k\x00b"})
	a.Apply(d1)
	a.Apply(d2)
	b.Apply(d2)
	b.Apply(d1)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same deltas, different fingerprints")
	}
	// A view missing one delta diverges.
	c := NewView(12)
	c.Apply(d1)
	if c.Fingerprint() == a.Fingerprint() {
		t.Fatal("partial view matched full view")
	}
	if a.Locations() != 2 || c.Locations() != 1 {
		t.Fatalf("locations %d/%d, want 2/1", a.Locations(), c.Locations())
	}
}

func TestFilterNoFalseNegatives(t *testing.T) {
	f := NewFilter(64)
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = "key\x00" + string(rune('A'+i%26)) + string(rune('0'+i%10))
		f.Add(keys[i])
	}
	for _, k := range keys {
		if !f.MayContain(k) {
			t.Fatalf("false negative for %q", k)
		}
	}
	if f.SizeBytes() <= 0 {
		t.Fatal("filter has no wire size")
	}
}

func TestFilterGrowthKeepsNoFalseNegatives(t *testing.T) {
	// Deltas from one origin vary in size (batch sizes differ per gossip
	// round), so the per-origin filter must absorb differently-sized wire
	// filters without ever losing a delivered key: bit positions depend
	// on the array length, so growth rebuilds rather than ORs.
	v := NewView(0)
	var allKeys []string
	seq := uint64(0)
	for _, batch := range []int{1, 12, 3, 40, 1} {
		keys := make([]string, batch)
		for i := range keys {
			keys[i] = fmt.Sprintf("k\x00v-%d-%d", seq, i)
		}
		allKeys = append(allKeys, keys...)
		seq++
		if !v.Apply(NewDelta(1, seq, nil, keys)) {
			t.Fatalf("delta %d rejected", seq)
		}
	}
	for _, k := range allKeys {
		if !v.MayHold(1, k) {
			t.Fatalf("false negative for delivered key %q after filter growth", k)
		}
	}
}

func TestDeltaWireSizeAndDedup(t *testing.T) {
	d := NewDelta(3, 1, []provenance.ID{idN(1), idN(2)}, []string{"a\x00x", "a\x00x", "b\x00y"})
	if len(d.AttrKeys) != 2 {
		t.Fatalf("attr keys not deduplicated: %v", d.AttrKeys)
	}
	if d.WireSize() <= 2*locEntryWire {
		t.Fatalf("wire size %d implausibly small", d.WireSize())
	}
	var _ netsim.SiteID = d.Origin
}
