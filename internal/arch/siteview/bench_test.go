package siteview

import (
	"testing"

	"pass/internal/netsim"
	"pass/internal/provenance"
)

// Delta application is passnet's per-gossip-message hot path: every
// digest a site receives goes through View.Apply, and at 10k sites one
// maintenance round applies millions of deltas. This benchmark feeds
// `make bench-quick`.

// BenchmarkSiteviewApply measures in-order delta application from many
// origins into one view, including the Bloom-filter and inverted-index
// maintenance. A fixed pool of deltas is cycled — the view is swapped
// for a fresh one at every pool wrap so each delta is always the next
// in-order seq for its origin — keeping setup memory bounded no matter
// how high b.N ramps.
func BenchmarkSiteviewApply(b *testing.B) {
	const (
		origins  = 64
		poolSize = 4096
	)
	keys := []string{"zone\x00boston", "domain\x00traffic"}
	deltas := make([]*Delta, poolSize)
	seqs := make([]uint64, origins)
	for i := range deltas {
		origin := i % origins
		seqs[origin]++
		var id provenance.ID
		id[0], id[1], id[2] = byte(i), byte(i>>8), byte(i>>16)
		deltas[i] = NewDelta(netsim.SiteID(origin), seqs[origin], []provenance.ID{id}, keys)
	}
	var v *View
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%poolSize == 0 {
			v = NewView(0)
		}
		if !v.Apply(deltas[i%poolSize]) {
			b.Fatalf("in-order delta %d rejected", i)
		}
	}
}

// BenchmarkSiteviewApplyDuplicate measures the idempotence fast path: a
// re-delivered delta must be recognized and ignored cheaply (retries
// under loss re-deliver constantly).
func BenchmarkSiteviewApplyDuplicate(b *testing.B) {
	v := NewView(0)
	var id provenance.ID
	id[0] = 1
	d := NewDelta(1, 1, []provenance.ID{id}, []string{"zone\x00boston"})
	if !v.Apply(d) {
		b.Fatal("first delivery rejected")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v.Apply(d) {
			b.Fatal("duplicate applied")
		}
	}
}
