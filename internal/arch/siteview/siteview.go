// Package siteview models the soft metadata view ONE site holds about its
// peers in the distributed PASS (Section V). The paper's design keeps
// sensor data at its producing site and spreads only gossiped digests, so
// each site's picture of the rest of the federation is inherently partial
// and stale: a site knows exactly what has been DELIVERED to it, nothing
// more. This package makes that delivered-vs-pending distinction a
// first-class object instead of a simulation shortcut.
//
// # The delivered-vs-pending view model
//
// A producing site batches its recent publications into a Delta — the
// id→home location entries plus a Bloom filter of the attribute postings
// the batch carries — and gossips it to every peer. Delivery is per peer:
// a peer that received the delta folds it into its own View immediately;
// a peer whose copy was lost, or that sits behind a partition, simply does
// not have it yet. Two sites therefore answer the same query differently
// exactly when the set of deltas delivered to them differs — which is what
// a partition experiment should observe (split-brain), and what full
// gossip delivery erases again (convergence).
//
// Deltas carry a per-origin monotonically increasing sequence number and
// are applied in order, so a late or duplicated delivery is idempotent:
// View.Apply returns false and changes nothing when it has already seen
// that origin's sequence number.
//
// # Rejoin snapshots
//
// A site that was down for a while owes its peers nothing, but it owes
// itself a catch-up. Rather than waiting for every sender's outbox to
// replay each missed delta, a rejoining site can fetch one peer's whole
// View as a snapshot and Merge it: content is unioned and per-origin
// sequence numbers fast-forward, so deltas the snapshot already covers
// read as stale everywhere — which is what lets the senders prune them
// from their queues. WireSize prices the snapshot with the same model a
// Delta uses, so snapshot-vs-replay byte comparisons (the FastRejoin
// conformance law, experiment E16) are fair.
//
// # Indexed lookups and filter routing
//
// A View answers two query-routing questions: "which site is home to this
// record?" (Locate, one map probe) and "which sites may hold postings for
// this attribute?". For the latter the per-peer Bloom filters are the
// routing AUTHORITY — CandidatesFor probes each known origin's
// accumulated filter, so candidate selection behaves exactly like the
// wire-level digest it models: a false positive really routes the query
// to a site with nothing to say, costing a charged empty round trip,
// never a wrong answer. The exact inverted index behind SitesFor (key →
// origins whose deltas carried it) remains the ground truth the filters
// are rebuilt from and the reference that makes false positives
// measurable: CandidatesFor ⊇ SitesFor always, and the difference is the
// misroute set. Per-query local work is one cheap filter probe per known
// origin; the wire cost stays O(matching sites + false positives), and
// record resolution (Locate) stays one map probe — which is what keeps
// the 10,000-site sweep's per-lookup message budget intact.
package siteview

import (
	"encoding/binary"
	"math/bits"
	"sort"

	"pass/internal/netsim"
	"pass/internal/provenance"
)

// FilterBitsPerKey sizes the per-delta attribute Bloom filter: bits per
// distinct attribute key carried.
const FilterBitsPerKey = 12

// filterHashes is the number of probe positions per key.
const filterHashes = 4

// Filter is the compact attribute-membership filter a digest delta
// carries on the wire: a Bloom filter over canonical attribute keys. False
// positives cost a query an extra empty round trip, never a wrong answer;
// false negatives cannot happen.
type Filter struct {
	bits []uint64
}

// NewFilter sizes a filter for the given expected key count.
func NewFilter(keys int) *Filter {
	if keys < 1 {
		keys = 1
	}
	words := (keys*FilterBitsPerKey + 63) / 64
	return &Filter{bits: make([]uint64, words)}
}

// fnv1a hashes b with a seed (split-hash scheme: two independent hashes
// derive all probe positions).
func fnv1a(b []byte, seed uint64) uint64 {
	h := uint64(14695981039346656037) ^ seed
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

func (f *Filter) probe(key string, fn func(word, bit uint64) bool) bool {
	n := uint64(len(f.bits) * 64)
	h1 := fnv1a([]byte(key), 0)
	h2 := fnv1a([]byte(key), 0x9E3779B97F4A7C15) | 1
	for i := uint64(0); i < filterHashes; i++ {
		pos := (h1 + i*h2) % n
		if !fn(pos/64, pos%64) {
			return false
		}
	}
	return true
}

// Add inserts a canonical attribute key.
func (f *Filter) Add(key string) {
	f.probe(key, func(word, bit uint64) bool {
		f.bits[word] |= 1 << bit
		return true
	})
}

// MayContain reports whether key may have been added (Bloom semantics).
func (f *Filter) MayContain(key string) bool {
	return f.probe(key, func(word, bit uint64) bool {
		return f.bits[word]&(1<<bit) != 0
	})
}

// SizeBytes is the filter's wire size.
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }

// FillRatio is the fraction of set bits — the measured (not estimated
// from key counts) saturation of the filter. The false-positive rate of
// a Bloom filter is fill^hashes, so a filter whose fill drifts toward 1
// answers MayContain("anything") = true and routes queries everywhere;
// views rebuild an origin's filter when its measured fill crosses
// MaxFillRatio.
func (f *Filter) FillRatio() float64 {
	if len(f.bits) == 0 {
		return 0
	}
	set := 0
	for _, w := range f.bits {
		set += bits.OnesCount64(w)
	}
	return float64(set) / float64(len(f.bits)*64)
}

// MaxFillRatio is the measured-fill threshold past which a view rebuilds
// an origin's accumulated filter at doubled capacity. Sized-to-count
// filters settle near 1-e^(-hashes/bitsPerKey) ≈ 0.28; crossing 0.5
// means the filter has outgrown its allocation (≈6% false-positive rate
// and climbing), so the rebuild restores headroom well before the filter
// degenerates into match-everything.
const MaxFillRatio = 0.5

// filterWireBytes is the wire size of a filter sized for n keys, without
// allocating one.
func filterWireBytes(n int) int {
	if n < 1 {
		n = 1
	}
	return (n*FilterBitsPerKey + 63) / 64 * 8
}

// Delta is one gossiped digest unit: the soft metadata a producing site
// spreads about its own recent publications. Seq is assigned by the
// origin and increases by one per delta, so receivers can recognize
// duplicates and out-of-order deliveries.
type Delta struct {
	// Origin is the producing site; every entry's home site is Origin.
	Origin netsim.SiteID
	// Seq is the origin's delta sequence number, starting at 1.
	Seq uint64
	// IDs are the record ids this delta locates at Origin.
	IDs []provenance.ID
	// AttrKeys are the canonical attribute keys (key\x00value) the
	// records carry — the contents of Filter, listed exactly so the
	// receiver can maintain its inverted index.
	AttrKeys []string
	// Filter is the Bloom-filter wire form of AttrKeys.
	Filter *Filter
}

// NewDelta builds a delta for the origin's batch. AttrKeys may contain
// duplicates; they are deduplicated here.
func NewDelta(origin netsim.SiteID, seq uint64, ids []provenance.ID, attrKeys []string) *Delta {
	dedup := make([]string, 0, len(attrKeys))
	seen := make(map[string]struct{}, len(attrKeys))
	for _, k := range attrKeys {
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		dedup = append(dedup, k)
	}
	sort.Strings(dedup)
	f := NewFilter(len(dedup))
	for _, k := range dedup {
		f.Add(k)
	}
	return &Delta{Origin: origin, Seq: seq, IDs: append([]provenance.ID(nil), ids...), AttrKeys: dedup, Filter: f}
}

// locEntryWire approximates the wire size of one id→home location entry.
const locEntryWire = 32 + 4

// deltaHeaderWire covers origin, sequence number, and framing.
const deltaHeaderWire = 32

// WireSize is the delta's size on the simulated network: location
// entries plus the attribute Bloom filter plus a small header.
func (d *Delta) WireSize() int {
	return deltaHeaderWire + len(d.IDs)*locEntryWire + d.Filter.SizeBytes()
}

// View is the soft metadata ONE site has accumulated from delivered
// deltas. It is not safe for concurrent use; the owning model serializes
// access (all Section IV models already hold a mutex across state
// mutation).
type View struct {
	owner netsim.SiteID
	// seq is the last sequence number applied per origin.
	seq map[netsim.SiteID]uint64
	// loc resolves a record id to its home site.
	loc map[provenance.ID]netsim.SiteID
	// attrSites is the inverted attribute index: canonical attribute key
	// to the set of sites whose delivered deltas carried it.
	attrSites map[string]map[netsim.SiteID]struct{}
	// filters accumulates each origin's delivered attribute keys into one
	// Bloom filter per origin. Bloom bit positions depend on the filter's
	// size, so delivered deltas' differently-sized wire filters cannot be
	// OR-ed together; instead the keys (which every delta lists exactly)
	// are re-added, and the filter is rebuilt at double capacity when the
	// accumulated key count would overload it — preserving the
	// no-false-negatives guarantee at a bounded false-positive rate.
	filters map[netsim.SiteID]*Filter
	// filterKeys counts keys added per origin (rebuild trigger).
	filterKeys map[netsim.SiteID]int
	applied    int64
	ignored    int64
}

// NewView returns the empty view owned by the given site.
func NewView(owner netsim.SiteID) *View {
	return &View{
		owner:      owner,
		seq:        make(map[netsim.SiteID]uint64),
		loc:        make(map[provenance.ID]netsim.SiteID),
		attrSites:  make(map[string]map[netsim.SiteID]struct{}),
		filters:    make(map[netsim.SiteID]*Filter),
		filterKeys: make(map[netsim.SiteID]int),
	}
}

// Owner is the site this view belongs to.
func (v *View) Owner() netsim.SiteID { return v.owner }

// Apply folds a delivered delta into the view and reports whether it
// changed anything. A delta whose sequence number is not exactly the next
// expected one from its origin is ignored (false): a duplicate or stale
// re-delivery has already been applied, and the gossip layer delivers
// in order per peer, so a gap never arrives ahead of its predecessor.
func (v *View) Apply(d *Delta) bool {
	if d.Seq != v.seq[d.Origin]+1 {
		v.ignored++
		return false
	}
	v.seq[d.Origin] = d.Seq
	for _, id := range d.IDs {
		v.loc[id] = d.Origin
	}
	// Only keys this origin has never delivered reach the filter: a key
	// re-delivered by a later delta is already represented, and counting
	// it again would inflate filterKeys past the distinct-key truth —
	// which is what used to trigger premature rebuilds into oversized
	// filters (and bloated snapshot wire sizes to match).
	fresh := d.AttrKeys[:0:0]
	for _, k := range d.AttrKeys {
		set, ok := v.attrSites[k]
		if !ok {
			set = make(map[netsim.SiteID]struct{})
			v.attrSites[k] = set
		}
		if _, has := set[d.Origin]; !has {
			set[d.Origin] = struct{}{}
			fresh = append(fresh, k)
		}
	}
	v.addFilterKeys(d.Origin, fresh)
	v.applied++
	return true
}

// addFilterKeys folds an origin's newly delivered DISTINCT attribute
// keys into its accumulated filter (callers pass only keys the origin
// has not delivered before, so filterKeys tracks the exact distinct
// count). When the filter's measured fill ratio crosses MaxFillRatio —
// saturation observed on the actual bit array, not estimated from
// counts — the filter is rebuilt at double the distinct-key capacity
// from the exact inverted index, so nothing is lost and the
// false-positive rate recovers.
func (v *View) addFilterKeys(origin netsim.SiteID, keys []string) {
	if len(keys) == 0 {
		return
	}
	v.filterKeys[origin] += len(keys)
	f, ok := v.filters[origin]
	if !ok {
		f = NewFilter(v.filterKeys[origin])
		v.filters[origin] = f
	}
	for _, k := range keys {
		f.Add(k)
	}
	if f.FillRatio() > MaxFillRatio {
		v.rebuildFilter(origin)
	}
}

// rebuildFilter resizes origin's filter to double its distinct-key count
// and repopulates it from the inverted index (the exact ground truth),
// restoring the no-false-negatives guarantee at a healthy fill ratio.
func (v *View) rebuildFilter(origin netsim.SiteID) {
	f := NewFilter(2 * v.filterKeys[origin])
	v.filters[origin] = f
	for k, sites := range v.attrSites {
		if _, has := sites[origin]; has {
			f.Add(k)
		}
	}
}

// FilterFill reports the measured fill ratio of origin's accumulated
// filter (0 when no delta from origin has been delivered).
func (v *View) FilterFill(origin netsim.SiteID) float64 {
	f, ok := v.filters[origin]
	if !ok {
		return 0
	}
	return f.FillRatio()
}

// WireSize approximates the view's size as a state-transfer snapshot on
// the wire: every location entry, plus each origin's accumulated
// attribute Bloom filter with its sequence number, plus a header — the
// same sizing model a Delta uses, so snapshot-vs-replay byte comparisons
// are apples-to-apples. A rejoining site that fetches one snapshot pays
// this once, instead of one delta header and filter per queued delta per
// sender.
func (v *View) WireSize() int {
	size := deltaHeaderWire + len(v.loc)*locEntryWire
	for _, f := range v.filters {
		size += 16 + f.SizeBytes() // origin tag + seqno + filter bits
	}
	return size
}

// Merge folds a snapshot of another site's view into this one: location
// entries and inverted-index postings are unioned, per-origin filters
// absorb the newly learned keys, and per-origin sequence numbers
// fast-forward to the donor's — so a delta the donor had already applied
// is recognized as stale here too, and the senders still queuing it can
// prune. Merging is add-only and idempotent (metadata never retracts);
// it returns how many location entries were new. The donor view is read
// only.
func (v *View) Merge(snap *View) int {
	added := 0
	for id, home := range snap.loc {
		if _, known := v.loc[id]; !known {
			added++
		}
		v.loc[id] = home
	}
	newKeys := make(map[netsim.SiteID][]string)
	for k, origins := range snap.attrSites {
		set, ok := v.attrSites[k]
		if !ok {
			set = make(map[netsim.SiteID]struct{})
			v.attrSites[k] = set
		}
		for origin := range origins {
			if _, has := set[origin]; has {
				continue
			}
			set[origin] = struct{}{}
			newKeys[origin] = append(newKeys[origin], k)
		}
	}
	// Deterministic per-origin order (map iteration above scrambles it;
	// filter contents are order-independent but key counts must add up
	// identically run to run).
	origins := make([]netsim.SiteID, 0, len(newKeys))
	for origin := range newKeys {
		origins = append(origins, origin)
	}
	sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })
	for _, origin := range origins {
		keys := newKeys[origin]
		sort.Strings(keys)
		v.addFilterKeys(origin, keys)
	}
	for origin, seq := range snap.seq {
		if seq > v.seq[origin] {
			v.seq[origin] = seq
		}
	}
	return added
}

// Locate resolves a record's home site from delivered deltas.
func (v *View) Locate(id provenance.ID) (netsim.SiteID, bool) {
	s, ok := v.loc[id]
	return s, ok
}

// SitesFor returns, in ascending order, the sites whose delivered deltas
// carried the canonical attribute key. Work is O(matching sites): the
// inverted index goes straight to the candidate set without probing every
// peer's filter.
func (v *View) SitesFor(attrKey string) []netsim.SiteID {
	set := v.attrSites[attrKey]
	if len(set) == 0 {
		return nil
	}
	out := make([]netsim.SiteID, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MayHold reports whether the peer's delivered Bloom filters may contain
// the attribute key. Every site SitesFor lists satisfies MayHold; the
// converse can fail (Bloom false positive).
func (v *View) MayHold(peer netsim.SiteID, attrKey string) bool {
	f, ok := v.filters[peer]
	return ok && f.MayContain(attrKey)
}

// CandidatesFor returns, in ascending order, every origin whose
// accumulated Bloom filter may hold the attribute key — the wire-digest
// routing set. It is a superset of SitesFor (filters have no false
// negatives); the difference is exactly the false positives, each of
// which costs the querier a charged empty round trip. Work is O(origins
// with delivered filters): one filter probe per known peer, no network.
func (v *View) CandidatesFor(attrKey string) []netsim.SiteID {
	var out []netsim.SiteID
	for s, f := range v.filters {
		if f.MayContain(attrKey) {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Seq returns the last delta sequence number applied from the origin.
func (v *View) Seq(origin netsim.SiteID) uint64 { return v.seq[origin] }

// Applied reports how many deltas changed the view; Ignored how many
// arrived late or duplicated and were dropped.
func (v *View) Applied() int64 { return v.applied }

// Ignored reports deltas rejected as duplicates or stale re-deliveries.
func (v *View) Ignored() int64 { return v.ignored }

// Locations reports how many record ids the view can resolve.
func (v *View) Locations() int { return len(v.loc) }

// Fingerprint is a deterministic hash of the view's CONTENT — location
// entries and the inverted attribute index, not the owner and not
// bookkeeping counters. Two sites whose fingerprints match answer every
// digest-routed query identically; after full gossip delivery with no
// faults every site's fingerprint must match (the convergence law the
// conformance suite asserts). Re-delivering already-known metadata leaves
// the fingerprint unchanged (idempotence).
func (v *View) Fingerprint() uint64 {
	h := uint64(14695981039346656037)
	mix := func(b []byte) {
		for _, c := range b {
			h ^= uint64(c)
			h *= 1099511628211
		}
	}
	var buf [8]byte

	ids := make([]provenance.ID, 0, len(v.loc))
	for id := range v.loc {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return lessID(ids[i], ids[j]) })
	for _, id := range ids {
		mix(id[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(v.loc[id]))
		mix(buf[:])
	}

	keys := make([]string, 0, len(v.attrSites))
	for k := range v.attrSites {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		mix([]byte(k))
		for _, s := range v.SitesFor(k) {
			binary.LittleEndian.PutUint64(buf[:], uint64(s))
			mix(buf[:])
		}
	}
	return h
}

func lessID(a, b provenance.ID) bool {
	for i := 0; i < len(a); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// seqEntryWire is the wire size of one (origin, seq) vector entry in an
// anti-entropy pull request.
const seqEntryWire = 12

// CoalescedWireSize prices ONE envelope carrying several deltas from the
// same origin to the same peer: one header, each distinct location entry
// once (a record re-listed by a later delta ships once), one filter
// sized for the distinct attribute keys of the whole batch, plus 8 bytes
// of per-constituent sequence framing so the receiver can fast-forward
// its per-origin counter delta by delta. For a single delta this is
// exactly Delta.WireSize — coalescing only ever removes redundancy.
func CoalescedWireSize(deltas []*Delta) int {
	if len(deltas) == 0 {
		return 0
	}
	if len(deltas) == 1 {
		return deltas[0].WireSize()
	}
	ids := make(map[provenance.ID]struct{})
	keys := make(map[string]struct{})
	for _, d := range deltas {
		for _, id := range d.IDs {
			ids[id] = struct{}{}
		}
		for _, k := range d.AttrKeys {
			keys[k] = struct{}{}
		}
	}
	return deltaHeaderWire + len(ids)*locEntryWire + filterWireBytes(len(keys)) + (len(deltas)-1)*8
}

// SeqVectorWireSize prices the pull-request body a site sends to
// advertise how much of each origin's delta stream it has applied: one
// (origin, seq) entry per known origin plus the usual header. The donor
// answers with exactly the content the vector proves missing, priced by
// DiffWireSize — together they are the lazy-push/periodic-pull hybrid's
// catch-up exchange.
func (v *View) SeqVectorWireSize() int {
	return deltaHeaderWire + len(v.seq)*seqEntryWire
}

// DiffWireSize prices the targeted catch-up transfer that brings have up
// to donor: only the location entries have is missing (or has stale
// homes for) and, per origin, a filter sized for just the attribute keys
// have has not seen from that origin. This is what an efficient rejoin
// or anti-entropy pull ships instead of the donor's whole snapshot
// (View.WireSize) — for a site that missed a few deltas the diff is a
// small fraction of the full view. The merge that follows is the
// ordinary Merge; DiffWireSize only prices its wire form.
func DiffWireSize(donor, have *View) int {
	size := deltaHeaderWire
	for id, home := range donor.loc {
		if h, ok := have.loc[id]; !ok || h != home {
			size += locEntryWire
		}
	}
	newKeys := make(map[netsim.SiteID]int)
	for k, origins := range donor.attrSites {
		haveSet := have.attrSites[k]
		for origin := range origins {
			if haveSet != nil {
				if _, has := haveSet[origin]; has {
					continue
				}
			}
			newKeys[origin]++
		}
	}
	for _, n := range newKeys {
		size += 16 + filterWireBytes(n) // origin tag + seqno + key filter
	}
	return size
}

// Exposer is implemented by architecture models that maintain a real
// per-site view (today: passnet and softstate.Viewful, whose plain sites
// answer with their designated index node's view). The conformance suite
// and E15 use it to assert
// the convergence law and to observe split-brain divergence directly at
// the view level rather than only through query results.
type Exposer interface {
	// SiteView returns the given site's view. The caller must not mutate
	// it and must not retain it across model operations (views are
	// guarded by the model's lock).
	SiteView(s netsim.SiteID) *View
}
