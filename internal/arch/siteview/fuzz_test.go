package siteview

import (
	"testing"

	"pass/internal/netsim"
	"pass/internal/provenance"
	"pass/internal/xrand"
)

// FuzzViewApply pins the delivery-order law the gossip layer relies on:
// applying a fixed multiset of deltas in ANY interleaving the transport
// can produce — per-origin order preserved (the outbox guarantee),
// arbitrary interleaving across origins, duplicates and stale
// re-deliveries injected anywhere — always converges to the same view
// content. Fingerprint equality is the oracle; Applied/Ignored verify
// the duplicates really were offered and dropped rather than never
// generated.
func FuzzViewApply(f *testing.F) {
	f.Add(uint64(1), []byte{0, 1, 2, 0x81, 2, 1, 0})
	f.Add(uint64(7), []byte{2, 2, 2, 0, 0x80, 1})
	f.Add(uint64(42), []byte{})
	f.Fuzz(func(t *testing.T, seed uint64, order []byte) {
		const origins = 3
		rng := xrand.New(seed)

		// The delta multiset: per origin, a chain of 1–4 sequenced deltas
		// with deterministic ids and attribute keys (some keys shared
		// across origins so the inverted index accumulates multi-site
		// postings).
		deltas := make([][]*Delta, origins)
		for o := 0; o < origins; o++ {
			n := 1 + rng.Intn(4)
			for seq := 1; seq <= n; seq++ {
				var ids []provenance.ID
				for k := 0; k < 1+rng.Intn(3); k++ {
					var id provenance.ID
					id[0], id[1], id[2] = byte(o), byte(seq), byte(k)
					id[3] = byte(rng.Intn(256))
					ids = append(ids, id)
				}
				keys := []string{
					"zone\x00" + string(rune('a'+o)),
					"shared\x00v",
					"seq\x00" + string(rune('0'+seq)),
				}
				deltas[o] = append(deltas[o],
					NewDelta(netsim.SiteID(o), uint64(seq), ids, keys))
			}
		}

		// Reference: strict origin-by-origin, in-order application.
		ref := NewView(netsim.SiteID(99))
		for o := 0; o < origins; o++ {
			for _, d := range deltas[o] {
				if !ref.Apply(d) {
					t.Fatalf("reference application rejected origin %d seq %d", o, d.Seq)
				}
			}
		}

		// Fuzzed interleaving: each input byte picks an origin; the low
		// bits choose which origin's stream advances, the high bit turns
		// the step into a duplicate/stale re-delivery of something that
		// origin already applied. Per-origin order is preserved — exactly
		// the transport's guarantee.
		got := NewView(netsim.SiteID(99))
		next := make([]int, origins)
		dups := 0
		for _, b := range order {
			o := int(b % origins)
			if b&0x80 != 0 && next[o] > 0 {
				// Re-deliver a delta this origin already applied; must be
				// ignored without changing anything.
				stale := deltas[o][rng.Intn(next[o])]
				fpBefore := got.Fingerprint()
				if got.Apply(stale) {
					t.Fatalf("stale re-delivery of origin %d seq %d was applied", o, stale.Seq)
				}
				if got.Fingerprint() != fpBefore {
					t.Fatalf("ignored duplicate changed the view content")
				}
				dups++
				continue
			}
			if next[o] < len(deltas[o]) {
				if !got.Apply(deltas[o][next[o]]) {
					t.Fatalf("in-order delta origin %d seq %d rejected", o, next[o]+1)
				}
				next[o]++
			}
		}
		// Drain whatever the fuzz input did not deliver.
		for o := 0; o < origins; o++ {
			for ; next[o] < len(deltas[o]); next[o]++ {
				if !got.Apply(deltas[o][next[o]]) {
					t.Fatalf("drain delta origin %d seq %d rejected", o, next[o]+1)
				}
			}
		}

		if got.Fingerprint() != ref.Fingerprint() {
			t.Fatalf("fingerprint diverged: interleaved %x vs reference %x (seed %d, order %v)",
				got.Fingerprint(), ref.Fingerprint(), seed, order)
		}
		if got.Locations() != ref.Locations() {
			t.Fatalf("locations diverged: %d vs %d", got.Locations(), ref.Locations())
		}
		for o := 0; o < origins; o++ {
			if got.Seq(netsim.SiteID(o)) != ref.Seq(netsim.SiteID(o)) {
				t.Fatalf("origin %d seq diverged: %d vs %d",
					o, got.Seq(netsim.SiteID(o)), ref.Seq(netsim.SiteID(o)))
			}
		}
		if got.Ignored() != int64(dups) {
			t.Fatalf("ignored = %d, want the %d injected duplicates", got.Ignored(), dups)
		}
	})
}
