package siteview

// Wire/disk encoding for whole Views. Two consumers need a View to leave
// its process: the real-node snapshot file (a durable passd node compacts
// its WAL into an encoded View so restart cost is bounded by the delta
// since the last snapshot) and the TSnap catch-up verb (a cold-booting
// node pulls one peer's View over the wire and Merges it). The encoding
// carries exactly the view's CONTENT — owner, per-origin sequence
// numbers, location entries, and the inverted attribute index. Per-origin
// Bloom filters are NOT serialized: the inverted index is the exact
// ground truth they are rebuilt from (the same rebuildFilter discipline a
// saturated filter already uses), which keeps the format free of
// filter-sizing drift and guarantees DecodeView(v.Encode()) has
// v's Fingerprint.

import (
	"encoding/json"
	"fmt"
	"sort"

	"pass/internal/netsim"
	"pass/internal/provenance"
)

// wireLoc is one id→home location entry.
type wireLoc struct {
	ID   []byte `json:"id"`
	Home int64  `json:"home"`
}

// wireAttr is one inverted-index posting: attribute key → origins.
type wireAttr struct {
	Key   string  `json:"key"`
	Sites []int64 `json:"sites"`
}

// wireView is the serialized form of a View.
type wireView struct {
	Owner int64             `json:"owner"`
	Seqs  map[string]uint64 `json:"seqs"`
	Locs  []wireLoc         `json:"locs"`
	Attrs []wireAttr        `json:"attrs"`
}

// Encode serializes the view's content (owner, sequence vector, location
// entries, inverted attribute index). Output is deterministic: entries
// are sorted, so two views with equal Fingerprints encode identically.
func (v *View) Encode() ([]byte, error) {
	w := wireView{
		Owner: int64(v.owner),
		Seqs:  make(map[string]uint64, len(v.seq)),
	}
	for origin, seq := range v.seq {
		w.Seqs[fmt.Sprint(int64(origin))] = seq
	}
	ids := make([]provenance.ID, 0, len(v.loc))
	for id := range v.loc {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return lessID(ids[i], ids[j]) })
	w.Locs = make([]wireLoc, 0, len(ids))
	for _, id := range ids {
		idCopy := append([]byte(nil), id[:]...)
		w.Locs = append(w.Locs, wireLoc{ID: idCopy, Home: int64(v.loc[id])})
	}
	keys := make([]string, 0, len(v.attrSites))
	for k := range v.attrSites {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Attrs = make([]wireAttr, 0, len(keys))
	for _, k := range keys {
		sites := make([]int64, 0, len(v.attrSites[k]))
		for s := range v.attrSites[k] {
			sites = append(sites, int64(s))
		}
		sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
		w.Attrs = append(w.Attrs, wireAttr{Key: k, Sites: sites})
	}
	return json.Marshal(w)
}

// DecodeView reconstructs a View from Encode output. Per-origin filters
// are rebuilt from the inverted index exactly as rebuildFilter would, so
// the no-false-negatives guarantee holds and the decoded view's
// Fingerprint equals the encoded view's. The applied/ignored bookkeeping
// counters are not part of the content and restart at zero.
func DecodeView(data []byte) (*View, error) {
	var w wireView
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("siteview: decode view: %w", err)
	}
	v := NewView(netsim.SiteID(w.Owner))
	for originStr, seq := range w.Seqs {
		var origin int64
		if _, err := fmt.Sscan(originStr, &origin); err != nil {
			return nil, fmt.Errorf("siteview: decode view origin %q: %w", originStr, err)
		}
		v.seq[netsim.SiteID(origin)] = seq
	}
	for _, le := range w.Locs {
		if len(le.ID) != len(provenance.ID{}) {
			return nil, fmt.Errorf("siteview: decode view: location id of %d bytes", len(le.ID))
		}
		var id provenance.ID
		copy(id[:], le.ID)
		v.loc[id] = netsim.SiteID(le.Home)
	}
	perOrigin := make(map[netsim.SiteID][]string)
	for _, ae := range w.Attrs {
		set := make(map[netsim.SiteID]struct{}, len(ae.Sites))
		for _, s := range ae.Sites {
			origin := netsim.SiteID(s)
			set[origin] = struct{}{}
			perOrigin[origin] = append(perOrigin[origin], ae.Key)
		}
		v.attrSites[ae.Key] = set
	}
	origins := make([]netsim.SiteID, 0, len(perOrigin))
	for origin := range perOrigin {
		origins = append(origins, origin)
	}
	sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })
	for _, origin := range origins {
		keys := perOrigin[origin]
		sort.Strings(keys)
		v.addFilterKeys(origin, keys)
	}
	return v, nil
}
