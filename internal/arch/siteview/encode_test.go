package siteview

import (
	"testing"

	"pass/internal/netsim"
	"pass/internal/provenance"
)

func mkID(b byte) provenance.ID {
	var id provenance.ID
	id[0] = b
	id[31] = ^b
	return id
}

// buildTestView applies a few origins' delta streams, including enough
// distinct attribute keys to force at least one filter rebuild.
func buildTestView(t *testing.T) *View {
	t.Helper()
	v := NewView(7)
	for origin := netsim.SiteID(1); origin <= 3; origin++ {
		for seq := uint64(1); seq <= 4; seq++ {
			keys := []string{
				"domain\x00sensors",
				"n\x00" + string(rune('a'+byte(origin))) + string(rune('a'+byte(seq))),
			}
			d := NewDelta(origin, seq, []provenance.ID{mkID(byte(origin)*16 + byte(seq))}, keys)
			if !v.Apply(d) {
				t.Fatalf("apply origin %d seq %d refused", origin, seq)
			}
		}
	}
	return v
}

func TestEncodeDecodeRoundTripPreservesContent(t *testing.T) {
	v := buildTestView(t)
	data, err := v.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeView(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Owner() != v.Owner() {
		t.Fatalf("owner %d != %d", got.Owner(), v.Owner())
	}
	if got.Fingerprint() != v.Fingerprint() {
		t.Fatalf("fingerprint changed across encode/decode: %x != %x", got.Fingerprint(), v.Fingerprint())
	}
	for origin := netsim.SiteID(1); origin <= 3; origin++ {
		if got.Seq(origin) != v.Seq(origin) {
			t.Fatalf("origin %d seq %d != %d", origin, got.Seq(origin), v.Seq(origin))
		}
	}
	if got.Locations() != v.Locations() {
		t.Fatalf("locations %d != %d", got.Locations(), v.Locations())
	}
	// The rebuilt filters keep the no-false-negatives guarantee: every
	// exact-index site must remain a candidate.
	for _, key := range []string{"domain\x00sensors"} {
		exact := v.SitesFor(key)
		cands := map[netsim.SiteID]bool{}
		for _, s := range got.CandidatesFor(key) {
			cands[s] = true
		}
		for _, s := range exact {
			if !cands[s] {
				t.Fatalf("decoded view lost site %d for key %q", s, key)
			}
		}
	}
}

func TestEncodeIsDeterministic(t *testing.T) {
	v := buildTestView(t)
	a, err := v.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := v.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("two Encode calls on the same view differ")
	}
}

// TestDecodedViewKeepsApplying pins the recovery contract: a view
// restored from a snapshot must keep accepting the next in-sequence
// delta from every origin, and keep refusing replays.
func TestDecodedViewKeepsApplying(t *testing.T) {
	v := buildTestView(t)
	data, err := v.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeView(data)
	if err != nil {
		t.Fatal(err)
	}
	replay := NewDelta(1, 4, []provenance.ID{mkID(0x14)}, []string{"domain\x00sensors"})
	if got.Apply(replay) {
		t.Fatal("decoded view accepted an already-applied sequence number")
	}
	next := NewDelta(1, 5, []provenance.ID{mkID(0x15)}, []string{"domain\x00sensors"})
	if !got.Apply(next) {
		t.Fatal("decoded view refused the next in-sequence delta")
	}
}

func TestDecodeViewRejectsGarbage(t *testing.T) {
	if _, err := DecodeView([]byte("{not json")); err == nil {
		t.Fatal("garbage decoded")
	}
	if _, err := DecodeView([]byte(`{"owner":1,"locs":[{"id":"AAE=","home":2}]}`)); err == nil {
		t.Fatal("short location id accepted")
	}
}
