package central

import (
	"errors"
	"testing"

	"pass/internal/arch"
	"pass/internal/arch/archtest"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

func TestConformance(t *testing.T) {
	archtest.Run(t, archtest.Config{
		Make: func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return New(net, sites[0])
		},
	})
}

func TestEveryPublishCrossesToWarehouse(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites[0]) // warehouse in boston
	// Publishing from london must generate WAN traffic.
	before := net.Stats().WANBytes
	if _, err := m.Publish(archtest.PubAt(1, sites[2])); err != nil {
		t.Fatal(err)
	}
	if net.Stats().WANBytes <= before {
		t.Fatal("london publish generated no WAN bytes")
	}
	if m.IndexedRecords() != 1 {
		t.Fatalf("indexed = %d", m.IndexedRecords())
	}
}

func TestLocalQueryStillPaysWarehouseTrip(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites[0])
	// Producer and consumer both in london; warehouse in boston.
	if _, err := m.Publish(archtest.PubAt(1, sites[2],
		provenance.Attr("zone", provenance.String("london")))); err != nil {
		t.Fatal(err)
	}
	net.ResetStats()
	_, _, err := m.QueryAttr(sites[3], "zone", provenance.String("london"))
	if err != nil {
		t.Fatal(err)
	}
	if net.Stats().WANBytes == 0 {
		t.Fatal("zone-local query should still cross the WAN to the warehouse")
	}
}

func TestCorruptLinksBreaksLookups(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites[0])
	var ids []provenance.ID
	for i := byte(1); i <= 20; i++ {
		p := archtest.PubAt(i, sites[0])
		if _, err := m.Publish(p); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, p.ID)
	}
	broke := m.CorruptLinks(1.0)
	if broke != 20 {
		t.Fatalf("broke %d links, want 20", broke)
	}
	for _, id := range ids {
		if _, _, err := m.Lookup(sites[1], id); !errors.Is(err, ErrDanglingLink) {
			t.Fatalf("lookup of corrupted link: %v", err)
		}
	}
	// Attribute queries still return the (now dangling) IDs: precision loss.
	got, _, err := m.QueryAttr(sites[1], "~type", provenance.String("raw"))
	if err != nil || len(got) != 20 {
		t.Fatalf("postings after corruption = %d, %v", len(got), err)
	}
}

func TestCorruptLinksZeroFraction(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites[0])
	m.Publish(archtest.PubAt(1, sites[0]))
	if n := m.CorruptLinks(0); n != 0 {
		t.Fatalf("corrupted %d with fraction 0", n)
	}
}

func TestWarehouseDownFailsPublish(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites[0])
	net.Fail(sites[0])
	if _, err := m.Publish(archtest.PubAt(1, sites[2])); err == nil {
		t.Fatal("publish to failed warehouse succeeded")
	}
}
