// Package central implements Section IV-A's centralized model: "provenance
// metadata is sent to some central data warehouse, where it is examined
// and indexed; query processing is then done within the warehouse."
//
// Strengths the paper concedes: speed, simplicity, effective recursive
// queries (the whole ancestry graph sits in one place). Weaknesses it
// predicts, which the experiments measure:
//
//   - every publish crosses the WAN to the warehouse, so ingest bytes and
//     warehouse load grow with the total sensor update rate (E5);
//   - queries from anywhere pay the round trip to the warehouse even when
//     producer and consumer share a zone (E6);
//   - "when the index is only loosely coupled to the actual data there is
//     a risk of inconsistencies creeping in: the linkage back from the
//     index to the data might break" — modelled by CorruptLinks, which
//     makes a fraction of index entries dangle (E13's quality column).
package central

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"pass/internal/arch"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

// ErrDanglingLink reports an index entry whose back-link to the data has
// broken (loose coupling).
var ErrDanglingLink = errors.New("central: index entry dangles (loose coupling)")

// Model is the centralized warehouse. It implements arch.Admitter: the
// warehouse is the architecture's one ingest bottleneck, so it is where
// admission control earns its keep under overload (E18).
type Model struct {
	arch.AdmissionSlot
	mu        sync.Mutex
	net       arch.Network
	warehouse netsim.SiteID
	store     *arch.SiteStore
	dangling  map[provenance.ID]bool
	rng       *arch.Rand
	rto       *arch.RTO
}

// New builds a centralized model with its index at warehouse.
func New(net arch.Network, warehouse netsim.SiteID) *Model {
	return &Model{
		net:       net,
		warehouse: warehouse,
		store:     arch.NewSiteStore(),
		dangling:  make(map[provenance.ID]bool),
		rng:       arch.NewRand(1),
		rto:       arch.NewRTO(0xCE27A1),
	}
}

// Name implements arch.Model.
func (m *Model) Name() string { return "central" }

// Publish ships the metadata to the warehouse and waits for the ack. The
// producer retransmits on lost messages (it knows delivery failed when no
// ack arrives), so under packet loss publishes cost extra bandwidth and
// latency but still land; only a down or partitioned warehouse makes the
// publish fail outright.
//
// With an admission controller installed the warehouse first offers the
// publish to it, charging the estimated service cost (the two legs of the
// exchange): shed publishes return a ratelimit error without touching the
// network, and admitted ones add the controller's queueing delay to the
// reported latency.
func (m *Model) Publish(p arch.Pub) (time.Duration, error) {
	var wait time.Duration
	if adm := m.Admission(); adm != nil {
		est, _ := m.net.Latency(p.Origin, m.warehouse, p.WireSize())
		ack, _ := m.net.Latency(m.warehouse, p.Origin, arch.AckWire)
		w, err := adm.Offer(int64(p.Origin), est+ack)
		if err != nil {
			return 0, err
		}
		wait = w
	}
	d, err := arch.Retry(m.rto, arch.SendRetries, func() (time.Duration, error) {
		d1, err := m.net.Send(p.Origin, m.warehouse, p.WireSize())
		if err != nil {
			return d1, err
		}
		m.mu.Lock()
		m.store.Add(p.ID, p.Rec)
		m.mu.Unlock()
		d2, err := m.net.Send(m.warehouse, p.Origin, arch.AckWire)
		if err != nil {
			// The warehouse indexed the record but the ack was lost; the
			// producer retries and the duplicate Add is a no-op.
			return d1 + d2, err
		}
		return d1 + d2, nil
	})
	return wait + d, err
}

// Lookup fetches a record from the warehouse.
func (m *Model) Lookup(from netsim.SiteID, id provenance.ID) (*provenance.Record, time.Duration, error) {
	m.mu.Lock()
	rec, ok := m.store.Get(id)
	dangle := m.dangling[id]
	m.mu.Unlock()
	respSize := arch.RespOverhead
	if ok {
		respSize += len(rec.Encode())
	}
	d, err := arch.Retry(m.rto, arch.SendRetries, func() (time.Duration, error) {
		return m.net.Call(from, m.warehouse, arch.ReqOverhead+arch.IDWire, respSize)
	})
	if err != nil {
		return nil, d, err
	}
	if !ok {
		return nil, d, fmt.Errorf("central: %s not indexed", id.Short())
	}
	if dangle {
		return nil, d, fmt.Errorf("%w: %s", ErrDanglingLink, id.Short())
	}
	return rec, d, nil
}

// QueryAttr answers an attribute query at the warehouse. Dangling entries
// are returned (the warehouse cannot know they broke), so precision
// degrades under loose coupling — measured by E13's quality audit.
func (m *Model) QueryAttr(from netsim.SiteID, key string, value provenance.Value) ([]provenance.ID, time.Duration, error) {
	m.mu.Lock()
	ids := append([]provenance.ID(nil), m.store.LookupAttr(key, value)...)
	m.mu.Unlock()
	d, err := arch.Retry(m.rto, arch.SendRetries, func() (time.Duration, error) {
		return m.net.Call(from, m.warehouse, arch.AttrReqSize(key, value), arch.IDListRespSize(len(ids)))
	})
	if err != nil {
		return nil, d, err
	}
	return ids, d, nil
}

// QueryAncestors computes the closure entirely inside the warehouse: one
// round trip, arbitrarily deep. This is the centralized model's genuine
// strength ("centralized setups are also as likely as any to be able to
// handle recursive queries").
func (m *Model) QueryAncestors(from netsim.SiteID, id provenance.ID) ([]provenance.ID, time.Duration, error) {
	m.mu.Lock()
	found, _ := m.store.LocalAncestors([]provenance.ID{id})
	m.mu.Unlock()
	d, err := arch.Retry(m.rto, arch.SendRetries, func() (time.Duration, error) {
		return m.net.Call(from, m.warehouse, arch.ReqOverhead+arch.IDWire, arch.IDListRespSize(len(found)))
	})
	if err != nil {
		return nil, d, err
	}
	return found, d, nil
}

// Tick implements arch.Model; the warehouse's only periodic work is
// advancing its admission controller (budget drain + bucket refill) when
// one is installed.
func (m *Model) Tick() error {
	if adm := m.Admission(); adm != nil {
		adm.Tick()
	}
	return nil
}

// CorruptLinks breaks the data back-link of the given fraction of indexed
// records (loose-coupling failure injection) and returns how many broke.
func (m *Model) CorruptLinks(fraction float64) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, id := range m.store.IDs() {
		if m.rng.Float64() < fraction {
			m.dangling[id] = true
			n++
		}
	}
	return n
}

// IndexedRecords returns the warehouse record count.
func (m *Model) IndexedRecords() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.store.Len()
}
