package arch

import (
	"testing"
	"time"

	"pass/internal/provenance"
)

func digestOf(b byte) (d [32]byte) {
	for i := range d {
		d[i] = b
	}
	return
}

func mkRaw(t *testing.T, seed byte, attrs ...provenance.Attribute) (provenance.ID, *provenance.Record) {
	t.Helper()
	rec, id, err := provenance.NewRaw(digestOf(seed), int64(seed)).Attrs(attrs...).CreatedAt(int64(seed)).Build()
	if err != nil {
		t.Fatal(err)
	}
	return id, rec
}

func mkDerived(t *testing.T, seed byte, parents ...provenance.ID) (provenance.ID, *provenance.Record) {
	t.Helper()
	rec, id, err := provenance.NewDerived(digestOf(seed), int64(seed), "tool", "1", parents...).CreatedAt(int64(seed)).Build()
	if err != nil {
		t.Fatal(err)
	}
	return id, rec
}

func TestSiteStoreAddGetIdempotent(t *testing.T) {
	st := NewSiteStore()
	id, rec := mkRaw(t, 1, provenance.Attr("k", provenance.String("v")))
	st.Add(id, rec)
	st.Add(id, rec) // idempotent
	if st.Len() != 1 {
		t.Fatalf("len = %d", st.Len())
	}
	got, ok := st.Get(id)
	if !ok || got != rec {
		t.Fatal("get failed")
	}
	if _, ok := st.Get(provenance.ID(digestOf(9))); ok {
		t.Fatal("found missing record")
	}
	// Postings not duplicated by the second Add.
	if n := len(st.LookupAttr("k", provenance.String("v"))); n != 1 {
		t.Fatalf("postings = %d", n)
	}
}

func TestSiteStoreAttrAndAncestry(t *testing.T) {
	st := NewSiteStore()
	a, recA := mkRaw(t, 1, provenance.Attr("zone", provenance.String("boston")))
	b, recB := mkDerived(t, 2, a)
	st.Add(a, recA)
	st.Add(b, recB)

	if got := st.LookupAttr("zone", provenance.String("boston")); len(got) != 1 || got[0] != a {
		t.Fatalf("attr lookup = %v", got)
	}
	// Synthetic attributes indexed too.
	if got := st.LookupAttr("~type", provenance.String("derived")); len(got) != 1 || got[0] != b {
		t.Fatalf("~type lookup = %v", got)
	}
	if got := st.LookupAttr("~tool", provenance.String("tool")); len(got) != 1 {
		t.Fatalf("~tool lookup = %v", got)
	}
	if got := st.Children(a); len(got) != 1 || got[0] != b {
		t.Fatalf("children = %v", got)
	}
	if got := st.Parents(b); len(got) != 1 || got[0] != a {
		t.Fatalf("parents = %v", got)
	}
	if got := st.Parents(provenance.ID(digestOf(8))); got != nil {
		t.Fatal("parents of unknown record")
	}
}

func TestLocalAncestorsResolvesLocalSubDAG(t *testing.T) {
	st := NewSiteStore()
	// a <- b <- c all local; c <- d where d's record is elsewhere.
	a, recA := mkRaw(t, 1)
	b, recB := mkDerived(t, 2, a)
	remote := provenance.ID(digestOf(77)) // not added to this store
	c, recC := func() (provenance.ID, *provenance.Record) {
		rec, id, err := provenance.NewDerived(digestOf(3), 3, "t", "1", b, remote).CreatedAt(3).Build()
		if err != nil {
			t.Fatal(err)
		}
		return id, rec
	}()
	st.Add(a, recA)
	st.Add(b, recB)
	st.Add(c, recC)

	found, unresolved := st.LocalAncestors([]provenance.ID{c})
	if len(found) != 2 { // a and b
		t.Fatalf("found %d local ancestors, want 2", len(found))
	}
	if len(unresolved) != 1 || unresolved[0] != remote {
		t.Fatalf("unresolved = %v", unresolved)
	}
	// Unknown frontier entries are ignored (no panic, nothing found).
	found, unresolved = st.LocalAncestors([]provenance.ID{provenance.ID(digestOf(99))})
	if len(found) != 0 || len(unresolved) != 0 {
		t.Fatalf("unknown frontier: %v, %v", found, unresolved)
	}
}

func TestQueriableAttrs(t *testing.T) {
	_, raw := mkRaw(t, 1, provenance.Attr("k", provenance.String("v")))
	attrs := QueriableAttrs(raw)
	// Original + ~type (raw has no tool).
	if len(attrs) != 2 {
		t.Fatalf("raw queriable attrs = %d, want 2", len(attrs))
	}
	a, _ := mkRaw(t, 2)
	_, der := mkDerived(t, 3, a)
	attrs = QueriableAttrs(der)
	// ~type + ~tool.
	if len(attrs) != 2 {
		t.Fatalf("derived queriable attrs = %d, want 2", len(attrs))
	}
	hasTool := false
	for _, at := range attrs {
		if at.Key == "~tool" && at.Value.Str == "tool" {
			hasTool = true
		}
	}
	if !hasTool {
		t.Fatal("~tool missing")
	}
}

func TestWireSizes(t *testing.T) {
	if AttrReqSize("zone", provenance.String("boston")) <= ReqOverhead {
		t.Fatal("attr request size does not include payload")
	}
	if IDListRespSize(10) != RespOverhead+10*IDWire {
		t.Fatal("response size arithmetic wrong")
	}
	_, rec := mkRaw(t, 1, provenance.Attr("k", provenance.String("v")))
	p := Pub{Rec: rec}
	if p.WireSize() != len(rec.Encode()) {
		t.Fatal("pub wire size != record encoding")
	}
}

func TestIDsDeterministic(t *testing.T) {
	st := NewSiteStore()
	for i := byte(1); i <= 10; i++ {
		id, rec := mkRaw(t, i)
		st.Add(id, rec)
	}
	a := st.IDs()
	b := st.IDs()
	if len(a) != 10 {
		t.Fatalf("ids = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("IDs() not deterministic")
		}
		if i > 0 && !less(a[i-1], a[i]) {
			t.Fatal("IDs() not sorted")
		}
	}
}

func less(a, b provenance.ID) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func TestRandDeterminismAndRanges(t *testing.T) {
	r1, r2 := NewRand(5), NewRand(5)
	for i := 0; i < 100; i++ {
		if r1.Next() != r2.Next() {
			t.Fatal("same seed diverged")
		}
	}
	r := NewRand(0) // remapped internally
	for i := 0; i < 1000; i++ {
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v", v)
		}
		if n := r.Intn(7); n < 0 || n >= 7 {
			t.Fatalf("Intn = %d", n)
		}
	}
	if r.Intn(0) != 0 || r.Intn(-3) != 0 {
		t.Fatal("degenerate Intn")
	}
}

func TestMaxDuration(t *testing.T) {
	if MaxDuration(time.Second, time.Minute) != time.Minute {
		t.Fatal("max wrong")
	}
	if MaxDuration(time.Minute, time.Second) != time.Minute {
		t.Fatal("max wrong (reversed)")
	}
}

// TestRTOPenaltyCappedWithJitter pins the backoff ceiling: the penalty
// grows exponentially from RTOBase, every value stays within the jitter
// band of its nominal timeout, and — the cap satellite — no attempt
// count, however large, ever produces a penalty above RTOMax. Before the
// fix, jitter was applied after the cap and could push the charged
// timeout to 1.25×RTOMax.
func TestRTOPenaltyCappedWithJitter(t *testing.T) {
	rto := NewRTO(0xCA9)
	for attempt := 0; attempt < 200; attempt++ {
		nominal := RTOMax
		if attempt < 63 {
			if shifted := RTOBase << uint(attempt); shifted > 0 && shifted < RTOMax {
				nominal = shifted
			}
		}
		for rep := 0; rep < 50; rep++ {
			p := rto.Penalty(attempt)
			if p > RTOMax {
				t.Fatalf("attempt %d: penalty %v exceeds RTOMax %v", attempt, p, RTOMax)
			}
			if min := time.Duration(float64(nominal) * 0.75); p < min {
				t.Fatalf("attempt %d: penalty %v below jitter floor %v", attempt, p, min)
			}
			if nominal < RTOMax {
				if max := time.Duration(float64(nominal) * 1.25); p > max {
					t.Fatalf("attempt %d: penalty %v above jitter ceiling %v", attempt, p, max)
				}
			}
		}
	}
	// Growth: early attempts must actually back off (mean over jitter).
	lo, hi := time.Duration(0), time.Duration(0)
	for rep := 0; rep < 64; rep++ {
		lo += rto.Penalty(0)
		hi += rto.Penalty(3)
	}
	if hi <= lo {
		t.Fatalf("no exponential growth: attempt-3 total %v <= attempt-0 total %v", hi, lo)
	}
}

// TestRTOPenaltyNilAndDeterministic: a nil clock charges nothing, and two
// clocks with one seed draw identical jitter sequences.
func TestRTOPenaltyNilAndDeterministic(t *testing.T) {
	var nilRTO *RTO
	if p := nilRTO.Penalty(5); p != 0 {
		t.Fatalf("nil RTO charged %v", p)
	}
	a, b := NewRTO(7), NewRTO(7)
	for i := 0; i < 100; i++ {
		if pa, pb := a.Penalty(i%8), b.Penalty(i%8); pa != pb {
			t.Fatalf("draw %d diverged: %v vs %v", i, pa, pb)
		}
	}
}
