package passnet

import (
	"fmt"
	"testing"

	"pass/internal/arch/archtest"
	"pass/internal/geo"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

// Ablation benchmarks for the distributed-PASS design knobs: immediate vs
// batched digests (freshness vs bandwidth) and replicate-on-read
// (Section V's cheap-replication extension).

func worldNet() (*netsim.Network, []netsim.SiteID) {
	net := netsim.New(netsim.Config{})
	var sites []netsim.SiteID
	for _, z := range geo.WorldCities().Zones() {
		sites = append(sites, net.AddSite(z.Name, z.Center, z.Name))
	}
	return net, sites
}

func BenchmarkPublishDigestMode(b *testing.B) {
	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"immediate", Options{ImmediateDigest: true}},
		{"batched", Options{}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			net, sites := worldNet()
			m := New(net, sites, mode.opts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := archtest.PubAt(byte(i%250+1), sites[i%len(sites)],
					provenance.Attr("seq", provenance.Int64(int64(i))))
				if _, err := m.Publish(p); err != nil {
					b.Fatal(err)
				}
				if !mode.opts.ImmediateDigest && i%64 == 63 {
					if err := m.Tick(); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			st := net.Stats()
			b.ReportMetric(float64(st.WANBytes)/float64(b.N), "wan-B/pub")
		})
	}
}

// BenchmarkPassnetTick measures one digest-gossip maintenance round: a
// fresh batch of publishes is queued, then Tick flushes every origin's
// outbox to every peer (the anti-entropy fan-out that dominates passnet's
// wall-clock in the large sweeps). Part of `make bench-quick`.
func BenchmarkPassnetTick(b *testing.B) {
	net, sites := worldNet()
	m := New(net, sites, Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 8; j++ {
			p := archtest.PubAt(byte((i*8+j)%250+1), sites[(i*8+j)%len(sites)],
				provenance.Attr("seq", provenance.Int64(int64(i*8+j))))
			if _, err := m.Publish(p); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if err := m.Tick(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookupReplication(b *testing.B) {
	for _, replicate := range []bool{false, true} {
		b.Run(fmt.Sprintf("replicate=%v", replicate), func(b *testing.B) {
			net, sites := worldNet()
			m := New(net, sites, Options{ImmediateDigest: true, ReplicateOnRead: replicate})
			// Data lives in tokyo; a boston consumer reads it repeatedly.
			var ids []provenance.ID
			for i := 0; i < 32; i++ {
				p := archtest.PubAt(byte(i+1), sites[4]) // tokyo
				if _, err := m.Publish(p); err != nil {
					b.Fatal(err)
				}
				ids = append(ids, p.ID)
			}
			boston := sites[0]
			net.ResetStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := m.Lookup(boston, ids[i%len(ids)]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := net.Stats()
			b.ReportMetric(float64(st.WANBytes)/float64(b.N), "wan-B/lookup")
		})
	}
}
