// Package passnet implements the paper's own proposal (Section V): merge
// local PASS installations into a single globally searchable archive
// while keeping data where it belongs — "because sensor data is locale
// specific ... it should be stored near the network or its primary
// users" (Section III).
//
// Design, matching the research agenda's requirements:
//
//   - Publish commits to the producing site's local PASS only; no record
//     metadata crosses the WAN at ingest.
//   - Each site gossips a compact digest to its peers: a Bloom filter of
//     its attribute postings plus id→site location entries. Digests ride
//     on Tick (periodic) or, when ImmediateDigest is set, piggyback on
//     every publish (tiny messages, the freshness/bandwidth ablation).
//   - QueryAttr consults the local digest table and contacts only the
//     sites whose filters may hold the attribute — typically one or two,
//     not all (contrast with feddb's full fan-out). Bloom false positives
//     cost an extra empty round trip, never a wrong answer.
//   - QueryAncestors chases lineage site to site, but each visited site
//     resolves the whole locally-held sub-DAG in one round trip
//     (server-side traversal), so a chain spanning k sites costs ~k round
//     trips no matter how long it is (E11).
package passnet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"pass/internal/arch"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

// digestEntryWire approximates the wire size of one id→site location
// entry in a digest delta.
const digestEntryWire = arch.IDWire + 4

// bloomBitsPerAttr sizes the per-delta attribute filter.
const bloomBitsPerAttr = 12

// Model is the distributed PASS.
type Model struct {
	mu    sync.Mutex
	net   *netsim.Network
	sites []netsim.SiteID

	stores map[netsim.SiteID]*arch.SiteStore

	// Global soft metadata each site maintains about its peers, built
	// from digests. In the simulation all sites see the same tables once
	// a digest is delivered; per-site staleness is tracked via pending.
	loc      map[provenance.ID]netsim.SiteID // id -> home site (from digests)
	attrSite map[string]map[netsim.SiteID]struct{}

	// pending digests not yet gossiped, per producing site.
	pending map[netsim.SiteID][]arch.Pub
	// outbox holds digest deltas whose delivery is in progress: each
	// delta tracks which peers still need it, so a lost or partitioned
	// send is retried on a later gossip round without re-sending to peers
	// that already heard it.
	outbox map[netsim.SiteID][]*outDelta

	// ImmediateDigest pushes digest deltas on every publish instead of
	// waiting for Tick.
	immediate bool

	// replicate enables replicate-on-read; replicas holds each site's
	// read cache. Records are immutable, so cached replicas never
	// invalidate.
	replicate bool
	replicas  map[netsim.SiteID]map[provenance.ID]*provenance.Record

	// lastContacted reports sites contacted by the most recent QueryAttr.
	lastContacted int
	// replicaHits counts lookups served from a read replica.
	replicaHits int64
}

// Options tunes the distributed PASS.
type Options struct {
	// ImmediateDigest gossips digest deltas synchronously on publish
	// (freshness at the price of n-1 tiny messages per publish). When
	// false, deltas batch until the next Tick.
	ImmediateDigest bool
	// ReplicateOnRead caches fetched records at the querying site, the
	// paper's Section V extension ("replication is desirable for
	// reliability and for query performance; supporting replication
	// cheaply is an interesting problem"). Replication here is free at
	// write time — replicas materialize only along actual read paths, so
	// popular data converges toward its consumers. Provenance records are
	// immutable, so replicas can never go stale.
	ReplicateOnRead bool
}

// New builds a distributed PASS over the given sites.
func New(net *netsim.Network, sites []netsim.SiteID, opts Options) *Model {
	m := &Model{
		net:       net,
		sites:     append([]netsim.SiteID(nil), sites...),
		stores:    make(map[netsim.SiteID]*arch.SiteStore),
		loc:       make(map[provenance.ID]netsim.SiteID),
		attrSite:  make(map[string]map[netsim.SiteID]struct{}),
		pending:   make(map[netsim.SiteID][]arch.Pub),
		outbox:    make(map[netsim.SiteID][]*outDelta),
		immediate: opts.ImmediateDigest,
		replicate: opts.ReplicateOnRead,
		replicas:  make(map[netsim.SiteID]map[provenance.ID]*provenance.Record),
	}
	for _, s := range sites {
		m.stores[s] = arch.NewSiteStore()
		m.replicas[s] = make(map[provenance.ID]*provenance.Record)
	}
	return m
}

// Name implements arch.Model.
func (m *Model) Name() string { return "passnet" }

// Publish commits locally; metadata never leaves the zone unless
// ImmediateDigest pushes the tiny delta.
func (m *Model) Publish(p arch.Pub) (time.Duration, error) {
	st, ok := m.stores[p.Origin]
	if !ok {
		return 0, fmt.Errorf("passnet: unknown site %d", p.Origin)
	}
	d, err := m.net.Send(p.Origin, p.Origin, p.WireSize())
	if err != nil {
		return 0, err
	}
	m.mu.Lock()
	st.Add(p.ID, p.Rec)
	m.pending[p.Origin] = append(m.pending[p.Origin], p)
	m.mu.Unlock()
	if m.immediate {
		if err := m.gossipFrom(p.Origin); err != nil {
			return d, err
		}
	}
	return d, nil
}

// digestSize estimates the wire size of a delta covering pubs.
func digestSize(pubs []arch.Pub) int {
	attrs := 0
	for _, p := range pubs {
		attrs += len(p.Rec.Attributes)
	}
	return len(pubs)*digestEntryWire + (attrs*bloomBitsPerAttr+7)/8 + arch.RespOverhead
}

// outDelta is one digest delta in flight: the publications it covers and
// the peers that have not yet received it.
type outDelta struct {
	pubs      []arch.Pub
	size      int
	remaining map[netsim.SiteID]struct{}
}

// gossipFrom pushes site's queued digest deltas to every peer that still
// needs them. Delivery is tracked per peer: a send lost in transit or
// blocked by a partition keeps that peer in the delta's remaining set and
// is retried on the next gossip round, while a crashed peer is dropped
// from the set (it resynchronizes from its neighbours when it rejoins —
// the simulation's shared digest table stands in for that anti-entropy).
// A delta becomes globally visible once every live peer has heard it.
func (m *Model) gossipFrom(site netsim.SiteID) error {
	if m.net.IsDown(site) {
		return nil // a crashed site gossips nothing; retried after recovery
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if pubs := m.pending[site]; len(pubs) > 0 {
		delete(m.pending, site)
		rem := make(map[netsim.SiteID]struct{}, len(m.sites)-1)
		for _, p := range m.sites {
			if p != site {
				rem[p] = struct{}{}
			}
		}
		m.outbox[site] = append(m.outbox[site], &outDelta{pubs: pubs, size: digestSize(pubs), remaining: rem})
	}
	var live []*outDelta
	for _, delta := range m.outbox[site] {
		// Peers in deterministic site order: map-order iteration would
		// scramble the packet-loss draws across runs.
		for _, peer := range m.sites {
			if _, need := delta.remaining[peer]; !need {
				continue
			}
			_, err := m.net.Send(site, peer, delta.size)
			switch {
			case err == nil:
				delete(delta.remaining, peer)
			case errors.Is(err, netsim.ErrSiteDown):
				delete(delta.remaining, peer) // crashed peer: resyncs on rejoin
			case arch.IsUnavailable(err):
				// Lost or partitioned: keep the peer in remaining and
				// retry on a later round.
			default:
				return err
			}
		}
		if len(delta.remaining) == 0 {
			for _, p := range delta.pubs {
				m.loc[p.ID] = site
				for _, a := range arch.QueriableAttrs(p.Rec) {
					mk := a.Key + "\x00" + string(a.Value.Canonical())
					set, ok := m.attrSite[mk]
					if !ok {
						set = make(map[netsim.SiteID]struct{})
						m.attrSite[mk] = set
					}
					set[site] = struct{}{}
				}
			}
		} else {
			live = append(live, delta)
		}
	}
	m.outbox[site] = live
	return nil
}

// Tick gossips every site's pending digest delta.
func (m *Model) Tick() error {
	for _, s := range m.sites {
		if err := m.gossipFrom(s); err != nil {
			return err
		}
	}
	return nil
}

// Lookup resolves the record's home from the digest-built location table
// and fetches it directly: one round trip, usually within the zone for
// local data.
func (m *Model) Lookup(from netsim.SiteID, id provenance.ID) (*provenance.Record, time.Duration, error) {
	// Read replica: a previously fetched copy answers locally (records
	// are immutable, so this is always correct).
	if m.replicate {
		m.mu.Lock()
		if rec, ok := m.replicas[from][id]; ok {
			m.replicaHits++
			m.mu.Unlock()
			d, err := m.net.Send(from, from, arch.ReqOverhead+arch.IDWire)
			return rec, d, err
		}
		m.mu.Unlock()
	}
	m.mu.Lock()
	home, known := m.loc[id]
	if !known {
		// Not yet gossiped: check the querier's own store first (local
		// data is always immediately visible).
		if _, ok := m.stores[from].Get(id); ok {
			home, known = from, true
		}
	}
	m.mu.Unlock()
	if !known {
		return nil, 0, fmt.Errorf("passnet: %s not yet visible (digest pending)", id.Short())
	}
	m.mu.Lock()
	rec, ok := m.stores[home].Get(id)
	m.mu.Unlock()
	respSize := arch.RespOverhead
	if ok {
		respSize += len(rec.Encode())
	}
	d, err := arch.Retry(arch.SendRetries, func() (time.Duration, error) {
		return m.net.Call(from, home, arch.ReqOverhead+arch.IDWire, respSize)
	})
	if err != nil {
		return nil, d, err
	}
	if !ok {
		return nil, d, fmt.Errorf("passnet: location table points at %d but %s is gone", home, id.Short())
	}
	if m.replicate && home != from {
		m.mu.Lock()
		m.replicas[from][id] = rec
		m.mu.Unlock()
	}
	return rec, d, nil
}

// ReplicaHits reports lookups served from read replicas.
func (m *Model) ReplicaHits() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.replicaHits
}

// ReplicaCount reports the number of replicas cached at a site.
func (m *Model) ReplicaCount(s netsim.SiteID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.replicas[s])
}

// QueryAttr contacts only the sites whose digests may hold (key, value),
// plus the querier's own store (always fresh). Unreachable candidate
// sites are skipped after retransmission — the answer degrades to what
// the reachable sites hold.
func (m *Model) QueryAttr(from netsim.SiteID, key string, value provenance.Value) ([]provenance.ID, time.Duration, error) {
	mk := key + "\x00" + string(value.Canonical())
	m.mu.Lock()
	candidates := make([]netsim.SiteID, 0, len(m.attrSite[mk])+1)
	ownListed := false
	for s := range m.attrSite[mk] {
		candidates = append(candidates, s)
		if s == from {
			ownListed = true
		}
	}
	if !ownListed {
		candidates = append(candidates, from) // own store is free to consult
	}
	m.mu.Unlock()
	// Deterministic contact order (the map scrambles it, and under loss
	// the draw order must be reproducible).
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })

	var slowest time.Duration
	var out []provenance.ID
	seen := make(map[provenance.ID]struct{})
	contacted := 0
	for _, s := range candidates {
		m.mu.Lock()
		ids := append([]provenance.ID(nil), m.stores[s].LookupAttr(key, value)...)
		m.mu.Unlock()
		var d time.Duration
		var err error
		if s == from {
			d, err = m.net.Send(from, from, arch.AttrReqSize(key, value))
		} else {
			d, err = arch.Retry(arch.SendRetries, func() (time.Duration, error) {
				return m.net.Call(from, s, arch.AttrReqSize(key, value), arch.IDListRespSize(len(ids)))
			})
			contacted++
		}
		if err != nil {
			if arch.IsUnavailable(err) {
				continue
			}
			return nil, slowest, err
		}
		slowest = arch.MaxDuration(slowest, d)
		for _, id := range ids {
			if _, dup := seen[id]; !dup {
				seen[id] = struct{}{}
				out = append(out, id)
			}
		}
	}
	m.mu.Lock()
	m.lastContacted = contacted
	m.mu.Unlock()
	return out, slowest, nil
}

// QueryAncestors chases lineage across sites with server-side traversal:
// each contacted site resolves everything it holds locally in one round
// trip and returns the cross-site border pointers, which the location
// table routes directly (no probing, no per-record lookups).
func (m *Model) QueryAncestors(from netsim.SiteID, id provenance.ID) ([]provenance.ID, time.Duration, error) {
	var total time.Duration
	found := make(map[provenance.ID]struct{})
	var out []provenance.ID
	// frontier groups unresolved IDs by their home site.
	frontier := map[netsim.SiteID][]provenance.ID{}
	m.mu.Lock()
	home, known := m.loc[id]
	if !known {
		if _, ok := m.stores[from].Get(id); ok {
			home, known = from, true
		}
	}
	m.mu.Unlock()
	if !known {
		return nil, 0, fmt.Errorf("passnet: %s not yet visible", id.Short())
	}
	frontier[home] = []provenance.ID{id}

	guard := 0
	for len(frontier) > 0 {
		guard++
		if guard > 4096 {
			return out, total, fmt.Errorf("passnet: ancestry traversal did not converge")
		}
		next := map[netsim.SiteID][]provenance.ID{}
		// Deterministic site order for the round's fan-out.
		order := make([]netsim.SiteID, 0, len(frontier))
		for site := range frontier {
			order = append(order, site)
		}
		sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
		for _, site := range order {
			site, ids := site, frontier[site]
			m.mu.Lock()
			local, unresolved := m.stores[site].LocalAncestors(ids)
			m.mu.Unlock()
			d, err := arch.Retry(arch.SendRetries, func() (time.Duration, error) {
				return m.net.Call(from, site, arch.ReqOverhead+len(ids)*arch.IDWire,
					arch.IDListRespSize(len(local)+len(unresolved)))
			})
			total += d
			if err != nil {
				if arch.IsUnavailable(err) {
					// Site unreachable: its sub-DAG is missing from this
					// best-effort answer.
					continue
				}
				return nil, total, err
			}
			for _, a := range ids {
				// IDs handed to a site that are not the query root are
				// themselves ancestors (they were border pointers).
				if a == id {
					continue
				}
				if _, seen := found[a]; !seen {
					found[a] = struct{}{}
					out = append(out, a)
				}
			}
			for _, a := range local {
				if _, seen := found[a]; !seen {
					found[a] = struct{}{}
					out = append(out, a)
				}
			}
			for _, u := range unresolved {
				if _, seen := found[u]; seen {
					continue
				}
				m.mu.Lock()
				h, ok := m.loc[u]
				m.mu.Unlock()
				if !ok {
					continue // edge into an ungossiped record
				}
				next[h] = append(next[h], u)
			}
		}
		frontier = next
	}
	return out, total, nil
}

// LastContacted reports remote sites contacted by the most recent
// QueryAttr (digest routing effectiveness; contrast with feddb's n-1).
func (m *Model) LastContacted() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastContacted
}

// PendingDigests reports publications not yet globally visible: never
// gossiped, or gossiped but still awaiting delivery to some peer.
func (m *Model) PendingDigests() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, ps := range m.pending {
		n += len(ps)
	}
	for _, deltas := range m.outbox {
		for _, d := range deltas {
			n += len(d.pubs)
		}
	}
	return n
}

// SiteRecords reports a site's record count (locality tests).
func (m *Model) SiteRecords(s netsim.SiteID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.stores[s]; ok {
		return st.Len()
	}
	return 0
}
