// Package passnet implements the paper's own proposal (Section V): merge
// local PASS installations into a single globally searchable archive
// while keeping data where it belongs — "because sensor data is locale
// specific ... it should be stored near the network or its primary
// users" (Section III).
//
// Design, matching the research agenda's requirements:
//
//   - Publish commits to the producing site's local PASS only; no record
//     metadata crosses the WAN at ingest.
//   - Each site gossips a compact digest delta to its peers: a Bloom
//     filter of its attribute postings plus id→site location entries
//     (siteview.Delta). Digests ride on Tick (periodic) or, when
//     ImmediateDigest is set, piggyback on every publish (tiny messages,
//     the freshness/bandwidth ablation).
//   - Every site maintains its OWN siteview.View, updated only when a
//     delta is actually delivered to it. Wire bytes are charged per
//     receiving peer, deltas are sequenced per origin and delivered in
//     order, and a peer that is down or partitioned simply keeps the
//     delta in the sender's outbox until a later gossip round reaches it
//     (anti-entropy). Two sites therefore disagree exactly when different
//     deltas have reached them — partitions produce observable
//     split-brain query results, and full delivery restores convergence
//     (the law the conformance suite asserts).
//   - QueryAttr consults the querying site's view and contacts only the
//     sites whose delivered digests may hold the attribute — typically
//     one or two, not all (contrast with feddb's full fan-out).
//     Candidate selection goes through the per-peer Bloom filters
//     (View.MayHold): the wire-level digest is the routing authority, so
//     a Bloom false positive really costs an extra empty round trip —
//     charged bytes and all — never a wrong answer. FalsePositives and
//     RemoteContacts expose the measured misroute rate (E15's fp-rate
//     column).
//   - A site that crashed and came back notices its own recovery inside
//     Tick (it was down last round, it is live now) and triggers the
//     Rejoin snapshot itself — rejoin-by-snapshot is the default, not an
//     operator action. Options.ManualRejoin restores the operator-driven
//     behavior so snapshot-vs-replay comparisons (E16) stay expressible.
//   - QueryAncestors chases lineage site to site, but each visited site
//     resolves the whole locally-held sub-DAG in one round trip
//     (server-side traversal), so a chain spanning k sites costs ~k round
//     trips no matter how long it is (E11).
package passnet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"pass/internal/arch"
	"pass/internal/arch/siteview"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

// Model is the distributed PASS.
type Model struct {
	arch.AdmissionSlot
	mu    sync.Mutex
	net   arch.Network
	sites []netsim.SiteID

	stores map[netsim.SiteID]*arch.SiteStore

	// views holds each site's own soft-state picture of the federation,
	// built strictly from deltas DELIVERED to that site (plus the site's
	// own publications, which it knows without gossip).
	views map[netsim.SiteID]*siteview.View
	// nextSeq numbers each origin's outgoing deltas.
	nextSeq map[netsim.SiteID]uint64

	// pending digests not yet cut into a delta, per producing site.
	pending map[netsim.SiteID][]arch.Pub
	// outbox holds digest deltas whose delivery is in progress: each
	// delta tracks which peers still need it, so a lost, partitioned, or
	// crashed-peer send is retried on a later gossip round without
	// re-sending to peers that already heard it. Per peer, deltas are
	// delivered in sequence order (a peer never sees delta n+1 before n).
	outbox map[netsim.SiteID][]*outDelta

	// ImmediateDigest pushes digest deltas on every publish instead of
	// waiting for Tick.
	immediate bool
	// manualRejoin disables the proactive-rejoin pass in Tick.
	manualRejoin bool
	// efficient enables the gossip-efficiency path: sender-side duplicate
	// suppression (dupemap), per-peer delta coalescing, and the
	// lazy-push/periodic-pull hybrid. Off by default so the byte-for-byte
	// pinned baseline behavior is untouched.
	efficient bool
	// pullEvery is the anti-entropy pull cadence in ticks (efficient
	// mode); deadRetention bounds, in rounds-dead, how long outboxes keep
	// queueing for a peer that never heals (≤0 = unbounded).
	pullEvery     int
	deadRetention int
	// tickCount drives the pull cadence; roundsDown counts consecutive
	// Tick rounds each site has been observed down (retention clock).
	tickCount  int
	roundsDown map[netsim.SiteID]int
	// suppressed is the dupemap: sender→peer pairs whose last push was
	// LOST in transit. While armed, gossip rounds stop re-pushing the
	// pair's queued deltas (each skipped re-offer counted) and the
	// periodic anti-entropy pull carries the content instead; delivery or
	// outbox pruning clears the entry — round-expiring by construction.
	suppressed map[suppKey]bool
	// Gossip-path accounting (arch.GossipMeter): bytes charged by the
	// dissemination layer, re-offers suppressed, pull exchanges run.
	gossipBytes  int64
	nDupSuppress int64
	nPullRounds  int64
	// wasDown marks sites observed down by a Tick round; a site marked
	// here that is live again has RECOVERED, which is what triggers a
	// proactive rejoin. Cleared by a successful Rejoin.
	wasDown map[netsim.SiteID]bool
	// nProactive counts rejoins Tick triggered on its own (zero under
	// ManualRejoin — the ProactiveRejoin law's observable).
	nProactive int64

	rto *arch.RTO

	// replicate enables replicate-on-read; replicas holds each site's
	// read cache. Records are immutable, so cached replicas never
	// invalidate.
	replicate bool
	replicas  map[netsim.SiteID]map[provenance.ID]*provenance.Record

	// lastContacted reports sites contacted by the most recent QueryAttr.
	lastContacted int
	// remoteContacts / fpContacts count, across all QueryAttrs, remote
	// candidate round trips and the subset that were Bloom misroutes —
	// contacted on a filter match, listed by no delivered delta, and
	// empty-handed (the false positive's charged-but-useless round trip).
	remoteContacts int64
	fpContacts     int64
	// replicaHits counts lookups served from a read replica.
	replicaHits int64
}

// Options tunes the distributed PASS.
type Options struct {
	// ImmediateDigest gossips digest deltas synchronously on publish
	// (freshness at the price of n-1 tiny messages per publish). When
	// false, deltas batch until the next Tick.
	ImmediateDigest bool
	// ManualRejoin restores the pre-proactive behavior: a recovered site
	// catches up only through senders' anti-entropy replay unless an
	// operator calls Rejoin explicitly. By default a site detects its own
	// recovery inside Tick and takes the snapshot path itself. The knob
	// exists so E16's rejoin-vs-replay rows (and the FastRejoin law's
	// replay leg) still have a replay-only model to measure.
	ManualRejoin bool
	// ReplicateOnRead caches fetched records at the querying site, the
	// paper's Section V extension ("replication is desirable for
	// reliability and for query performance; supporting replication
	// cheaply is an interesting problem"). Replication here is free at
	// write time — replicas materialize only along actual read paths, so
	// popular data converges toward its consumers. Provenance records are
	// immutable, so replicas can never go stale.
	ReplicateOnRead bool
	// EfficientGossip switches the dissemination layer onto the
	// byte-efficient path: (1) dupemap duplicate suppression — a
	// re-offered publication whose digest the origin's view already
	// carries is dropped before a delta is cut, and a sender whose push
	// to a peer was lost in transit stops re-pushing that pair until the
	// anti-entropy pull resolves it; (2) per-peer coalescing — every
	// delta a peer still owes is shipped as ONE envelope (one header, one
	// filter, deduplicated entries) instead of one charged message per
	// delta; (3) lazy-push + periodic-pull — lost pushes are not blindly
	// retried at full price every round; a low-frequency pull exchange
	// (fingerprint advert, seq-vector reply, targeted diff) catches what
	// the push path dropped, and rejoin catch-up ships a seq-vector diff
	// instead of the donor's whole snapshot. Convergence and determinism
	// are unchanged — same final views, fewer bytes — pinned by the
	// DuplicateSuppression conformance law.
	EfficientGossip bool
	// PullEvery sets the anti-entropy pull cadence in Ticks for
	// EfficientGossip (0 = DefaultPullEvery). The pull is ARMED, not
	// unconditional: it only contacts pairs the dupemap has muted, so a
	// converged federation stays silent.
	PullEvery int
	// DeadRetention bounds how many consecutive rounds-dead a peer may
	// accumulate before senders stop queueing deltas for it (the outbox
	// leak fix): once exceeded, the peer is dropped from every queued
	// delta's delivery set and will catch up through the rejoin path when
	// it heals. 0 picks the default — 4×PullEvery rounds, or unbounded
	// under ManualRejoin, where replay is the only recovery path and
	// dropping would orphan the peer. Negative = explicitly unbounded.
	DeadRetention int
}

// DefaultPullEvery is the anti-entropy pull cadence (in Ticks) when
// Options.PullEvery is zero.
const DefaultPullEvery = 2

// deltaAdvertWire is the wire size of the anti-entropy pull's opening
// advert: a header plus the sender's view fingerprint — enough for the
// peer to decide the views differ and answer with its seq vector.
const deltaAdvertWire = 40

// suppKey identifies one sender→peer gossip pair in the dupemap.
type suppKey struct {
	from, to netsim.SiteID
}

// New builds a distributed PASS over the given sites.
func New(net arch.Network, sites []netsim.SiteID, opts Options) *Model {
	pullEvery := opts.PullEvery
	if pullEvery <= 0 {
		pullEvery = DefaultPullEvery
	}
	retention := opts.DeadRetention
	if retention == 0 {
		if opts.ManualRejoin {
			retention = -1 // replay is the only recovery path; never drop
		} else {
			retention = 4 * pullEvery
		}
	}
	m := &Model{
		net:           net,
		sites:         append([]netsim.SiteID(nil), sites...),
		stores:        make(map[netsim.SiteID]*arch.SiteStore),
		views:         make(map[netsim.SiteID]*siteview.View),
		nextSeq:       make(map[netsim.SiteID]uint64),
		pending:       make(map[netsim.SiteID][]arch.Pub),
		outbox:        make(map[netsim.SiteID][]*outDelta),
		immediate:     opts.ImmediateDigest,
		manualRejoin:  opts.ManualRejoin,
		efficient:     opts.EfficientGossip,
		pullEvery:     pullEvery,
		deadRetention: retention,
		roundsDown:    make(map[netsim.SiteID]int),
		suppressed:    make(map[suppKey]bool),
		wasDown:       make(map[netsim.SiteID]bool),
		rto:           arch.NewRTO(0x9A55E7),
		replicate:     opts.ReplicateOnRead,
		replicas:      make(map[netsim.SiteID]map[provenance.ID]*provenance.Record),
	}
	for _, s := range sites {
		m.stores[s] = arch.NewSiteStore()
		m.views[s] = siteview.NewView(s)
		m.replicas[s] = make(map[provenance.ID]*provenance.Record)
	}
	return m
}

// Name implements arch.Model.
func (m *Model) Name() string { return "passnet" }

// SiteView implements siteview.Exposer: the given site's current view.
func (m *Model) SiteView(s netsim.SiteID) *siteview.View {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.views[s]
}

// Publish commits locally; metadata never leaves the zone unless
// ImmediateDigest pushes the tiny delta.
func (m *Model) Publish(p arch.Pub) (time.Duration, error) {
	st, ok := m.stores[p.Origin]
	if !ok {
		return 0, fmt.Errorf("passnet: unknown site %d", p.Origin)
	}
	var wait time.Duration
	if adm := m.Admission(); adm != nil {
		// Publishes land locally, so the service cost is near zero and
		// the queue bound rarely bites; admission here is per-producer
		// fairness (the token buckets), protecting the gossip fan-out
		// from one hot producer.
		est, _ := m.net.Latency(p.Origin, p.Origin, p.WireSize())
		w, err := adm.Offer(int64(p.Origin), est)
		if err != nil {
			return 0, err
		}
		wait = w
	}
	d, err := m.net.Send(p.Origin, p.Origin, p.WireSize())
	d += wait
	if err != nil {
		return 0, err
	}
	m.mu.Lock()
	st.Add(p.ID, p.Rec)
	m.pending[p.Origin] = append(m.pending[p.Origin], p)
	m.mu.Unlock()
	if m.immediate {
		if err := m.gossipFrom(p.Origin); err != nil {
			return d, err
		}
	}
	return d, nil
}

// outDelta is one digest delta in flight: the sequenced delta, the
// publications it covers (pending-visibility accounting), and the peers
// that have not yet received it.
type outDelta struct {
	delta     *siteview.Delta
	pubs      []arch.Pub
	size      int
	remaining map[netsim.SiteID]struct{}
}

// cutDelta seals site's pending publications into a sequenced delta and
// applies it to the site's OWN view immediately — a site always knows its
// own holdings; only its peers wait for delivery. Callers hold m.mu.
func (m *Model) cutDelta(site netsim.SiteID) {
	pubs := m.pending[site]
	if len(pubs) == 0 {
		return
	}
	delete(m.pending, site)
	if m.efficient {
		// Dupemap, publish side: a re-offered publication (E14's
		// at-least-once client re-sends when an ack is lost) whose digest
		// this origin's view already carries would gossip pure redundancy
		// to every peer — drop it before the delta is cut. Records are
		// immutable, so an ID the view locates here is bit-identical to
		// the re-offer; earlier deltas still queued cover any peer that
		// has not heard it yet.
		kept := pubs[:0:0]
		seen := make(map[provenance.ID]struct{}, len(pubs))
		for _, p := range pubs {
			if _, dup := seen[p.ID]; dup {
				m.nDupSuppress++
				continue
			}
			if home, known := m.views[site].Locate(p.ID); known && home == site {
				m.nDupSuppress++
				continue
			}
			seen[p.ID] = struct{}{}
			kept = append(kept, p)
		}
		pubs = kept
		if len(pubs) == 0 {
			return // everything was a duplicate; nothing to gossip
		}
	}
	ids := make([]provenance.ID, 0, len(pubs))
	var attrKeys []string
	for _, p := range pubs {
		ids = append(ids, p.ID)
		for _, a := range arch.QueriableAttrs(p.Rec) {
			attrKeys = append(attrKeys, a.Key+"\x00"+string(a.Value.Canonical()))
		}
	}
	m.nextSeq[site]++
	delta := siteview.NewDelta(site, m.nextSeq[site], ids, attrKeys)
	m.views[site].Apply(delta)
	rem := make(map[netsim.SiteID]struct{}, len(m.sites)-1)
	for _, p := range m.sites {
		if p != site {
			rem[p] = struct{}{}
		}
	}
	m.outbox[site] = append(m.outbox[site], &outDelta{
		delta: delta, pubs: pubs, size: delta.WireSize(), remaining: rem,
	})
}

// gossipFrom pushes site's queued digest deltas to every peer that still
// needs them. Delivery is tracked per peer, and the digest's wire bytes
// are charged once per receiving peer per attempt — a delta fanned out to
// 40 peers costs 40 deltas' worth of bandwidth, and a retransmission to a
// peer that missed it costs again. A send lost in transit, blocked by a
// partition, or aimed at a crashed peer keeps that peer in the delta's
// remaining set and is retried on the next gossip round — the anti-
// entropy that lets a rejoining or re-connected site catch its view up.
// Per peer, deltas go out strictly in sequence order: a peer whose copy
// of delta n failed is not offered delta n+1 this round, so views apply
// deltas in order and duplicates are the only idempotence case left.
func (m *Model) gossipFrom(site netsim.SiteID) error {
	if m.net.IsDown(site) {
		return nil // a crashed site gossips nothing; retried after recovery
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cutDelta(site)
	if len(m.outbox[site]) == 0 {
		return nil
	}
	if m.efficient {
		return m.gossipEfficient(site)
	}
	// blocked marks peers whose next-in-sequence delta failed this round;
	// later deltas must not overtake it.
	blocked := make(map[netsim.SiteID]bool)
	var live []*outDelta
	for _, od := range m.outbox[site] {
		// Peers in deterministic site order: map-order iteration would
		// scramble the packet-loss draws across runs.
		for _, peer := range m.sites {
			if _, need := od.remaining[peer]; !need {
				continue
			}
			if m.expired(peer) {
				// The outbox-leak fix: a peer dead past the retention
				// window stops accumulating deliveries; rejoin catch-up
				// covers it if it ever heals.
				delete(od.remaining, peer)
				continue
			}
			if blocked[peer] {
				continue
			}
			_, err := m.net.Send(site, peer, od.size)
			switch {
			case err == nil:
				m.gossipBytes += int64(od.size)
				delete(od.remaining, peer)
				m.views[peer].Apply(od.delta)
			case errors.Is(err, netsim.ErrMsgLost):
				// Charged by the network even though it never arrived —
				// the waste the efficient path's dupemap avoids.
				m.gossipBytes += int64(od.size)
				blocked[peer] = true
			case arch.IsUnavailable(err):
				// Partitioned or peer down: free fail, keep the peer in
				// remaining, hold back its later deltas, retry next round.
				blocked[peer] = true
			default:
				return err
			}
		}
		if len(od.remaining) > 0 {
			live = append(live, od)
		}
	}
	m.outbox[site] = live
	return nil
}

// expired reports whether a peer has been dead longer than the outbox
// retention window. Callers hold m.mu.
func (m *Model) expired(peer netsim.SiteID) bool {
	return m.deadRetention > 0 && m.roundsDown[peer] > m.deadRetention
}

// gossipEfficient is gossipFrom's efficient-mode send pass: per peer, the
// queued deltas it still owes travel as ONE coalesced envelope (header,
// filter, and re-listed entries paid once), a pair the dupemap has muted
// is skipped entirely (the armed pull will carry it), and peers dead past
// the retention window are dropped from the queue. Per-peer sequence
// order is preserved trivially — a peer receives everything it is owed in
// one in-order batch or nothing. Callers hold m.mu.
func (m *Model) gossipEfficient(site netsim.SiteID) error {
	for _, peer := range m.sites {
		if peer == site {
			continue
		}
		if m.expired(peer) {
			for _, od := range m.outbox[site] {
				delete(od.remaining, peer)
			}
			continue
		}
		var need []*outDelta
		for _, od := range m.outbox[site] {
			if _, ok := od.remaining[peer]; ok {
				need = append(need, od)
			}
		}
		if len(need) == 0 {
			continue
		}
		if m.suppressed[suppKey{site, peer}] {
			// Dupemap, transit side: the last push to this peer was lost;
			// re-pushing every round would burn the envelope's bytes again
			// each time. Count the muted re-offers and let the periodic
			// pull exchange resolve the pair instead.
			m.nDupSuppress += int64(len(need))
			continue
		}
		size := m.coalescedSize(need)
		_, err := m.net.Send(site, peer, size)
		switch {
		case err == nil:
			m.gossipBytes += int64(size)
			for _, od := range need {
				delete(od.remaining, peer)
				m.views[peer].Apply(od.delta)
			}
		case errors.Is(err, netsim.ErrMsgLost):
			m.gossipBytes += int64(size)
			m.suppressed[suppKey{site, peer}] = true
		case arch.IsUnavailable(err):
			// Partitioned or down: free fail, retry next round.
		default:
			return err
		}
	}
	live := m.outbox[site][:0]
	for _, od := range m.outbox[site] {
		if len(od.remaining) > 0 {
			live = append(live, od)
		}
	}
	m.outbox[site] = live
	return nil
}

// coalescedSize prices the single envelope carrying the given queued
// deltas (ascending seq, one origin). Callers hold m.mu.
func (m *Model) coalescedSize(need []*outDelta) int {
	if len(need) == 1 {
		return need[0].size
	}
	deltas := make([]*siteview.Delta, len(need))
	for i, od := range need {
		deltas[i] = od.delta
	}
	return siteview.CoalescedWireSize(deltas)
}

// Rejoin implements arch.Rejoiner: an explicit state transfer for a site
// recovering from a crash or a long partition. Instead of waiting for
// every sender's outbox to replay its queued deltas one by one (each with
// its own header and filter, each a separate anti-entropy retry), the
// rejoining site asks its nearest live peer for a snapshot of that peer's
// whole view and folds it in — one round trip, snapshot bytes charged at
// the view's wire size. The merge fast-forwards the rejoiner's per-origin
// sequence numbers, so every sender whose queued delta the snapshot
// already covers prunes the rejoiner from that delta's delivery set:
// the outbox drains without re-sending what the snapshot carried.
//
// A rejoin while the site is still down, or with no reachable live peer,
// fails with an unavailable error and changes nothing — the site keeps
// catching up through ordinary gossip anti-entropy instead.
func (m *Model) Rejoin(s netsim.SiteID) (time.Duration, error) {
	if m.net.IsDown(s) {
		return 0, fmt.Errorf("%w: rejoining site %d", netsim.ErrSiteDown, s)
	}
	m.mu.Lock()
	view, ok := m.views[s]
	if !ok {
		m.mu.Unlock()
		return 0, fmt.Errorf("passnet: unknown site %d", s)
	}
	donor, ok := m.nearestLivePeer(s)
	if !ok {
		m.mu.Unlock()
		return 0, fmt.Errorf("%w: no live donor for site %d", netsim.ErrSiteDown, s)
	}
	snap := m.views[donor]
	// Efficient mode replaces the full-snapshot transfer with the pull
	// protocol's targeted diff: the rejoiner sends its seq vector, the
	// donor answers with only the content the vector proves missing. A
	// site that missed a handful of deltas pays for those deltas, not for
	// the donor's whole accumulated view.
	reqSize, respSize := arch.ReqOverhead, arch.RespOverhead+snap.WireSize()
	if m.efficient {
		reqSize = view.SeqVectorWireSize()
		respSize = arch.RespOverhead + siteview.DiffWireSize(snap, view)
	}
	m.mu.Unlock()

	d, err := arch.Retry(m.rto, arch.SendRetries, func() (time.Duration, error) {
		return m.net.Call(s, donor, reqSize, respSize)
	})
	if err != nil {
		return d, err
	}
	m.mu.Lock()
	m.gossipBytes += int64(reqSize + respSize)
	if m.efficient {
		m.nPullRounds++
	}
	view.Merge(snap)
	m.pruneOutboxFor(s)
	delete(m.wasDown, s) // recovered and caught up; no proactive retry due
	m.mu.Unlock()
	return d, nil
}

// nearestLivePeer picks the reachable peer with the lowest network
// latency from s (deterministic: ties break on site order). Callers hold
// m.mu.
func (m *Model) nearestLivePeer(s netsim.SiteID) (netsim.SiteID, bool) {
	best := netsim.InvalidSite
	var bestLat time.Duration
	for _, p := range m.sites {
		if p == s || m.net.IsDown(p) || m.net.Partitioned(s, p) {
			continue
		}
		lat, err := m.net.Latency(s, p, arch.ReqOverhead)
		if err != nil {
			continue
		}
		if best == netsim.InvalidSite || lat < bestLat {
			best, bestLat = p, lat
		}
	}
	return best, best != netsim.InvalidSite
}

// pruneOutboxFor drops the given site from every queued delta its view
// has already covered (sequence number at or below the view's applied
// seq for that origin) — the senders' reaction to a rejoin snapshot.
// Deltas with no remaining receivers are retired entirely. Callers hold
// m.mu.
func (m *Model) pruneOutboxFor(s netsim.SiteID) {
	for origin, deltas := range m.outbox {
		live := deltas[:0]
		for _, od := range deltas {
			if _, need := od.remaining[s]; need && m.views[s].Seq(origin) >= od.delta.Seq {
				delete(od.remaining, s)
			}
			if len(od.remaining) > 0 {
				live = append(live, od)
			}
		}
		m.outbox[origin] = live
	}
}

// Tick gossips every site's pending digest delta. Unless ManualRejoin is
// set it first runs the proactive-rejoin pass: any site a previous round
// observed down that is live again fetches its catch-up snapshot NOW,
// before this round's gossip — so by the time the senders fan out, their
// outboxes are already pruned of everything the snapshot covered. The
// round ends by recording which sites are down, which is what the next
// round's recovery detection compares against.
func (m *Model) Tick() error {
	if adm := m.Admission(); adm != nil {
		adm.Tick()
	}
	if !m.manualRejoin {
		if err := m.rejoinRecovered(); err != nil {
			return err
		}
	}
	for _, s := range m.sites {
		if err := m.gossipFrom(s); err != nil {
			return err
		}
	}
	m.mu.Lock()
	m.tickCount++
	pullDue := m.efficient && m.tickCount%m.pullEvery == 0
	m.mu.Unlock()
	if pullDue {
		if err := m.antiEntropyPull(); err != nil {
			return err
		}
	}
	m.mu.Lock()
	for _, s := range m.sites {
		if m.net.IsDown(s) {
			m.wasDown[s] = true
			m.roundsDown[s]++
		} else {
			delete(m.roundsDown, s)
		}
	}
	m.mu.Unlock()
	return nil
}

// antiEntropyPull is the periodic leg of the lazy-push/pull hybrid. It is
// ARMED rather than unconditional: only sender→peer pairs the dupemap has
// muted (a push was lost in transit) are exchanged, so a converged or
// merely partitioned federation sends nothing here. Per armed pair the
// exchange is (1) a fingerprint advert answered by a fixed-size
// fingerprint ack — the sender's outbox ledger already names the deltas
// this peer is owed, so the peer only confirms it is alive and diverged —
// and (2) one coalesced envelope carrying precisely those deltas. A leg
// lost in transit keeps the pair armed for the next pull round; delivery
// clears the dupemap entry.
func (m *Model) antiEntropyPull() error {
	m.mu.Lock()
	var pairs []suppKey
	for _, s := range m.sites { // deterministic order, never map order
		for _, p := range m.sites {
			if s != p && m.suppressed[suppKey{s, p}] {
				pairs = append(pairs, suppKey{s, p})
			}
		}
	}
	m.mu.Unlock()
	for _, pair := range pairs {
		m.mu.Lock()
		var need []*outDelta
		for _, od := range m.outbox[pair.from] {
			if _, ok := od.remaining[pair.to]; ok {
				need = append(need, od)
			}
		}
		if len(need) == 0 {
			// A rejoin snapshot or retention pruned the pair's queue out
			// from under the dupemap entry; nothing left to pull.
			delete(m.suppressed, pair)
			m.mu.Unlock()
			continue
		}
		bodySize := m.coalescedSize(need)
		m.mu.Unlock()

		// Leg 1: fingerprint advert out, fingerprint ack back. The ack is
		// fixed-size on purpose: the sender's own outbox ledger (each
		// delta's remaining set) already names exactly which deltas this
		// peer is owed, so the peer only has to confirm it is alive and
		// diverged — shipping its whole per-origin seq vector here would
		// cost more than the lost pushes the pull exists to avoid.
		_, err := m.net.Call(pair.from, pair.to, deltaAdvertWire, arch.AckWire)
		switch {
		case err == nil || errors.Is(err, netsim.ErrMsgLost):
			m.mu.Lock()
			m.gossipBytes += int64(deltaAdvertWire + arch.AckWire)
			m.mu.Unlock()
			if err != nil {
				continue // lost: stay armed for the next pull round
			}
		case arch.IsUnavailable(err):
			continue // down or partitioned: free fail, stay armed
		default:
			return err
		}
		// Leg 2: the targeted coalesced body.
		_, err = m.net.Send(pair.from, pair.to, bodySize)
		switch {
		case err == nil:
			m.mu.Lock()
			m.gossipBytes += int64(bodySize)
			for _, od := range need {
				delete(od.remaining, pair.to)
				m.views[pair.to].Apply(od.delta)
			}
			delete(m.suppressed, pair)
			m.nPullRounds++
			live := m.outbox[pair.from][:0]
			for _, od := range m.outbox[pair.from] {
				if len(od.remaining) > 0 {
					live = append(live, od)
				}
			}
			m.outbox[pair.from] = live
			m.mu.Unlock()
		case errors.Is(err, netsim.ErrMsgLost):
			m.mu.Lock()
			m.gossipBytes += int64(bodySize)
			m.mu.Unlock()
		case arch.IsUnavailable(err):
			// stay armed
		default:
			return err
		}
	}
	return nil
}

// rejoinRecovered triggers the snapshot path for every site that was
// down on a previous Tick and is live now. A rejoin that fails with an
// injected fault (the site is cut off from every donor, say) leaves the
// site's down-marker in place: the next round retries, and ordinary
// anti-entropy keeps working underneath either way. Any other error is a
// model bug and propagates, per the fault contract.
func (m *Model) rejoinRecovered() error {
	m.mu.Lock()
	var recovered []netsim.SiteID
	for _, s := range m.sites { // deterministic site order, not map order
		if m.wasDown[s] && !m.net.IsDown(s) {
			recovered = append(recovered, s)
		}
	}
	m.mu.Unlock()
	for _, s := range recovered {
		switch _, err := m.Rejoin(s); {
		case err == nil:
			m.mu.Lock()
			m.nProactive++
			m.mu.Unlock()
		case !arch.IsUnavailable(err):
			return err
		}
	}
	return nil
}

// GossipStats implements arch.GossipMeter: the dissemination layer's
// byte and suppression accounting, identical in meaning across the
// baseline and efficient modes so experiment columns compare directly.
func (m *Model) GossipStats() arch.GossipStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return arch.GossipStats{
		Bytes:         m.gossipBytes,
		DupSuppressed: m.nDupSuppress,
		PullRounds:    m.nPullRounds,
	}
}

// ProactiveRejoins counts the snapshot transfers Tick triggered on its
// own — the ProactiveRejoin law asserts recovery with this above zero
// and zero operator Rejoin calls.
func (m *Model) ProactiveRejoins() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nProactive
}

// locate resolves id through the querier's own view, falling back to the
// querier's local store (a site's own data is visible before any gossip).
// Callers hold m.mu.
func (m *Model) locate(from netsim.SiteID, id provenance.ID) (netsim.SiteID, bool) {
	if home, ok := m.views[from].Locate(id); ok {
		return home, true
	}
	if _, ok := m.stores[from].Get(id); ok {
		return from, true
	}
	return 0, false
}

// Lookup resolves the record's home from the querying site's own view and
// fetches it directly: one round trip, usually within the zone for local
// data. A record whose digest has not reached this site yet is invisible
// FROM HERE — another site with a fresher view may well resolve it.
func (m *Model) Lookup(from netsim.SiteID, id provenance.ID) (*provenance.Record, time.Duration, error) {
	// Read replica: a previously fetched copy answers locally (records
	// are immutable, so this is always correct).
	if m.replicate {
		m.mu.Lock()
		if rec, ok := m.replicas[from][id]; ok {
			m.replicaHits++
			m.mu.Unlock()
			d, err := m.net.Send(from, from, arch.ReqOverhead+arch.IDWire)
			return rec, d, err
		}
		m.mu.Unlock()
	}
	m.mu.Lock()
	home, known := m.locate(from, id)
	if !known {
		m.mu.Unlock()
		return nil, 0, fmt.Errorf("passnet: %s not visible from site %d (digest pending)", id.Short(), from)
	}
	rec, ok := m.stores[home].Get(id)
	m.mu.Unlock()
	respSize := arch.RespOverhead
	if ok {
		respSize += len(rec.Encode())
	}
	d, err := arch.Retry(m.rto, arch.SendRetries, func() (time.Duration, error) {
		return m.net.Call(from, home, arch.ReqOverhead+arch.IDWire, respSize)
	})
	if err != nil {
		return nil, d, err
	}
	if !ok {
		return nil, d, fmt.Errorf("passnet: view points at %d but %s is gone", home, id.Short())
	}
	if m.replicate && home != from {
		m.mu.Lock()
		m.replicas[from][id] = rec
		m.mu.Unlock()
	}
	return rec, d, nil
}

// ReplicaHits reports lookups served from read replicas.
func (m *Model) ReplicaHits() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.replicaHits
}

// ReplicaCount reports the number of replicas cached at a site.
func (m *Model) ReplicaCount(s netsim.SiteID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.replicas[s])
}

// QueryAttr contacts only the sites whose delivered Bloom filters may
// hold (key, value) — View.CandidatesFor probes each known origin's
// filter, so the wire-level digest, false positives included, is the
// routing authority — plus the querier's own store (always fresh). A
// false positive (the filter matches, no delivered delta listed the key)
// costs a real, charged, empty round trip; FalsePositives counts them.
// Unreachable candidate sites are skipped after retransmission; the
// answer degrades to what the reachable sites hold. Under a partition the
// same query asked from opposite sides returns different results, because
// the two sides' views list different candidates: split-brain, made
// observable.
func (m *Model) QueryAttr(from netsim.SiteID, key string, value provenance.Value) ([]provenance.ID, time.Duration, error) {
	mk := key + "\x00" + string(value.Canonical())
	m.mu.Lock()
	view := m.views[from]
	listed := view.CandidatesFor(mk)
	exact := view.SitesFor(mk) // sorted; the FP-classification reference
	candidates := make([]netsim.SiteID, 0, len(listed)+1)
	ownListed := false
	for _, s := range listed {
		candidates = append(candidates, s)
		if s == from {
			ownListed = true
		}
	}
	if !ownListed {
		candidates = append(candidates, from) // own store is free to consult
	}
	m.mu.Unlock()
	// Deterministic contact order (under loss the draw order must be
	// reproducible); SitesFor is sorted, but the appended own site may
	// break the order.
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })

	var slowest time.Duration
	var out []provenance.ID
	seen := make(map[provenance.ID]struct{})
	contacted, fps := 0, 0
	for _, s := range candidates {
		m.mu.Lock()
		ids := append([]provenance.ID(nil), m.stores[s].LookupAttr(key, value)...)
		m.mu.Unlock()
		var d time.Duration
		var err error
		if s == from {
			d, err = m.net.Send(from, from, arch.AttrReqSize(key, value))
		} else {
			d, err = arch.Retry(m.rto, arch.SendRetries, func() (time.Duration, error) {
				return m.net.Call(from, s, arch.AttrReqSize(key, value), arch.IDListRespSize(len(ids)))
			})
			contacted++
		}
		if err != nil {
			if arch.IsUnavailable(err) {
				continue
			}
			return nil, slowest, err
		}
		if s != from && len(ids) == 0 && !containsSite(exact, s) {
			fps++ // Bloom misroute: a charged round trip for nothing
		}
		slowest = arch.MaxDuration(slowest, d)
		for _, id := range ids {
			if _, dup := seen[id]; !dup {
				seen[id] = struct{}{}
				out = append(out, id)
			}
		}
	}
	m.mu.Lock()
	m.lastContacted = contacted
	m.remoteContacts += int64(contacted)
	m.fpContacts += int64(fps)
	m.mu.Unlock()
	return out, slowest, nil
}

// containsSite reports whether the ascending-sorted slice holds s.
func containsSite(sorted []netsim.SiteID, s netsim.SiteID) bool {
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= s })
	return i < len(sorted) && sorted[i] == s
}

// RemoteContacts reports every remote candidate round trip QueryAttr has
// attempted so far; FalsePositives reports the subset that were Bloom
// misroutes (filter matched, no delivered delta carried the key, empty
// answer). Their ratio is E15's fp-rate column.
func (m *Model) RemoteContacts() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.remoteContacts
}

// FalsePositives reports QueryAttr round trips wasted on Bloom-filter
// false positives.
func (m *Model) FalsePositives() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fpContacts
}

// QueryAncestors chases lineage across sites with server-side traversal:
// each contacted site resolves everything it holds locally in one round
// trip and returns the cross-site border pointers, which the querier's
// view routes directly (no probing, no per-record lookups). Border
// pointers into records whose digests have not reached this site are
// unresolvable from here — a partitioned querier sees its side's sub-DAG
// only.
func (m *Model) QueryAncestors(from netsim.SiteID, id provenance.ID) ([]provenance.ID, time.Duration, error) {
	var total time.Duration
	found := make(map[provenance.ID]struct{})
	var out []provenance.ID
	// frontier groups unresolved IDs by their home site.
	frontier := map[netsim.SiteID][]provenance.ID{}
	m.mu.Lock()
	home, known := m.locate(from, id)
	m.mu.Unlock()
	if !known {
		return nil, 0, fmt.Errorf("passnet: %s not visible from site %d", id.Short(), from)
	}
	frontier[home] = []provenance.ID{id}

	guard := 0
	for len(frontier) > 0 {
		guard++
		if guard > 4096 {
			return out, total, fmt.Errorf("passnet: ancestry traversal did not converge")
		}
		next := map[netsim.SiteID][]provenance.ID{}
		// Deterministic site order for the round's fan-out.
		order := make([]netsim.SiteID, 0, len(frontier))
		for site := range frontier {
			order = append(order, site)
		}
		sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
		for _, site := range order {
			site, ids := site, frontier[site]
			m.mu.Lock()
			local, unresolved := m.stores[site].LocalAncestors(ids)
			m.mu.Unlock()
			d, err := arch.Retry(m.rto, arch.SendRetries, func() (time.Duration, error) {
				return m.net.Call(from, site, arch.ReqOverhead+len(ids)*arch.IDWire,
					arch.IDListRespSize(len(local)+len(unresolved)))
			})
			total += d
			if err != nil {
				if arch.IsUnavailable(err) {
					// Site unreachable: its sub-DAG is missing from this
					// best-effort answer.
					continue
				}
				return nil, total, err
			}
			for _, a := range ids {
				// IDs handed to a site that are not the query root are
				// themselves ancestors (they were border pointers).
				if a == id {
					continue
				}
				if _, seen := found[a]; !seen {
					found[a] = struct{}{}
					out = append(out, a)
				}
			}
			for _, a := range local {
				if _, seen := found[a]; !seen {
					found[a] = struct{}{}
					out = append(out, a)
				}
			}
			for _, u := range unresolved {
				if _, seen := found[u]; seen {
					continue
				}
				m.mu.Lock()
				h, ok := m.locate(from, u)
				m.mu.Unlock()
				if !ok {
					continue // edge into a record this site's view cannot place
				}
				next[h] = append(next[h], u)
			}
		}
		frontier = next
	}
	return out, total, nil
}

// LastContacted reports remote sites contacted by the most recent
// QueryAttr (digest routing effectiveness; contrast with feddb's n-1).
func (m *Model) LastContacted() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastContacted
}

// PendingDigests reports publications not yet globally visible: never
// cut into a delta, or cut but still awaiting delivery to some peer.
func (m *Model) PendingDigests() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, ps := range m.pending {
		n += len(ps)
	}
	for _, deltas := range m.outbox {
		for _, d := range deltas {
			n += len(d.pubs)
		}
	}
	return n
}

// SampleOps implements arch.OpsSampler: the gossip mesh's operational
// gauges for the live metrics surface — outbox depth (publications not
// yet globally visible), proactive rejoins taken, and the Bloom-routing
// hit/miss accounting.
func (m *Model) SampleOps(set func(metric string, value int64)) {
	set("outbox_depth", int64(m.PendingDigests()))
	set("proactive_rejoins", m.ProactiveRejoins())
	set("replica_hits", m.ReplicaHits())
	set("false_positives", m.FalsePositives())
	set("remote_contacts", m.RemoteContacts())
}

// SiteRecords reports a site's record count (locality tests).
func (m *Model) SiteRecords(s netsim.SiteID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.stores[s]; ok {
		return st.Len()
	}
	return 0
}
