package passnet

import (
	"testing"

	"pass/internal/arch"
	"pass/internal/arch/archtest"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

func TestConformanceImmediate(t *testing.T) {
	archtest.Run(t, archtest.Config{
		Make: func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return New(net, sites, Options{ImmediateDigest: true})
		},
	})
}

func TestConformanceBatched(t *testing.T) {
	archtest.Run(t, archtest.Config{
		Make: func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return New(net, sites, Options{})
		},
		NeedsTick: true,
	})
}

func TestPublishKeepsMetadataLocal(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites, Options{})
	net.ResetStats()
	if _, err := m.Publish(archtest.PubAt(1, sites[2])); err != nil {
		t.Fatal(err)
	}
	if wan := net.Stats().WANBytes; wan != 0 {
		t.Fatalf("batched publish crossed WAN: %d bytes", wan)
	}
	if m.SiteRecords(sites[2]) != 1 {
		t.Fatal("record not at producing site")
	}
	if m.PendingDigests() != 1 {
		t.Fatalf("pending digests = %d", m.PendingDigests())
	}
}

func TestImmediateDigestIsTiny(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites, Options{ImmediateDigest: true})
	p := archtest.PubAt(1, sites[0],
		provenance.Attr("zone", provenance.String("boston")),
		provenance.Attr("domain", provenance.String("traffic")))
	recSize := p.WireSize()
	net.ResetStats()
	if _, err := m.Publish(p); err != nil {
		t.Fatal(err)
	}
	st := net.Stats()
	// Digest fan-out to 3 peers must cost far less than shipping the full
	// record to 3 peers would.
	if st.WANBytes >= int64(recSize*3) {
		t.Fatalf("digest bytes %d not smaller than full replication %d", st.WANBytes, recSize*3)
	}
	if m.PendingDigests() != 0 {
		t.Fatal("immediate mode left pending digests")
	}
}

func TestLocalQueryIsFreshWithoutGossip(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites, Options{})
	p := archtest.PubAt(1, sites[0], provenance.Attr("k", provenance.String("v")))
	m.Publish(p)
	// No Tick. The producing site itself sees its own data immediately.
	got, _, err := m.QueryAttr(sites[0], "k", provenance.String("v"))
	if err != nil || len(got) != 1 {
		t.Fatalf("local query = %d ids, %v", len(got), err)
	}
	// A remote site does not see it yet (digest pending)...
	got, _, _ = m.QueryAttr(sites[2], "k", provenance.String("v"))
	if len(got) != 0 {
		t.Fatal("remote site saw ungossiped record")
	}
	// ...until the gossip round.
	m.Tick()
	got, _, err = m.QueryAttr(sites[2], "k", provenance.String("v"))
	if err != nil || len(got) != 1 {
		t.Fatalf("post-gossip remote query = %d, %v", len(got), err)
	}
}

func TestQueryContactsOnlyDigestMatches(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites, Options{ImmediateDigest: true})
	// Only boston-0 holds traffic data; the other three hold weather.
	m.Publish(archtest.PubAt(1, sites[0], provenance.Attr("domain", provenance.String("traffic"))))
	for i, s := range sites[1:] {
		m.Publish(archtest.PubAt(byte(10+i), s, provenance.Attr("domain", provenance.String("weather"))))
	}
	got, _, err := m.QueryAttr(sites[3], "domain", provenance.String("traffic"))
	if err != nil || len(got) != 1 {
		t.Fatalf("query = %d, %v", len(got), err)
	}
	// Digest routing: only 1 remote site contacted (vs feddb's 3).
	if m.LastContacted() != 1 {
		t.Fatalf("contacted %d remote sites, want 1", m.LastContacted())
	}
}

func TestAncestryServerSideTraversal(t *testing.T) {
	// A long chain entirely at one remote site must resolve in ONE round
	// trip regardless of its depth.
	net, sites := archtest.NewNetwork()
	m := New(net, sites, Options{ImmediateDigest: true})
	origins := []netsim.SiteID{sites[2]} // whole chain in london
	ids := archtest.ChainAt(t, m, origins, 30, 1)
	net.ResetStats()
	anc, _, err := m.QueryAncestors(sites[0], ids[len(ids)-1])
	if err != nil {
		t.Fatal(err)
	}
	if len(anc) != 29 {
		t.Fatalf("ancestors = %d, want 29", len(anc))
	}
	// One Call = 2 messages, independent of the 30-deep chain.
	if msgs := net.Stats().Messages; msgs > 4 {
		t.Fatalf("single-site chain took %d messages; server-side traversal broken", msgs)
	}
}

func TestAncestryCrossSiteCostScalesWithSites(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites, Options{ImmediateDigest: true})
	// Chain alternating across all 4 sites.
	ids := archtest.ChainAt(t, m, sites, 16, 1)
	net.ResetStats()
	anc, _, err := m.QueryAncestors(sites[0], ids[len(ids)-1])
	if err != nil {
		t.Fatal(err)
	}
	if len(anc) != 15 {
		t.Fatalf("ancestors = %d, want 15", len(anc))
	}
}

func TestUnknownSiteAndGhost(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites[:2], Options{})
	if _, err := m.Publish(archtest.PubAt(1, sites[3])); err == nil {
		t.Fatal("publish from non-member accepted")
	}
	var ghost provenance.ID
	ghost[3] = 0x77
	if _, _, err := m.Lookup(sites[0], ghost); err == nil {
		t.Fatal("ghost lookup succeeded")
	}
}

func TestReplicateOnRead(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites, Options{ImmediateDigest: true, ReplicateOnRead: true})
	p := archtest.PubAt(1, sites[2]) // data lives in london
	if _, err := m.Publish(p); err != nil {
		t.Fatal(err)
	}
	boston := sites[0]
	// First lookup crosses the WAN.
	_, d1, err := m.Lookup(boston, p.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Second lookup is served by the read replica: much faster, no WAN.
	net.ResetStats()
	rec, d2, err := m.Lookup(boston, p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rec.ComputeID() != p.ID {
		t.Fatal("replica returned wrong record")
	}
	if d2 >= d1 {
		t.Fatalf("replica lookup %v not faster than remote %v", d2, d1)
	}
	if net.Stats().WANBytes != 0 {
		t.Fatalf("replica hit crossed WAN: %d bytes", net.Stats().WANBytes)
	}
	if m.ReplicaHits() != 1 {
		t.Fatalf("replica hits = %d", m.ReplicaHits())
	}
	if m.ReplicaCount(boston) != 1 {
		t.Fatalf("replica count = %d", m.ReplicaCount(boston))
	}
}

func TestReplicationDisabledByDefault(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites, Options{ImmediateDigest: true})
	p := archtest.PubAt(1, sites[2])
	m.Publish(p)
	m.Lookup(sites[0], p.ID)
	m.Lookup(sites[0], p.ID)
	if m.ReplicaHits() != 0 {
		t.Fatal("replication active without opt-in")
	}
	if m.ReplicaCount(sites[0]) != 0 {
		t.Fatal("replica cached without opt-in")
	}
}

func TestConformanceWithReplication(t *testing.T) {
	archtest.Run(t, archtest.Config{
		Make: func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return New(net, sites, Options{ImmediateDigest: true, ReplicateOnRead: true})
		},
	})
}
