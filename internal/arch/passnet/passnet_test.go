package passnet

import (
	"fmt"
	"testing"

	"pass/internal/arch"
	"pass/internal/arch/archtest"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

func TestConformanceImmediate(t *testing.T) {
	archtest.Run(t, archtest.Config{
		Make: func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return New(net, sites, Options{ImmediateDigest: true})
		},
		MakeReplay: func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return New(net, sites, Options{ImmediateDigest: true, ManualRejoin: true})
		},
	})
}

func TestConformanceBatched(t *testing.T) {
	archtest.Run(t, archtest.Config{
		Make: func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return New(net, sites, Options{})
		},
		MakeReplay: func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return New(net, sites, Options{ManualRejoin: true})
		},
		// PullEvery 1 keeps the DuplicateSuppression law's round
		// comparison tight: an armed pair re-syncs on the very next tick,
		// so suppression can never cost the efficient leg a round.
		MakeEfficient: func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return New(net, sites, Options{EfficientGossip: true, PullEvery: 1})
		},
		NeedsTick: true,
	})
}

// TestConformanceEfficient runs the FULL conformance suite with the
// efficient dissemination path as the primary build: duplicate
// suppression, per-peer coalescing, and armed anti-entropy pulls must
// satisfy every law the naive path does — loss, churn, partitions,
// rejoins, and the randomized membership schedules. MakeEfficient stays
// nil here (the baseline-vs-efficient comparison lives in
// TestConformanceBatched, where Make IS the baseline).
func TestConformanceEfficient(t *testing.T) {
	archtest.Run(t, archtest.Config{
		Make: func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return New(net, sites, Options{EfficientGossip: true, PullEvery: 1})
		},
		MakeReplay: func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return New(net, sites, Options{EfficientGossip: true, PullEvery: 1, ManualRejoin: true})
		},
		NeedsTick: true,
	})
}

func TestPublishKeepsMetadataLocal(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites, Options{})
	net.ResetStats()
	if _, err := m.Publish(archtest.PubAt(1, sites[2])); err != nil {
		t.Fatal(err)
	}
	if wan := net.Stats().WANBytes; wan != 0 {
		t.Fatalf("batched publish crossed WAN: %d bytes", wan)
	}
	if m.SiteRecords(sites[2]) != 1 {
		t.Fatal("record not at producing site")
	}
	if m.PendingDigests() != 1 {
		t.Fatalf("pending digests = %d", m.PendingDigests())
	}
}

func TestImmediateDigestIsTiny(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites, Options{ImmediateDigest: true})
	p := archtest.PubAt(1, sites[0],
		provenance.Attr("zone", provenance.String("boston")),
		provenance.Attr("domain", provenance.String("traffic")))
	recSize := p.WireSize()
	net.ResetStats()
	if _, err := m.Publish(p); err != nil {
		t.Fatal(err)
	}
	st := net.Stats()
	// Digest fan-out to 3 peers must cost far less than shipping the full
	// record to 3 peers would.
	if st.WANBytes >= int64(recSize*3) {
		t.Fatalf("digest bytes %d not smaller than full replication %d", st.WANBytes, recSize*3)
	}
	if m.PendingDigests() != 0 {
		t.Fatal("immediate mode left pending digests")
	}
}

func TestLocalQueryIsFreshWithoutGossip(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites, Options{})
	p := archtest.PubAt(1, sites[0], provenance.Attr("k", provenance.String("v")))
	m.Publish(p)
	// No Tick. The producing site itself sees its own data immediately.
	got, _, err := m.QueryAttr(sites[0], "k", provenance.String("v"))
	if err != nil || len(got) != 1 {
		t.Fatalf("local query = %d ids, %v", len(got), err)
	}
	// A remote site does not see it yet (digest pending)...
	got, _, _ = m.QueryAttr(sites[2], "k", provenance.String("v"))
	if len(got) != 0 {
		t.Fatal("remote site saw ungossiped record")
	}
	// ...until the gossip round.
	m.Tick()
	got, _, err = m.QueryAttr(sites[2], "k", provenance.String("v"))
	if err != nil || len(got) != 1 {
		t.Fatalf("post-gossip remote query = %d, %v", len(got), err)
	}
}

func TestQueryContactsOnlyDigestMatches(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites, Options{ImmediateDigest: true})
	// Only boston-0 holds traffic data; the other three hold weather.
	m.Publish(archtest.PubAt(1, sites[0], provenance.Attr("domain", provenance.String("traffic"))))
	for i, s := range sites[1:] {
		m.Publish(archtest.PubAt(byte(10+i), s, provenance.Attr("domain", provenance.String("weather"))))
	}
	got, _, err := m.QueryAttr(sites[3], "domain", provenance.String("traffic"))
	if err != nil || len(got) != 1 {
		t.Fatalf("query = %d, %v", len(got), err)
	}
	// Digest routing: only 1 remote site contacted (vs feddb's 3).
	if m.LastContacted() != 1 {
		t.Fatalf("contacted %d remote sites, want 1", m.LastContacted())
	}
}

func TestAncestryServerSideTraversal(t *testing.T) {
	// A long chain entirely at one remote site must resolve in ONE round
	// trip regardless of its depth.
	net, sites := archtest.NewNetwork()
	m := New(net, sites, Options{ImmediateDigest: true})
	origins := []netsim.SiteID{sites[2]} // whole chain in london
	ids := archtest.ChainAt(t, m, origins, 30, 1)
	net.ResetStats()
	anc, _, err := m.QueryAncestors(sites[0], ids[len(ids)-1])
	if err != nil {
		t.Fatal(err)
	}
	if len(anc) != 29 {
		t.Fatalf("ancestors = %d, want 29", len(anc))
	}
	// One Call = 2 messages, independent of the 30-deep chain.
	if msgs := net.Stats().Messages; msgs > 4 {
		t.Fatalf("single-site chain took %d messages; server-side traversal broken", msgs)
	}
}

func TestAncestryCrossSiteCostScalesWithSites(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites, Options{ImmediateDigest: true})
	// Chain alternating across all 4 sites.
	ids := archtest.ChainAt(t, m, sites, 16, 1)
	net.ResetStats()
	anc, _, err := m.QueryAncestors(sites[0], ids[len(ids)-1])
	if err != nil {
		t.Fatal(err)
	}
	if len(anc) != 15 {
		t.Fatalf("ancestors = %d, want 15", len(anc))
	}
}

func TestUnknownSiteAndGhost(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites[:2], Options{})
	if _, err := m.Publish(archtest.PubAt(1, sites[3])); err == nil {
		t.Fatal("publish from non-member accepted")
	}
	var ghost provenance.ID
	ghost[3] = 0x77
	if _, _, err := m.Lookup(sites[0], ghost); err == nil {
		t.Fatal("ghost lookup succeeded")
	}
}

func TestReplicateOnRead(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites, Options{ImmediateDigest: true, ReplicateOnRead: true})
	p := archtest.PubAt(1, sites[2]) // data lives in london
	if _, err := m.Publish(p); err != nil {
		t.Fatal(err)
	}
	boston := sites[0]
	// First lookup crosses the WAN.
	_, d1, err := m.Lookup(boston, p.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Second lookup is served by the read replica: much faster, no WAN.
	net.ResetStats()
	rec, d2, err := m.Lookup(boston, p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rec.ComputeID() != p.ID {
		t.Fatal("replica returned wrong record")
	}
	if d2 >= d1 {
		t.Fatalf("replica lookup %v not faster than remote %v", d2, d1)
	}
	if net.Stats().WANBytes != 0 {
		t.Fatalf("replica hit crossed WAN: %d bytes", net.Stats().WANBytes)
	}
	if m.ReplicaHits() != 1 {
		t.Fatalf("replica hits = %d", m.ReplicaHits())
	}
	if m.ReplicaCount(boston) != 1 {
		t.Fatalf("replica count = %d", m.ReplicaCount(boston))
	}
}

func TestReplicationDisabledByDefault(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites, Options{ImmediateDigest: true})
	p := archtest.PubAt(1, sites[2])
	m.Publish(p)
	m.Lookup(sites[0], p.ID)
	m.Lookup(sites[0], p.ID)
	if m.ReplicaHits() != 0 {
		t.Fatal("replication active without opt-in")
	}
	if m.ReplicaCount(sites[0]) != 0 {
		t.Fatal("replica cached without opt-in")
	}
}

func TestConformanceWithReplication(t *testing.T) {
	archtest.Run(t, archtest.Config{
		Make: func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return New(net, sites, Options{ImmediateDigest: true, ReplicateOnRead: true})
		},
		MakeReplay: func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return New(net, sites, Options{ImmediateDigest: true, ReplicateOnRead: true, ManualRejoin: true})
		},
	})
}

// viewFingerprints snapshots every site's view content.
func viewFingerprints(m *Model, sites []netsim.SiteID) []uint64 {
	out := make([]uint64, len(sites))
	for i, s := range sites {
		out[i] = m.SiteView(s).Fingerprint()
	}
	return out
}

func TestSplitBrainPartitionHeal(t *testing.T) {
	net, sites := archtest.NewNetwork() // boston-0/1, london-0/1
	m := New(net, sites, Options{})
	boston, london := sites[:2], sites[2:]
	net.Partition(boston, london)

	// Each side publishes under the same attribute while partitioned.
	pb := archtest.PubAt(1, boston[0], provenance.Attr("domain", provenance.String("split")))
	pl := archtest.PubAt(2, london[0], provenance.Attr("domain", provenance.String("split")))
	for _, p := range []arch.Pub{pb, pl} {
		if _, err := m.Publish(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Tick(); err != nil {
		t.Fatal(err)
	}

	// Split-brain: the same query from opposite sides returns different,
	// side-local result sets.
	gotB, _, err := m.QueryAttr(boston[1], "domain", provenance.String("split"))
	if err != nil {
		t.Fatal(err)
	}
	gotL, _, err := m.QueryAttr(london[1], "domain", provenance.String("split"))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotB) != 1 || gotB[0] != pb.ID {
		t.Fatalf("boston querier saw %v, want only the boston record", gotB)
	}
	if len(gotL) != 1 || gotL[0] != pl.ID {
		t.Fatalf("london querier saw %v, want only the london record", gotL)
	}
	if m.SiteView(boston[1]).Fingerprint() == m.SiteView(london[1]).Fingerprint() {
		t.Fatal("views on opposite partition sides converged mid-partition")
	}
	if m.PendingDigests() == 0 {
		t.Fatal("cross-partition deltas should still be pending")
	}

	// Heal: the outbox drains to the other side and every view converges.
	net.HealPartition()
	if err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	if m.PendingDigests() != 0 {
		t.Fatalf("%d digests still pending after heal", m.PendingDigests())
	}
	fps := viewFingerprints(m, sites)
	for i, fp := range fps {
		if fp != fps[0] {
			t.Fatalf("site %d view diverged after heal: %x vs %x", i, fp, fps[0])
		}
	}
	for _, q := range sites {
		got, _, err := m.QueryAttr(q, "domain", provenance.String("split"))
		if err != nil || len(got) != 2 {
			t.Fatalf("post-heal query from %d = %d ids, %v", q, len(got), err)
		}
	}
}

func TestGossipBytesChargedPerReceivingPeer(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites, Options{})
	// Cut boston-0 off from everyone: its delta reaches nobody, so a
	// partial delivery charges exactly the per-peer deliveries that
	// actually happened.
	net.Partition([]netsim.SiteID{sites[0]})
	if _, err := m.Publish(archtest.PubAt(1, sites[0], provenance.Attr("k", provenance.String("v")))); err != nil {
		t.Fatal(err)
	}
	net.ResetStats()
	if err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	if b := net.Stats().Bytes; b != 0 {
		t.Fatalf("partitioned gossip charged %d bytes; nothing was transmitted", b)
	}

	// Heal and gossip again: now every one of the 3 peers' deliveries is
	// charged individually — bytes must be exactly 3 × the delta size.
	net.HealPartition()
	net.ResetStats()
	if err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	st := net.Stats()
	if st.Messages != 3 {
		t.Fatalf("delta fan-out sent %d messages, want 3 (one per receiving peer)", st.Messages)
	}
	if st.Bytes%3 != 0 || st.Bytes == 0 {
		t.Fatalf("bytes %d not three equal per-peer digest charges", st.Bytes)
	}
}

func TestViewDeterminismUnderLoss(t *testing.T) {
	run := func() []uint64 {
		net, sites := netsim.RandomTopology(netsim.Config{LossRate: 0.2, Seed: 77}, 4, 3, 99)
		m := New(net, sites, Options{})
		for i := 0; i < 24; i++ {
			p := archtest.PubN(i, sites[(i*5)%len(sites)],
				provenance.Attr("domain", provenance.String("det")))
			if _, err := m.Publish(p); err != nil {
				t.Fatal(err)
			}
		}
		for r := 0; r < 3; r++ { // deliberately too few rounds: views stay partial
			if err := m.Tick(); err != nil {
				t.Fatal(err)
			}
		}
		return viewFingerprints(m, sites)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("site %d view diverged across identical seeded runs: %x vs %x", i, a[i], b[i])
		}
	}
}

func TestDuplicateDeltaRedeliveryIsIdempotent(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites, Options{})
	p := archtest.PubAt(1, sites[0], provenance.Attr("k", provenance.String("v")))
	if _, err := m.Publish(p); err != nil {
		t.Fatal(err)
	}
	if err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	fps := viewFingerprints(m, sites)
	// Re-offering the same publication (the fault contract's idempotent
	// re-publish) cuts a new delta carrying metadata every view already
	// holds; applying it must not change any view's content.
	if _, err := m.Publish(p); err != nil {
		t.Fatal(err)
	}
	if err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	for i, fp := range viewFingerprints(m, sites) {
		if fp != fps[i] {
			t.Fatalf("site %d view changed on duplicate re-delivery", i)
		}
	}
	got, _, err := m.QueryAttr(sites[3], "k", provenance.String("v"))
	if err != nil || len(got) != 1 {
		t.Fatalf("post-duplicate query = %v, %v", got, err)
	}
}

func TestStaleViewRoutesOnlyToDeliveredSites(t *testing.T) {
	// Batched mode, no tick: a remote querier's view is empty, so its
	// QueryAttr contacts nobody — the O(matching sites) candidate set is
	// literally zero sites, not a scan of all peers.
	net, sites := archtest.NewNetwork()
	m := New(net, sites, Options{})
	if _, err := m.Publish(archtest.PubAt(1, sites[0], provenance.Attr("k", provenance.String("v")))); err != nil {
		t.Fatal(err)
	}
	got, _, err := m.QueryAttr(sites[2], "k", provenance.String("v"))
	if err != nil || len(got) != 0 {
		t.Fatalf("stale view query = %v, %v", got, err)
	}
	if m.LastContacted() != 0 {
		t.Fatalf("stale view contacted %d remote sites, want 0", m.LastContacted())
	}
}

// TestRejoinSnapshotPrunesOutbox: the satellite law behind FastRejoin,
// pinned at the model level — a rejoin snapshot supersedes the deltas
// queued for the rejoined site, so the senders drop them without ever
// replaying them on the wire.
func TestRejoinSnapshotPrunesOutbox(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites, Options{})
	victim := sites[3]

	for i := byte(1); i <= 3; i++ {
		if _, err := m.Publish(archtest.PubAt(i, sites[int(i)%3],
			provenance.Attr("domain", provenance.String("rj")))); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Tick(); err != nil {
		t.Fatal(err)
	}

	// The victim crashes; the federation keeps publishing and gossiping,
	// so deltas pile up in the senders' outboxes addressed to it.
	net.Fail(victim)
	want := 3
	for i := byte(10); i < 14; i++ {
		if _, err := m.Publish(archtest.PubAt(i, sites[int(i)%3],
			provenance.Attr("domain", provenance.String("rj")))); err != nil {
			t.Fatal(err)
		}
		want++
	}
	for i := 0; i < 2; i++ {
		if err := m.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if m.PendingDigests() == 0 {
		t.Fatal("no digests queued for the crashed site — the scenario is vacuous")
	}

	net.Heal(victim)
	if _, err := m.Rejoin(victim); err != nil {
		t.Fatal(err)
	}
	if n := m.PendingDigests(); n != 0 {
		t.Fatalf("%d publications still queued after rejoin snapshot — outboxes were not pruned", n)
	}
	// Nothing left to replay: a maintenance round must stay silent.
	msgs := net.Stats().Messages
	if err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	if got := net.Stats().Messages; got != msgs {
		t.Fatalf("tick after rejoin sent %d messages — pruned deltas were replayed", got-msgs)
	}
	// And the snapshot really carried the missed state: the rejoined site
	// resolves everything published while it was down.
	got, _, err := m.QueryAttr(victim, "domain", provenance.String("rj"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != want {
		t.Fatalf("rejoined site sees %d/%d records", len(got), want)
	}
}

// TestProactiveRejoinOnTick: a recovered site takes the snapshot path by
// itself — the Tick after its heal detects the down→up transition,
// fetches the snapshot, and prunes the senders' queues, with no operator
// Rejoin call anywhere.
func TestProactiveRejoinOnTick(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites, Options{})
	victim := sites[3]

	if _, err := m.Publish(archtest.PubAt(1, sites[0], provenance.Attr("domain", provenance.String("pro")))); err != nil {
		t.Fatal(err)
	}
	if err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	net.Fail(victim)
	for i := byte(10); i < 13; i++ {
		if _, err := m.Publish(archtest.PubAt(i, sites[int(i)%3], provenance.Attr("domain", provenance.String("pro")))); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Tick(); err != nil { // observes the victim down, queues deltas
		t.Fatal(err)
	}
	if m.PendingDigests() == 0 {
		t.Fatal("no digests queued for the crashed site — the scenario is vacuous")
	}

	net.Heal(victim)
	if err := m.Tick(); err != nil { // detects recovery, snapshots, prunes
		t.Fatal(err)
	}
	if got := m.ProactiveRejoins(); got != 1 {
		t.Fatalf("proactive rejoins = %d, want 1", got)
	}
	if n := m.PendingDigests(); n != 0 {
		t.Fatalf("%d publications still queued after the proactive snapshot", n)
	}
	got, _, err := m.QueryAttr(victim, "domain", provenance.String("pro"))
	if err != nil || len(got) != 4 {
		t.Fatalf("recovered site sees %d/4 records, %v", len(got), err)
	}
}

// TestManualRejoinKnob: with ManualRejoin set, Tick never snapshots — a
// recovered site catches up only through the senders' outbox replay, the
// pre-proactive behavior E16's replay rows measure.
func TestManualRejoinKnob(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites, Options{ManualRejoin: true})
	victim := sites[3]
	if _, err := m.Publish(archtest.PubAt(1, sites[0], provenance.Attr("domain", provenance.String("man")))); err != nil {
		t.Fatal(err)
	}
	net.Fail(victim)
	if err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	net.Heal(victim)
	for i := 0; i < 2; i++ { // replay rounds: anti-entropy drains the outbox
		if err := m.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.ProactiveRejoins(); got != 0 {
		t.Fatalf("manual mode fired %d proactive rejoins", got)
	}
	if m.PendingDigests() != 0 {
		t.Fatal("outbox replay did not drain after heal")
	}
	got, _, err := m.QueryAttr(victim, "domain", provenance.String("man"))
	if err != nil || len(got) != 1 {
		t.Fatalf("replay-recovered site sees %d/1 records, %v", len(got), err)
	}
}

// TestBloomFalsePositiveChargedRoundTrip: candidate routing goes through
// the wire-level Bloom filters, so a key that false-positives against a
// peer's filter costs a real, charged, empty round trip — and the model
// counts it.
func TestBloomFalsePositiveChargedRoundTrip(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites, Options{ImmediateDigest: true})
	// boston-0 publishes one attribute; every peer's view now holds a
	// small Bloom filter of boston-0's keys.
	if _, err := m.Publish(archtest.PubAt(1, sites[0], provenance.Attr("k", provenance.String("target")))); err != nil {
		t.Fatal(err)
	}
	querier := sites[3]
	view := m.SiteView(querier)

	// Brute-force a value that the exact index does NOT list anywhere but
	// that collides with boston-0's filter bits: a guaranteed false
	// positive. Deterministic: the filter contents are fixed by the
	// publish above.
	fpVal := ""
	for i := 0; i < 1<<20; i++ {
		v := provenance.String(fmt.Sprintf("fp-%d", i))
		mk := "k" + "\x00" + string(v.Canonical())
		if len(view.SitesFor(mk)) == 0 && view.MayHold(sites[0], mk) {
			fpVal = v.Str
			break
		}
	}
	if fpVal == "" {
		t.Fatal("no Bloom collision found in 2^20 candidates — filter too large for the test")
	}

	before := net.Stats()
	got, _, err := m.QueryAttr(querier, "k", provenance.String(fpVal))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("false-positive query returned %d ids", len(got))
	}
	st := net.Stats()
	// One remote Call (request + response) to the misrouted peer, plus
	// the querier's free local consult: the wasted round trip's bytes and
	// WAN crossing are really charged.
	if st.Messages-before.Messages < 2 {
		t.Fatalf("false positive cost %d messages, want the full round trip", st.Messages-before.Messages)
	}
	if st.WANBytes == before.WANBytes {
		t.Fatal("false-positive round trip crossed no WAN — bytes were not charged")
	}
	if m.FalsePositives() != 1 {
		t.Fatalf("false positives = %d, want 1", m.FalsePositives())
	}
	if m.RemoteContacts() == 0 {
		t.Fatal("remote contact not counted")
	}

	// The real key still answers exactly, and is not miscounted as a FP.
	got, _, err = m.QueryAttr(querier, "k", provenance.String("target"))
	if err != nil || len(got) != 1 {
		t.Fatalf("exact query = %d ids, %v", len(got), err)
	}
	if m.FalsePositives() != 1 {
		t.Fatalf("exact query raised the FP count to %d", m.FalsePositives())
	}
}

// TestOutboxRetentionBoundsLeak: the outbox-leak regression. A peer that
// dies and never comes back must stop accumulating queued deliveries once
// it passes the retention window — before the fix, every delta ever cut
// stayed queued for the dead peer forever, growing without bound. A
// thousand rounds of continuous publishing against a permanently-dead
// peer must leave the pending count bounded in both gossip modes, and the
// drop must be safe: if the peer ever does heal, the snapshot path still
// hands it everything it missed.
func TestOutboxRetentionBoundsLeak(t *testing.T) {
	const rounds = 1000
	domain := provenance.String("leak")
	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"batched", Options{}},
		{"efficient", Options{EfficientGossip: true, PullEvery: 1}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			net, sites := archtest.NewNetwork()
			m := New(net, sites, mode.opts)
			dead := sites[3]
			net.Fail(dead)
			for i := 0; i < rounds; i++ {
				if _, err := m.Publish(archtest.PubN(i, sites[i%3], provenance.Attr("domain", domain))); err != nil {
					t.Fatalf("publish %d: %v", i, err)
				}
				if err := m.Tick(); err != nil {
					t.Fatalf("tick %d: %v", i, err)
				}
			}
			if got := m.PendingDigests(); got > 4*DefaultPullEvery+1 {
				t.Fatalf("%d publications still queued against a peer dead for %d rounds — the outbox leaks", got, rounds)
			}
			net.Heal(dead)
			if err := m.Tick(); err != nil { // proactive snapshot covers the dropped deltas
				t.Fatal(err)
			}
			got, _, err := m.QueryAttr(dead, "domain", domain)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != rounds {
				t.Fatalf("healed peer sees %d/%d records — retention dropped content, not just deliveries", len(got), rounds)
			}
		})
	}

	// The knob still opens the window on request: explicitly unbounded
	// retention keeps every delivery queued — the pre-proactive replay
	// behavior E16's replay rows measure.
	t.Run("unbounded", func(t *testing.T) {
		net, sites := archtest.NewNetwork()
		m := New(net, sites, Options{DeadRetention: -1})
		net.Fail(sites[3])
		const kept = 50
		for i := 0; i < kept; i++ {
			if _, err := m.Publish(archtest.PubN(i, sites[i%3], provenance.Attr("domain", domain))); err != nil {
				t.Fatalf("publish %d: %v", i, err)
			}
			if err := m.Tick(); err != nil {
				t.Fatalf("tick %d: %v", i, err)
			}
		}
		if got := m.PendingDigests(); got != kept {
			t.Fatalf("unbounded retention queued %d/%d publications", got, kept)
		}
	})
}

// TestRejoinFailsCleanlyWhileDown: a rejoin attempted before the site is
// back is an unavailable error and must change nothing.
func TestRejoinFailsCleanlyWhileDown(t *testing.T) {
	net, sites := archtest.NewNetwork()
	m := New(net, sites, Options{})
	if _, err := m.Publish(archtest.PubAt(1, sites[0])); err != nil {
		t.Fatal(err)
	}
	if err := m.Tick(); err != nil {
		t.Fatal(err)
	}
	net.Fail(sites[3])
	if _, err := m.Rejoin(sites[3]); !arch.IsUnavailable(err) {
		t.Fatalf("rejoin of a down site: err = %v, want unavailable", err)
	}
	net.Heal(sites[3])
	if _, err := m.Rejoin(sites[3]); err != nil {
		t.Fatalf("rejoin after heal: %v", err)
	}
}
