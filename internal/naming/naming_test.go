package naming

import (
	"testing"
	"time"

	"pass/internal/provenance"
)

func digestOf(b byte) (d [32]byte) {
	for i := range d {
		d[i] = b
	}
	return
}

func volcanoRecord(t *testing.T) *provenance.Record {
	t.Helper()
	rec, _, err := provenance.NewRaw(digestOf(1), 100).
		Attr(provenance.KeyDomain, provenance.String("volcano")).
		Attr(provenance.KeyZone, provenance.String("vesuvius")).
		Attr(provenance.KeySensorClass, provenance.String("seismometer")).
		Attr(provenance.KeySensorID, provenance.String("s-1")).
		Attr(provenance.KeySensorID, provenance.String("s-2")).
		Attr(provenance.KeyStart, provenance.TimeVal(time.Date(2004, 10, 11, 6, 30, 0, 0, time.UTC))).
		Attr(provenance.KeyEnd, provenance.TimeVal(time.Date(2004, 10, 11, 7, 30, 0, 0, time.UTC))).
		CreatedAt(1).Build()
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestEncodePaperExample(t *testing.T) {
	// The paper's example name is volcano_vesuvius_10_11_04; our default
	// convention emits domain_zone_class_YY_MM_DD.
	name := Default().Encode(volcanoRecord(t))
	want := "volcano_vesuvius_seismometer_04_10_11"
	if name != want {
		t.Fatalf("Encode = %q, want %q", name, want)
	}
}

func TestEncodeMissingFields(t *testing.T) {
	rec, _, _ := provenance.NewRaw(digestOf(2), 1).
		Attr(provenance.KeyDomain, provenance.String("traffic")).
		CreatedAt(1).Build()
	name := Default().Encode(rec)
	if name != "traffic_x_x_x_x_x" {
		t.Fatalf("Encode with missing fields = %q", name)
	}
}

func TestEncodeSanitizesSeparator(t *testing.T) {
	rec, _, _ := provenance.NewRaw(digestOf(3), 1).
		Attr(provenance.KeyDomain, provenance.String("traffic_data")).
		CreatedAt(1).Build()
	name := Default().Encode(rec)
	p, ok := Default().Parse(name)
	if !ok {
		t.Fatalf("sanitized name %q failed to parse", name)
	}
	// The underscore in the value was flattened: information loss.
	if p.Fields[provenance.KeyDomain] != "traffic-data" {
		t.Fatalf("parsed domain = %q", p.Fields[provenance.KeyDomain])
	}
}

func TestParseRoundTrip(t *testing.T) {
	conv := Default()
	name := conv.Encode(volcanoRecord(t))
	p, ok := conv.Parse(name)
	if !ok {
		t.Fatal("parse failed")
	}
	if p.Fields[provenance.KeyDomain] != "volcano" || p.Fields[provenance.KeyZone] != "vesuvius" {
		t.Fatalf("fields = %v", p.Fields)
	}
	if !p.HasTime {
		t.Fatal("time not recovered")
	}
	// Day resolution only: the 06:30 start has been truncated.
	if p.Start.Hour() != 0 {
		t.Fatalf("parsed time carries sub-day precision: %v", p.Start)
	}
	if p.Start.Year() != 2004 || p.Start.Month() != 10 || p.Start.Day() != 11 {
		t.Fatalf("parsed date = %v", p.Start)
	}
}

func TestParseRejectsWrongShape(t *testing.T) {
	conv := Default()
	for _, bad := range []string{"", "one", "a_b", "a_b_c_d_e_f_g_h"} {
		if _, ok := conv.Parse(bad); ok {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func TestParseMissingMarkers(t *testing.T) {
	p, ok := Default().Parse("traffic_x_x_x_x_x")
	if !ok {
		t.Fatal("parse failed")
	}
	if _, present := p.Fields[provenance.KeyZone]; present {
		t.Fatal("missing marker parsed as a value")
	}
	if p.HasTime {
		t.Fatal("missing time parsed as a value")
	}
}

func TestCanExpress(t *testing.T) {
	conv := Default()
	if !conv.CanExpress(provenance.KeyDomain) {
		t.Fatal("domain should be expressible")
	}
	if !conv.CanExpress(provenance.KeyStart) {
		t.Fatal("t-start should be expressible via the time component")
	}
	// The paper's examples of inexpressible information.
	for _, key := range []string{provenance.KeySensorID, provenance.KeyUpgrade, provenance.KeySoftware, "~tool"} {
		if conv.CanExpress(key) {
			t.Errorf("%s should NOT be expressible in a filename", key)
		}
	}
}

func TestMatchName(t *testing.T) {
	conv := Default()
	name := conv.Encode(volcanoRecord(t))
	if !conv.MatchName(name, provenance.KeyDomain, "volcano") {
		t.Fatal("domain match failed")
	}
	if conv.MatchName(name, provenance.KeyDomain, "traffic") {
		t.Fatal("wrong domain matched")
	}
	// Multi-valued attribute: the filename cannot carry sensor IDs at all.
	if conv.MatchName(name, provenance.KeySensorID, "s-1") {
		t.Fatal("sensor-id query matched a name that cannot encode it")
	}
	if conv.MatchName("garbage", provenance.KeyDomain, "volcano") {
		t.Fatal("garbage name matched")
	}
}

func TestCustomConvention(t *testing.T) {
	conv := Convention{Fields: []string{"a", "b"}, Sep: "-", Missing: "NA"}
	rec, _, _ := provenance.NewRaw(digestOf(4), 1).
		Attr("a", provenance.Int64(42)).
		CreatedAt(1).Build()
	name := conv.Encode(rec)
	if name != "42-NA" {
		t.Fatalf("custom encode = %q", name)
	}
	p, ok := conv.Parse(name)
	if !ok || p.Fields["a"] != "42" {
		t.Fatalf("custom parse = %+v, %v", p, ok)
	}
	// Typed value flattened to string: "42" the int and "42" the string
	// are now indistinguishable — the precision loss E2 measures.
}
