// Package naming implements the strawman the paper argues against:
// conventional, self-describing filenames like
// "volcano_vesuvius_10_11_04" (Section II-A). A Convention fixes an
// ordered list of attribute keys plus a time format and renders a
// record's provenance into a flat string; Parse recovers what it can.
//
// The package exists to make the paper's eight objections measurable
// (experiment E2): information that does not fit the convention —
// multi-valued attributes, typed values, annotations, derivation
// relationships, attributes added after the convention was fixed — is
// silently lost in the filename, and queries over those attributes
// cannot be answered from names alone.
package naming

import (
	"strings"
	"time"

	"pass/internal/provenance"
)

// Convention is an ordered naming convention: the chosen attribute keys
// are rendered in order, separated by Sep, followed by the record's
// window start formatted with TimeLayout (when present).
type Convention struct {
	// Fields are the attribute keys baked into the convention, most
	// significant first (the significance ordering the paper criticizes).
	Fields []string
	// TimeLayout formats the t-start attribute (Go reference layout).
	// Empty omits time.
	TimeLayout string
	// Sep separates components. Defaults to "_".
	Sep string
	// Missing fills a field the record does not carry.
	Missing string
}

// Default is the convention implied by the paper's example
// "volcano_vesuvius_10_11_04": domain, then a location, then a
// day-resolution date.
func Default() Convention {
	return Convention{
		Fields:     []string{provenance.KeyDomain, provenance.KeyZone, provenance.KeySensorClass},
		TimeLayout: "06_01_02",
		Sep:        "_",
		Missing:    "x",
	}
}

func (c Convention) sep() string {
	if c.Sep == "" {
		return "_"
	}
	return c.Sep
}

func (c Convention) missing() string {
	if c.Missing == "" {
		return "x"
	}
	return c.Missing
}

// sanitize keeps a component from colliding with the separator.
func (c Convention) sanitize(s string) string {
	return strings.ReplaceAll(s, c.sep(), "-")
}

// Encode renders the record's name under the convention. Only the first
// value of each field is used (filenames cannot carry multi-valued
// attributes); everything else about the record is dropped.
func (c Convention) Encode(rec *provenance.Record) string {
	parts := make([]string, 0, len(c.Fields)+1)
	for _, f := range c.Fields {
		if v, ok := rec.Get(f); ok {
			parts = append(parts, c.sanitize(v.AsString()))
		} else {
			parts = append(parts, c.missing())
		}
	}
	if c.TimeLayout != "" {
		if start, _, ok := rec.TimeRange(); ok {
			parts = append(parts, time.Unix(0, start).UTC().Format(c.TimeLayout))
		} else {
			// One missing marker per time component keeps the name's
			// shape (part count) fixed, which Parse relies on.
			for range strings.Split(c.TimeLayout, c.sep()) {
				parts = append(parts, c.missing())
			}
		}
	}
	return strings.Join(parts, c.sep())
}

// Parsed is the information recoverable from a conventional filename:
// string-typed field values (typed provenance values have been flattened
// to strings) and, when the convention includes time, the day-resolution
// window start.
type Parsed struct {
	Fields map[string]string
	// Start is the recovered window start (day resolution); zero when the
	// convention has no time component or the component was missing.
	Start   time.Time
	HasTime bool
}

// Parse recovers the convention's fields from a name. It reports ok=false
// for names that do not match the convention's shape.
func (c Convention) Parse(name string) (Parsed, bool) {
	parts := strings.Split(name, c.sep())
	want := len(c.Fields)
	timeParts := 0
	if c.TimeLayout != "" {
		timeParts = len(strings.Split(c.TimeLayout, c.sep()))
	}
	if len(parts) != want+timeParts {
		return Parsed{}, false
	}
	p := Parsed{Fields: make(map[string]string, want)}
	for i, f := range c.Fields {
		if parts[i] != c.missing() {
			p.Fields[f] = parts[i]
		}
	}
	if timeParts > 0 {
		allMissing := true
		for _, tp := range parts[want:] {
			if tp != c.missing() {
				allMissing = false
				break
			}
		}
		if !allMissing {
			ts := strings.Join(parts[want:], c.sep())
			if t, err := time.Parse(c.TimeLayout, ts); err == nil {
				p.Start = t
				p.HasTime = true
			}
		}
	}
	return p, true
}

// CanExpress reports whether a query on the given attribute key can be
// answered from names under this convention at all. Queries outside the
// convention's fields are the paper's core objection: "additional
// important information about the data may not be readily expressible in
// the filename".
func (c Convention) CanExpress(key string) bool {
	for _, f := range c.Fields {
		if f == key {
			return true
		}
	}
	if key == provenance.KeyStart && c.TimeLayout != "" {
		return true
	}
	return false
}

// MatchName evaluates an attribute-equality query against a filename:
// parse, then compare the flattened value. Queries on inexpressible keys
// never match (recall loss); flattened values can collide across types
// (precision loss).
func (c Convention) MatchName(name, key, value string) bool {
	p, ok := c.Parse(name)
	if !ok {
		return false
	}
	got, ok := p.Fields[key]
	if !ok {
		return false
	}
	return got == c.sanitize(value)
}
