package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"pass/internal/index"
	"pass/internal/provenance"
	"pass/internal/query"
)

// TestConcurrentIngestAndQuery hammers the store from parallel writers,
// readers, and lineage walkers; run with -race. The store's contract is
// that every acknowledged ingest is immediately queryable and the audit
// stays clean throughout.
func TestConcurrentIngestAndQuery(t *testing.T) {
	s := openTest(t)
	const writers, perWriter = 4, 40
	var ingested atomic.Int64
	var wg sync.WaitGroup

	// Writers: each builds its own derivation chain.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			parent := provenance.ZeroID
			for i := 0; i < perWriter; i++ {
				zone := fmt.Sprintf("zone-%d", w)
				var id provenance.ID
				var err error
				if parent.IsZero() || i%3 == 0 {
					id, err = s.IngestTupleSet(sampleSet(fmt.Sprintf("w%d-s%d", w, i), int64(i*100), 3),
						provenance.Attr(provenance.KeyZone, provenance.String(zone)))
				} else {
					id, err = s.Derive([]provenance.ID{parent}, "step", "1",
						sampleSet(fmt.Sprintf("w%d-d%d", w, i), int64(i*100+50), 2),
						provenance.Attr(provenance.KeyZone, provenance.String(zone)))
				}
				if err != nil {
					t.Error(err)
					return
				}
				parent = id
				ingested.Add(1)
			}
		}(w)
	}

	// Readers: attribute queries and closure walks against whatever is
	// committed so far; results only need to be internally consistent.
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ids, err := s.Query(query.AttrEq{Key: provenance.KeyZone, Value: provenance.String(fmt.Sprintf("zone-%d", r))})
				if err != nil {
					t.Error(err)
					return
				}
				for _, id := range ids {
					if _, err := s.Ancestors(id, index.NoLimit); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(r)
	}

	// Wait for writers, then stop readers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ingested.Load() < writers*perWriter {
			if t.Failed() {
				return
			}
		}
	}()
	<-done
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	n, err := s.CountRecords()
	if err != nil || n != writers*perWriter {
		t.Fatalf("records = %d, want %d (%v)", n, writers*perWriter, err)
	}
	rep, err := s.VerifyConsistency()
	if err != nil || !rep.Clean() {
		t.Fatalf("audit after concurrency: %+v, %v", rep, err)
	}
}

// TestConcurrentGCAndLineage interleaves payload GC with lineage reads:
// P4 must hold under concurrency.
func TestConcurrentGCAndLineage(t *testing.T) {
	s := openTest(t)
	// A chain of 60.
	parent, err := s.IngestTupleSet(sampleSet("root", 0, 3), trafficAttrs("boston")...)
	if err != nil {
		t.Fatal(err)
	}
	chain := []provenance.ID{parent}
	for i := 1; i < 60; i++ {
		id, err := s.Derive([]provenance.ID{parent}, "step", "1", sampleSet("c", int64(i), 2))
		if err != nil {
			t.Fatal(err)
		}
		chain = append(chain, id)
		parent = id
	}
	leaf := chain[len(chain)-1]

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for _, id := range chain[:len(chain)-1] {
			if err := s.RemoveData(id); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			anc, err := s.Ancestors(leaf, index.NoLimit)
			if err != nil {
				t.Error(err)
				return
			}
			if len(anc) != len(chain)-1 {
				t.Errorf("lineage shrank during GC: %d/%d", len(anc), len(chain)-1)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	rep, err := s.VerifyConsistency()
	if err != nil || !rep.Clean() {
		t.Fatalf("audit: %+v, %v", rep, err)
	}
	if rep.Collected != len(chain)-1 {
		t.Fatalf("collected = %d, want %d", rep.Collected, len(chain)-1)
	}
}
