package core

import (
	"fmt"
	"sync/atomic"
	"testing"

	"pass/internal/index"
	"pass/internal/provenance"
	"pass/internal/query"
	"pass/internal/tuple"
)

// Microbenchmarks for the local PASS hot paths: ingest, attribute query,
// lineage, and GC. These complement the E-series experiment benchmarks
// at the repository root.

func benchStore(b *testing.B) *Store {
	b.Helper()
	var tick atomic.Int64
	s, err := Open(b.TempDir(), Options{Clock: func() int64 { return tick.Add(1) }})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	return s
}

func benchSet(n int, seed int64) *tuple.Set {
	ts := &tuple.Set{}
	for i := 0; i < n; i++ {
		ts.Append(tuple.Reading{SensorID: "bench", Time: seed*1000 + int64(i), Value: float64(i)})
	}
	return ts
}

func BenchmarkIngestTupleSet(b *testing.B) {
	for _, size := range []int{10, 1000} {
		b.Run(fmt.Sprintf("readings-%d", size), func(b *testing.B) {
			s := benchStore(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, err := s.IngestTupleSet(benchSet(size, int64(i)),
					provenance.Attr(provenance.KeyDomain, provenance.String("traffic")),
					provenance.Attr(provenance.KeyZone, provenance.String("boston")),
				)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAttrQuery(b *testing.B) {
	s := benchStore(b)
	for i := 0; i < 2000; i++ {
		zone := fmt.Sprintf("zone-%d", i%20)
		if _, err := s.IngestTupleSet(benchSet(4, int64(i)),
			provenance.Attr(provenance.KeyZone, provenance.String(zone))); err != nil {
			b.Fatal(err)
		}
	}
	pred := query.AttrEq{Key: provenance.KeyZone, Value: provenance.String("zone-7")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids, err := s.Query(pred)
		if err != nil || len(ids) != 100 {
			b.Fatalf("%d ids, %v", len(ids), err)
		}
	}
}

func BenchmarkDerive(b *testing.B) {
	s := benchStore(b)
	parent, err := s.IngestTupleSet(benchSet(10, 0))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := s.Derive([]provenance.ID{parent}, "bench-step", "1", benchSet(4, int64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		parent = id // grow a chain, as real pipelines do
	}
}

func BenchmarkAncestorsWarm(b *testing.B) {
	s := benchStore(b)
	parent, _ := s.IngestTupleSet(benchSet(4, 0))
	for i := 0; i < 64; i++ {
		id, err := s.Derive([]provenance.ID{parent}, "step", "1", benchSet(2, int64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		parent = id
	}
	if _, err := s.Ancestors(parent, index.NoLimit); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		anc, err := s.Ancestors(parent, index.NoLimit)
		if err != nil || len(anc) != 64 {
			b.Fatalf("%d ancestors, %v", len(anc), err)
		}
	}
}

func BenchmarkRemoveData(b *testing.B) {
	s := benchStore(b)
	ids := make([]provenance.ID, b.N)
	for i := range ids {
		id, err := s.IngestTupleSet(benchSet(16, int64(i)),
			provenance.Attr(provenance.KeyZone, provenance.String("boston")))
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = id
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.RemoveData(ids[i]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyConsistency(b *testing.B) {
	s := benchStore(b)
	for i := 0; i < 1000; i++ {
		if _, err := s.IngestTupleSet(benchSet(4, int64(i)),
			provenance.Attr(provenance.KeyZone, provenance.String("boston"))); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := s.VerifyConsistency()
		if err != nil || !rep.Clean() {
			b.Fatalf("audit: %+v, %v", rep, err)
		}
	}
}
