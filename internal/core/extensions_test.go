package core

import (
	"errors"
	"testing"

	"pass/internal/provenance"
	"pass/internal/query"
	"pass/internal/tuple"
)

func TestAbstractLineage(t *testing.T) {
	s := openTest(t)
	raw1, _ := s.IngestTupleSet(sampleSet("a", 0, 3), trafficAttrs("boston")...)
	raw2, _ := s.IngestTupleSet(sampleSet("b", 0, 3), trafficAttrs("boston")...)

	mk := func(sensor string, v float64) *tuple.Set {
		out := &tuple.Set{}
		out.Append(tuple.Reading{SensorID: sensor, Time: 1, Value: v})
		return out
	}
	// Two sharpen steps (same tool+version), one aggregate.
	s1, _ := s.Derive([]provenance.ID{raw1}, "sharpen", "2.1", mk("s1", 1))
	s2, _ := s.Derive([]provenance.ID{raw2}, "sharpen", "2.1", mk("s2", 2))
	final, _ := s.Derive([]provenance.ID{s1, s2}, "aggregate", "3.0", mk("f", 3))

	tools, err := s.AbstractLineage(final)
	if err != nil {
		t.Fatal(err)
	}
	if len(tools) != 2 {
		t.Fatalf("abstract lineage has %d tools, want 2: %+v", len(tools), tools)
	}
	// Sorted by name: aggregate before sharpen.
	if tools[0].Tool != "aggregate" || tools[0].Steps != 1 {
		t.Fatalf("tools[0] = %+v", tools[0])
	}
	if tools[1].Tool != "sharpen" || tools[1].Version != "2.1" || tools[1].Steps != 2 {
		t.Fatalf("tools[1] = %+v", tools[1])
	}
	// A raw record abstracts to nothing.
	tools, err = s.AbstractLineage(raw1)
	if err != nil || len(tools) != 0 {
		t.Fatalf("raw abstraction = %+v, %v", tools, err)
	}
}

func TestAbstractLineageDistinguishesVersions(t *testing.T) {
	// The point of the abstraction: an optimizer bug in one version must
	// be distinguishable ("compilers are subject to optimizer bugs").
	s := openTest(t)
	raw, _ := s.IngestTupleSet(sampleSet("a", 0, 3), trafficAttrs("boston")...)
	mk := func(v float64) *tuple.Set {
		out := &tuple.Set{}
		out.Append(tuple.Reading{SensorID: "x", Time: 1, Value: v})
		return out
	}
	d1, _ := s.Derive([]provenance.ID{raw}, "gcc", "3.3.3", mk(1))
	d2, _ := s.Derive([]provenance.ID{d1}, "gcc", "3.4.0", mk(2))
	tools, err := s.AbstractLineage(d2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tools) != 2 {
		t.Fatalf("versions collapsed: %+v", tools)
	}
}

func TestDerivePrivateEnforcesFloor(t *testing.T) {
	s := openTest(t)
	// One patient's EKG: a single distinct source.
	single, _ := s.IngestTupleSet(sampleSet("patient-7-ekg", 0, 20),
		provenance.Attr(provenance.KeyDomain, provenance.String("medical")))
	out := &tuple.Set{}
	out.Append(tuple.Reading{SensorID: "agg", Time: 1, Value: 75})

	_, err := s.DerivePrivate([]provenance.ID{single}, "privacy-agg", "1.0", out, 5)
	if !errors.Is(err, ErrInsufficientAggregation) {
		t.Fatalf("err = %v, want ErrInsufficientAggregation", err)
	}

	// Pool five patients: floor met.
	parents := []provenance.ID{single}
	for i := 0; i < 4; i++ {
		id, err := s.IngestTupleSet(sampleSet(string(rune('a'+i))+"-ekg", int64(i*100), 20),
			provenance.Attr(provenance.KeyDomain, provenance.String("medical")))
		if err != nil {
			t.Fatal(err)
		}
		parents = append(parents, id)
	}
	aggID, err := s.DerivePrivate(parents, "privacy-agg", "1.0", out, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The aggregate's provenance records the privacy floor and the actual
	// source diversity.
	rec, err := s.GetRecord(aggID)
	if err != nil {
		t.Fatal(err)
	}
	if k, ok := rec.Get(KeyPrivacyK); !ok || k.Int != 5 {
		t.Fatalf("privacy-k = %+v", k)
	}
	if n, ok := rec.Get(KeyPrivacySources); !ok || n.Int != 5 {
		t.Fatalf("privacy-sources = %+v", n)
	}
	// And the privacy floor is queryable like any other provenance.
	got, err := s.Query(query.AttrRange{Key: KeyPrivacyK, Lo: provenance.Int64(5), Hi: provenance.Int64(100)})
	if err != nil || len(got) != 1 || got[0] != aggID {
		t.Fatalf("privacy query = %v, %v", got, err)
	}
}

func TestDerivePrivateMinSourcesClamped(t *testing.T) {
	s := openTest(t)
	raw, _ := s.IngestTupleSet(sampleSet("solo", 0, 3), trafficAttrs("boston")...)
	out := &tuple.Set{}
	out.Append(tuple.Reading{SensorID: "agg", Time: 1, Value: 1})
	// minSources <= 0 is clamped to 1, which one source satisfies.
	if _, err := s.DerivePrivate([]provenance.ID{raw}, "t", "1", out, 0); err != nil {
		t.Fatal(err)
	}
}

func TestDerivePrivateRefusesGCdInputs(t *testing.T) {
	s := openTest(t)
	raw, _ := s.IngestTupleSet(sampleSet("gone", 0, 3), trafficAttrs("boston")...)
	if err := s.RemoveData(raw); err != nil {
		t.Fatal(err)
	}
	out := &tuple.Set{}
	out.Append(tuple.Reading{SensorID: "agg", Time: 1, Value: 1})
	// The aggregate cannot verify diversity over collected data.
	if _, err := s.DerivePrivate([]provenance.ID{raw}, "t", "1", out, 1); !errors.Is(err, ErrDataRemoved) {
		t.Fatalf("err = %v, want ErrDataRemoved in chain", err)
	}
}
