// Package core implements the local Provenance-Aware Storage System
// (PASS), the paper's primary contribution (Section V). It binds together
// the substrates — the embedded LSM store, the provenance model, the
// secondary indexes, and the query engine — behind one API with the four
// defining PASS properties:
//
//	P1  Provenance is treated as a first-class object: every tuple set is
//	    stored under its provenance record, and records are typed values,
//	    not strings.
//	P2  Provenance can be queried: attribute, range, time-overlap, and
//	    transitive ancestry queries all execute against the indexes.
//	P3  Nonidentical data items do not have identical provenance: record
//	    identity is a content hash that folds in the data digest.
//	P4  Provenance is not lost if ancestor objects are removed: garbage
//	    collection deletes tuple-set payloads but never provenance
//	    records, so lineage chains stay intact.
//
// Crash consistency: every ingest/derive/annotate commits its data blob,
// its provenance record, and all of its index entries in one atomic
// kvstore batch (one WAL record), so the paper's Reliability criterion —
// "recover provenance metadata to a state consistent with its data after
// a system failure" — holds by construction and is checked explicitly by
// VerifyConsistency.
//
// Keyspace layout inside the shared kvstore (first bytes of each key):
//
//	p/  provenance records, by record ID
//	d/  tuple-set payloads, by content digest (shared across records)
//	dc/ payload reference counts
//	gc/ markers for payloads removed by GC (distinguishes "collected"
//	    from "corrupt/missing" during consistency audits)
//	ia/it/ic/ir/im  index namespaces (package index)
package core

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"time"

	"pass/internal/index"
	"pass/internal/kvstore"
	"pass/internal/provenance"
	"pass/internal/query"
	"pass/internal/tuple"
)

// Key namespaces.
var (
	nsRecord = []byte("p/")
	nsData   = []byte("d/")
	nsRefcnt = []byte("dc")
	nsGCMark = []byte("gc")
)

// Errors.
var (
	// ErrNotFound reports an unknown record ID.
	ErrNotFound = errors.New("core: record not found")
	// ErrDataRemoved reports that a record's payload was garbage-collected
	// while its provenance (per P4) remains.
	ErrDataRemoved = errors.New("core: data removed by GC (provenance retained)")
	// ErrUnknownParent reports a derivation from an ID this store has
	// never seen.
	ErrUnknownParent = errors.New("core: unknown parent record")
	// ErrNoData reports an operation that needs a payload on an
	// annotation record.
	ErrNoData = errors.New("core: record names no data")
)

// Options configures a PASS store.
type Options struct {
	// KV tunes the underlying LSM store.
	KV kvstore.Options
	// Clock supplies record-creation timestamps (unix nanoseconds).
	// Defaults to time.Now; tests inject deterministic clocks. Must be
	// safe for concurrent use (the Store calls it from any goroutine).
	Clock func() int64
}

// Store is a local PASS instance. Safe for concurrent use.
type Store struct {
	db     *kvstore.Store
	ix     *index.Index
	engine *query.Engine
	clock  func() int64
}

// Open opens (creating if needed) a PASS store rooted at dir.
func Open(dir string, opts Options) (*Store, error) {
	db, err := kvstore.Open(dir, opts.KV)
	if err != nil {
		return nil, err
	}
	s := &Store{
		db:    db,
		ix:    index.New(db),
		clock: opts.Clock,
	}
	if s.clock == nil {
		s.clock = func() int64 { return time.Now().UnixNano() }
	}
	s.engine = query.NewEngine(s.ix, s.GetRecord)
	return s, nil
}

// Close closes the store.
func (s *Store) Close() error { return s.db.Close() }

// Index exposes the secondary-index layer (architecture models and
// benchmarks use it directly).
func (s *Store) Index() *index.Index { return s.ix }

// KV exposes the underlying kvstore (for stats and tests).
func (s *Store) KV() *kvstore.Store { return s.db }

func recordKey(id provenance.ID) []byte {
	return append(append([]byte(nil), nsRecord...), id[:]...)
}

func dataKey(d tuple.Digest) []byte {
	return append(append([]byte(nil), nsData...), d[:]...)
}

func refcntKey(d tuple.Digest) []byte {
	return append(append([]byte(nil), nsRefcnt...), d[:]...)
}

func gcMarkKey(d tuple.Digest) []byte {
	return append(append([]byte(nil), nsGCMark...), d[:]...)
}

// IngestTupleSet stores a raw tuple set with the given provenance
// attributes and returns the ID of its provenance record. Re-ingesting
// identical content with identical attributes at the same clock tick is
// idempotent.
func (s *Store) IngestTupleSet(ts *tuple.Set, attrs ...provenance.Attribute) (provenance.ID, error) {
	data := ts.Encode()
	digest := tuple.Digest(sha256.Sum256(data))
	rec, id, err := provenance.NewRaw([32]byte(digest), int64(len(data))).
		Attrs(attrs...).
		CreatedAt(s.clock()).
		Build()
	if err != nil {
		return provenance.ZeroID, err
	}
	return id, s.commit(id, rec, digest, data)
}

// Derive applies tool to the given parent records, producing out, and
// commits the derivation with its provenance. Every parent must already
// exist in this store.
func (s *Store) Derive(parents []provenance.ID, tool, toolVersion string, out *tuple.Set, attrs ...provenance.Attribute) (provenance.ID, error) {
	for _, p := range parents {
		ok, err := s.db.Has(recordKey(p))
		if err != nil {
			return provenance.ZeroID, err
		}
		if !ok {
			return provenance.ZeroID, fmt.Errorf("%w: %s", ErrUnknownParent, p.Short())
		}
	}
	data := out.Encode()
	digest := out.Digest()
	rec, id, err := provenance.NewDerived([32]byte(digest), int64(len(data)), tool, toolVersion, parents...).
		Attrs(attrs...).
		CreatedAt(s.clock()).
		Build()
	if err != nil {
		return provenance.ZeroID, err
	}
	return id, s.commit(id, rec, digest, data)
}

// Annotate attaches an annotation record (no payload) to the targets.
func (s *Store) Annotate(targets []provenance.ID, attrs ...provenance.Attribute) (provenance.ID, error) {
	for _, t := range targets {
		ok, err := s.db.Has(recordKey(t))
		if err != nil {
			return provenance.ZeroID, err
		}
		if !ok {
			return provenance.ZeroID, fmt.Errorf("%w: %s", ErrUnknownParent, t.Short())
		}
	}
	rec, id, err := provenance.NewAnnotation(targets...).
		Attrs(attrs...).
		CreatedAt(s.clock()).
		Build()
	if err != nil {
		return provenance.ZeroID, err
	}
	return id, s.commit(id, rec, tuple.Digest{}, nil)
}

// commit atomically writes the payload (refcounted), the record, and all
// index entries.
func (s *Store) commit(id provenance.ID, rec *provenance.Record, digest tuple.Digest, data []byte) error {
	exists, err := s.db.Has(recordKey(id))
	if err != nil {
		return err
	}
	if exists {
		return nil // identical provenance = same historical event: idempotent
	}
	var b kvstore.Batch
	if data != nil {
		rc, err := s.refcount(digest)
		if err != nil {
			return err
		}
		if rc == 0 {
			b.Put(dataKey(digest), data)
			// Re-ingesting content that GC removed revives it.
			b.Delete(gcMarkKey(digest))
		}
		b.Put(refcntKey(digest), encodeCount(rc+1))
	}
	b.Put(recordKey(id), rec.Encode())
	s.ix.AddToBatch(&b, id, rec)
	return s.db.Apply(&b)
}

func encodeCount(n int64) []byte {
	var buf [binary.MaxVarintLen64]byte
	w := binary.PutVarint(buf[:], n)
	return buf[:w]
}

func (s *Store) refcount(d tuple.Digest) (int64, error) {
	v, err := s.db.Get(refcntKey(d))
	if errors.Is(err, kvstore.ErrNotFound) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	n, w := binary.Varint(v)
	if w <= 0 {
		return 0, fmt.Errorf("core: corrupt refcount for %s", d)
	}
	return n, nil
}

// GetRecord loads a provenance record by ID, verifying that the stored
// bytes still hash to the ID (self-verifying storage).
func (s *Store) GetRecord(id provenance.ID) (*provenance.Record, error) {
	v, err := s.db.Get(recordKey(id))
	if errors.Is(err, kvstore.ErrNotFound) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id.Short())
	}
	if err != nil {
		return nil, err
	}
	rec, err := provenance.Decode(v)
	if err != nil {
		return nil, err
	}
	if rec.ComputeID() != id {
		return nil, fmt.Errorf("%w: stored record for %s hashes differently", provenance.ErrIDMismatch, id.Short())
	}
	return rec, nil
}

// HasRecord reports whether the store holds id.
func (s *Store) HasRecord(id provenance.ID) (bool, error) {
	return s.db.Has(recordKey(id))
}

// GetData loads the tuple set a record names. ErrDataRemoved indicates
// the payload was garbage-collected (its provenance survives, per P4);
// ErrNoData indicates an annotation record.
func (s *Store) GetData(id provenance.ID) (*tuple.Set, error) {
	rec, err := s.GetRecord(id)
	if err != nil {
		return nil, err
	}
	if rec.Type == provenance.Annotation {
		return nil, fmt.Errorf("%w: %s is an annotation", ErrNoData, id.Short())
	}
	digest := tuple.Digest(rec.DataDigest)
	v, err := s.db.Get(dataKey(digest))
	if errors.Is(err, kvstore.ErrNotFound) {
		if ok, _ := s.db.Has(gcMarkKey(digest)); ok {
			return nil, fmt.Errorf("%w: %s", ErrDataRemoved, id.Short())
		}
		return nil, fmt.Errorf("core: payload for %s missing without GC marker (corruption)", id.Short())
	}
	if err != nil {
		return nil, err
	}
	ts, err := tuple.Decode(v)
	if err != nil {
		return nil, err
	}
	if ts.Digest() != digest {
		return nil, fmt.Errorf("core: payload for %s fails digest check", id.Short())
	}
	return ts, nil
}

// Query executes a predicate against the indexes.
func (s *Store) Query(p query.Predicate) ([]provenance.ID, error) {
	return s.engine.Execute(p)
}

// QueryString parses and executes a textual query.
func (s *Store) QueryString(q string) ([]provenance.ID, error) {
	p, err := query.Parse(q)
	if err != nil {
		return nil, err
	}
	return s.engine.Execute(p)
}

// Ancestors, Descendants, Roots, and Reachable expose lineage traversal
// ("find all the raw data from which this data set was derived"; taint
// tracking of everything downstream).
func (s *Store) Ancestors(id provenance.ID, maxDepth int) ([]provenance.ID, error) {
	return s.ix.Ancestors(id, maxDepth)
}

// Descendants returns the transitive derived/annotating records of id.
func (s *Store) Descendants(id provenance.ID, maxDepth int) ([]provenance.ID, error) {
	return s.ix.Descendants(id, maxDepth)
}

// Roots returns the raw origins of id.
func (s *Store) Roots(id provenance.ID) ([]provenance.ID, error) {
	return s.ix.Roots(id)
}

// Reachable reports whether data flowed from ancestor into id.
func (s *Store) Reachable(id, ancestor provenance.ID) (bool, error) {
	return s.ix.Reachable(id, ancestor)
}

// ScanRecords visits every provenance record (unspecified order); the
// flat-scan baseline of experiment E3 and the walk used by consistency
// audits. fn returning false stops the scan.
func (s *Store) ScanRecords(fn func(id provenance.ID, rec *provenance.Record) bool) error {
	var decodeErr error
	err := s.db.ScanPrefix(nsRecord, func(k, v []byte) bool {
		var id provenance.ID
		if len(k) != len(nsRecord)+32 {
			return true
		}
		copy(id[:], k[len(nsRecord):])
		rec, err := provenance.Decode(v)
		if err != nil {
			decodeErr = fmt.Errorf("core: record %s: %w", id.Short(), err)
			return false
		}
		return fn(id, rec)
	})
	if err != nil {
		return err
	}
	return decodeErr
}

// CountRecords returns the number of provenance records.
func (s *Store) CountRecords() (int, error) {
	n := 0
	err := s.ScanRecords(func(provenance.ID, *provenance.Record) bool {
		n++
		return true
	})
	return n, err
}

// LineageTree renders the ancestry of id as an indented text tree, for
// human-facing tools. Depth limits the walk.
func (s *Store) LineageTree(id provenance.ID, depth int) (string, error) {
	var b strings.Builder
	var walk func(cur provenance.ID, indent int, remaining int) error
	walk = func(cur provenance.ID, indent, remaining int) error {
		rec, err := s.GetRecord(cur)
		if err != nil {
			return err
		}
		label := rec.Type.String()
		if rec.Tool != "" {
			label += " via " + rec.Tool + " " + rec.ToolVersion
		}
		fmt.Fprintf(&b, "%s%s  [%s]\n", strings.Repeat("  ", indent), cur.Short(), label)
		if remaining == 0 {
			return nil
		}
		for _, p := range rec.Parents {
			if err := walk(p, indent+1, remaining-1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(id, 0, depth); err != nil {
		return "", err
	}
	return b.String(), nil
}

// Stats reports store-level counters.
type Stats struct {
	Records int
	KV      kvstore.Stats
}

// Stats returns a snapshot.
func (s *Store) Stats() (Stats, error) {
	n, err := s.CountRecords()
	if err != nil {
		return Stats{}, err
	}
	return Stats{Records: n, KV: s.db.Stats()}, nil
}
