package core

import (
	"errors"
	"fmt"
	"testing"

	"pass/internal/index"
	"pass/internal/provenance"
	"pass/internal/tuple"
)

// GC is where PASS property P4 lives: payloads go, provenance stays.
// These tests pin down P4 across ancestry queries, the refcounting of
// shared payloads, and the consistency audit after a crash that lands
// mid-way through a batch of ingests and collections.

func gcClock() func() int64 {
	t := int64(0)
	return func() int64 { t++; return t }
}

func openGC(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), Options{Clock: gcClock()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func gcSet(seed int) *tuple.Set {
	ts := &tuple.Set{}
	for i := 0; i < 3; i++ {
		ts.Append(tuple.Reading{
			SensorID: fmt.Sprintf("s-%d", seed),
			Time:     int64(seed*100 + i),
			Value:    float64(seed) + float64(i)/10,
		})
	}
	return ts
}

// TestP4AncestryAfterGC: collect every payload along a derivation chain
// and confirm lineage queries still answer in full — "provenance is not
// lost if ancestor objects are removed."
func TestP4AncestryAfterGC(t *testing.T) {
	s := openGC(t)
	raw, err := s.IngestTupleSet(gcSet(1), provenance.Attr("zone", provenance.String("boston")))
	if err != nil {
		t.Fatal(err)
	}
	mid, err := s.Derive([]provenance.ID{raw}, "smooth", "1.0", gcSet(2))
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := s.Derive([]provenance.ID{mid}, "render", "1.0", gcSet(3))
	if err != nil {
		t.Fatal(err)
	}

	// Collect the two ancestors' payloads (the leaf keeps its data).
	for _, id := range []provenance.ID{raw, mid} {
		if err := s.RemoveData(id); err != nil {
			t.Fatal(err)
		}
		present, err := s.DataPresent(id)
		if err != nil || present {
			t.Fatalf("payload of %s still present after GC (%v)", id.Short(), err)
		}
		if _, err := s.GetData(id); !errors.Is(err, ErrDataRemoved) {
			t.Fatalf("GetData after GC: %v, want ErrDataRemoved", err)
		}
	}

	// P4: the full ancestry still resolves over the collected records.
	anc, err := s.Ancestors(leaf, index.NoLimit)
	if err != nil {
		t.Fatal(err)
	}
	if len(anc) != 2 {
		t.Fatalf("ancestors after GC = %d, want 2", len(anc))
	}
	found := map[provenance.ID]bool{}
	for _, a := range anc {
		found[a] = true
	}
	if !found[raw] || !found[mid] {
		t.Fatalf("ancestry lost GC'd records: %v", anc)
	}
	// Records and attribute queries survive too.
	if _, err := s.GetRecord(raw); err != nil {
		t.Fatalf("record gone after payload GC: %v", err)
	}
	ids, err := s.QueryString("zone=boston")
	if err != nil || len(ids) != 1 || ids[0] != raw {
		t.Fatalf("attribute query after GC: %v, %v", ids, err)
	}
	// The audit agrees: nothing dangling, the collections are marked.
	rep, err := s.VerifyConsistency()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.Collected != 2 {
		t.Fatalf("audit after GC: %+v", rep)
	}
}

// TestGCRefcountSharedPayload: two records naming byte-identical content
// share one stored blob; the blob must survive until the last reference
// is collected.
func TestGCRefcountSharedPayload(t *testing.T) {
	s := openGC(t)
	ts := gcSet(7)
	// Same readings, different provenance attributes → two records, one
	// payload digest.
	a, err := s.IngestTupleSet(ts, provenance.Attr("copy", provenance.String("a")))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.IngestTupleSet(ts, provenance.Attr("copy", provenance.String("b")))
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("expected distinct records for distinct attributes")
	}

	if err := s.RemoveData(a); err != nil {
		t.Fatal(err)
	}
	// b still references the shared blob.
	if present, err := s.DataPresent(b); err != nil || !present {
		t.Fatalf("shared payload vanished with a live reference (%v, %v)", present, err)
	}
	got, err := s.GetData(b)
	if err != nil || got.Len() != ts.Len() {
		t.Fatalf("GetData via surviving reference: %v, %v", got, err)
	}
	// Collecting the last reference releases the blob.
	if err := s.RemoveData(b); err != nil {
		t.Fatal(err)
	}
	if present, _ := s.DataPresent(b); present {
		t.Fatal("payload present after last reference collected")
	}
	// Idempotence: re-collecting is a no-op, not an error.
	if err := s.RemoveData(a); err != nil {
		t.Fatalf("re-collect errored: %v", err)
	}
	rep, err := s.VerifyConsistency()
	if err != nil || !rep.Clean() {
		t.Fatalf("audit: %+v, %v", rep, err)
	}
}

// TestGCAnnotationRejected: annotations carry no payload; collecting one
// must fail loudly instead of silently succeeding.
func TestGCAnnotationRejected(t *testing.T) {
	s := openGC(t)
	raw, err := s.IngestTupleSet(gcSet(1))
	if err != nil {
		t.Fatal(err)
	}
	ann, err := s.Annotate([]provenance.ID{raw}, provenance.Attr("note", provenance.String("checked")))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveData(ann); !errors.Is(err, ErrNoData) {
		t.Fatalf("RemoveData(annotation) = %v, want ErrNoData", err)
	}
}

// TestGCUnknownRecord: collecting a record that does not exist fails.
func TestGCUnknownRecord(t *testing.T) {
	s := openGC(t)
	var ghost provenance.ID
	ghost[0] = 0xAA
	if err := s.RemoveData(ghost); err == nil {
		t.Fatal("RemoveData of unknown record succeeded")
	}
}

// TestRemoveDataBeforeCountsOnlyLive: the age-based collector reports how
// many payloads it actually released, skipping annotations and records
// already collected.
func TestRemoveDataBeforeCountsOnlyLive(t *testing.T) {
	s := openGC(t)
	var ids []provenance.ID
	for i := 0; i < 5; i++ {
		id, err := s.IngestTupleSet(gcSet(i)) // clock stamps 1..5
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Pre-collect one victim by hand.
	if err := s.RemoveData(ids[0]); err != nil {
		t.Fatal(err)
	}
	// Annotations are never collected.
	if _, err := s.Annotate(ids[:1], provenance.Attr("a", provenance.String("b"))); err != nil {
		t.Fatal(err)
	}
	n, err := s.RemoveDataBefore(1 << 62)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("collected %d live payloads, want 4 (one was already gone)", n)
	}
	rep, err := s.VerifyConsistency()
	if err != nil || !rep.Clean() {
		t.Fatalf("audit: %+v, %v", rep, err)
	}
	if rep.Collected != 5 {
		t.Fatalf("collected markers = %d, want 5", rep.Collected)
	}
}

// TestVerifyConsistencyAfterCrashMidBatch: simulate a crash (reopen the
// store directory without Close) in the middle of a batch of ingests and
// collections. Recovery must replay the WAL into a state the audit calls
// clean, P4 intact.
func TestVerifyConsistencyAfterCrashMidBatch(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Clock: gcClock()})
	if err != nil {
		t.Fatal(err)
	}
	var ids []provenance.ID
	for i := 0; i < 20; i++ {
		id, err := s.IngestTupleSet(gcSet(i), provenance.Attr("batch", provenance.Int64(int64(i%3))))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	leaf, err := s.Derive(ids[:2], "merge", "1.0", gcSet(100))
	if err != nil {
		t.Fatal(err)
	}
	// Mid-batch: collect half the payloads, then "crash" — no Close, no
	// flush; the tail of the work lives only in the WAL.
	for _, id := range ids[:10] {
		if err := s.RemoveData(id); err != nil {
			t.Fatal(err)
		}
	}

	s2, err := Open(dir, Options{Clock: gcClock()})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer s2.Close()
	defer s.Close() // release the abandoned instance's fds

	rep, err := s2.VerifyConsistency()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("audit after crash not clean: %+v", rep)
	}
	if rep.Records != 21 {
		t.Fatalf("records after recovery = %d, want 21", rep.Records)
	}
	if rep.Collected != 10 {
		t.Fatalf("collected after recovery = %d, want 10", rep.Collected)
	}
	// P4 across the crash: ancestry over collected parents still answers.
	anc, err := s2.Ancestors(leaf, index.NoLimit)
	if err != nil || len(anc) != 2 {
		t.Fatalf("ancestry after crash: %v, %v", anc, err)
	}
	// And the refcount machinery still works post-recovery.
	if err := s2.RemoveData(ids[10]); err != nil {
		t.Fatal(err)
	}
	if present, _ := s2.DataPresent(ids[10]); present {
		t.Fatal("post-recovery collection did not release the payload")
	}
}
