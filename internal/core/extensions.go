package core

// Section V extensions. The paper closes with open problems beyond the
// basic PASS; this file implements the two that concern the local store:
//
//   - Provenance abstraction: "one probably wants to know what compiler
//     compiled the program that did a particular analysis step ... But
//     for most purposes, it is far more useful for this information to be
//     reported as 'gcc 3.3.3' rather than as a detailed record of gcc's
//     own provenance and change history."
//   - Privacy-preserving aggregation: "much of this data is valuable even
//     when aggregated to preserve privacy. What degree of aggregation is
//     necessary? How does one represent the provenance of such
//     aggregates?"

import (
	"fmt"
	"sort"

	"pass/internal/index"
	"pass/internal/provenance"
	"pass/internal/tuple"
)

// ToolSummary is one entry of an abstracted lineage: a tool identity plus
// how many derivation steps in the ancestry used it.
type ToolSummary struct {
	Tool    string
	Version string
	Steps   int
}

// AbstractLineage reports the ancestry of id at tool granularity: the
// deduplicated set of (tool, version) pairs that participated in
// producing it, ordered by name. This is the paper's abstraction
// recommendation — "gcc 3.3.3", not gcc's own change history. Raw
// collection steps and annotations (no tool) are excluded.
func (s *Store) AbstractLineage(id provenance.ID) ([]ToolSummary, error) {
	anc, err := s.Ancestors(id, index.NoLimit)
	if err != nil {
		return nil, err
	}
	// Include id itself: its own derivation step is part of the story.
	all := append([]provenance.ID{id}, anc...)
	counts := make(map[[2]string]int)
	for _, a := range all {
		rec, err := s.GetRecord(a)
		if err != nil {
			return nil, err
		}
		if rec.Tool == "" {
			continue
		}
		counts[[2]string{rec.Tool, rec.ToolVersion}]++
	}
	out := make([]ToolSummary, 0, len(counts))
	for k, n := range counts {
		out = append(out, ToolSummary{Tool: k[0], Version: k[1], Steps: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tool != out[j].Tool {
			return out[i].Tool < out[j].Tool
		}
		return out[i].Version < out[j].Version
	})
	return out, nil
}

// Privacy attributes attached by DerivePrivate.
const (
	// KeyPrivacyK records the source-diversity floor the aggregate met.
	KeyPrivacyK = "privacy-k"
	// KeyPrivacySources records the actual distinct-source count.
	KeyPrivacySources = "privacy-sources"
)

// ErrInsufficientAggregation reports an aggregate over too few distinct
// sources to preserve privacy.
var ErrInsufficientAggregation = fmt.Errorf("core: aggregate covers fewer distinct sources than required")

// DerivePrivate commits a privacy-preserving aggregate: it verifies that
// the parents' data together cover at least minSources distinct sensors
// (a k-anonymity-style floor — an aggregate over one patient's EKG is
// not an aggregate), refuses otherwise, and stamps the result's
// provenance with the floor it met. The provenance of the aggregate is
// its parents plus these privacy attributes, answering the paper's "how
// does one represent the provenance of such aggregates?".
func (s *Store) DerivePrivate(parents []provenance.ID, tool, toolVersion string, out *tuple.Set, minSources int, attrs ...provenance.Attribute) (provenance.ID, error) {
	if minSources < 1 {
		minSources = 1
	}
	sources := make(map[string]struct{})
	for _, p := range parents {
		ts, err := s.GetData(p)
		if err != nil {
			return provenance.ZeroID, fmt.Errorf("core: aggregate input %s: %w", p.Short(), err)
		}
		for _, r := range ts.Readings {
			sources[r.SensorID] = struct{}{}
		}
	}
	if len(sources) < minSources {
		return provenance.ZeroID, fmt.Errorf("%w: %d < %d", ErrInsufficientAggregation, len(sources), minSources)
	}
	attrs = append(attrs,
		provenance.Attr(KeyPrivacyK, provenance.Int64(int64(minSources))),
		provenance.Attr(KeyPrivacySources, provenance.Int64(int64(len(sources)))),
	)
	return s.Derive(parents, tool, toolVersion, out, attrs...)
}
