package core

import (
	"fmt"

	"pass/internal/kvstore"
	"pass/internal/provenance"
	"pass/internal/tuple"
)

// Garbage collection. Sensor archives are huge ("a regional traffic
// sensing network ... could easily generate terabytes of data per day",
// Section III-D) while provenance metadata is comparatively small and
// "accessed more frequently than its data" (Section IV). GC therefore
// removes tuple-set *payloads* — by policy, typically age — while keeping
// every provenance record, which is exactly PASS property P4: "provenance
// is not lost if ancestor objects are removed." Ancestry queries keep
// working across collected records; only GetData reports ErrDataRemoved.

// RemoveData garbage-collects the payload named by id, retaining the
// provenance record. Payloads are refcounted (several records may name
// identical content); the blob is deleted when the last reference goes.
// Removing an annotation's data is an error; removing already-collected
// data is idempotent.
func (s *Store) RemoveData(id provenance.ID) error {
	rec, err := s.GetRecord(id)
	if err != nil {
		return err
	}
	if rec.Type == provenance.Annotation {
		return fmt.Errorf("%w: %s is an annotation", ErrNoData, id.Short())
	}
	digest := tuple.Digest(rec.DataDigest)

	ok, err := s.db.Has(dataKey(digest))
	if err != nil {
		return err
	}
	if !ok {
		return nil // already collected
	}
	rc, err := s.refcount(digest)
	if err != nil {
		return err
	}
	var b kvstore.Batch
	if rc <= 1 {
		b.Delete(dataKey(digest))
		b.Delete(refcntKey(digest))
		b.Put(gcMarkKey(digest), nil)
	} else {
		b.Put(refcntKey(digest), encodeCount(rc-1))
	}
	return s.db.Apply(&b)
}

// RemoveDataBefore collects payloads of all raw and derived records whose
// window end (or creation time, when no window exists) precedes cutoff.
// It returns the number of records whose payloads were released.
func (s *Store) RemoveDataBefore(cutoff int64) (int, error) {
	var victims []provenance.ID
	err := s.ScanRecords(func(id provenance.ID, rec *provenance.Record) bool {
		if rec.Type == provenance.Annotation {
			return true
		}
		t := rec.Created
		if _, end, ok := rec.TimeRange(); ok {
			t = end
		}
		if t < cutoff {
			victims = append(victims, id)
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	n := 0
	for _, id := range victims {
		// Count only records whose payload was actually live.
		rec, err := s.GetRecord(id)
		if err != nil {
			return n, err
		}
		live, err := s.db.Has(dataKey(tuple.Digest(rec.DataDigest)))
		if err != nil {
			return n, err
		}
		if err := s.RemoveData(id); err != nil {
			return n, err
		}
		if live {
			n++
		}
	}
	return n, nil
}

// DataPresent reports whether the payload for id is still stored.
func (s *Store) DataPresent(id provenance.ID) (bool, error) {
	rec, err := s.GetRecord(id)
	if err != nil {
		return false, err
	}
	if rec.Type == provenance.Annotation {
		return false, nil
	}
	return s.db.Has(dataKey(tuple.Digest(rec.DataDigest)))
}

// ConsistencyReport summarizes a full provenance↔data audit.
type ConsistencyReport struct {
	Records         int // provenance records scanned
	DataBlobs       int // live payloads
	Collected       int // records whose payload was GC'd (marker present)
	DanglingParents int // parent edges pointing at unknown records
	MissingData     int // payloads absent with no GC marker (corruption)
	BrokenIndex     int // records missing at least one index entry
	IDMismatches    int // stored records that hash to a different ID
}

// Clean reports whether the audit found no inconsistency.
func (r ConsistencyReport) Clean() bool {
	return r.DanglingParents == 0 && r.MissingData == 0 && r.BrokenIndex == 0 && r.IDMismatches == 0
}

// VerifyConsistency audits the invariant behind the paper's Reliability
// criterion: after any crash/recovery, provenance metadata must be
// consistent with its data. It checks that every record's parents exist,
// every named payload is either present or explicitly GC-marked, every
// attribute of every record is findable through the index, and every
// stored record still hashes to its ID.
func (s *Store) VerifyConsistency() (ConsistencyReport, error) {
	var rep ConsistencyReport

	// Pass 1: collect all record IDs.
	known := make(map[provenance.ID]struct{})
	err := s.ScanRecords(func(id provenance.ID, rec *provenance.Record) bool {
		known[id] = struct{}{}
		return true
	})
	if err != nil {
		return rep, err
	}

	// Pass 2: per-record checks.
	var scanErr error
	err = s.ScanRecords(func(id provenance.ID, rec *provenance.Record) bool {
		rep.Records++
		if rec.ComputeID() != id {
			rep.IDMismatches++
		}
		for _, p := range rec.Parents {
			if _, ok := known[p]; !ok {
				rep.DanglingParents++
			}
		}
		if rec.Type != provenance.Annotation {
			digest := tuple.Digest(rec.DataDigest)
			present, err := s.db.Has(dataKey(digest))
			if err != nil {
				scanErr = err
				return false
			}
			if present {
				rep.DataBlobs++
			} else {
				marked, err := s.db.Has(gcMarkKey(digest))
				if err != nil {
					scanErr = err
					return false
				}
				if marked {
					rep.Collected++
				} else {
					rep.MissingData++
				}
			}
		}
		// Every attribute must be reachable through the inverted index —
		// probed as a point lookup on the composite (key, value, id)
		// index entry. Collecting every ID under the value and searching
		// it (the obvious way) makes the audit quadratic as soon as many
		// records share a value, which is the common case (every weather
		// record carries domain=weather).
		for _, a := range rec.Attributes {
			found, err := s.ix.HasAttr(a.Key, a.Value, id)
			if err != nil {
				scanErr = err
				return false
			}
			if !found {
				rep.BrokenIndex++
				break
			}
		}
		return true
	})
	if err != nil {
		return rep, err
	}
	if scanErr != nil {
		return rep, scanErr
	}
	return rep, nil
}
