package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"pass/internal/index"
	"pass/internal/provenance"
	"pass/internal/query"
	"pass/internal/tuple"
)

// testClock returns a deterministic monotonic clock, safe for
// concurrent use (the Options.Clock contract).
func testClock() func() int64 {
	var t atomic.Int64
	return func() int64 { return t.Add(1) }
}

func openTest(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), Options{Clock: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func sampleSet(sensor string, base int64, n int) *tuple.Set {
	ts := &tuple.Set{}
	for i := 0; i < n; i++ {
		ts.Append(tuple.Reading{SensorID: sensor, Time: base + int64(i), Value: float64(i)})
	}
	return ts
}

func trafficAttrs(zone string) []provenance.Attribute {
	return []provenance.Attribute{
		provenance.Attr(provenance.KeyDomain, provenance.String("traffic")),
		provenance.Attr(provenance.KeyZone, provenance.String(zone)),
	}
}

func TestIngestAndRead(t *testing.T) {
	s := openTest(t)
	ts := sampleSet("cam-1", 1000, 10)
	id, err := s.IngestTupleSet(ts, trafficAttrs("boston")...)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s.GetRecord(id)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Type != provenance.Raw {
		t.Fatalf("type = %v", rec.Type)
	}
	if v, ok := rec.Get(provenance.KeyZone); !ok || v.Str != "boston" {
		t.Fatalf("zone = %+v", v)
	}
	got, err := s.GetData(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest() != ts.Digest() {
		t.Fatal("data round trip failed")
	}
}

func TestGetRecordNotFound(t *testing.T) {
	s := openTest(t)
	var id provenance.ID
	id[5] = 9
	if _, err := s.GetRecord(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if ok, _ := s.HasRecord(id); ok {
		t.Fatal("HasRecord on missing id")
	}
}

func TestIngestIdempotent(t *testing.T) {
	dir := t.TempDir()
	// Fixed clock: identical content+attrs+time = identical provenance.
	s, err := Open(dir, Options{Clock: func() int64 { return 42 }})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := sampleSet("s", 0, 5)
	id1, err := s.IngestTupleSet(ts, trafficAttrs("boston")...)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.IngestTupleSet(ts, trafficAttrs("boston")...)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatal("idempotent re-ingest produced a new ID")
	}
	n, err := s.CountRecords()
	if err != nil || n != 1 {
		t.Fatalf("records = %d, %v", n, err)
	}
}

func TestP3DistinctDataDistinctID(t *testing.T) {
	s := openTest(t)
	id1, err := s.IngestTupleSet(sampleSet("s", 0, 5), trafficAttrs("boston")...)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.IngestTupleSet(sampleSet("s", 0, 6), trafficAttrs("boston")...)
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Fatal("P3 violated: different data, same provenance ID")
	}
}

func TestDeriveAndLineage(t *testing.T) {
	s := openTest(t)
	raw1, _ := s.IngestTupleSet(sampleSet("cam-1", 0, 10), trafficAttrs("boston")...)
	raw2, _ := s.IngestTupleSet(sampleSet("cam-2", 0, 10), trafficAttrs("boston")...)
	agg := &tuple.Set{}
	agg.Append(tuple.Reading{SensorID: "agg", Time: 5, Value: 4.5})
	derived, err := s.Derive([]provenance.ID{raw1, raw2}, "aggregate", "1.0", agg,
		provenance.Attr(provenance.KeyDomain, provenance.String("traffic")))
	if err != nil {
		t.Fatal(err)
	}
	anc, err := s.Ancestors(derived, index.NoLimit)
	if err != nil || len(anc) != 2 {
		t.Fatalf("ancestors = %d, %v", len(anc), err)
	}
	desc, err := s.Descendants(raw1, index.NoLimit)
	if err != nil || len(desc) != 1 || desc[0] != derived {
		t.Fatalf("descendants = %v, %v", desc, err)
	}
	ok, err := s.Reachable(derived, raw2)
	if err != nil || !ok {
		t.Fatalf("reachable = %v, %v", ok, err)
	}
	roots, err := s.Roots(derived)
	if err != nil || len(roots) != 2 {
		t.Fatalf("roots = %d, %v", len(roots), err)
	}
	rec, _ := s.GetRecord(derived)
	if rec.Tool != "aggregate" || len(rec.Parents) != 2 {
		t.Fatalf("derived record = %+v", rec)
	}
}

func TestDeriveUnknownParent(t *testing.T) {
	s := openTest(t)
	var ghost provenance.ID
	ghost[0] = 0xAA
	_, err := s.Derive([]provenance.ID{ghost}, "t", "1", &tuple.Set{})
	if !errors.Is(err, ErrUnknownParent) {
		t.Fatalf("err = %v", err)
	}
}

func TestAnnotate(t *testing.T) {
	s := openTest(t)
	raw, _ := s.IngestTupleSet(sampleSet("s", 0, 3), trafficAttrs("boston")...)
	ann, err := s.Annotate([]provenance.ID{raw},
		provenance.Attr(provenance.KeyNote, provenance.String("sensor replaced with model B")),
		provenance.Attr(provenance.KeyUpgrade, provenance.Bool(true)))
	if err != nil {
		t.Fatal(err)
	}
	// Annotations are queryable (the paper: "such descriptions and
	// annotations must also be searchable").
	got, err := s.Query(query.AttrEq{Key: provenance.KeyUpgrade, Value: provenance.Bool(true)})
	if err != nil || len(got) != 1 || got[0] != ann {
		t.Fatalf("annotation query = %v, %v", got, err)
	}
	// Annotations name no data.
	if _, err := s.GetData(ann); !errors.Is(err, ErrNoData) {
		t.Fatalf("GetData(annotation) = %v", err)
	}
	if err := s.RemoveData(ann); !errors.Is(err, ErrNoData) {
		t.Fatalf("RemoveData(annotation) = %v", err)
	}
	// Annotating a ghost fails.
	var ghost provenance.ID
	ghost[1] = 1
	if _, err := s.Annotate([]provenance.ID{ghost}); !errors.Is(err, ErrUnknownParent) {
		t.Fatalf("annotate ghost = %v", err)
	}
}

func TestQueryStringEndToEnd(t *testing.T) {
	s := openTest(t)
	id, _ := s.IngestTupleSet(sampleSet("s", 0, 3), trafficAttrs("boston")...)
	s.IngestTupleSet(sampleSet("s", 100, 3), trafficAttrs("london")...)
	got, err := s.QueryString(`domain=traffic AND zone=boston`)
	if err != nil || len(got) != 1 || got[0] != id {
		t.Fatalf("query = %v, %v", got, err)
	}
	if _, err := s.QueryString(`((broken`); err == nil {
		t.Fatal("bad query accepted")
	}
}

func TestP4GCPreservesProvenance(t *testing.T) {
	s := openTest(t)
	raw, _ := s.IngestTupleSet(sampleSet("s", 0, 100), trafficAttrs("boston")...)
	mid := &tuple.Set{}
	mid.Append(tuple.Reading{SensorID: "m", Time: 1, Value: 1})
	midID, _ := s.Derive([]provenance.ID{raw}, "filter", "1", mid)
	leafSet := &tuple.Set{}
	leafSet.Append(tuple.Reading{SensorID: "l", Time: 2, Value: 2})
	leaf, _ := s.Derive([]provenance.ID{midID}, "render", "1", leafSet)

	// Collect the raw ancestor's payload.
	if err := s.RemoveData(raw); err != nil {
		t.Fatal(err)
	}
	if present, _ := s.DataPresent(raw); present {
		t.Fatal("payload still present after GC")
	}
	// P4: the provenance record survives...
	if _, err := s.GetRecord(raw); err != nil {
		t.Fatalf("provenance lost after GC: %v", err)
	}
	// ...ancestry queries still complete through the collected node...
	anc, err := s.Ancestors(leaf, index.NoLimit)
	if err != nil || len(anc) != 2 {
		t.Fatalf("ancestors through GC'd node = %d, %v", len(anc), err)
	}
	// ...and attribute queries still find it.
	got, err := s.Query(query.AttrEq{Key: provenance.KeyZone, Value: provenance.String("boston")})
	if err != nil || len(got) != 1 {
		t.Fatalf("attr query after GC = %d, %v", len(got), err)
	}
	// GetData reports removal distinctly from corruption.
	if _, err := s.GetData(raw); !errors.Is(err, ErrDataRemoved) {
		t.Fatalf("GetData after GC = %v", err)
	}
	// Idempotent.
	if err := s.RemoveData(raw); err != nil {
		t.Fatal(err)
	}
	// Audit is clean: Collected counted, nothing dangling.
	rep, err := s.VerifyConsistency()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.Collected != 1 || rep.Records != 3 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRefcountedPayloadSharing(t *testing.T) {
	s := openTest(t)
	ts := sampleSet("shared", 0, 5)
	id1, _ := s.IngestTupleSet(ts, trafficAttrs("boston")...)
	id2, _ := s.IngestTupleSet(ts, trafficAttrs("london")...) // same bytes, new attrs

	if err := s.RemoveData(id1); err != nil {
		t.Fatal(err)
	}
	// id2 still reads: the blob had two references.
	if _, err := s.GetData(id2); err != nil {
		t.Fatalf("shared payload lost: %v", err)
	}
	if err := s.RemoveData(id2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetData(id2); !errors.Is(err, ErrDataRemoved) {
		t.Fatalf("after last ref removed: %v", err)
	}
	// Re-ingesting revives the payload.
	id3, err := s.IngestTupleSet(ts, trafficAttrs("seattle")...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetData(id3); err != nil {
		t.Fatalf("revived payload unreadable: %v", err)
	}
}

func TestRemoveDataBefore(t *testing.T) {
	s := openTest(t)
	mk := func(zone string, start, end int64) provenance.ID {
		id, err := s.IngestTupleSet(sampleSet(zone, start, 3),
			provenance.Attr(provenance.KeyZone, provenance.String(zone)),
			provenance.Attr(provenance.KeyStart, provenance.TimeVal(time.Unix(0, start))),
			provenance.Attr(provenance.KeyEnd, provenance.TimeVal(time.Unix(0, end))))
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	old1 := mk("a", 0, 100)
	old2 := mk("b", 50, 150)
	recent := mk("c", 900, 1000)

	n, err := s.RemoveDataBefore(500)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("collected %d, want 2", n)
	}
	for _, id := range []provenance.ID{old1, old2} {
		if present, _ := s.DataPresent(id); present {
			t.Fatalf("%s still present", id.Short())
		}
	}
	if present, _ := s.DataPresent(recent); !present {
		t.Fatal("recent payload collected")
	}
	// Second run collects nothing new.
	n, _ = s.RemoveDataBefore(500)
	if n != 0 {
		t.Fatalf("second GC collected %d", n)
	}
}

func TestCrashConsistencyAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	clock := testClock()
	s, err := Open(dir, Options{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	var ids []provenance.ID
	prev := provenance.ZeroID
	for i := 0; i < 20; i++ {
		var id provenance.ID
		if i == 0 || i%3 != 0 {
			id, err = s.IngestTupleSet(sampleSet(fmt.Sprintf("s%d", i), int64(i)*100, 5), trafficAttrs("boston")...)
		} else {
			out := &tuple.Set{}
			out.Append(tuple.Reading{SensorID: "d", Time: int64(i), Value: 1})
			id, err = s.Derive([]provenance.ID{prev}, "step", "1", out)
		}
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		prev = id
	}
	// Crash: abandon without Close, reopen.
	s2, err := Open(dir, Options{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rep, err := s2.VerifyConsistency()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("inconsistent after crash: %+v", rep)
	}
	if rep.Records != 20 {
		t.Fatalf("records = %d, want 20", rep.Records)
	}
	for _, id := range ids {
		if _, err := s2.GetRecord(id); err != nil {
			t.Fatalf("record %s lost: %v", id.Short(), err)
		}
	}
}

func TestScanRecordsAndFlatScanBaseline(t *testing.T) {
	s := openTest(t)
	want := 10
	for i := 0; i < want; i++ {
		if _, err := s.IngestTupleSet(sampleSet(fmt.Sprintf("s%d", i), int64(i), 2), trafficAttrs("boston")...); err != nil {
			t.Fatal(err)
		}
	}
	// Flat scan with residual Match must agree with the index.
	pred := query.AttrEq{Key: provenance.KeyZone, Value: provenance.String("boston")}
	var flat int
	err := s.ScanRecords(func(id provenance.ID, rec *provenance.Record) bool {
		if m, _ := query.Match(rec, pred); m {
			flat++
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	indexed, err := s.Query(pred)
	if err != nil {
		t.Fatal(err)
	}
	if flat != want || len(indexed) != want {
		t.Fatalf("flat = %d, indexed = %d, want %d", flat, len(indexed), want)
	}
	// Early stop.
	n := 0
	s.ScanRecords(func(provenance.ID, *provenance.Record) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop at %d", n)
	}
}

func TestLineageTree(t *testing.T) {
	s := openTest(t)
	raw, _ := s.IngestTupleSet(sampleSet("s", 0, 3), trafficAttrs("boston")...)
	out := &tuple.Set{}
	out.Append(tuple.Reading{SensorID: "d", Time: 1, Value: 1})
	d, _ := s.Derive([]provenance.ID{raw}, "sharpen", "2.1", out)
	tree, err := s.LineageTree(d, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !containsAll(tree, d.Short(), raw.Short(), "sharpen") {
		t.Fatalf("tree = %q", tree)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func TestStats(t *testing.T) {
	s := openTest(t)
	s.IngestTupleSet(sampleSet("s", 0, 3), trafficAttrs("boston")...)
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTimeWindowQueriesThroughStore(t *testing.T) {
	s := openTest(t)
	mk := func(startSec, endSec int64) provenance.ID {
		id, err := s.IngestTupleSet(sampleSet(fmt.Sprintf("w%d", startSec), startSec, 2),
			provenance.Attr(provenance.KeyStart, provenance.TimeVal(time.Unix(startSec, 0))),
			provenance.Attr(provenance.KeyEnd, provenance.TimeVal(time.Unix(endSec, 0))))
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	a := mk(0, 100)
	mk(200, 300)
	got, err := s.Query(query.TimeOverlap{Start: time.Unix(50, 0).UnixNano(), End: time.Unix(150, 0).UnixNano()})
	if err != nil || len(got) != 1 || got[0] != a {
		t.Fatalf("overlap = %v, %v", got, err)
	}
}
