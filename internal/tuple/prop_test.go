package tuple

import (
	"testing"
	"testing/quick"
	"time"
)

// Property: GroupByWindow partitions the input exactly — every reading
// appears in exactly one group, each group's readings share one aligned
// window, and groups are disjoint in time.
func TestGroupByWindowPartitionProperty(t *testing.T) {
	window := time.Minute
	f := func(times []int64, sensorSeeds []uint8) bool {
		readings := make([]Reading, len(times))
		for i, tm := range times {
			// Clamp into a range that avoids overflow in window math.
			tm %= int64(time.Hour) * 24 * 365
			sensor := "s0"
			if i < len(sensorSeeds) {
				sensor = string(rune('a' + sensorSeeds[i]%8))
			}
			readings[i] = Reading{SensorID: sensor, Time: tm, Value: float64(i)}
		}
		groups := GroupByWindow(readings, window)
		total := 0
		seenWindows := map[int64]bool{}
		for _, g := range groups {
			if g.Len() == 0 {
				return false // no empty groups
			}
			total += g.Len()
			win := WindowStart(g.Readings[0].Time, window)
			if seenWindows[win] {
				return false // windows must not repeat
			}
			seenWindows[win] = true
			for _, r := range g.Readings {
				if WindowStart(r.Time, window) != win {
					return false // reading outside its group's window
				}
			}
		}
		return total == len(readings)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: digests are order-sensitive but deterministic — encoding the
// same readings twice always gives the same digest, and appending any
// reading always changes it.
func TestDigestAppendSensitivityProperty(t *testing.T) {
	f := func(ids []string, extra string) bool {
		s := &Set{}
		for i, id := range ids {
			s.Append(Reading{SensorID: id, Time: int64(i), Value: float64(i)})
		}
		d1 := s.Digest()
		d2 := s.Digest()
		if d1 != d2 {
			return false
		}
		s.Append(Reading{SensorID: extra, Time: -1, Value: 0})
		return s.Digest() != d1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
