package tuple

import (
	"errors"
	"hash/crc32"
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func sampleSet() *Set {
	return &Set{Readings: []Reading{
		{SensorID: "cam-17", Time: 1000, Value: 55.2, Label: "plate:ab12"},
		{SensorID: "cam-17", Time: 2000, Value: 61.0, Label: "plate:cd34"},
		{SensorID: "mag-03", Time: 1500, Value: 0.8},
	}}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := sampleSet()
	enc := s.Encode()
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Readings, got.Readings) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got.Readings, s.Readings)
	}
}

func TestEncodeEmptySet(t *testing.T) {
	s := &Set{}
	got, err := Decode(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("decoded %d readings from empty set", got.Len())
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	enc := sampleSet().Encode()

	// Flip a body byte: checksum must catch it.
	bad := append([]byte(nil), enc...)
	bad[10] ^= 0xFF
	if _, err := Decode(bad); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("corrupt body: err = %v, want ErrBadChecksum", err)
	}

	// Truncation.
	if _, err := Decode(enc[:5]); err == nil {
		t.Fatal("truncated input decoded successfully")
	}

	// Empty input.
	if _, err := Decode(nil); err == nil {
		t.Fatal("nil input decoded successfully")
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	enc := sampleSet().Encode()
	enc[0] ^= 0xFF
	// Fix up CRC so the magic check (not checksum) is exercised.
	body := enc[:len(enc)-4]
	crc := crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli))
	enc = append(body, byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24))
	if _, err := Decode(enc); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestEncodedSizeMatches(t *testing.T) {
	sets := []*Set{
		{},
		sampleSet(),
		{Readings: []Reading{{SensorID: "x", Time: -5, Value: math.Pi, Label: ""}}},
	}
	for i, s := range sets {
		if got, want := s.EncodedSize(), len(s.Encode()); got != want {
			t.Errorf("set %d: EncodedSize = %d, len(Encode) = %d", i, got, want)
		}
	}
}

func TestEncodedSizeMatchesProperty(t *testing.T) {
	f := func(ids []string, times []int64, vals []float64) bool {
		s := &Set{}
		for i := range ids {
			var tm int64
			var v float64
			if i < len(times) {
				tm = times[i]
			}
			if i < len(vals) {
				v = vals[i]
			}
			s.Append(Reading{SensorID: ids[i], Time: tm, Value: v, Label: ids[i]})
		}
		return s.EncodedSize() == len(s.Encode())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(ids []string, times []int64, vals []float64) bool {
		s := &Set{}
		for i := range ids {
			var tm int64
			var v float64
			if i < len(times) {
				tm = times[i]
			}
			if i < len(vals) {
				v = vals[i]
			}
			if math.IsNaN(v) {
				v = 0 // NaN != NaN breaks DeepEqual, not the codec
			}
			s.Append(Reading{SensorID: ids[i], Time: tm, Value: v})
		}
		got, err := Decode(s.Encode())
		if err != nil {
			return false
		}
		if len(got.Readings) != len(s.Readings) {
			return false
		}
		return reflect.DeepEqual(s.Readings, got.Readings) || len(s.Readings) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDigestDistinguishesContent(t *testing.T) {
	a := sampleSet()
	b := sampleSet()
	if a.Digest() != b.Digest() {
		t.Fatal("identical sets produced different digests")
	}
	b.Readings[0].Value += 0.0001
	if a.Digest() == b.Digest() {
		t.Fatal("different sets share a digest")
	}
	// Order matters: a reordered set is a different data item.
	c := &Set{Readings: []Reading{a.Readings[1], a.Readings[0], a.Readings[2]}}
	if a.Digest() == c.Digest() {
		t.Fatal("reordered set shares a digest")
	}
}

func TestTimeRange(t *testing.T) {
	s := sampleSet()
	min, max, ok := s.TimeRange()
	if !ok || min != 1000 || max != 2000 {
		t.Fatalf("TimeRange = %d, %d, %v", min, max, ok)
	}
	empty := &Set{}
	if _, _, ok := empty.TimeRange(); ok {
		t.Fatal("empty set reported a time range")
	}
}

func TestSummarize(t *testing.T) {
	s := sampleSet()
	sum := s.Summarize()
	if sum.Count != 3 || sum.Sensors != 2 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.Min != 0.8 || sum.Max != 61.0 {
		t.Fatalf("min/max = %v/%v", sum.Min, sum.Max)
	}
	wantMean := (55.2 + 61.0 + 0.8) / 3
	if math.Abs(sum.Mean-wantMean) > 1e-9 {
		t.Fatalf("mean = %v, want %v", sum.Mean, wantMean)
	}
	if sum.FirstTime != 1000 || sum.LastTime != 2000 {
		t.Fatalf("times = %d..%d", sum.FirstTime, sum.LastTime)
	}
	if got := (&Set{}).Summarize(); got.Count != 0 {
		t.Fatalf("empty summary = %+v", got)
	}
}

func TestGroupByWindow(t *testing.T) {
	min := time.Minute.Nanoseconds()
	readings := []Reading{
		{SensorID: "a", Time: 0 * min},
		{SensorID: "a", Time: 1*min + 30*int64(time.Second)},
		{SensorID: "b", Time: 1 * min},
		{SensorID: "a", Time: 3 * min},
	}
	sets := GroupByWindow(readings, time.Minute)
	if len(sets) != 3 {
		t.Fatalf("got %d windows, want 3", len(sets))
	}
	if sets[0].Len() != 1 || sets[1].Len() != 2 || sets[2].Len() != 1 {
		t.Fatalf("window sizes = %d,%d,%d", sets[0].Len(), sets[1].Len(), sets[2].Len())
	}
	// Window 1 must be sorted by (time, sensor).
	if sets[1].Readings[0].SensorID != "b" {
		t.Fatalf("window 1 not time-ordered: %+v", sets[1].Readings)
	}
}

func TestGroupByWindowDeterministic(t *testing.T) {
	readings := []Reading{
		{SensorID: "b", Time: 100},
		{SensorID: "a", Time: 100},
		{SensorID: "c", Time: 50},
	}
	reversed := []Reading{readings[2], readings[1], readings[0]}
	s1 := GroupByWindow(readings, time.Second)
	s2 := GroupByWindow(reversed, time.Second)
	if len(s1) != 1 || len(s2) != 1 {
		t.Fatalf("window counts: %d, %d", len(s1), len(s2))
	}
	if s1[0].Digest() != s2[0].Digest() {
		t.Fatal("grouping depends on arrival order")
	}
}

func TestGroupByWindowEdgeCases(t *testing.T) {
	if got := GroupByWindow(nil, time.Minute); got != nil {
		t.Fatal("nil readings should yield nil")
	}
	if got := GroupByWindow([]Reading{{Time: 1}}, 0); got != nil {
		t.Fatal("zero window should yield nil")
	}
}

func TestGroupByWindowNegativeTimes(t *testing.T) {
	w := time.Second
	readings := []Reading{
		{SensorID: "a", Time: -1},               // window [-1s, 0)
		{SensorID: "a", Time: -w.Nanoseconds()}, // window [-1s, 0)
		{SensorID: "a", Time: 0},                // window [0, 1s)
	}
	sets := GroupByWindow(readings, w)
	if len(sets) != 2 {
		t.Fatalf("got %d windows, want 2 (negative-time alignment)", len(sets))
	}
}

func TestWindowStart(t *testing.T) {
	w := time.Minute
	if got := WindowStart(90*int64(time.Second), w); got != 60*int64(time.Second) {
		t.Fatalf("WindowStart = %d", got)
	}
	if got := WindowStart(-1, w); got != -w.Nanoseconds() {
		t.Fatalf("negative WindowStart = %d, want %d", got, -w.Nanoseconds())
	}
	if got := WindowStart(42, 0); got != 42 {
		t.Fatalf("zero-window WindowStart = %d, want 42", got)
	}
}

func TestDigestStringHex(t *testing.T) {
	d := sampleSet().Digest()
	s := d.String()
	if len(s) != 64 {
		t.Fatalf("digest hex length = %d, want 64", len(s))
	}
}
