// Package tuple models sensor readings and tuple sets.
//
// Section II of the paper argues that individual readings ("tuples") are
// the wrong indexing granularity — "individual sensor readings in isolation
// have little meaning" — and that storage should instead index *tuple
// sets*: collections of readings grouped by some property, typically time
// ("all the readings of a particular type over the span of one hour or one
// minute"). This package provides both the reading and the tuple-set
// representation, a deterministic binary codec with checksums (the content
// digest participates in provenance identity, guaranteeing PASS property
// P3), and time-window grouping.
package tuple

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"
	"time"
)

// Reading is a single sensor observation.
type Reading struct {
	// SensorID identifies the physical sensor that produced the reading.
	SensorID string
	// Time is the observation instant as Unix nanoseconds. Int64 (rather
	// than time.Time) keeps the codec canonical and comparison exact.
	Time int64
	// Value is the numeric observation (temperature, heart rate, vehicle
	// speed, seismic amplitude, ...).
	Value float64
	// Label carries an optional categorical payload (vehicle plate hash,
	// patient identifier, event class). Empty for purely numeric sensors.
	Label string
}

// Set is an ordered collection of readings: the unit of naming, storage,
// and indexing throughout the system.
type Set struct {
	Readings []Reading
}

// Codec framing.
const (
	codecMagic   = 0x50415353 // "PASS"
	codecVersion = 1
)

// Errors returned by Decode.
var (
	ErrBadMagic    = errors.New("tuple: bad magic (not a tuple set)")
	ErrBadVersion  = errors.New("tuple: unsupported codec version")
	ErrCorrupt     = errors.New("tuple: corrupt encoding")
	ErrBadChecksum = errors.New("tuple: checksum mismatch")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Len returns the number of readings.
func (s *Set) Len() int { return len(s.Readings) }

// Append adds a reading to the set.
func (s *Set) Append(r Reading) { s.Readings = append(s.Readings, r) }

// TimeRange returns the minimum and maximum reading timestamps. ok is
// false for an empty set.
func (s *Set) TimeRange() (min, max int64, ok bool) {
	if len(s.Readings) == 0 {
		return 0, 0, false
	}
	min, max = s.Readings[0].Time, s.Readings[0].Time
	for _, r := range s.Readings[1:] {
		if r.Time < min {
			min = r.Time
		}
		if r.Time > max {
			max = r.Time
		}
	}
	return min, max, true
}

// Summary holds descriptive statistics over a set's values, the kind of
// aggregate a derivation step produces (Section I: "aggregated over time to
// estimate the effects of changing Zone size").
type Summary struct {
	Count     int
	Min, Max  float64
	Mean      float64
	Sensors   int // distinct sensor IDs
	FirstTime int64
	LastTime  int64
}

// Summarize computes descriptive statistics. The zero Summary is returned
// for an empty set.
func (s *Set) Summarize() Summary {
	if len(s.Readings) == 0 {
		return Summary{}
	}
	sum := Summary{
		Count: len(s.Readings),
		Min:   math.Inf(1),
		Max:   math.Inf(-1),
	}
	sensors := make(map[string]struct{})
	var total float64
	first, last, _ := s.TimeRange()
	sum.FirstTime, sum.LastTime = first, last
	for _, r := range s.Readings {
		if r.Value < sum.Min {
			sum.Min = r.Value
		}
		if r.Value > sum.Max {
			sum.Max = r.Value
		}
		total += r.Value
		sensors[r.SensorID] = struct{}{}
	}
	sum.Mean = total / float64(len(s.Readings))
	sum.Sensors = len(sensors)
	return sum
}

// Encode serializes the set deterministically:
//
//	magic u32 | version u8 | count uvarint |
//	  per reading: sensorID (uvarint len + bytes) | time varint |
//	               value (u64 IEEE-754 bits) | label (uvarint len + bytes)
//	crc32c u32 over everything preceding it
//
// The same logical set always produces identical bytes, so the content
// digest (Digest) is stable across processes and machines.
func (s *Set) Encode() []byte {
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	buf = binary.LittleEndian.AppendUint32(buf, codecMagic)
	buf = append(buf, codecVersion)
	n := binary.PutUvarint(tmp[:], uint64(len(s.Readings)))
	buf = append(buf, tmp[:n]...)
	for _, r := range s.Readings {
		n = binary.PutUvarint(tmp[:], uint64(len(r.SensorID)))
		buf = append(buf, tmp[:n]...)
		buf = append(buf, r.SensorID...)
		n = binary.PutVarint(tmp[:], r.Time)
		buf = append(buf, tmp[:n]...)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Value))
		n = binary.PutUvarint(tmp[:], uint64(len(r.Label)))
		buf = append(buf, tmp[:n]...)
		buf = append(buf, r.Label...)
	}
	crc := crc32.Checksum(buf, crcTable)
	buf = binary.LittleEndian.AppendUint32(buf, crc)
	return buf
}

// Decode parses an encoded set, verifying framing and checksum.
func Decode(data []byte) (*Set, error) {
	if len(data) < 4+1+4 {
		return nil, fmt.Errorf("%w: too short (%d bytes)", ErrCorrupt, len(data))
	}
	body, crcBytes := data[:len(data)-4], data[len(data)-4:]
	wantCRC := binary.LittleEndian.Uint32(crcBytes)
	if crc32.Checksum(body, crcTable) != wantCRC {
		return nil, ErrBadChecksum
	}
	if binary.LittleEndian.Uint32(body[:4]) != codecMagic {
		return nil, ErrBadMagic
	}
	if body[4] != codecVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, body[4])
	}
	p := body[5:]
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, fmt.Errorf("%w: count", ErrCorrupt)
	}
	p = p[n:]
	s := &Set{Readings: make([]Reading, 0, count)}
	readBytes := func() (string, error) {
		l, n := binary.Uvarint(p)
		if n <= 0 || uint64(len(p)-n) < l {
			return "", fmt.Errorf("%w: string field", ErrCorrupt)
		}
		v := string(p[n : n+int(l)])
		p = p[n+int(l):]
		return v, nil
	}
	for i := uint64(0); i < count; i++ {
		var r Reading
		var err error
		if r.SensorID, err = readBytes(); err != nil {
			return nil, err
		}
		t, n := binary.Varint(p)
		if n <= 0 {
			return nil, fmt.Errorf("%w: time", ErrCorrupt)
		}
		r.Time = t
		p = p[n:]
		if len(p) < 8 {
			return nil, fmt.Errorf("%w: value", ErrCorrupt)
		}
		r.Value = math.Float64frombits(binary.LittleEndian.Uint64(p))
		p = p[8:]
		if r.Label, err = readBytes(); err != nil {
			return nil, err
		}
		s.Readings = append(s.Readings, r)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(p))
	}
	return s, nil
}

// Digest is the SHA-256 content digest of a tuple set's canonical encoding.
type Digest [32]byte

// String renders the digest in hex.
func (d Digest) String() string { return fmt.Sprintf("%x", d[:]) }

// Digest computes the content digest of the set. Two sets with different
// readings (order included) have different digests with cryptographic
// certainty; this digest is folded into the provenance record identity so
// that "nonidentical data items do not have identical provenance" (P4 list,
// property 3).
func (s *Set) Digest() Digest {
	return sha256.Sum256(s.Encode())
}

// EncodedSize returns the size in bytes of the set's encoding without
// materializing it (used by the network cost models).
func (s *Set) EncodedSize() int {
	size := 4 + 1 + uvarintLen(uint64(len(s.Readings))) + 4
	for _, r := range s.Readings {
		size += uvarintLen(uint64(len(r.SensorID))) + len(r.SensorID)
		size += varintLen(r.Time)
		size += 8
		size += uvarintLen(uint64(len(r.Label))) + len(r.Label)
	}
	return size
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func varintLen(v int64) int {
	uv := uint64(v) << 1
	if v < 0 {
		uv = ^uv
	}
	return uvarintLen(uv)
}

// GroupByWindow partitions readings into tuple sets by fixed time window.
// Readings are sorted by (time, sensor) first so grouping is deterministic
// regardless of arrival order; window is the span of each set (the paper's
// "one hour or one minute"). Empty windows produce no set.
func GroupByWindow(readings []Reading, window time.Duration) []*Set {
	if len(readings) == 0 || window <= 0 {
		return nil
	}
	sorted := make([]Reading, len(readings))
	copy(sorted, readings)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Time != sorted[j].Time {
			return sorted[i].Time < sorted[j].Time
		}
		return sorted[i].SensorID < sorted[j].SensorID
	})
	w := window.Nanoseconds()
	var out []*Set
	var cur *Set
	var curWindow int64 = math.MinInt64
	for _, r := range sorted {
		win := floorDiv(r.Time, w)
		if cur == nil || win != curWindow {
			cur = &Set{}
			curWindow = win
			out = append(out, cur)
		}
		cur.Append(r)
	}
	return out
}

// floorDiv divides rounding toward negative infinity, so windows are
// aligned consistently for pre-1970 timestamps too.
func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// WindowStart returns the aligned start of the window containing t.
func WindowStart(t int64, window time.Duration) int64 {
	w := window.Nanoseconds()
	if w <= 0 {
		return t
	}
	return floorDiv(t, w) * w
}
