// Package kvstore is an embedded, crash-consistent key-value store in the
// log-structured-merge (LSM) style: writes land in a write-ahead log and a
// skiplist memtable, flush into immutable sorted tables (SSTables) with
// sparse indexes and Bloom filters, and compact in the background into
// larger tables. It is the storage substrate for the local PASS — tuple-set
// data, provenance records, and every secondary index live in one keyspace,
// and a WriteBatch gives the atomic multi-key commit that keeps provenance
// consistent with data across crashes (the paper's Reliability criterion,
// Section IV).
//
// Ordering: keys are arbitrary byte strings compared lexicographically;
// the index layer uses keyenc to map typed, composite logical keys onto
// this order.
package kvstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"pass/internal/wal"
)

// Errors.
var (
	ErrNotFound = errors.New("kvstore: key not found")
	ErrClosed   = errors.New("kvstore: store is closed")
	ErrBadBatch = errors.New("kvstore: corrupt batch encoding")
)

// Options tunes the store. The zero value selects sensible defaults.
type Options struct {
	// MemtableBytes is the flush threshold (default 4 MiB).
	MemtableBytes int64
	// MaxTables triggers a full compaction when exceeded (default 8).
	MaxTables int
	// BloomBitsPerKey sizes table Bloom filters (default 10).
	BloomBitsPerKey int
	// SyncWrites fsyncs the WAL on every batch; durable but slow.
	SyncWrites bool
	// VerifyChecksums makes Open checksum every table's data region.
	VerifyChecksums bool
	// DisableAutoCompact turns off size-triggered compaction (benchmarks
	// use this to isolate costs).
	DisableAutoCompact bool
}

func (o Options) withDefaults() Options {
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = 4 << 20
	}
	if o.MaxTables <= 0 {
		o.MaxTables = 8
	}
	if o.BloomBitsPerKey <= 0 {
		o.BloomBitsPerKey = 10
	}
	return o
}

// Stats reports store state and activity counters.
type Stats struct {
	Tables        int
	TableEntries  int64
	MemtableKeys  int
	MemtableBytes int64
	Flushes       int64
	Compactions   int64
	WALSize       int64
}

// Store is the embedded LSM store. All methods are safe for concurrent use.
type Store struct {
	mu                   sync.Mutex
	dir                  string
	opts                 Options
	mem                  *skiplist
	wal                  *wal.Log
	walGen               int64
	tables               []*table // ascending seq: tables[len-1] is newest
	nextSeq              int64
	flushes, compactions int64
	closed               bool
}

// Open opens (creating if needed) a store rooted at dir, replaying the WAL
// so that the returned store reflects every acknowledged write.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("kvstore: mkdir %s: %w", dir, err)
	}
	s := &Store{dir: dir, opts: opts, mem: newSkiplist(), nextSeq: 1}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("kvstore: readdir: %w", err)
	}
	var walGens []int64
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "sst-") && strings.HasSuffix(name, ".sst"):
			seq, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "sst-"), ".sst"), 10, 64)
			if err != nil {
				continue // foreign file
			}
			t, err := openTable(filepath.Join(dir, name), seq, opts.VerifyChecksums)
			if err != nil {
				s.closeAll()
				return nil, fmt.Errorf("kvstore: table %s: %w", name, err)
			}
			s.tables = append(s.tables, t)
			if seq >= s.nextSeq {
				s.nextSeq = seq + 1
			}
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			gen, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
			if err != nil {
				continue
			}
			walGens = append(walGens, gen)
		case strings.HasSuffix(name, ".tmp"):
			// Half-written flush/compaction output: discard.
			os.Remove(filepath.Join(dir, name))
		}
	}
	sort.Slice(s.tables, func(i, j int) bool { return s.tables[i].seq < s.tables[j].seq })
	sort.Slice(walGens, func(i, j int) bool { return walGens[i] < walGens[j] })

	// Only the newest WAL holds unflushed data: a new WAL generation is
	// created strictly after the previous memtable reaches a durable
	// table, so older generations are redundant and are removed.
	if len(walGens) > 0 {
		s.walGen = walGens[len(walGens)-1]
		for _, g := range walGens[:len(walGens)-1] {
			os.Remove(filepath.Join(dir, walName(g)))
		}
	} else {
		s.walGen = 1
	}
	w, err := wal.Open(filepath.Join(dir, walName(s.walGen)), wal.Options{SyncOnAppend: opts.SyncWrites}, func(payload []byte) error {
		b, err := decodeBatch(payload)
		if err != nil {
			// A decodable-but-invalid record means real corruption (the
			// WAL CRC passed); fail loudly rather than lose writes.
			return err
		}
		s.applyToMem(b)
		return nil
	})
	if err != nil {
		s.closeAll()
		return nil, err
	}
	s.wal = w
	return s, nil
}

func walName(gen int64) string { return fmt.Sprintf("wal-%012d.log", gen) }
func sstName(seq int64) string { return fmt.Sprintf("sst-%012d.sst", seq) }

func (s *Store) closeAll() {
	for _, t := range s.tables {
		t.close()
	}
	if s.wal != nil {
		s.wal.Close()
	}
}

// Close flushes the WAL to disk and closes all files. The memtable is not
// flushed to a table — the WAL preserves it for the next Open.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var firstErr error
	if err := s.wal.Close(); err != nil {
		firstErr = err
	}
	for _, t := range s.tables {
		if err := t.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Batch is an ordered set of writes applied atomically: either every
// operation survives a crash or none does.
type Batch struct {
	ops []batchOp
}

type batchOp struct {
	del   bool
	key   []byte
	value []byte
}

// Put queues a write.
func (b *Batch) Put(key, value []byte) {
	b.ops = append(b.ops, batchOp{key: append([]byte(nil), key...), value: append([]byte(nil), value...)})
}

// Delete queues a deletion.
func (b *Batch) Delete(key []byte) {
	b.ops = append(b.ops, batchOp{del: true, key: append([]byte(nil), key...)})
}

// Len returns the number of queued operations.
func (b *Batch) Len() int { return len(b.ops) }

func (b *Batch) encode() []byte {
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(b.ops)))
	buf = append(buf, tmp[:n]...)
	for _, op := range b.ops {
		if op.del {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		n = binary.PutUvarint(tmp[:], uint64(len(op.key)))
		buf = append(buf, tmp[:n]...)
		buf = append(buf, op.key...)
		if !op.del {
			n = binary.PutUvarint(tmp[:], uint64(len(op.value)))
			buf = append(buf, tmp[:n]...)
			buf = append(buf, op.value...)
		}
	}
	return buf
}

func decodeBatch(data []byte) (*Batch, error) {
	b := &Batch{}
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("%w: count", ErrBadBatch)
	}
	p := data[n:]
	readBytes := func() ([]byte, error) {
		l, n := binary.Uvarint(p)
		if n <= 0 || uint64(len(p)-n) < l {
			return nil, fmt.Errorf("%w: field", ErrBadBatch)
		}
		v := p[n : n+int(l)]
		p = p[n+int(l):]
		return v, nil
	}
	for i := uint64(0); i < count; i++ {
		if len(p) == 0 {
			return nil, fmt.Errorf("%w: op type", ErrBadBatch)
		}
		del := p[0] == 1
		if p[0] > 1 {
			return nil, fmt.Errorf("%w: op type %d", ErrBadBatch, p[0])
		}
		p = p[1:]
		key, err := readBytes()
		if err != nil {
			return nil, err
		}
		op := batchOp{del: del, key: append([]byte(nil), key...)}
		if !del {
			val, err := readBytes()
			if err != nil {
				return nil, err
			}
			op.value = append([]byte(nil), val...)
		}
		b.ops = append(b.ops, op)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes", ErrBadBatch)
	}
	return b, nil
}

func (s *Store) applyToMem(b *Batch) {
	for _, op := range b.ops {
		s.mem.set(op.key, op.value, op.del)
	}
}

// Apply commits the batch atomically: one WAL record, then the memtable.
func (s *Store) Apply(b *Batch) error {
	if len(b.ops) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.wal.Append(b.encode()); err != nil {
		return err
	}
	s.applyToMem(b)
	if s.mem.bytes >= s.opts.MemtableBytes {
		if err := s.flushLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Put writes a single key.
func (s *Store) Put(key, value []byte) error {
	var b Batch
	b.Put(key, value)
	return s.Apply(&b)
}

// Delete removes a single key (idempotent).
func (s *Store) Delete(key []byte) error {
	var b Batch
	b.Delete(key)
	return s.Apply(&b)
}

// Get returns the value for key, or ErrNotFound.
func (s *Store) Get(key []byte) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if v, tomb, found := s.mem.get(key); found {
		if tomb {
			return nil, ErrNotFound
		}
		return append([]byte(nil), v...), nil
	}
	for i := len(s.tables) - 1; i >= 0; i-- {
		v, tomb, found, err := s.tables[i].get(key)
		if err != nil {
			return nil, err
		}
		if found {
			if tomb {
				return nil, ErrNotFound
			}
			return v, nil
		}
	}
	return nil, ErrNotFound
}

// Has reports whether key exists.
func (s *Store) Has(key []byte) (bool, error) {
	_, err := s.Get(key)
	if errors.Is(err, ErrNotFound) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// scanChunk is the number of entries gathered under the lock per round;
// the lock is released before the callback runs, so callbacks may freely
// call back into the store (Get, Scan, even Put — writes that land after
// the cursor are observed, before it are not).
const scanChunk = 512

// Scan visits live keys in [start, end) in ascending order, calling fn for
// each; fn returning false stops the scan. A nil end scans to the end of
// the keyspace. The key and value slices are owned by the callback.
//
// Consistency: each chunk of scanChunk entries is read atomically;
// between chunks, concurrent writes may become visible. For the
// append-only provenance workload this is indistinguishable from a
// snapshot scan.
func (s *Store) Scan(start, end []byte, fn func(key, value []byte) bool) error {
	type kvPair struct{ k, v []byte }
	cursor := append([]byte(nil), start...)
	for {
		var buf []kvPair
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return ErrClosed
		}
		m, err := s.mergedSourceLocked(cursor)
		if err != nil {
			s.mu.Unlock()
			return err
		}
		done := false
		for len(buf) < scanChunk {
			k, v, tomb, ok, err := m.next()
			if err != nil {
				s.mu.Unlock()
				return err
			}
			if !ok {
				done = true
				break
			}
			if end != nil && bytes.Compare(k, end) >= 0 {
				done = true
				break
			}
			if tomb {
				continue
			}
			buf = append(buf, kvPair{k: append([]byte(nil), k...), v: append([]byte(nil), v...)})
		}
		s.mu.Unlock()

		for _, p := range buf {
			if !fn(p.k, p.v) {
				return nil
			}
		}
		if done {
			return nil
		}
		if len(buf) == 0 {
			return nil
		}
		// Resume strictly after the last delivered key.
		last := buf[len(buf)-1].k
		cursor = append(append(cursor[:0], last...), 0)
	}
}

// ScanPrefix visits live keys with the given prefix.
func (s *Store) ScanPrefix(prefix []byte, fn func(key, value []byte) bool) error {
	end := prefixEnd(prefix)
	return s.Scan(prefix, end, fn)
}

func prefixEnd(prefix []byte) []byte {
	end := append([]byte(nil), prefix...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] != 0xFF {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}

// Flush forces the memtable into a table (no-op when empty).
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.mem.length == 0 {
		return nil
	}
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	seq := s.nextSeq
	path := filepath.Join(s.dir, sstName(seq))
	if _, err := writeTable(path, &memSource{node: s.mem.first()}, s.opts.BloomBitsPerKey, false); err != nil {
		return err
	}
	t, err := openTable(path, seq, false)
	if err != nil {
		return err
	}
	s.nextSeq++
	s.tables = append(s.tables, t)
	s.flushes++

	// Rotate the WAL: the old generation's contents are durable in the
	// table, so it can go. Create-new strictly after table durability.
	oldWAL := s.wal
	s.walGen++
	nw, err := wal.Open(filepath.Join(s.dir, walName(s.walGen)), wal.Options{SyncOnAppend: s.opts.SyncWrites}, nil)
	if err != nil {
		return err
	}
	s.wal = nw
	oldWAL.Close()
	oldWAL.Remove()
	s.mem = newSkiplist()

	if !s.opts.DisableAutoCompact && len(s.tables) > s.opts.MaxTables {
		return s.compactLocked()
	}
	return nil
}

// Compact merges every table into one, dropping tombstones.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if len(s.tables) <= 1 {
		return nil
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	srcs := make([]entryStream, len(s.tables))
	for i, t := range s.tables {
		it, err := t.iter(nil)
		if err != nil {
			return err
		}
		// Higher seq = higher priority; memtable absent (it was flushed or
		// is newer than the merge output and shadows it naturally).
		srcs[i] = &tableStream{it: it, prio: int(t.seq)}
	}
	merged, err := newMergeStream(srcs)
	if err != nil {
		return err
	}
	seq := s.nextSeq
	path := filepath.Join(s.dir, sstName(seq))
	if _, err := writeTable(path, merged, s.opts.BloomBitsPerKey, true); err != nil {
		return err
	}
	t, err := openTable(path, seq, false)
	if err != nil {
		return err
	}
	s.nextSeq++
	old := s.tables
	s.tables = []*table{t}
	s.compactions++
	for _, ot := range old {
		ot.close()
		os.Remove(ot.path)
	}
	return nil
}

// Stats returns a snapshot of store state.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Tables:        len(s.tables),
		MemtableKeys:  s.mem.length,
		MemtableBytes: s.mem.bytes,
		Flushes:       s.flushes,
		Compactions:   s.compactions,
	}
	if s.wal != nil {
		st.WALSize = s.wal.Size()
	}
	for _, t := range s.tables {
		st.TableEntries += t.count
	}
	return st
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// --- merge machinery ---

// entryStream is a positioned stream of ordered entries with a priority
// (higher priority wins on duplicate keys).
type entryStream interface {
	peek() (key []byte, ok bool)
	take() (key, value []byte, tombstone bool, err error)
	priority() int
}

type tableStream struct {
	it   *tableIter
	prio int
	k, v []byte
	tomb bool
	ok   bool
	err  error
	init bool
}

func (ts *tableStream) advance() {
	ts.k, ts.v, ts.tomb, ts.ok, ts.err = ts.it.next()
	ts.init = true
}

func (ts *tableStream) peek() ([]byte, bool) {
	if !ts.init {
		ts.advance()
	}
	if ts.err != nil || !ts.ok {
		return nil, false
	}
	return ts.k, true
}

func (ts *tableStream) take() ([]byte, []byte, bool, error) {
	if !ts.init {
		ts.advance()
	}
	k, v, tomb, err := ts.k, ts.v, ts.tomb, ts.err
	if err == nil && ts.ok {
		ts.advance()
	}
	return k, v, tomb, err
}

func (ts *tableStream) priority() int { return ts.prio }

type memStream struct {
	node *skipNode
}

func (ms *memStream) peek() ([]byte, bool) {
	if ms.node == nil {
		return nil, false
	}
	return ms.node.key, true
}

func (ms *memStream) take() ([]byte, []byte, bool, error) {
	n := ms.node
	ms.node = n.next[0]
	return n.key, n.value, n.tombstone, nil
}

func (ms *memStream) priority() int { return 1 << 30 } // memtable always newest

// mergeStream merges entryStreams into one ordered, deduplicated stream.
// It satisfies entrySource for writeTable and backs Scan.
type mergeStream struct {
	srcs []entryStream
	err  error
}

func newMergeStream(srcs []entryStream) (*mergeStream, error) {
	return &mergeStream{srcs: srcs}, nil
}

// next returns the next unique entry, resolving duplicates by priority.
func (m *mergeStream) next() (key, value []byte, tombstone, ok bool, err error) {
	if m.err != nil {
		return nil, nil, false, false, m.err
	}
	// Find the smallest key among stream heads.
	var minKey []byte
	found := false
	for _, s := range m.srcs {
		k, ok := s.peek()
		if !ok {
			continue
		}
		if !found || bytes.Compare(k, minKey) < 0 {
			minKey = k
			found = true
		}
	}
	if !found {
		return nil, nil, false, false, nil
	}
	// Take from every stream whose head equals minKey; keep the highest
	// priority version.
	bestPrio := -1
	for _, s := range m.srcs {
		k, ok := s.peek()
		if !ok || !bytes.Equal(k, minKey) {
			continue
		}
		tk, tv, ttomb, terr := s.take()
		if terr != nil {
			m.err = terr
			return nil, nil, false, false, terr
		}
		if s.priority() > bestPrio {
			bestPrio = s.priority()
			key, value, tombstone = tk, tv, ttomb
		}
	}
	return key, value, tombstone, true, nil
}

// nextEntry adapts mergeStream to entrySource (compaction output).
func (m *mergeStream) nextEntry() ([]byte, []byte, bool, bool) {
	k, v, tomb, ok, err := m.next()
	if err != nil || !ok {
		return nil, nil, false, false
	}
	return k, v, tomb, true
}

// memSource adapts a skiplist to entrySource (flush path).
type memSource struct {
	node *skipNode
}

func (ms *memSource) nextEntry() ([]byte, []byte, bool, bool) {
	if ms.node == nil {
		return nil, nil, false, false
	}
	n := ms.node
	ms.node = n.next[0]
	return n.key, n.value, n.tombstone, true
}

// mergedSourceLocked builds the read view for Scan: memtable + all tables.
func (s *Store) mergedSourceLocked(start []byte) (*mergeStream, error) {
	srcs := make([]entryStream, 0, len(s.tables)+1)
	for _, t := range s.tables {
		it, err := t.iter(start)
		if err != nil {
			return nil, err
		}
		srcs = append(srcs, &tableStream{it: it, prio: int(t.seq)})
	}
	srcs = append(srcs, &memStream{node: s.mem.seek(start)})
	return newMergeStream(srcs)
}
