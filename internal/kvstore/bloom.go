package kvstore

import (
	"encoding/binary"
	"hash/fnv"
)

// bloomFilter is a standard Bloom filter with double hashing (Kirsch–
// Mitzenmacher): k probe positions derived from two FNV-based hashes.
// SSTables persist one filter per table so point lookups can skip tables
// that cannot contain the key — the paper's "Speed" criterion notes that
// provenance metadata is accessed more frequently than its data, so
// negative lookups must be cheap.
type bloomFilter struct {
	bits  []byte
	k     uint32
	nbits uint64
}

// newBloomFilter sizes a filter for n keys at bitsPerKey density.
func newBloomFilter(n int, bitsPerKey int) *bloomFilter {
	if n < 1 {
		n = 1
	}
	if bitsPerKey < 1 {
		bitsPerKey = 10
	}
	nbits := uint64(n * bitsPerKey)
	if nbits < 64 {
		nbits = 64
	}
	k := uint32(float64(bitsPerKey) * 0.69) // ln(2) * bits/key
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	return &bloomFilter{
		bits:  make([]byte, (nbits+7)/8),
		k:     k,
		nbits: nbits,
	}
}

func bloomHashes(key []byte) (uint64, uint64) {
	h1 := fnv.New64a()
	h1.Write(key)
	a := h1.Sum64()
	// Second hash: rehash the first with a salt; avoids a second pass over
	// the key and is sufficient for double hashing.
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], a^0x9E3779B97F4A7C15)
	h2 := fnv.New64a()
	h2.Write(buf[:])
	return a, h2.Sum64()
}

func (b *bloomFilter) add(key []byte) {
	h, d := bloomHashes(key)
	for i := uint32(0); i < b.k; i++ {
		pos := (h + uint64(i)*d) % b.nbits
		b.bits[pos/8] |= 1 << (pos % 8)
	}
}

func (b *bloomFilter) mayContain(key []byte) bool {
	h, d := bloomHashes(key)
	for i := uint32(0); i < b.k; i++ {
		pos := (h + uint64(i)*d) % b.nbits
		if b.bits[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
	}
	return true
}

// marshal encodes the filter: k u32 | nbits u64 | bits.
func (b *bloomFilter) marshal() []byte {
	out := make([]byte, 12+len(b.bits))
	binary.LittleEndian.PutUint32(out[0:4], b.k)
	binary.LittleEndian.PutUint64(out[4:12], b.nbits)
	copy(out[12:], b.bits)
	return out
}

func unmarshalBloom(data []byte) (*bloomFilter, bool) {
	if len(data) < 12 {
		return nil, false
	}
	b := &bloomFilter{
		k:     binary.LittleEndian.Uint32(data[0:4]),
		nbits: binary.LittleEndian.Uint64(data[4:12]),
	}
	if b.k == 0 || b.k > 64 || b.nbits == 0 {
		return nil, false
	}
	if uint64(len(data)-12) != (b.nbits+7)/8 {
		return nil, false
	}
	b.bits = data[12:]
	return b, true
}
