package kvstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

// sliceSource feeds writeTable from a sorted slice.
type sliceSource struct {
	entries []sliceEntry
	pos     int
}

type sliceEntry struct {
	k, v []byte
	tomb bool
}

func (s *sliceSource) nextEntry() ([]byte, []byte, bool, bool) {
	if s.pos >= len(s.entries) {
		return nil, nil, false, false
	}
	e := s.entries[s.pos]
	s.pos++
	return e.k, e.v, e.tomb, true
}

func buildTestTable(t *testing.T, n int, dropTombstones bool) (*table, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.sst")
	src := &sliceSource{}
	for i := 0; i < n; i++ {
		src.entries = append(src.entries, sliceEntry{
			k:    []byte(fmt.Sprintf("key-%05d", i)),
			v:    []byte(fmt.Sprintf("value-%d", i)),
			tomb: i%7 == 3,
		})
	}
	if _, err := writeTable(path, src, 10, dropTombstones); err != nil {
		t.Fatal(err)
	}
	tb, err := openTable(path, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tb.close() })
	return tb, path
}

func TestTableGetHitsAndMisses(t *testing.T) {
	tb, _ := buildTestTable(t, 500, false)
	v, tomb, found, err := tb.get([]byte("key-00042"))
	if err != nil || !found || tomb || string(v) != "value-42" {
		t.Fatalf("get = %q %v %v %v", v, tomb, found, err)
	}
	// Tombstoned key (i%7==3 -> 10).
	_, tomb, found, err = tb.get([]byte("key-00010"))
	if err != nil || !found || !tomb {
		t.Fatalf("tombstone get = %v %v %v", tomb, found, err)
	}
	// Missing keys: before, between, after.
	for _, k := range []string{"a", "key-00042x", "zzz"} {
		if _, _, found, _ := tb.get([]byte(k)); found {
			t.Fatalf("found nonexistent key %q", k)
		}
	}
}

func TestTableIteratorFullScan(t *testing.T) {
	tb, _ := buildTestTable(t, 100, false)
	it, err := tb.iter(nil)
	if err != nil {
		t.Fatal(err)
	}
	var prev []byte
	count := 0
	for {
		k, _, _, ok, err := it.next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("iterator out of order: %q then %q", prev, k)
		}
		prev = append(prev[:0], k...)
		count++
	}
	if count != 100 {
		t.Fatalf("scanned %d entries, want 100", count)
	}
}

func TestTableIteratorSeek(t *testing.T) {
	tb, _ := buildTestTable(t, 200, false)
	it, err := tb.iter([]byte("key-00150"))
	if err != nil {
		t.Fatal(err)
	}
	k, _, _, ok, err := it.next()
	if err != nil || !ok || string(k) != "key-00150" {
		t.Fatalf("seek landed on %q (%v, %v)", k, ok, err)
	}
	// Seek between keys lands on the next one.
	it, _ = tb.iter([]byte("key-00150a"))
	k, _, _, ok, _ = it.next()
	if !ok || string(k) != "key-00151" {
		t.Fatalf("between-keys seek landed on %q", k)
	}
	// Seek past the end yields nothing.
	it, _ = tb.iter([]byte("zzz"))
	if _, _, _, ok, _ := it.next(); ok {
		t.Fatal("seek past end returned an entry")
	}
}

func TestWriteTableDropTombstones(t *testing.T) {
	tb, _ := buildTestTable(t, 70, true)
	// All i%7==3 entries dropped: 10 of 70.
	if tb.count != 60 {
		t.Fatalf("count = %d, want 60", tb.count)
	}
	if _, _, found, _ := tb.get([]byte("key-00003")); found {
		t.Fatal("dropped tombstone still present")
	}
}

func TestWriteTableRejectsUnsortedInput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.sst")
	src := &sliceSource{entries: []sliceEntry{
		{k: []byte("b"), v: []byte("1")},
		{k: []byte("a"), v: []byte("2")},
	}}
	if _, err := writeTable(path, src, 10, false); err == nil {
		t.Fatal("unsorted input accepted")
	}
	// Duplicate keys also rejected.
	src = &sliceSource{entries: []sliceEntry{
		{k: []byte("a"), v: []byte("1")},
		{k: []byte("a"), v: []byte("2")},
	}}
	if _, err := writeTable(path, src, 10, false); err == nil {
		t.Fatal("duplicate keys accepted")
	}
	// Failed build leaves no file behind.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("failed writeTable left a file")
	}
}

func TestOpenTableRejectsCorruptMeta(t *testing.T) {
	_, path := buildTestTable(t, 50, false)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a byte in the meta region (just before the footer).
	bad := append([]byte(nil), data...)
	bad[len(bad)-footerSize-3] ^= 0xFF
	badPath := path + ".corrupt"
	os.WriteFile(badPath, bad, 0o644)
	if _, err := openTable(badPath, 1, false); err == nil {
		t.Fatal("corrupt meta accepted")
	}
	// Truncated footer.
	os.WriteFile(badPath, data[:10], 0o644)
	if _, err := openTable(badPath, 1, false); err == nil {
		t.Fatal("truncated table accepted")
	}
	// Bad magic.
	bad2 := append([]byte(nil), data...)
	bad2[len(bad2)-1] ^= 0xFF
	os.WriteFile(badPath, bad2, 0o644)
	if _, err := openTable(badPath, 1, false); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestTableEmptySource(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.sst")
	n, err := writeTable(path, &sliceSource{}, 10, false)
	if err != nil || n != 0 {
		t.Fatalf("empty table: n=%d err=%v", n, err)
	}
	tb, err := openTable(path, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.close()
	if _, _, found, _ := tb.get([]byte("any")); found {
		t.Fatal("empty table found a key")
	}
	it, _ := tb.iter(nil)
	if _, _, _, ok, _ := it.next(); ok {
		t.Fatal("empty table iterated an entry")
	}
}

func TestSkiplistBasics(t *testing.T) {
	sl := newSkiplist()
	sl.set([]byte("b"), []byte("2"), false)
	sl.set([]byte("a"), []byte("1"), false)
	sl.set([]byte("c"), []byte("3"), false)
	if sl.length != 3 {
		t.Fatalf("length = %d", sl.length)
	}
	v, tomb, found := sl.get([]byte("b"))
	if !found || tomb || string(v) != "2" {
		t.Fatalf("get b = %q %v %v", v, tomb, found)
	}
	// Replace keeps length.
	sl.set([]byte("b"), []byte("2b"), false)
	if sl.length != 3 {
		t.Fatalf("replace changed length to %d", sl.length)
	}
	v, _, _ = sl.get([]byte("b"))
	if string(v) != "2b" {
		t.Fatalf("replace lost: %q", v)
	}
	// Tombstone replace.
	sl.set([]byte("a"), nil, true)
	_, tomb, found = sl.get([]byte("a"))
	if !found || !tomb {
		t.Fatal("tombstone not recorded")
	}
	if _, _, found := sl.get([]byte("zz")); found {
		t.Fatal("found missing key")
	}
}

func TestSkiplistOrderedIteration(t *testing.T) {
	sl := newSkiplist()
	for i := 99; i >= 0; i-- {
		sl.set([]byte(fmt.Sprintf("k%02d", i)), []byte("v"), false)
	}
	n := 0
	var prev []byte
	for node := sl.first(); node != nil; node = node.next[0] {
		if prev != nil && bytes.Compare(prev, node.key) >= 0 {
			t.Fatal("skiplist out of order")
		}
		prev = node.key
		n++
	}
	if n != 100 {
		t.Fatalf("iterated %d nodes", n)
	}
	// Seek.
	node := sl.seek([]byte("k50"))
	if node == nil || string(node.key) != "k50" {
		t.Fatalf("seek = %v", node)
	}
	node = sl.seek([]byte("k50x"))
	if node == nil || string(node.key) != "k51" {
		t.Fatalf("between seek = %v", node)
	}
	if sl.seek([]byte("zzz")) != nil {
		t.Fatal("seek past end returned node")
	}
}

func TestSkiplistModelProperty(t *testing.T) {
	f := func(ops []struct {
		Key byte
		Val byte
		Del bool
	}) bool {
		sl := newSkiplist()
		model := map[byte]struct {
			val  byte
			tomb bool
		}{}
		for _, op := range ops {
			k := []byte{op.Key}
			sl.set(k, []byte{op.Val}, op.Del)
			model[op.Key] = struct {
				val  byte
				tomb bool
			}{op.Val, op.Del}
		}
		if sl.length != len(model) {
			return false
		}
		for k, want := range model {
			v, tomb, found := sl.get([]byte{k})
			if !found || tomb != want.tomb {
				return false
			}
			if len(v) != 1 || v[0] != want.val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBloomFilterBasics(t *testing.T) {
	bf := newBloomFilter(1000, 10)
	keys := make([][]byte, 1000)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("bloom-key-%d", i))
		bf.add(keys[i])
	}
	// No false negatives, ever.
	for _, k := range keys {
		if !bf.mayContain(k) {
			t.Fatalf("false negative for %q", k)
		}
	}
	// False positive rate at 10 bits/key should be ~1%; allow 5%.
	fp := 0
	probes := 10000
	for i := 0; i < probes; i++ {
		if bf.mayContain([]byte(fmt.Sprintf("absent-%d", i))) {
			fp++
		}
	}
	if rate := float64(fp) / float64(probes); rate > 0.05 {
		t.Fatalf("false positive rate %.3f too high", rate)
	}
}

func TestBloomMarshalRoundTrip(t *testing.T) {
	bf := newBloomFilter(100, 10)
	bf.add([]byte("x"))
	bf.add([]byte("y"))
	got, ok := unmarshalBloom(bf.marshal())
	if !ok {
		t.Fatal("unmarshal failed")
	}
	if !got.mayContain([]byte("x")) || !got.mayContain([]byte("y")) {
		t.Fatal("round trip lost keys")
	}
	if got.k != bf.k || got.nbits != bf.nbits {
		t.Fatal("params changed")
	}
	// Garbage inputs.
	if _, ok := unmarshalBloom(nil); ok {
		t.Fatal("nil accepted")
	}
	if _, ok := unmarshalBloom([]byte{1, 2, 3}); ok {
		t.Fatal("short input accepted")
	}
	bad := bf.marshal()
	bad = bad[:len(bad)-1] // wrong bit length
	if _, ok := unmarshalBloom(bad); ok {
		t.Fatal("length mismatch accepted")
	}
}

func TestBloomDegenerateSizes(t *testing.T) {
	bf := newBloomFilter(0, 0) // clamped internals
	bf.add([]byte("a"))
	if !bf.mayContain([]byte("a")) {
		t.Fatal("tiny filter false negative")
	}
}
