package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func openTest(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetDelete(t *testing.T) {
	s := openTest(t, Options{})
	if err := s.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get([]byte("k1"))
	if err != nil || string(v) != "v1" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if _, err := s.Get([]byte("nope")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key err = %v", err)
	}
	if err := s.Delete([]byte("k1")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get([]byte("k1")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key err = %v", err)
	}
	// Overwrite.
	s.Put([]byte("k2"), []byte("a"))
	s.Put([]byte("k2"), []byte("b"))
	v, _ = s.Get([]byte("k2"))
	if string(v) != "b" {
		t.Fatalf("overwrite: got %q", v)
	}
}

func TestHas(t *testing.T) {
	s := openTest(t, Options{})
	s.Put([]byte("x"), []byte("1"))
	if ok, _ := s.Has([]byte("x")); !ok {
		t.Fatal("Has(x) = false")
	}
	if ok, _ := s.Has([]byte("y")); ok {
		t.Fatal("Has(y) = true")
	}
}

func TestEmptyValueIsNotNotFound(t *testing.T) {
	s := openTest(t, Options{})
	s.Put([]byte("empty"), nil)
	v, err := s.Get([]byte("empty"))
	if err != nil {
		t.Fatalf("empty value: %v", err)
	}
	if len(v) != 0 {
		t.Fatalf("v = %q", v)
	}
}

func TestBatchAtomicVisibility(t *testing.T) {
	s := openTest(t, Options{})
	var b Batch
	b.Put([]byte("a"), []byte("1"))
	b.Put([]byte("b"), []byte("2"))
	b.Delete([]byte("c"))
	if b.Len() != 3 {
		t.Fatalf("batch len = %d", b.Len())
	}
	if err := s.Apply(&b); err != nil {
		t.Fatal(err)
	}
	for k, want := range map[string]string{"a": "1", "b": "2"} {
		v, err := s.Get([]byte(k))
		if err != nil || string(v) != want {
			t.Fatalf("%s = %q, %v", k, v, err)
		}
	}
	// Empty batch is a no-op.
	if err := s.Apply(&Batch{}); err != nil {
		t.Fatal(err)
	}
}

func TestScanOrderAndBounds(t *testing.T) {
	s := openTest(t, Options{})
	keys := []string{"e", "a", "c", "b", "d"}
	for _, k := range keys {
		s.Put([]byte(k), []byte("v-"+k))
	}
	var got []string
	err := s.Scan([]byte("b"), []byte("e"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"b", "c", "d"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("scan = %v, want %v", got, want)
	}
	// Early stop.
	got = nil
	s.Scan(nil, nil, func(k, v []byte) bool {
		got = append(got, string(k))
		return len(got) < 2
	})
	if len(got) != 2 {
		t.Fatalf("early stop scan = %v", got)
	}
}

func TestScanPrefix(t *testing.T) {
	s := openTest(t, Options{})
	for _, k := range []string{"idx/a/1", "idx/a/2", "idx/b/1", "other"} {
		s.Put([]byte(k), []byte("x"))
	}
	var got []string
	s.ScanPrefix([]byte("idx/a/"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != 2 || got[0] != "idx/a/1" || got[1] != "idx/a/2" {
		t.Fatalf("prefix scan = %v", got)
	}
}

func TestFlushAndReadFromTable(t *testing.T) {
	s := openTest(t, Options{})
	for i := 0; i < 100; i++ {
		s.Put([]byte(fmt.Sprintf("key-%03d", i)), []byte(fmt.Sprintf("val-%d", i)))
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Tables != 1 || st.MemtableKeys != 0 {
		t.Fatalf("stats after flush = %+v", st)
	}
	v, err := s.Get([]byte("key-042"))
	if err != nil || string(v) != "val-42" {
		t.Fatalf("table read = %q, %v", v, err)
	}
	// Scan across table.
	count := 0
	s.Scan(nil, nil, func(k, v []byte) bool { count++; return true })
	if count != 100 {
		t.Fatalf("scan count = %d", count)
	}
	// Flush of empty memtable is a no-op.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Tables != 1 {
		t.Fatal("empty flush created a table")
	}
}

func TestMemtableShadowsTable(t *testing.T) {
	s := openTest(t, Options{})
	s.Put([]byte("k"), []byte("old"))
	s.Flush()
	s.Put([]byte("k"), []byte("new"))
	v, _ := s.Get([]byte("k"))
	if string(v) != "new" {
		t.Fatalf("got %q, want new", v)
	}
	// Deletion in memtable shadows table value.
	s.Delete([]byte("k"))
	if _, err := s.Get([]byte("k")); !errors.Is(err, ErrNotFound) {
		t.Fatal("tombstone did not shadow table")
	}
	// And scan agrees.
	count := 0
	s.Scan(nil, nil, func(k, v []byte) bool { count++; return true })
	if count != 0 {
		t.Fatalf("scan sees %d keys, want 0", count)
	}
}

func TestTombstoneAcrossFlush(t *testing.T) {
	s := openTest(t, Options{})
	s.Put([]byte("k"), []byte("v"))
	s.Flush()
	s.Delete([]byte("k"))
	s.Flush() // tombstone now in a newer table
	if _, err := s.Get([]byte("k")); !errors.Is(err, ErrNotFound) {
		t.Fatal("tombstone lost across flush")
	}
}

func TestCompactionMergesAndDropsTombstones(t *testing.T) {
	s := openTest(t, Options{DisableAutoCompact: true})
	for gen := 0; gen < 4; gen++ {
		for i := 0; i < 50; i++ {
			s.Put([]byte(fmt.Sprintf("key-%03d", i)), []byte(fmt.Sprintf("gen-%d", gen)))
		}
		s.Delete([]byte(fmt.Sprintf("key-%03d", gen))) // delete a few
		s.Flush()
	}
	if st := s.Stats(); st.Tables != 4 {
		t.Fatalf("tables = %d, want 4", st.Tables)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Tables != 1 {
		t.Fatalf("tables after compact = %d", st.Tables)
	}
	if st.Compactions != 1 {
		t.Fatalf("compactions = %d", st.Compactions)
	}
	// 50 keys minus 4 deleted (keys 0..3 deleted in later gens... key-000
	// deleted in gen 0 then re-put in gens 1-3, so only key-003 stays dead).
	v, err := s.Get([]byte("key-010"))
	if err != nil || string(v) != "gen-3" {
		t.Fatalf("key-010 = %q, %v (latest gen must win)", v, err)
	}
	if _, err := s.Get([]byte("key-003")); !errors.Is(err, ErrNotFound) {
		t.Fatal("key-003 should be deleted")
	}
	// Tombstones must be gone from the merged table.
	if st.TableEntries != 49 {
		t.Fatalf("table entries = %d, want 49 live keys", st.TableEntries)
	}
}

func TestAutoCompactTriggers(t *testing.T) {
	s := openTest(t, Options{MaxTables: 2})
	for gen := 0; gen < 4; gen++ {
		s.Put([]byte(fmt.Sprintf("k%d", gen)), []byte("v"))
		s.Flush()
	}
	if st := s.Stats(); st.Tables > 3 {
		t.Fatalf("auto-compaction did not run: %d tables", st.Tables)
	}
}

func TestReopenPersistsEverything(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		s.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	s.Flush() // half in table
	for i := 200; i < 300; i++ {
		s.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	s.Delete([]byte("key-0000"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i := 1; i < 300; i++ {
		v, err := s2.Get([]byte(fmt.Sprintf("key-%04d", i)))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key-%04d after reopen = %q, %v", i, v, err)
		}
	}
	if _, err := s2.Get([]byte("key-0000")); !errors.Is(err, ErrNotFound) {
		t.Fatal("deletion lost across reopen")
	}
}

func TestCrashRecoveryWithoutClose(t *testing.T) {
	// Simulate a crash: never call Close; the WAL (written synchronously
	// at the OS level) must reconstruct the memtable.
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b Batch
	b.Put([]byte("data/1"), []byte("tuple-set-bytes"))
	b.Put([]byte("prov/1"), []byte("provenance-record"))
	if err := s.Apply(&b); err != nil {
		t.Fatal(err)
	}
	// Abandon s (crash). Reopen.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	// Both or neither: the batch is atomic.
	_, err1 := s2.Get([]byte("data/1"))
	_, err2 := s2.Get([]byte("prov/1"))
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("atomicity violated: data=%v prov=%v", err1, err2)
	}
	if err1 != nil {
		t.Fatal("synchronously written batch lost")
	}
}

func TestTornWALTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, Options{})
	s.Put([]byte("a"), []byte("1"))
	s.Put([]byte("b"), []byte("2"))
	s.Close()

	// Corrupt the WAL tail: chop off the last 3 bytes.
	walPath := filepath.Join(dir, walName(1))
	st, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, st.Size()-3); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	// First record survives; second (torn) is gone.
	if v, err := s2.Get([]byte("a")); err != nil || string(v) != "1" {
		t.Fatalf("a = %q, %v", v, err)
	}
	if _, err := s2.Get([]byte("b")); !errors.Is(err, ErrNotFound) {
		t.Fatal("torn record resurrected")
	}
	// The store remains writable.
	if err := s2.Put([]byte("c"), []byte("3")); err != nil {
		t.Fatal(err)
	}
}

func TestTmpFilesCleanedAtOpen(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, Options{})
	s.Put([]byte("k"), []byte("v"))
	s.Close()
	// Simulate a crash mid-flush: a stray .tmp file.
	tmp := filepath.Join(dir, "sst-000000000099.sst.tmp")
	os.WriteFile(tmp, []byte("partial"), 0o644)
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("tmp file survived open")
	}
}

func TestCorruptTableDetected(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, Options{})
	for i := 0; i < 100; i++ {
		s.Put([]byte(fmt.Sprintf("key-%03d", i)), bytes.Repeat([]byte("v"), 50))
	}
	s.Flush()
	s.Close()

	// Flip a byte in the table's data region.
	var sstPath string
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".sst" {
			sstPath = filepath.Join(dir, e.Name())
		}
	}
	data, err := os.ReadFile(sstPath)
	if err != nil {
		t.Fatal(err)
	}
	data[100] ^= 0xFF
	os.WriteFile(sstPath, data, 0o644)

	// With verification on, open must fail.
	if _, err := Open(dir, Options{VerifyChecksums: true}); err == nil {
		t.Fatal("corrupt table accepted with VerifyChecksums")
	}
}

func TestWALGrowsAndRotates(t *testing.T) {
	s := openTest(t, Options{MemtableBytes: 4 << 10})
	before := s.Stats().WALSize
	for i := 0; i < 500; i++ {
		s.Put([]byte(fmt.Sprintf("key-%04d", i)), bytes.Repeat([]byte("x"), 64))
	}
	st := s.Stats()
	if st.Flushes == 0 {
		t.Fatal("small memtable never flushed")
	}
	// WAL rotated: current size should be far below total written bytes.
	if st.WALSize > 500*80 {
		t.Fatalf("WAL did not rotate: %d bytes (was %d)", st.WALSize, before)
	}
	// All data still readable.
	for i := 0; i < 500; i++ {
		if _, err := s.Get([]byte(fmt.Sprintf("key-%04d", i))); err != nil {
			t.Fatalf("key-%04d: %v", i, err)
		}
	}
}

func TestClosedStoreErrors(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("put: %v", err)
	}
	if _, err := s.Get([]byte("k")); !errors.Is(err, ErrClosed) {
		t.Fatalf("get: %v", err)
	}
	if err := s.Scan(nil, nil, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("scan: %v", err)
	}
	if err := s.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("flush: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestBatchEncodeDecodeRoundTrip(t *testing.T) {
	f := func(puts map[string]string, dels []string) bool {
		var b Batch
		for k, v := range puts {
			b.Put([]byte(k), []byte(v))
		}
		for _, k := range dels {
			b.Delete([]byte(k))
		}
		dec, err := decodeBatch(b.encode())
		if err != nil {
			return false
		}
		if len(dec.ops) != len(b.ops) {
			return false
		}
		// Same multiset of op keys (order of map iteration varies, but we
		// encoded from b.ops directly so order is preserved).
		for i := range b.ops {
			if b.ops[i].del != dec.ops[i].del ||
				!bytes.Equal(b.ops[i].key, dec.ops[i].key) ||
				!bytes.Equal(b.ops[i].value, dec.ops[i].value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeBatchRejectsGarbage(t *testing.T) {
	if _, err := decodeBatch(nil); err == nil {
		t.Fatal("nil batch accepted")
	}
	if _, err := decodeBatch([]byte{5, 0}); err == nil {
		t.Fatal("truncated batch accepted")
	}
	var b Batch
	b.Put([]byte("k"), []byte("v"))
	enc := b.encode()
	if _, err := decodeBatch(append(enc, 0xFF)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	bad := append([]byte(nil), enc...)
	bad[1] = 7 // invalid op type
	if _, err := decodeBatch(bad); err == nil {
		t.Fatal("bad op type accepted")
	}
}

// TestModelCheck runs a randomized sequence of operations against the
// store and an in-memory map model, with interleaved flushes, compactions,
// and reopens; final state must match exactly.
func TestModelCheck(t *testing.T) {
	dir := t.TempDir()
	opts := Options{MemtableBytes: 2 << 10, MaxTables: 3}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	model := make(map[string]string)
	rng := rand.New(rand.NewSource(42))
	keyspace := 200

	for step := 0; step < 3000; step++ {
		k := fmt.Sprintf("key-%03d", rng.Intn(keyspace))
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // put
			v := fmt.Sprintf("val-%d", step)
			if err := s.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		case 6, 7: // delete
			if err := s.Delete([]byte(k)); err != nil {
				t.Fatal(err)
			}
			delete(model, k)
		case 8: // flush sometimes
			if rng.Intn(4) == 0 {
				if err := s.Flush(); err != nil {
					t.Fatal(err)
				}
			}
		case 9: // reopen sometimes
			if rng.Intn(10) == 0 {
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
				s, err = Open(dir, opts)
				if err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	// Verify every key agrees with the model.
	for i := 0; i < keyspace; i++ {
		k := fmt.Sprintf("key-%03d", i)
		v, err := s.Get([]byte(k))
		want, exists := model[k]
		if exists {
			if err != nil || string(v) != want {
				t.Fatalf("%s = %q, %v; model %q", k, v, err, want)
			}
		} else if !errors.Is(err, ErrNotFound) {
			t.Fatalf("%s should be absent, got %q %v", k, v, err)
		}
	}
	// Scan agrees with the model in order and content.
	var scanned []string
	s.Scan(nil, nil, func(k, v []byte) bool {
		scanned = append(scanned, string(k))
		if model[string(k)] != string(v) {
			t.Fatalf("scan %s = %q, model %q", k, v, model[string(k)])
		}
		return true
	})
	if len(scanned) != len(model) {
		t.Fatalf("scan found %d keys, model has %d", len(scanned), len(model))
	}
	for i := 1; i < len(scanned); i++ {
		if scanned[i-1] >= scanned[i] {
			t.Fatalf("scan out of order: %s >= %s", scanned[i-1], scanned[i])
		}
	}
	s.Close()
}

func TestLargeValues(t *testing.T) {
	s := openTest(t, Options{MemtableBytes: 1 << 20})
	big := bytes.Repeat([]byte("data"), 100_000) // 400 KB
	s.Put([]byte("big"), big)
	s.Flush()
	v, err := s.Get([]byte("big"))
	if err != nil || !bytes.Equal(v, big) {
		t.Fatalf("large value corrupted: len=%d err=%v", len(v), err)
	}
}

func TestGetDoesNotAliasMemtable(t *testing.T) {
	s := openTest(t, Options{})
	s.Put([]byte("k"), []byte("abc"))
	v, _ := s.Get([]byte("k"))
	v[0] = 'X'
	v2, _ := s.Get([]byte("k"))
	if string(v2) != "abc" {
		t.Fatal("Get returned aliased memory")
	}
}
