package kvstore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
)

// SSTable on-disk format (all integers little-endian):
//
//	file   := entry* index bloom footer
//	entry  := keyLen uvarint | key | flag u8 | valLen uvarint | val
//	index  := count uvarint | (keyLen uvarint | key | offset uvarint)*
//	bloom  := bloomFilter.marshal()
//	footer := indexOff u64 | bloomOff u64 | count u64 |
//	          dataCRC u32 | metaCRC u32 | magic u64
//
// Entries are sorted by key and unique. flag bit 0 marks a tombstone
// (tombstones persist across flushes so newer tables shadow older ones;
// a full compaction drops them). The sparse index holds every
// indexInterval-th key, so a point lookup scans at most indexInterval
// entries after a binary search. metaCRC covers index+bloom and is always
// verified at open; dataCRC covers the entry region and is verified when
// the store is opened with VerifyChecksums.
const (
	tableMagic    uint64 = 0x3154535353415350 // "PASSSST1" little-endian
	indexInterval        = 16
	footerSize           = 8 + 8 + 8 + 4 + 4 + 8
)

var (
	// ErrBadTable reports a structurally invalid or corrupt SSTable.
	ErrBadTable = errors.New("kvstore: bad sstable")
)

type indexEntry struct {
	key    []byte
	offset int64
}

// table is an open, immutable SSTable.
type table struct {
	f       *os.File
	path    string
	seq     int64 // generation; higher shadows lower
	index   []indexEntry
	bloom   *bloomFilter
	count   int64
	dataEnd int64 // offset where entries stop (== indexOff)
	size    int64
}

// entrySource supplies ordered unique entries to writeTable.
type entrySource interface {
	// nextEntry returns the next entry or ok=false at the end.
	nextEntry() (key, value []byte, tombstone bool, ok bool)
}

// writeTable streams src into a new SSTable at path. Entries must arrive
// in strictly increasing key order. dropTombstones elides deletion markers
// (legal only when the output will shadow nothing, i.e. full compaction).
// The file is written to a temp name and renamed into place, then fsynced,
// so a crash never leaves a half-written table under the real name.
func writeTable(path string, src entrySource, bitsPerKey int, dropTombstones bool) (count int64, err error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, fmt.Errorf("kvstore: create %s: %w", tmp, err)
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()

	w := bufio.NewWriterSize(f, 1<<16)
	dataCRC := crc32.New(crcTableKV)
	out := io.MultiWriter(w, dataCRC)

	var (
		offset    int64
		index     []indexEntry
		hashes    [][2]uint64
		tmpVarint [binary.MaxVarintLen64]byte
		prevKey   []byte
		haveKey   bool
	)
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(tmpVarint[:], v)
		m, err := out.Write(tmpVarint[:n])
		offset += int64(m)
		return err
	}
	for {
		key, value, tomb, ok := src.nextEntry()
		if !ok {
			break
		}
		if haveKey && bytes.Compare(key, prevKey) <= 0 {
			return 0, fmt.Errorf("%w: keys out of order (%q after %q)", ErrBadTable, key, prevKey)
		}
		prevKey = append(prevKey[:0], key...)
		haveKey = true
		if tomb && dropTombstones {
			continue
		}
		if count%indexInterval == 0 {
			index = append(index, indexEntry{key: append([]byte(nil), key...), offset: offset})
		}
		h1, h2 := bloomHashes(key)
		hashes = append(hashes, [2]uint64{h1, h2})
		if err := writeUvarint(uint64(len(key))); err != nil {
			return 0, err
		}
		if n, err := out.Write(key); err != nil {
			return 0, err
		} else {
			offset += int64(n)
		}
		flag := byte(0)
		if tomb {
			flag = 1
		}
		if n, err := out.Write([]byte{flag}); err != nil {
			return 0, err
		} else {
			offset += int64(n)
		}
		if err := writeUvarint(uint64(len(value))); err != nil {
			return 0, err
		}
		if n, err := out.Write(value); err != nil {
			return 0, err
		} else {
			offset += int64(n)
		}
		count++
	}

	indexOff := offset
	// Meta region: index + bloom, with its own CRC.
	var meta bytes.Buffer
	mw := &meta
	writeUvarintTo := func(buf *bytes.Buffer, v uint64) {
		n := binary.PutUvarint(tmpVarint[:], v)
		buf.Write(tmpVarint[:n])
	}
	writeUvarintTo(mw, uint64(len(index)))
	for _, ie := range index {
		writeUvarintTo(mw, uint64(len(ie.key)))
		mw.Write(ie.key)
		writeUvarintTo(mw, uint64(ie.offset))
	}
	bloomOff := indexOff + int64(meta.Len())
	bloom := newBloomFilter(len(hashes), bitsPerKey)
	for _, h := range hashes {
		for i := uint32(0); i < bloom.k; i++ {
			pos := (h[0] + uint64(i)*h[1]) % bloom.nbits
			bloom.bits[pos/8] |= 1 << (pos % 8)
		}
	}
	meta.Write(bloom.marshal())

	if _, err = w.Write(meta.Bytes()); err != nil {
		return 0, err
	}
	var footer [footerSize]byte
	binary.LittleEndian.PutUint64(footer[0:8], uint64(indexOff))
	binary.LittleEndian.PutUint64(footer[8:16], uint64(bloomOff))
	binary.LittleEndian.PutUint64(footer[16:24], uint64(count))
	binary.LittleEndian.PutUint32(footer[24:28], dataCRC.Sum32())
	binary.LittleEndian.PutUint32(footer[28:32], crc32.Checksum(meta.Bytes(), crcTableKV))
	binary.LittleEndian.PutUint64(footer[32:40], tableMagic)
	if _, err = w.Write(footer[:]); err != nil {
		return 0, err
	}
	if err = w.Flush(); err != nil {
		return 0, err
	}
	if err = f.Sync(); err != nil {
		return 0, err
	}
	if err = f.Close(); err != nil {
		return 0, err
	}
	if err = os.Rename(tmp, path); err != nil {
		return 0, fmt.Errorf("kvstore: rename: %w", err)
	}
	return count, nil
}

var crcTableKV = crc32.MakeTable(crc32.Castagnoli)

// openTable opens and validates an SSTable. With verifyData, the whole
// entry region is checksummed (one sequential read).
func openTable(path string, seq int64, verifyData bool) (*table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("kvstore: open table: %w", err)
	}
	t := &table{f: f, path: path, seq: seq}
	ok := false
	defer func() {
		if !ok {
			f.Close()
		}
	}()

	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	t.size = st.Size()
	if t.size < footerSize {
		return nil, fmt.Errorf("%w: %s too small", ErrBadTable, path)
	}
	var footer [footerSize]byte
	if _, err := f.ReadAt(footer[:], t.size-footerSize); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint64(footer[32:40]) != tableMagic {
		return nil, fmt.Errorf("%w: %s bad magic", ErrBadTable, path)
	}
	indexOff := int64(binary.LittleEndian.Uint64(footer[0:8]))
	bloomOff := int64(binary.LittleEndian.Uint64(footer[8:16]))
	t.count = int64(binary.LittleEndian.Uint64(footer[16:24]))
	dataCRC := binary.LittleEndian.Uint32(footer[24:28])
	metaCRC := binary.LittleEndian.Uint32(footer[28:32])
	if indexOff < 0 || bloomOff < indexOff || bloomOff > t.size-footerSize {
		return nil, fmt.Errorf("%w: %s bad offsets", ErrBadTable, path)
	}
	t.dataEnd = indexOff

	meta := make([]byte, t.size-footerSize-indexOff)
	if _, err := f.ReadAt(meta, indexOff); err != nil {
		return nil, err
	}
	if crc32.Checksum(meta, crcTableKV) != metaCRC {
		return nil, fmt.Errorf("%w: %s meta checksum", ErrBadTable, path)
	}
	// Parse sparse index.
	p := meta[:bloomOff-indexOff]
	n, w := binary.Uvarint(p)
	if w <= 0 {
		return nil, fmt.Errorf("%w: %s index count", ErrBadTable, path)
	}
	p = p[w:]
	t.index = make([]indexEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		kl, w := binary.Uvarint(p)
		if w <= 0 || uint64(len(p)-w) < kl {
			return nil, fmt.Errorf("%w: %s index key", ErrBadTable, path)
		}
		key := append([]byte(nil), p[w:w+int(kl)]...)
		p = p[w+int(kl):]
		off, w := binary.Uvarint(p)
		if w <= 0 {
			return nil, fmt.Errorf("%w: %s index offset", ErrBadTable, path)
		}
		p = p[w:]
		t.index = append(t.index, indexEntry{key: key, offset: int64(off)})
	}
	bloom, okB := unmarshalBloom(meta[bloomOff-indexOff:])
	if !okB {
		return nil, fmt.Errorf("%w: %s bloom", ErrBadTable, path)
	}
	t.bloom = bloom

	if verifyData {
		h := crc32.New(crcTableKV)
		if _, err := io.Copy(h, io.NewSectionReader(f, 0, indexOff)); err != nil {
			return nil, err
		}
		if h.Sum32() != dataCRC {
			return nil, fmt.Errorf("%w: %s data checksum", ErrBadTable, path)
		}
	}
	ok = true
	return t, nil
}

func (t *table) close() error { return t.f.Close() }

// get performs a point lookup.
func (t *table) get(key []byte) (value []byte, tombstone, found bool, err error) {
	if !t.bloom.mayContain(key) {
		return nil, false, false, nil
	}
	it, err := t.iter(key)
	if err != nil {
		return nil, false, false, err
	}
	k, v, tomb, ok, err := it.next()
	if err != nil || !ok {
		return nil, false, false, err
	}
	if !bytes.Equal(k, key) {
		return nil, false, false, nil
	}
	return v, tomb, true, nil
}

// iter returns an iterator positioned at the first entry with key >= start
// (nil start = first entry).
func (t *table) iter(start []byte) (*tableIter, error) {
	offset := int64(0)
	if len(start) > 0 && len(t.index) > 0 {
		// Binary search: last index entry with key <= start.
		i := sort.Search(len(t.index), func(i int) bool {
			return bytes.Compare(t.index[i].key, start) > 0
		})
		if i > 0 {
			offset = t.index[i-1].offset
		}
	}
	it := &tableIter{
		r:     bufio.NewReaderSize(io.NewSectionReader(t.f, offset, t.dataEnd-offset), 1<<14),
		start: start,
	}
	return it, nil
}

// tableIter scans entries sequentially, skipping until start.
type tableIter struct {
	r       *bufio.Reader
	start   []byte
	started bool
}

// next returns the next entry. ok=false at the end.
func (it *tableIter) next() (key, value []byte, tombstone, ok bool, err error) {
	for {
		kl, err := binary.ReadUvarint(it.r)
		if err == io.EOF {
			return nil, nil, false, false, nil
		}
		if err != nil {
			return nil, nil, false, false, fmt.Errorf("%w: entry key len: %v", ErrBadTable, err)
		}
		key = make([]byte, kl)
		if _, err := io.ReadFull(it.r, key); err != nil {
			return nil, nil, false, false, fmt.Errorf("%w: entry key: %v", ErrBadTable, err)
		}
		flag, err := it.r.ReadByte()
		if err != nil {
			return nil, nil, false, false, fmt.Errorf("%w: entry flag: %v", ErrBadTable, err)
		}
		vl, err := binary.ReadUvarint(it.r)
		if err != nil {
			return nil, nil, false, false, fmt.Errorf("%w: entry val len: %v", ErrBadTable, err)
		}
		value = make([]byte, vl)
		if _, err := io.ReadFull(it.r, value); err != nil {
			return nil, nil, false, false, fmt.Errorf("%w: entry val: %v", ErrBadTable, err)
		}
		if !it.started && len(it.start) > 0 && bytes.Compare(key, it.start) < 0 {
			continue // still before start
		}
		it.started = true
		return key, value, flag&1 != 0, true, nil
	}
}
