package kvstore

import (
	"bytes"
)

// skiplist is the in-memory memtable structure: a classic probabilistic
// skip list over []byte keys. Values may be nil-with-tombstone to shadow
// deleted keys until the next flush. Not safe for concurrent use; the
// Store serializes access.
type skiplist struct {
	head   *skipNode
	level  int
	length int
	bytes  int64 // approximate memory footprint of keys+values
	rng    uint64
}

const skipMaxLevel = 20

type skipNode struct {
	key       []byte
	value     []byte
	tombstone bool
	next      []*skipNode
}

func newSkiplist() *skiplist {
	return &skiplist{
		head:  &skipNode{next: make([]*skipNode, skipMaxLevel)},
		level: 1,
		rng:   0x2545F4914F6CDD1D,
	}
}

// randLevel draws a geometric level with p = 1/4, the standard choice.
func (s *skiplist) randLevel() int {
	lvl := 1
	for lvl < skipMaxLevel {
		s.rng ^= s.rng << 13
		s.rng ^= s.rng >> 7
		s.rng ^= s.rng << 17
		if s.rng&0x3 != 0 {
			break
		}
		lvl++
	}
	return lvl
}

// findPath fills update[i] with the rightmost node at level i whose key is
// < key, and returns the candidate node (which may equal key).
func (s *skiplist) findPath(key []byte, update *[skipMaxLevel]*skipNode) *skipNode {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
		update[i] = x
	}
	return x.next[0]
}

// set inserts or replaces key with value. tombstone marks a deletion.
func (s *skiplist) set(key, value []byte, tombstone bool) {
	var update [skipMaxLevel]*skipNode
	cand := s.findPath(key, &update)
	if cand != nil && bytes.Equal(cand.key, key) {
		s.bytes += int64(len(value) - len(cand.value))
		cand.value = value
		cand.tombstone = tombstone
		return
	}
	lvl := s.randLevel()
	if lvl > s.level {
		for i := s.level; i < lvl; i++ {
			update[i] = s.head
		}
		s.level = lvl
	}
	n := &skipNode{key: key, value: value, tombstone: tombstone, next: make([]*skipNode, lvl)}
	for i := 0; i < lvl; i++ {
		n.next[i] = update[i].next[i]
		update[i].next[i] = n
	}
	s.length++
	s.bytes += int64(len(key) + len(value) + 48) // struct overhead estimate
}

// get returns (value, tombstone, found).
func (s *skiplist) get(key []byte) ([]byte, bool, bool) {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
	}
	cand := x.next[0]
	if cand != nil && bytes.Equal(cand.key, key) {
		return cand.value, cand.tombstone, true
	}
	return nil, false, false
}

// seek returns the first node with key >= target.
func (s *skiplist) seek(target []byte) *skipNode {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, target) < 0 {
			x = x.next[i]
		}
	}
	return x.next[0]
}

// first returns the least node.
func (s *skiplist) first() *skipNode { return s.head.next[0] }
