package kvstore

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentReadersAndWriters hammers the store from parallel
// goroutines; run with -race. Scans must stay ordered and callbacks must
// be able to call back into the store (the chunked-scan contract).
func TestConcurrentReadersAndWriters(t *testing.T) {
	s := openTest(t, Options{MemtableBytes: 8 << 10}) // force flushes under load
	const writers, perWriter = 4, 200
	var writerWG, readerWG sync.WaitGroup

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				k := []byte(fmt.Sprintf("w%d-key-%04d", w, i))
				if err := s.Put(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
					t.Error(err)
					return
				}
				if i%10 == 9 {
					if err := s.Delete([]byte(fmt.Sprintf("w%d-key-%04d", w, i-5))); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}

	// Readers run scans and gets concurrently; correctness here means no
	// races, ordered scans, and no phantom errors.
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var prev []byte
				err := s.Scan(nil, nil, func(k, v []byte) bool {
					if prev != nil && string(prev) >= string(k) {
						t.Errorf("scan out of order: %q >= %q", prev, k)
						return false
					}
					prev = append(prev[:0], k...)
					// Callbacks may re-enter the store (chunked scan).
					_, err := s.Get(k)
					if err != nil && !errors.Is(err, ErrNotFound) {
						// The key may have been deleted since the chunk
						// was captured; only real errors count.
						t.Errorf("re-entrant get: %v", err)
						return false
					}
					return true
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Wait for writers, then stop readers.
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	if t.Failed() {
		return
	}

	// Final state: every surviving key readable.
	live := 0
	if err := s.Scan(nil, nil, func(k, v []byte) bool { live++; return true }); err != nil {
		t.Fatal(err)
	}
	want := writers * (perWriter - perWriter/10)
	if live != want {
		t.Fatalf("live keys = %d, want %d", live, want)
	}
}

// TestConcurrentFlushCompact interleaves explicit flush/compact with
// writes and reads.
func TestConcurrentFlushCompact(t *testing.T) {
	s := openTest(t, Options{DisableAutoCompact: true})
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 400; i++ {
			if err := s.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v")); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := s.Flush(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := s.Compact(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}
	n := 0
	s.Scan(nil, nil, func(k, v []byte) bool { n++; return true })
	if n != 400 {
		t.Fatalf("keys after churn = %d, want 400", n)
	}
}
