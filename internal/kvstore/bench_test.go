package kvstore

import (
	"fmt"
	"testing"
)

// Ablation benchmarks for the storage engine design choices: bloom
// filters on point lookups, batch sizes on the WAL, and scan throughput.

func benchStore(b *testing.B, opts Options) *Store {
	b.Helper()
	s, err := Open(b.TempDir(), opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	return s
}

func fillKeys(b *testing.B, s *Store, n int) [][]byte {
	b.Helper()
	keys := make([][]byte, n)
	for i := 0; i < n; i++ {
		keys[i] = []byte(fmt.Sprintf("key-%08d", i))
		if err := s.Put(keys[i], []byte(fmt.Sprintf("value-%d", i))); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		b.Fatal(err)
	}
	return keys
}

func BenchmarkPut(b *testing.B) {
	s := benchStore(b, Options{})
	val := []byte("a-reasonably-sized-value-for-a-provenance-record-entry")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%08d", i)), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchedPuts(b *testing.B) {
	for _, batchSize := range []int{1, 16, 128} {
		b.Run(fmt.Sprintf("batch-%d", batchSize), func(b *testing.B) {
			s := benchStore(b, Options{})
			val := []byte("value")
			b.ResetTimer()
			i := 0
			for i < b.N {
				var batch Batch
				for j := 0; j < batchSize && i < b.N; j++ {
					batch.Put([]byte(fmt.Sprintf("key-%08d", i)), val)
					i++
				}
				if err := s.Apply(&batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGetFromTables(b *testing.B) {
	s := benchStore(b, Options{})
	keys := fillKeys(b, s, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGetMissing isolates the bloom filter's value: negative lookups
// across several tables.
func BenchmarkGetMissing(b *testing.B) {
	for _, bits := range []int{1, 10} {
		b.Run(fmt.Sprintf("bloom-bits-%d", bits), func(b *testing.B) {
			s := benchStore(b, Options{BloomBitsPerKey: bits, DisableAutoCompact: true})
			for t := 0; t < 4; t++ { // four tables to consult
				for i := 0; i < 5000; i++ {
					s.Put([]byte(fmt.Sprintf("t%d-key-%06d", t, i)), []byte("v"))
				}
				s.Flush()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Get([]byte(fmt.Sprintf("absent-%d", i))); err != ErrNotFound {
					b.Fatal("unexpected hit")
				}
			}
		})
	}
}

func BenchmarkScan(b *testing.B) {
	s := benchStore(b, Options{})
	fillKeys(b, s, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		s.Scan(nil, nil, func(k, v []byte) bool { n++; return true })
		if n != 20000 {
			b.Fatalf("scanned %d", n)
		}
	}
}

func BenchmarkCompaction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := benchStore(b, Options{DisableAutoCompact: true})
		for t := 0; t < 4; t++ {
			for k := 0; k < 3000; k++ {
				s.Put([]byte(fmt.Sprintf("key-%06d", k)), []byte(fmt.Sprintf("gen-%d", t)))
			}
			s.Flush()
		}
		b.StartTimer()
		if err := s.Compact(); err != nil {
			b.Fatal(err)
		}
	}
}
