package wire

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"pass/internal/arch"
	"pass/internal/arch/dht"
	"pass/internal/arch/passnet"
	"pass/internal/geo"
	"pass/internal/netsim"
	"pass/internal/provenance"
)

func newTestTransport(t *testing.T, cfg Config, n int) (*Transport, []netsim.SiteID) {
	t.Helper()
	if cfg.AckTimeout == 0 {
		cfg.AckTimeout = 100 * time.Millisecond
	}
	tr := NewTransport(cfg)
	t.Cleanup(tr.Close)
	ids := make([]netsim.SiteID, 0, n)
	for i := 0; i < n; i++ {
		zone := fmt.Sprintf("z%d", i/4)
		ids = append(ids, tr.AddSite(fmt.Sprintf("s%d", i), pointFor(i), zone))
	}
	return tr, ids
}

func TestTransportSendDelivers(t *testing.T) {
	tr, ids := newTestTransport(t, Config{}, 2)
	d, err := tr.Send(ids[0], ids[1], 512)
	if err != nil {
		t.Fatalf("Send: %v", err)
	}
	if d <= 0 {
		t.Fatalf("measured latency %v, want > 0", d)
	}
	st := tr.Stats()
	if st.Messages != 1 || st.Bytes != 512 {
		t.Fatalf("stats = %+v, want 1 msg / 512 bytes", st)
	}
}

func TestTransportPolicySentinels(t *testing.T) {
	tr, ids := newTestTransport(t, Config{}, 3)

	if _, err := tr.Send(ids[0], 99, 10); !errors.Is(err, netsim.ErrNoSuchSite) {
		t.Fatalf("unknown dest: got %v", err)
	}
	tr.Fail(ids[1])
	if _, err := tr.Send(ids[0], ids[1], 10); !errors.Is(err, netsim.ErrSiteDown) {
		t.Fatalf("down dest: got %v", err)
	}
	if !tr.IsDown(ids[1]) {
		t.Fatal("IsDown false after Fail")
	}
	if got := tr.UpCount(); got != 2 {
		t.Fatalf("UpCount = %d, want 2", got)
	}
	tr.Heal(ids[1])
	if _, err := tr.Send(ids[0], ids[1], 10); err != nil {
		t.Fatalf("after Heal: %v", err)
	}

	tr.Partition(ids[0], ids[2])
	if _, err := tr.Send(ids[2], ids[0], 10); !errors.Is(err, netsim.ErrPartitioned) {
		t.Fatalf("across cut: got %v", err)
	}
	if !tr.Partitioned(ids[0], ids[2]) {
		t.Fatal("Partitioned false after Partition")
	}
	tr.HealPartition(ids[0], ids[2])
	if _, err := tr.Send(ids[2], ids[0], 10); err != nil {
		t.Fatalf("after HealPartition: %v", err)
	}

	// All sentinels above must look like unavailability to model code.
	for _, err := range []error{netsim.ErrSiteDown, netsim.ErrMsgLost, netsim.ErrPartitioned} {
		if !arch.IsUnavailable(err) {
			t.Fatalf("%v not matched by arch.IsUnavailable", err)
		}
	}
}

func TestTransportSeededLoss(t *testing.T) {
	tr, ids := newTestTransport(t, Config{LossRate: 1.0, Seed: 7}, 2)
	d, err := tr.Send(ids[0], ids[1], 100)
	if !errors.Is(err, netsim.ErrMsgLost) {
		t.Fatalf("rate-1 loss: got %v, want ErrMsgLost", err)
	}
	if d < 0 {
		t.Fatalf("negative elapsed %v", d)
	}
	st := tr.Stats()
	if st.DroppedMsgs != 1 || st.Bytes != 100 {
		t.Fatalf("stats = %+v: lost bytes must still be accounted", st)
	}
	tr.SetLossRate(0)
	if _, err := tr.Send(ids[0], ids[1], 100); err != nil {
		t.Fatalf("after SetLossRate(0): %v", err)
	}
	tr.SetLinkLoss(ids[0], ids[1], 1.0)
	if _, err := tr.Send(ids[0], ids[1], 100); !errors.Is(err, netsim.ErrMsgLost) {
		t.Fatalf("link-loss override: got %v, want ErrMsgLost", err)
	}
}

func TestTransportCallIsTwoLeggedAndOversizePayloadTruncates(t *testing.T) {
	tr, ids := newTestTransport(t, Config{}, 2)
	if _, err := tr.Call(ids[0], ids[1], 300, 200); err != nil {
		t.Fatalf("Call: %v", err)
	}
	st := tr.Stats()
	if st.Messages != 2 || st.Bytes != 500 {
		t.Fatalf("stats after Call = %+v, want 2 msgs / 500 bytes", st)
	}
	// A declared size beyond one datagram still transmits (padding is
	// truncated, declared size preserved in accounting).
	if _, err := tr.Send(ids[0], ids[1], MaxPayload*3); err != nil {
		t.Fatalf("oversize Send: %v", err)
	}
	if st = tr.Stats(); st.Bytes != 500+int64(MaxPayload*3) {
		t.Fatalf("declared-size accounting lost: %+v", st)
	}
}

// ---- the conformance bridge: same build function, either backend ----

// bridgeBuilders is the point of the whole package: ONE build function
// per model, closed over nothing backend-specific, handed both a
// *netsim.Network and a *wire.Transport through arch.Network.
var bridgeBuilders = map[string]func(net arch.Network, sites []netsim.SiteID) arch.Model{
	"passnet": func(net arch.Network, sites []netsim.SiteID) arch.Model {
		return passnet.New(net, sites, passnet.Options{})
	},
	"dht": func(net arch.Network, sites []netsim.SiteID) arch.Model {
		return dht.New(net, sites)
	},
}

func pointFor(i int) geo.Point {
	return geo.Point{X: float64(i%4) * 10, Y: float64(i/4) * 10}
}

// bridgePubs builds a deterministic publish schedule (the harness's
// taggedPubs convention) addressed by dense site IDs, so the identical
// schedule runs on both backends.
func bridgePubs(sites []netsim.SiteID, zoneOf func(netsim.SiteID) string, domain string, n int) ([]arch.Pub, error) {
	pubs := make([]arch.Pub, 0, n)
	for i := 0; i < n; i++ {
		origin := sites[(i*7)%len(sites)]
		var digest [32]byte
		digest[0], digest[1], digest[2] = byte(i), byte(i>>8), 0xB7
		rec, id, err := provenance.NewRaw(digest, 64).
			Attrs(
				provenance.Attr("n", provenance.Int64(int64(i))),
				provenance.Attr(provenance.KeyDomain, provenance.String(domain)),
				provenance.Attr(provenance.KeyZone, provenance.String(zoneOf(origin))),
			).
			CreatedAt(int64(i) + 1).
			Build()
		if err != nil {
			return nil, err
		}
		pubs = append(pubs, arch.Pub{ID: id, Rec: rec, Origin: origin})
	}
	return pubs, nil
}

// driveModel runs the E14 convention against any backend: publish with
// up to 4 attempts, 6 maintenance ticks, query from 4 spread sites, and
// report recall over the acked set.
func driveModel(m arch.Model, sites []netsim.SiteID, pubs []arch.Pub, domain string) (float64, error) {
	acked := make(map[provenance.ID]bool, len(pubs))
	for _, p := range pubs {
		for a := 0; a < 4; a++ {
			if _, err := m.Publish(p); err == nil {
				acked[p.ID] = true
				break
			} else if !arch.IsUnavailable(err) {
				return 0, fmt.Errorf("publish: %w", err)
			}
		}
	}
	for tick := 0; tick < 6; tick++ {
		if err := m.Tick(); err != nil {
			return 0, fmt.Errorf("tick: %w", err)
		}
	}
	if len(acked) == 0 {
		return 0, errors.New("nothing acked")
	}
	queriers := []netsim.SiteID{
		sites[0], sites[len(sites)/3], sites[2*len(sites)/3], sites[len(sites)-1],
	}
	recall := 0.0
	for _, q := range queriers {
		got, _, err := m.QueryAttr(q, provenance.KeyDomain, provenance.String(domain))
		if err != nil {
			if arch.IsUnavailable(err) {
				continue
			}
			return 0, fmt.Errorf("query: %w", err)
		}
		hit := 0
		for _, id := range got {
			if acked[id] {
				hit++
			}
		}
		recall += float64(hit) / float64(len(acked))
	}
	return recall / float64(len(queriers)), nil
}

// TestBridgeCleanNetworkAgrees runs the same build function over netsim
// and over real sockets on a mirrored topology with no faults: both
// backends must reach recall 1.0 on the identical schedule.
func TestBridgeCleanNetworkAgrees(t *testing.T) {
	const nSites, nPubs = 8, 24
	for name, build := range bridgeBuilders {
		t.Run(name, func(t *testing.T) {
			// netsim side.
			sim, simSites := netsim.RandomTopology(netsim.Config{Seed: 11}, 2, nSites/2, 77)
			simZone := func(id netsim.SiteID) string { s, _ := sim.Site(id); return s.Zone }
			simPubs, err := bridgePubs(simSites, simZone, "bridge", nPubs)
			if err != nil {
				t.Fatal(err)
			}
			simRecall, err := driveModel(build(sim, simSites), simSites, simPubs, "bridge")
			if err != nil {
				t.Fatalf("netsim run: %v", err)
			}

			// socket side: mirror the simulated topology (names, zones,
			// coordinates, IDs) onto real UDP endpoints.
			var simTopo []netsim.Site
			for _, id := range simSites {
				s, _ := sim.Site(id)
				simTopo = append(simTopo, s)
			}
			tr := NewTransport(Config{AckTimeout: 200 * time.Millisecond})
			defer tr.Close()
			realSites := tr.AddSites(simTopo)
			realZone := func(id netsim.SiteID) string { s, _ := tr.Site(id); return s.Zone }
			realPubs, err := bridgePubs(realSites, realZone, "bridge", nPubs)
			if err != nil {
				t.Fatal(err)
			}
			realRecall, err := driveModel(build(tr, realSites), realSites, realPubs, "bridge")
			if err != nil {
				t.Fatalf("socket run: %v", err)
			}

			if simRecall != 1.0 {
				t.Errorf("netsim recall = %.3f, want 1.0", simRecall)
			}
			if realRecall != 1.0 {
				t.Errorf("socket recall = %.3f, want 1.0", realRecall)
			}
		})
	}
}

// TestBridgeLossyNetworkWithinTolerance repeats the bridge under 20%
// seeded loss on both backends. Loss realisations differ (different RNG
// streams), so the assertion is a tolerance band, not equality: the
// backends must agree within 0.25 recall, and neither may collapse.
func TestBridgeLossyNetworkWithinTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("lossy bridge run skipped in -short")
	}
	const nSites, nPubs, tolerance = 8, 24, 0.25
	for name, build := range bridgeBuilders {
		t.Run(name, func(t *testing.T) {
			sim, simSites := netsim.RandomTopology(netsim.Config{Seed: 13, LossRate: 0.20}, 2, nSites/2, 78)
			simZone := func(id netsim.SiteID) string { s, _ := sim.Site(id); return s.Zone }
			simPubs, err := bridgePubs(simSites, simZone, "lossy", nPubs)
			if err != nil {
				t.Fatal(err)
			}
			simRecall, err := driveModel(build(sim, simSites), simSites, simPubs, "lossy")
			if err != nil {
				t.Fatalf("netsim run: %v", err)
			}

			var simTopo []netsim.Site
			for _, id := range simSites {
				s, _ := sim.Site(id)
				simTopo = append(simTopo, s)
			}
			tr := NewTransport(Config{LossRate: 0.20, Seed: 13, AckTimeout: 100 * time.Millisecond})
			defer tr.Close()
			realSites := tr.AddSites(simTopo)
			realZone := func(id netsim.SiteID) string { s, _ := tr.Site(id); return s.Zone }
			realPubs, err := bridgePubs(realSites, realZone, "lossy", nPubs)
			if err != nil {
				t.Fatal(err)
			}
			realRecall, err := driveModel(build(tr, realSites), realSites, realPubs, "lossy")
			if err != nil {
				t.Fatalf("socket run: %v", err)
			}

			if diff := simRecall - realRecall; diff > tolerance || diff < -tolerance {
				t.Errorf("recall diverged: netsim %.3f vs sockets %.3f (tolerance %.2f)",
					simRecall, realRecall, tolerance)
			}
			if simRecall < 0.5 || realRecall < 0.5 {
				t.Errorf("recall collapsed: netsim %.3f, sockets %.3f", simRecall, realRecall)
			}
		})
	}
}
