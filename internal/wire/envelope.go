// Package wire is the real-socket layer of the repository: a versioned
// message envelope, a UDP endpoint built around an inflight-waiter map
// (requests matched to responses by MsgID, a non-blocking read loop
// dispatching everything else to a handler), and a Transport that
// implements the same send/deliver surface the netsim simulator provides
// (arch.Network) — so the same arch.Model build function runs unchanged
// against either backend, with bytes actually crossing sockets instead
// of being accounted in memory.
//
// The envelope is deliberately minimal: version, message type, flags,
// sender ID, a monotonically increasing per-endpoint MsgID, a declared
// logical size, and an opaque payload. Verb semantics (put/get/query,
// digest deltas, control-plane drops) live in the node package; the
// cluster harness speaks the same envelopes as a client.
//
// # Fault injection on real sockets
//
// Simulated networks can drop a message by fiat; a real transport needs
// a mechanism. Endpoints carry per-peer drop rules (SetDrop): a seeded
// deterministic probability applied to matching datagrams as they
// arrive, BEFORE dispatch — the datagram crossed the wire and is then
// discarded, exactly like in-network loss, and the sender discovers it
// the only way a real sender can: its retransmission timer expires. The
// cluster harness partitions live processes by installing rate-1.0 drop
// rules on both sides of the cut, and injects E14-style packet loss by
// seeding sub-1.0 rules.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Version is the wire protocol version; envelopes carrying any other
// version are rejected at decode.
const Version = 1

// HeaderSize is the encoded envelope header length in bytes.
const HeaderSize = 19

// MaxDatagram bounds one UDP datagram (loopback supports more, but
// staying under typical OS defaults keeps the transport honest).
const MaxDatagram = 60000

// MaxPayload is the largest real payload one envelope carries. A message
// whose DECLARED size exceeds it is transmitted with a truncated padding
// payload but keeps its declared Size, so byte accounting stays faithful
// to the logical message while the datagram stays sendable.
const MaxPayload = MaxDatagram - HeaderSize

// MaxStreamPayload bounds one stream-framed (TCP) request or response
// payload — the fallback for verbs whose payloads exceed the datagram
// ceiling (view snapshots, recovery bucket transfers). Bounded so a
// corrupt length prefix cannot ask the receiver to allocate the moon.
const MaxStreamPayload = 64 << 20

// Type discriminates envelope meaning. Requests and responses are
// distinct types; a response additionally carries FlagResponse and the
// request's MsgID so the sender's inflight-waiter map can match it.
type Type uint8

// Transport-internal and node-verb message types.
const (
	// TData / TAck are the Transport's raw data plane: TData carries a
	// padded payload of the model's declared message size, TAck confirms
	// delivery back to the sending endpoint.
	TData Type = 1
	TAck  Type = 2

	// Client verbs served by a passd node.
	TPut     Type = 10 // payload: encoded provenance record
	TPutOK   Type = 11 // payload: record ID
	TGet     Type = 12 // payload: record ID
	TGetOK   Type = 13 // payload: encoded record
	TQuery   Type = 14 // payload: attr key \x00 canonical value
	TQueryOK Type = 15 // payload: concatenated record IDs

	// Inter-node verbs.
	TDelta    Type = 16 // payload: encoded siteview delta
	TDeltaAck Type = 17
	TFetch    Type = 18 // payload: record ID (serve from local/replica stores)
	TFetchOK  Type = 19 // payload: encoded record
	TAttrQ    Type = 20 // payload: attr key \x00 canonical value (local answer only)
	TAttrQOK  Type = 21 // payload: concatenated record IDs
	TStore    Type = 22 // payload: role byte, source node ID, encoded record
	TStoreOK  Type = 23
	TPing     Type = 24
	TPong     Type = 25

	// Recovery verbs (restart catch-up; responses routinely exceed the
	// UDP ceiling and ride the stream framing automatically).
	TSnap      Type = 26 // payload: none; response: encoded siteview.View
	TSnapOK    Type = 27
	TRecover   Type = 28 // payload: 4-byte seat ID; response: JSON placements
	TRecoverOK Type = 29

	// Control plane (the cluster harness drives these).
	TTick    Type = 30 // run one maintenance round (gossip / ping+replicate)
	TTickOK  Type = 31
	TDrop    Type = 32 // payload: JSON drop rules
	TDropOK  Type = 33
	TStat    Type = 34 // payload: none; response: JSON node status
	TStatOK  Type = 35
	TPeers   Type = 36 // payload: JSON peer roster
	TPeersOK Type = 37

	// TErr is the generic failure response; payload is the error text.
	TErr Type = 40
)

// Envelope flags.
const (
	// FlagResponse marks an envelope answering a request with the same
	// MsgID; the read loop routes it to the inflight waiter instead of
	// the handler.
	FlagResponse uint8 = 1 << 0
	// FlagLost marks a TData datagram the sending Transport's loss rule
	// poisoned: the bytes cross the socket (the bandwidth was spent) but
	// the receiving endpoint discards it unacknowledged, so the sender
	// observes exactly what in-network loss looks like.
	FlagLost uint8 = 1 << 1
)

// Envelope is one wire message.
type Envelope struct {
	Ver   uint8
	Type  Type
	Flags uint8
	From  int32 // sender's site/node ID (clients use IDs past the node range)
	MsgID uint64
	// Size is the DECLARED logical payload size. For verb messages it
	// equals len(Payload); for Transport data planes it is the model's
	// accounted message size, of which only min(Size, MaxPayload) bytes
	// of padding are physically carried.
	Size    uint32
	Payload []byte
}

// ErrBadEnvelope is returned for short, corrupt, or wrong-version frames.
var ErrBadEnvelope = errors.New("wire: bad envelope")

// Encode marshals the envelope into a fresh buffer.
func (e Envelope) Encode() []byte {
	buf := make([]byte, HeaderSize+len(e.Payload))
	buf[0] = Version
	buf[1] = byte(e.Type)
	buf[2] = e.Flags
	binary.LittleEndian.PutUint32(buf[3:], uint32(e.From))
	binary.LittleEndian.PutUint64(buf[7:], e.MsgID)
	binary.LittleEndian.PutUint32(buf[15:], e.Size)
	copy(buf[HeaderSize:], e.Payload)
	return buf
}

// Decode parses one datagram. The returned envelope's Payload aliases
// data; callers that retain it past the read buffer's reuse must copy.
func Decode(data []byte) (Envelope, error) {
	if len(data) < HeaderSize {
		return Envelope{}, fmt.Errorf("%w: %d bytes", ErrBadEnvelope, len(data))
	}
	if data[0] != Version {
		return Envelope{}, fmt.Errorf("%w: version %d", ErrBadEnvelope, data[0])
	}
	return Envelope{
		Ver:     data[0],
		Type:    Type(data[1]),
		Flags:   data[2],
		From:    int32(binary.LittleEndian.Uint32(data[3:])),
		MsgID:   binary.LittleEndian.Uint64(data[7:]),
		Size:    binary.LittleEndian.Uint32(data[15:]),
		Payload: data[HeaderSize:],
	}, nil
}
