package wire

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pass/internal/xrand"
)

// ErrTimeout is returned by Request when no response arrived within the
// attempt's deadline — the real-socket analogue of a lost message.
var ErrTimeout = errors.New("wire: request timed out")

// ErrClosed is returned for operations on a closed endpoint.
var ErrClosed = errors.New("wire: endpoint closed")

// DefaultRequestTimeout is the per-attempt response deadline when the
// caller does not override it. It is deliberately small: these endpoints
// speak over loopback in tests and single-datacenter links in anger, so
// a response that has not arrived in a quarter second is lost.
const DefaultRequestTimeout = 250 * time.Millisecond

// Handler consumes one non-response envelope. reply sends a response
// envelope back to the requester (same MsgID, FlagResponse set); calling
// it is optional — fire-and-forget verbs simply don't.
type Handler func(env Envelope, from *net.UDPAddr, reply func(t Type, payload []byte))

// dropRule is one per-peer ingress drop decision stream.
type dropRule struct {
	rate float64
	rng  *xrand.Rand
}

// Endpoint is one UDP wire endpoint: a socket, a read loop, and the
// inflight-waiter map that matches responses to requests by MsgID. It is
// the building block for both the in-process Transport (one endpoint per
// simulated site) and a passd node process (one endpoint per node, plus
// one in the harness acting as the client).
type Endpoint struct {
	id   int32
	conn *net.UDPConn
	ln   net.Listener // stream (TCP) listener on the same port; may be nil

	handler atomic.Pointer[Handler]

	mu       sync.Mutex
	inflight map[uint64]chan Envelope
	drops    map[int32]*dropRule
	closed   bool

	nextMsgID atomic.Uint64

	// Timeout is the per-attempt response deadline (DefaultRequestTimeout
	// when zero). Set before issuing requests.
	Timeout time.Duration

	// RetryBase/RetryMax shape RequestRetry's capped exponential backoff
	// (zero values derive from Timeout: base = Timeout/2, max = 4×Timeout).
	RetryBase time.Duration
	RetryMax  time.Duration

	retryMu  sync.Mutex
	retryRng *xrand.Rand

	// Counters (atomic; exposed for node metrics and harness asserts).
	msgsIn, msgsOut   atomic.Int64
	bytesIn, bytesOut atomic.Int64
	dropped           atomic.Int64
}

// NewEndpoint binds a UDP endpoint on addr ("127.0.0.1:0" picks an
// ephemeral port) and starts its read loop. The endpoint also listens on
// TCP at the SAME port for stream-framed oversize payloads; if that port
// is taken on TCP (rare — another process), the endpoint still works but
// oversize requests to it fail like a dead peer.
func NewEndpoint(id int32, addr string) (*Endpoint, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, err
	}
	ep := &Endpoint{
		id:       id,
		conn:     conn,
		inflight: make(map[uint64]chan Envelope),
		drops:    make(map[int32]*dropRule),
		retryRng: xrand.New(uint64(uint32(id))*0x9E3779B97F4A7C15 + 1),
	}
	bound := conn.LocalAddr().(*net.UDPAddr)
	if ln, err := net.Listen("tcp", net.JoinHostPort(bound.IP.String(), fmt.Sprint(bound.Port))); err == nil {
		ep.ln = ln
		go ep.serveStream(ln)
	}
	go ep.readLoop()
	return ep, nil
}

// SeedRetry reseeds the deterministic jitter stream RequestRetry's
// backoff draws from (the constructor seeds it from the endpoint ID).
func (ep *Endpoint) SeedRetry(seed uint64) {
	ep.retryMu.Lock()
	ep.retryRng = xrand.New(seed)
	ep.retryMu.Unlock()
}

// ID returns the endpoint's wire ID.
func (ep *Endpoint) ID() int32 { return ep.id }

// Addr returns the bound UDP address.
func (ep *Endpoint) Addr() *net.UDPAddr { return ep.conn.LocalAddr().(*net.UDPAddr) }

// Handle installs the handler for non-response envelopes. Envelopes
// arriving before a handler is installed are dropped (counted).
func (ep *Endpoint) Handle(h Handler) { ep.handler.Store(&h) }

// SetDrop installs (or, with rate <= 0, clears) a seeded ingress drop
// rule for datagrams from the given sender ID. Decisions are drawn from
// a deterministic per-rule stream, so two runs with the same seed and
// the same arrival sequence from that peer drop the same datagrams. A
// rate >= 1 drops everything — the cluster harness's partition primitive.
func (ep *Endpoint) SetDrop(from int32, rate float64, seed uint64) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if rate <= 0 {
		delete(ep.drops, from)
		return
	}
	ep.drops[from] = &dropRule{rate: rate, rng: xrand.New(seed)}
}

// Dropped reports how many ingress datagrams drop rules have discarded.
func (ep *Endpoint) Dropped() int64 { return ep.dropped.Load() }

// Stats reports cumulative endpoint traffic: messages and bytes in and
// out (ingress counts datagrams before drop rules run).
func (ep *Endpoint) Stats() (msgsIn, msgsOut, bytesIn, bytesOut int64) {
	return ep.msgsIn.Load(), ep.msgsOut.Load(), ep.bytesIn.Load(), ep.bytesOut.Load()
}

// Close shuts the socket down; the read loop exits and every pending
// Request fails.
func (ep *Endpoint) Close() error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil
	}
	ep.closed = true
	for id, ch := range ep.inflight {
		close(ch)
		delete(ep.inflight, id)
	}
	ep.mu.Unlock()
	if ep.ln != nil {
		_ = ep.ln.Close()
	}
	return ep.conn.Close()
}

// readLoop is the endpoint's non-blocking ingestion path: decode, apply
// drop rules, route responses to their inflight waiters, dispatch
// everything else to the handler. Handler invocations run on their own
// goroutine so one slow verb cannot stall the socket.
func (ep *Endpoint) readLoop() {
	buf := make([]byte, MaxDatagram+512)
	for {
		n, from, err := ep.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		ep.msgsIn.Add(1)
		ep.bytesIn.Add(int64(n))
		env, err := Decode(buf[:n])
		if err != nil {
			continue
		}
		if ep.shouldDrop(env) {
			ep.dropped.Add(1)
			continue
		}
		// Payload aliases the read buffer; copy before leaving this
		// iteration.
		env.Payload = append([]byte(nil), env.Payload...)

		if env.Flags&FlagResponse != 0 {
			ep.mu.Lock()
			ch, ok := ep.inflight[env.MsgID]
			if ok {
				delete(ep.inflight, env.MsgID)
			}
			ep.mu.Unlock()
			if ok {
				ch <- env
			}
			continue
		}
		if hp := ep.handler.Load(); hp != nil {
			h := *hp
			fromCopy := *from
			go h(env, &fromCopy, func(t Type, payload []byte) {
				resp := Envelope{
					Ver: Version, Type: t, Flags: FlagResponse,
					From: ep.id, MsgID: env.MsgID,
					Size: uint32(len(payload)), Payload: payload,
				}
				_ = ep.send(resp, &fromCopy)
			})
		}
	}
}

// shouldDrop applies ingress drop rules. A FlagLost data frame is always
// discarded — the sending transport poisoned it to simulate in-network
// loss — and per-peer rules are consulted for everything else.
func (ep *Endpoint) shouldDrop(env Envelope) bool {
	if env.Flags&FlagLost != 0 {
		return true
	}
	ep.mu.Lock()
	defer ep.mu.Unlock()
	r, ok := ep.drops[env.From]
	if !ok {
		return false
	}
	return r.rate >= 1 || r.rng.Float64() < r.rate
}

// send transmits one envelope.
func (ep *Endpoint) send(env Envelope, to *net.UDPAddr) error {
	b := env.Encode()
	n, err := ep.conn.WriteToUDP(b, to)
	if err != nil {
		return err
	}
	ep.msgsOut.Add(1)
	ep.bytesOut.Add(int64(n))
	return nil
}

// Send transmits a fire-and-forget envelope of the given type.
func (ep *Endpoint) Send(to *net.UDPAddr, t Type, flags uint8, size uint32, payload []byte) (uint64, error) {
	id := ep.nextMsgID.Add(1)
	env := Envelope{Ver: Version, Type: t, Flags: flags, From: ep.id, MsgID: id, Size: size, Payload: payload}
	return id, ep.send(env, to)
}

// Request sends one request envelope and waits for its response (matched
// by MsgID through the inflight-waiter map) for at most the endpoint's
// Timeout. On deadline it returns ErrTimeout — indistinguishable, as in
// any real network, from the request or the response having been lost.
func (ep *Endpoint) Request(to *net.UDPAddr, t Type, payload []byte) (Envelope, error) {
	return ep.RequestTimeout(to, t, payload, ep.timeout())
}

// RequestTimeout is Request with an explicit per-attempt deadline. A
// request whose payload exceeds the datagram ceiling automatically rides
// the stream framing instead (same request API, same timeout semantics).
func (ep *Endpoint) RequestTimeout(to *net.UDPAddr, t Type, payload []byte, d time.Duration) (Envelope, error) {
	if HeaderSize+len(payload) > MaxDatagram {
		return ep.requestStream(to, t, payload, d)
	}
	id := ep.nextMsgID.Add(1)
	ch := make(chan Envelope, 1)
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return Envelope{}, ErrClosed
	}
	ep.inflight[id] = ch
	ep.mu.Unlock()

	env := Envelope{Ver: Version, Type: t, From: ep.id, MsgID: id, Size: uint32(len(payload)), Payload: payload}
	if err := ep.send(env, to); err != nil {
		ep.abandon(id)
		return Envelope{}, err
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case resp, ok := <-ch:
		if !ok {
			return Envelope{}, ErrClosed
		}
		if resp.Type == TErr {
			return resp, fmt.Errorf("wire: remote error: %s", resp.Payload)
		}
		return resp, nil
	case <-timer.C:
		ep.abandon(id)
		return Envelope{}, fmt.Errorf("%w: type %d to %s", ErrTimeout, t, to)
	}
}

// RequestRetry retransmits a request up to 1+retries times. Waiting is
// how a real sender discovers loss, so each failed attempt costs a full
// per-attempt deadline before the next transmission — the wall-clock
// counterpart of arch.Retry's RTO accounting. Between attempts the
// sender additionally backs off with the same shape as arch.RTO: a base
// delay doubled per consecutive failure, ±25% jitter drawn from the
// endpoint's seeded xrand stream, capped — so a cluster of endpoints
// retrying against one restarting node desynchronizes instead of
// re-converging into a retry storm at the shared timeout boundary.
func (ep *Endpoint) RequestRetry(to *net.UDPAddr, t Type, payload []byte, retries int) (Envelope, error) {
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		resp, err := ep.RequestTimeout(to, t, payload, ep.timeout())
		if err == nil || !errors.Is(err, ErrTimeout) {
			return resp, err
		}
		lastErr = err
		if attempt < retries {
			time.Sleep(ep.retryBackoff(attempt))
		}
	}
	return Envelope{}, lastErr
}

// retryBackoff returns the pre-retransmission delay after consecutive
// failure number attempt (0-based): base<<attempt with ±25% jitter,
// capped after jitter so the ceiling is a true ceiling (arch.RTO.Penalty
// semantics on real sockets).
func (ep *Endpoint) retryBackoff(attempt int) time.Duration {
	base, max := ep.RetryBase, ep.RetryMax
	if base <= 0 {
		base = ep.timeout() / 2
	}
	if max <= 0 {
		max = 4 * ep.timeout()
	}
	d := base
	if attempt >= 63 {
		d = max
	} else if d <<= uint(attempt); d > max || d <= 0 {
		d = max
	}
	ep.retryMu.Lock()
	jitter := 0.75 + 0.5*ep.retryRng.Float64()
	ep.retryMu.Unlock()
	p := time.Duration(float64(d) * jitter)
	if p > max {
		p = max
	}
	return p
}

// abandon removes a waiter that timed out or failed to send.
func (ep *Endpoint) abandon(id uint64) {
	ep.mu.Lock()
	delete(ep.inflight, id)
	ep.mu.Unlock()
}

func (ep *Endpoint) timeout() time.Duration {
	if ep.Timeout > 0 {
		return ep.Timeout
	}
	return DefaultRequestTimeout
}
