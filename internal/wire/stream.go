package wire

// Stream framing: the TCP fallback for payloads that exceed the UDP
// datagram ceiling. Every endpoint listens on TCP at the SAME port its
// UDP socket bound, so a peer's UDP address is also its stream address.
// Frames are length-prefixed envelopes:
//
//	frame := len u32 | envelope (header + payload)
//
// The request API stays the Endpoint's: RequestTimeout transparently
// switches to the stream when the request payload cannot ride a
// datagram, and callers expecting an oversize RESPONSE (view snapshots,
// recovery bucket transfers) use RequestStream explicitly — the
// requester knows the verb, the transport does not. Ingress drop rules
// apply to stream frames exactly as to datagrams: the frame crossed the
// wire, is discarded before dispatch, and the sender discovers the loss
// by its read deadline expiring — same physics, different framing.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// streamIdleTimeout bounds how long a server-side stream connection may
// sit between frames before the endpoint closes it.
const streamIdleTimeout = 30 * time.Second

// writeFrame writes one length-prefixed envelope.
func writeFrame(w io.Writer, env Envelope) error {
	b := env.Encode()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

// readFrame reads one length-prefixed envelope. The returned envelope's
// payload is freshly allocated (no buffer aliasing across frames).
func readFrame(r io.Reader) (Envelope, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Envelope{}, 0, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < HeaderSize || n > MaxStreamPayload+HeaderSize {
		return Envelope{}, 0, fmt.Errorf("%w: stream frame of %d bytes", ErrBadEnvelope, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return Envelope{}, 0, err
	}
	env, err := Decode(buf)
	return env, int(n) + 4, err
}

// serveStream accepts stream connections for the endpoint's lifetime.
func (ep *Endpoint) serveStream(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		go ep.serveStreamConn(conn)
	}
}

// serveStreamConn drains one inbound stream connection: frames are
// decoded, run through the same drop rules as datagrams, and dispatched
// to the handler; replies are written back on the same connection (a
// per-connection mutex serializes concurrent handler replies).
func (ep *Endpoint) serveStreamConn(conn net.Conn) {
	defer conn.Close()
	var wmu sync.Mutex
	for {
		_ = conn.SetReadDeadline(time.Now().Add(streamIdleTimeout))
		env, n, err := readFrame(conn)
		if err != nil {
			return
		}
		ep.msgsIn.Add(1)
		ep.bytesIn.Add(int64(n))
		if ep.shouldDrop(env) {
			// Discarded AFTER crossing the wire, like a dropped datagram:
			// no reply, and the requester's deadline does the telling.
			ep.dropped.Add(1)
			continue
		}
		if env.Flags&FlagResponse != 0 {
			continue // stream responses pair synchronously in requestStream
		}
		hp := ep.handler.Load()
		if hp == nil {
			continue
		}
		h := *hp
		go h(env, nil, func(t Type, payload []byte) {
			resp := Envelope{
				Ver: Version, Type: t, Flags: FlagResponse,
				From: ep.id, MsgID: env.MsgID,
				Size: uint32(len(payload)), Payload: payload,
			}
			wmu.Lock()
			defer wmu.Unlock()
			if err := writeFrame(conn, resp); err == nil {
				ep.msgsOut.Add(1)
				ep.bytesOut.Add(int64(HeaderSize + 4 + len(payload)))
			}
		})
	}
}

// RequestStream sends one request over a fresh stream connection and
// waits for its framed response — the explicit path for verbs whose
// RESPONSE may exceed the datagram ceiling (the requester knows the
// verb; the transport cannot). RequestTimeout calls it automatically
// when the request payload itself is oversize.
func (ep *Endpoint) RequestStream(to *net.UDPAddr, t Type, payload []byte) (Envelope, error) {
	return ep.requestStream(to, t, payload, ep.timeout())
}

func (ep *Endpoint) requestStream(to *net.UDPAddr, t Type, payload []byte, d time.Duration) (Envelope, error) {
	ep.mu.Lock()
	closed := ep.closed
	ep.mu.Unlock()
	if closed {
		return Envelope{}, ErrClosed
	}
	if len(payload) > MaxStreamPayload {
		return Envelope{}, fmt.Errorf("%w: %d-byte stream payload", ErrBadEnvelope, len(payload))
	}
	addr := net.JoinHostPort(to.IP.String(), fmt.Sprint(to.Port))
	deadline := time.Now().Add(d)
	conn, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return Envelope{}, fmt.Errorf("%w: stream dial %s: %v", ErrTimeout, addr, err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(deadline)
	id := ep.nextMsgID.Add(1)
	env := Envelope{Ver: Version, Type: t, From: ep.id, MsgID: id, Size: uint32(len(payload)), Payload: payload}
	if err := writeFrame(conn, env); err != nil {
		return Envelope{}, fmt.Errorf("%w: stream write to %s: %v", ErrTimeout, addr, err)
	}
	ep.msgsOut.Add(1)
	ep.bytesOut.Add(int64(HeaderSize + 4 + len(payload)))
	resp, n, err := readFrame(conn)
	if err != nil {
		if errors.Is(err, ErrBadEnvelope) {
			return Envelope{}, err
		}
		return Envelope{}, fmt.Errorf("%w: stream type %d to %s", ErrTimeout, t, addr)
	}
	ep.msgsIn.Add(1)
	ep.bytesIn.Add(int64(n))
	if resp.MsgID != id || resp.Flags&FlagResponse == 0 {
		return Envelope{}, fmt.Errorf("%w: mismatched stream response", ErrBadEnvelope)
	}
	if resp.Type == TErr {
		return resp, fmt.Errorf("wire: remote error: %s", resp.Payload)
	}
	return resp, nil
}
