package wire

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	in := Envelope{
		Ver: Version, Type: TPut, Flags: FlagResponse,
		From: -7, MsgID: 0xDEADBEEFCAFE, Size: 12345,
		Payload: []byte("hello wire"),
	}
	out, err := Decode(in.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if out.Ver != in.Ver || out.Type != in.Type || out.Flags != in.Flags ||
		out.From != in.From || out.MsgID != in.MsgID || out.Size != in.Size ||
		!bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip mismatch: %+v != %+v", out, in)
	}
}

func TestEnvelopeDecodeRejects(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); !errors.Is(err, ErrBadEnvelope) {
		t.Fatalf("short frame: got %v, want ErrBadEnvelope", err)
	}
	bad := (Envelope{Ver: Version, Type: TPing}).Encode()
	bad[0] = 99
	if _, err := Decode(bad); !errors.Is(err, ErrBadEnvelope) {
		t.Fatalf("wrong version: got %v, want ErrBadEnvelope", err)
	}
}

func TestEnvelopeHeaderSize(t *testing.T) {
	if got := len((Envelope{}).Encode()); got != HeaderSize {
		t.Fatalf("empty envelope encodes to %d bytes, want HeaderSize=%d", got, HeaderSize)
	}
}

func newPair(t *testing.T) (*Endpoint, *Endpoint) {
	t.Helper()
	a, err := NewEndpoint(1, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("bind a: %v", err)
	}
	b, err := NewEndpoint(2, "127.0.0.1:0")
	if err != nil {
		a.Close()
		t.Fatalf("bind b: %v", err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestEndpointRequestResponse(t *testing.T) {
	a, b := newPair(t)
	b.Handle(func(env Envelope, _ *net.UDPAddr, reply func(Type, []byte)) {
		if env.Type == TPing {
			reply(TPong, append([]byte("pong:"), env.Payload...))
		}
	})
	resp, err := a.Request(b.Addr(), TPing, []byte("x1"))
	if err != nil {
		t.Fatalf("Request: %v", err)
	}
	if resp.Type != TPong || string(resp.Payload) != "pong:x1" {
		t.Fatalf("got type %d payload %q", resp.Type, resp.Payload)
	}
	if resp.From != b.ID() {
		t.Fatalf("response From = %d, want %d", resp.From, b.ID())
	}
}

func TestEndpointConcurrentRequestsMatchByMsgID(t *testing.T) {
	a, b := newPair(t)
	b.Handle(func(env Envelope, _ *net.UDPAddr, reply func(Type, []byte)) {
		// Echo after a handler-side shuffle delay so responses come back
		// out of order; MsgID matching must still pair them correctly.
		if env.Payload[0]%2 == 0 {
			time.Sleep(20 * time.Millisecond)
		}
		reply(TPong, env.Payload)
	})
	a.Timeout = 2 * time.Second
	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i byte) {
			resp, err := a.Request(b.Addr(), TPing, []byte{i})
			if err == nil && resp.Payload[0] != i {
				err = errors.New("response for wrong request")
			}
			errs <- err
		}(byte(i))
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
}

func TestEndpointRequestTimesOutWithoutResponder(t *testing.T) {
	a, b := newPair(t)
	// b installs no handler: requests arrive and vanish.
	a.Timeout = 50 * time.Millisecond
	start := time.Now()
	_, err := a.Request(b.Addr(), TPing, nil)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
	if el := time.Since(start); el < 40*time.Millisecond {
		t.Fatalf("returned after %v, before the deadline", el)
	}
	// The abandoned waiter must have been removed.
	a.mu.Lock()
	pending := len(a.inflight)
	a.mu.Unlock()
	if pending != 0 {
		t.Fatalf("%d inflight waiters leaked", pending)
	}
}

func TestEndpointDropRuleBlocksPeer(t *testing.T) {
	a, b := newPair(t)
	b.Handle(func(env Envelope, _ *net.UDPAddr, reply func(Type, []byte)) {
		reply(TPong, nil)
	})
	b.SetDrop(a.ID(), 1.0, 1)
	a.Timeout = 50 * time.Millisecond
	if _, err := a.Request(b.Addr(), TPing, nil); !errors.Is(err, ErrTimeout) {
		t.Fatalf("through a rate-1 drop rule: got %v, want ErrTimeout", err)
	}
	if b.Dropped() == 0 {
		t.Fatal("drop counter did not move")
	}
	// Clearing the rule restores the path.
	b.SetDrop(a.ID(), 0, 0)
	a.Timeout = time.Second
	if _, err := a.Request(b.Addr(), TPing, nil); err != nil {
		t.Fatalf("after clearing rule: %v", err)
	}
}

func TestEndpointRequestRetrySurvivesPartialLoss(t *testing.T) {
	a, b := newPair(t)
	b.Handle(func(env Envelope, _ *net.UDPAddr, reply func(Type, []byte)) {
		reply(TPong, nil)
	})
	// ~60% ingress loss: single attempts fail often, 6 retries all but
	// guarantee success.
	b.SetDrop(a.ID(), 0.6, 42)
	a.Timeout = 30 * time.Millisecond
	if _, err := a.RequestRetry(b.Addr(), TPing, nil, 6); err != nil {
		t.Fatalf("RequestRetry under 60%% loss: %v", err)
	}
}

func TestEndpointClosedRejects(t *testing.T) {
	a, b := newPair(t)
	a.Close()
	if _, err := a.Request(b.Addr(), TPing, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}
