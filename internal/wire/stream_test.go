package wire

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"
)

// bootEcho binds an endpoint whose handler echoes the request payload
// back as TAck — over whichever framing the request arrived on.
func bootEcho(t *testing.T, id int32) *Endpoint {
	t.Helper()
	ep, err := NewEndpoint(id, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ep.Close() })
	ep.Handle(func(env Envelope, _ *net.UDPAddr, reply func(Type, []byte)) {
		reply(TAck, env.Payload)
	})
	return ep
}

// TestStreamCarriesOversizeRequest: a request payload past the datagram
// ceiling must transparently ride the stream framing through the SAME
// RequestTimeout API and round-trip intact.
func TestStreamCarriesOversizeRequest(t *testing.T) {
	srv := bootEcho(t, 1)
	cli := bootEcho(t, 2)
	payload := bytes.Repeat([]byte{0xAB}, MaxDatagram+5000)
	payload[0], payload[len(payload)-1] = 1, 2
	resp, err := cli.RequestTimeout(srv.Addr(), TData, payload, 2*time.Second)
	if err != nil {
		t.Fatalf("oversize request: %v", err)
	}
	if !bytes.Equal(resp.Payload, payload) {
		t.Fatalf("oversize payload mangled: %d bytes back, want %d", len(resp.Payload), len(payload))
	}
}

// TestStreamCarriesOversizeResponse: a small request whose RESPONSE is
// oversize uses RequestStream explicitly (the requester knows the verb).
func TestStreamCarriesOversizeResponse(t *testing.T) {
	srv, err := NewEndpoint(3, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	big := bytes.Repeat([]byte{0xCD}, MaxDatagram*2)
	srv.Handle(func(env Envelope, _ *net.UDPAddr, reply func(Type, []byte)) {
		reply(TSnapOK, big)
	})
	cli := bootEcho(t, 4)
	resp, err := cli.RequestStream(srv.Addr(), TSnap, nil)
	if err != nil {
		t.Fatalf("stream request: %v", err)
	}
	if resp.Type != TSnapOK || !bytes.Equal(resp.Payload, big) {
		t.Fatalf("oversize response mangled: type %d, %d bytes", resp.Type, len(resp.Payload))
	}
}

// TestSmallPayloadStaysOnDatagrams: the automatic framing choice must
// not move regular verbs onto TCP (stream bytes only flow when asked).
func TestSmallPayloadStaysOnDatagrams(t *testing.T) {
	srv := bootEcho(t, 5)
	cli := bootEcho(t, 6)
	if _, err := cli.RequestTimeout(srv.Addr(), TPing, []byte("x"), time.Second); err != nil {
		t.Fatal(err)
	}
	// A UDP response routes through the inflight map; a stream response
	// never does. One request, one matched response = datagram path.
	in, out, _, _ := cli.Stats()
	if in != 1 || out != 1 {
		t.Fatalf("datagram counters in=%d out=%d, want 1/1", in, out)
	}
}

// TestStreamRespectsDropRules: ingress drop rules discard stream frames
// after they cross the wire, so the requester sees a timeout — loss
// physics must be identical across framings.
func TestStreamRespectsDropRules(t *testing.T) {
	srv := bootEcho(t, 7)
	cli := bootEcho(t, 8)
	srv.SetDrop(8, 1.0, 99)
	cli.Timeout = 200 * time.Millisecond
	payload := bytes.Repeat([]byte{1}, MaxDatagram+1)
	_, err := cli.RequestTimeout(srv.Addr(), TData, payload, 200*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("dropped stream frame returned %v, want ErrTimeout", err)
	}
	if srv.Dropped() == 0 {
		t.Fatal("drop rule did not count the stream frame")
	}
	// Clearing the rule heals the path.
	srv.SetDrop(8, 0, 0)
	if _, err := cli.RequestTimeout(srv.Addr(), TData, payload, 2*time.Second); err != nil {
		t.Fatalf("healed stream path: %v", err)
	}
}

// TestStreamTimeoutAgainstDeadPeer: a stream request to a closed
// endpoint fails within the deadline with ErrTimeout semantics.
func TestStreamTimeoutAgainstDeadPeer(t *testing.T) {
	srv := bootEcho(t, 9)
	addr := srv.Addr()
	srv.Close()
	cli := bootEcho(t, 10)
	start := time.Now()
	_, err := cli.requestStream(addr, TSnap, nil, 300*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("dead peer returned %v, want ErrTimeout", err)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("stream timeout did not respect the deadline")
	}
}

// TestRetryBackoffShape pins the RTO semantics: doubling per attempt,
// jitter within ±25%, capped after jitter.
func TestRetryBackoffShape(t *testing.T) {
	ep := bootEcho(t, 11)
	ep.RetryBase = 100 * time.Millisecond
	ep.RetryMax = 400 * time.Millisecond
	for attempt, want := range []time.Duration{100, 200, 400, 400, 400} {
		wantD := want * time.Millisecond
		for i := 0; i < 20; i++ {
			got := ep.retryBackoff(attempt)
			lo := time.Duration(float64(wantD) * 0.75)
			hi := time.Duration(float64(wantD) * 1.25)
			if hi > ep.RetryMax {
				hi = ep.RetryMax
			}
			if got < lo || got > hi {
				t.Fatalf("backoff(attempt=%d) = %v, want in [%v, %v]", attempt, got, lo, hi)
			}
		}
	}
	if got := ep.retryBackoff(200); got != ep.RetryMax {
		t.Fatalf("huge attempt count backoff = %v, want cap %v", got, ep.RetryMax)
	}
}

// TestRetryBackoffDesynchronizes: endpoints with different seeds draw
// different jitter schedules — the anti-retry-storm property.
func TestRetryBackoffDesynchronizes(t *testing.T) {
	a := bootEcho(t, 12)
	b := bootEcho(t, 13)
	a.RetryBase, a.RetryMax = 100*time.Millisecond, time.Second
	b.RetryBase, b.RetryMax = 100*time.Millisecond, time.Second
	a.SeedRetry(1)
	b.SeedRetry(2)
	same := 0
	for i := 0; i < 8; i++ {
		if a.retryBackoff(0) == b.retryBackoff(0) {
			same++
		}
	}
	if same == 8 {
		t.Fatal("differently seeded endpoints drew identical backoff schedules")
	}
	// Same seed, same schedule (determinism).
	a.SeedRetry(42)
	b.SeedRetry(42)
	for i := 0; i < 8; i++ {
		if x, y := a.retryBackoff(i%3), b.retryBackoff(i%3); x != y {
			t.Fatalf("same-seed backoff diverged: %v != %v", x, y)
		}
	}
}

// TestRequestRetryBacksOffBetweenAttempts: wall-clock proof the sleeps
// actually happen — total time for a failed retry run must include the
// inter-attempt backoff, not just the per-attempt deadlines.
func TestRequestRetryBacksOffBetweenAttempts(t *testing.T) {
	srv := bootEcho(t, 14)
	addr := srv.Addr()
	srv.Close()
	cli := bootEcho(t, 15)
	cli.Timeout = 50 * time.Millisecond
	cli.RetryBase = 80 * time.Millisecond
	cli.RetryMax = 160 * time.Millisecond
	start := time.Now()
	_, err := cli.RequestRetry(addr, TPing, nil, 2)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	// 3 attempts × 50ms deadlines + backoffs of ~80ms and ~160ms (±25%):
	// anything under the deadline-only floor means no backoff happened.
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond+(60+120)*time.Millisecond {
		t.Fatalf("retry run finished in %v — backoff sleeps missing", elapsed)
	}
}
