package wire

import (
	"fmt"
	"net"
	"sync"
	"time"

	"pass/internal/arch"
	"pass/internal/geo"
	"pass/internal/netsim"
	"pass/internal/xrand"
)

// Config parameterises a Transport.
type Config struct {
	// LossRate is the sender-side probability that a data frame is
	// poisoned with FlagLost (the bytes cross the socket but the receiver
	// discards them unacknowledged). Zero means a clean network.
	LossRate float64
	// Seed drives the loss stream deterministically.
	Seed uint64
	// AckTimeout is how long a Send waits for the receiver's TAck before
	// reporting the message lost. Defaults to DefaultRequestTimeout.
	AckTimeout time.Duration
}

// Transport implements arch.Network over real UDP sockets: one Endpoint
// per site, all on loopback, with every Send marshalling an envelope
// onto the wire and waiting for the receiver's acknowledgement. It is
// netsim's socket twin — same method surface, same fault sentinels
// (netsim.ErrSiteDown, ErrMsgLost, ErrPartitioned, ErrNoSuchSite), same
// Fail/Heal/Partition controls — so any arch.Model build function runs
// against it unchanged, which is exactly what the conformance bridge
// tests assert.
//
// Faults are layered the way a real deployment would see them:
//
//   - down sites and partitions are POLICY, checked before anything is
//     transmitted (a crashed process cannot be reached; a partition is
//     enforced at both cut edges), returning netsim's sentinels;
//   - packet loss is PHYSICS: the datagram really crosses the socket
//     carrying FlagLost, the receiver discards it, and the sender
//     discovers the loss by ack timeout — or, for seeded deterministic
//     loss, the sender poisons the frame itself and reports ErrMsgLost
//     with the transmit time already spent.
//
// Latencies returned are measured wall-clock, not simulated: loopback
// microseconds rather than geographic milliseconds. Models only compare
// and accumulate these, so the contract holds; experiments that need
// geographic time stay on netsim.
type Transport struct {
	cfg Config

	mu        sync.Mutex
	sites     []netsim.Site
	endpoints []*Endpoint
	down      map[netsim.SiteID]bool
	cuts      map[[2]netsim.SiteID]bool // normalised a<b partition edges
	linkLoss  map[[2]netsim.SiteID]float64
	loss      *xrand.Rand

	stats      netsim.Stats
	perSite    map[netsim.SiteID]*netsim.Stats
	statsMu    sync.Mutex
	ackTimeout time.Duration
}

var _ arch.Network = (*Transport)(nil)

// NewTransport creates an empty socket transport; add sites with
// AddSite or mirror a simulated topology with AddSites.
func NewTransport(cfg Config) *Transport {
	to := cfg.AckTimeout
	if to <= 0 {
		to = DefaultRequestTimeout
	}
	return &Transport{
		cfg:        cfg,
		down:       make(map[netsim.SiteID]bool),
		cuts:       make(map[[2]netsim.SiteID]bool),
		linkLoss:   make(map[[2]netsim.SiteID]float64),
		loss:       xrand.New(cfg.Seed ^ 0x9E3779B97F4A7C15),
		perSite:    make(map[netsim.SiteID]*netsim.Stats),
		ackTimeout: to,
	}
}

// AddSite binds a loopback UDP endpoint for a new site and returns its
// ID. IDs are dense from zero, matching netsim's allocation, so seeded
// schedules address the same logical sites on either backend.
func (t *Transport) AddSite(name string, loc geo.Point, zone string) netsim.SiteID {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := netsim.SiteID(len(t.sites))
	ep, err := NewEndpoint(int32(id), "127.0.0.1:0")
	if err != nil {
		panic(fmt.Sprintf("wire: bind site %q: %v", name, err))
	}
	ep.Timeout = t.ackTimeout
	// Data-plane handler: acknowledge every TData frame. FlagLost frames
	// never reach here — the endpoint's read loop discards them.
	ep.Handle(func(env Envelope, _ *net.UDPAddr, reply func(Type, []byte)) {
		if env.Type == TData {
			reply(TAck, nil)
		}
	})
	t.sites = append(t.sites, netsim.Site{ID: id, Name: name, Loc: loc, Zone: zone})
	t.endpoints = append(t.endpoints, ep)
	return id
}

// AddSites mirrors an existing site list (typically lifted from a
// netsim topology) onto sockets, preserving IDs.
func (t *Transport) AddSites(sites []netsim.Site) []netsim.SiteID {
	ids := make([]netsim.SiteID, 0, len(sites))
	for _, s := range sites {
		ids = append(ids, t.AddSite(s.Name, s.Loc, s.Zone))
	}
	return ids
}

// Close shuts every endpoint down.
func (t *Transport) Close() {
	t.mu.Lock()
	eps := append([]*Endpoint(nil), t.endpoints...)
	t.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
}

// ---- arch.Network ----

// Send transmits one data frame from one site's socket to another's and
// waits for the acknowledgement; the returned duration is measured
// wall-clock. Policy faults (unknown/down sites, partitions) return
// netsim's sentinels before anything is transmitted. Seeded loss poisons
// the frame with FlagLost — the bytes are spent, the receiver discards,
// and ErrMsgLost is returned with the transmit time elapsed.
func (t *Transport) Send(from, to netsim.SiteID, bytes int) (time.Duration, error) {
	t.mu.Lock()
	fromEp, toEp, err := t.route(from, to)
	lost := false
	if err == nil {
		rate := t.cfg.LossRate
		if lr, ok := t.linkLoss[edge(from, to)]; ok {
			rate = lr
		}
		lost = rate > 0 && t.loss.Float64() < rate
	}
	t.mu.Unlock()
	if err != nil {
		return 0, err
	}

	start := time.Now()
	payload := padding(bytes)
	if lost {
		_, _ = fromEp.Send(toEp.Addr(), TData, FlagLost, uint32(bytes), payload)
		el := time.Since(start)
		t.account(from, to, bytes, true)
		return el, netsim.ErrMsgLost
	}
	_, reqErr := fromEp.RequestTimeout(toEp.Addr(), TData, payload, t.ackTimeout)
	el := time.Since(start)
	if reqErr != nil {
		t.account(from, to, bytes, true)
		return el, netsim.ErrMsgLost
	}
	t.account(from, to, bytes, false)
	return el, nil
}

// Call performs a request/response exchange as two Sends, mirroring
// netsim's accounting: the response only travels if the request did.
func (t *Transport) Call(from, to netsim.SiteID, reqBytes, respBytes int) (time.Duration, error) {
	d1, err := t.Send(from, to, reqBytes)
	if err != nil {
		return d1, err
	}
	d2, err := t.Send(to, from, respBytes)
	return d1 + d2, err
}

// Latency estimates without transmitting. Real networks do this with
// historical RTT samples; over loopback a constant is as honest as any
// estimator, and models only use Latency for relative ordering.
func (t *Transport) Latency(from, to netsim.SiteID, bytes int) (time.Duration, error) {
	t.mu.Lock()
	_, _, err := t.route(from, to)
	t.mu.Unlock()
	if err != nil {
		return 0, err
	}
	return 50 * time.Microsecond, nil
}

// Site returns the site with the given ID.
func (t *Transport) Site(id netsim.SiteID) (netsim.Site, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) < 0 || int(id) >= len(t.sites) {
		return netsim.Site{}, netsim.ErrNoSuchSite
	}
	return t.sites[id], nil
}

// Sites returns all site IDs in order.
func (t *Transport) Sites() []netsim.SiteID {
	t.mu.Lock()
	defer t.mu.Unlock()
	ids := make([]netsim.SiteID, len(t.sites))
	for i := range t.sites {
		ids[i] = netsim.SiteID(i)
	}
	return ids
}

// NumSites returns the number of registered sites.
func (t *Transport) NumSites() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.sites)
}

// IsDown reports whether the site is marked failed.
func (t *Transport) IsDown(id netsim.SiteID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.down[id]
}

// Partitioned reports whether a partition cut separates a and b.
func (t *Transport) Partitioned(a, b netsim.SiteID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cuts[edge(a, b)]
}

// ---- fault controls (netsim-compatible) ----

// Fail marks a site down; sends to or from it return ErrSiteDown.
func (t *Transport) Fail(id netsim.SiteID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.down[id] = true
}

// Heal clears a site's failure.
func (t *Transport) Heal(id netsim.SiteID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.down, id)
}

// UpCount returns the number of live sites.
func (t *Transport) UpCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.sites) - len(t.down)
}

// Partition cuts the link between a and b in both directions.
func (t *Transport) Partition(a, b netsim.SiteID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cuts[edge(a, b)] = true
}

// HealPartition removes the cut between a and b.
func (t *Transport) HealPartition(a, b netsim.SiteID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.cuts, edge(a, b))
}

// SetLossRate changes the global seeded loss probability.
func (t *Transport) SetLossRate(rate float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cfg.LossRate = rate
}

// SetLinkLoss overrides the loss probability for one directed pair
// (applied symmetrically, like netsim's per-link override).
func (t *Transport) SetLinkLoss(a, b netsim.SiteID, rate float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if rate < 0 {
		delete(t.linkLoss, edge(a, b))
		return
	}
	t.linkLoss[edge(a, b)] = rate
}

// ---- stats ----

// Stats returns cumulative transport-wide traffic accounting.
func (t *Transport) Stats() netsim.Stats {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	return t.stats
}

// SiteStats returns one site's cumulative send accounting.
func (t *Transport) SiteStats(id netsim.SiteID) netsim.Stats {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	if s, ok := t.perSite[id]; ok {
		return *s
	}
	return netsim.Stats{}
}

// ResetStats zeroes all accounting.
func (t *Transport) ResetStats() {
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	t.stats = netsim.Stats{}
	t.perSite = make(map[netsim.SiteID]*netsim.Stats)
}

// ---- internals ----

// route validates a send under the fault policy. Caller holds t.mu.
func (t *Transport) route(from, to netsim.SiteID) (*Endpoint, *Endpoint, error) {
	if int(from) < 0 || int(from) >= len(t.sites) || int(to) < 0 || int(to) >= len(t.sites) {
		return nil, nil, netsim.ErrNoSuchSite
	}
	if t.down[from] || t.down[to] {
		return nil, nil, netsim.ErrSiteDown
	}
	if t.cuts[edge(from, to)] {
		return nil, nil, netsim.ErrPartitioned
	}
	return t.endpoints[from], t.endpoints[to], nil
}

func (t *Transport) account(from, to netsim.SiteID, bytes int, lost bool) {
	t.mu.Lock()
	wan := t.sites[from].Zone != t.sites[to].Zone
	t.mu.Unlock()
	t.statsMu.Lock()
	defer t.statsMu.Unlock()
	bump := func(s *netsim.Stats) {
		s.Messages++
		s.Bytes += int64(bytes)
		if wan {
			s.WANMsgs++
			s.WANBytes += int64(bytes)
		} else {
			s.LocalMsgs++
		}
		if lost {
			s.DroppedMsgs++
			s.DroppedBytes += int64(bytes)
		}
	}
	bump(&t.stats)
	ps, ok := t.perSite[from]
	if !ok {
		ps = &netsim.Stats{}
		t.perSite[from] = ps
	}
	bump(ps)
}

func edge(a, b netsim.SiteID) [2]netsim.SiteID {
	if a > b {
		a, b = b, a
	}
	return [2]netsim.SiteID{a, b}
}

// padding returns min(bytes, MaxPayload) filler bytes so the datagram
// physically carries (a bounded version of) the declared size.
func padding(bytes int) []byte {
	n := bytes
	if n > MaxPayload {
		n = MaxPayload
	}
	if n < 0 {
		n = 0
	}
	return make([]byte, n)
}
