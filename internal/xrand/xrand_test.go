package xrand

import "testing"

func TestDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 draws identical across different seeds", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.Next() == 0 && r.Next() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d", v)
		}
	}
	if r.Intn(0) != 0 || r.Intn(-5) != 0 {
		t.Fatal("Intn of non-positive n should be 0")
	}
}
