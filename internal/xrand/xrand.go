// Package xrand provides the deterministic pseudorandom generator shared
// by the simulation layers: geo (topology placement), netsim (packet-loss
// draws), and the architecture models (placement and corruption
// decisions). Experiments must be exactly reproducible — the same seed
// must yield the same topology, the same drop pattern, and therefore the
// same recall figures — so everything that needs randomness draws from
// this one xorshift* generator rather than math/rand's global state.
package xrand

// Rand is a tiny deterministic PRNG (xorshift*). Not safe for concurrent
// use; callers that share one across goroutines must serialize access.
type Rand struct{ state uint64 }

// New seeds a generator (a 0 seed is fixed up internally so the stream is
// never degenerate).
func New(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Next returns the next pseudorandom value.
func (r *Rand) Next() uint64 {
	r.state ^= r.state >> 12
	r.state ^= r.state << 25
	r.state ^= r.state >> 27
	return r.state * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Next() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Next()>>11) / float64(1<<53)
}
