// Package wal implements a single-file write-ahead log with CRC-protected
// records and torn-tail recovery.
//
// The paper's "Reliability" criterion (Section IV) demands that "the
// system must recover provenance metadata to a state consistent with its
// data after a system failure". The WAL is the mechanism: every mutation
// (tuple-set data plus its provenance record, as one atomic entry) is
// appended and optionally fsynced here before it is applied to the
// in-memory state, so a crash at any instant loses at most the suffix of
// un-synced appends — never produces a state where data exists without its
// provenance or vice versa.
//
// On-disk format:
//
//	file   := header record*
//	header := magic[8]
//	record := length u32 | crc32c(payload) u32 | payload
//
// Recovery scans records until the first one that is truncated or fails
// its checksum; everything from that point on is discarded (truncated
// away), which is the standard torn-write rule: an invalid record means
// the crash happened while writing it, and nothing after it can have been
// acknowledged.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

var magic = [8]byte{'P', 'A', 'S', 'S', 'W', 'A', 'L', '1'}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Errors.
var (
	ErrClosed   = errors.New("wal: log is closed")
	ErrNotWAL   = errors.New("wal: file is not a WAL (bad magic)")
	ErrTooLarge = errors.New("wal: record exceeds size limit")
	ErrCorrupt  = errors.New("wal: corrupt record")
)

// MaxRecordSize bounds a single record (64 MiB); larger appends are
// rejected rather than silently accepted and later mistaken for corruption.
const MaxRecordSize = 64 << 20

const headerSize = 8
const recordHeaderSize = 8 // length + crc

// Log is an append-only write-ahead log backed by one file. Not safe for
// concurrent use; callers serialize (the kvstore holds its own lock).
type Log struct {
	f      *os.File
	path   string
	size   int64 // current valid size (append offset)
	count  int64 // records in the log
	closed bool
	sync   bool
}

// Options configures Open.
type Options struct {
	// SyncOnAppend fsyncs after every append. Slower, but a successful
	// Append then guarantees durability. When false, callers use Sync()
	// at commit boundaries.
	SyncOnAppend bool
}

// Open opens (creating if necessary) the log at path, replays every valid
// record through fn, truncates any torn tail, and positions the log for
// appending. fn may be nil when the caller only wants the log opened.
// If fn returns an error, Open stops and returns it.
func Open(path string, opts Options, fn func(payload []byte) error) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l := &Log{f: f, path: path, sync: opts.SyncOnAppend}

	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: stat %s: %w", path, err)
	}
	if st.Size() == 0 {
		if _, err := f.Write(magic[:]); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: write header: %w", err)
		}
		l.size = headerSize
		return l, nil
	}
	if st.Size() < headerSize {
		f.Close()
		return nil, fmt.Errorf("%w: %s (only %d bytes)", ErrNotWAL, path, st.Size())
	}
	var hdr [headerSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: read header: %w", err)
	}
	if hdr != magic {
		f.Close()
		return nil, fmt.Errorf("%w: %s", ErrNotWAL, path)
	}

	// Replay.
	offset := int64(headerSize)
	var lenBuf [recordHeaderSize]byte
	for {
		_, err := f.ReadAt(lenBuf[:], offset)
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			break // clean end or torn header
		}
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: read record header: %w", err)
		}
		length := binary.LittleEndian.Uint32(lenBuf[0:4])
		wantCRC := binary.LittleEndian.Uint32(lenBuf[4:8])
		if length > MaxRecordSize {
			break // garbage length: treat as torn tail
		}
		payload := make([]byte, length)
		if _, err := f.ReadAt(payload, offset+recordHeaderSize); err != nil {
			break // torn payload
		}
		if crc32.Checksum(payload, crcTable) != wantCRC {
			break // corrupt (partially written) record
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				f.Close()
				return nil, err
			}
		}
		offset += recordHeaderSize + int64(length)
		l.count++
	}
	if offset < st.Size() {
		if err := f.Truncate(offset); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	l.size = offset
	return l, nil
}

// Append writes one record. With SyncOnAppend the record is durable when
// Append returns; otherwise call Sync at the commit boundary.
func (l *Log) Append(payload []byte) error {
	if l.closed {
		return ErrClosed
	}
	if len(payload) > MaxRecordSize {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	var hdr [recordHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	// Single writev-style call keeps header+payload adjacent; a crash can
	// still tear the pair, which recovery handles.
	buf := make([]byte, 0, len(hdr)+len(payload))
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	n, err := l.f.Write(buf)
	if err != nil {
		// A partial write leaves a torn record that recovery will trim.
		l.size += int64(n)
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(n)
	l.count++
	if l.sync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
	}
	return nil
}

// Reset truncates the log back to an empty (header-only) state and
// syncs. Callers invoke it immediately after checkpointing the log's
// contents into a snapshot (temp-file + rename), so a crash between the
// rename and the Reset leaves snapshot + full log — replaying the log on
// top of the snapshot must therefore be idempotent, which is the
// recovery contract durable nodes implement.
func (l *Log) Reset() error {
	if l.closed {
		return ErrClosed
	}
	if err := l.f.Truncate(headerSize); err != nil {
		return fmt.Errorf("wal: reset truncate: %w", err)
	}
	if _, err := l.f.Seek(headerSize, io.SeekStart); err != nil {
		return fmt.Errorf("wal: reset seek: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: reset sync: %w", err)
	}
	l.size = headerSize
	l.count = 0
	return nil
}

// Sync flushes appended records to stable storage.
func (l *Log) Sync() error {
	if l.closed {
		return ErrClosed
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// Size returns the current file size in bytes (header included).
func (l *Log) Size() int64 { return l.size }

// Count returns the number of valid records (replayed plus appended).
func (l *Log) Count() int64 { return l.count }

// Path returns the file path.
func (l *Log) Path() string { return l.path }

// Close syncs and closes the log.
func (l *Log) Close() error {
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return fmt.Errorf("wal: sync on close: %w", err)
	}
	return l.f.Close()
}

// Remove deletes a closed log's file. It is the caller's signal that the
// log's contents have been checkpointed elsewhere.
func (l *Log) Remove() error {
	if !l.closed {
		return errors.New("wal: remove before close")
	}
	return os.Remove(l.path)
}

// Replay reads every valid record of the log at path without opening it
// for writing, calling fn for each. It tolerates a torn tail (stops there)
// and returns the number of valid records. A missing file yields 0, nil.
func Replay(path string, fn func(payload []byte) error) (int64, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("wal: open %s: %w", path, err)
	}
	defer f.Close()
	var hdr [headerSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, fmt.Errorf("%w: %s", ErrNotWAL, path)
	}
	if hdr != magic {
		return 0, fmt.Errorf("%w: %s", ErrNotWAL, path)
	}
	var count int64
	var lenBuf [recordHeaderSize]byte
	for {
		if _, err := io.ReadFull(f, lenBuf[:]); err != nil {
			return count, nil // clean EOF or torn header
		}
		length := binary.LittleEndian.Uint32(lenBuf[0:4])
		wantCRC := binary.LittleEndian.Uint32(lenBuf[4:8])
		if length > MaxRecordSize {
			return count, nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return count, nil
		}
		if crc32.Checksum(payload, crcTable) != wantCRC {
			return count, nil
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return count, err
			}
		}
		count++
	}
}
