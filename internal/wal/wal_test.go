package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func openTemp(t *testing.T) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.wal")
	l, err := Open(path, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return l, path
}

func TestAppendAndReplay(t *testing.T) {
	l, path := openTemp(t)
	records := [][]byte{[]byte("one"), []byte("two"), {}, []byte("four")}
	for _, r := range records {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if l.Count() != 4 {
		t.Fatalf("count = %d, want 4", l.Count())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got [][]byte
	n, err := Replay(path, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("replayed %d records, want 4", n)
	}
	for i, r := range records {
		if !bytes.Equal(got[i], r) {
			t.Fatalf("record %d = %q, want %q", i, got[i], r)
		}
	}
}

func TestReopenContinuesAppending(t *testing.T) {
	l, path := openTemp(t)
	if err := l.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	var replayed []string
	l2, err := Open(path, Options{}, func(p []byte) error {
		replayed = append(replayed, string(p))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 1 || replayed[0] != "first" {
		t.Fatalf("replayed = %v", replayed)
	}
	if err := l2.Append([]byte("second")); err != nil {
		t.Fatal(err)
	}
	l2.Close()

	n, _ := Replay(path, nil)
	if n != 2 {
		t.Fatalf("total records = %d, want 2", n)
	}
}

func TestTornTailTruncated(t *testing.T) {
	l, path := openTemp(t)
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Simulate a crash mid-write: append a partial record (header claims
	// 100 bytes, only 3 present).
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{100, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 'x', 'y', 'z'})
	f.Close()

	var count int
	l2, err := Open(path, Options{}, func(p []byte) error { count++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if count != 5 {
		t.Fatalf("recovered %d records, want 5", count)
	}
	// The torn tail must have been truncated; appends go to a clean spot.
	if err := l2.Append([]byte("after-crash")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	n, _ := Replay(path, nil)
	if n != 6 {
		t.Fatalf("after recovery append: %d records, want 6", n)
	}
}

func TestCorruptPayloadStopsReplay(t *testing.T) {
	l, path := openTemp(t)
	l.Append([]byte("good-1"))
	l.Append([]byte("good-2-will-corrupt"))
	l.Append([]byte("good-3-unreachable"))
	l.Close()

	// Flip a byte inside record 2's payload.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	idx := bytes.Index(data, []byte("will-corrupt"))
	if idx < 0 {
		t.Fatal("marker not found")
	}
	data[idx] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var got []string
	n, err := Replay(path, func(p []byte) error {
		got = append(got, string(p))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Only the record before the corruption survives; corruption is
	// treated as the end of the log.
	if n != 1 || len(got) != 1 || got[0] != "good-1" {
		t.Fatalf("replay after corruption: n=%d got=%v", n, got)
	}
}

func TestBadMagicRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a.wal")
	if err := os.WriteFile(path, []byte("this is not a wal file!!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}, nil); !errors.Is(err, ErrNotWAL) {
		t.Fatalf("err = %v, want ErrNotWAL", err)
	}
	if _, err := Replay(path, nil); !errors.Is(err, ErrNotWAL) {
		t.Fatalf("replay err = %v, want ErrNotWAL", err)
	}
}

func TestReplayMissingFile(t *testing.T) {
	n, err := Replay(filepath.Join(t.TempDir(), "nope.wal"), nil)
	if err != nil || n != 0 {
		t.Fatalf("missing file: n=%d err=%v", n, err)
	}
}

func TestAppendAfterClose(t *testing.T) {
	l, _ := openTemp(t)
	l.Close()
	if err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync err = %v, want ErrClosed", err)
	}
	// Double close is fine.
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	l, _ := openTemp(t)
	defer l.Close()
	big := make([]byte, MaxRecordSize+1)
	if err := l.Append(big); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestRemove(t *testing.T) {
	l, path := openTemp(t)
	if err := l.Remove(); err == nil {
		t.Fatal("remove before close should fail")
	}
	l.Close()
	if err := l.Remove(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("file still exists after Remove")
	}
}

func TestSyncOnAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sync.wal")
	l, err := Open(path, Options{SyncOnAppend: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	n, _ := Replay(path, nil)
	if n != 1 {
		t.Fatalf("n = %d, want 1", n)
	}
}

func TestReplayCallbackError(t *testing.T) {
	l, path := openTemp(t)
	l.Append([]byte("a"))
	l.Append([]byte("b"))
	l.Close()
	wantErr := errors.New("stop")
	_, err := Replay(path, func(p []byte) error { return wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	// Open with failing callback also propagates.
	if _, err := Open(path, Options{}, func(p []byte) error { return wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("open err = %v, want %v", err, wantErr)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(records [][]byte) bool {
		dir := t.TempDir()
		path := filepath.Join(dir, "prop.wal")
		l, err := Open(path, Options{}, nil)
		if err != nil {
			return false
		}
		for _, r := range records {
			if len(r) > MaxRecordSize {
				continue
			}
			if err := l.Append(r); err != nil {
				return false
			}
		}
		l.Close()
		var got [][]byte
		_, err = Replay(path, func(p []byte) error {
			got = append(got, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			return false
		}
		i := 0
		for _, r := range records {
			if len(r) > MaxRecordSize {
				continue
			}
			if i >= len(got) || !bytes.Equal(got[i], r) {
				return false
			}
			i++
		}
		return i == len(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeTracksFile(t *testing.T) {
	l, path := openTemp(t)
	l.Append([]byte("hello"))
	l.Close()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if l.Size() != st.Size() {
		t.Fatalf("Size() = %d, file = %d", l.Size(), st.Size())
	}
}

func TestCountAndSizeAfterReopen(t *testing.T) {
	l, path := openTemp(t)
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte("abc")); err != nil {
			t.Fatal(err)
		}
	}
	size := l.Size()
	l.Close()
	l2, err := Open(path, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.Count() != 3 {
		t.Fatalf("count after reopen = %d, want 3", l2.Count())
	}
	if l2.Size() != size {
		t.Fatalf("size after reopen = %d, want %d", l2.Size(), size)
	}
	if l2.Path() != path {
		t.Fatalf("path = %q", l2.Path())
	}
}

func TestTornRecordHeaderAtTail(t *testing.T) {
	l, path := openTemp(t)
	l.Append([]byte("complete"))
	l.Close()
	// Append only 3 of the 8 header bytes: a torn header, not a torn
	// payload.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{9, 0, 0})
	f.Close()
	count := 0
	l2, err := Open(path, Options{}, func(p []byte) error { count++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if count != 1 {
		t.Fatalf("recovered %d records, want 1", count)
	}
	// The torn header was truncated; new appends replay cleanly.
	if err := l2.Append([]byte("next")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	if n, _ := Replay(path, nil); n != 2 {
		t.Fatalf("records after repair = %d, want 2", n)
	}
}

func TestGarbageLengthFieldTreatedAsTornTail(t *testing.T) {
	l, path := openTemp(t)
	l.Append([]byte("good"))
	l.Close()
	// A "record" whose length field is absurd (> MaxRecordSize) must be
	// treated as a torn tail, not allocated.
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	f.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3, 4})
	f.Close()
	n, err := Replay(path, nil)
	if err != nil || n != 1 {
		t.Fatalf("replay = %d, %v", n, err)
	}
	l2, err := Open(path, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	l2.Close()
}

func TestOpenEmptyFileIsNotWAL(t *testing.T) {
	// A file that exists but holds fewer bytes than the magic header.
	path := filepath.Join(t.TempDir(), "short.wal")
	if err := os.WriteFile(path, []byte("ab"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}, nil); !errors.Is(err, ErrNotWAL) {
		t.Fatalf("err = %v, want ErrNotWAL", err)
	}
	if _, err := Replay(path, nil); !errors.Is(err, ErrNotWAL) {
		t.Fatalf("replay err = %v, want ErrNotWAL", err)
	}
}

func TestResetEmptiesLogAndKeepsAppending(t *testing.T) {
	l, path := openTemp(t)
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if l.Count() != 0 || l.Size() != headerSize {
		t.Fatalf("after reset: count=%d size=%d", l.Count(), l.Size())
	}
	if err := l.Append([]byte("post-reset")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	n, err := Replay(path, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || string(got[0]) != "post-reset" {
		t.Fatalf("replayed %d records %q, want just post-reset", n, got)
	}
}

func TestResetAfterCloseRejected(t *testing.T) {
	l, _ := openTemp(t)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Reset(); err != ErrClosed {
		t.Fatalf("reset after close = %v, want ErrClosed", err)
	}
}
