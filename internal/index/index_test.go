package index

import (
	"fmt"
	"testing"
	"time"

	"pass/internal/kvstore"
	"pass/internal/provenance"
)

func testIndex(t *testing.T) (*Index, *kvstore.Store) {
	t.Helper()
	db, err := kvstore.Open(t.TempDir(), kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return New(db), db
}

func digestOf(b byte) (d [32]byte) {
	for i := range d {
		d[i] = b
	}
	return
}

// addRaw builds, indexes, and commits a raw record with the given attrs.
func addRaw(t *testing.T, ix *Index, db *kvstore.Store, seed byte, attrs ...provenance.Attribute) provenance.ID {
	t.Helper()
	rec, id, err := provenance.NewRaw(digestOf(seed), int64(seed)).Attrs(attrs...).CreatedAt(int64(seed)).Build()
	if err != nil {
		t.Fatal(err)
	}
	commit(t, ix, db, id, rec)
	return id
}

func addDerived(t *testing.T, ix *Index, db *kvstore.Store, seed byte, tool string, parents ...provenance.ID) provenance.ID {
	t.Helper()
	rec, id, err := provenance.NewDerived(digestOf(seed), int64(seed), tool, "1.0", parents...).CreatedAt(int64(seed)).Build()
	if err != nil {
		t.Fatal(err)
	}
	commit(t, ix, db, id, rec)
	return id
}

func commit(t *testing.T, ix *Index, db *kvstore.Store, id provenance.ID, rec *provenance.Record) {
	t.Helper()
	var b kvstore.Batch
	ix.AddToBatch(&b, id, rec)
	if err := db.Apply(&b); err != nil {
		t.Fatal(err)
	}
}

func TestLookupAttrExact(t *testing.T) {
	ix, db := testIndex(t)
	id1 := addRaw(t, ix, db, 1, provenance.Attr("zone", provenance.String("boston")))
	id2 := addRaw(t, ix, db, 2, provenance.Attr("zone", provenance.String("boston")))
	addRaw(t, ix, db, 3, provenance.Attr("zone", provenance.String("london")))

	got, err := ix.LookupAttr("zone", provenance.String("boston"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d ids, want 2", len(got))
	}
	want := map[provenance.ID]bool{id1: true, id2: true}
	for _, id := range got {
		if !want[id] {
			t.Fatalf("unexpected id %s", id.Short())
		}
	}
	// Missing value.
	got, _ = ix.LookupAttr("zone", provenance.String("tokyo"))
	if len(got) != 0 {
		t.Fatalf("tokyo should be empty, got %d", len(got))
	}
	// Value of a different kind does not match.
	got, _ = ix.LookupAttr("zone", provenance.BytesVal([]byte("boston")))
	if len(got) != 0 {
		t.Fatal("cross-kind lookup matched")
	}
}

func TestCountAttr(t *testing.T) {
	ix, db := testIndex(t)
	for i := byte(1); i <= 5; i++ {
		addRaw(t, ix, db, i, provenance.Attr("domain", provenance.String("traffic")))
	}
	n, err := ix.CountAttr("domain", provenance.String("traffic"))
	if err != nil || n != 5 {
		t.Fatalf("count = %d, %v", n, err)
	}
}

func TestLookupAttrRangeInt(t *testing.T) {
	ix, db := testIndex(t)
	var ids []provenance.ID
	for i := 0; i < 10; i++ {
		id := addRaw(t, ix, db, byte(i+1), provenance.Attr("level", provenance.Int64(int64(i*10))))
		ids = append(ids, id)
	}
	got, err := ix.LookupAttrRange("level", provenance.Int64(20), provenance.Int64(50))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 { // 20, 30, 40, 50
		t.Fatalf("range got %d ids, want 4", len(got))
	}
	// Negative range bounds work (order-preserving encoding).
	addRaw(t, ix, db, 100, provenance.Attr("level", provenance.Int64(-5)))
	got, _ = ix.LookupAttrRange("level", provenance.Int64(-10), provenance.Int64(0))
	if len(got) != 2 { // -5 and 0
		t.Fatalf("negative range got %d, want 2", len(got))
	}
	_ = ids
}

func TestLookupAttrRangeKindMismatch(t *testing.T) {
	ix, _ := testIndex(t)
	if _, err := ix.LookupAttrRange("k", provenance.Int64(1), provenance.String("z")); err == nil {
		t.Fatal("mixed-kind range accepted")
	}
}

func TestLookupAttrRangeFloat(t *testing.T) {
	ix, db := testIndex(t)
	for i, v := range []float64{-2.5, -0.1, 0, 0.5, 3.7, 100} {
		addRaw(t, ix, db, byte(i+1), provenance.Attr("temp", provenance.Float(v)))
	}
	got, err := ix.LookupAttrRange("temp", provenance.Float(-1), provenance.Float(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 { // -0.1, 0, 0.5
		t.Fatalf("float range got %d, want 3", len(got))
	}
}

func TestLookupAttrPrefix(t *testing.T) {
	ix, db := testIndex(t)
	addRaw(t, ix, db, 1, provenance.Attr("sensor-id", provenance.String("cam-17")))
	addRaw(t, ix, db, 2, provenance.Attr("sensor-id", provenance.String("cam-18")))
	addRaw(t, ix, db, 3, provenance.Attr("sensor-id", provenance.String("mag-03")))
	got, err := ix.LookupAttrPrefix("sensor-id", "cam-")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("prefix got %d, want 2", len(got))
	}
	// Empty prefix matches all string values for the key.
	got, _ = ix.LookupAttrPrefix("sensor-id", "")
	if len(got) != 3 {
		t.Fatalf("empty prefix got %d, want 3", len(got))
	}
}

func TestSyntheticAttributes(t *testing.T) {
	ix, db := testIndex(t)
	raw := addRaw(t, ix, db, 1)
	addDerived(t, ix, db, 2, "sharpen", raw)
	addDerived(t, ix, db, 3, "sharpen", raw)
	addDerived(t, ix, db, 4, "aggregate", raw)

	byTool, err := ix.LookupAttr(SynthTool, provenance.String("sharpen"))
	if err != nil || len(byTool) != 2 {
		t.Fatalf("tool lookup = %d, %v", len(byTool), err)
	}
	byType, err := ix.LookupAttr(SynthType, provenance.String("raw"))
	if err != nil || len(byType) != 1 {
		t.Fatalf("type lookup = %d, %v", len(byType), err)
	}
}

func TestTimeOverlap(t *testing.T) {
	ix, db := testIndex(t)
	hour := time.Hour.Nanoseconds()
	mk := func(seed byte, start, end int64) provenance.ID {
		return addRaw(t, ix, db, seed,
			provenance.Attr(provenance.KeyStart, provenance.TimeVal(time.Unix(0, start))),
			provenance.Attr(provenance.KeyEnd, provenance.TimeVal(time.Unix(0, end))))
	}
	a := mk(1, 0, hour)        // [0h, 1h]
	b := mk(2, hour, 2*hour)   // [1h, 2h]
	c := mk(3, 5*hour, 6*hour) // [5h, 6h]

	got, err := ix.LookupTimeOverlap(hour/2, hour+hour/2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("overlap got %d, want 2 (a and b)", len(got))
	}
	set := map[provenance.ID]bool{}
	for _, id := range got {
		set[id] = true
	}
	if !set[a] || !set[b] || set[c] {
		t.Fatal("wrong overlap membership")
	}
	// Point query at a boundary hits both neighbors (closed intervals).
	got, _ = ix.LookupTimeOverlap(hour, hour)
	if len(got) != 2 {
		t.Fatalf("boundary point got %d, want 2", len(got))
	}
	// Empty window.
	got, _ = ix.LookupTimeOverlap(10*hour, 11*hour)
	if len(got) != 0 {
		t.Fatalf("disjoint window got %d", len(got))
	}
	// Inverted query returns nothing.
	got, _ = ix.LookupTimeOverlap(5, 1)
	if got != nil {
		t.Fatal("inverted window returned results")
	}
}

func TestTimeOverlapLongInterval(t *testing.T) {
	// A long-lived record must still be found by a late, short query —
	// this exercises the max-duration scan bound.
	ix, db := testIndex(t)
	day := 24 * time.Hour.Nanoseconds()
	long := addRaw(t, ix, db, 1,
		provenance.Attr(provenance.KeyStart, provenance.TimeVal(time.Unix(0, 0))),
		provenance.Attr(provenance.KeyEnd, provenance.TimeVal(time.Unix(0, 30*day))))
	got, err := ix.LookupTimeOverlap(29*day, 29*day+1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != long {
		t.Fatalf("long interval missed: %d results", len(got))
	}
	if ix.MaxInterval() != 30*day {
		t.Fatalf("MaxInterval = %d", ix.MaxInterval())
	}
}

func TestParentsChildren(t *testing.T) {
	ix, db := testIndex(t)
	a := addRaw(t, ix, db, 1)
	b := addRaw(t, ix, db, 2)
	c := addDerived(t, ix, db, 3, "join", a, b)

	parents, err := ix.Parents(c)
	if err != nil || len(parents) != 2 {
		t.Fatalf("parents = %d, %v", len(parents), err)
	}
	kidsA, err := ix.Children(a)
	if err != nil || len(kidsA) != 1 || kidsA[0] != c {
		t.Fatalf("children(a) = %v, %v", kidsA, err)
	}
	// Leaf has no children; root has no parents.
	if kids, _ := ix.Children(c); len(kids) != 0 {
		t.Fatal("leaf has children")
	}
	if ps, _ := ix.Parents(a); len(ps) != 0 {
		t.Fatal("root has parents")
	}
}

// buildChain makes a linear derivation chain of the given depth and
// returns all ids, root first.
func buildChain(t *testing.T, ix *Index, db *kvstore.Store, depth int) []provenance.ID {
	t.Helper()
	ids := make([]provenance.ID, 0, depth)
	root := addRaw(t, ix, db, 1)
	ids = append(ids, root)
	for i := 1; i < depth; i++ {
		ids = append(ids, addDerived(t, ix, db, byte(i+1), "step", ids[i-1]))
	}
	return ids
}

func TestAncestorsChain(t *testing.T) {
	ix, db := testIndex(t)
	ids := buildChain(t, ix, db, 10)
	leaf := ids[len(ids)-1]

	anc, err := ix.Ancestors(leaf, NoLimit)
	if err != nil {
		t.Fatal(err)
	}
	if len(anc) != 9 {
		t.Fatalf("ancestors = %d, want 9", len(anc))
	}
	// Depth-limited.
	anc, err = ix.Ancestors(leaf, 3)
	if err != nil || len(anc) != 3 {
		t.Fatalf("depth-3 ancestors = %d, %v", len(anc), err)
	}
	// Naive agrees with memoized.
	naive, err := ix.NaiveAncestors(leaf, NoLimit)
	if err != nil || len(naive) != 9 {
		t.Fatalf("naive = %d, %v", len(naive), err)
	}
}

func TestDescendantsChain(t *testing.T) {
	ix, db := testIndex(t)
	ids := buildChain(t, ix, db, 10)
	root := ids[0]
	desc, err := ix.Descendants(root, NoLimit)
	if err != nil || len(desc) != 9 {
		t.Fatalf("descendants = %d, %v", len(desc), err)
	}
	desc, err = ix.Descendants(root, 2)
	if err != nil || len(desc) != 2 {
		t.Fatalf("depth-2 descendants = %d, %v", len(desc), err)
	}
}

func TestClosureOnDAGWithSharing(t *testing.T) {
	// Diamond: d derives from b and c, both derive from a.
	ix, db := testIndex(t)
	a := addRaw(t, ix, db, 1)
	b := addDerived(t, ix, db, 2, "f", a)
	c := addDerived(t, ix, db, 3, "g", a)
	d := addDerived(t, ix, db, 4, "join", b, c)

	anc, err := ix.Ancestors(d, NoLimit)
	if err != nil {
		t.Fatal(err)
	}
	if len(anc) != 3 { // a, b, c exactly once
		t.Fatalf("diamond ancestors = %d, want 3", len(anc))
	}
	desc, err := ix.Descendants(a, NoLimit)
	if err != nil || len(desc) != 3 {
		t.Fatalf("diamond descendants = %d, %v", len(desc), err)
	}
	_ = d
}

func TestDescendantCacheInvalidation(t *testing.T) {
	ix, db := testIndex(t)
	a := addRaw(t, ix, db, 1)
	desc, _ := ix.Descendants(a, NoLimit)
	if len(desc) != 0 {
		t.Fatalf("initial descendants = %d", len(desc))
	}
	// New derivation must appear despite the earlier cached answer.
	addDerived(t, ix, db, 2, "f", a)
	desc, _ = ix.Descendants(a, NoLimit)
	if len(desc) != 1 {
		t.Fatalf("descendants after insert = %d, want 1 (stale cache?)", len(desc))
	}
}

func TestAncestorCachePersistsAcrossInserts(t *testing.T) {
	ix, db := testIndex(t)
	ids := buildChain(t, ix, db, 5)
	leaf := ids[len(ids)-1]
	if _, err := ix.Ancestors(leaf, NoLimit); err != nil {
		t.Fatal(err)
	}
	ancEntries, _ := ix.CacheStats()
	if ancEntries == 0 {
		t.Fatal("ancestor cache empty after query")
	}
	// Inserting new records must NOT clear ancestor cache (immutable sets).
	addRaw(t, ix, db, 99)
	ancEntries2, _ := ix.CacheStats()
	if ancEntries2 < ancEntries {
		t.Fatal("ancestor cache was invalidated by an unrelated insert")
	}
}

func TestReachableAndRoots(t *testing.T) {
	ix, db := testIndex(t)
	a := addRaw(t, ix, db, 1)
	b := addRaw(t, ix, db, 2)
	c := addDerived(t, ix, db, 3, "merge", a, b)
	d := addDerived(t, ix, db, 4, "filter", c)

	ok, err := ix.Reachable(d, a)
	if err != nil || !ok {
		t.Fatalf("Reachable(d, a) = %v, %v", ok, err)
	}
	ok, _ = ix.Reachable(a, d)
	if ok {
		t.Fatal("reachability inverted")
	}
	roots, err := ix.Roots(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 2 {
		t.Fatalf("roots = %d, want 2", len(roots))
	}
	// A raw record has no roots (excluding itself).
	roots, _ = ix.Roots(a)
	if len(roots) != 0 {
		t.Fatalf("roots of raw = %d", len(roots))
	}
}

func TestIntersectUnion(t *testing.T) {
	mk := func(bs ...byte) []provenance.ID {
		out := make([]provenance.ID, len(bs))
		for i, b := range bs {
			out[i] = provenance.ID(digestOf(b))
		}
		return out
	}
	got := Intersect(mk(1, 2, 3), mk(2, 3, 4), mk(3, 2, 9))
	if len(got) != 2 {
		t.Fatalf("intersect = %d, want 2", len(got))
	}
	if len(Intersect(mk(1), mk(2))) != 0 {
		t.Fatal("disjoint intersect nonempty")
	}
	if Intersect() != nil {
		t.Fatal("empty intersect should be nil")
	}
	u := Union(mk(1, 2), mk(2, 3))
	if len(u) != 3 {
		t.Fatalf("union = %d, want 3", len(u))
	}
}

func TestIndexSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := kvstore.Open(dir, kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ix := New(db)
	rec, id, _ := provenance.NewRaw(digestOf(7), 7).
		Attr("zone", provenance.String("boston")).
		Attr(provenance.KeyStart, provenance.TimeVal(time.Unix(10, 0))).
		Attr(provenance.KeyEnd, provenance.TimeVal(time.Unix(20, 0))).
		CreatedAt(7).Build()
	var b kvstore.Batch
	ix.AddToBatch(&b, id, rec)
	if err := db.Apply(&b); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := kvstore.Open(dir, kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	ix2 := New(db2)
	got, err := ix2.LookupAttr("zone", provenance.String("boston"))
	if err != nil || len(got) != 1 || got[0] != id {
		t.Fatalf("after reopen: %v, %v", got, err)
	}
	// Max duration bound must also persist (overlap still works).
	hits, err := ix2.LookupTimeOverlap(time.Unix(19, 0).UnixNano(), time.Unix(25, 0).UnixNano())
	if err != nil || len(hits) != 1 {
		t.Fatalf("overlap after reopen = %d, %v", len(hits), err)
	}
}

func TestMemoizedFasterThanNaiveOnSharedDAG(t *testing.T) {
	// Build a wide DAG: many leaves sharing one deep chain; memoized
	// ancestors of all leaves should do far less adjacency work. Here we
	// just verify correctness of both on the same structure.
	ix, db := testIndex(t)
	chain := buildChain(t, ix, db, 30)
	top := chain[len(chain)-1]
	var leaves []provenance.ID
	for i := 0; i < 20; i++ {
		leaves = append(leaves, addDerived(t, ix, db, byte(100+i), "leaf", top))
	}
	for _, leaf := range leaves {
		memo, err := ix.Ancestors(leaf, NoLimit)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := ix.NaiveAncestors(leaf, NoLimit)
		if err != nil {
			t.Fatal(err)
		}
		if len(memo) != len(naive) || len(memo) != 30 {
			t.Fatalf("memo=%d naive=%d want 30", len(memo), len(naive))
		}
	}
}

func TestManyAttributesOneRecord(t *testing.T) {
	ix, db := testIndex(t)
	attrs := make([]provenance.Attribute, 0, 50)
	for i := 0; i < 50; i++ {
		attrs = append(attrs, provenance.Attr(fmt.Sprintf("k%02d", i), provenance.Int64(int64(i))))
	}
	id := addRaw(t, ix, db, 1, attrs...)
	for i := 0; i < 50; i++ {
		got, err := ix.LookupAttr(fmt.Sprintf("k%02d", i), provenance.Int64(int64(i)))
		if err != nil || len(got) != 1 || got[0] != id {
			t.Fatalf("k%02d: %v %v", i, got, err)
		}
	}
}

func TestLookupAttrRangeInvertedBounds(t *testing.T) {
	ix, db := testIndex(t)
	addRaw(t, ix, db, 1, provenance.Attr("level", provenance.Int64(5)))
	got, err := ix.LookupAttrRange("level", provenance.Int64(10), provenance.Int64(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("inverted range returned %d ids", len(got))
	}
}

func TestAncestrySurvivesCompaction(t *testing.T) {
	// The ancestry adjacency lives in the LSM keyspace; a full compaction
	// (which drops tombstones and rewrites tables) must not disturb it.
	ix, db := testIndex(t)
	ids := buildChain(t, ix, db, 12)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	anc, err := ix.NaiveAncestors(ids[len(ids)-1], NoLimit)
	if err != nil || len(anc) != 11 {
		t.Fatalf("ancestors after compaction = %d, %v", len(anc), err)
	}
	kids, err := ix.Children(ids[0])
	if err != nil || len(kids) != 1 {
		t.Fatalf("children after compaction = %d, %v", len(kids), err)
	}
}

func TestRangeEqualsFilterProperty(t *testing.T) {
	// Property: LookupAttrRange(lo,hi) == brute-force filter of every
	// indexed value in [lo,hi], for random int corpora and bounds.
	ix, db := testIndex(t)
	rngState := uint64(424242)
	next := func() uint64 {
		rngState ^= rngState >> 12
		rngState ^= rngState << 25
		rngState ^= rngState >> 27
		return rngState * 0x2545F4914F6CDD1D
	}
	vals := make(map[provenance.ID]int64)
	for i := 0; i < 80; i++ {
		v := int64(next()%2001) - 1000
		id := addRaw(t, ix, db, byte(i+1), provenance.Attr("level", provenance.Int64(v)))
		vals[id] = v
	}
	for trial := 0; trial < 50; trial++ {
		lo := int64(next()%2001) - 1000
		hi := lo + int64(next()%500)
		got, err := ix.LookupAttrRange("level", provenance.Int64(lo), provenance.Int64(hi))
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, v := range vals {
			if v >= lo && v <= hi {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("trial %d [%d,%d]: got %d, want %d", trial, lo, hi, len(got), want)
		}
		for _, id := range got {
			if v := vals[id]; v < lo || v > hi {
				t.Fatalf("trial %d: id with value %d outside [%d,%d]", trial, v, lo, hi)
			}
		}
	}
}

func TestHasAttrPointProbe(t *testing.T) {
	ix, db := testIndex(t)
	id1 := addRaw(t, ix, db, 1, provenance.Attr("zone", provenance.String("boston")))
	id2 := addRaw(t, ix, db, 2, provenance.Attr("zone", provenance.String("boston")))

	for _, id := range []provenance.ID{id1, id2} {
		ok, err := ix.HasAttr("zone", provenance.String("boston"), id)
		if err != nil || !ok {
			t.Fatalf("HasAttr(zone=boston, %x) = %v, %v; want true", id[:4], ok, err)
		}
	}
	// Wrong value and wrong id must both miss.
	if ok, _ := ix.HasAttr("zone", provenance.String("tokyo"), id1); ok {
		t.Fatal("HasAttr matched a value never indexed")
	}
	var id3 provenance.ID
	id3[0] = 99
	if ok, _ := ix.HasAttr("zone", provenance.String("boston"), id3); ok {
		t.Fatal("HasAttr matched an id never indexed")
	}
	// Agreement with the scan-based lookup on the shared value.
	ids, err := ix.LookupAttr("zone", provenance.String("boston"))
	if err != nil || len(ids) != 2 {
		t.Fatalf("LookupAttr = %d ids, %v; want 2", len(ids), err)
	}
}
