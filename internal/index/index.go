// Package index implements the secondary index structures that Section
// II-B of the paper calls for: "the indexing structures in sensor data
// storage systems must provide for efficient lookups in many dimensions,
// as well as efficient recursive or transitive queries. Simple relational
// or XML-based name-to-value schemes are not sufficient and will not work
// well unless augmented with other structures."
//
// Three structures live in one kvstore keyspace, all built from
// order-preserving composite keys (package keyenc):
//
//   - the inverted attribute index: (attribute key, typed value, record
//     ID) → ∅, supporting exact and range lookups in any dimension;
//   - the time-interval index: (window start, record ID) → window end,
//     plus a persisted maximum-duration bound, supporting bounded-scan
//     interval-overlap queries;
//   - the ancestry adjacency: (parent, child) and (child, parent) edges,
//     supporting forward and backward traversal without loading records.
//
// Transitive closure (closure.go) layers memoization on top of the
// adjacency: ancestor sets are immutable in an append-only provenance
// store, so they are cached permanently; descendant sets grow, so their
// cache is epoch-invalidated on every insert.
//
// Key namespaces (first bytes of every key):
//
//	ia  inverted attribute index
//	it  time-interval index
//	ic  ancestry, parent→child
//	ir  ancestry, child→parent
//	im  index metadata (max interval duration)
package index

import (
	"encoding/binary"
	"fmt"
	"sync"

	"pass/internal/keyenc"
	"pass/internal/kvstore"
	"pass/internal/provenance"
)

// Namespace prefixes. Two bytes keep them disjoint from the core's "p/"
// and "d/" record/data namespaces.
var (
	nsAttr = []byte("ia")
	nsTime = []byte("it")
	nsFwd  = []byte("ic")
	nsRev  = []byte("ir")
	nsMeta = []byte("im")
)

const idLen = 32

// Index maintains all secondary index structures over a shared store.
// Safe for concurrent use.
type Index struct {
	db *kvstore.Store

	mu       sync.Mutex
	maxDur   int64 // largest (end-start) seen in the time index
	maxDurOK bool  // loaded from disk?

	closure *closureCache
}

// New returns an index over db. Multiple Index instances over one store
// are not supported (the duration bound would race).
func New(db *kvstore.Store) *Index {
	return &Index{db: db, closure: newClosureCache()}
}

// encodeValue renders a typed value with keyenc so that index order equals
// logical order per kind.
func encodeValue(buf []byte, v provenance.Value) []byte {
	switch v.Kind {
	case provenance.KindString:
		return keyenc.AppendString(buf, v.Str)
	case provenance.KindInt:
		return keyenc.AppendInt64(buf, v.Int)
	case provenance.KindFloat:
		return keyenc.AppendFloat(buf, v.Float)
	case provenance.KindTime:
		return keyenc.AppendTime(buf, v.Int)
	case provenance.KindBool:
		return keyenc.AppendBool(buf, v.Int != 0)
	case provenance.KindBytes:
		return keyenc.AppendBytes(buf, v.Bytes)
	default:
		// Validated records never reach here; encode defensively.
		return keyenc.AppendBytes(buf, []byte{byte(v.Kind)})
	}
}

// attrPrefix returns the scan prefix for one (key, value) pair.
func attrPrefix(key string, v provenance.Value) []byte {
	buf := append([]byte(nil), nsAttr...)
	buf = keyenc.AppendString(buf, key)
	return encodeValue(buf, v)
}

// attrKeyPrefix returns the scan prefix covering every value of key.
func attrKeyPrefix(key string) []byte {
	buf := append([]byte(nil), nsAttr...)
	return keyenc.AppendString(buf, key)
}

// Synthetic attributes indexed for every record, so queries can select on
// record type and derivation tool ("find tuple sets handled by a
// particular postprocessing program", Section II-B) without a dedicated
// code path.
const (
	SynthType = "~type"
	SynthTool = "~tool"
)

// AddToBatch appends every index entry for (id, rec) to b. The caller
// commits b atomically together with the record itself, so the index can
// never disagree with the record store after a crash.
func (ix *Index) AddToBatch(b *kvstore.Batch, id provenance.ID, rec *provenance.Record) {
	// Inverted attribute entries.
	for _, a := range rec.Attributes {
		k := attrPrefix(a.Key, a.Value)
		k = append(k, id[:]...)
		b.Put(k, nil)
	}
	// Synthetic attributes.
	k := attrPrefix(SynthType, provenance.String(rec.Type.String()))
	b.Put(append(k, id[:]...), nil)
	if rec.Tool != "" {
		k = attrPrefix(SynthTool, provenance.String(rec.Tool))
		b.Put(append(k, id[:]...), nil)
	}
	// Time-interval entry.
	if start, end, ok := rec.TimeRange(); ok && end >= start {
		tk := append([]byte(nil), nsTime...)
		tk = keyenc.AppendTime(tk, start)
		tk = append(tk, id[:]...)
		var val [8]byte
		binary.LittleEndian.PutUint64(val[:], uint64(end))
		b.Put(tk, val[:])
		ix.noteDuration(b, end-start)
	}
	// Ancestry edges, both directions.
	for _, p := range rec.Parents {
		fk := append([]byte(nil), nsFwd...)
		fk = append(fk, p[:]...)
		fk = append(fk, id[:]...)
		b.Put(fk, nil)
		rk := append([]byte(nil), nsRev...)
		rk = append(rk, id[:]...)
		rk = append(rk, p[:]...)
		b.Put(rk, nil)
	}
	// New edges can extend descendant sets of existing records.
	ix.closure.invalidateDescendants()
}

// noteDuration maintains the persisted max interval duration used to
// bound overlap scans.
func (ix *Index) noteDuration(b *kvstore.Batch, dur int64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.loadMaxDurLocked()
	if dur > ix.maxDur {
		ix.maxDur = dur
		var val [8]byte
		binary.LittleEndian.PutUint64(val[:], uint64(dur))
		b.Put(append([]byte(nil), nsMeta...), val[:])
	}
}

func (ix *Index) loadMaxDurLocked() {
	if ix.maxDurOK {
		return
	}
	ix.maxDurOK = true
	v, err := ix.db.Get(nsMeta)
	if err == nil && len(v) == 8 {
		ix.maxDur = int64(binary.LittleEndian.Uint64(v))
	}
}

// MaxInterval returns the largest indexed window duration.
func (ix *Index) MaxInterval() int64 {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.loadMaxDurLocked()
	return ix.maxDur
}

func idFromKeySuffix(key []byte) (provenance.ID, bool) {
	var id provenance.ID
	if len(key) < idLen {
		return id, false
	}
	copy(id[:], key[len(key)-idLen:])
	return id, true
}

// LookupAttr returns the IDs of all records carrying exactly (key, v),
// in ID order (the index's storage order for one value).
func (ix *Index) LookupAttr(key string, v provenance.Value) ([]provenance.ID, error) {
	var out []provenance.ID
	err := ix.db.ScanPrefix(attrPrefix(key, v), func(k, _ []byte) bool {
		if id, ok := idFromKeySuffix(k); ok {
			out = append(out, id)
		}
		return true
	})
	return out, err
}

// HasAttr reports whether the index holds an entry for exactly
// (key, v, id) — a point probe on the composite index key. Consistency
// audits use this instead of LookupAttr: fetching every ID under a
// popular value just to find one membership turns an O(log n) check into
// an O(n) scan, and the whole audit into O(n²).
func (ix *Index) HasAttr(key string, v provenance.Value, id provenance.ID) (bool, error) {
	k := attrPrefix(key, v)
	k = append(k, id[:]...)
	return ix.db.Has(k)
}

// CountAttr returns the number of records carrying exactly (key, v).
func (ix *Index) CountAttr(key string, v provenance.Value) (int, error) {
	n := 0
	err := ix.db.ScanPrefix(attrPrefix(key, v), func(_, _ []byte) bool {
		n++
		return true
	})
	return n, err
}

// LookupAttrRange returns IDs of records whose value for key lies in
// [lo, hi] (inclusive). lo and hi must be the same kind; mixed kinds
// return an error because no meaningful order exists across kinds.
func (ix *Index) LookupAttrRange(key string, lo, hi provenance.Value) ([]provenance.ID, error) {
	if lo.Kind != hi.Kind {
		return nil, fmt.Errorf("index: range bounds have different kinds (%v vs %v)", lo.Kind, hi.Kind)
	}
	start := attrPrefix(key, lo)
	// End: everything <= hi, i.e. scan to PrefixEnd of hi's encoding
	// (hi's prefix covers all IDs under that exact value).
	end := keyenc.PrefixEnd(attrPrefix(key, hi))
	var out []provenance.ID
	err := ix.db.Scan(start, end, func(k, _ []byte) bool {
		if id, ok := idFromKeySuffix(k); ok {
			out = append(out, id)
		}
		return true
	})
	return out, err
}

// LookupAttrPrefix returns IDs of records having a string value for key
// that starts with prefix.
func (ix *Index) LookupAttrPrefix(key, prefix string) ([]provenance.ID, error) {
	// Scan from the encoding of prefix; stop when keys no longer begin
	// with the unterminated encoding of prefix.
	base := attrKeyPrefix(key)
	full := keyenc.AppendString(append([]byte(nil), base...), prefix)
	// Drop the string terminator (last 2 bytes) to get the open prefix.
	open := full[:len(full)-2]
	var out []provenance.ID
	err := ix.db.Scan(open, keyenc.PrefixEnd(open), func(k, _ []byte) bool {
		if id, ok := idFromKeySuffix(k); ok {
			out = append(out, id)
		}
		return true
	})
	return out, err
}

// LookupTimeOverlap returns IDs of records whose [t-start, t-end] window
// overlaps [qs, qe]. The scan is bounded below by qs minus the maximum
// indexed duration — the classic trick that turns an interval index on
// start times into an overlap query without an interval tree.
func (ix *Index) LookupTimeOverlap(qs, qe int64) ([]provenance.ID, error) {
	if qe < qs {
		return nil, nil
	}
	maxDur := ix.MaxInterval()
	lo := append([]byte(nil), nsTime...)
	scanStart := qs - maxDur
	if scanStart > qs { // underflow guard
		scanStart = qs
	}
	lo = keyenc.AppendTime(lo, scanStart)
	hi := append([]byte(nil), nsTime...)
	hi = keyenc.AppendTime(hi, qe)
	end := keyenc.PrefixEnd(hi)

	var out []provenance.ID
	err := ix.db.Scan(lo, end, func(k, v []byte) bool {
		if len(v) != 8 {
			return true
		}
		recEnd := int64(binary.LittleEndian.Uint64(v))
		if recEnd < qs {
			return true // started early, ended before the query window
		}
		if id, ok := idFromKeySuffix(k); ok {
			out = append(out, id)
		}
		return true
	})
	return out, err
}

// Children returns the direct children (records derived from or
// annotating id).
func (ix *Index) Children(id provenance.ID) ([]provenance.ID, error) {
	prefix := append(append([]byte(nil), nsFwd...), id[:]...)
	var out []provenance.ID
	err := ix.db.ScanPrefix(prefix, func(k, _ []byte) bool {
		if child, ok := idFromKeySuffix(k); ok {
			out = append(out, child)
		}
		return true
	})
	return out, err
}

// Parents returns the direct parents of id.
func (ix *Index) Parents(id provenance.ID) ([]provenance.ID, error) {
	prefix := append(append([]byte(nil), nsRev...), id[:]...)
	var out []provenance.ID
	err := ix.db.ScanPrefix(prefix, func(k, _ []byte) bool {
		if parent, ok := idFromKeySuffix(k); ok {
			out = append(out, parent)
		}
		return true
	})
	return out, err
}

// Intersect returns the IDs present in every input slice. Inputs need not
// be sorted; output order follows the smallest input.
func Intersect(lists ...[]provenance.ID) []provenance.ID {
	if len(lists) == 0 {
		return nil
	}
	smallest := 0
	for i, l := range lists {
		if len(l) < len(lists[smallest]) {
			smallest = i
		}
	}
	if len(lists[smallest]) == 0 {
		return nil
	}
	sets := make([]map[provenance.ID]struct{}, 0, len(lists)-1)
	for i, l := range lists {
		if i == smallest {
			continue
		}
		set := make(map[provenance.ID]struct{}, len(l))
		for _, id := range l {
			set[id] = struct{}{}
		}
		sets = append(sets, set)
	}
	var out []provenance.ID
	for _, cand := range lists[smallest] {
		inAll := true
		for _, set := range sets {
			if _, ok := set[cand]; !ok {
				inAll = false
				break
			}
		}
		if inAll {
			out = append(out, cand)
		}
	}
	return dedup(out)
}

// Union returns the set union of the inputs, order of first appearance.
func Union(lists ...[]provenance.ID) []provenance.ID {
	seen := make(map[provenance.ID]struct{})
	var out []provenance.ID
	for _, l := range lists {
		for _, id := range l {
			if _, ok := seen[id]; !ok {
				seen[id] = struct{}{}
				out = append(out, id)
			}
		}
	}
	return out
}

func dedup(ids []provenance.ID) []provenance.ID {
	seen := make(map[provenance.ID]struct{}, len(ids))
	out := ids[:0]
	for _, id := range ids {
		if _, ok := seen[id]; !ok {
			seen[id] = struct{}{}
			out = append(out, id)
		}
	}
	return out
}
