package index

import (
	"sync"

	"pass/internal/provenance"
)

// Transitive closure over the ancestry graph. The paper is emphatic that
// this is the workload that breaks conventional schemes: "nearly all the
// queries have some component of transitive closure, a construct not well
// supported by conventional query systems" (Section III-B), and the local
// PASS research agenda names "efficient support for transitive closure
// queries" as the first challenge (Section V).
//
// Two implementations are provided:
//
//   - NaiveAncestors / NaiveDescendants: plain breadth-first traversal,
//     one adjacency scan per visited node. This is the baseline an
//     unaugmented name-value store would give (experiment E4).
//
//   - Ancestors / Descendants: memoized traversal. Because provenance is
//     append-only and a record's parents are fixed at creation, the
//     ancestor set of any record is immutable — so it is cached without
//     invalidation. Descendant sets grow as new derivations arrive, so
//     the descendant cache carries an epoch that AddToBatch bumps.
//
// NoLimit requests unbounded depth.
const NoLimit = -1

// closureCache holds the memoized closure sets.
type closureCache struct {
	mu         sync.Mutex
	ancestors  map[provenance.ID][]provenance.ID
	desc       map[provenance.ID][]provenance.ID
	maxEntries int
}

func newClosureCache() *closureCache {
	return &closureCache{
		ancestors:  make(map[provenance.ID][]provenance.ID),
		desc:       make(map[provenance.ID][]provenance.ID),
		maxEntries: 1 << 17,
	}
}

func (c *closureCache) invalidateDescendants() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.desc) > 0 {
		c.desc = make(map[provenance.ID][]provenance.ID)
	}
}

// evictIfFullLocked drops the whole map when over budget; cheap, and the
// cache rebuilds itself on the next queries.
func (c *closureCache) evictIfFullLocked(m map[provenance.ID][]provenance.ID) map[provenance.ID][]provenance.ID {
	if len(m) >= c.maxEntries {
		return make(map[provenance.ID][]provenance.ID)
	}
	return m
}

// NaiveAncestors walks the child→parent edges breadth-first with no
// memoization. maxDepth bounds the walk (NoLimit = unbounded). The result
// excludes id itself and has no duplicates.
func (ix *Index) NaiveAncestors(id provenance.ID, maxDepth int) ([]provenance.ID, error) {
	return ix.traverse(id, maxDepth, ix.Parents)
}

// NaiveDescendants walks parent→child edges breadth-first.
func (ix *Index) NaiveDescendants(id provenance.ID, maxDepth int) ([]provenance.ID, error) {
	return ix.traverse(id, maxDepth, ix.Children)
}

func (ix *Index) traverse(id provenance.ID, maxDepth int, step func(provenance.ID) ([]provenance.ID, error)) ([]provenance.ID, error) {
	visited := map[provenance.ID]struct{}{id: {}}
	frontier := []provenance.ID{id}
	var out []provenance.ID
	depth := 0
	for len(frontier) > 0 {
		if maxDepth != NoLimit && depth >= maxDepth {
			break
		}
		depth++
		var next []provenance.ID
		for _, cur := range frontier {
			neighbors, err := step(cur)
			if err != nil {
				return nil, err
			}
			for _, n := range neighbors {
				if _, ok := visited[n]; ok {
					continue
				}
				visited[n] = struct{}{}
				out = append(out, n)
				next = append(next, n)
			}
		}
		frontier = next
	}
	return out, nil
}

// Ancestors returns the full ancestor set of id (transitive, excluding id)
// using permanent memoization: ancestors(x) = ∪ over parents p of
// ({p} ∪ ancestors(p)). Depth limits are served by the naive walk since a
// truncated set must not be cached as complete.
func (ix *Index) Ancestors(id provenance.ID, maxDepth int) ([]provenance.ID, error) {
	if maxDepth != NoLimit {
		return ix.NaiveAncestors(id, maxDepth)
	}
	set, err := ix.memoAncestors(id, make(map[provenance.ID]bool))
	if err != nil {
		return nil, err
	}
	return set, nil
}

// memoAncestors computes (and caches) the complete ancestor set with an
// explicit DFS stack, sharing cached subresults across the DAG. inFlight
// guards against cycles, which a well-formed provenance DAG cannot contain
// (IDs are content hashes of parents, so an edge always points to an
// earlier record), but corrupt input must not hang us.
func (ix *Index) memoAncestors(id provenance.ID, inFlight map[provenance.ID]bool) ([]provenance.ID, error) {
	ix.closure.mu.Lock()
	if cached, ok := ix.closure.ancestors[id]; ok {
		ix.closure.mu.Unlock()
		return cached, nil
	}
	ix.closure.mu.Unlock()

	if inFlight[id] {
		return nil, nil // cycle guard: treat back-edge as no ancestors
	}
	inFlight[id] = true
	defer delete(inFlight, id)

	parents, err := ix.Parents(id)
	if err != nil {
		return nil, err
	}
	seen := make(map[provenance.ID]struct{})
	var out []provenance.ID
	add := func(x provenance.ID) {
		if _, ok := seen[x]; !ok {
			seen[x] = struct{}{}
			out = append(out, x)
		}
	}
	for _, p := range parents {
		add(p)
		anc, err := ix.memoAncestors(p, inFlight)
		if err != nil {
			return nil, err
		}
		for _, a := range anc {
			add(a)
		}
	}

	ix.closure.mu.Lock()
	ix.closure.ancestors = ix.closure.evictIfFullLocked(ix.closure.ancestors)
	ix.closure.ancestors[id] = out
	ix.closure.mu.Unlock()
	return out, nil
}

// Descendants returns the transitive descendant set of id (excluding id).
// Complete results are cached until the next index insert.
func (ix *Index) Descendants(id provenance.ID, maxDepth int) ([]provenance.ID, error) {
	if maxDepth != NoLimit {
		return ix.NaiveDescendants(id, maxDepth)
	}
	ix.closure.mu.Lock()
	if cached, ok := ix.closure.desc[id]; ok {
		ix.closure.mu.Unlock()
		return cached, nil
	}
	ix.closure.mu.Unlock()

	out, err := ix.NaiveDescendants(id, NoLimit)
	if err != nil {
		return nil, err
	}
	ix.closure.mu.Lock()
	ix.closure.desc = ix.closure.evictIfFullLocked(ix.closure.desc)
	ix.closure.desc[id] = out
	ix.closure.mu.Unlock()
	return out, nil
}

// Reachable reports whether ancestor is in the ancestor set of id (i.e.
// data flowed from ancestor to id).
func (ix *Index) Reachable(id, ancestor provenance.ID) (bool, error) {
	anc, err := ix.Ancestors(id, NoLimit)
	if err != nil {
		return false, err
	}
	for _, a := range anc {
		if a == ancestor {
			return true, nil
		}
	}
	return false, nil
}

// Roots returns the raw origins of id: ancestors with no parents of their
// own ("find all the raw data from which this data set was derived",
// Section III-B).
func (ix *Index) Roots(id provenance.ID) ([]provenance.ID, error) {
	anc, err := ix.Ancestors(id, NoLimit)
	if err != nil {
		return nil, err
	}
	var roots []provenance.ID
	for _, a := range anc {
		parents, err := ix.Parents(a)
		if err != nil {
			return nil, err
		}
		if len(parents) == 0 {
			roots = append(roots, a)
		}
	}
	if len(anc) == 0 {
		// id itself is a root; by convention Roots excludes id, matching
		// Ancestors' exclusion semantics.
		return nil, nil
	}
	return roots, nil
}

// CacheStats reports closure cache occupancy (for tests and ablations).
func (ix *Index) CacheStats() (ancestorEntries, descendantEntries int) {
	ix.closure.mu.Lock()
	defer ix.closure.mu.Unlock()
	return len(ix.closure.ancestors), len(ix.closure.desc)
}
