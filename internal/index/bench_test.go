package index

import (
	"fmt"
	"testing"

	"pass/internal/kvstore"
	"pass/internal/provenance"
)

// Ablation benchmarks: memoized closure vs naive BFS, and attribute
// lookup cost vs posting-list length.

func benchIndex(b *testing.B) (*Index, *kvstore.Store) {
	b.Helper()
	db, err := kvstore.Open(b.TempDir(), kvstore.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return New(db), db
}

func benchDigest(i int) (d [32]byte) {
	d[0], d[1], d[2] = byte(i), byte(i>>8), byte(i>>16)
	d[3] = 0xBE
	return
}

// buildBenchChain makes a depth-n chain and returns the leaf.
func buildBenchChain(b *testing.B, ix *Index, db *kvstore.Store, n int) provenance.ID {
	b.Helper()
	rec, id, err := provenance.NewRaw(benchDigest(0), 1).CreatedAt(1).Build()
	if err != nil {
		b.Fatal(err)
	}
	var batch kvstore.Batch
	ix.AddToBatch(&batch, id, rec)
	if err := db.Apply(&batch); err != nil {
		b.Fatal(err)
	}
	prev := id
	for i := 1; i < n; i++ {
		rec, id, err := provenance.NewDerived(benchDigest(i), 1, "step", "1", prev).CreatedAt(int64(i)).Build()
		if err != nil {
			b.Fatal(err)
		}
		var batch kvstore.Batch
		ix.AddToBatch(&batch, id, rec)
		if err := db.Apply(&batch); err != nil {
			b.Fatal(err)
		}
		prev = id
	}
	return prev
}

func BenchmarkAncestorsNaive(b *testing.B) {
	for _, depth := range []int{8, 64} {
		b.Run(fmt.Sprintf("depth-%d", depth), func(b *testing.B) {
			ix, db := benchIndex(b)
			leaf := buildBenchChain(b, ix, db, depth)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				anc, err := ix.NaiveAncestors(leaf, NoLimit)
				if err != nil || len(anc) != depth-1 {
					b.Fatalf("%d ancestors, %v", len(anc), err)
				}
			}
		})
	}
}

func BenchmarkAncestorsMemoized(b *testing.B) {
	for _, depth := range []int{8, 64} {
		b.Run(fmt.Sprintf("depth-%d", depth), func(b *testing.B) {
			ix, db := benchIndex(b)
			leaf := buildBenchChain(b, ix, db, depth)
			if _, err := ix.Ancestors(leaf, NoLimit); err != nil { // warm
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				anc, err := ix.Ancestors(leaf, NoLimit)
				if err != nil || len(anc) != depth-1 {
					b.Fatalf("%d ancestors, %v", len(anc), err)
				}
			}
		})
	}
}

func BenchmarkLookupAttr(b *testing.B) {
	for _, postings := range []int{10, 1000} {
		b.Run(fmt.Sprintf("postings-%d", postings), func(b *testing.B) {
			ix, db := benchIndex(b)
			for i := 0; i < postings; i++ {
				rec, id, err := provenance.NewRaw(benchDigest(i), 1).
					Attr("zone", provenance.String("boston")).
					CreatedAt(int64(i)).Build()
				if err != nil {
					b.Fatal(err)
				}
				var batch kvstore.Batch
				ix.AddToBatch(&batch, id, rec)
				if err := db.Apply(&batch); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, err := ix.LookupAttr("zone", provenance.String("boston"))
				if err != nil || len(got) != postings {
					b.Fatalf("%d postings, %v", len(got), err)
				}
			}
		})
	}
}
