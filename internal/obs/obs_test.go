package obs

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"pass/internal/metrics"
	"pass/internal/trace"
)

func TestWindowedGate(t *testing.T) {
	w := NewWindowed(0.95, 3)
	for _, r := range []float64{1, 1, 0.9, 0.9, 0.9, 1, 0.9, 1} {
		w.Add(r)
	}
	if !w.OK() || w.Worst() != 3 || w.Breaches() != 0 {
		t.Fatalf("streak of 3 within budget 3 should pass: worst=%d breaches=%d", w.Worst(), w.Breaches())
	}
	for _, r := range []float64{0.9, 0.9, 0.9, 0.9, 1} {
		w.Add(r)
	}
	if w.OK() || w.Worst() != 4 || w.Breaches() != 1 {
		t.Fatalf("streak of 4 over budget 3 should breach once: worst=%d breaches=%d", w.Worst(), w.Breaches())
	}
	if w.MinRecall() != 0.9 || w.LastRecall() != 1 {
		t.Fatalf("min/last = %v/%v", w.MinRecall(), w.LastRecall())
	}
	// A streak interrupted by an iteration boundary does not accumulate.
	w2 := NewWindowed(0.95, 2)
	w2.Add(0.9)
	w2.Add(0.9)
	w2.EndIteration()
	w2.Add(0.9)
	if !w2.OK() {
		t.Fatal("iteration boundary must reset the streak")
	}
}

// TestSoakCollectsMetrics runs one short iteration per roster model and
// checks the registry carries the advertised series and the trace is
// readable JSONL.
func TestSoakCollectsMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := trace.New(2048)
	for _, model := range ModelNames() {
		st := runOneSoak(t, reg, tr, model)
		if !st.Done || st.Err != "" {
			t.Fatalf("%s: soak did not finish cleanly: %+v", model, st)
		}
		if !st.GateOK {
			t.Fatalf("%s: windowed gate breached: %+v", model, st)
		}
		if st.MinRecall >= 1 && model != "central" {
			t.Logf("%s: recall never dipped (min %v) — soak may be too gentle", model, st.MinRecall)
		}
	}

	var expo strings.Builder
	if err := reg.WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}
	out := expo.String()
	for _, series := range []string{
		`pass_rounds_total{model="dht"}`,
		`pass_net_bytes_total{model="passnet-eff"}`,
		`pass_sites_up{model="central"}`,
		`pass_recall{model="softstate"}`,
		`pass_recall_probe_count{model="passnet"}`,
		`pass_fault_events_total{model="dht",op="crash"}`,
		`pass_gossip_bytes_total{model="passnet-eff"}`,
		`pass_outbox_depth{model="passnet-eff"}`,
		`pass_members{model="dht"}`,
		`pass_soak_gate_ok{model="passnet"}`,
		`pass_site_bytes_out{model="dht",site="0"}`,
		`pass_soak_iterations_total{model="central"}`,
		`pass_latency_publish_ms_count{model="central"}`,
		`pass_latency_publish_ms{model="passnet",quantile="0.999"}`,
		`pass_admission_offered_total{model="central-adm"}`,
		`pass_admission_served_total{model="central-adm"}`,
		`pass_admission_queue_items{model="central-adm"}`,
		`pass_pubs_shed_total{model="central-adm"}`,
	} {
		if !strings.Contains(out, series) {
			t.Errorf("exposition missing series %s", series)
		}
	}

	if tr.Len() == 0 {
		t.Fatal("no trace lines")
	}
	kinds := map[string]int{}
	for _, line := range strings.Split(strings.TrimRight(tr.String(), "\n"), "\n") {
		var e trace.Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("corrupt trace line %q: %v", line, err)
		}
		kinds[e.Kind]++
	}
	for _, k := range []string{"fault", "round", "soak"} {
		if kinds[k] == 0 {
			t.Errorf("trace has no %q lines (kinds: %v)", k, kinds)
		}
	}
}

// TestSoakDeterministicAcrossRuns: two same-seed soaks on fresh
// registries produce identical metric snapshots — the daemon-facing
// determinism claim.
func TestSoakDeterministicAcrossRuns(t *testing.T) {
	snap := func() string {
		reg := metrics.NewRegistry()
		st := runOneSoak(t, reg, nil, "dht")
		if st.Err != "" {
			t.Fatal(st.Err)
		}
		var b strings.Builder
		if err := reg.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, b := snap(), snap()
	if a != b {
		t.Fatalf("same-seed soak produced different metric snapshots:\n--- a\n%s\n--- b\n%s", a, b)
	}
}

func runOneSoak(t *testing.T, reg *metrics.Registry, tr *trace.Log, model string) SoakStatus {
	t.Helper()
	cfg := SoakConfig{
		Model: model, Seed: 41, Sites: 16, SitesPerZone: 4,
		Rounds: 12, PubsPerRound: 3, CrashEvery: 5, DownFor: 3,
		LossEvery: -1, MaxIterations: 1,
	}
	s, err := NewSoak(cfg, reg, tr)
	if err != nil {
		t.Fatal(err)
	}
	return s.Run(context.Background())
}

func TestNewSoakRejectsUnknownModel(t *testing.T) {
	if _, err := NewSoak(SoakConfig{Model: "nope"}, metrics.NewRegistry(), nil); err == nil {
		t.Fatal("unknown model accepted")
	}
}
