package obs

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pass/internal/arch"
	"pass/internal/arch/central"
	"pass/internal/arch/dht"
	"pass/internal/arch/passnet"
	"pass/internal/arch/schedule"
	"pass/internal/arch/softstate"
	"pass/internal/metrics"
	"pass/internal/netsim"
	"pass/internal/ratelimit"
	"pass/internal/trace"
)

// Builder returns the constructor for a named roster model. The roster
// mirrors the schedule-capable entrants of E16/E17: central, softstate,
// dht, passnet, and passnet-eff (efficient gossip), plus central-adm —
// central under a generously provisioned admission controller, which
// keeps the pass_admission_* and queue-delay series live in the daemon.
func Builder(name string) (func(net *netsim.Network, sites []netsim.SiteID) arch.Model, bool) {
	switch name {
	case "central":
		return func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return central.New(net, sites[0])
		}, true
	case "central-adm":
		return func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			m := central.New(net, sites[0])
			// Provisioned for the soak's nominal load: the buckets and
			// queue bound only bite if a workload change floods the
			// warehouse, which is exactly what the shed counters are
			// there to catch.
			m.SetAdmission(ratelimit.NewAdmission(ratelimit.Config{
				PerClientRate:  8,
				PerClientBurst: 24,
				Budget:         20 * time.Millisecond,
				MaxBacklog:     200 * time.Millisecond,
			}))
			return m
		}, true
	case "softstate":
		return func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return softstate.New(net, sites, sites[:2], 1)
		}, true
	case "dht":
		return func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return dht.New(net, sites)
		}, true
	case "passnet":
		return func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return passnet.New(net, sites, passnet.Options{})
		}, true
	case "passnet-eff":
		return func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
			return passnet.New(net, sites, passnet.Options{EfficientGossip: true, PullEvery: 1})
		}, true
	}
	return nil, false
}

// ModelNames lists the roster in presentation order.
func ModelNames() []string {
	return []string{"central", "central-adm", "softstate", "dht", "passnet", "passnet-eff"}
}

// SoakConfig sizes one model's soak stream. Zero fields select the
// defaults noted per field.
type SoakConfig struct {
	// Model is a roster name (default "passnet-eff").
	Model string
	// Seed seeds iteration i's schedule as Seed+i (default 1).
	Seed uint64
	// Sites / SitesPerZone size the topology (defaults 16 / 4).
	Sites, SitesPerZone int
	// Rounds / PubsPerRound size each iteration (defaults 24 / 4).
	Rounds, PubsPerRound int
	// CrashEvery / DownFor / Victims shape the crash waves
	// (schedule.SoakOptions defaults: 6 / 3 / 1).
	CrashEvery, DownFor, Victims int
	// LossEvery / LossFor / LossRate shape loss bursts (default: bursts
	// every 9 rounds for 2 rounds at rate 0.1; set LossEvery < 0 to
	// disable).
	LossEvery, LossFor int
	LossRate           float64
	// Threshold / MaxStreak parameterize the windowed gate: recall below
	// Threshold (default 0.95) for more than MaxStreak (default
	// DownFor+3) consecutive rounds is a breach.
	Threshold float64
	MaxStreak int
	// Interval is wall-clock pacing per simulated round (default none —
	// the daemon sets it so a soak spans real minutes).
	Interval time.Duration
	// Duration bounds the run: no new iteration starts after it elapses.
	// Zero means MaxIterations bounds the run instead.
	Duration time.Duration
	// MaxIterations caps iterations (default 1 when Duration is zero,
	// unbounded otherwise).
	MaxIterations int
}

// withDefaults fills zero fields with the documented defaults.
func (c SoakConfig) withDefaults() SoakConfig {
	if c.Model == "" {
		c.Model = "passnet-eff"
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Sites == 0 {
		c.Sites = 16
	}
	if c.SitesPerZone == 0 {
		c.SitesPerZone = 4
	}
	if c.Rounds == 0 {
		c.Rounds = 24
	}
	if c.PubsPerRound == 0 {
		c.PubsPerRound = 4
	}
	if c.DownFor == 0 {
		c.DownFor = 3
	}
	if c.LossEvery == 0 {
		c.LossEvery = 9
	}
	if c.Threshold == 0 {
		c.Threshold = 0.95
	}
	if c.MaxStreak == 0 {
		c.MaxStreak = c.DownFor + 3
	}
	if c.Duration == 0 && c.MaxIterations == 0 {
		c.MaxIterations = 1
	}
	return c
}

// SoakStatus is a point-in-time reading of one model's soak, served by
// the daemon's /healthz endpoint.
type SoakStatus struct {
	Model       string  `json:"model"`
	Iterations  int     `json:"iterations"`
	Rounds      int     `json:"rounds"`
	LastRecall  float64 `json:"last_recall"`
	MinRecall   float64 `json:"min_recall"`
	WorstStreak int     `json:"worst_streak"`
	Breaches    int     `json:"breaches"`
	GateOK      bool    `json:"gate_ok"`
	Done        bool    `json:"done"`
	Err         string  `json:"error,omitempty"`
}

// Soak drives one model through successive GenerateSoak streams,
// collecting metrics and trace lines and evaluating the windowed gate.
// Safe for one Run goroutine plus concurrent Status readers.
type Soak struct {
	cfg   SoakConfig
	reg   *metrics.Registry
	tr    *trace.Log
	build func(*netsim.Network, []netsim.SiteID) arch.Model
	win   *Windowed

	mu     sync.Mutex
	status SoakStatus
}

// NewSoak resolves the roster model and prepares a soak. reg is required;
// tr may be nil.
func NewSoak(cfg SoakConfig, reg *metrics.Registry, tr *trace.Log) (*Soak, error) {
	cfg = cfg.withDefaults()
	build, ok := Builder(cfg.Model)
	if !ok {
		return nil, fmt.Errorf("obs: unknown model %q (roster: %v)", cfg.Model, ModelNames())
	}
	s := &Soak{
		cfg: cfg, reg: reg, tr: tr, build: build,
		win: NewWindowed(cfg.Threshold, cfg.MaxStreak),
	}
	s.status = SoakStatus{Model: cfg.Model, GateOK: true, MinRecall: 1}
	return s, nil
}

// Status returns the current reading.
func (s *Soak) Status() SoakStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.status
}

// noteRound refreshes the live status after each observed round.
func (s *Soak) noteRound() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.status.Rounds = s.win.Rounds()
	s.status.LastRecall = s.win.LastRecall()
	if mr := s.win.MinRecall(); mr <= 1 {
		s.status.MinRecall = mr
	}
	s.status.WorstStreak = s.win.Worst()
	s.status.Breaches = s.win.Breaches()
	s.status.GateOK = s.win.OK()
}

// pacedObserver relays a replay's telemetry to the collector, refreshes
// the soak status, and sleeps Interval per round so a soak spans real
// wall time. Cancellation stops the pacing immediately; the in-flight
// iteration then finishes at simulation speed.
type pacedObserver struct {
	ctx context.Context
	c   *Collector
	s   *Soak
}

func (p pacedObserver) OnEvent(round int, e schedule.Event) { p.c.OnEvent(round, e) }

func (p pacedObserver) OnRound(st schedule.RoundStats) {
	p.c.OnRound(st)
	p.s.noteRound()
	if iv := p.s.cfg.Interval; iv > 0 && p.ctx.Err() == nil {
		select {
		case <-p.ctx.Done():
		case <-time.After(iv):
		}
	}
}

// Run executes soak iterations until the duration or iteration budget is
// spent or ctx is cancelled, and returns the final status. Each iteration
// replays a fresh GenerateSoak schedule (seed Seed+i) against a fresh
// model instance; the windowed gate and the registry's counters span all
// iterations, while below-threshold streaks reset at iteration
// boundaries (independent replays).
func (s *Soak) Run(ctx context.Context) SoakStatus {
	cfg := s.cfg
	schedCfg := schedule.Config{
		Sites: cfg.Sites, SitesPerZone: cfg.SitesPerZone,
		Rounds: cfg.Rounds, PubsPerRound: cfg.PubsPerRound,
	}
	opt := schedule.SoakOptions{
		CrashEvery: cfg.CrashEvery, DownFor: cfg.DownFor, Victims: cfg.Victims,
		LossFor: cfg.LossFor, LossRate: cfg.LossRate,
	}
	if cfg.LossEvery > 0 {
		opt.LossEvery = cfg.LossEvery
	}
	mL := metrics.L("model", cfg.Model)
	start := time.Now()
	for iter := 0; ; iter++ {
		if ctx.Err() != nil {
			break
		}
		if cfg.MaxIterations > 0 && iter >= cfg.MaxIterations {
			break
		}
		if iter > 0 && cfg.Duration > 0 && time.Since(start) >= cfg.Duration {
			break
		}
		sched := schedule.GenerateSoak(cfg.Seed+uint64(iter), schedCfg, opt)
		c := NewCollector(s.reg, s.tr, cfg.Model)
		c.Iter = iter
		c.Win = s.win
		out, err := schedule.RunObserved(sched, c.WrapBuild(s.build), pacedObserver{ctx: ctx, c: c, s: s})
		s.win.EndIteration()
		s.reg.Counter("pass_soak_iterations_total", mL).Inc()
		s.mu.Lock()
		s.status.Iterations = iter + 1
		if err != nil {
			s.status.Err = err.Error()
			s.status.GateOK = false
			s.mu.Unlock()
			break
		}
		s.mu.Unlock()
		if s.tr != nil {
			s.tr.Append(trace.Event{
				Round: cfg.Rounds, Kind: "soak", Model: cfg.Model, Iter: iter,
				Offered: out.Offered, Acked: out.Acked, Recall: out.Recall,
				Note: fmt.Sprintf("iteration done: worst_streak=%d breaches=%d", s.win.Worst(), s.win.Breaches()),
			})
		}
	}
	s.mu.Lock()
	s.status.Done = true
	st := s.status
	s.mu.Unlock()
	return st
}
