// Package obs is the live observability layer of the reproduction: it
// adapts the simulation's existing accounting — netsim's sharded stats,
// arch.GossipMeter, arch.OpsSampler, arch.Admitter admission counters,
// and the schedule runner's publish latencies — into the labeled
// metrics registry,
// emits the bounded JSONL round trace, and evaluates the time-windowed
// soak gate ("recall never below the threshold for more than K
// consecutive rounds") that the passd daemon and the RecallSoak
// conformance law share. Everything here samples once per round off the
// hot path; nothing adds per-send work.
package obs

import (
	"math"

	"pass/internal/arch"
	"pass/internal/arch/schedule"
	"pass/internal/metrics"
	"pass/internal/netsim"
	"pass/internal/ratelimit"
	"pass/internal/trace"
)

// maxSiteSeries bounds per-site label cardinality: above this many sites
// the collector skips per-site gauges (the aggregate series remain).
const maxSiteSeries = 128

// Collector implements schedule.Observer, translating the runner's
// telemetry into labeled registry series and trace lines. One Collector
// observes one replay (one model instance on one network); counters in
// the shared registry accumulate across successive replays because each
// collector tracks its own per-replay offsets.
type Collector struct {
	Reg   *metrics.Registry
	Trace *trace.Log // may be nil
	Model string     // the {model=...} label value
	Iter  int        // soak iteration tag for trace lines
	Win   *Windowed  // may be nil; fed every round's recall

	net   *netsim.Network
	sites []netsim.SiteID
	m     arch.Model

	// Per-replay offsets so shared counters see only deltas.
	prevBytes, prevMsgs, prevDropped, prevWAN int64
	prevOffered, prevAcked, prevShed          int
	prevGossip                                arch.GossipStats
	prevAdm                                   ratelimit.Stats
}

// NewCollector returns a collector for one replay, labeled modelLabel in
// reg. tr may be nil; set Iter/Win before the replay starts. The
// collector learns its network, site slice, and model instance through
// WrapBuild when the runner constructs them.
func NewCollector(reg *metrics.Registry, tr *trace.Log, modelLabel string) *Collector {
	return &Collector{Reg: reg, Trace: tr, Model: modelLabel}
}

// WrapBuild wraps a model constructor so the collector binds to the
// runner's real network, site slice, and model instance as they are
// built. The runner's scratch capability probe binds first and is
// immediately overwritten by the real build — the last bind wins.
func (c *Collector) WrapBuild(build func(*netsim.Network, []netsim.SiteID) arch.Model) func(*netsim.Network, []netsim.SiteID) arch.Model {
	return func(net *netsim.Network, sites []netsim.SiteID) arch.Model {
		m := build(net, sites)
		c.net, c.sites, c.m = net, sites, m
		return m
	}
}

// OnEvent records an applied fault event: a counter per (model, op) and a
// trace line.
func (c *Collector) OnEvent(round int, e schedule.Event) {
	c.Reg.Counter("pass_fault_events_total",
		metrics.L("model", c.Model), metrics.L("op", e.Op.String())).Inc()
	if c.Trace != nil {
		c.Trace.Append(trace.Event{
			Round: round, Kind: "fault", Model: c.Model, Iter: c.Iter,
			Op: e.Op.String(), Site: e.Site,
		})
	}
}

// OnRound samples the round into the registry: network totals (deltas
// onto shared counters), liveness and recall gauges, a recall-probe
// histogram, gossip-meter and OpsSampler readings, and per-site traffic
// gauges when cardinality allows. It also feeds the windowed gate and
// appends the round trace line.
func (c *Collector) OnRound(st schedule.RoundStats) {
	mL := metrics.L("model", c.Model)
	reg := c.Reg

	reg.Counter("pass_rounds_total", mL).Inc()
	reg.Counter("pass_pubs_offered_total", mL).Add(int64(st.Offered - c.prevOffered))
	reg.Counter("pass_pubs_acked_total", mL).Add(int64(st.Acked - c.prevAcked))
	c.prevOffered, c.prevAcked = st.Offered, st.Acked

	ns := c.net.Stats()
	reg.Counter("pass_net_bytes_total", mL).Add(ns.Bytes - c.prevBytes)
	reg.Counter("pass_net_msgs_total", mL).Add(ns.Messages - c.prevMsgs)
	reg.Counter("pass_net_wan_bytes_total", mL).Add(ns.WANBytes - c.prevWAN)
	reg.Counter("pass_net_dropped_msgs_total", mL).Add(ns.DroppedMsgs - c.prevDropped)
	reg.Histogram("pass_round_bytes", mL).Observe(float64(ns.Bytes - c.prevBytes))
	c.prevBytes, c.prevMsgs, c.prevWAN, c.prevDropped = ns.Bytes, ns.Messages, ns.WANBytes, ns.DroppedMsgs

	reg.Gauge("pass_sites_up", mL).Set(int64(st.Live))
	reg.FGauge("pass_recall", mL).Set(st.Recall)
	reg.Histogram("pass_recall_probe", mL).Observe(st.Recall)

	for _, d := range st.PubLatencies {
		reg.Histogram("pass_latency_publish_ms", mL).Observe(float64(d.Microseconds()) / 1000)
	}
	reg.Counter("pass_pubs_shed_total", mL).Add(int64(st.Shed - c.prevShed))
	c.prevShed = st.Shed

	if ad, ok := c.m.(arch.Admitter); ok {
		if adm := ad.Admission(); adm != nil {
			as := adm.Stats()
			reg.Counter("pass_admission_offered_total", mL).Add(as.Offered - c.prevAdm.Offered)
			reg.Counter("pass_admission_admitted_total", mL).Add(as.Admitted - c.prevAdm.Admitted)
			reg.Counter("pass_admission_shed_rate_total", mL).Add(as.ShedRate - c.prevAdm.ShedRate)
			reg.Counter("pass_admission_shed_queue_total", mL).Add(as.ShedQueue - c.prevAdm.ShedQueue)
			reg.Counter("pass_admission_served_total", mL).Add(as.Served - c.prevAdm.Served)
			reg.Gauge("pass_admission_queue_items", mL).Set(int64(as.QueueItems))
			reg.Gauge("pass_admission_queue_delay_ms", mL).Set(as.QueueDelay.Milliseconds())
			c.prevAdm = as
		}
	}
	if gm, ok := c.m.(arch.GossipMeter); ok {
		gs := gm.GossipStats()
		reg.Counter("pass_gossip_bytes_total", mL).Add(gs.Bytes - c.prevGossip.Bytes)
		reg.Counter("pass_gossip_dup_suppressed_total", mL).Add(gs.DupSuppressed - c.prevGossip.DupSuppressed)
		reg.Counter("pass_gossip_pull_rounds_total", mL).Add(gs.PullRounds - c.prevGossip.PullRounds)
		c.prevGossip = gs
	}
	if os, ok := c.m.(arch.OpsSampler); ok {
		os.SampleOps(func(metric string, v int64) {
			reg.Gauge("pass_"+metric, mL).Set(v)
		})
	}
	if len(c.sites) <= maxSiteSeries {
		for _, id := range c.sites {
			ss := c.net.SiteStats(id)
			sL := metrics.L("site", siteLabel(int(id)))
			reg.Gauge("pass_site_bytes_out", mL, sL).Set(ss.BytesOut)
			reg.Gauge("pass_site_msgs_out", mL, sL).Set(ss.MsgsOut)
		}
	}

	if c.Win != nil {
		c.Win.Add(st.Recall)
		reg.Gauge("pass_soak_worst_streak", mL).Set(int64(c.Win.Worst()))
		if c.Win.Breaches() > 0 {
			reg.Gauge("pass_soak_gate_ok", mL).Set(0)
		} else {
			reg.Gauge("pass_soak_gate_ok", mL).Set(1)
		}
	}
	if c.Trace != nil {
		c.Trace.Append(trace.Event{
			Round: st.Round, Kind: "round", Model: c.Model, Iter: c.Iter,
			Offered: st.Offered, Acked: st.Acked, Live: st.Live,
			Bytes: st.Bytes, Msgs: st.Msgs, Recall: st.Recall,
		})
	}
}

// siteLabel renders a site ID without pulling in strconv-per-call noise
// at higher layers.
func siteLabel(id int) string {
	if id == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for id > 0 {
		i--
		buf[i] = byte('0' + id%10)
		id /= 10
	}
	return string(buf[i:])
}

// Windowed is the time-windowed soak gate: recall may dip below
// Threshold (a crash wave does that by construction), but never for more
// than MaxStreak CONSECUTIVE rounds — the first duration-sensitive
// correctness bar in the suite, as opposed to the endpoint recall checks.
// The zero value is not usable; set Threshold and MaxStreak.
type Windowed struct {
	Threshold float64
	MaxStreak int

	cur, worst int
	breaches   int
	rounds     int
	minRecall  float64
	last       float64
}

// NewWindowed returns a gate with the given threshold and streak budget.
func NewWindowed(threshold float64, maxStreak int) *Windowed {
	return &Windowed{Threshold: threshold, MaxStreak: maxStreak, minRecall: math.Inf(1)}
}

// Add feeds one round's recall reading.
func (w *Windowed) Add(recall float64) {
	w.rounds++
	w.last = recall
	if recall < w.minRecall {
		w.minRecall = recall
	}
	if recall < w.Threshold {
		w.cur++
		if w.cur > w.worst {
			w.worst = w.cur
		}
		if w.cur == w.MaxStreak+1 {
			// Count each over-budget streak once, at the round it exceeds.
			w.breaches++
		}
	} else {
		w.cur = 0
	}
}

// EndIteration closes a replay boundary: a streak cannot span two
// independent soak iterations.
func (w *Windowed) EndIteration() { w.cur = 0 }

// Worst returns the longest below-threshold streak seen.
func (w *Windowed) Worst() int { return w.worst }

// Breaches returns how many streaks exceeded the budget.
func (w *Windowed) Breaches() int { return w.breaches }

// Rounds returns how many readings were fed.
func (w *Windowed) Rounds() int { return w.rounds }

// MinRecall returns the lowest reading seen (+Inf before any reading).
func (w *Windowed) MinRecall() float64 { return w.minRecall }

// LastRecall returns the most recent reading.
func (w *Windowed) LastRecall() float64 { return w.last }

// OK reports whether the gate has held so far.
func (w *Windowed) OK() bool { return w.breaches == 0 }
