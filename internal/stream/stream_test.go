package stream

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pass/internal/core"
	"pass/internal/provenance"
	"pass/internal/query"
	"pass/internal/tuple"
)

func testClock() func() int64 {
	var t atomic.Int64
	return func() int64 { return t.Add(1) }
}

func openStore(t *testing.T) *core.Store {
	t.Helper()
	s, err := core.Open(t.TempDir(), core.Options{Clock: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func newIngester(t *testing.T, s *core.Store, lateness time.Duration) *Ingester {
	t.Helper()
	in, err := NewIngester(s, Config{
		Window:          time.Minute,
		AllowedLateness: lateness,
		BaseAttrs: func(zone string) []provenance.Attribute {
			return []provenance.Attribute{
				provenance.Attr(provenance.KeyDomain, provenance.String("traffic")),
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func reading(sensor string, at time.Duration, v float64) tuple.Reading {
	return tuple.Reading{SensorID: sensor, Time: at.Nanoseconds(), Value: v}
}

func TestConfigValidation(t *testing.T) {
	s := openStore(t)
	if _, err := NewIngester(s, Config{Window: 0}); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := NewIngester(s, Config{Window: time.Minute, AllowedLateness: -1}); err == nil {
		t.Fatal("negative lateness accepted")
	}
}

func TestWindowsSealOnWatermark(t *testing.T) {
	s := openStore(t)
	in := newIngester(t, s, 0)

	// Fill window [0,1m): no seal yet.
	for i := 0; i < 5; i++ {
		ids, err := in.Feed("boston", reading("cam-1", time.Duration(i)*10*time.Second, float64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != 0 {
			t.Fatalf("premature seal at reading %d", i)
		}
	}
	// A reading in the next window advances the watermark past [0,1m).
	ids, err := in.Feed("boston", reading("cam-1", 90*time.Second, 9))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 {
		t.Fatalf("sealed %d windows, want 1", len(ids))
	}
	// The sealed set holds the 5 first-window readings with provenance.
	ts, err := s.GetData(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if ts.Len() != 5 {
		t.Fatalf("sealed set has %d readings", ts.Len())
	}
	rec, _ := s.GetRecord(ids[0])
	if v, ok := rec.Get(provenance.KeyZone); !ok || v.Str != "boston" {
		t.Fatalf("zone attr = %+v", v)
	}
	if _, _, ok := rec.TimeRange(); !ok {
		t.Fatal("sealed window lacks time attributes")
	}
	st := in.Stats()
	if st.Sealed != 1 || st.OpenWindows != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAllowedLatenessDelaysSealing(t *testing.T) {
	s := openStore(t)
	in := newIngester(t, s, 30*time.Second)
	in.Feed("z", reading("s", 10*time.Second, 1))
	// Watermark at 70s: window [0,1m) ends at 60s; grace runs to 90s.
	ids, _ := in.Feed("z", reading("s", 70*time.Second, 2))
	if len(ids) != 0 {
		t.Fatal("sealed inside the grace period")
	}
	// Watermark past 90s: now it seals.
	ids, _ = in.Feed("z", reading("s", 95*time.Second, 3))
	if len(ids) != 1 {
		t.Fatalf("sealed %d windows after grace", len(ids))
	}
}

func TestLateReadingsGetLateWindows(t *testing.T) {
	s := openStore(t)
	in := newIngester(t, s, 0)
	in.Feed("z", reading("s", 10*time.Second, 1))
	in.Feed("z", reading("s", 2*time.Minute, 2)) // seals [0,1m)

	// A straggler for the long-sealed first window. The watermark is
	// already past it, so its late window seals immediately.
	ids, err := in.Feed("z", reading("s", 20*time.Second, 9))
	if err != nil {
		t.Fatal(err)
	}
	flushed, err := in.Flush()
	if err != nil {
		t.Fatal(err)
	}
	sealedIDs := append(ids, flushed...)
	var lateID provenance.ID
	for _, id := range sealedIDs {
		rec, _ := s.GetRecord(id)
		if rec.Has(KeyLate, provenance.Bool(true)) {
			lateID = id
		}
	}
	if lateID.IsZero() {
		t.Fatal("no late-marked window sealed")
	}
	// Late data is queryable and distinguishable.
	got, err := s.Query(query.AttrEq{Key: KeyLate, Value: provenance.Bool(true)})
	if err != nil || len(got) != 1 || got[0] != lateID {
		t.Fatalf("late query = %v, %v", got, err)
	}
	if in.Stats().LateSealed != 1 {
		t.Fatalf("late seals = %d", in.Stats().LateSealed)
	}
}

func TestZonesAreIndependent(t *testing.T) {
	s := openStore(t)
	in := newIngester(t, s, 0)
	in.Feed("boston", reading("b", 10*time.Second, 1))
	// Advancing london's watermark must not seal boston's window.
	ids, _ := in.Feed("london", reading("l", 5*time.Minute, 2))
	if len(ids) != 0 {
		t.Fatal("cross-zone watermark sealed a window")
	}
	ids, err := in.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("flush sealed %d windows, want 2", len(ids))
	}
}

func TestSubscribersSeeEveryReading(t *testing.T) {
	s := openStore(t)
	in := newIngester(t, s, 0)
	var mu sync.Mutex
	seen := map[string]int{}
	in.Subscribe(func(zone string, r tuple.Reading) {
		mu.Lock()
		seen[zone]++
		mu.Unlock()
	})
	in.Subscribe(func(zone string, r tuple.Reading) {
		mu.Lock()
		seen["second-"+zone]++
		mu.Unlock()
	})
	for i := 0; i < 7; i++ {
		in.Feed("boston", reading("s", time.Duration(i)*time.Second, 1))
	}
	if seen["boston"] != 7 || seen["second-boston"] != 7 {
		t.Fatalf("subscribers saw %v", seen)
	}
}

func TestOnSealCallback(t *testing.T) {
	s := openStore(t)
	var sealed []string
	in, err := NewIngester(s, Config{
		Window: time.Minute,
		OnSeal: func(id provenance.ID, zone string, start, end int64, late bool) {
			sealed = append(sealed, fmt.Sprintf("%s@%d late=%v", zone, start, late))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	in.Feed("z", reading("s", time.Second, 1))
	in.Feed("z", reading("s", 3*time.Minute, 2))
	if len(sealed) != 1 {
		t.Fatalf("OnSeal fired %d times", len(sealed))
	}
}

func TestStreamIntoQueryableArchive(t *testing.T) {
	// End to end: stream 3 windows, flush, and answer an archival query.
	s := openStore(t)
	in := newIngester(t, s, 0)
	for i := 0; i < 30; i++ {
		if _, err := in.Feed("boston", reading("cam-1", time.Duration(i)*10*time.Second, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	ids, err := s.QueryString(`domain=traffic AND zone=boston`)
	if err != nil {
		t.Fatal(err)
	}
	// 300 seconds of readings at 1-minute windows = 5 windows.
	if len(ids) != 5 {
		t.Fatalf("archive holds %d windows, want 5", len(ids))
	}
	// Every reading made it into exactly one window.
	total := 0
	for _, id := range ids {
		ts, err := s.GetData(id)
		if err != nil {
			t.Fatal(err)
		}
		total += ts.Len()
	}
	if total != 30 {
		t.Fatalf("archive holds %d readings, want 30", total)
	}
}

func TestConcurrentFeeds(t *testing.T) {
	s := openStore(t)
	in := newIngester(t, s, 0)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			zone := fmt.Sprintf("zone-%d", g)
			for i := 0; i < 50; i++ {
				if _, err := in.Feed(zone, reading("s", time.Duration(i)*5*time.Second, 1)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if _, err := in.Flush(); err != nil {
		t.Fatal(err)
	}
	n, err := s.CountRecords()
	if err != nil {
		t.Fatal(err)
	}
	// 250s per zone at 1-min windows = 5 windows × 4 zones.
	if n != 20 {
		t.Fatalf("records = %d, want 20", n)
	}
	rep, err := s.VerifyConsistency()
	if err != nil || !rep.Clean() {
		t.Fatalf("audit after concurrent feeds: %+v, %v", rep, err)
	}
}
