// Package stream is the real-time front door of a PASS store. Section I
// opens with it: "Readings and events emerging from a sensor network may
// be consumed immediately or stored for later analysis" — and Section
// III-C's EMT scenario streams vitals to consumers while the same data
// accumulates into the archive.
//
// An Ingester does both jobs: it fans each reading out to live
// subscribers immediately, and windows readings by event time into tuple
// sets (the §II granularity) that it seals into the store with standard
// provenance attributes once the event-time watermark passes the window.
// Late readings — common on real sensor networks — are not dropped: they
// are sealed into their own windows marked with a "late" attribute, so
// downstream queries can choose whether to trust them.
package stream

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"pass/internal/core"
	"pass/internal/provenance"
	"pass/internal/tuple"
)

// KeyLate marks tuple sets produced from late-arriving readings.
const KeyLate = "late"

// Config tunes an Ingester.
type Config struct {
	// Window is the tuple-set span (required).
	Window time.Duration
	// AllowedLateness delays window sealing: a window seals when the
	// watermark (max event time seen) passes windowEnd + AllowedLateness.
	AllowedLateness time.Duration
	// BaseAttrs returns the provenance attributes for a zone's windows
	// (domain, sensor-class, ...). Zone, t-start, and t-end attributes
	// are added automatically. May be nil.
	BaseAttrs func(zone string) []provenance.Attribute
	// OnSeal is invoked after each window commits (may be nil).
	OnSeal func(id provenance.ID, zone string, start, end int64, late bool)
}

// Subscriber receives every reading as it arrives (the real-time path).
type Subscriber func(zone string, r tuple.Reading)

// Ingester windows a live reading stream into a PASS store. Safe for
// concurrent use.
type Ingester struct {
	store *core.Store
	cfg   Config

	mu        sync.Mutex
	open      map[windowKey]*tuple.Set
	watermark map[string]int64 // per zone, max event time seen
	subs      []Subscriber
	sealed    int64
	lateSeals int64
	dropped   int64
}

type windowKey struct {
	zone  string
	start int64
	late  bool
}

// NewIngester returns an ingester writing to store.
func NewIngester(store *core.Store, cfg Config) (*Ingester, error) {
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("stream: Window must be positive")
	}
	if cfg.AllowedLateness < 0 {
		return nil, fmt.Errorf("stream: AllowedLateness must be non-negative")
	}
	return &Ingester{
		store:     store,
		cfg:       cfg,
		open:      make(map[windowKey]*tuple.Set),
		watermark: make(map[string]int64),
	}, nil
}

// Subscribe registers a live consumer. Subscribers run synchronously in
// Feed, in registration order.
func (in *Ingester) Subscribe(fn Subscriber) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.subs = append(in.subs, fn)
}

// Feed accepts one reading for a zone: delivers it to subscribers, files
// it into its event-time window, and seals every window the advancing
// watermark has passed. Sealed window IDs are returned (usually none).
func (in *Ingester) Feed(zone string, r tuple.Reading) ([]provenance.ID, error) {
	in.mu.Lock()
	subs := append([]Subscriber(nil), in.subs...)
	in.mu.Unlock()
	for _, fn := range subs {
		fn(zone, r)
	}

	in.mu.Lock()
	wm, seen := in.watermark[zone]
	if !seen || r.Time > wm {
		in.watermark[zone] = r.Time
		wm = r.Time
	}
	start := tuple.WindowStart(r.Time, in.cfg.Window)
	winEnd := start + in.cfg.Window.Nanoseconds() - 1
	late := winEnd+in.cfg.AllowedLateness.Nanoseconds() < wm
	key := windowKey{zone: zone, start: start, late: late}
	ts, ok := in.open[key]
	if !ok {
		ts = &tuple.Set{}
		in.open[key] = ts
	}
	ts.Append(r)
	// Seal every window whose grace period the watermark has passed —
	// except the one this reading just landed in, so consecutive late
	// stragglers for the same window batch into one tuple set (they seal
	// on the next watermark advance or Flush).
	due := in.dueLocked(zone, wm, key)
	in.mu.Unlock()

	return in.sealWindows(due)
}

// dueLocked collects windows of the zone whose end + lateness < watermark,
// excluding skip (the window currently being fed).
func (in *Ingester) dueLocked(zone string, wm int64, skip windowKey) []windowKey {
	var due []windowKey
	for key := range in.open {
		if key.zone != zone || key == skip {
			continue
		}
		end := key.start + in.cfg.Window.Nanoseconds() - 1
		if end+in.cfg.AllowedLateness.Nanoseconds() < wm {
			due = append(due, key)
		}
	}
	sort.Slice(due, func(i, j int) bool { return due[i].start < due[j].start })
	return due
}

// sealWindows commits the given windows and removes them from the open
// set.
func (in *Ingester) sealWindows(keys []windowKey) ([]provenance.ID, error) {
	var ids []provenance.ID
	for _, key := range keys {
		in.mu.Lock()
		ts, ok := in.open[key]
		if !ok {
			in.mu.Unlock()
			continue
		}
		delete(in.open, key)
		in.mu.Unlock()

		end := key.start + in.cfg.Window.Nanoseconds() - 1
		attrs := []provenance.Attribute{
			provenance.Attr(provenance.KeyZone, provenance.String(key.zone)),
			provenance.Attr(provenance.KeyStart, provenance.TimeVal(time.Unix(0, key.start))),
			provenance.Attr(provenance.KeyEnd, provenance.TimeVal(time.Unix(0, end))),
		}
		if in.cfg.BaseAttrs != nil {
			attrs = append(attrs, in.cfg.BaseAttrs(key.zone)...)
		}
		if key.late {
			attrs = append(attrs, provenance.Attr(KeyLate, provenance.Bool(true)))
		}
		id, err := in.store.IngestTupleSet(ts, attrs...)
		if err != nil {
			// Put the window back so a retry can succeed.
			in.mu.Lock()
			in.open[key] = ts
			in.mu.Unlock()
			return ids, err
		}
		in.mu.Lock()
		in.sealed++
		if key.late {
			in.lateSeals++
		}
		in.mu.Unlock()
		if in.cfg.OnSeal != nil {
			in.cfg.OnSeal(id, key.zone, key.start, end, key.late)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// Flush seals every open window regardless of the watermark (shutdown or
// end-of-stream).
func (in *Ingester) Flush() ([]provenance.ID, error) {
	in.mu.Lock()
	keys := make([]windowKey, 0, len(in.open))
	for key := range in.open {
		keys = append(keys, key)
	}
	in.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].zone != keys[j].zone {
			return keys[i].zone < keys[j].zone
		}
		return keys[i].start < keys[j].start
	})
	return in.sealWindows(keys)
}

// Stats reports ingester activity.
type Stats struct {
	OpenWindows int
	Sealed      int64
	LateSealed  int64
}

// Stats returns a snapshot.
func (in *Ingester) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return Stats{OpenWindows: len(in.open), Sealed: in.sealed, LateSealed: in.lateSeals}
}
