package query

import (
	"testing"

	"pass/internal/provenance"
)

func TestParseQuotedKeySyntheticAttrs(t *testing.T) {
	pred, err := Parse(`"~tool"=aggregate`)
	if err != nil {
		t.Fatal(err)
	}
	eq, ok := pred.(AttrEq)
	if !ok || eq.Key != "~tool" || eq.Value.Str != "aggregate" {
		t.Fatalf("parsed %+v", pred)
	}
	// Quoted key with prefix operator.
	pred, err = Parse(`"~type"~ra`)
	if err != nil {
		t.Fatal(err)
	}
	pre, ok := pred.(AttrPrefix)
	if !ok || pre.Key != "~type" || pre.Prefix != "ra" {
		t.Fatalf("parsed %+v", pred)
	}
	_ = provenance.String("")
}
